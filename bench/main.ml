(* The experiment harness: regenerates every table and figure of the
   reproduction (E1..E20, see DESIGN.md for the per-experiment index and
   EXPERIMENTS.md for paper-vs-measured).

   Usage:  dune exec bench/main.exe                    # all experiments
           dune exec bench/main.exe e4 e6              # a subset
           dune exec bench/main.exe --json out.json    # also dump metrics *)

open Bechamel
module Machine = S4e_cpu.Machine
module Flows = S4e_core.Flows

let line = String.make 72 '-'

let section id title =
  Printf.printf "\n%s\n%s  %s\n%s\n" line id title line

(* Machine-readable metric records, dumped with --json for trend
   tracking across commits. *)
let metrics : (string * string * float * string) list ref = ref []

let record ~exp ~name ~value ~unit_ =
  metrics := (exp, name, value, unit_) :: !metrics

let write_json path =
  let esc s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let rows =
    List.rev_map
      (fun (exp, name, value, unit_) ->
        Printf.sprintf
          "  {\"exp\": \"%s\", \"name\": \"%s\", \"value\": %g, \"unit\": \
           \"%s\"}"
          (esc exp) (esc name) value (esc unit_))
      !metrics
  in
  let oc = open_out path in
  output_string oc ("[\n" ^ String.concat ",\n" rows ^ "\n]\n");
  close_out oc;
  Printf.printf "\nwrote %d metric records to %s\n" (List.length rows) path

(* Wall-clock helper: OLS estimate of ns/run for each bechamel test. *)
let benchmark_ns tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name est acc ->
          let ns =
            match Analyze.OLS.estimates est with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          (name, ns) :: acc)
        res [])
    tests

let find_ns results name =
  match List.assoc_opt name results with
  | Some ns -> ns
  | None -> nan

let pct f = 100.0 *. f

(* ------------------------------------------------------------------ *)
(* E1: suite coverage table                                             *)

let e1 () =
  section "E1" "instruction-type and register coverage of the test suites";
  let isa = Machine.default_config.Machine.isa in
  let suites =
    [ ("architectural", S4e_torture.Suites.arch_suite ~isa);
      ("unit", S4e_torture.Suites.unit_suite ~isa);
      ("torture",
       S4e_torture.Suites.torture_suite ~isa ~seeds:[ 1; 2; 3; 4; 5 ]) ]
  in
  Printf.printf "%-16s %6s %12s %8s %8s %8s\n" "suite" "progs" "instr-type"
    "GPR" "FPR" "CSR";
  let reports =
    List.map
      (fun (name, progs) ->
        let r = Flows.coverage_of_suite ~fuel:S4e_torture.Suites.fuel progs in
        Printf.printf "%-16s %6d %11.1f%% %7.1f%% %7.1f%% %7.1f%%\n" name
          (List.length progs)
          (pct (S4e_coverage.Report.instruction_coverage r))
          (pct (S4e_coverage.Report.gpr_coverage r))
          (pct (S4e_coverage.Report.fpr_coverage r))
          (pct (S4e_coverage.Report.csr_coverage r));
        r)
      suites
  in
  let union =
    List.fold_left S4e_coverage.Report.combine
      (S4e_coverage.Report.create ~isa)
      reports
  in
  Printf.printf "%-16s %6s %11.1f%% %7.1f%% %7.1f%% %7.1f%%\n" "unified" "-"
    (pct (S4e_coverage.Report.instruction_coverage union))
    (pct (S4e_coverage.Report.gpr_coverage union))
    (pct (S4e_coverage.Report.fpr_coverage union))
    (pct (S4e_coverage.Report.csr_coverage union));
  Printf.printf "still missing: %s\n"
    (String.concat ", " (S4e_coverage.Report.missed_instructions union));
  Printf.printf
    "(paper: unified suite reaches 100%% GPR+FPR and 98.7%% instruction \
     types)\n"

(* ------------------------------------------------------------------ *)
(* E2: fault campaign outcome table                                     *)

let e2 () =
  section "E2" "fault campaign outcomes by target and fault kind";
  let p = Workloads.program Workloads.crc32 in
  let golden, cov = S4e_fault.Campaign.golden ~fuel:1_000_000 p in
  let instret = golden.S4e_fault.Campaign.sig_instret in
  Printf.printf "workload: crc32 (golden: %d instructions)\n" instret;
  Printf.printf "%-24s %6s %6s %6s %6s %6s\n" "mutant class" "total" "masked"
    "sdc" "crash" "hung";
  List.iter
    (fun (label, targets, kinds, seed) ->
      let faults =
        S4e_fault.Campaign.generate ~seed ~n:120 ~targets ~kinds ~coverage:cov
          ~golden_instret:instret
      in
      let results = S4e_fault.Campaign.run ~fuel:1_000_000 p ~golden faults in
      let s = S4e_fault.Campaign.summarize results in
      Printf.printf "%-24s %6d %6d %6d %6d %6d\n" label
        s.S4e_fault.Campaign.total s.S4e_fault.Campaign.masked
        s.S4e_fault.Campaign.sdc s.S4e_fault.Campaign.crashed
        s.S4e_fault.Campaign.hung)
    [ ("register / transient", [ `Gpr ], [ `Transient ], 11);
      ("register / permanent", [ `Gpr ], [ `Permanent ], 12);
      ("code / transient", [ `Code ], [ `Transient ], 13);
      ("code / permanent", [ `Code ], [ `Permanent ], 14);
      ("data / permanent", [ `Data ], [ `Permanent ], 15) ];
  Printf.printf
    "(paper's shape: most faults masked; normal-termination-with-wrong-\n\
    \ output mutants are flagged for countermeasures; code flips crash \
     more)\n"

(* ------------------------------------------------------------------ *)
(* E3: campaign scaling + guided-vs-blind ablation                      *)

let e3 () =
  section "E3" "campaign runtime scaling and coverage-guidance ablation";
  let p = Workloads.program Workloads.fib in
  let golden, cov = S4e_fault.Campaign.golden ~fuel:100_000 p in
  let instret = golden.S4e_fault.Campaign.sig_instret in
  Printf.printf "%-10s %12s %14s\n" "mutants" "seconds" "mutants/sec";
  List.iter
    (fun n ->
      let faults =
        S4e_fault.Campaign.generate ~seed:1 ~n ~targets:[ `Gpr; `Code; `Data ]
          ~kinds:[ `Permanent; `Transient ] ~coverage:cov
          ~golden_instret:instret
      in
      let t0 = Sys.time () in
      let _ = S4e_fault.Campaign.run ~fuel:100_000 p ~golden faults in
      let dt = Sys.time () -. t0 in
      record ~exp:"e3" ~name:(Printf.sprintf "throughput-%d" n)
        ~value:(float_of_int n /. dt) ~unit_:"mutants/sec";
      Printf.printf "%-10d %12.3f %14.0f\n" n dt (float_of_int n /. dt))
    [ 25; 50; 100; 200; 400 ];
  (* ablation: guided vs blind at equal budget *)
  let run_campaign blind =
    let cfg =
      { Flows.default_fault_config with
        Flows.ff_mutants = 200; ff_fuel = 100_000; ff_blind = blind }
    in
    (Flows.fault_flow cfg p).Flows.ff_summary
  in
  let guided = run_campaign false and blind = run_campaign true in
  let effective (s : S4e_fault.Campaign.summary) =
    s.S4e_fault.Campaign.total - s.S4e_fault.Campaign.masked
  in
  Printf.printf "\nguidance ablation (200 mutants each):\n";
  Printf.printf "  guided: %3d effective (non-masked) mutants\n"
    (effective guided);
  Printf.printf "  blind:  %3d effective (non-masked) mutants\n"
    (effective blind);
  Printf.printf
    "(the paper's scalability argument: coverage guidance avoids wasting \
     simulations on unused state)\n"

(* ------------------------------------------------------------------ *)
(* E4: WCET bound vs observation                                        *)

let e4 () =
  section "E4" "static WCET vs QTA path WCET vs dynamic cycles";
  Printf.printf "%-10s %10s %10s %10s %8s\n" "program" "dynamic" "path-wcet"
    "static" "ratio";
  List.iter
    (fun w ->
      Workloads.validate w;
      let p = Workloads.program w in
      match Flows.wcet_flow ~annotations:w.Workloads.w_annotations p with
      | Error e ->
          Printf.printf "%-10s analysis error: %s\n" w.Workloads.w_name
            (S4e_wcet.Analysis.describe_error e)
      | Ok r ->
          assert (r.Flows.wr_dynamic <= r.Flows.wr_path);
          assert (r.Flows.wr_path <= r.Flows.wr_static);
          Printf.printf "%-10s %10d %10d %10d %8.2f\n" w.Workloads.w_name
            r.Flows.wr_dynamic r.Flows.wr_path r.Flows.wr_static
            (float_of_int r.Flows.wr_static /. float_of_int r.Flows.wr_dynamic))
    Workloads.all;
  Printf.printf
    "(soundness: dynamic <= path <= static on every row; ratios reflect \
     the simple pipeline model's per-path overestimation)\n";
  (* ablation: hazard modeling on vs off *)
  let nh = S4e_cpu.Timing_model.without_hazards S4e_cpu.Timing_model.default in
  Printf.printf "\nload-use hazard modeling ablation (static bound / dynamic):\n";
  Printf.printf "%-10s %14s %14s\n" "program" "with hazards" "without";
  List.iter
    (fun w ->
      let p = Workloads.program w in
      let annotations = w.Workloads.w_annotations in
      match
        (Flows.wcet_flow ~annotations p, Flows.wcet_flow ~annotations ~model:nh p)
      with
      | Ok a, Ok b ->
          Printf.printf "%-10s %8d/%-6d %8d/%-6d\n" w.Workloads.w_name
            a.Flows.wr_static a.Flows.wr_dynamic b.Flows.wr_static
            b.Flows.wr_dynamic
      | _, _ -> Printf.printf "%-10s analysis error\n" w.Workloads.w_name)
    Workloads.all;
  Printf.printf
    "(each model is sound against its own dynamic measurement; modeling \
     stalls moves both numbers up consistently)\n"

(* ------------------------------------------------------------------ *)
(* E5: plugin overhead                                                  *)

let e5 () =
  section "E5" "co-simulation overhead of the plugin API clients";
  let p = Workloads.program Workloads.mix in
  let acfg =
    match S4e_wcet.Annotated_cfg.of_program p with
    | Ok a -> a
    | Error e -> failwith (S4e_wcet.Analysis.describe_error e)
  in
  let run_plain () =
    let m = Machine.create () in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:100_000)
  in
  let run_with_coverage () =
    let m = Machine.create () in
    let c = S4e_coverage.Collector.attach m () in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:100_000);
    S4e_coverage.Collector.detach m c
  in
  let run_with_qta () =
    let m = Machine.create () in
    let q = S4e_wcet.Qta.attach m acfg in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:100_000);
    S4e_wcet.Qta.detach m q
  in
  let run_with_both () =
    let m = Machine.create () in
    let c = S4e_coverage.Collector.attach m () in
    let q = S4e_wcet.Qta.attach m acfg in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:100_000);
    S4e_wcet.Qta.detach m q;
    S4e_coverage.Collector.detach m c
  in
  let tests =
    [ Test.make ~name:"plain" (Staged.stage run_plain);
      Test.make ~name:"+coverage" (Staged.stage run_with_coverage);
      Test.make ~name:"+qta" (Staged.stage run_with_qta);
      Test.make ~name:"+both" (Staged.stage run_with_both) ]
  in
  let results = benchmark_ns tests in
  let plain = find_ns results "plain" in
  Printf.printf "%-12s %12s %10s\n" "config" "ms/run" "slowdown";
  List.iter
    (fun name ->
      let ns = find_ns results name in
      Printf.printf "%-12s %12.2f %9.2fx\n" name (ns /. 1e6) (ns /. plain))
    [ "plain"; "+coverage"; "+qta"; "+both" ];
  Printf.printf
    "(the QTA tool demo's point: version-independent instrumentation at \
     modest slowdown)\n"

(* ------------------------------------------------------------------ *)
(* E6: BMI speedups                                                     *)

let e6 () =
  section "E6" "BMI vs base-ISA cycle counts on crypto kernels";
  Printf.printf "%-10s %10s %10s %9s %10s %10s %9s\n" "kernel" "base-cyc"
    "bmi-cyc" "speedup" "base-inst" "bmi-inst" "reduction";
  List.iter
    (fun k ->
      let base = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Base ~n:256 ~seed:42 in
      let bmi = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Bmi ~n:256 ~seed:42 in
      assert (base.S4e_bmi.Kernels.m_checksum = bmi.S4e_bmi.Kernels.m_checksum);
      Printf.printf "%-10s %10d %10d %8.2fx %10d %10d %8.1f%%\n"
        k.S4e_bmi.Kernels.k_name base.S4e_bmi.Kernels.m_cycles
        bmi.S4e_bmi.Kernels.m_cycles
        (float_of_int base.S4e_bmi.Kernels.m_cycles
        /. float_of_int bmi.S4e_bmi.Kernels.m_cycles)
        base.S4e_bmi.Kernels.m_instret bmi.S4e_bmi.Kernels.m_instret
        (100.0
        *. (1.0
           -. float_of_int bmi.S4e_bmi.Kernels.m_instret
              /. float_of_int base.S4e_bmi.Kernels.m_instret)))
    S4e_bmi.Kernels.all;
  Printf.printf
    "(paper: \"significant impact for time and power consuming \
     cryptographic applications\")\n"

(* ------------------------------------------------------------------ *)
(* E7: DecodeTree vs hand decoder                                       *)

let e7 () =
  section "E7" "DecodeTree-generated decoder vs hand decoder";
  (* correctness sweep *)
  let tree = S4e_isa.Decodetree.rv32 () in
  let sweep = 2_000_000 in
  let rng = Random.State.make [| 4242 |] in
  let mismatches = ref 0 in
  let decoded = ref 0 in
  for _ = 1 to sweep do
    let w =
      (Random.State.bits rng lor (Random.State.bits rng lsl 15))
      land 0xFFFF_FFFF lor 0x3
    in
    let a = S4e_isa.Decode.decode w in
    let b = S4e_isa.Decodetree.decode tree w in
    (match a with Some _ -> incr decoded | None -> ());
    if not (Option.equal S4e_isa.Instr.equal a b) then incr mismatches
  done;
  Printf.printf "random sweep: %d words, %d decoded, %d mismatches\n" sweep
    !decoded !mismatches;
  let stats = S4e_isa.Decodetree.stats tree in
  Printf.printf
    "tree shape: %d rows, %d switch nodes, %d leaves, depth %d, widest \
     leaf %d\n"
    stats.S4e_isa.Decodetree.rows stats.S4e_isa.Decodetree.switch_nodes
    stats.S4e_isa.Decodetree.leaves stats.S4e_isa.Decodetree.max_depth
    stats.S4e_isa.Decodetree.max_leaf_width;
  (* throughput *)
  let words =
    Array.init 4096 (fun i ->
        let r = Random.State.make [| i |] in
        (Random.State.bits r lor (Random.State.bits r lsl 15))
        land 0xFFFF_FFFF lor 0x3)
  in
  let bench_decoder decode () =
    let acc = ref 0 in
    Array.iter
      (fun w -> match decode w with Some _ -> incr acc | None -> ())
      words;
    !acc
  in
  let results =
    benchmark_ns
      [ Test.make ~name:"hand" (Staged.stage (bench_decoder S4e_isa.Decode.decode));
        Test.make ~name:"decodetree"
          (Staged.stage (bench_decoder (S4e_isa.Decodetree.decode tree))) ]
  in
  let hand = find_ns results "hand" and dt = find_ns results "decodetree" in
  Printf.printf "decode of 4096 words: hand %.1f us, decodetree %.1f us \
                 (ratio %.2f)\n"
    (hand /. 1e3) (dt /. 1e3) (dt /. hand);
  Printf.printf
    "(identical decisions on every word; the generic tree pays an \
     interpretation overhead vs. the hand-specialized matcher, which \
     QEMU erases by emitting the tree as C — the TB cache hides the \
     residual cost: decode runs once per block)\n"

(* ------------------------------------------------------------------ *)
(* E8: IO guard detection                                               *)

let e8 () =
  section "E8" "UART access monitor: detection latency, zero false positives";
  let source = {|
  .equ UART,  0x10000000
_start:
  li   s0, UART
  li   s1, 0x2739
  li   a0, 0
  li   s2, 0
  li   s3, 4
read_loop:
  lbu  a1, 0(s0)
  slli a0, a0, 4
  andi a1, a1, 0x0f
  or   a0, a0, a1
  addi s2, s2, 1
  blt  s2, s3, read_loop
  bne  a0, s1, reject
  call lock_driver_open
  j    done
reject:
  li   a2, 0x4f
  sb   a2, 0(s0)          # exploit: direct lock poke
done:
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
lock_driver_open:
  li   t2, UART
  li   t3, 0x4f
  sb   t3, 0(t2)
  ret
|} in
  let p = S4e_asm.Assembler.assemble_exn source in
  let driver = Option.get (S4e_asm.Program.symbol p "lock_driver_open") in
  let attempt pin =
    let m = Machine.create () in
    let guard =
      S4e_core.Io_guard.attach m
        [ { S4e_core.Io_guard.p_device = "uart";
            p_allowed = [ (driver, driver + 20) ];
            p_restrict = S4e_core.Io_guard.Restrict_writes } ]
    in
    S4e_asm.Program.load_machine p m;
    S4e_soc.Uart.feed m.Machine.uart pin;
    let _ = Machine.run m ~fuel:10_000 in
    (S4e_core.Io_guard.violations guard, Machine.instret m)
  in
  let ok_violations, ok_instret = attempt "\x02\x07\x03\x09" in
  Printf.printf "authorized run:   %d violations in %d instructions \
                 (false-positive rate 0)\n"
    (List.length ok_violations) ok_instret;
  let bad_violations, bad_instret = attempt "\x01\x01\x01\x01" in
  (match bad_violations with
  | v :: _ ->
      Printf.printf
        "exploit run:      detected at instruction %d of %d (pc 0x%08x)\n"
        v.S4e_core.Io_guard.v_instret bad_instret v.S4e_core.Io_guard.v_pc
  | [] -> Printf.printf "exploit run:      NOT DETECTED (unexpected)\n");
  (* monitoring overhead *)
  let mixp = Workloads.program Workloads.mix in
  let run_guarded guarded () =
    let m = Machine.create () in
    let g =
      if guarded then
        Some
          (S4e_core.Io_guard.attach m
             [ { S4e_core.Io_guard.p_device = "uart"; p_allowed = [];
                 p_restrict = S4e_core.Io_guard.Restrict_writes } ])
      else None
    in
    S4e_asm.Program.load_machine mixp m;
    ignore (Machine.run m ~fuel:100_000);
    ignore g
  in
  let results =
    benchmark_ns
      [ Test.make ~name:"unmonitored" (Staged.stage (run_guarded false));
        Test.make ~name:"monitored" (Staged.stage (run_guarded true)) ]
  in
  let u = find_ns results "unmonitored" and g = find_ns results "monitored" in
  Printf.printf "monitoring overhead on the mix workload: %.1f%%\n"
    (100.0 *. ((g /. u) -. 1.0));
  Printf.printf
    "(the security paper's claim: non-invasive, early detection of \
     unauthorized IO)\n"

(* ------------------------------------------------------------------ *)
(* E9: emulation throughput and the TB cache                            *)

let e9 () =
  section "E9" "emulation throughput with and without the TB cache";
  let programs =
    (Workloads.mix :: Workloads.all)
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  let instret_of p config =
    let m = Machine.create ~config () in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel:1_000_000);
    Machine.instret m
  in
  Printf.printf "%-10s %12s %14s %14s %8s\n" "workload" "instrs" "cached MIPS"
    "uncached MIPS" "ratio";
  List.iter
    (fun (name, p) ->
      let cached_cfg = Machine.default_config in
      let uncached_cfg =
        { Machine.default_config with Machine.use_tb_cache = false }
      in
      let n = instret_of p cached_cfg in
      let run config () =
        let m = Machine.create ~config () in
        S4e_asm.Program.load_machine p m;
        ignore (Machine.run m ~fuel:1_000_000)
      in
      let results =
        benchmark_ns
          [ Test.make ~name:"cached" (Staged.stage (run cached_cfg));
            Test.make ~name:"uncached" (Staged.stage (run uncached_cfg)) ]
      in
      let mips ns = float_of_int n /. (ns /. 1e9) /. 1e6 in
      let c = find_ns results "cached" and u = find_ns results "uncached" in
      Printf.printf "%-10s %12d %14.2f %14.2f %7.2fx\n" name n (mips c)
        (mips u) (u /. c))
    programs;
  Printf.printf
    "(the TB cache is the QEMU TCG analogue; the ratio justifies the \
     block-based design)\n";
  (* appendix: observational cache-model plugin (hit rates, two sizes) *)
  let module C = S4e_cpu.Cache_model in
  let small = C.geometry ~ways:2 ~line_bytes:32 ~total_bytes:1024 () in
  let big = C.geometry ~ways:2 ~line_bytes:32 ~total_bytes:8192 () in
  Printf.printf "\ncache-model plugin (icache%%/dcache%% hits):\n";
  Printf.printf "%-10s %16s %16s\n" "workload" "1 KiB caches" "8 KiB caches";
  List.iter
    (fun (name, p) ->
      let rates geo =
        let m = Machine.create () in
        let caches = C.attach ~icache:geo ~dcache:geo m in
        S4e_asm.Program.load_machine p m;
        ignore (Machine.run m ~fuel:1_000_000);
        ( 100.0 *. C.hit_rate (C.icache_stats caches),
          100.0 *. C.hit_rate (C.dcache_stats caches) )
      in
      let si, sd = rates small in
      let bi, bd = rates big in
      Printf.printf "%-10s %7.1f / %-6.1f %7.1f / %-6.1f\n" name si sd bi bd)
    programs

(* ------------------------------------------------------------------ *)
(* E10: mutation analysis as a test-quality metric                      *)

let e10 () =
  section "E10" "binary mutation score vs. test-suite strength";
  let source = {|
  .equ UART, 0x10000000
  .equ EXIT, 0x00100000
_start:
  li   s0, UART
  lbu  a0, 0(s0)
  lbu  a1, 0(s0)
  # weighted key check with a saturation step
  slli a2, a0, 3
  add  a2, a2, a1
  li   a3, 200
  min  a2, a2, a3
  addi a2, a2, -100
  bltz a2, low
  li   a4, 'H'
  sb   a4, 0(s0)
  li   a5, 1
  j    finish
low:
  li   a4, 'L'
  sb   a4, 0(s0)
  li   a5, 0
finish:
  li   t1, EXIT
  sw   a5, 0(t1)
  ebreak
|} in
  let p = S4e_asm.Assembler.assemble_exn source in
  let module Mutant = S4e_mutation.Mutant in
  let module Score = S4e_mutation.Score in
  let mutants = Mutant.generate p in
  Printf.printf "target: pin classifier, %d mutants over %d bytes of code\n"
    (List.length mutants) (S4e_asm.Program.size p);
  let suites =
    [ ("1 test (happy path)", [ Score.test ~name:"t1" "\x20\x10" ]);
      ("2 tests (+reject)",
       [ Score.test ~name:"t1" "\x20\x10"; Score.test ~name:"t2" "\x01\x01" ]);
      ("4 tests (+boundaries)",
       [ Score.test ~name:"t1" "\x20\x10"; Score.test ~name:"t2" "\x01\x01";
         Score.test ~name:"t3" "\x0c\x04"; Score.test ~name:"t4" "\x0c\x03" ]);
      ("6 tests (+saturation)",
       [ Score.test ~name:"t1" "\x20\x10"; Score.test ~name:"t2" "\x01\x01";
         Score.test ~name:"t3" "\x0c\x04"; Score.test ~name:"t4" "\x0c\x03";
         Score.test ~name:"t5" "\x7f\x7f"; Score.test ~name:"t6" "\x19\x03" ]) ]
  in
  Printf.printf "%-24s %8s %10s %10s\n" "suite" "killed" "survived" "score";
  List.iter
    (fun (label, tests) ->
      let s = Score.summarize (Score.run p ~tests ~mutants) in
      Printf.printf "%-24s %8d %10d %9.1f%%\n" label s.Score.s_killed
        s.Score.s_survived (100.0 *. s.Score.s_score))
    suites;
  let _, strongest = List.nth suites 3 in
  let results = Score.run p ~tests:strongest ~mutants in
  let s = Score.summarize results in
  Printf.printf "\nper-operator kill rates (strongest suite):\n";
  List.iter
    (fun (op, k, t) ->
      if t > 0 then
        Printf.printf "  %-4s %-38s %3d/%3d\n" (S4e_mutation.Mutop.name op)
          (S4e_mutation.Mutop.describe op) k t)
    s.Score.s_per_operator;
  let survivors = Score.survivors results in
  Printf.printf "surviving mutants (equivalence candidates / missing tests):\n";
  List.iteri
    (fun i m -> if i < 6 then Printf.printf "  %s\n" (Mutant.describe m))
    survivors;
  Printf.printf
    "(the mutation-analysis companions' metric: scores grow with \
     directed tests; survivors point at missing stimuli)\n"

(* ------------------------------------------------------------------ *)
(* E11: WCET-to-schedulability flow (RTA on analyzer-derived bounds)    *)

let e11 () =
  section "E11" "response-time analysis on statically bounded tasks";
  let image = {|
_start:
  ebreak

# sensor sampling task: 8-tap average
task_sample:
  la   a0, window
  li   a1, 0
  li   a2, 8
  li   a3, 0
smp:
  slli a4, a1, 2
  add  a5, a0, a4
  lw   a6, 0(a5)
  add  a3, a3, a6
  addi a1, a1, 1
  blt  a1, a2, smp
  srai a3, a3, 3
  mret

# control law task: 16-step PI iteration
task_control:
  li   a0, 0
  li   a1, 0
  li   a2, 16
ctl:
  add  a1, a1, a0
  srai a3, a1, 4
  addi a0, a0, 3
  addi a2, a2, -1
  bgtz a2, ctl
  mret

# logging task: CRC over 12 bytes
task_log:
  li   s0, 0
  li   s1, 12
  li   a0, -1
  li   s3, 0xedb88320
  li   a4, 8
lg_byte:
  la   a1, window
  add  a1, a1, s0
  lbu  a2, 0(a1)
  xor  a0, a0, a2
  li   s2, 0
lg_bit:
  andi a3, a0, 1
  srli a0, a0, 1
  beqz a3, lg_skip
  xor  a0, a0, s3
lg_skip:
  addi s2, s2, 1
  blt  s2, a4, lg_bit
  addi s0, s0, 1
  blt  s0, s1, lg_byte
  mret

  .data
window:
  .word 100, 220, 180, 90, 310, 240, 160, 200
|} in
  let p = S4e_asm.Assembler.assemble_exn image in
  let periods =
    [ ("task_sample", 700); ("task_control", 2500); ("task_log", 9000) ]
  in
  let print_for label model =
    match S4e_rtos.Rta.of_program ~model p ~tasks:periods with
    | Error m -> Printf.printf "%s: bridge failed: %s\n" label m
    | Ok tasks ->
        Printf.printf "%s:\n" label;
        Format.printf "%a" S4e_rtos.Rta.pp (S4e_rtos.Rta.analyze tasks)
  in
  print_for "default core model" S4e_cpu.Timing_model.default;
  print_for "rocket-like model" S4e_cpu.Timing_model.rocket_like;
  (* sensitivity: tighten the sampling period until the set breaks *)
  (match S4e_rtos.Rta.of_program p ~tasks:periods with
  | Error _ -> ()
  | Ok tasks ->
      let with_sample_period period =
        List.map
          (fun t ->
            if t.S4e_rtos.Rta.tk_name = "task_sample" then
              { t with S4e_rtos.Rta.tk_period = period; tk_deadline = period }
            else t)
          tasks
      in
      Printf.printf "\nsampling-period sensitivity:\n";
      List.iter
        (fun period ->
          let a = S4e_rtos.Rta.analyze (with_sample_period period) in
          Printf.printf "  T_sample=%-5d utilization %.3f -> %s\n" period
            a.S4e_rtos.Rta.a_utilization
            (if a.S4e_rtos.Rta.a_schedulable then "schedulable"
             else "DEADLINE MISS"))
        [ 700; 300; 150; 100; 80 ]);
  Printf.printf
    "(closing the loop the schedulability companions describe: static \
     WCET bounds feed classical fixed-priority response-time analysis)\n"

(* ------------------------------------------------------------------ *)
(* E12: campaign-engine throughput (snapshot fork, early exit, pool)    *)

let e12 () =
  section "E12"
    "fault-campaign engine: snapshot forking, early exit, domain pool";
  let module C = S4e_fault.Campaign in
  let p = Workloads.program Workloads.dhrystone in
  let golden, cov = C.golden ~fuel:1_000_000 p in
  let instret = golden.C.sig_instret in
  (* hang-detection budget proportional to the golden run, as usual for
     campaigns: a Hung mutant costs [fuel] on every engine, so an
     unbounded budget would just measure hangs *)
  let fuel = 3 * instret in
  Printf.printf "workload: dhrystone (golden: %d instructions)\n" instret;
  (* The headline campaign is the SEU model — transient bit flips, the
     dominant class in radiation-induced fault studies and the class
     the fork+early-exit axes accelerate.  Register/data targets only:
     their outcomes are independent of translation-block segmentation,
     so every engine below must agree bit-for-bit (asserted). *)
  let faults =
    C.generate ~seed:7 ~n:200 ~targets:[ `Gpr; `Data ]
      ~kinds:[ `Transient ] ~coverage:cov ~golden_instret:instret
  in
  let n = List.length faults in
  (* min-of-3 wall clock: this box is noisy and each run is short *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r1, t1 = once () in
    let _, t2 = once () in
    let _, t3 = once () in
    (r1, List.fold_left min t1 [ t2; t3 ])
  in
  let campaign engine jobs faults =
    time (fun () -> C.run ~engine ~jobs ~fuel p ~golden faults)
  in
  let r_naive, t_naive = campaign C.rerun_engine 1 faults in
  let r_eng, t_eng = campaign C.default_engine 1 faults in
  let r_par, t_par = campaign C.default_engine 4 faults in
  assert (r_naive = r_eng);
  assert (r_eng = r_par);
  let s = C.summarize r_eng in
  Printf.printf
    "SEU campaign: %d transients -> %d masked, %d sdc, %d crashed, %d \
     hung\n"
    s.C.total s.C.masked s.C.sdc s.C.crashed s.C.hung;
  let thr t = float_of_int n /. t in
  Printf.printf "%-30s %10s %12s\n" "engine" "seconds" "faults/sec";
  List.iter
    (fun (label, t) ->
      Printf.printf "%-30s %10.3f %12.0f\n" label t (thr t);
      record ~exp:"e12" ~name:(label ^ "-throughput") ~value:(thr t)
        ~unit_:"faults/sec")
    [ ("naive-rerun", t_naive); ("engine-j1", t_eng); ("engine-j4", t_par) ];
  record ~exp:"e12" ~name:"engine-speedup" ~value:(t_naive /. t_eng)
    ~unit_:"x";
  Printf.printf
    "engine speedup over naive re-run: %.2fx (identical outcomes, \
     asserted)\n"
    (t_naive /. t_eng);
  (* stuck-at faults can neither fork (they act from reset) nor early
     exit (never inert), so a mixed campaign shows the blended gain *)
  let mixed =
    C.generate ~seed:8 ~n:200 ~targets:[ `Gpr; `Data ]
      ~kinds:[ `Permanent; `Transient ] ~coverage:cov
      ~golden_instret:instret
  in
  let rm_naive, tm_naive = campaign C.rerun_engine 1 mixed in
  let rm_eng, tm_eng = campaign C.default_engine 1 mixed in
  assert (rm_naive = rm_eng);
  record ~exp:"e12" ~name:"mixed-kind-speedup" ~value:(tm_naive /. tm_eng)
    ~unit_:"x";
  Printf.printf
    "mixed permanent+transient campaign: naive %.3fs, engine %.3fs \
     (%.2fx)\n"
    tm_naive tm_eng (tm_naive /. tm_eng);
  (* the fork axis in isolation: transients injected near the end of
     the golden run, where re-running the shared prefix dominates *)
  let late =
    List.init 40 (fun i ->
        { S4e_fault.Fault.loc = S4e_fault.Fault.Gpr (10 + (i mod 8), i mod 32);
          kind = S4e_fault.Fault.Transient (instret - 1 - (i * 7 mod 2000)) })
  in
  let rl_naive, tl_naive =
    time (fun () -> C.run ~engine:C.rerun_engine ~fuel p ~golden late)
  in
  let rl_fork, tl_fork =
    time (fun () -> C.run ~engine:C.default_engine ~fuel p ~golden late)
  in
  assert (rl_naive = rl_fork);
  record ~exp:"e12" ~name:"late-transient-fork-speedup"
    ~value:(tl_naive /. tl_fork) ~unit_:"x";
  Printf.printf
    "late transients (40 mutants near instret %d): naive %.3fs, \
     fork+exit %.3fs (%.2fx)\n"
    instret tl_naive tl_fork (tl_naive /. tl_fork);
  Printf.printf
    "(one-core container: -j shows pool overhead only; on real \
     multicore hosts the jobs axis multiplies the algorithmic gains — \
     outcomes stay bit-identical either way)\n"

(* ------------------------------------------------------------------ *)
(* E13: closure-lowered blocks, chaining, hoisted overheads             *)

let e13 () =
  section "E13"
    "closure-lowered translation blocks: lowering, chaining, batching";
  let fuel = 1_000_000 in
  (* superblocks pinned off in every arm: this experiment isolates the
     lowering and chaining axes; the trace layer on top is E16's *)
  let generic_cfg =
    { Machine.default_config with
      Machine.lower_blocks = false; superblocks = false }
  in
  let lowered_cfg =
    { Machine.default_config with
      Machine.chain_blocks = false; superblocks = false }
  in
  let chained_cfg =
    { Machine.default_config with Machine.superblocks = false }
  in
  let finish p config =
    let m = Machine.create ~config () in
    S4e_asm.Program.load_machine p m;
    ignore (Machine.run m ~fuel);
    m
  in
  (* min-of-3 wall clock, as in E12: short runs on a noisy box *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let t1 = once () in
    let t2 = once () in
    let t3 = once () in
    List.fold_left min t1 [ t2; t3 ]
  in
  (* throughput-sized workloads only: the tiny WCET micro-kernels (fib,
     search, calls; < 200 instructions) measure machine construction,
     not execution *)
  let programs =
    [ Workloads.mix; Workloads.dhrystone; Workloads.bubble_sort;
      Workloads.matmul; Workloads.crc32 ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  Printf.printf "%-10s %10s %9s %9s %9s %9s %7s\n" "workload" "instrs"
    "generic" "lowered" "chained" "chain%" "speedup";
  Printf.printf "%-10s %10s %9s %9s %9s %9s %7s\n" "" "" "(MIPS)" "(MIPS)"
    "(MIPS)" "" "";
  let ratios =
    List.map
      (fun (name, p) ->
        (* correctness gate first: every engine must agree bit-for-bit
           (including cycle counters and mtime) before we time anything *)
        let m_ref = finish p generic_cfg in
        let d_ref = Machine.state_digest ~include_time:true m_ref in
        List.iter
          (fun (ename, config) ->
            let m = finish p config in
            if Machine.state_digest ~include_time:true m <> d_ref then
              failwith
                (Printf.sprintf "E13: %s digest mismatch on %s" ename name))
          [ ("lowered", lowered_cfg); ("chained", chained_cfg);
            ("single-step",
             { Machine.default_config with Machine.use_tb_cache = false }) ];
        let n1 = Machine.instret m_ref in
        (* steady-state throughput: re-run the image on the same machine
           (reset keeps memory and the warm TB cache) until each timed
           sample covers >= 200k instructions.  Execution is
           deterministic and digest-identical across engines, so every
           engine runs the exact same instruction sequence. *)
        let reps = max 1 (200_000 / max n1 1) in
        let run config () =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          ignore (Machine.run m ~fuel);
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel)
          done;
          m
        in
        (* instruction total over the rep sequence (identical for every
           engine; reps after the first may differ slightly from the
           first because the image's data segment carries over) *)
        let n =
          let m = Machine.create ~config:chained_cfg () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          let tot = ref 0 in
          ignore (Machine.run m ~fuel);
          tot := !tot + Machine.instret m;
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel);
            tot := !tot + Machine.instret m
          done;
          !tot
        in
        let mips t = float_of_int n /. t /. 1e6 in
        let tg = time (fun () -> ignore (run generic_cfg ())) in
        let tl = time (fun () -> ignore (run lowered_cfg ())) in
        let tc = time (fun () -> ignore (run chained_cfg ())) in
        (* chain hit rate over the same rep sequence *)
        let mc = run chained_cfg () in
        let ts = S4e_cpu.Tb_cache.stats mc.Machine.tb in
        let chained_hits = ts.S4e_cpu.Tb_cache.st_chain_hits in
        let dispatches =
          ts.S4e_cpu.Tb_cache.st_hits + ts.S4e_cpu.Tb_cache.st_misses
          + chained_hits
        in
        let chain_pct =
          if dispatches = 0 then 0.0
          else pct (float_of_int chained_hits /. float_of_int dispatches)
        in
        let speedup = tg /. tc in
        Printf.printf "%-10s %10d %9.2f %9.2f %9.2f %8.1f%% %6.2fx\n" name n
          (mips tg) (mips tl) (mips tc) chain_pct speedup;
        record ~exp:"e13" ~name:(name ^ "/generic-mips") ~value:(mips tg)
          ~unit_:"MIPS";
        record ~exp:"e13" ~name:(name ^ "/lowered-mips") ~value:(mips tl)
          ~unit_:"MIPS";
        record ~exp:"e13" ~name:(name ^ "/chained-mips") ~value:(mips tc)
          ~unit_:"MIPS";
        record ~exp:"e13" ~name:(name ^ "/speedup") ~value:speedup
          ~unit_:"ratio";
        speedup)
      programs
  in
  let geomean =
    exp (List.fold_left (fun a r -> a +. log r) 0.0 ratios
         /. float_of_int (List.length ratios))
  in
  record ~exp:"e13" ~name:"geomean-speedup" ~value:geomean ~unit_:"ratio";
  Printf.printf
    "geomean speedup (lowered+chained over the generic TB interpreter): \
     %.2fx\n"
    geomean;
  Printf.printf
    "(dispatch, timing, and hazard lookups hoisted to translate time; \
     digest-identical to the generic engine on every workload — asserted \
     above)\n"

(* ------------------------------------------------------------------ *)
(* E14: telemetry overhead of the unified observability layer           *)

let e14 () =
  section "E14"
    "telemetry overhead: metrics registered / profiler attached";
  let module Obs = S4e_obs in
  let fuel = 1_000_000 in
  let cfg = Machine.default_config in
  (* min-of-5 wall clock: the deltas measured here are small (the whole
     point), so take more samples than E13 does *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let best = ref (once ()) in
    for _ = 2 to 5 do
      best := min !best (once ())
    done;
    !best
  in
  let programs =
    [ Workloads.mix; Workloads.dhrystone ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  Printf.printf "%-10s %9s %9s %9s %10s %10s\n" "workload" "plain"
    "metrics" "profiler" "metrics" "profiler";
  Printf.printf "%-10s %9s %9s %9s %10s %10s\n" "" "(MIPS)" "(MIPS)"
    "(MIPS)" "(overhd)" "(overhd)";
  List.iter
    (fun (name, p) ->
      (* same steady-state rep sizing as E13 *)
      let n1 =
        let m = Machine.create ~config:cfg () in
        S4e_asm.Program.load_machine p m;
        ignore (Machine.run m ~fuel);
        Machine.instret m
      in
      let reps = max 1 (200_000 / max n1 1) in
      (* [instrument] decorates a fresh machine before the run; the run
         itself is the identical rep loop for every variant *)
      let run instrument () =
        let m = Machine.create ~config:cfg () in
        instrument m;
        S4e_asm.Program.load_machine p m;
        let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
        ignore (Machine.run m ~fuel);
        for _ = 2 to reps do
          Machine.reset m ~pc:entry;
          ignore (Machine.run m ~fuel)
        done;
        m
      in
      let n = reps * n1 in
      let mips t = float_of_int n /. t /. 1e6 in
      (* correctness gate: telemetry must not perturb execution *)
      let d_plain =
        Machine.state_digest ~include_time:true (run ignore ())
      in
      let with_profiler m =
        Machine.set_profiler m (Some (Obs.Profile.create ()))
      in
      let with_metrics m =
        Machine.register_metrics m (Obs.Metrics.create ())
      in
      List.iter
        (fun (vname, instrument) ->
          let d =
            Machine.state_digest ~include_time:true (run instrument ())
          in
          if d <> d_plain then
            failwith
              (Printf.sprintf "E14: %s digest mismatch on %s" vname name))
        [ ("metrics", with_metrics); ("profiler", with_profiler) ];
      let tp = time (fun () -> ignore (run ignore ())) in
      let tm = time (fun () -> ignore (run with_metrics ())) in
      let tf = time (fun () -> ignore (run with_profiler ())) in
      let ovh t = pct ((t /. tp) -. 1.0) in
      Printf.printf "%-10s %9.2f %9.2f %9.2f %9.1f%% %9.1f%%\n" name
        (mips tp) (mips tm) (mips tf) (ovh tm) (ovh tf);
      record ~exp:"e14" ~name:(name ^ "/plain-mips") ~value:(mips tp)
        ~unit_:"MIPS";
      record ~exp:"e14" ~name:(name ^ "/metrics-mips") ~value:(mips tm)
        ~unit_:"MIPS";
      record ~exp:"e14" ~name:(name ^ "/profiler-mips") ~value:(mips tf)
        ~unit_:"MIPS";
      record ~exp:"e14" ~name:(name ^ "/metrics-overhead") ~value:(ovh tm)
        ~unit_:"%";
      record ~exp:"e14" ~name:(name ^ "/profiler-overhead") ~value:(ovh tf)
        ~unit_:"%")
    programs;
  (* a metric snapshot from an instrumented run, dumped into --json so
     trend tracking sees the counters alongside the timings *)
  let reg = Obs.Metrics.create () in
  let m = Machine.create ~config:cfg () in
  Machine.register_metrics m reg;
  S4e_asm.Program.load_machine (Workloads.program Workloads.mix) m;
  ignore (Machine.run m ~fuel);
  List.iter
    (fun (k, v) ->
      let value =
        match v with
        | Obs.Metrics.Int i -> float_of_int i
        | Obs.Metrics.Float f -> f
      in
      record ~exp:"e14" ~name:("metric/" ^ k) ~value ~unit_:"count")
    (Obs.Metrics.snapshot reg);
  Printf.printf
    "(gauges are pull-only probes and the profiler hooks block exits \
     only; digest-identical to the plain engine on both workloads — \
     asserted above)\n"

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E15: the memory fast path — software TLB of direct page pointers     *)

let e15 () =
  section "E15"
    "memory fast path: software TLB with direct page pointers";
  let fuel = 1_000_000 in
  let tlb_cfg = Machine.default_config in
  let slow_cfg = { Machine.default_config with Machine.mem_tlb = false } in
  (* min-of-3 wall clock, as in E13 *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let t1 = once () in
    let t2 = once () in
    let t3 = once () in
    List.fold_left min t1 [ t2; t3 ]
  in
  (* Memory-heavy workloads only: stream (copy + checksum) and pchase
     (dependent loads) are load/store-dominated by construction; mix,
     dhrystone and sort interleave dense memory traffic with branches
     and ALU work.  The compute-bound kernels (matmul: mul-dominated;
     crc32: xor/shift chains) are measured by E13's general-throughput
     sweep instead — per Amdahl they dilute a memory-path experiment. *)
  let programs =
    [ Workloads.stream; Workloads.pchase; Workloads.mix;
      Workloads.dhrystone; Workloads.bubble_sort ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  Printf.printf
    "(excluded as compute-bound: matmul, crc32 — see E13 for those)\n";
  Printf.printf "%-10s %10s %9s %9s %8s %7s\n" "workload" "instrs"
    "tlb-off" "tlb-on" "tlb-hit%" "speedup";
  Printf.printf "%-10s %10s %9s %9s %8s %7s\n" "" "" "(MIPS)" "(MIPS)" "" "";
  let ratios =
    List.map
      (fun (name, p) ->
        (* correctness gate before timing: TLB on and off must be
           digest-identical on every engine *)
        let finish config =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          ignore (Machine.run m ~fuel);
          m
        in
        let m_ref = finish slow_cfg in
        let d_ref = Machine.state_digest ~include_time:true m_ref in
        List.iter
          (fun (ename, config) ->
            let m = finish config in
            if Machine.state_digest ~include_time:true m <> d_ref then
              failwith
                (Printf.sprintf "E15: %s digest mismatch on %s" ename name))
          [ ("tlb-on", tlb_cfg);
            ("tlb-on unchained",
             { tlb_cfg with Machine.chain_blocks = false });
            ("tlb-on generic-tb",
             { tlb_cfg with Machine.lower_blocks = false });
            ("tlb-on single-step",
             { tlb_cfg with Machine.use_tb_cache = false }) ];
        let n1 = Machine.instret m_ref in
        (* steady-state rep sizing, as in E13 *)
        let reps = max 1 (200_000 / max n1 1) in
        let run config () =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          ignore (Machine.run m ~fuel);
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel)
          done;
          m
        in
        let n =
          let m = Machine.create ~config:tlb_cfg () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          let tot = ref 0 in
          ignore (Machine.run m ~fuel);
          tot := !tot + Machine.instret m;
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel);
            tot := !tot + Machine.instret m
          done;
          !tot
        in
        let mips t = float_of_int n /. t /. 1e6 in
        let t_off = time (fun () -> ignore (run slow_cfg ())) in
        let t_on = time (fun () -> ignore (run tlb_cfg ())) in
        let m_on = run tlb_cfg () in
        let ts = S4e_mem.Bus.tlb_stats m_on.Machine.bus in
        let accesses = ts.S4e_mem.Bus.tlb_hits + ts.S4e_mem.Bus.tlb_misses in
        let hit_pct =
          if accesses = 0 then 0.0
          else pct (float_of_int ts.S4e_mem.Bus.tlb_hits
                    /. float_of_int accesses)
        in
        let speedup = t_off /. t_on in
        Printf.printf "%-10s %10d %9.2f %9.2f %7.1f%% %6.2fx\n" name n
          (mips t_off) (mips t_on) hit_pct speedup;
        record ~exp:"e15" ~name:(name ^ "/tlb-off-mips") ~value:(mips t_off)
          ~unit_:"MIPS";
        record ~exp:"e15" ~name:(name ^ "/tlb-on-mips") ~value:(mips t_on)
          ~unit_:"MIPS";
        record ~exp:"e15" ~name:(name ^ "/tlb-hit-rate") ~value:hit_pct
          ~unit_:"%";
        record ~exp:"e15" ~name:(name ^ "/speedup") ~value:speedup
          ~unit_:"ratio";
        speedup)
      programs
  in
  let geomean =
    exp (List.fold_left (fun a r -> a +. log r) 0.0 ratios
         /. float_of_int (List.length ratios))
  in
  record ~exp:"e15" ~name:"geomean-speedup" ~value:geomean ~unit_:"ratio";
  Printf.printf
    "geomean speedup (software TLB over full bus routing): %.2fx\n" geomean;
  Printf.printf
    "(a TLB hit is a tag compare plus direct page-buffer access — no \
     device scan, no hash lookup, no allocation; digest-identical to \
     the TLB-off run on every engine — asserted above)\n"

(* ------------------------------------------------------------------ *)
(* E16: profile-guided superblock traces over the chained engine        *)

let e16 () =
  section "E16"
    "superblock traces: hot chained paths recompiled as guarded traces";
  let fuel = 2_000_000 in
  let on_cfg = Machine.default_config in
  let off_cfg = { Machine.default_config with Machine.superblocks = false } in
  (* min-of-3 wall clock, as in E13 *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let t1 = once () in
    let t2 = once () in
    let t3 = once () in
    List.fold_left min t1 [ t2; t3 ]
  in
  (* the compute/branchy suite: loop-dominated kernels whose hot paths
     chain (the trace layer's target); branchy is the adversarial case
     with biased condition ladders and side paths *)
  let programs =
    [ Workloads.branchy; Workloads.mix; Workloads.dhrystone;
      Workloads.bubble_sort; Workloads.matmul; Workloads.crc32 ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  Printf.printf "%-10s %10s %9s %9s %7s %7s %8s %7s %7s\n" "workload"
    "instrs" "sb-off" "sb-on" "traces" "traced%" "bail%" "ins/run" "speedup";
  Printf.printf "%-10s %10s %9s %9s %7s %7s %8s %7s %7s\n" "" "" "(MIPS)"
    "(MIPS)" "" "" "" "" "";
  let ratios =
    List.map
      (fun (name, p) ->
        (* correctness gate before timing: traces on must be
           digest-identical (cycles and mtime included) to every other
           engine configuration *)
        let finish config =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          ignore (Machine.run m ~fuel);
          m
        in
        let m_ref = finish on_cfg in
        let d_ref = Machine.state_digest ~include_time:true m_ref in
        List.iter
          (fun (ename, config) ->
            let m = finish config in
            if Machine.state_digest ~include_time:true m <> d_ref then
              failwith
                (Printf.sprintf "E16: %s digest mismatch on %s" ename name))
          [ ("sb-off", off_cfg);
            ("sb-off tlb-off", { off_cfg with Machine.mem_tlb = false });
            ("unchained", { off_cfg with Machine.chain_blocks = false });
            ("generic-tb", { off_cfg with Machine.lower_blocks = false });
            ("single-step", { off_cfg with Machine.use_tb_cache = false }) ];
        let n1 = Machine.instret m_ref in
        (* steady-state rep sizing, as in E13: reset keeps RAM and the
           warm TB cache — and with it the promoted traces *)
        let reps = max 1 (200_000 / max n1 1) in
        let run config () =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          ignore (Machine.run m ~fuel);
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel)
          done;
          m
        in
        let n =
          let m = Machine.create ~config:on_cfg () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          let tot = ref 0 in
          ignore (Machine.run m ~fuel);
          tot := !tot + Machine.instret m;
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel);
            tot := !tot + Machine.instret m
          done;
          !tot
        in
        let mips t = float_of_int n /. t /. 1e6 in
        let t_off = time (fun () -> ignore (run off_cfg ())) in
        let t_on = time (fun () -> ignore (run on_cfg ())) in
        (* trace behavior over the same rep sequence *)
        let m_on = run on_cfg () in
        let st = Option.get (Machine.trace_stats m_on) in
        let traced_pct =
          pct (float_of_int st.S4e_cpu.Superblock.sb_instrs
               /. float_of_int (max 1 n))
        in
        let bail_pct =
          pct
            (float_of_int
               (st.S4e_cpu.Superblock.sb_execs
               - st.S4e_cpu.Superblock.sb_completions)
            /. float_of_int (max 1 st.S4e_cpu.Superblock.sb_execs))
        in
        let per_run =
          float_of_int st.S4e_cpu.Superblock.sb_instrs
          /. float_of_int (max 1 st.S4e_cpu.Superblock.sb_execs)
        in
        let speedup = t_off /. t_on in
        Printf.printf
          "%-10s %10d %9.2f %9.2f %7d %6.1f%% %7.1f%% %7.1f %6.2fx\n" name n
          (mips t_off) (mips t_on) st.S4e_cpu.Superblock.sb_promotions
          traced_pct bail_pct per_run speedup;
        record ~exp:"e16" ~name:(name ^ "/sb-off-mips") ~value:(mips t_off)
          ~unit_:"MIPS";
        record ~exp:"e16" ~name:(name ^ "/sb-on-mips") ~value:(mips t_on)
          ~unit_:"MIPS";
        record ~exp:"e16" ~name:(name ^ "/traced-instr-share")
          ~value:traced_pct ~unit_:"%";
        record ~exp:"e16" ~name:(name ^ "/speedup") ~value:speedup
          ~unit_:"ratio";
        speedup)
      programs
  in
  let geomean =
    exp (List.fold_left (fun a r -> a +. log r) 0.0 ratios
         /. float_of_int (List.length ratios))
  in
  record ~exp:"e16" ~name:"geomean-speedup" ~value:geomean ~unit_:"ratio";
  Printf.printf
    "geomean speedup (superblock traces over the chained engine): %.2fx\n"
    geomean;
  Printf.printf
    "(hot chain edges recompiled into guarded cross-block traces: fused \
     address constants and compare+branch pairs, batched accounting; \
     side exits restore exact architectural state — digest-identical \
     to every other engine, asserted above)\n"

(* ------------------------------------------------------------------ *)
(* E17: device-plane throughput — DMA bursts vs per-byte MMIO           *)

let e17 () =
  section "E17"
    "device plane: DMA-burst vs PIO throughput over the event wheel";
  let fuel = 10_000_000 in
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let t1 = once () in
    let t2 = once () in
    let t3 = once () in
    List.fold_left min t1 [ t2; t3 ]
  in
  let on_cfg = Machine.default_config in
  (* the I/O workloads: identical 32 KiB payload moved as 8 DMA bursts
     (interrupt-driven) vs 32768 per-byte RXDATA reads, plus the vnet
     rx driver as the mixed ring-service case *)
  let programs =
    [ (Workloads.dma_irq, 32768); (Workloads.mmio_copy, 32768);
      (Workloads.vnet_rx, 64 * 192) ]
    |> List.map (fun (w, bytes) ->
           Workloads.validate w;
           (w.Workloads.w_name, Workloads.program w, bytes))
  in
  Printf.printf "%-10s %9s %8s %9s %10s %8s %9s\n" "workload" "instrs"
    "(MIPS)" "payload" "MB/s" "wheel" "idle-skip";
  let rates =
    List.map
      (fun (name, p, bytes) ->
        (* correctness gate before timing: the device plane must be
           digest-identical (cycles and mtime included) on every
           engine configuration *)
        let finish config =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          ignore (Machine.run m ~fuel);
          m
        in
        let m_ref = finish on_cfg in
        let d_ref = Machine.state_digest ~include_time:true m_ref in
        let off_cfg = { on_cfg with Machine.superblocks = false } in
        List.iter
          (fun (ename, config) ->
            let m = finish config in
            if Machine.state_digest ~include_time:true m <> d_ref then
              failwith
                (Printf.sprintf "E17: %s digest mismatch on %s" ename name))
          [ ("sb-off", off_cfg);
            ("sb-off tlb-off", { off_cfg with Machine.mem_tlb = false });
            ("unchained", { off_cfg with Machine.chain_blocks = false });
            ("generic-tb", { off_cfg with Machine.lower_blocks = false });
            ("single-step", { off_cfg with Machine.use_tb_cache = false }) ];
        let n1 = Machine.instret m_ref in
        let reps = max 1 (400_000 / max n1 1) in
        let run () =
          let m = Machine.create ~config:on_cfg () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          ignore (Machine.run m ~fuel);
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel)
          done;
          m
        in
        let t = time (fun () -> ignore (run ())) in
        let m = run () in
        let ws = S4e_soc.Event_wheel.stats m.Machine.wheel in
        let n = n1 * reps in
        let mips = float_of_int n /. t /. 1e6 in
        let rate = float_of_int (bytes * reps) /. t in
        Printf.printf "%-10s %9d %8.2f %8dB %10.2f %8d %9d\n" name n1 mips
          bytes (rate /. 1e6) ws.S4e_soc.Event_wheel.ws_fired
          ws.S4e_soc.Event_wheel.ws_idle_skips;
        record ~exp:"e17" ~name:(name ^ "/mips") ~value:mips ~unit_:"MIPS";
        record ~exp:"e17" ~name:(name ^ "/throughput") ~value:rate
          ~unit_:"B/s";
        (name, rate))
      programs
  in
  let rate_of n = List.assoc n rates in
  let ratio = rate_of "dma_irq" /. rate_of "mmio_copy" in
  record ~exp:"e17" ~name:"dma-vs-pio-ratio" ~value:ratio ~unit_:"ratio";
  Printf.printf "DMA-burst throughput over per-byte MMIO: %.1fx\n" ratio;
  if ratio < 10.0 then
    failwith
      (Printf.sprintf "E17: DMA/PIO throughput ratio %.1fx below 10x" ratio);
  (* compute guard: attaching the device plane (two extra devices, the
     wheel consulted at every block exit) must not tax pure compute —
     the E16 suite with the plane on vs off *)
  let compute =
    [ Workloads.branchy; Workloads.mix; Workloads.dhrystone;
      Workloads.bubble_sort; Workloads.matmul; Workloads.crc32 ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  let off_cfg = { on_cfg with Machine.device_plane = false } in
  let ratios =
    List.map
      (fun (name, p) ->
        let m0 = Machine.create ~config:on_cfg () in
        S4e_asm.Program.load_machine p m0;
        ignore (Machine.run m0 ~fuel);
        let n1 = Machine.instret m0 in
        (* larger sample than the throughput table: the guard compares
           two runs that should differ by under 2%, so each measurement
           must sit well above timer/scheduler noise *)
        let reps = max 2 (2_000_000 / max n1 1) in
        let run config () =
          let m = Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
          ignore (Machine.run m ~fuel);
          for _ = 2 to reps do
            Machine.reset m ~pc:entry;
            ignore (Machine.run m ~fuel)
          done
        in
        (* best-of-3 per arm, samples interleaved: the two runs differ
           by under 2% when the host is quiet, so a single 40ms sample
           grazing a scheduler hiccup — or a host-speed drift between
           the off block and the on block — can swing the ratio past
           the 10% hard gate below *)
        let t_off = ref infinity and t_on = ref infinity in
        for _ = 1 to 3 do
          t_off := Float.min !t_off (time (run off_cfg));
          t_on := Float.min !t_on (time (run on_cfg))
        done;
        let r = !t_off /. !t_on in
        record ~exp:"e17" ~name:(name ^ "/devplane-mips-ratio") ~value:r
          ~unit_:"ratio";
        r)
      compute
  in
  let geomean =
    exp (List.fold_left (fun a r -> a +. log r) 0.0 ratios
         /. float_of_int (List.length ratios))
  in
  record ~exp:"e17" ~name:"compute-guard-geomean" ~value:geomean
    ~unit_:"ratio";
  Printf.printf
    "compute guard: device plane on/off geomean MIPS ratio %.3f \
     (1.0 = free; target >= 0.98 on a quiet machine)\n" geomean;
  (* hard gate only on gross regression: sub-0.9 cannot be explained by
     host timing noise and means the idle wheel leaked into the hot
     path; the precise <=2% target is judged from the recorded metric
     on a quiet machine *)
  if geomean < 0.90 then
    failwith
      (Printf.sprintf
         "E17: device plane costs %.1f%% on pure compute (budget 10%%)"
         ((1.0 -. geomean) *. 100.0));
  Printf.printf
    "(one next-deadline compare per block exit when idle; DMA bursts \
     move pages with host memcpy and invalidate translation blocks \
     only in the written range — digest-identical on every engine, \
     asserted above)\n"

(* ------------------------------------------------------------------ *)
(* E18: flight-recorder overhead and inertness                          *)

let e18 () =
  section "E18"
    "flight recorder: armed overhead, unarmed fast path, inertness gate";
  let module Obs = S4e_obs in
  let fuel = 1_000_000 in
  let cfg = Machine.default_config in
  (* min-of-5 wall clock, as in E14: the unarmed delta in particular is
     a single pointer test per block dispatch *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let best = ref (once ()) in
    for _ = 2 to 5 do
      best := min !best (once ())
    done;
    !best
  in
  let programs =
    [ Workloads.mix; Workloads.dhrystone ]
    |> List.map (fun w -> (w.Workloads.w_name, Workloads.program w))
  in
  Printf.printf "%-10s %9s %9s %10s\n" "workload" "plain" "recorded"
    "recorded";
  Printf.printf "%-10s %9s %9s %10s\n" "" "(MIPS)" "(MIPS)" "(overhd)";
  List.iter
    (fun (name, p) ->
      let n1 =
        let m = Machine.create ~config:cfg () in
        S4e_asm.Program.load_machine p m;
        ignore (Machine.run m ~fuel);
        Machine.instret m
      in
      let reps = max 1 (200_000 / max n1 1) in
      let run instrument () =
        let m = Machine.create ~config:cfg () in
        instrument m;
        S4e_asm.Program.load_machine p m;
        let entry = m.Machine.state.S4e_cpu.Arch_state.pc in
        ignore (Machine.run m ~fuel);
        for _ = 2 to reps do
          Machine.reset m ~pc:entry;
          ignore (Machine.run m ~fuel)
        done;
        m
      in
      let n = reps * n1 in
      let mips t = float_of_int n /. t /. 1e6 in
      let with_recorder m =
        Machine.set_recorder m (Some (Obs.Flight_recorder.create ()))
      in
      (* hard inertness gate: an armed recorder must be digest-identical
         to the plain run (stop reason and counters are covered by the
         differential tests; the digest covers the architectural state) *)
      let d_plain =
        Machine.state_digest ~include_time:true (run ignore ())
      in
      let m_rec = run with_recorder () in
      if Machine.state_digest ~include_time:true m_rec <> d_plain then
        failwith
          (Printf.sprintf "E18: recorder digest mismatch on %s" name);
      (match Machine.recorder m_rec with
      | Some r when Obs.Flight_recorder.length r > 0 -> ()
      | _ -> failwith "E18: armed recorder captured nothing");
      let tp = time (fun () -> ignore (run ignore ())) in
      let tr = time (fun () -> ignore (run with_recorder ())) in
      let ovh = pct ((tr /. tp) -. 1.0) in
      Printf.printf "%-10s %9.2f %9.2f %9.1f%%\n" name (mips tp) (mips tr)
        ovh;
      record ~exp:"e18" ~name:(name ^ "/plain-mips") ~value:(mips tp)
        ~unit_:"MIPS";
      record ~exp:"e18" ~name:(name ^ "/recorded-mips") ~value:(mips tr)
        ~unit_:"MIPS";
      record ~exp:"e18" ~name:(name ^ "/record-overhead") ~value:ovh
        ~unit_:"%")
    programs;
  Printf.printf
    "(unarmed runs pay one recorder-pointer test per block dispatch — \
     the plain column IS the unarmed fast path, gated against E13's \
     baseline by trend tracking; armed runs leave the superblock path \
     and capture pc/opcode/writeback/effective-address per retire, \
     digest-identical — asserted above)\n"

(* ------------------------------------------------------------------ *)
(* E19: SMP machine — determinism gates and scaling                     *)

let e19 () =
  section "E19"
    "SMP: single-hart no-regression, cross-engine/cross-slice digests, \
     scaling";
  let module Smp = S4e_torture.Smp in
  let module Torture = S4e_torture.Torture in
  let sb_off c = { c with Machine.superblocks = false } in
  let engines =
    [ ("lowered", sb_off Machine.default_config);
      ("unchained", sb_off { Machine.default_config with
                             Machine.chain_blocks = false });
      ("generic-tb", sb_off { Machine.default_config with
                              Machine.lower_blocks = false });
      ("single-step", sb_off { Machine.default_config with
                               Machine.use_tb_cache = false });
      ("tlb-off", sb_off { Machine.default_config with
                           Machine.mem_tlb = false });
      ("superblocks", Machine.default_config) ]
  in
  let digest_of ?(include_time = true) ?(include_instret = true) config p
      ~fuel =
    let m = Machine.create ~config () in
    S4e_asm.Program.load_machine p m;
    (match Machine.run m ~fuel with
    | Machine.Exited _ -> ()
    | stop ->
        failwith
          (Format.asprintf "E19: unexpected stop: %a" Machine.pp_stop_reason
             stop));
    ( Digest.to_hex (Machine.state_digest ~include_time ~include_instret m),
      Machine.instret m )
  in
  (* 1. single-hart anchor: a fixed torture program's full digest must
     agree across every engine AND match the value recorded when the
     multi-hart machine was introduced — the SMP machinery (per-hart
     contexts, scheduler, PLIC) must be invisible at harts = 1.  The
     anchor pins the serialized byte stream, so accidental format or
     semantics drift fails here even if all engines drift together. *)
  let golden = "eec064a6561fdec58438cc2bf2bc983b" in
  let anchor_cfg = Torture.default_config in
  let anchor = Torture.generate anchor_cfg in
  let anchor_fuel = Torture.fuel_bound anchor_cfg in
  List.iter
    (fun (name, config) ->
      let d, _ = digest_of config anchor ~fuel:anchor_fuel in
      if d <> golden then
        failwith
          (Printf.sprintf "E19: single-hart digest drift on %s: %s <> %s"
             name d golden))
    engines;
  Printf.printf "single-hart anchor: %s on all %d engines\n" golden
    (List.length engines);
  (* 2. SMP digest gates at 2 and 4 harts: every engine agrees on the
     full digest at the default slice, and the digest is invariant
     under the scheduler's slice size (full digest for the IPI ring,
     time/instret-masked for the spinlock, whose spin counts legitimately
     depend on the interleaving). *)
  let slices = [ 64; 256; 1024; 4096 ] in
  List.iter
    (fun harts ->
      let fuel = Smp.fuel ~harts ~rounds:8 in
      List.iter
        (fun (wname, p) ->
          let with_harts ?(slice = 1024) config =
            { config with Machine.harts; Machine.hart_slice = slice }
          in
          let reference, _ =
            digest_of (with_harts (snd (List.hd engines))) p ~fuel
          in
          List.iter
            (fun (name, config) ->
              let d, _ = digest_of (with_harts config) p ~fuel in
              if d <> reference then
                failwith
                  (Printf.sprintf "E19: %s@%d harts: engine %s diverges"
                     wname harts name))
            (List.tl engines);
          let relaxed = String.length wname >= 8
                        && String.sub wname 0 8 = "smp-spin" in
          let rd slice =
            let d, _ =
              digest_of
                ~include_time:(not relaxed) ~include_instret:(not relaxed)
                (with_harts ~slice Machine.default_config) p ~fuel
            in
            d
          in
          let r0 = rd (List.hd slices) in
          List.iter
            (fun slice ->
              if rd slice <> r0 then
                failwith
                  (Printf.sprintf "E19: %s@%d harts: slice %d diverges"
                     wname harts slice))
            (List.tl slices);
          Printf.printf
            "%-18s %d harts: engine-invariant, slice-invariant%s\n" wname
            harts (if relaxed then " (time/instret masked)" else ""))
        (Smp.suite ~harts ~rounds:8))
    [ 2; 4 ];
  (* 3. scaling: aggregate simulated MIPS of the spinlock workload as
     hart count grows (the host is one thread; this measures scheduler
     and coherence overhead, not parallel speedup) *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let best = ref (once ()) in
    for _ = 2 to 5 do
      best := min !best (once ())
    done;
    !best
  in
  Printf.printf "%-10s %12s %10s\n" "harts" "instructions" "MIPS";
  List.iter
    (fun harts ->
      let rounds = 256 in
      let _, p = Smp.spinlock ~harts ~rounds in
      let fuel = Smp.fuel ~harts ~rounds in
      let config =
        { Machine.default_config with Machine.harts }
      in
      let run () =
        let m = Machine.create ~config () in
        S4e_asm.Program.load_machine p m;
        (match Machine.run m ~fuel with
        | Machine.Exited 0 -> ()
        | stop ->
            failwith
              (Format.asprintf "E19: scaling run stopped: %a"
                 Machine.pp_stop_reason stop));
        Machine.instret m
      in
      let n = run () in
      let t = time (fun () -> ignore (run ())) in
      let mips = float_of_int n /. t /. 1e6 in
      Printf.printf "%-10d %12d %10.2f\n" harts n mips;
      record ~exp:"e19"
        ~name:(Printf.sprintf "spinlock-%d-harts/mips" harts) ~value:mips
        ~unit_:"MIPS")
    [ 1; 2; 4 ];
  Printf.printf
    "(deterministic round-robin over fuel slices; stores invalidate \
     translated code on every hart and break other harts' reservations; \
     digests gated above)\n"

(* ------------------------------------------------------------------ *)
(* E20: campaign fleet scale-out                                        *)

let e20 () =
  section "E20" "campaign fleet: shard-leasing workers vs one process";
  let module F = S4e_fleet in
  let module J = F.Json in
  let module Fault = S4e_fault.Fault in
  let module Campaign = S4e_fault.Campaign in
  let module Journal = S4e_fault.Journal in
  let src =
    {|
_start:
  li   a0, 0
  li   a1, 1
  li   a2, 30000
l:
  add  a0, a0, a1
  xor  a3, a0, a1
  addi a1, a1, 1
  blt  a1, a2, l
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
|}
  in
  let p = S4e_asm.Assembler.assemble_exn src in
  let mutants = 400 and fuel = 600_000 and shards = 8 in
  let seeds = [ 1; 2 ] in
  let cfg seed =
    { Flows.default_fault_config with
      Flows.ff_seed = seed; ff_mutants = mutants; ff_fuel = fuel;
      ff_hang_budget = Flows.Hang_fuel;
      ff_engine = S4e_fault.Campaign.rerun_engine }
  in
  (* single-process references: one campaign per job, run back to back
     (that is what the fleet's 1-worker configuration competes with) *)
  let t0 = Unix.gettimeofday () in
  let refs = List.map (fun seed -> (seed, Flows.fault_flow (cfg seed) p)) seeds in
  let t_ref = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (seed, r) ->
      Printf.printf "reference seed %d: %s\n" seed
        (Format.asprintf "%a" Campaign.pp_summary r.Flows.ff_summary))
    refs;
  (* one fleet run: in-process orchestrator on an ephemeral loopback
     port, [workers] domains each running the real pull loop over real
     sockets, both jobs submitted up front, workers drain and exit *)
  let run_fleet ~workers =
    let dir = Filename.temp_file "s4e-e20" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let server = F.Server.create ~journal_dir:dir () in
    match F.Server.start server (F.Http.Tcp ("127.0.0.1", 0)) with
    | Error e -> failwith ("E20: " ^ e)
    | Ok addr ->
        let ctl = F.Client.create addr in
        let submit seed =
          let spec =
            J.Obj
              [ ("program", J.String "e20-checksum"); ("mutants", J.Int mutants);
                ("seed", J.Int seed); ("fuel", J.Int fuel);
                ("engine", J.String "rerun"); ("shards", J.Int shards) ]
          in
          match
            F.Client.request ctl ~meth:"POST" ~path:"/api/jobs" ~body:spec ()
          with
          | Ok (200, reply) -> (
              match J.mem_str "job" reply with
              | Some id -> (seed, id)
              | None -> failwith "E20: submit reply without a job id")
          | Ok (s, r) ->
              failwith
                (Printf.sprintf "E20: submit HTTP %d: %s" s (J.to_string r))
          | Error e -> failwith ("E20: submit: " ^ e)
        in
        (* the bench runner closes over the assembled program; the spec
           carries the campaign shape exactly as [s4e submit] ships it *)
        let runner ~spec ~shard ~resume ~emit ~cancelled =
          let seed = Option.value (J.mem_int "seed" spec) ~default:1 in
          let resume_path =
            Option.map
              (fun (header, lines) ->
                let tmp = Filename.temp_file "s4e-e20-resume" ".jsonl" in
                let oc = open_out_bin tmp in
                List.iter
                  (fun l ->
                    output_string oc l;
                    output_char oc '\n')
                  (header :: lines);
                close_out oc;
                tmp)
              resume
          in
          let result =
            Flows.fault_campaign ~jobs:1 ?resume:resume_path ~shard
              ~on_journal_line:emit ~cancelled (cfg seed) p
          in
          Option.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            resume_path;
          match result with
          | Error e -> Error e
          | Ok r when r.Flows.ff_complete -> Ok ()
          | Ok _ -> Error "cancelled before the shard finished"
        in
        let t0 = Unix.gettimeofday () in
        let jobs = List.map submit seeds in
        let fleet =
          List.init workers (fun i ->
              Domain.spawn (fun () ->
                  let client = F.Client.create addr in
                  let r =
                    F.Worker.run
                      ~name:(Printf.sprintf "w%d" i)
                      ~poll_s:0.05 ~drain:true ~client ~runner ()
                  in
                  F.Client.close client;
                  r))
        in
        List.iter
          (fun d ->
            match Domain.join d with
            | Error e -> failwith ("E20: worker: " ^ e)
            | Ok o ->
                if o.F.Worker.o_shards_failed > 0 then
                  failwith
                    (Printf.sprintf "E20: %d shard(s) failed"
                       o.F.Worker.o_shards_failed))
          fleet;
        let dt = Unix.gettimeofday () -. t0 in
        (* determinism gate (always hard): each job's merged journal
           must reproduce the single-process campaign exactly - same
           summary line, same (index, fault, outcome) multiset *)
        List.iter
          (fun (seed, job) ->
            (match
               F.Client.request ctl ~meth:"GET" ~path:("/api/jobs/" ^ job) ()
             with
            | Ok (200, st) when J.mem_str "state" st = Some "done" -> ()
            | Ok (_, st) ->
                failwith
                  (Printf.sprintf "E20: job %s not done: %s" job
                     (J.to_string st))
            | Error e -> failwith ("E20: status: " ^ e));
            let reference = List.assoc seed refs in
            match Journal.read (Filename.concat dir (job ^ ".jsonl")) with
            | Error e -> failwith ("E20: merged journal: " ^ e)
            | Ok (h, records) ->
                if not (Journal.is_complete h records) then
                  failwith (Printf.sprintf "E20: job %s journal incomplete" job);
                let got_summary =
                  Campaign.summarize
                    (List.map
                       (fun r -> (r.Journal.r_fault, r.Journal.r_outcome))
                       records)
                in
                let show s = Format.asprintf "%a" Campaign.pp_summary s in
                if show got_summary <> show reference.Flows.ff_summary then
                  failwith
                    (Printf.sprintf "E20: summary diverges: %s <> %s"
                       (show got_summary)
                       (show reference.Flows.ff_summary));
                let key (i, f, o) =
                  (i, Fault.to_string f, Campaign.outcome_name o)
                in
                let got =
                  List.sort compare
                    (List.map
                       (fun r ->
                         key (r.Journal.r_index, r.Journal.r_fault,
                              r.Journal.r_outcome))
                       records)
                in
                let want =
                  List.sort compare (List.map key reference.Flows.ff_indexed)
                in
                if got <> want then
                  failwith
                    (Printf.sprintf "E20: job %s records diverge from the \
                                     unsharded campaign" job))
          jobs;
        F.Client.close ctl;
        F.Server.stop server;
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
        (try Unix.rmdir dir with Unix.Unix_error _ -> ());
        dt
  in
  let t1 = run_fleet ~workers:1 in
  let t4 = run_fleet ~workers:4 in
  let speedup = t1 /. t4 in
  let cores = Domain.recommended_domain_count () in
  let total = float_of_int (mutants * List.length seeds) in
  Printf.printf "%-28s %10s %12s\n" "configuration" "wall (s)" "mutants/s";
  Printf.printf "%-28s %10.2f %12.1f\n" "single process (reference)" t_ref
    (total /. t_ref);
  Printf.printf "%-28s %10.2f %12.1f\n" "fleet, 1 worker" t1 (total /. t1);
  Printf.printf "%-28s %10.2f %12.1f\n" "fleet, 4 workers" t4 (total /. t4);
  Printf.printf
    "4-worker speedup: %.2fx over 1 worker (%d cores%s); merged summaries \
     and record sets byte-equal to the references\n"
    speedup cores
    (if cores >= 4 then "" else "; scaling gate skipped below 4 cores");
  record ~exp:"e20" ~name:"single-process/s" ~value:t_ref ~unit_:"s";
  record ~exp:"e20" ~name:"fleet-1-worker/s" ~value:t1 ~unit_:"s";
  record ~exp:"e20" ~name:"fleet-4-workers/s" ~value:t4 ~unit_:"s";
  record ~exp:"e20" ~name:"fleet-1-worker/mutants-per-s" ~value:(total /. t1)
    ~unit_:"mutants/s";
  record ~exp:"e20" ~name:"fleet-4-workers/mutants-per-s" ~value:(total /. t4)
    ~unit_:"mutants/s";
  record ~exp:"e20" ~name:"4-worker-speedup" ~value:speedup ~unit_:"ratio";
  if cores >= 4 && speedup < 3.0 then
    failwith
      (Printf.sprintf
         "E20: 4 workers only %.2fx faster than 1 on a %d-core host" speedup
         cores)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20) ]

let () =
  let rec parse json names = function
    | [] -> (json, List.rev names)
    | "--json" :: path :: rest -> parse (Some path) names rest
    | a :: rest -> parse json (a :: names) rest
  in
  let json_out, requested =
    parse None [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match requested with [] -> List.map fst experiments | l -> l
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) experiments with
      | Some f -> f ()
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    requested;
  Option.iter write_json json_out;
  Printf.printf "\n%s\nall requested experiments completed\n" line
