(* Benchmark workload programs (assembly, WCET-analyzable).

   Each workload is a small kernel of the kind the QTA paper analyzes:
   counted loops with constant bounds, terminating in a syscon exit
   whose status is a checksum.  All loop bounds are inferable by the
   static analysis, so experiment E4 runs with no annotations. *)

type t = {
  w_name : string;
  w_source : string;
  w_expect : int option;  (** expected exit status, when known *)
  w_annotations : (string * int) list;
      (** loop bounds the analyzer cannot infer (loops containing
          calls: the context-insensitive analysis assumes calls clobber
          every register, so call-carrying counters need annotations) *)
}

let exit_with reg = Printf.sprintf {|
  li   t6, 0x00100000
  sw   %s, 0(t6)
  ebreak
|} reg

(* Bubble sort, classic constant-bound variant: both loops always run
   the full n-1 passes. *)
let bubble_sort =
  { w_name = "sort";
    w_expect = Some 1;
    w_annotations = [];
    w_source =
      {|
_start:
  li   s0, 0            # i
  li   s1, 15           # n - 1
outer:
  li   s2, 0            # j
inner:
  la   a0, data
  slli a1, s2, 2
  add  a0, a0, a1
  lw   a2, 0(a0)
  lw   a3, 4(a0)
  ble  a2, a3, no_swap
  sw   a3, 0(a0)
  sw   a2, 4(a0)
no_swap:
  addi s2, s2, 1
  blt  s2, s1, inner
  addi s0, s0, 1
  blt  s0, s1, outer
  # verify sortedness: a0 = 1 if sorted
  li   a0, 1
  li   s2, 0
check:
  la   a1, data
  slli a2, s2, 2
  add  a1, a1, a2
  lw   a3, 0(a1)
  lw   a4, 4(a1)
  ble  a3, a4, ok
  li   a0, 0
ok:
  addi s2, s2, 1
  blt  s2, s1, check
|}
      ^ exit_with "a0"
      ^ {|
  .data
data:
  .word 14, 3, 9, 1, 12, 7, 15, 2, 8, 11, 4, 13, 6, 10, 5, 16
|} }

(* 6x6 integer matrix multiply, checksum of the product. *)
let matmul =
  { w_name = "matmul";
    w_expect = None;
    w_annotations = [];
    w_source =
      {|
  .equ N, 6
_start:
  li   s0, 0            # i
  li   s3, N
mm_i:
  li   s1, 0            # j
mm_j:
  li   s2, 0            # k
  li   a7, 0            # acc
mm_k:
  # a[i][k]
  li   a0, N
  mul  a1, s0, a0
  add  a1, a1, s2
  slli a1, a1, 2
  la   a2, mat_a
  add  a2, a2, a1
  lw   a3, 0(a2)
  # b[k][j]
  mul  a4, s2, a0
  add  a4, a4, s1
  slli a4, a4, 2
  la   a5, mat_b
  add  a5, a5, a4
  lw   a6, 0(a5)
  mul  a3, a3, a6
  add  a7, a7, a3
  addi s2, s2, 1
  blt  s2, s3, mm_k
  # checksum += c[i][j]
  add  s4, s4, a7
  addi s1, s1, 1
  blt  s1, s3, mm_j
  addi s0, s0, 1
  blt  s0, s3, mm_i
|}
      ^ exit_with "s4"
      ^ {|
  .data
mat_a:
  .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12
  .word 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13
  .word 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14
mat_b:
  .word 6, 5, 4, 3, 2, 1, 9, 8, 7, 6, 5, 4
  .word 5, 4, 3, 2, 1, 9, 8, 7, 6, 5, 4, 3
  .word 4, 3, 2, 1, 9, 8, 7, 6, 5, 4, 3, 2
|} }

(* Bit-serial CRC over a 24-byte message (outer loop over bytes, inner
   constant 8-bit loop). *)
let crc32 =
  { w_name = "crc32";
    w_expect = None;
    w_annotations = [];
    w_source =
      {|
_start:
  li   s0, 0            # byte index
  li   s1, 24           # message length
  li   a0, -1           # crc
  li   s3, 0xedb88320   # polynomial
  li   a4, 8            # bits per byte (loop-invariant bound)
crc_byte:
  la   a1, msg
  add  a1, a1, s0
  lbu  a2, 0(a1)
  xor  a0, a0, a2
  li   s2, 0            # bit counter
crc_bit:
  andi a3, a0, 1
  srli a0, a0, 1
  beqz a3, crc_noxor
  xor  a0, a0, s3
crc_noxor:
  addi s2, s2, 1
  blt  s2, a4, crc_bit
  addi s0, s0, 1
  blt  s0, s1, crc_byte
  not  a0, a0
|}
      ^ exit_with "a0"
      ^ {|
  .data
msg:
  .ascii "Scale4Edge RISC-V WCET!!"
|} }

(* Iterative Fibonacci, fib(24) mod 2^32. *)
let fib =
  { w_name = "fib";
    w_expect = Some 46368;
    w_annotations = [];
    w_source =
      {|
_start:
  li   a0, 0
  li   a1, 1
  li   s0, 0
  li   s1, 23
fib_loop:
  add  a2, a0, a1
  mv   a0, a1
  mv   a1, a2
  addi s0, s0, 1
  blt  s0, s1, fib_loop
|}
      ^ exit_with "a1" }

(* Linear search with an early exit; the counter exit bounds the loop
   even though the match exit is data-dependent. *)
let search =
  { w_name = "search";
    w_expect = Some 21;
    w_annotations = [];
    w_source =
      {|
_start:
  li   s0, 0
  li   s1, 32
  li   s2, 77           # needle
  li   a0, -1
find:
  la   a1, haystack
  slli a2, s0, 2
  add  a1, a1, a2
  lw   a3, 0(a1)
  beq  a3, s2, found
  addi s0, s0, 1
  blt  s0, s1, find
  j    done
found:
  mv   a0, s0
done:
|}
      ^ exit_with "a0"
      ^ {|
  .data
haystack:
  .word 12, 4, 91, 33, 7, 1, 55, 60, 18, 29, 41, 3, 99, 14, 76, 8
  .word 27, 83, 5, 64, 11, 77, 2, 38, 50, 9, 100, 45, 71, 23, 88, 6
|} }

(* A branchy instruction mix used as the E5/E9 throughput workload:
   iterations of mixed ALU / memory / branch work. *)
let mix =
  { w_name = "mix";
    w_expect = None;
    w_annotations = [];
    w_source =
      {|
_start:
  li   s0, 0
  li   s1, 2000         # iterations
  li   a0, 0x12345678
  la   s2, scratch
mix_loop:
  andi a1, s0, 63
  slli a2, a1, 2
  add  a3, s2, a2
  xor  a0, a0, s0
  slli a4, a0, 13
  xor  a0, a0, a4
  srli a4, a0, 17
  xor  a0, a0, a4
  sw   a0, 0(a3)
  lw   a5, 0(a3)
  add  a0, a0, a5
  andi a6, s0, 7
  bnez a6, mix_skip
  addi a0, a0, 100
mix_skip:
  addi s0, s0, 1
  blt  s0, s1, mix_loop
|}
      ^ exit_with "a0"
      ^ {|
  .data
scratch:
  .space 256
|} }

(* A call-graph-shaped workload: the WCET of main must accumulate the
   callees' bounds through two call levels. *)
let calls =
  { w_name = "calls";
    w_expect = Some 3906;
    w_annotations = [ ("main_loop", 6) ];
    w_source =
      {|
_start:
  li   sp, 0x80040000
  li   s0, 0
  li   s1, 5
  li   a0, 1
main_loop:
  call scale_and_mix
  addi s0, s0, 1
  blt  s0, s1, main_loop
|}
      ^ exit_with "a0"
      ^ {|
# a0 <- mix(5 * a0)
scale_and_mix:
  addi sp, sp, -8
  sw   ra, 0(sp)
  li   a1, 5
  mul  a0, a0, a1
  call mix_in
  lw   ra, 0(sp)
  addi sp, sp, 8
  ret
mix_in:
  addi a0, a0, 1
  ret
|} }

(* A dhrystone-flavoured synthetic: a long loop of string copy, string
   compare, call-heavy integer mixing, and array updates.  At ~35k
   retired instructions it is the campaign-engine workload of E12 (long
   golden runs make snapshot forking and early exit measurable); it is
   deliberately NOT in [all] (E4/E9 expect small WCET-annotated
   kernels). *)
let dhrystone =
  { w_name = "dhrystone";
    w_expect = None;
    w_annotations = [ ("dhry_loop", 120) ];
    w_source =
      {|
_start:
  li   sp, 0x80040000
  li   s0, 0            # iteration
  li   s1, 120          # runs
  li   s5, 0            # checksum
dhry_loop:
  la   a0, src_str
  la   a1, dst_str
  li   a2, 16
  call str_copy
  la   a0, src_str
  la   a1, dst_str
  li   a2, 16
  call str_cmp
  add  s5, s5, a0
  mv   a0, s0
  call int_mix
  add  s5, s5, a0
  la   a3, arr
  andi a4, s0, 15
  slli a4, a4, 2
  add  a3, a3, a4
  lw   a5, 0(a3)
  add  a5, a5, s5
  sw   a5, 0(a3)
  addi s0, s0, 1
  blt  s0, s1, dhry_loop
|}
      ^ exit_with "s5"
      ^ {|
# copy a2 bytes from a0 to a1
str_copy:
  li   t0, 0
sc_loop:
  add  t1, a0, t0
  lbu  t2, 0(t1)
  add  t3, a1, t0
  sb   t2, 0(t3)
  addi t0, t0, 1
  blt  t0, a2, sc_loop
  ret
# a0 <- 1 if the first a2 bytes of a0/a1 match
str_cmp:
  li   t0, 0
  li   t4, 1
scm_loop:
  add  t1, a0, t0
  lbu  t2, 0(t1)
  add  t3, a1, t0
  lbu  t5, 0(t3)
  beq  t2, t5, scm_ok
  li   t4, 0
scm_ok:
  addi t0, t0, 1
  blt  t0, a2, scm_loop
  mv   a0, t4
  ret
# a0 <- mix(a0)
int_mix:
  slli t0, a0, 2
  add  t0, t0, a0
  li   t5, 42
  xor  t0, t0, t5
  andi a0, t0, 255
  ret
|}
      ^ {|
  .data
src_str:
  .ascii "DHRYSTONE PROGRAM!!!"
dst_str:
  .space 20
arr:
  .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
|} }

(* STREAM-style copy + checksum: word loads and stores dominate, with
   almost no compute between them — the worst case for per-access
   routing cost and the headline workload for the memory fast path
   (E15).  Deliberately NOT in [all]: E4's no-annotation WCET runs are
   pinned to the historical workload set. *)
let stream =
  { w_name = "stream";
    w_expect = Some 1;
    w_annotations = [];
    w_source =
      {|
_start:
  la   a0, src          # fill the source buffer
  li   s2, 0
  li   s3, 256
  li   a2, 8
fill:
  sw   a2, 0(a0)
  addi a0, a0, 4
  addi s2, s2, 1
  blt  s2, s3, fill
  li   s0, 0            # pass
  li   s1, 40           # passes
  li   s5, 0            # checksum
pass:
  la   a0, src
  la   a1, dst
  li   s2, 0            # i
  li   s3, 256          # words per pass
copy:
  lw   a2, 0(a0)
  sw   a2, 0(a1)
  add  s5, s5, a2
  lw   a3, 4(a0)
  sw   a3, 4(a1)
  add  s5, s5, a3
  addi a0, a0, 8
  addi a1, a1, 8
  addi s2, s2, 2
  blt  s2, s3, copy
  addi s0, s0, 1
  blt  s0, s1, pass
  # every pass sums the same 256 words: 40 * (8 * 256) = 81920
  li   a0, 0
  li   a1, 81920
  bne  s5, a1, done
  li   a0, 1
done:
|}
      ^ exit_with "a0"
      ^ {|
  .data
src:
  .space 1024
dst:
  .space 1024
|} }

(* Pointer chase over a 64-node ring (16-byte stride): dependent word
   loads with almost no compute — memory latency in its purest form.
   Like [stream], used by E15 and kept out of [all]. *)
let pchase =
  { w_name = "pchase";
    w_expect = Some 1;
    w_annotations = [];
    w_source =
      {|
_start:
  la   a0, ring         # build the ring: node i -> node i+1
  li   s2, 0
  li   s3, 63
init:
  slli a1, s2, 4
  add  a1, a1, a0
  addi a2, s2, 1
  slli a2, a2, 4
  add  a2, a2, a0
  sw   a2, 0(a1)
  addi s2, s2, 1
  blt  s2, s3, init
  slli a1, s3, 4        # close the ring: node 63 -> node 0
  add  a1, a1, a0
  sw   a0, 0(a1)
  la   s4, ring         # chase 25600 steps (multiple of 64)
  li   s2, 0
  li   s3, 25600
chase:
  lw   s4, 0(s4)
  lw   s4, 0(s4)
  lw   s4, 0(s4)
  lw   s4, 0(s4)
  addi s2, s2, 4
  blt  s2, s3, chase
  la   a1, ring         # a full multiple of the ring ends at node 0
  li   a0, 0
  bne  s4, a1, done
  li   a0, 1
done:
|}
      ^ exit_with "a0"
      ^ {|
  .data
ring:
  .space 1024
|} }

(* Branch-dense hot loop: a ladder of mostly-one-way conditions
   (biased taken/not-taken), lui/addi-built data addresses, and a rare
   store-reload — the shape superblock traces target.  Used by E16 and
   kept out of [all] (like [stream]/[pchase]: a throughput workload,
   not a WCET kernel). *)
let branchy =
  { w_name = "branchy";
    w_expect = Some 217795364;
    w_annotations = [];
    w_source =
      {|
_start:
  li   s0, 0            # main accumulator
  li   s1, 0            # rare-path accumulator
  li   s2, 100000       # saturation threshold
  li   t0, 60000
loop:
  andi t1, t0, 7
  beqz t1, rare         # 1-in-8 side path
  addi s0, s0, 3
  j    join
rare:
  addi s1, s1, 5
join:
  andi t2, t0, 1
  bnez t2, odd          # alternating condition
  xori s0, s0, 0x55
odd:
  andi t3, t0, 15
  bnez t3, nostore      # 1-in-16 store-reload round trip
  lui  t4, 0x00200
  addi t4, t4, 0x180
  sw   s0, 0(t4)
  lw   t5, 0(t4)
  add  s1, s1, t5
nostore:
  slt  t4, s0, s2       # saturation guard, almost always passes
  bnez t4, next
  srai s0, s0, 1
next:
  addi t0, t0, -1
  bnez t0, loop
  add  a0, s0, s1
|}
      ^ exit_with "a0" }

(* ------------------------------------------------------------------ *)
(* Device-plane workloads (E17).  Not WCET kernels — interrupt-driven
   I/O drivers — so they stay out of [all] like [stream]/[pchase].     *)

(* Total payload moved by [dma_irq] and [mmio_copy]: same byte count,
   so the E17 throughput ratio is a direct bytes/s comparison. *)
let device_bytes = 32768

(* Per-byte PIO baseline: drain [device_bytes] bytes of the vnet's
   synthetic stream through the RXDATA tap — one full MMIO device-read
   per byte — into a RAM buffer, checksumming as it goes. *)
let mmio_copy_seed = 5

let mmio_copy =
  { w_name = "mmio_copy";
    w_expect =
      Some
        (let s = ref 0 in
         for i = 0 to device_bytes - 1 do
           s := !s + S4e_soc.Vnet.stream_byte mmio_copy_seed i
         done;
         !s land 0xFFFF_FFFF);
    w_annotations = [];
    w_source =
      Printf.sprintf {|
  .equ VNET, 0x10030000
_start:
  li   s0, VNET
  li   t0, %d
  sw   t0, 0x2C(s0)     # GEN_SEED
  la   s1, buf
  li   s2, 0
  li   s3, %d
  li   s5, 0            # checksum
copy:
  lw   a0, 0x50(s0)     # RXDATA: one stream byte per MMIO read
  sb   a0, 0(s1)
  add  s5, s5, a0
  addi s1, s1, 1
  addi s2, s2, 1
  blt  s2, s3, copy
  mv   a0, s5
|} mmio_copy_seed device_bytes
      ^ exit_with "a0"
      ^ {|
  .data
buf:
  .space 32768
|} }

(* DMA-burst counterpart: the same 32 KiB moved as 8 descriptor-ring
   bursts of 4 KiB, driven by completion interrupts and WFI.  The guest
   fills a 4 KiB source pattern, posts 8 descriptors, rings the tail
   doorbell once, and sleeps; the handler just acknowledges.  Exits
   with the burst count after verifying the byte counter and the last
   word of every destination buffer. *)
let dma_irq =
  { w_name = "dma_irq";
    w_expect = Some 8;
    w_annotations = [];
    w_source =
      {|
  .equ DMA, 0x10020000
  .equ DST, 0x80040000
_start:
  la   t0, dma_handler
  csrw mtvec, t0
  li   t0, 0x800        # MEIE
  csrw mie, t0
  csrrsi zero, mstatus, 8
  # fill the 4 KiB source: word i holds i
  la   a0, src
  li   t1, 0
  li   t2, 1024
fill:
  sw   t1, 0(a0)
  addi a0, a0, 4
  addi t1, t1, 1
  blt  t1, t2, fill
  # 8 descriptors: src -> DST + i*4096, 4096 bytes, IRQ on completion
  la   a0, ring
  la   a1, src
  li   a2, DST
  li   t1, 0
  li   t2, 8
mkdesc:
  sw   a1, 0(a0)
  sw   a2, 4(a0)
  li   t3, 4096
  sw   t3, 8(a0)
  li   t3, 1            # FLAG_IRQ
  sw   t3, 12(a0)
  addi a0, a0, 16
  li   t3, 4096
  add  a2, a2, t3
  addi t1, t1, 1
  blt  t1, t2, mkdesc
  li   s0, DMA
  la   t0, ring
  sw   t0, 0x00(s0)     # RING
  li   t0, 8
  sw   t0, 0x04(s0)     # COUNT
  li   t0, 1
  sw   t0, 0x14(s0)     # IRQ_ENABLE
  li   t0, 8
  sw   t0, 0x08(s0)     # TAIL doorbell: all 8 bursts
  li   s1, 8
wait:
  lw   t0, 0x20(s0)     # BURSTS
  bge  t0, s1, copied
  wfi
  j    wait
copied:
  li   a0, 0
  lw   t0, 0x24(s0)     # BYTES
  li   t1, 32768
  bne  t0, t1, done
  li   a1, DST
  li   t2, 4092
  add  a1, a1, t2       # last word of buffer 0
  li   t1, 0
  li   t3, 8
  li   t4, 1023
check:
  lw   t5, 0(a1)
  bne  t5, t4, done
  li   t6, 4096
  add  a1, a1, t6
  addi t1, t1, 1
  blt  t1, t3, check
  li   a0, 8
done:
|}
      ^ exit_with "a0"
      ^ {|
dma_handler:
  li   t5, DMA
  lw   t4, 0x10(t5)     # IRQ_STATUS
  sw   t4, 0x10(t5)     # W1C
  mret

  .data
ring:
  .space 128
src:
  .space 4096
|} }

(* Interrupt-driven vnet rx driver: 16 posted buffers, a 64-packet
   generator burst, and a handler that acknowledges and re-posts the
   full ring window.  Exits with the delivered count (drops zero the
   result) plus the first payload byte, so delivery order, payload
   bytes, and the refill protocol are all architecturally checked. *)
let vnet_rx_seed = 5
let vnet_rx_pkts = 64
let vnet_rx_len = 192

let vnet_rx =
  { w_name = "vnet_rx";
    w_expect =
      (* slot 0 is recycled: with a 16-deep ring the last packet landing
         in [bufs] is number 48, and payload byte j of packet k is
         [stream_byte seed (k lsl 16 lor j)] *)
      Some
        (vnet_rx_pkts
        + (S4e_soc.Vnet.stream_byte vnet_rx_seed (48 lsl 16) lsl 8));
    w_annotations = [];
    w_source =
      Printf.sprintf {|
  .equ VNET, 0x10030000
_start:
  la   t0, rx_handler
  csrw mtvec, t0
  li   t0, 0x800        # MEIE
  csrw mie, t0
  csrrsi zero, mstatus, 8
  # 16 rx descriptors with 256-byte buffers
  la   a0, ring
  la   a1, bufs
  li   t1, 0
  li   t2, 16
mk:
  sw   a1, 0(a0)
  li   t3, 256
  sw   t3, 8(a0)
  sw   zero, 12(a0)
  addi a0, a0, 16
  addi a1, a1, 256
  addi t1, t1, 1
  blt  t1, t2, mk
  li   s0, VNET
  li   t0, 1
  sw   t0, 0x00(s0)     # CTRL: enable
  la   t0, ring
  sw   t0, 0x0C(s0)     # RX_BASE
  li   t0, 16
  sw   t0, 0x10(s0)     # RX_COUNT
  sw   t0, 0x14(s0)     # RX_TAIL: 16 buffers posted
  li   t0, 1
  sw   t0, 0x08(s0)     # IRQ_ENABLE: rx
  li   t0, %d
  sw   t0, 0x2C(s0)     # GEN_SEED
  li   t0, 96
  sw   t0, 0x30(s0)     # GEN_RATE
  li   t0, 2
  sw   t0, 0x34(s0)     # GEN_BURST
  li   t0, %d
  sw   t0, 0x38(s0)     # GEN_LEN
  li   t0, %d
  sw   t0, 0x3C(s0)     # GEN_COUNT: arm the burst
wait:
  lw   t0, 0x3C(s0)     # packets still to emit
  beqz t0, drain
  wfi
  j    wait
drain:
  lw   a0, 0x40(s0)     # RX_DELIVERED
  lw   t0, 0x44(s0)     # RX_DROPPED
  beqz t0, nodrop
  li   a0, 0
nodrop:
  la   a1, bufs
  lbu  t1, 0(a1)        # first payload byte of packet 0
  slli t1, t1, 8
  add  a0, a0, t1
|} vnet_rx_seed vnet_rx_len vnet_rx_pkts
      ^ exit_with "a0"
      ^ {|
rx_handler:
  li   t5, VNET
  lw   t4, 0x04(t5)     # IRQ_STATUS
  sw   t4, 0x04(t5)     # W1C
  lw   t4, 0x18(t5)     # RX_HEAD
  addi t4, t4, 16       # keep the full window posted
  sw   t4, 0x14(t5)     # RX_TAIL
  mret

  .data
ring:
  .space 256
bufs:
  .space 4096
|} }

let all = [ bubble_sort; matmul; crc32; fib; search; calls ]

let program w = S4e_asm.Assembler.assemble_exn w.w_source

let validate w =
  let p = program w in
  let m = S4e_cpu.Machine.create () in
  S4e_asm.Program.load_machine p m;
  match (S4e_cpu.Machine.run m ~fuel:10_000_000, w.w_expect) with
  | S4e_cpu.Machine.Exited got, Some want when got <> want ->
      failwith
        (Printf.sprintf "workload %s: expected %d, got %d" w.w_name want got)
  | S4e_cpu.Machine.Exited _, _ -> ()
  | stop, _ ->
      failwith
        (Format.asprintf "workload %s did not exit: %a" w.w_name
           S4e_cpu.Machine.pp_stop_reason stop)
