(* The Scale4Edge ecosystem command-line front end.

   One subcommand per flow: run / dis / cfg / wcet / qta-export /
   coverage / fault / torture / bmi.  Each subcommand is a thin shell
   over the s4e_core API so everything it does is also available as a
   library call. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Accept either assembly source or a binary image (by magic). *)
let assemble_file path =
  let content = read_file path in
  if String.length content >= 4 && String.sub content 0 4 = "S4EP" then
    match S4e_asm.Program.of_bytes content with
    | Ok p -> p
    | Error m ->
        Format.eprintf "%s: malformed image: %s@." path m;
        exit 1
  else
    match S4e_asm.Assembler.assemble content with
    | Ok p -> p
    | Error e ->
        Format.eprintf "%s: %a@." path S4e_asm.Assembler.pp_error e;
        exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s"
         ~doc:"Assembly source file.")

let fuel_arg =
  Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"Maximum instructions to execute.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt int (S4e_par.Par_pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Worker domains to simulate with (default: the number of \
                 cores). Results are identical for every value.")

let no_mem_tlb_arg =
  Arg.(value & flag & info [ "no-mem-tlb" ]
       ~doc:"Disable the bus's software TLB (direct page pointers for \
             loads/stores/fetch). Observable behavior is identical; this \
             is the escape hatch / benchmarking knob.")

(* ---------------- run ---------------- *)

let run_cmd =
  let trace_arg =
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N"
           ~doc:"Print the last N executed instructions and control-flow \
                 statistics after the run.")
  in
  let input_arg =
    Arg.(value & opt (some string) None & info [ "input" ] ~docv:"BYTES"
           ~doc:"Bytes to feed into the UART receive queue before running.")
  in
  let cache_arg =
    Arg.(value & flag & info [ "cache-stats" ]
           ~doc:"Model 4 KiB 2-way I/D caches and report hit rates (plus \
                 translation-block cache statistics).")
  in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Attach the hot-spot profiler and print the ranked \
                 hot-block/hot-function report after the run.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a metrics-registry snapshot (JSON) to FILE after the \
                 run; '-' for stdout.")
  in
  let no_superblocks_arg =
    Arg.(value & flag & info [ "no-superblocks" ]
           ~doc:"Disable superblock trace promotion (hot chained paths \
                 recompiled into guarded cross-block traces). Observable \
                 behavior is identical; this is the escape hatch / \
                 benchmarking knob.")
  in
  let trace_stats_arg =
    Arg.(value & flag & info [ "trace-stats" ]
           ~doc:"Report superblock trace statistics (promotions, \
                 completions, bail-out breakdown) after the run.")
  in
  let trace_events_arg =
    Arg.(value & opt (some string) None & info [ "trace-events" ]
           ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file with one instant \
                 event per device-plane event (DMA bursts, vnet \
                 deliveries/drops/sends) after the run.")
  in
  let record_arg =
    Arg.(value & opt ~vopt:(Some 256) (some int) None & info [ "record" ]
           ~docv:"N"
           ~doc:"Arm the flight recorder with an N-record ring (default \
                 256) and dump the disassembled recorder tail when the run \
                 ends in a trap, fuel exhaustion, or a WFI halt. Unlike \
                 --trace, recording keeps the lowered fast path and never \
                 changes the run's outcome.")
  in
  let harts_arg =
    Arg.(value & opt int 1 & info [ "harts" ] ~docv:"N"
           ~doc:"Number of harts. All harts start at the entry point; \
                 software branches on mhartid. Scheduling is deterministic \
                 round-robin over fuel slices.")
  in
  let action file fuel trace input cache_stats profile metrics no_mem_tlb
      no_superblocks trace_stats trace_events record harts =
    let p = assemble_file file in
    let config =
      { S4e_cpu.Machine.default_config with
        S4e_cpu.Machine.mem_tlb = not no_mem_tlb;
        superblocks = not no_superblocks;
        harts = max 1 harts }
    in
    let m = S4e_cpu.Machine.create ~config () in
    let tracer =
      Option.map
        (fun depth -> S4e_cpu.Tracer.attach m.S4e_cpu.Machine.hooks ~depth)
        trace
    in
    let caches =
      if cache_stats then Some (S4e_cpu.Cache_model.attach m) else None
    in
    let reg =
      Option.map
        (fun _ ->
          let reg = S4e_obs.Metrics.create () in
          S4e_cpu.Machine.register_metrics m reg;
          Option.iter (fun c -> S4e_cpu.Cache_model.register_metrics c reg)
            caches;
          reg)
        metrics
    in
    let prof =
      if profile then begin
        let prof = S4e_obs.Profile.create () in
        S4e_cpu.Machine.set_profiler m (Some prof);
        Some prof
      end
      else None
    in
    let tev =
      Option.map (fun _ -> S4e_obs.Trace_events.create ()) trace_events
    in
    let rcd =
      Option.map
        (fun capacity ->
          let r = S4e_obs.Flight_recorder.create ~capacity () in
          S4e_cpu.Machine.set_recorder m (Some r);
          r)
        record
    in
    (match (reg, tev) with
    | None, None -> ()
    | _ -> S4e_cpu.Machine.observe_devices ?metrics:reg ?trace:tev m);
    S4e_asm.Program.load_machine p m;
    (match input with
    | Some s -> S4e_soc.Uart.feed m.S4e_cpu.Machine.uart s
    | None -> ());
    let stop = S4e_cpu.Machine.run m ~fuel in
    print_string (S4e_cpu.Machine.uart_output m);
    Format.printf "@.-- %a; %d instructions, %d cycles@."
      S4e_cpu.Machine.pp_stop_reason stop
      (S4e_cpu.Machine.instret m) (S4e_cpu.Machine.cycles m);
    (match rcd with
    | None -> ()
    | Some r -> (
        match stop with
        | S4e_cpu.Machine.Exited _ -> ()
        | _ ->
            Format.printf "flight recorder tail (last %d of %d records):@."
              (S4e_obs.Flight_recorder.length r)
              (S4e_obs.Flight_recorder.seq r);
            List.iter
              (fun rc ->
                Format.printf "  %a%s@." S4e_obs.Flight_recorder.pp_record rc
                  (match rc.S4e_obs.Flight_recorder.r_kind with
                  | S4e_obs.Flight_recorder.Retire
                  | S4e_obs.Flight_recorder.Watch ->
                      "  "
                      ^ S4e_asm.Disasm.disassemble_word
                          rc.S4e_obs.Flight_recorder.r_op
                  | _ -> ""))
              (S4e_obs.Flight_recorder.records r)));
    (match caches with
    | None -> ()
    | Some c ->
        let pr name (s : S4e_cpu.Cache_model.stats) =
          Format.printf "%s: %d accesses, %.1f%% hits@." name
            s.S4e_cpu.Cache_model.st_accesses
            (100.0 *. S4e_cpu.Cache_model.hit_rate s)
        in
        pr "icache" (S4e_cpu.Cache_model.icache_stats c);
        pr "dcache" (S4e_cpu.Cache_model.dcache_stats c);
        let ts = S4e_cpu.Tb_cache.stats m.S4e_cpu.Machine.tb in
        Format.printf
          "tb cache: %d blocks, %d hits, %d misses, %d chain hits, %d \
           invalidations@."
          ts.S4e_cpu.Tb_cache.st_blocks ts.S4e_cpu.Tb_cache.st_hits
          ts.S4e_cpu.Tb_cache.st_misses ts.S4e_cpu.Tb_cache.st_chain_hits
          ts.S4e_cpu.Tb_cache.st_invalidations;
        (match S4e_cpu.Tb_cache.hot_edges m.S4e_cpu.Machine.tb with
        | [] -> ()
        | edges ->
            Format.printf "hot chain edges:@.";
            List.iteri
              (fun i (src, dst, hits) ->
                if i < 10 then
                  Format.printf "  0x%08x -> 0x%08x %10d traversals@." src
                    dst hits)
              edges);
        let ms = S4e_mem.Bus.tlb_stats m.S4e_cpu.Machine.bus in
        let total = ms.S4e_mem.Bus.tlb_hits + ms.S4e_mem.Bus.tlb_misses in
        Format.printf
          "mem tlb: %d hits, %d misses, %d flushes (%.1f%% hits)@."
          ms.S4e_mem.Bus.tlb_hits ms.S4e_mem.Bus.tlb_misses
          ms.S4e_mem.Bus.tlb_flushes
          (if total = 0 then 0.0
           else 100.0 *. float_of_int ms.S4e_mem.Bus.tlb_hits
                /. float_of_int total);
        (match S4e_mem.Bus.access_counts m.S4e_cpu.Machine.bus with
        | [] -> ()
        | counts ->
            Format.printf "device mmio:";
            List.iter
              (fun (name, n) -> Format.printf " %s=%d" name n)
              counts;
            Format.printf "@.");
        let ws = S4e_soc.Event_wheel.stats m.S4e_cpu.Machine.wheel in
        Format.printf
          "event wheel: %d fired, %d idle skips, %d live@."
          ws.S4e_soc.Event_wheel.ws_fired
          ws.S4e_soc.Event_wheel.ws_idle_skips
          ws.S4e_soc.Event_wheel.ws_live);
    (if trace_stats then
       match S4e_cpu.Machine.trace_stats m with
       | None ->
           Format.printf "superblocks: disabled (engine config)@."
       | Some s ->
           Format.printf
             "superblocks: %d live traces, %d promotions, %d invalidations@."
             s.S4e_cpu.Superblock.sb_live s.S4e_cpu.Superblock.sb_promotions
             s.S4e_cpu.Superblock.sb_invalidations;
           Format.printf
             "trace runs: %d (%d completed), %d instructions inside traces@."
             s.S4e_cpu.Superblock.sb_execs
             s.S4e_cpu.Superblock.sb_completions
             s.S4e_cpu.Superblock.sb_instrs;
           Format.printf
             "bail-outs: %d guard, %d irq, %d invalidated, %d trap@."
             s.S4e_cpu.Superblock.sb_bail_guard
             s.S4e_cpu.Superblock.sb_bail_irq
             s.S4e_cpu.Superblock.sb_bail_dead
             s.S4e_cpu.Superblock.sb_bail_trap);
    (match prof with
    | None -> ()
    | Some prof ->
        let symbolize =
          S4e_obs.Profile.symbolizer_of_symbols p.S4e_asm.Program.symbols
        in
        Format.printf "%a" (S4e_obs.Profile.pp_report ~top:10 ~symbolize)
          prof);
    (match (reg, metrics) with
    | Some reg, Some path -> S4e_obs.Metrics.write_json reg path
    | _ -> ());
    (match (tev, trace_events) with
    | Some t, Some path -> S4e_obs.Trace_events.write t path
    | _ -> ());
    match tracer with
    | None -> ()
    | Some t ->
        let s = S4e_cpu.Tracer.stats t in
        Format.printf "trace tail:@.%a" S4e_cpu.Tracer.pp_tail t;
        Format.printf
          "branches: %d (%d taken), calls: %d, returns: %d@."
          s.S4e_cpu.Tracer.st_branches s.S4e_cpu.Tracer.st_taken
          s.S4e_cpu.Tracer.st_calls s.S4e_cpu.Tracer.st_returns
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and execute a program on the virtual prototype.")
    Term.(const action $ file_arg $ fuel_arg $ trace_arg $ input_arg
          $ cache_arg $ profile_arg $ metrics_arg $ no_mem_tlb_arg
          $ no_superblocks_arg $ trace_stats_arg $ trace_events_arg
          $ record_arg $ harts_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Rows in the hot-block and hot-function tables.")
  in
  let disas_arg =
    Arg.(value & flag & info [ "disas" ]
           ~doc:"Also disassemble the hottest block.")
  in
  let action file fuel top disas =
    let p = assemble_file file in
    let r = S4e_core.Flows.profile_flow ~fuel p in
    let prof = r.S4e_core.Flows.pf_profile in
    Format.printf "-- %a; %d instructions, %d cycles@."
      S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.pf_stop
      (S4e_cpu.Machine.instret r.S4e_core.Flows.pf_machine)
      (S4e_cpu.Machine.cycles r.S4e_core.Flows.pf_machine);
    Format.printf "%a"
      (S4e_obs.Profile.pp_report ~top
         ~symbolize:r.S4e_core.Flows.pf_symbolize)
      prof;
    if disas then
      match S4e_obs.Profile.ranked prof with
      | [] -> ()
      | b :: _ ->
          Format.printf "hottest block @@ 0x%08x:@."
            b.S4e_obs.Profile.bl_pc;
          List.iter
            (fun l -> Format.printf "  %a@." S4e_asm.Disasm.pp_line l)
            (S4e_asm.Disasm.disassemble_range
               ~mem:(S4e_mem.Bus.ram r.S4e_core.Flows.pf_machine.S4e_cpu.Machine.bus)
               ~start:b.S4e_obs.Profile.bl_pc
               ~len:(max 4 b.S4e_obs.Profile.bl_bytes) ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a program with the hot-spot profiler and print the ranked \
             hot-block/hot-function report.")
    Term.(const action $ file_arg $ fuel_arg $ top_arg $ disas_arg)

(* ---------------- mutate ---------------- *)

let mutate_cmd =
  let tests_arg =
    Arg.(value & opt_all string [] & info [ "test"; "t" ] ~docv:"BYTES"
           ~doc:"A test stimulus: bytes fed to the UART (repeatable). With \
                 no tests, one empty-input test is used.")
  in
  let ops_arg =
    Arg.(value & opt (some string) None & info [ "operators" ] ~docv:"OPS"
           ~doc:"Comma-separated operator subset (AOR,ROR,COR,SOR,SDL).")
  in
  let survivors_arg =
    Arg.(value & flag & info [ "survivors" ]
           ~doc:"List every surviving mutant.")
  in
  let action file tests ops survivors fuel =
    let p = assemble_file file in
    let operators =
      match ops with
      | None -> S4e_mutation.Mutop.all
      | Some s ->
          String.split_on_char ',' s
          |> List.filter_map (fun name ->
                 List.find_opt
                   (fun op ->
                     String.uppercase_ascii name = S4e_mutation.Mutop.name op)
                   S4e_mutation.Mutop.all)
    in
    let mutants = S4e_mutation.Mutant.generate ~operators p in
    let tests =
      match tests with
      | [] -> [ S4e_mutation.Score.test ~fuel ~name:"t0" "" ]
      | l ->
          List.mapi
            (fun i input ->
              S4e_mutation.Score.test ~fuel
                ~name:(Printf.sprintf "t%d" i)
                input)
            l
    in
    let results = S4e_mutation.Score.run p ~tests ~mutants in
    let s = S4e_mutation.Score.summarize results in
    Format.printf "%a@." S4e_mutation.Score.pp_score s;
    if survivors then
      List.iter
        (fun m -> Format.printf "survived: %s@." (S4e_mutation.Mutant.describe m))
        (S4e_mutation.Score.survivors results)
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Binary mutation analysis: score a test set by mutant killing.")
    Term.(const action $ file_arg $ tests_arg $ ops_arg $ survivors_arg $ fuel_arg)

(* ---------------- asm ---------------- *)

let asm_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ]
           ~docv:"OUT.bin" ~doc:"Output image path.")
  in
  let action file out =
    let p = assemble_file file in
    S4e_asm.Program.save p out;
    Format.printf "wrote %s (%d bytes of payload, entry 0x%08x)@." out
      (S4e_asm.Program.size p) p.S4e_asm.Program.entry
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble a program into a loadable binary image.")
    Term.(const action $ file_arg $ out_arg)

(* ---------------- dis ---------------- *)

let dis_cmd =
  let action file =
    let p = assemble_file file in
    List.iter
      (fun l -> Format.printf "%a@." S4e_asm.Disasm.pp_line l)
      (S4e_asm.Disasm.disassemble_program p)
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Assemble and disassemble a program.")
    Term.(const action $ file_arg)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let action file =
    let p = assemble_file file in
    let s = S4e_cfg.Static_stats.analyze p in
    Format.printf "%a" S4e_cfg.Static_stats.pp s;
    Format.printf "minimal ISA: %s@."
      (S4e_isa.Isa_module.isa_string
         (S4e_cfg.Static_stats.required_modules s))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Static instruction-set analysis (histograms, register \
             pressure, minimal ISA).")
    Term.(const action $ file_arg)

(* ---------------- cfg ---------------- *)

let cfg_cmd =
  let action file =
    let p = assemble_file file in
    let decode = S4e_cfg.Cfg.decoder_of_program p in
    let cg = S4e_cfg.Callgraph.build ~decode ~entry:p.S4e_asm.Program.entry in
    List.iter
      (fun (entry, g) ->
        Format.printf "function @@ 0x%08x:@.%a@." entry S4e_cfg.Cfg.pp g)
      cg.S4e_cfg.Callgraph.functions
  in
  Cmd.v
    (Cmd.info "cfg" ~doc:"Reconstruct and print the control-flow graph.")
    Term.(const action $ file_arg)

(* ---------------- wcet ---------------- *)

let annot_arg =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
        let label = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt v with
        | Some b -> Ok (label, b)
        | None -> Error (`Msg ("bad bound in " ^ s)))
    | None -> Error (`Msg ("expected LABEL=BOUND, got " ^ s))
  in
  let print fmt (l, b) = Format.fprintf fmt "%s=%d" l b in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "annot"; "a" ] ~docv:"LABEL=BOUND"
           ~doc:"Loop-bound annotation for the loop whose header carries LABEL.")

let cosim_arg =
  Arg.(value & flag & info [ "cosim" ]
         ~doc:"Also run the QTA co-simulation and report the path WCET.")

let wcet_cmd =
  let action file annotations cosim fuel =
    let p = assemble_file file in
    if cosim then
      match S4e_core.Flows.wcet_flow ~annotations ~fuel p with
      | Error e ->
          Format.eprintf "wcet: %s@." (S4e_wcet.Analysis.describe_error e);
          exit 1
      | Ok r ->
          Format.printf "%a" S4e_wcet.Analysis.pp_report
            r.S4e_core.Flows.wr_report;
          Format.printf "co-simulation: dynamic=%d path-wcet=%d static=%d (%a)@."
            r.S4e_core.Flows.wr_dynamic r.S4e_core.Flows.wr_path
            r.S4e_core.Flows.wr_static S4e_cpu.Machine.pp_stop_reason
            r.S4e_core.Flows.wr_stop
    else
      match S4e_wcet.Analysis.analyze ~annotations p with
      | Error e ->
          Format.eprintf "wcet: %s@." (S4e_wcet.Analysis.describe_error e);
          exit 1
      | Ok report -> Format.printf "%a" S4e_wcet.Analysis.pp_report report
  in
  Cmd.v
    (Cmd.info "wcet" ~doc:"Static WCET analysis (optionally with QTA co-simulation).")
    Term.(const action $ file_arg $ annot_arg $ cosim_arg $ fuel_arg)

(* ---------------- qta-export ---------------- *)

let qta_export_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Output path (default: stdout).")
  in
  let action file annotations out =
    let p = assemble_file file in
    match S4e_wcet.Annotated_cfg.of_program ~annotations p with
    | Error e ->
        Format.eprintf "qta-export: %s@." (S4e_wcet.Analysis.describe_error e);
        exit 1
    | Ok acfg -> (
        let s = S4e_wcet.Annotated_cfg.to_string acfg in
        match out with
        | None -> print_string s
        | Some path ->
            let oc = open_out path in
            output_string oc s;
            close_out oc)
  in
  Cmd.v
    (Cmd.info "qta-export"
       ~doc:"Write the WCET-annotated CFG (ait2qta interchange format).")
    Term.(const action $ file_arg $ annot_arg $ out_arg)

(* ---------------- coverage ---------------- *)

let coverage_cmd =
  let torture_n =
    Arg.(value & opt int 5 & info [ "torture-programs" ] ~docv:"N"
           ~doc:"Number of random torture programs in the third suite.")
  in
  let action torture_n jobs =
    let isa = S4e_cpu.Machine.default_config.S4e_cpu.Machine.isa in
    let suites =
      [ ("architectural", S4e_torture.Suites.arch_suite ~isa);
        ("unit", S4e_torture.Suites.unit_suite ~isa);
        ("torture",
         S4e_torture.Suites.torture_suite ~isa
           ~seeds:(List.init torture_n (fun i -> i + 1))) ]
    in
    let reports =
      List.map
        (fun (name, progs) ->
          (name, S4e_core.Flows.coverage_of_suite ~jobs progs))
        suites
    in
    List.iter
      (fun (name, rep) ->
        Format.printf "== %s ==@.%a@." name S4e_coverage.Report.pp rep)
      reports;
    let union =
      List.fold_left
        (fun acc (_, r) -> S4e_coverage.Report.combine acc r)
        (S4e_coverage.Report.create ~isa)
        reports
    in
    Format.printf "== unified suite ==@.%a@." S4e_coverage.Report.pp union
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Instruction and register coverage of the three test suites.")
    Term.(const action $ torture_n $ jobs_arg)

(* ---------------- fault ---------------- *)

let fault_cmd =
  let mutants_arg =
    Arg.(value & opt int 100 & info [ "mutants"; "n" ] ~docv:"N"
           ~doc:"Number of mutants to generate.")
  in
  let blind_arg =
    Arg.(value & flag & info [ "blind" ]
           ~doc:"Ignore coverage guidance when choosing injection sites.")
  in
  let rerun_arg =
    Arg.(value & flag & info [ "rerun" ]
           ~doc:"Use the naive engine (every mutant re-runs from reset, no \
                 snapshot forking or early exit).")
  in
  let fault_fuel_arg =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Per-run instruction budget (golden run and every mutant). \
                 Default: 10 million for the golden run, 3x the golden \
                 instruction count per mutant (hang detection).")
  in
  let trace_events_arg =
    Arg.(value & opt (some string) None & info [ "trace-events" ]
           ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the campaign (one lane \
                 per worker domain) to FILE; load it in Perfetto or \
                 chrome://tracing.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the campaign metrics snapshot (JSON) to FILE; '-' \
                 for stdout.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Live mutants/sec + ETA meter on stderr.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Record every classified mutant to a JSONL journal at FILE \
                 (truncated first) so an interrupted campaign can be resumed \
                 with --resume.")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume from the journal at FILE: mutants it already \
                 classified are skipped and new records are appended in \
                 place. The journal must belong to this exact campaign \
                 (same program, seed, mutant count, and shard).")
  in
  let shard_arg =
    let parse s =
      match String.split_on_char '/' s with
      | [ i; n ] -> (
          match (int_of_string_opt i, int_of_string_opt n) with
          | Some i, Some n when n > 0 && i >= 0 && i < n -> Ok (i, n)
          | _ -> Error (`Msg ("expected I/N with 0 <= I < N, got " ^ s)))
      | _ -> Error (`Msg ("expected I/N, got " ^ s))
    in
    let print fmt (i, n) = Format.fprintf fmt "%d/%d" i n in
    Arg.(value & opt (some (conv (parse, print))) None
         & info [ "shard" ] ~docv:"I/N"
             ~doc:"Run only shard I of N (mutant indices congruent to I mod \
                   N). All N shard journals merge back into one campaign \
                   with 's4e merge-journals'.")
  in
  let timeout_arg =
    Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Wall-clock budget per mutant (a second hang defense behind \
                 the instruction budget); mutants over it are classified \
                 hung. 0 disables it. Note: makes borderline outcomes \
                 machine-dependent.")
  in
  let triage_arg =
    Arg.(value & opt ~vopt:(Some 8) (some int) None & info [ "triage" ]
           ~docv:"K"
           ~doc:"After the campaign, re-run up to K (default 8) of the \
                 divergent mutants (sdc/crashed/hung) in lockstep against \
                 a golden run with flight recorders armed, and report each \
                 mutant's first architectural divergence (pc, instruction, \
                 register/memory delta) plus the ranked top faulty sites.")
  in
  let triage_out_arg =
    Arg.(value & opt (some string) None & info [ "triage-out" ] ~docv:"FILE"
           ~doc:"Write the triage records produced by --triage to FILE as \
                 JSONL (one object per triaged mutant).")
  in
  let action file mutants seed blind rerun fuel jobs trace_events metrics
      progress journal resume shard timeout triage triage_out =
    let p = assemble_file file in
    let engine =
      if rerun then S4e_fault.Campaign.rerun_engine
      else S4e_fault.Campaign.default_engine
    in
    let engine = { engine with S4e_fault.Campaign.eng_timeout_s = timeout } in
    let cfg =
      { S4e_core.Flows.default_fault_config with
        S4e_core.Flows.ff_seed = seed; ff_mutants = mutants;
        ff_blind = blind;
        ff_fuel = Option.value fuel ~default:10_000_000;
        ff_hang_budget =
          (match fuel with
          | Some _ -> S4e_core.Flows.Hang_fuel
          | None -> S4e_core.Flows.Hang_auto);
        ff_engine = engine }
    in
    let sink = Option.map (fun _ -> S4e_obs.Trace_events.create ()) trace_events in
    let reg = Option.map (fun _ -> S4e_obs.Metrics.create ()) metrics in
    (* Idempotent telemetry flush: the normal path and the force-quit
       SIGINT path below both call it, so the trace/metrics files
       survive even a second ^C (the campaign journal already has its
       own crash-safe batching). *)
    let flushed = Atomic.make false in
    let flush_outputs () =
      if not (Atomic.exchange flushed true) then begin
        (match (sink, trace_events) with
        | Some s, Some path ->
            S4e_obs.Trace_events.write s path;
            Format.printf "wrote %d trace events to %s@."
              (S4e_obs.Trace_events.events s)
              path
        | _ -> ());
        match (reg, metrics) with
        | Some reg, Some path -> S4e_obs.Metrics.write_json reg path
        | _ -> ()
      end
    in
    (* Cooperative shutdown on SIGINT and SIGTERM: workers finish
       their in-flight mutants, the journal is flushed, and the partial
       summary still prints.  A second signal force-quits - flushing
       the telemetry sinks on the way out so an impatient interrupt
       doesn't lose the trace.  The exit code names the signal (130 =
       INT, 143 = TERM) so supervisors that sent SIGTERM see the
       conventional code. *)
    let stop = Atomic.make false in
    let signal_exit = Atomic.make 130 in
    let handler signum =
      Atomic.set signal_exit (if signum = Sys.sigterm then 143 else 130);
      if Atomic.get stop then begin
        flush_outputs ();
        Stdlib.exit (Atomic.get signal_exit)
      end;
      Atomic.set stop true;
      prerr_endline
        "\ninterrupt: finishing in-flight mutants (again to force quit)"
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    let r =
      match
        S4e_core.Flows.fault_campaign ~jobs ?metrics:reg ?trace:sink
          ~progress ?journal ?resume ?shard
          ~cancelled:(fun () -> Atomic.get stop)
          cfg p
      with
      | Ok r -> r
      | Error e ->
          Format.eprintf "fault: %s@." e;
          exit 1
    in
    Format.printf "%a@." S4e_fault.Campaign.pp_summary r.S4e_core.Flows.ff_summary;
    if r.S4e_core.Flows.ff_resumed > 0 then
      Format.printf "resumed: %d mutants already classified in the journal@."
        r.S4e_core.Flows.ff_resumed;
    List.iter
      (fun (f, o) ->
        if o <> S4e_fault.Campaign.Masked then
          Format.printf "  %-8s %a@."
            (S4e_fault.Campaign.outcome_name o)
            S4e_fault.Fault.pp f)
      r.S4e_core.Flows.ff_results;
    (match triage with
    | Some sample when r.S4e_core.Flows.ff_complete ->
        let recs = S4e_core.Flows.fault_triage ~sample cfg p r in
        if recs = [] then Format.printf "triage: no divergent mutants@."
        else begin
          Format.printf "triage (%d mutants):@." (List.length recs);
          List.iter
            (fun t -> Format.printf "  %a@." S4e_fault.Campaign.pp_triage t)
            recs;
          match S4e_fault.Campaign.top_sites recs with
          | [] -> ()
          | sites ->
              Format.printf "top faulty sites:@.";
              List.iteri
                (fun i (pc, c) ->
                  if i < 8 then
                    Format.printf "  0x%08x  %d mutant%s@." pc c
                      (if c = 1 then "" else "s"))
                sites
        end;
        (match triage_out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            List.iter
              (fun t ->
                output_string oc (S4e_fault.Campaign.triage_to_json t);
                output_char oc '\n')
              recs;
            close_out oc;
            Format.printf "wrote %d triage records to %s@."
              (List.length recs) path)
    | Some _ ->
        Format.printf "triage: skipped (campaign interrupted)@."
    | None -> ());
    flush_outputs ();
    if not r.S4e_core.Flows.ff_complete then begin
      (match (journal, resume) with
      | Some f, _ | None, Some f ->
          Format.printf "interrupted: %d mutants classified; continue with \
                         --resume %s@."
            r.S4e_core.Flows.ff_summary.S4e_fault.Campaign.total f
      | None, None ->
          Format.printf "interrupted: %d mutants classified (no journal - \
                         rerun from scratch)@."
            r.S4e_core.Flows.ff_summary.S4e_fault.Campaign.total);
      exit (Atomic.get signal_exit)
    end
  in
  Cmd.v
    (Cmd.info "fault" ~doc:"Coverage-guided bit-flip fault campaign.")
    Term.(const action $ file_arg $ mutants_arg $ seed_arg $ blind_arg
          $ rerun_arg $ fault_fuel_arg $ jobs_arg $ trace_events_arg
          $ metrics_arg $ progress_arg $ journal_arg $ resume_arg
          $ shard_arg $ timeout_arg $ triage_arg $ triage_out_arg)

(* ---------------- merge-journals ---------------- *)

let merge_journals_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"JOURNAL"
           ~doc:"Shard journal files of one campaign.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Also write the merged records as a single unsharded journal \
                 to OUT.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print a machine-readable merge summary (one JSON object) on \
                 stdout instead of the human summary. Merge conflicts become \
                 an {\"error\": ...} object; the exit code still reports \
                 conflict or incompleteness.")
  in
  let action files out json =
    let module J = S4e_fleet.Json in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          if json then
            print_endline
              (J.to_string
                 (J.Obj
                    [ ("s4e_merge_schema", J.Int 1);
                      ("error", J.String msg) ]))
          else Format.eprintf "merge-journals: %s@." msg;
          exit 1)
        fmt
    in
    let inputs =
      List.map
        (fun path ->
          match S4e_fault.Journal.read path with
          | Ok j -> j
          | Error e -> fail "%s: %s" path e)
        files
    in
    match S4e_fault.Journal.merge inputs with
    | Error e -> fail "%s" e
    | Ok (h, records) ->
        let results =
          List.map
            (fun r ->
              (r.S4e_fault.Journal.r_fault, r.S4e_fault.Journal.r_outcome))
            records
        in
        let summary = S4e_fault.Campaign.summarize results in
        let complete = S4e_fault.Journal.is_complete h records in
        if json then
          print_endline
            (J.to_string
               (J.Obj
                  [ ("s4e_merge_schema", J.Int 1);
                    ("seed", J.Int h.S4e_fault.Journal.j_seed);
                    ("total", J.Int h.S4e_fault.Journal.j_total);
                    ("program", J.String h.S4e_fault.Journal.j_program);
                    ("journals", J.Int (List.length files));
                    ("records", J.Int (List.length records));
                    ("expected", J.Int (S4e_fault.Journal.expected_count h));
                    ("complete", J.Bool complete);
                    ("summary",
                     J.Obj
                       [ ("masked", J.Int summary.S4e_fault.Campaign.masked);
                         ("sdc", J.Int summary.S4e_fault.Campaign.sdc);
                         ("crashed", J.Int summary.S4e_fault.Campaign.crashed);
                         ("hung", J.Int summary.S4e_fault.Campaign.hung);
                         ("errored", J.Int summary.S4e_fault.Campaign.errors)
                       ]) ]))
        else
          Format.printf "%a@." S4e_fault.Campaign.pp_summary summary;
        (match out with
        | None -> ()
        | Some path -> (
            match S4e_fault.Journal.create ~path h with
            | Error e -> fail "%s: %s" path e
            | Ok w ->
                List.iter (S4e_fault.Journal.write w) records;
                S4e_fault.Journal.close w;
                if not json then
                  Format.printf "wrote %d records to %s@."
                    (List.length records) path));
        if not complete then begin
          if not json then
            Format.eprintf
              "merge-journals: incomplete campaign: %d/%d mutants classified@."
              (List.length records) h.S4e_fault.Journal.j_total;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:"Merge the journals of a sharded fault campaign and print the \
             combined summary.")
    Term.(const action $ files_arg $ out_arg $ json_arg)

(* ---------------- fleet: serve / worker / submit / jobs ----------- *)

module Fleet = S4e_fleet

let default_fleet_addr = "127.0.0.1:4750"

let fleet_addr s =
  match Fleet.Http.addr_of_string s with
  | Ok a -> a
  | Error e ->
      Format.eprintf "s4e: %s@." e;
      exit 1

let connect_arg =
  Arg.(value & opt string default_fleet_addr
       & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Orchestrator address: HOST:PORT, PORT, or unix:PATH.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ]
         ~doc:"Suppress per-event log lines on stderr.")

(* Block until a signal flips the flag: handlers must not take the
   server's locks themselves, so they only set the atomic and the main
   thread does the teardown. *)
let wait_for_shutdown () =
  let req = Atomic.make false in
  let handler _ = Atomic.set req true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  fun () ->
    while not (Atomic.get req) do
      Thread.delay 0.2
    done

let serve_cmd =
  let listen_arg =
    Arg.(value & opt string default_fleet_addr
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Address to serve the fleet API on: HOST:PORT, PORT (on \
                   127.0.0.1), or unix:PATH. Port 0 picks an ephemeral \
                   port (printed).")
  in
  let ttl_arg =
    Arg.(value & opt float 30.0 & info [ "lease-ttl" ] ~docv:"SECS"
           ~doc:"Shard lease expiry. A worker that streams no records and \
                 sends no heartbeat for this long loses its shard to the \
                 next worker; its already-streamed records are kept.")
  in
  let journal_dir_arg =
    Arg.(value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR"
           ~doc:"Write each completed job's merged journal to DIR/JOB.jsonl \
                 (readable by 's4e merge-journals'); on shutdown, running \
                 jobs flush to DIR/JOB.partial.jsonl.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Also write the final metrics snapshot (JSON) to FILE on \
                 shutdown; '-' for stdout. The live registry is always \
                 available at GET /metrics.")
  in
  let action listen ttl journal_dir metrics quiet =
    (match journal_dir with
    | Some d when not (Sys.file_exists d) -> (
        try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ())
    | _ -> ());
    let reg = S4e_obs.Metrics.create () in
    let log =
      if quiet then fun _ -> ()
      else fun m -> Printf.eprintf "s4e serve: %s\n%!" m
    in
    let server = Fleet.Server.create ~ttl ?journal_dir ~metrics:reg ~log () in
    let wait = wait_for_shutdown () in
    match Fleet.Server.start server (fleet_addr listen) with
    | Error e ->
        Format.eprintf "serve: %s@." e;
        exit 1
    | Ok bound ->
        Printf.printf "s4e serve: listening on %s\n%!"
          (Fleet.Http.addr_to_string bound);
        wait ();
        log "shutting down";
        Fleet.Server.stop server;
        Option.iter (S4e_obs.Metrics.write_json reg) metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the campaign fleet orchestrator: accept job submissions, \
             lease shards to workers, merge their journal streams live, \
             and re-lease the shards of dead workers.")
    Term.(const action $ listen_arg $ ttl_arg $ journal_dir_arg
          $ metrics_arg $ quiet_arg)

(* Non-exiting variant of [assemble_file]: a worker must survive a job
   whose program does not assemble — the shard fails, not the
   process. *)
let try_assemble path =
  match (try Ok (read_file path) with Sys_error e -> Error e) with
  | Error e -> Error e
  | Ok content ->
      if String.length content >= 4 && String.sub content 0 4 = "S4EP" then
        Result.map_error
          (fun m -> path ^ ": malformed image: " ^ m)
          (S4e_asm.Program.of_bytes content)
      else (
        match S4e_asm.Assembler.assemble content with
        | Ok p -> Ok p
        | Error e ->
            Error (Format.asprintf "%s: %a" path S4e_asm.Assembler.pp_error e))

(* The job spec -> campaign config mapping mirrors the [fault]
   subcommand's defaults exactly, so a fleet run of a spec and a local
   [s4e fault] with the same flags classify identically. *)
let fleet_spec_campaign spec =
  let module J = Fleet.Json in
  match J.mem_str "program" spec with
  | None -> Error "spec: missing program"
  | Some path ->
      let fuel = J.mem_int "fuel" spec in
      let engine =
        if J.mem_str "engine" spec = Some "rerun" then
          S4e_fault.Campaign.rerun_engine
        else S4e_fault.Campaign.default_engine
      in
      Ok
        ( path,
          { S4e_core.Flows.default_fault_config with
            S4e_core.Flows.ff_seed =
              Option.value (J.mem_int "seed" spec) ~default:1;
            ff_mutants = Option.value (J.mem_int "mutants" spec) ~default:100;
            ff_blind = Option.value (J.mem_bool "blind" spec) ~default:false;
            ff_fuel = Option.value fuel ~default:10_000_000;
            ff_hang_budget =
              (match fuel with
              | Some _ -> S4e_core.Flows.Hang_fuel
              | None -> S4e_core.Flows.Hang_auto);
            ff_engine = engine } )

let worker_cmd =
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
           ~doc:"Worker name reported to the orchestrator (default: \
                 worker-PID).")
  in
  let poll_arg =
    Arg.(value & opt float 0.5 & info [ "poll" ] ~docv:"SECS"
           ~doc:"Idle backoff between lease requests when no work is \
                 available.")
  in
  let drain_arg =
    Arg.(value & flag & info [ "drain" ]
           ~doc:"Exit once the orchestrator reports no running jobs, \
                 instead of polling forever - for finite fleets in \
                 benchmarks and CI.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the worker's metrics snapshot (JSON) to FILE on \
                 exit; '-' for stdout.")
  in
  let action connect jobs name poll drain metrics quiet =
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
    in
    let reg = Option.map (fun _ -> S4e_obs.Metrics.create ()) metrics in
    let log =
      if quiet then fun _ -> ()
      else fun m -> Printf.eprintf "s4e worker: %s\n%!" m
    in
    let stop = ref false in
    let handler _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    let client = Fleet.Client.create (fleet_addr connect) in
    let runner ~spec ~shard ~resume ~emit ~cancelled =
      match fleet_spec_campaign spec with
      | Error e -> Error e
      | Ok (path, cfg) -> (
          match try_assemble path with
          | Error e -> Error e
          | Ok p ->
              (* The grant's resume payload becomes a journal file on
                 disk so the campaign resumes through the same
                 validated [--resume] path an interrupted local run
                 uses. *)
              let resume_path =
                Option.map
                  (fun (header, lines) ->
                    let tmp =
                      Filename.temp_file "s4e-fleet-resume" ".jsonl"
                    in
                    let oc = open_out_bin tmp in
                    output_string oc header;
                    output_char oc '\n';
                    List.iter
                      (fun l ->
                        output_string oc l;
                        output_char oc '\n')
                      lines;
                    close_out oc;
                    tmp)
                  resume
              in
              let result =
                S4e_core.Flows.fault_campaign ~jobs ?metrics:reg
                  ?resume:resume_path ~shard ~on_journal_line:emit ~cancelled
                  cfg p
              in
              Option.iter
                (fun f -> try Sys.remove f with Sys_error _ -> ())
                resume_path;
              match result with
              | Error e -> Error e
              | Ok r when r.S4e_core.Flows.ff_complete -> Ok ()
              | Ok _ -> Error "cancelled before the shard finished")
    in
    match
      Fleet.Worker.run ~name ~poll_s:poll ~stop ~drain ?metrics:reg ~log
        ~client ~runner ()
    with
    | Error e ->
        Format.eprintf "worker: %s@." e;
        exit 1
    | Ok o ->
        Printf.printf
          "worker %s: %d shards completed, %d failed, %d journal lines \
           streamed\n"
          name o.Fleet.Worker.o_shards_ok o.Fleet.Worker.o_shards_failed
          o.Fleet.Worker.o_records;
        (match (reg, metrics) with
        | Some reg, Some path -> S4e_obs.Metrics.write_json reg path
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Run a fleet worker: pull shard leases from the orchestrator, \
             run the campaign shards, and stream the journal back.")
    Term.(const action $ connect_arg $ jobs_arg $ name_arg $ poll_arg
          $ drain_arg $ metrics_arg $ quiet_arg)

let fleet_request client ~meth ~path ?body () =
  match Fleet.Client.request client ~meth ~path ?body () with
  | Error e ->
      Format.eprintf "s4e: %s: %s@."
        (Fleet.Http.addr_to_string (Fleet.Client.addr client))
        e;
      exit 1
  | Ok (status, reply) ->
      if status < 200 || status > 299 then begin
        Format.eprintf "s4e: HTTP %d: %s@." status
          (Option.value
             (Fleet.Json.mem_str "error" reply)
             ~default:(Fleet.Json.to_string reply));
        exit 1
      end;
      reply

let summary_of_json v =
  let module J = Fleet.Json in
  let field k = Option.value (J.mem_int k v) ~default:0 in
  { S4e_fault.Campaign.masked = field "masked"; sdc = field "sdc";
    crashed = field "crashed"; hung = field "hung";
    errors = field "errored"; total = field "total" }

let submit_cmd =
  let mutants_arg =
    Arg.(value & opt int 100 & info [ "mutants"; "n" ] ~docv:"N"
           ~doc:"Number of mutants to generate.")
  in
  let fuel_arg =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Per-run instruction budget, as in 's4e fault --fuel'.")
  in
  let blind_arg =
    Arg.(value & flag & info [ "blind" ]
           ~doc:"Ignore coverage guidance when choosing injection sites.")
  in
  let rerun_arg =
    Arg.(value & flag & info [ "rerun" ]
           ~doc:"Use the naive re-run engine, as in 's4e fault --rerun'.")
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"K"
           ~doc:"Shards to split the campaign into; each is leased to a \
                 worker independently.")
  in
  let wait_arg =
    Arg.(value & flag & info [ "wait" ]
           ~doc:"Block until the job finishes and print the merged campaign \
                 summary (first line matches 's4e fault' output); exit 1 if \
                 the job fails.")
  in
  let poll_arg =
    Arg.(value & opt float 0.5 & info [ "poll" ] ~docv:"SECS"
           ~doc:"Status poll interval with --wait.")
  in
  let action file connect mutants seed fuel blind rerun shards wait poll =
    let module J = Fleet.Json in
    if shards <= 0 then begin
      Format.eprintf "submit: --shards must be positive@.";
      exit 1
    end;
    (* Workers read the program themselves, so ship an absolute path -
       and reject a file that does not assemble before occupying the
       fleet with it. *)
    let path =
      try Unix.realpath file with Unix.Unix_error _ | Sys_error _ -> file
    in
    ignore (assemble_file path : S4e_asm.Program.t);
    let spec =
      J.Obj
        ([ ("program", J.String path); ("mutants", J.Int mutants);
           ("seed", J.Int seed); ("shards", J.Int shards) ]
        @ (match fuel with Some f -> [ ("fuel", J.Int f) ] | None -> [])
        @ (if blind then [ ("blind", J.Bool true) ] else [])
        @ if rerun then [ ("engine", J.String "rerun") ] else [])
    in
    let client = Fleet.Client.create (fleet_addr connect) in
    let reply =
      fleet_request client ~meth:"POST" ~path:"/api/jobs" ~body:spec ()
    in
    let job =
      match J.mem_str "job" reply with
      | Some id -> id
      | None ->
          Format.eprintf "submit: malformed reply: %s@." (J.to_string reply);
          exit 1
    in
    if not wait then
      Printf.printf "submitted %s (%d shards); poll with: s4e jobs %s\n" job
        shards job
    else begin
      let rec poll_status () =
        let st =
          fleet_request client ~meth:"GET" ~path:("/api/jobs/" ^ job) ()
        in
        match J.mem_str "state" st with
        | Some "running" | None ->
            Thread.delay poll;
            poll_status ()
        | Some state -> (state, st)
      in
      match poll_status () with
      | "done", st ->
          let summary =
            summary_of_json (Option.value (J.mem "summary" st) ~default:J.Null)
          in
          Format.printf "%a@." S4e_fault.Campaign.pp_summary summary;
          Printf.printf "job %s: done in %.1fs\n" job
            (match J.mem "age_s" st with
            | Some v -> Option.value (J.num v) ~default:0.
            | None -> 0.);
          Option.iter
            (fun p -> Printf.printf "journal: %s\n" p)
            (J.mem_str "journal" st)
      | state, st ->
          Format.eprintf "submit: job %s %s: %s@." job state
            (Option.value (J.mem_str "error" st) ~default:"(no reason)");
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a fault campaign to the fleet orchestrator as a \
             sharded job.")
    Term.(const action $ file_arg $ connect_arg $ mutants_arg $ seed_arg
          $ fuel_arg $ blind_arg $ rerun_arg $ shards_arg $ wait_arg
          $ poll_arg)

let jobs_cmd =
  let id_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB"
           ~doc:"Job id; omit to list every job.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the orchestrator's JSON status verbatim.")
  in
  let action connect id json =
    let module J = Fleet.Json in
    let client = Fleet.Client.create (fleet_addr connect) in
    let path =
      match id with Some id -> "/api/jobs/" ^ id | None -> "/api/jobs"
    in
    let reply = fleet_request client ~meth:"GET" ~path () in
    if json then print_endline (J.to_string reply)
    else
      let describe v =
        let str k = Option.value (J.mem_str k v) ~default:"?" in
        let shards =
          Option.value (J.mem "shards" v) ~default:J.Null
        in
        let n k = Option.value (J.mem_int k shards) ~default:0 in
        Printf.printf "%-6s %-8s records=%s/%s shards=%d/%d leased=%d%s\n"
          (str "job") (str "state")
          (match J.mem_int "records" v with
          | Some r -> string_of_int r
          | None -> "?")
          (match J.mem_int "total" v with
          | Some t -> string_of_int t
          | None -> "?")
          (n "done") (n "count") (n "leased")
          (match J.mem_str "error" v with
          | Some e -> "  error: " ^ e
          | None -> "")
      in
      match J.mem_list "jobs" reply with
      | Some jobs ->
          if jobs = [] then print_endline "no jobs"
          else List.iter describe jobs
      | None -> describe reply
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"Show fleet job status from the orchestrator.")
    Term.(const action $ connect_arg $ id_arg $ json_arg)

(* ---------------- torture ---------------- *)

let torture_cmd =
  let segments_arg =
    Arg.(value & opt int 20 & info [ "segments" ] ~docv:"N"
           ~doc:"Number of generated segments.")
  in
  let compress_arg =
    Arg.(value & flag & info [ "rvc" ] ~doc:"Emit compressed encodings.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"OUT.bin"
           ~doc:"Also save the generated program as a binary image.")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N"
           ~doc:"Generate and run N programs with seeds SEED..SEED+N-1 \
                 (domain-parallel with --jobs).")
  in
  let no_sb_arg =
    Arg.(value & flag & info [ "no-superblocks" ]
           ~doc:"Disable superblock trace promotion for the runs.")
  in
  let device_plane_arg =
    Arg.(value & flag & info [ "device-plane" ]
           ~doc:"Arm the deterministic device-traffic rig (vnet generator \
                 burst + delayed DMA descriptors) concurrently with each \
                 run and append a device/digest summary to the result \
                 line. The summary is engine-independent: it must match \
                 across --no-mem-tlb / --no-superblocks.")
  in
  let harts_arg =
    Arg.(value & opt int 1 & info [ "harts" ] ~docv:"N"
           ~doc:"With N > 1, run the deterministic SMP workloads (spinlock \
                 and IPI ring, lib/torture/smp.ml) on an N-hart machine \
                 instead of random programs, and print each final state \
                 digest. The digests are engine-independent: they must \
                 match across --no-mem-tlb / --no-superblocks.")
  in
  let action seed segments compress out count jobs no_mem_tlb no_sb dev harts =
    let mem_tlb = not no_mem_tlb in
    let superblocks = not no_sb in
    let cfg_of seed =
      { S4e_torture.Torture.default_config with
        S4e_torture.Torture.seed; segments; compress }
    in
    let pp_dev ppf = function
      | Some s -> Format.fprintf ppf "; %s" s
      | None -> ()
    in
    if harts > 1 then begin
      let rounds = 8 in
      List.iter
        (fun (name, p) ->
          let config =
            { S4e_cpu.Machine.default_config with
              S4e_cpu.Machine.mem_tlb; superblocks; harts }
          in
          let m = S4e_cpu.Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let stop =
            S4e_cpu.Machine.run m ~fuel:(S4e_torture.Smp.fuel ~harts ~rounds)
          in
          Format.printf "smp %s: %a; %d instructions; digest %s@." name
            S4e_cpu.Machine.pp_stop_reason stop
            (S4e_cpu.Machine.instret m)
            (Digest.to_hex (S4e_cpu.Machine.state_digest m)))
        (S4e_torture.Smp.suite ~harts ~rounds)
    end
    else if count <= 1 then begin
      let cfg = cfg_of seed in
      let p = S4e_torture.Torture.generate cfg in
      (match out with
      | Some path -> S4e_asm.Program.save p path
      | None -> ());
      let r =
        S4e_core.Flows.run ~mem_tlb ~superblocks ~device_traffic:dev
          ~fuel:(S4e_torture.Torture.fuel_bound cfg) p
      in
      Format.printf "torture seed=%d: %a; %d instructions%a@." seed
        S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.rr_stop
        r.S4e_core.Flows.rr_instret pp_dev r.S4e_core.Flows.rr_dev
    end
    else begin
      let fuel = S4e_torture.Torture.fuel_bound (cfg_of seed) in
      let suite =
        List.init count (fun i ->
            let s = seed + i in
            (string_of_int s, S4e_torture.Torture.generate (cfg_of s)))
      in
      let results =
        S4e_core.Flows.run_suite ~mem_tlb ~superblocks ~device_traffic:dev
          ~fuel ~jobs suite
      in
      List.iter
        (fun (name, r) ->
          Format.printf "torture seed=%s: %a; %d instructions%a@." name
            S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.rr_stop
            r.S4e_core.Flows.rr_instret pp_dev r.S4e_core.Flows.rr_dev)
        results
    end
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Generate and run random test programs.")
    Term.(const action $ seed_arg $ segments_arg $ compress_arg $ out_arg
          $ count_arg $ jobs_arg $ no_mem_tlb_arg $ no_sb_arg
          $ device_plane_arg $ harts_arg)

(* ---------------- bmi ---------------- *)

let bmi_cmd =
  let n_arg =
    Arg.(value & opt int 256 & info [ "words" ] ~docv:"N"
           ~doc:"Input array length in words.")
  in
  let action n seed =
    Format.printf "%-10s %-8s %-8s %s@." "kernel" "base" "bmi" "speedup";
    List.iter
      (fun k ->
        let base = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Base ~n ~seed in
        let bmi = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Bmi ~n ~seed in
        Format.printf "%-10s %-8d %-8d %.2fx@." k.S4e_bmi.Kernels.k_name
          base.S4e_bmi.Kernels.m_cycles bmi.S4e_bmi.Kernels.m_cycles
          (float_of_int base.S4e_bmi.Kernels.m_cycles
          /. float_of_int bmi.S4e_bmi.Kernels.m_cycles))
      S4e_bmi.Kernels.all
  in
  Cmd.v
    (Cmd.info "bmi" ~doc:"Cycle comparison of base-ISA vs BMI kernels.")
    Term.(const action $ n_arg $ seed_arg)

let () =
  let info =
    Cmd.info "s4e" ~version:"1.0.0"
      ~doc:"The Scale4Edge RISC-V ecosystem tools."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; profile_cmd; asm_cmd; dis_cmd; cfg_cmd; stats_cmd;
            wcet_cmd; qta_export_cmd; coverage_cmd; fault_cmd;
            merge_journals_cmd; serve_cmd; worker_cmd; submit_cmd; jobs_cmd;
            mutate_cmd; torture_cmd; bmi_cmd ]))
