(* The Scale4Edge ecosystem command-line front end.

   One subcommand per flow: run / dis / cfg / wcet / qta-export /
   coverage / fault / torture / bmi.  Each subcommand is a thin shell
   over the s4e_core API so everything it does is also available as a
   library call. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Accept either assembly source or a binary image (by magic). *)
let assemble_file path =
  let content = read_file path in
  if String.length content >= 4 && String.sub content 0 4 = "S4EP" then
    match S4e_asm.Program.of_bytes content with
    | Ok p -> p
    | Error m ->
        Format.eprintf "%s: malformed image: %s@." path m;
        exit 1
  else
    match S4e_asm.Assembler.assemble content with
    | Ok p -> p
    | Error e ->
        Format.eprintf "%s: %a@." path S4e_asm.Assembler.pp_error e;
        exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s"
         ~doc:"Assembly source file.")

let fuel_arg =
  Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"Maximum instructions to execute.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt int (S4e_par.Par_pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Worker domains to simulate with (default: the number of \
                 cores). Results are identical for every value.")

let no_mem_tlb_arg =
  Arg.(value & flag & info [ "no-mem-tlb" ]
       ~doc:"Disable the bus's software TLB (direct page pointers for \
             loads/stores/fetch). Observable behavior is identical; this \
             is the escape hatch / benchmarking knob.")

(* ---------------- run ---------------- *)

let run_cmd =
  let trace_arg =
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N"
           ~doc:"Print the last N executed instructions and control-flow \
                 statistics after the run.")
  in
  let input_arg =
    Arg.(value & opt (some string) None & info [ "input" ] ~docv:"BYTES"
           ~doc:"Bytes to feed into the UART receive queue before running.")
  in
  let cache_arg =
    Arg.(value & flag & info [ "cache-stats" ]
           ~doc:"Model 4 KiB 2-way I/D caches and report hit rates (plus \
                 translation-block cache statistics).")
  in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Attach the hot-spot profiler and print the ranked \
                 hot-block/hot-function report after the run.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a metrics-registry snapshot (JSON) to FILE after the \
                 run; '-' for stdout.")
  in
  let no_superblocks_arg =
    Arg.(value & flag & info [ "no-superblocks" ]
           ~doc:"Disable superblock trace promotion (hot chained paths \
                 recompiled into guarded cross-block traces). Observable \
                 behavior is identical; this is the escape hatch / \
                 benchmarking knob.")
  in
  let trace_stats_arg =
    Arg.(value & flag & info [ "trace-stats" ]
           ~doc:"Report superblock trace statistics (promotions, \
                 completions, bail-out breakdown) after the run.")
  in
  let trace_events_arg =
    Arg.(value & opt (some string) None & info [ "trace-events" ]
           ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file with one instant \
                 event per device-plane event (DMA bursts, vnet \
                 deliveries/drops/sends) after the run.")
  in
  let record_arg =
    Arg.(value & opt ~vopt:(Some 256) (some int) None & info [ "record" ]
           ~docv:"N"
           ~doc:"Arm the flight recorder with an N-record ring (default \
                 256) and dump the disassembled recorder tail when the run \
                 ends in a trap, fuel exhaustion, or a WFI halt. Unlike \
                 --trace, recording keeps the lowered fast path and never \
                 changes the run's outcome.")
  in
  let harts_arg =
    Arg.(value & opt int 1 & info [ "harts" ] ~docv:"N"
           ~doc:"Number of harts. All harts start at the entry point; \
                 software branches on mhartid. Scheduling is deterministic \
                 round-robin over fuel slices.")
  in
  let action file fuel trace input cache_stats profile metrics no_mem_tlb
      no_superblocks trace_stats trace_events record harts =
    let p = assemble_file file in
    let config =
      { S4e_cpu.Machine.default_config with
        S4e_cpu.Machine.mem_tlb = not no_mem_tlb;
        superblocks = not no_superblocks;
        harts = max 1 harts }
    in
    let m = S4e_cpu.Machine.create ~config () in
    let tracer =
      Option.map
        (fun depth -> S4e_cpu.Tracer.attach m.S4e_cpu.Machine.hooks ~depth)
        trace
    in
    let caches =
      if cache_stats then Some (S4e_cpu.Cache_model.attach m) else None
    in
    let reg =
      Option.map
        (fun _ ->
          let reg = S4e_obs.Metrics.create () in
          S4e_cpu.Machine.register_metrics m reg;
          Option.iter (fun c -> S4e_cpu.Cache_model.register_metrics c reg)
            caches;
          reg)
        metrics
    in
    let prof =
      if profile then begin
        let prof = S4e_obs.Profile.create () in
        S4e_cpu.Machine.set_profiler m (Some prof);
        Some prof
      end
      else None
    in
    let tev =
      Option.map (fun _ -> S4e_obs.Trace_events.create ()) trace_events
    in
    let rcd =
      Option.map
        (fun capacity ->
          let r = S4e_obs.Flight_recorder.create ~capacity () in
          S4e_cpu.Machine.set_recorder m (Some r);
          r)
        record
    in
    (match (reg, tev) with
    | None, None -> ()
    | _ -> S4e_cpu.Machine.observe_devices ?metrics:reg ?trace:tev m);
    S4e_asm.Program.load_machine p m;
    (match input with
    | Some s -> S4e_soc.Uart.feed m.S4e_cpu.Machine.uart s
    | None -> ());
    let stop = S4e_cpu.Machine.run m ~fuel in
    print_string (S4e_cpu.Machine.uart_output m);
    Format.printf "@.-- %a; %d instructions, %d cycles@."
      S4e_cpu.Machine.pp_stop_reason stop
      (S4e_cpu.Machine.instret m) (S4e_cpu.Machine.cycles m);
    (match rcd with
    | None -> ()
    | Some r -> (
        match stop with
        | S4e_cpu.Machine.Exited _ -> ()
        | _ ->
            Format.printf "flight recorder tail (last %d of %d records):@."
              (S4e_obs.Flight_recorder.length r)
              (S4e_obs.Flight_recorder.seq r);
            List.iter
              (fun rc ->
                Format.printf "  %a%s@." S4e_obs.Flight_recorder.pp_record rc
                  (match rc.S4e_obs.Flight_recorder.r_kind with
                  | S4e_obs.Flight_recorder.Retire
                  | S4e_obs.Flight_recorder.Watch ->
                      "  "
                      ^ S4e_asm.Disasm.disassemble_word
                          rc.S4e_obs.Flight_recorder.r_op
                  | _ -> ""))
              (S4e_obs.Flight_recorder.records r)));
    (match caches with
    | None -> ()
    | Some c ->
        let pr name (s : S4e_cpu.Cache_model.stats) =
          Format.printf "%s: %d accesses, %.1f%% hits@." name
            s.S4e_cpu.Cache_model.st_accesses
            (100.0 *. S4e_cpu.Cache_model.hit_rate s)
        in
        pr "icache" (S4e_cpu.Cache_model.icache_stats c);
        pr "dcache" (S4e_cpu.Cache_model.dcache_stats c);
        let ts = S4e_cpu.Tb_cache.stats m.S4e_cpu.Machine.tb in
        Format.printf
          "tb cache: %d blocks, %d hits, %d misses, %d chain hits, %d \
           invalidations@."
          ts.S4e_cpu.Tb_cache.st_blocks ts.S4e_cpu.Tb_cache.st_hits
          ts.S4e_cpu.Tb_cache.st_misses ts.S4e_cpu.Tb_cache.st_chain_hits
          ts.S4e_cpu.Tb_cache.st_invalidations;
        (match S4e_cpu.Tb_cache.hot_edges m.S4e_cpu.Machine.tb with
        | [] -> ()
        | edges ->
            Format.printf "hot chain edges:@.";
            List.iteri
              (fun i (src, dst, hits) ->
                if i < 10 then
                  Format.printf "  0x%08x -> 0x%08x %10d traversals@." src
                    dst hits)
              edges);
        let ms = S4e_mem.Bus.tlb_stats m.S4e_cpu.Machine.bus in
        let total = ms.S4e_mem.Bus.tlb_hits + ms.S4e_mem.Bus.tlb_misses in
        Format.printf
          "mem tlb: %d hits, %d misses, %d flushes (%.1f%% hits)@."
          ms.S4e_mem.Bus.tlb_hits ms.S4e_mem.Bus.tlb_misses
          ms.S4e_mem.Bus.tlb_flushes
          (if total = 0 then 0.0
           else 100.0 *. float_of_int ms.S4e_mem.Bus.tlb_hits
                /. float_of_int total);
        (match S4e_mem.Bus.access_counts m.S4e_cpu.Machine.bus with
        | [] -> ()
        | counts ->
            Format.printf "device mmio:";
            List.iter
              (fun (name, n) -> Format.printf " %s=%d" name n)
              counts;
            Format.printf "@.");
        let ws = S4e_soc.Event_wheel.stats m.S4e_cpu.Machine.wheel in
        Format.printf
          "event wheel: %d fired, %d idle skips, %d live@."
          ws.S4e_soc.Event_wheel.ws_fired
          ws.S4e_soc.Event_wheel.ws_idle_skips
          ws.S4e_soc.Event_wheel.ws_live);
    (if trace_stats then
       match S4e_cpu.Machine.trace_stats m with
       | None ->
           Format.printf "superblocks: disabled (engine config)@."
       | Some s ->
           Format.printf
             "superblocks: %d live traces, %d promotions, %d invalidations@."
             s.S4e_cpu.Superblock.sb_live s.S4e_cpu.Superblock.sb_promotions
             s.S4e_cpu.Superblock.sb_invalidations;
           Format.printf
             "trace runs: %d (%d completed), %d instructions inside traces@."
             s.S4e_cpu.Superblock.sb_execs
             s.S4e_cpu.Superblock.sb_completions
             s.S4e_cpu.Superblock.sb_instrs;
           Format.printf
             "bail-outs: %d guard, %d irq, %d invalidated, %d trap@."
             s.S4e_cpu.Superblock.sb_bail_guard
             s.S4e_cpu.Superblock.sb_bail_irq
             s.S4e_cpu.Superblock.sb_bail_dead
             s.S4e_cpu.Superblock.sb_bail_trap);
    (match prof with
    | None -> ()
    | Some prof ->
        let symbolize =
          S4e_obs.Profile.symbolizer_of_symbols p.S4e_asm.Program.symbols
        in
        Format.printf "%a" (S4e_obs.Profile.pp_report ~top:10 ~symbolize)
          prof);
    (match (reg, metrics) with
    | Some reg, Some path -> S4e_obs.Metrics.write_json reg path
    | _ -> ());
    (match (tev, trace_events) with
    | Some t, Some path -> S4e_obs.Trace_events.write t path
    | _ -> ());
    match tracer with
    | None -> ()
    | Some t ->
        let s = S4e_cpu.Tracer.stats t in
        Format.printf "trace tail:@.%a" S4e_cpu.Tracer.pp_tail t;
        Format.printf
          "branches: %d (%d taken), calls: %d, returns: %d@."
          s.S4e_cpu.Tracer.st_branches s.S4e_cpu.Tracer.st_taken
          s.S4e_cpu.Tracer.st_calls s.S4e_cpu.Tracer.st_returns
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and execute a program on the virtual prototype.")
    Term.(const action $ file_arg $ fuel_arg $ trace_arg $ input_arg
          $ cache_arg $ profile_arg $ metrics_arg $ no_mem_tlb_arg
          $ no_superblocks_arg $ trace_stats_arg $ trace_events_arg
          $ record_arg $ harts_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Rows in the hot-block and hot-function tables.")
  in
  let disas_arg =
    Arg.(value & flag & info [ "disas" ]
           ~doc:"Also disassemble the hottest block.")
  in
  let action file fuel top disas =
    let p = assemble_file file in
    let r = S4e_core.Flows.profile_flow ~fuel p in
    let prof = r.S4e_core.Flows.pf_profile in
    Format.printf "-- %a; %d instructions, %d cycles@."
      S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.pf_stop
      (S4e_cpu.Machine.instret r.S4e_core.Flows.pf_machine)
      (S4e_cpu.Machine.cycles r.S4e_core.Flows.pf_machine);
    Format.printf "%a"
      (S4e_obs.Profile.pp_report ~top
         ~symbolize:r.S4e_core.Flows.pf_symbolize)
      prof;
    if disas then
      match S4e_obs.Profile.ranked prof with
      | [] -> ()
      | b :: _ ->
          Format.printf "hottest block @@ 0x%08x:@."
            b.S4e_obs.Profile.bl_pc;
          List.iter
            (fun l -> Format.printf "  %a@." S4e_asm.Disasm.pp_line l)
            (S4e_asm.Disasm.disassemble_range
               ~mem:(S4e_mem.Bus.ram r.S4e_core.Flows.pf_machine.S4e_cpu.Machine.bus)
               ~start:b.S4e_obs.Profile.bl_pc
               ~len:(max 4 b.S4e_obs.Profile.bl_bytes) ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a program with the hot-spot profiler and print the ranked \
             hot-block/hot-function report.")
    Term.(const action $ file_arg $ fuel_arg $ top_arg $ disas_arg)

(* ---------------- mutate ---------------- *)

let mutate_cmd =
  let tests_arg =
    Arg.(value & opt_all string [] & info [ "test"; "t" ] ~docv:"BYTES"
           ~doc:"A test stimulus: bytes fed to the UART (repeatable). With \
                 no tests, one empty-input test is used.")
  in
  let ops_arg =
    Arg.(value & opt (some string) None & info [ "operators" ] ~docv:"OPS"
           ~doc:"Comma-separated operator subset (AOR,ROR,COR,SOR,SDL).")
  in
  let survivors_arg =
    Arg.(value & flag & info [ "survivors" ]
           ~doc:"List every surviving mutant.")
  in
  let action file tests ops survivors fuel =
    let p = assemble_file file in
    let operators =
      match ops with
      | None -> S4e_mutation.Mutop.all
      | Some s ->
          String.split_on_char ',' s
          |> List.filter_map (fun name ->
                 List.find_opt
                   (fun op ->
                     String.uppercase_ascii name = S4e_mutation.Mutop.name op)
                   S4e_mutation.Mutop.all)
    in
    let mutants = S4e_mutation.Mutant.generate ~operators p in
    let tests =
      match tests with
      | [] -> [ S4e_mutation.Score.test ~fuel ~name:"t0" "" ]
      | l ->
          List.mapi
            (fun i input ->
              S4e_mutation.Score.test ~fuel
                ~name:(Printf.sprintf "t%d" i)
                input)
            l
    in
    let results = S4e_mutation.Score.run p ~tests ~mutants in
    let s = S4e_mutation.Score.summarize results in
    Format.printf "%a@." S4e_mutation.Score.pp_score s;
    if survivors then
      List.iter
        (fun m -> Format.printf "survived: %s@." (S4e_mutation.Mutant.describe m))
        (S4e_mutation.Score.survivors results)
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Binary mutation analysis: score a test set by mutant killing.")
    Term.(const action $ file_arg $ tests_arg $ ops_arg $ survivors_arg $ fuel_arg)

(* ---------------- asm ---------------- *)

let asm_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ]
           ~docv:"OUT.bin" ~doc:"Output image path.")
  in
  let action file out =
    let p = assemble_file file in
    S4e_asm.Program.save p out;
    Format.printf "wrote %s (%d bytes of payload, entry 0x%08x)@." out
      (S4e_asm.Program.size p) p.S4e_asm.Program.entry
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble a program into a loadable binary image.")
    Term.(const action $ file_arg $ out_arg)

(* ---------------- dis ---------------- *)

let dis_cmd =
  let action file =
    let p = assemble_file file in
    List.iter
      (fun l -> Format.printf "%a@." S4e_asm.Disasm.pp_line l)
      (S4e_asm.Disasm.disassemble_program p)
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Assemble and disassemble a program.")
    Term.(const action $ file_arg)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let action file =
    let p = assemble_file file in
    let s = S4e_cfg.Static_stats.analyze p in
    Format.printf "%a" S4e_cfg.Static_stats.pp s;
    Format.printf "minimal ISA: %s@."
      (S4e_isa.Isa_module.isa_string
         (S4e_cfg.Static_stats.required_modules s))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Static instruction-set analysis (histograms, register \
             pressure, minimal ISA).")
    Term.(const action $ file_arg)

(* ---------------- cfg ---------------- *)

let cfg_cmd =
  let action file =
    let p = assemble_file file in
    let decode = S4e_cfg.Cfg.decoder_of_program p in
    let cg = S4e_cfg.Callgraph.build ~decode ~entry:p.S4e_asm.Program.entry in
    List.iter
      (fun (entry, g) ->
        Format.printf "function @@ 0x%08x:@.%a@." entry S4e_cfg.Cfg.pp g)
      cg.S4e_cfg.Callgraph.functions
  in
  Cmd.v
    (Cmd.info "cfg" ~doc:"Reconstruct and print the control-flow graph.")
    Term.(const action $ file_arg)

(* ---------------- wcet ---------------- *)

let annot_arg =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
        let label = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt v with
        | Some b -> Ok (label, b)
        | None -> Error (`Msg ("bad bound in " ^ s)))
    | None -> Error (`Msg ("expected LABEL=BOUND, got " ^ s))
  in
  let print fmt (l, b) = Format.fprintf fmt "%s=%d" l b in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "annot"; "a" ] ~docv:"LABEL=BOUND"
           ~doc:"Loop-bound annotation for the loop whose header carries LABEL.")

let cosim_arg =
  Arg.(value & flag & info [ "cosim" ]
         ~doc:"Also run the QTA co-simulation and report the path WCET.")

let wcet_cmd =
  let action file annotations cosim fuel =
    let p = assemble_file file in
    if cosim then
      match S4e_core.Flows.wcet_flow ~annotations ~fuel p with
      | Error e ->
          Format.eprintf "wcet: %s@." (S4e_wcet.Analysis.describe_error e);
          exit 1
      | Ok r ->
          Format.printf "%a" S4e_wcet.Analysis.pp_report
            r.S4e_core.Flows.wr_report;
          Format.printf "co-simulation: dynamic=%d path-wcet=%d static=%d (%a)@."
            r.S4e_core.Flows.wr_dynamic r.S4e_core.Flows.wr_path
            r.S4e_core.Flows.wr_static S4e_cpu.Machine.pp_stop_reason
            r.S4e_core.Flows.wr_stop
    else
      match S4e_wcet.Analysis.analyze ~annotations p with
      | Error e ->
          Format.eprintf "wcet: %s@." (S4e_wcet.Analysis.describe_error e);
          exit 1
      | Ok report -> Format.printf "%a" S4e_wcet.Analysis.pp_report report
  in
  Cmd.v
    (Cmd.info "wcet" ~doc:"Static WCET analysis (optionally with QTA co-simulation).")
    Term.(const action $ file_arg $ annot_arg $ cosim_arg $ fuel_arg)

(* ---------------- qta-export ---------------- *)

let qta_export_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Output path (default: stdout).")
  in
  let action file annotations out =
    let p = assemble_file file in
    match S4e_wcet.Annotated_cfg.of_program ~annotations p with
    | Error e ->
        Format.eprintf "qta-export: %s@." (S4e_wcet.Analysis.describe_error e);
        exit 1
    | Ok acfg -> (
        let s = S4e_wcet.Annotated_cfg.to_string acfg in
        match out with
        | None -> print_string s
        | Some path ->
            let oc = open_out path in
            output_string oc s;
            close_out oc)
  in
  Cmd.v
    (Cmd.info "qta-export"
       ~doc:"Write the WCET-annotated CFG (ait2qta interchange format).")
    Term.(const action $ file_arg $ annot_arg $ out_arg)

(* ---------------- coverage ---------------- *)

let coverage_cmd =
  let torture_n =
    Arg.(value & opt int 5 & info [ "torture-programs" ] ~docv:"N"
           ~doc:"Number of random torture programs in the third suite.")
  in
  let action torture_n jobs =
    let isa = S4e_cpu.Machine.default_config.S4e_cpu.Machine.isa in
    let suites =
      [ ("architectural", S4e_torture.Suites.arch_suite ~isa);
        ("unit", S4e_torture.Suites.unit_suite ~isa);
        ("torture",
         S4e_torture.Suites.torture_suite ~isa
           ~seeds:(List.init torture_n (fun i -> i + 1))) ]
    in
    let reports =
      List.map
        (fun (name, progs) ->
          (name, S4e_core.Flows.coverage_of_suite ~jobs progs))
        suites
    in
    List.iter
      (fun (name, rep) ->
        Format.printf "== %s ==@.%a@." name S4e_coverage.Report.pp rep)
      reports;
    let union =
      List.fold_left
        (fun acc (_, r) -> S4e_coverage.Report.combine acc r)
        (S4e_coverage.Report.create ~isa)
        reports
    in
    Format.printf "== unified suite ==@.%a@." S4e_coverage.Report.pp union
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Instruction and register coverage of the three test suites.")
    Term.(const action $ torture_n $ jobs_arg)

(* ---------------- fault ---------------- *)

let fault_cmd =
  let mutants_arg =
    Arg.(value & opt int 100 & info [ "mutants"; "n" ] ~docv:"N"
           ~doc:"Number of mutants to generate.")
  in
  let blind_arg =
    Arg.(value & flag & info [ "blind" ]
           ~doc:"Ignore coverage guidance when choosing injection sites.")
  in
  let rerun_arg =
    Arg.(value & flag & info [ "rerun" ]
           ~doc:"Use the naive engine (every mutant re-runs from reset, no \
                 snapshot forking or early exit).")
  in
  let fault_fuel_arg =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Per-run instruction budget (golden run and every mutant). \
                 Default: 10 million for the golden run, 3x the golden \
                 instruction count per mutant (hang detection).")
  in
  let trace_events_arg =
    Arg.(value & opt (some string) None & info [ "trace-events" ]
           ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the campaign (one lane \
                 per worker domain) to FILE; load it in Perfetto or \
                 chrome://tracing.")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the campaign metrics snapshot (JSON) to FILE; '-' \
                 for stdout.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Live mutants/sec + ETA meter on stderr.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Record every classified mutant to a JSONL journal at FILE \
                 (truncated first) so an interrupted campaign can be resumed \
                 with --resume.")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume from the journal at FILE: mutants it already \
                 classified are skipped and new records are appended in \
                 place. The journal must belong to this exact campaign \
                 (same program, seed, mutant count, and shard).")
  in
  let shard_arg =
    let parse s =
      match String.split_on_char '/' s with
      | [ i; n ] -> (
          match (int_of_string_opt i, int_of_string_opt n) with
          | Some i, Some n when n > 0 && i >= 0 && i < n -> Ok (i, n)
          | _ -> Error (`Msg ("expected I/N with 0 <= I < N, got " ^ s)))
      | _ -> Error (`Msg ("expected I/N, got " ^ s))
    in
    let print fmt (i, n) = Format.fprintf fmt "%d/%d" i n in
    Arg.(value & opt (some (conv (parse, print))) None
         & info [ "shard" ] ~docv:"I/N"
             ~doc:"Run only shard I of N (mutant indices congruent to I mod \
                   N). All N shard journals merge back into one campaign \
                   with 's4e merge-journals'.")
  in
  let timeout_arg =
    Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Wall-clock budget per mutant (a second hang defense behind \
                 the instruction budget); mutants over it are classified \
                 hung. 0 disables it. Note: makes borderline outcomes \
                 machine-dependent.")
  in
  let triage_arg =
    Arg.(value & opt ~vopt:(Some 8) (some int) None & info [ "triage" ]
           ~docv:"K"
           ~doc:"After the campaign, re-run up to K (default 8) of the \
                 divergent mutants (sdc/crashed/hung) in lockstep against \
                 a golden run with flight recorders armed, and report each \
                 mutant's first architectural divergence (pc, instruction, \
                 register/memory delta) plus the ranked top faulty sites.")
  in
  let triage_out_arg =
    Arg.(value & opt (some string) None & info [ "triage-out" ] ~docv:"FILE"
           ~doc:"Write the triage records produced by --triage to FILE as \
                 JSONL (one object per triaged mutant).")
  in
  let action file mutants seed blind rerun fuel jobs trace_events metrics
      progress journal resume shard timeout triage triage_out =
    let p = assemble_file file in
    let engine =
      if rerun then S4e_fault.Campaign.rerun_engine
      else S4e_fault.Campaign.default_engine
    in
    let engine = { engine with S4e_fault.Campaign.eng_timeout_s = timeout } in
    let cfg =
      { S4e_core.Flows.default_fault_config with
        S4e_core.Flows.ff_seed = seed; ff_mutants = mutants;
        ff_blind = blind;
        ff_fuel = Option.value fuel ~default:10_000_000;
        ff_hang_budget =
          (match fuel with
          | Some _ -> S4e_core.Flows.Hang_fuel
          | None -> S4e_core.Flows.Hang_auto);
        ff_engine = engine }
    in
    let sink = Option.map (fun _ -> S4e_obs.Trace_events.create ()) trace_events in
    let reg = Option.map (fun _ -> S4e_obs.Metrics.create ()) metrics in
    (* Idempotent telemetry flush: the normal path and the force-quit
       SIGINT path below both call it, so the trace/metrics files
       survive even a second ^C (the campaign journal already has its
       own crash-safe batching). *)
    let flushed = Atomic.make false in
    let flush_outputs () =
      if not (Atomic.exchange flushed true) then begin
        (match (sink, trace_events) with
        | Some s, Some path ->
            S4e_obs.Trace_events.write s path;
            Format.printf "wrote %d trace events to %s@."
              (S4e_obs.Trace_events.events s)
              path
        | _ -> ());
        match (reg, metrics) with
        | Some reg, Some path -> S4e_obs.Metrics.write_json reg path
        | _ -> ()
      end
    in
    (* Cooperative SIGINT: workers finish their in-flight mutants, the
       journal is flushed, and the partial summary still prints.  A
       second ^C force-quits - flushing the telemetry sinks on the way
       out so an impatient interrupt doesn't lose the trace. *)
    let stop = Atomic.make false in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           if Atomic.get stop then begin
             flush_outputs ();
             Stdlib.exit 130
           end;
           Atomic.set stop true;
           prerr_endline
             "\ninterrupt: finishing in-flight mutants (^C again to force \
              quit)"));
    let r =
      match
        S4e_core.Flows.fault_campaign ~jobs ?metrics:reg ?trace:sink
          ~progress ?journal ?resume ?shard
          ~cancelled:(fun () -> Atomic.get stop)
          cfg p
      with
      | Ok r -> r
      | Error e ->
          Format.eprintf "fault: %s@." e;
          exit 1
    in
    Format.printf "%a@." S4e_fault.Campaign.pp_summary r.S4e_core.Flows.ff_summary;
    if r.S4e_core.Flows.ff_resumed > 0 then
      Format.printf "resumed: %d mutants already classified in the journal@."
        r.S4e_core.Flows.ff_resumed;
    List.iter
      (fun (f, o) ->
        if o <> S4e_fault.Campaign.Masked then
          Format.printf "  %-8s %a@."
            (S4e_fault.Campaign.outcome_name o)
            S4e_fault.Fault.pp f)
      r.S4e_core.Flows.ff_results;
    (match triage with
    | Some sample when r.S4e_core.Flows.ff_complete ->
        let recs = S4e_core.Flows.fault_triage ~sample cfg p r in
        if recs = [] then Format.printf "triage: no divergent mutants@."
        else begin
          Format.printf "triage (%d mutants):@." (List.length recs);
          List.iter
            (fun t -> Format.printf "  %a@." S4e_fault.Campaign.pp_triage t)
            recs;
          match S4e_fault.Campaign.top_sites recs with
          | [] -> ()
          | sites ->
              Format.printf "top faulty sites:@.";
              List.iteri
                (fun i (pc, c) ->
                  if i < 8 then
                    Format.printf "  0x%08x  %d mutant%s@." pc c
                      (if c = 1 then "" else "s"))
                sites
        end;
        (match triage_out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            List.iter
              (fun t ->
                output_string oc (S4e_fault.Campaign.triage_to_json t);
                output_char oc '\n')
              recs;
            close_out oc;
            Format.printf "wrote %d triage records to %s@."
              (List.length recs) path)
    | Some _ ->
        Format.printf "triage: skipped (campaign interrupted)@."
    | None -> ());
    flush_outputs ();
    if not r.S4e_core.Flows.ff_complete then begin
      (match (journal, resume) with
      | Some f, _ | None, Some f ->
          Format.printf "interrupted: %d mutants classified; continue with \
                         --resume %s@."
            r.S4e_core.Flows.ff_summary.S4e_fault.Campaign.total f
      | None, None ->
          Format.printf "interrupted: %d mutants classified (no journal - \
                         rerun from scratch)@."
            r.S4e_core.Flows.ff_summary.S4e_fault.Campaign.total);
      exit 130
    end
  in
  Cmd.v
    (Cmd.info "fault" ~doc:"Coverage-guided bit-flip fault campaign.")
    Term.(const action $ file_arg $ mutants_arg $ seed_arg $ blind_arg
          $ rerun_arg $ fault_fuel_arg $ jobs_arg $ trace_events_arg
          $ metrics_arg $ progress_arg $ journal_arg $ resume_arg
          $ shard_arg $ timeout_arg $ triage_arg $ triage_out_arg)

(* ---------------- merge-journals ---------------- *)

let merge_journals_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"JOURNAL"
           ~doc:"Shard journal files of one campaign.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
           ~doc:"Also write the merged records as a single unsharded journal \
                 to OUT.")
  in
  let action files out =
    let inputs =
      List.map
        (fun path ->
          match S4e_fault.Journal.read path with
          | Ok j -> j
          | Error e ->
              Format.eprintf "merge-journals: %s: %s@." path e;
              exit 1)
        files
    in
    match S4e_fault.Journal.merge inputs with
    | Error e ->
        Format.eprintf "merge-journals: %s@." e;
        exit 1
    | Ok (h, records) ->
        let results =
          List.map
            (fun r ->
              (r.S4e_fault.Journal.r_fault, r.S4e_fault.Journal.r_outcome))
            records
        in
        Format.printf "%a@." S4e_fault.Campaign.pp_summary
          (S4e_fault.Campaign.summarize results);
        (match out with
        | None -> ()
        | Some path -> (
            match S4e_fault.Journal.create ~path h with
            | Error e ->
                Format.eprintf "merge-journals: %s: %s@." path e;
                exit 1
            | Ok w ->
                List.iter (S4e_fault.Journal.write w) records;
                S4e_fault.Journal.close w;
                Format.printf "wrote %d records to %s@." (List.length records)
                  path));
        if not (S4e_fault.Journal.is_complete h records) then begin
          Format.eprintf
            "merge-journals: incomplete campaign: %d/%d mutants classified@."
            (List.length records) h.S4e_fault.Journal.j_total;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:"Merge the journals of a sharded fault campaign and print the \
             combined summary.")
    Term.(const action $ files_arg $ out_arg)

(* ---------------- torture ---------------- *)

let torture_cmd =
  let segments_arg =
    Arg.(value & opt int 20 & info [ "segments" ] ~docv:"N"
           ~doc:"Number of generated segments.")
  in
  let compress_arg =
    Arg.(value & flag & info [ "rvc" ] ~doc:"Emit compressed encodings.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"OUT.bin"
           ~doc:"Also save the generated program as a binary image.")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N"
           ~doc:"Generate and run N programs with seeds SEED..SEED+N-1 \
                 (domain-parallel with --jobs).")
  in
  let no_sb_arg =
    Arg.(value & flag & info [ "no-superblocks" ]
           ~doc:"Disable superblock trace promotion for the runs.")
  in
  let device_plane_arg =
    Arg.(value & flag & info [ "device-plane" ]
           ~doc:"Arm the deterministic device-traffic rig (vnet generator \
                 burst + delayed DMA descriptors) concurrently with each \
                 run and append a device/digest summary to the result \
                 line. The summary is engine-independent: it must match \
                 across --no-mem-tlb / --no-superblocks.")
  in
  let harts_arg =
    Arg.(value & opt int 1 & info [ "harts" ] ~docv:"N"
           ~doc:"With N > 1, run the deterministic SMP workloads (spinlock \
                 and IPI ring, lib/torture/smp.ml) on an N-hart machine \
                 instead of random programs, and print each final state \
                 digest. The digests are engine-independent: they must \
                 match across --no-mem-tlb / --no-superblocks.")
  in
  let action seed segments compress out count jobs no_mem_tlb no_sb dev harts =
    let mem_tlb = not no_mem_tlb in
    let superblocks = not no_sb in
    let cfg_of seed =
      { S4e_torture.Torture.default_config with
        S4e_torture.Torture.seed; segments; compress }
    in
    let pp_dev ppf = function
      | Some s -> Format.fprintf ppf "; %s" s
      | None -> ()
    in
    if harts > 1 then begin
      let rounds = 8 in
      List.iter
        (fun (name, p) ->
          let config =
            { S4e_cpu.Machine.default_config with
              S4e_cpu.Machine.mem_tlb; superblocks; harts }
          in
          let m = S4e_cpu.Machine.create ~config () in
          S4e_asm.Program.load_machine p m;
          let stop =
            S4e_cpu.Machine.run m ~fuel:(S4e_torture.Smp.fuel ~harts ~rounds)
          in
          Format.printf "smp %s: %a; %d instructions; digest %s@." name
            S4e_cpu.Machine.pp_stop_reason stop
            (S4e_cpu.Machine.instret m)
            (Digest.to_hex (S4e_cpu.Machine.state_digest m)))
        (S4e_torture.Smp.suite ~harts ~rounds)
    end
    else if count <= 1 then begin
      let cfg = cfg_of seed in
      let p = S4e_torture.Torture.generate cfg in
      (match out with
      | Some path -> S4e_asm.Program.save p path
      | None -> ());
      let r =
        S4e_core.Flows.run ~mem_tlb ~superblocks ~device_traffic:dev
          ~fuel:(S4e_torture.Torture.fuel_bound cfg) p
      in
      Format.printf "torture seed=%d: %a; %d instructions%a@." seed
        S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.rr_stop
        r.S4e_core.Flows.rr_instret pp_dev r.S4e_core.Flows.rr_dev
    end
    else begin
      let fuel = S4e_torture.Torture.fuel_bound (cfg_of seed) in
      let suite =
        List.init count (fun i ->
            let s = seed + i in
            (string_of_int s, S4e_torture.Torture.generate (cfg_of s)))
      in
      let results =
        S4e_core.Flows.run_suite ~mem_tlb ~superblocks ~device_traffic:dev
          ~fuel ~jobs suite
      in
      List.iter
        (fun (name, r) ->
          Format.printf "torture seed=%s: %a; %d instructions%a@." name
            S4e_cpu.Machine.pp_stop_reason r.S4e_core.Flows.rr_stop
            r.S4e_core.Flows.rr_instret pp_dev r.S4e_core.Flows.rr_dev)
        results
    end
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Generate and run random test programs.")
    Term.(const action $ seed_arg $ segments_arg $ compress_arg $ out_arg
          $ count_arg $ jobs_arg $ no_mem_tlb_arg $ no_sb_arg
          $ device_plane_arg $ harts_arg)

(* ---------------- bmi ---------------- *)

let bmi_cmd =
  let n_arg =
    Arg.(value & opt int 256 & info [ "words" ] ~docv:"N"
           ~doc:"Input array length in words.")
  in
  let action n seed =
    Format.printf "%-10s %-8s %-8s %s@." "kernel" "base" "bmi" "speedup";
    List.iter
      (fun k ->
        let base = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Base ~n ~seed in
        let bmi = S4e_bmi.Kernels.measure k S4e_bmi.Kernels.Bmi ~n ~seed in
        Format.printf "%-10s %-8d %-8d %.2fx@." k.S4e_bmi.Kernels.k_name
          base.S4e_bmi.Kernels.m_cycles bmi.S4e_bmi.Kernels.m_cycles
          (float_of_int base.S4e_bmi.Kernels.m_cycles
          /. float_of_int bmi.S4e_bmi.Kernels.m_cycles))
      S4e_bmi.Kernels.all
  in
  Cmd.v
    (Cmd.info "bmi" ~doc:"Cycle comparison of base-ISA vs BMI kernels.")
    Term.(const action $ n_arg $ seed_arg)

let () =
  let info =
    Cmd.info "s4e" ~version:"1.0.0"
      ~doc:"The Scale4Edge RISC-V ecosystem tools."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; profile_cmd; asm_cmd; dis_cmd; cfg_cmd; stats_cmd;
            wcet_cmd; qta_export_cmd; coverage_cmd; fault_cmd;
            merge_journals_cmd; mutate_cmd; torture_cmd; bmi_cmd ]))
