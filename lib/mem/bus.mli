(** System bus: RAM plus memory-mapped devices, with a software TLB.

    The bus routes each access either to a registered device (by address
    range) or to the backing {!Sparse_mem}.  Device accesses can be
    observed through {!set_io_watcher}, which is the substrate for the
    ecosystem's non-invasive IO access analysis (MBMV 2019): watchers
    see every device touch without the software being instrumented.

    Routing is accelerated by a QEMU-style software TLB: a direct-mapped
    table of direct page pointers into RAM (separate read and write
    views).  A hit is a tag compare plus a [Bytes] access — no device
    scan, no hash lookup, no allocation.  Only pages free of devices are
    ever cached, and nothing is cached while an IO watcher is installed,
    so TLB hits are observationally identical to the slow path.  The TLB
    is flushed on {!attach}, {!set_io_watcher}, and every structural
    RAM change ([Sparse_mem.clear]/[restore]/[load_bytes], via the
    sparse memory's change hook). *)

type word = S4e_bits.Bits.word

type io_access = {
  io_addr : word;
  io_size : int;  (** 1, 2 or 4 *)
  io_value : word;
  io_is_write : bool;
  io_device : string;
}

(** A memory-mapped device occupying [\[base, base+len)]. *)
type device = {
  dev_name : string;
  dev_base : word;
  dev_len : int;
  dev_read : int -> int -> word;  (** [dev_read offset size] *)
  dev_write : int -> int -> word -> unit;  (** [dev_write offset size v] *)
}

type t

val create : unit -> t

val ram : t -> Sparse_mem.t
(** Direct access to the RAM backing store (used by loaders and fault
    injectors; bypasses devices and watchers). *)

val attach : t -> device -> unit
(** Registers a device.  Raises [Invalid_argument] if its range overlaps
    an already-attached device. *)

val device_ranges : t -> (string * word * int) list
(** [(name, base, len)] of every attached device. *)

val access_counts : t -> (string * int) list
(** [(name, accesses)] per attached device, in base order: every MMIO
    read or write routed to the device since bus creation (fetches and
    RAM traffic excluded).  Surfaced by [run --cache-stats]. *)

val set_io_watcher : t -> (io_access -> unit) option -> unit
(** Installs (or clears) the observer called after every device access. *)

val io_watcher : t -> (io_access -> unit) option
(** The currently installed observer.  Lets a layer that stacks its own
    watcher (e.g. {!S4e_core.Io_guard}) save the previous one on attach
    and restore it on detach instead of clobbering it. *)

val read : t -> word -> int -> word
(** [read bus addr size] with [size] in {1, 2, 4}.  Unclaimed addresses
    fall through to RAM. *)

val write : t -> word -> int -> word -> unit

val read32 : t -> word -> word
val read16 : t -> word -> word
val read8 : t -> word -> word
val write32 : t -> word -> word -> unit
val write16 : t -> word -> word -> unit
val write8 : t -> word -> word -> unit

val fetch32 : t -> word -> word
(** Instruction fetch: always from RAM, never from devices, and not
    reported to the IO watcher.  Shares the TLB's read view with the
    load path, so translation warms the same entries. *)

val fetch16 : t -> word -> word

(** {1 Software TLB control} *)

val set_tlb_enabled : t -> bool -> unit
(** Enables or disables the software TLB (enabled by default).
    Disabling flushes it, so every access takes the full routing path —
    the escape hatch behind the [mem_tlb] machine-config knob. *)

val tlb_enabled : t -> bool

val tlb_flush : t -> unit
(** Drops every cached page pointer.  Called internally at every
    mutation point (device attach, watcher install, RAM clear/restore/
    bulk load); exposed for callers that mutate RAM behind the bus's
    back and want to be explicit (e.g. fault injectors). *)

type tlb_stats = {
  tlb_hits : int;      (** accesses served by a cached page pointer *)
  tlb_misses : int;    (** accesses that took the full routing path *)
  tlb_flushes : int;   (** whole-table invalidations *)
}

val tlb_stats : t -> tlb_stats
