(** Sparse byte-addressable memory.

    Backing store is a hash table of fixed-size pages allocated on first
    touch, so a 4 GiB address space costs only what the program uses.
    All multi-byte accesses are little-endian, matching RISC-V. *)

type t

val page_size : int
(** Bytes per page (a power of two). *)

val page_bits : int
(** [log2 page_size]; an address's page number is [addr lsr page_bits]. *)

val page_mask : int
(** [page_size - 1]; an address's in-page offset is [addr land page_mask]. *)

val create : unit -> t

val find_page : t -> int -> Bytes.t option
(** [find_page m pn] is the backing buffer of page number [pn], or
    [None] if that page was never touched.  Never allocates: absent
    pages must stay absent so {!digest} (which distinguishes absent from
    all-zero pages) is unaffected by read traffic. *)

val get_page : t -> int -> Bytes.t
(** [get_page m pn] is the backing buffer of page number [pn],
    allocating a zero-filled page on first touch (same semantics as a
    write to that page). *)

val set_change_hook : t -> (unit -> unit) -> unit
(** [set_change_hook m f] installs [f] to be called after every
    operation that may change the page-number → buffer mapping
    ({!clear}, {!restore}, {!load_bytes}).  Page buffers obtained from
    {!find_page}/{!get_page} before the hook fires must be considered
    stale afterwards.  A single hook; installing replaces the previous
    one ({!Bus.create} owns it for TLB invalidation). *)

val read8 : t -> int -> int
(** [read8 m addr] reads one byte; untouched memory reads as zero. *)

val write8 : t -> int -> int -> unit
(** [write8 m addr v] stores [v land 0xff]. *)

val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
val read32 : t -> int -> S4e_bits.Bits.word
val write32 : t -> int -> S4e_bits.Bits.word -> unit

val load_bytes : t -> int -> string -> unit
(** [load_bytes m addr s] copies [s] into memory starting at [addr]. *)

val dump_bytes : t -> int -> int -> string
(** [dump_bytes m addr len] reads [len] bytes starting at [addr]. *)

val clear : t -> unit
(** Drops every page. *)

val copy : t -> t
(** Deep copy; used to snapshot the golden state for fault campaigns.
    The copy starts with no change hook installed. *)

type snapshot
(** A detached page-copy image of the memory at one instant. *)

val snapshot : t -> snapshot
(** [snapshot m] captures the current contents.  O(touched pages). *)

val restore : t -> snapshot -> unit
(** [restore m s] rewinds [m] to the captured contents.  A snapshot can
    be restored any number of times; page buffers still live in [m] are
    reused in place, so repeated restores do not churn the heap. *)

val digest : t -> string
(** Order-independent digest of every allocated page (page base + MD5
    of its bytes).  Two memories with identical allocated pages and
    contents digest equally; an all-zero page digests differently from
    an absent one, which is safe for the fault campaign's convergence
    check (a spurious mismatch only costs the early exit). *)

val touched_pages : t -> int
(** Number of pages allocated so far. *)

val iter_touched : t -> (int -> unit) -> unit
(** [iter_touched m f] calls [f] with the base address of every
    allocated page (order unspecified). *)
