type word = int

type io_access = {
  io_addr : word;
  io_size : int;
  io_value : word;
  io_is_write : bool;
  io_device : string;
}

type device = {
  dev_name : string;
  dev_base : word;
  dev_len : int;
  dev_read : int -> int -> word;
  dev_write : int -> int -> word -> unit;
}

type t = {
  mem : Sparse_mem.t;
  mutable devices : device array;
  mutable watcher : (io_access -> unit) option;
}

let create () = { mem = Sparse_mem.create (); devices = [||]; watcher = None }
let ram t = t.mem

let overlaps a b =
  a.dev_base < b.dev_base + b.dev_len && b.dev_base < a.dev_base + a.dev_len

let attach t dev =
  Array.iter
    (fun d ->
      if overlaps d dev then
        invalid_arg
          (Printf.sprintf "Bus.attach: %s overlaps %s" dev.dev_name d.dev_name))
    t.devices;
  t.devices <- Array.append t.devices [| dev |]

let device_ranges t =
  Array.to_list
    (Array.map (fun d -> (d.dev_name, d.dev_base, d.dev_len)) t.devices)

let set_io_watcher t w = t.watcher <- w
let io_watcher t = t.watcher

let find_device t addr =
  let n = Array.length t.devices in
  let rec go i =
    if i >= n then None
    else
      let d = Array.unsafe_get t.devices i in
      if addr >= d.dev_base && addr < d.dev_base + d.dev_len then Some d
      else go (i + 1)
  in
  go 0

let notify t d addr size value is_write =
  match t.watcher with
  | None -> ()
  | Some f ->
      f { io_addr = addr; io_size = size; io_value = value;
          io_is_write = is_write; io_device = d.dev_name }

let read t addr size =
  match find_device t addr with
  | Some d ->
      let v = d.dev_read (addr - d.dev_base) size in
      notify t d addr size v false;
      v
  | None -> (
      match size with
      | 1 -> Sparse_mem.read8 t.mem addr
      | 2 -> Sparse_mem.read16 t.mem addr
      | 4 -> Sparse_mem.read32 t.mem addr
      | _ -> invalid_arg "Bus.read: size must be 1, 2 or 4")

let write t addr size v =
  match find_device t addr with
  | Some d ->
      d.dev_write (addr - d.dev_base) size v;
      notify t d addr size v true
  | None -> (
      match size with
      | 1 -> Sparse_mem.write8 t.mem addr v
      | 2 -> Sparse_mem.write16 t.mem addr v
      | 4 -> Sparse_mem.write32 t.mem addr v
      | _ -> invalid_arg "Bus.write: size must be 1, 2 or 4")

let read32 t addr = read t addr 4
let read16 t addr = read t addr 2
let read8 t addr = read t addr 1
let write32 t addr v = write t addr 4 v
let write16 t addr v = write t addr 2 v
let write8 t addr v = write t addr 1 v

let fetch32 t addr = Sparse_mem.read32 t.mem addr
let fetch16 t addr = Sparse_mem.read16 t.mem addr
