type word = int

type io_access = {
  io_addr : word;
  io_size : int;
  io_value : word;
  io_is_write : bool;
  io_device : string;
}

type device = {
  dev_name : string;
  dev_base : word;
  dev_len : int;
  dev_read : int -> int -> word;
  dev_write : int -> int -> word -> unit;
}

(* Software TLB (QEMU softmmu style): a direct-mapped table from page
   number to the backing RAM page buffer.  A hit turns a load/store into
   a tag compare plus direct [Bytes] access — no device scan, no
   [Hashtbl.find_opt] (which also allocates a [Some] per call).  Misses
   take the full routing path, which refills the entry when the page is
   plain RAM.  Separate read/write views: read fills must never allocate
   a page (absent pages digest differently from all-zero ones), while
   write fills allocate exactly as a RAM store always has. *)
let tlb_bits = 8
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(* Placeholder buffer for empty slots; tags are reset to -1 (never a
   valid page number) so the placeholder is never dereferenced. *)
let no_page = Bytes.create 0

type tlb_stats = { tlb_hits : int; tlb_misses : int; tlb_flushes : int }

type t = {
  mem : Sparse_mem.t;
  mutable devices : device array; (* sorted by dev_base *)
  mutable dev_counts : int array; (* MMIO accesses, parallel to devices *)
  mutable watcher : (io_access -> unit) option;
  mutable tlb_on : bool;
  rtag : int array;
  rbuf : Bytes.t array;
  wtag : int array;
  wbuf : Bytes.t array;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let tlb_flush t =
  Array.fill t.rtag 0 tlb_size (-1);
  Array.fill t.wtag 0 tlb_size (-1);
  Array.fill t.rbuf 0 tlb_size no_page;
  Array.fill t.wbuf 0 tlb_size no_page;
  t.flushes <- t.flushes + 1

let create () =
  let t =
    { mem = Sparse_mem.create ();
      devices = [||];
      dev_counts = [||];
      watcher = None;
      tlb_on = true;
      rtag = Array.make tlb_size (-1);
      rbuf = Array.make tlb_size no_page;
      wtag = Array.make tlb_size (-1);
      wbuf = Array.make tlb_size no_page;
      hits = 0;
      misses = 0;
      flushes = 0 }
  in
  (* Any structural change to RAM (clear, snapshot restore, bulk load)
     invalidates cached page pointers. *)
  Sparse_mem.set_change_hook t.mem (fun () -> tlb_flush t);
  t

let ram t = t.mem

let set_tlb_enabled t on =
  t.tlb_on <- on;
  if not on then tlb_flush t

let tlb_enabled t = t.tlb_on
let tlb_stats t = { tlb_hits = t.hits; tlb_misses = t.misses;
                    tlb_flushes = t.flushes }

let overlaps a b =
  a.dev_base < b.dev_base + b.dev_len && b.dev_base < a.dev_base + a.dev_len

let attach t dev =
  Array.iter
    (fun d ->
      if overlaps d dev then
        invalid_arg
          (Printf.sprintf "Bus.attach: %s overlaps %s" dev.dev_name d.dev_name))
    t.devices;
  let old_devs = t.devices and old_counts = t.dev_counts in
  let devices = Array.append t.devices [| dev |] in
  Array.sort (fun a b -> compare a.dev_base b.dev_base) devices;
  t.devices <- devices;
  (* carry each device's access count across the re-sort *)
  t.dev_counts <-
    Array.map
      (fun d ->
        let rec find i =
          if i >= Array.length old_devs then 0
          else if old_devs.(i) == d then old_counts.(i)
          else find (i + 1)
        in
        find 0)
      devices;
  (* the new device's pages may be cached as plain RAM *)
  tlb_flush t

let device_ranges t =
  Array.to_list
    (Array.map (fun d -> (d.dev_name, d.dev_base, d.dev_len)) t.devices)

let access_counts t =
  Array.to_list
    (Array.mapi (fun i d -> (d.dev_name, t.dev_counts.(i))) t.devices)

let set_io_watcher t w =
  t.watcher <- w;
  (* While a watcher is installed nothing fills the TLB (conservative:
     the IO-access analysis must stay non-invasive and exact), and
     entries filled before it arrived must not let accesses bypass the
     routing that the watcher observes-adjacent state depends on. *)
  tlb_flush t

let io_watcher t = t.watcher

(* Binary search over the base-sorted device array: find the rightmost
   device with [dev_base <= addr], then range-check it.  Devices are
   attached a handful of times and consulted on every non-cached access. *)
let find_device_idx t addr =
  let devs = t.devices in
  let n = Array.length devs in
  if n = 0 then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if (Array.unsafe_get devs mid).dev_base <= addr then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !found < 0 then -1
    else
      let d = Array.unsafe_get devs !found in
      if addr < d.dev_base + d.dev_len then !found else -1
  end

let count_access t i = t.dev_counts.(i) <- t.dev_counts.(i) + 1

let notify t d addr size value is_write =
  match t.watcher with
  | None -> ()
  | Some f ->
      f { io_addr = addr; io_size = size; io_value = value;
          io_is_write = is_write; io_device = d.dev_name }

(* A page is cacheable when no device claims any byte of it, so a TLB
   hit is guaranteed to route exactly where the slow path would. *)
let page_cacheable t pn =
  let base = pn lsl Sparse_mem.page_bits in
  let limit = base + Sparse_mem.page_size in
  let devs = t.devices in
  let n = Array.length devs in
  let rec free i =
    if i >= n then true
    else
      let d = Array.unsafe_get devs i in
      if d.dev_base < limit && base < d.dev_base + d.dev_len then false
      else free (i + 1)
  in
  free 0

let may_fill t pn = t.tlb_on && t.watcher = None && page_cacheable t pn

(* Read fill only caches pages that already exist: materialising a page
   on a read would make read traffic observable in [Sparse_mem.digest]. *)
let fill_read t pn =
  if may_fill t pn then
    match Sparse_mem.find_page t.mem pn with
    | Some p ->
        let i = pn land tlb_mask in
        Array.unsafe_set t.rtag i pn;
        Array.unsafe_set t.rbuf i p
    | None -> ()

(* Write fill allocates (a RAM store always did); the page now exists,
   so it is valid for the read view too. *)
let fill_write t pn =
  if may_fill t pn then begin
    let p = Sparse_mem.get_page t.mem pn in
    let i = pn land tlb_mask in
    Array.unsafe_set t.wtag i pn;
    Array.unsafe_set t.wbuf i p;
    Array.unsafe_set t.rtag i pn;
    Array.unsafe_set t.rbuf i p
  end

let page_bits = Sparse_mem.page_bits
let page_mask = Sparse_mem.page_mask

let read8_slow t addr =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      let v = d.dev_read (addr - d.dev_base) 1 in
      notify t d addr 1 v false;
      v
  | _ ->
      fill_read t (addr lsr page_bits);
      Sparse_mem.read8 t.mem addr

(* Hit-path tag compares below fold the page match and the "access lies
   wholly inside the page" condition into ONE compare: the entry at
   index [i] can only ever hold a page number congruent to [i] modulo
   [tlb_size] (that is how it was filled), so comparing the tag against
   [(addr + width - 1) lsr page_bits] — which belongs to the NEXT
   index class when the access crosses the page edge — can never
   falsely match; cross-page accesses always fall to the slow path. *)

let read8 t addr =
  let addr = addr land 0xFFFF_FFFF in
  let pn = addr lsr page_bits in
  let i = pn land tlb_mask in
  if Array.unsafe_get t.rtag i = pn then begin
    t.hits <- t.hits + 1;
    Char.code (Bytes.unsafe_get (Array.unsafe_get t.rbuf i) (addr land page_mask))
  end
  else read8_slow t addr

let read16_slow t addr =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      let v = d.dev_read (addr - d.dev_base) 2 in
      notify t d addr 2 v false;
      v
  | _ ->
      fill_read t (addr lsr page_bits);
      Sparse_mem.read16 t.mem addr

let read16 t addr =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.rtag i = (addr + 1) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Bytes.get_uint16_le (Array.unsafe_get t.rbuf i) (addr land page_mask)
  end
  else read16_slow t addr

let read32_slow t addr =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      let v = d.dev_read (addr - d.dev_base) 4 in
      notify t d addr 4 v false;
      v
  | _ ->
      fill_read t (addr lsr page_bits);
      Sparse_mem.read32 t.mem addr

let read32 t addr =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.rtag i = (addr + 3) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Int32.to_int
      (Bytes.get_int32_le (Array.unsafe_get t.rbuf i) (addr land page_mask))
    land 0xFFFF_FFFF
  end
  else read32_slow t addr

let write8_slow t addr v =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      d.dev_write (addr - d.dev_base) 1 v;
      notify t d addr 1 v true
  | _ ->
      fill_write t (addr lsr page_bits);
      Sparse_mem.write8 t.mem addr v

let write8 t addr v =
  let addr = addr land 0xFFFF_FFFF in
  let pn = addr lsr page_bits in
  let i = pn land tlb_mask in
  if Array.unsafe_get t.wtag i = pn then begin
    t.hits <- t.hits + 1;
    Bytes.unsafe_set (Array.unsafe_get t.wbuf i) (addr land page_mask)
      (Char.chr (v land 0xFF))
  end
  else write8_slow t addr v

let write16_slow t addr v =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      d.dev_write (addr - d.dev_base) 2 v;
      notify t d addr 2 v true
  | _ ->
      fill_write t (addr lsr page_bits);
      Sparse_mem.write16 t.mem addr v

let write16 t addr v =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.wtag i = (addr + 1) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Bytes.set_uint16_le (Array.unsafe_get t.wbuf i) (addr land page_mask)
      (v land 0xFFFF)
  end
  else write16_slow t addr v

let write32_slow t addr v =
  t.misses <- t.misses + 1;
  match find_device_idx t addr with
  | di when di >= 0 ->
      let d = Array.unsafe_get t.devices di in
      count_access t di;
      d.dev_write (addr - d.dev_base) 4 v;
      notify t d addr 4 v true
  | _ ->
      fill_write t (addr lsr page_bits);
      Sparse_mem.write32 t.mem addr v

let write32 t addr v =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.wtag i = (addr + 3) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Bytes.set_int32_le (Array.unsafe_get t.wbuf i) (addr land page_mask)
      (Int32.of_int v)
  end
  else write32_slow t addr v

let read t addr size =
  match size with
  | 1 -> read8 t addr
  | 2 -> read16 t addr
  | 4 -> read32 t addr
  | _ -> invalid_arg "Bus.read: size must be 1, 2 or 4"

let write t addr size v =
  match size with
  | 1 -> write8 t addr v
  | 2 -> write16 t addr v
  | 4 -> write32 t addr v
  | _ -> invalid_arg "Bus.write: size must be 1, 2 or 4"

(* Instruction fetch always reads RAM — never devices, never the
   watcher — so the miss path goes straight to [Sparse_mem], but it
   shares the read view: translation warms the same entries the load
   fast path uses.  [fill_read] refuses device pages, preserving the
   bypass (a fetch from a device-claimed page must not make later loads
   to that page skip the device). *)
let fetch32 t addr =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.rtag i = (addr + 3) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Int32.to_int
      (Bytes.get_int32_le (Array.unsafe_get t.rbuf i) (addr land page_mask))
    land 0xFFFF_FFFF
  end
  else begin
    t.misses <- t.misses + 1;
    fill_read t (addr lsr page_bits);
    Sparse_mem.read32 t.mem addr
  end

let fetch16 t addr =
  let addr = addr land 0xFFFF_FFFF in
  let i = (addr lsr page_bits) land tlb_mask in
  if Array.unsafe_get t.rtag i = (addr + 1) lsr page_bits then begin
    t.hits <- t.hits + 1;
    Bytes.get_uint16_le (Array.unsafe_get t.rbuf i) (addr land page_mask)
  end
  else begin
    t.misses <- t.misses + 1;
    fill_read t (addr lsr page_bits);
    Sparse_mem.read16 t.mem addr
  end
