let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  (* Fired whenever the page-number -> buffer mapping itself changes
     (clear/restore/bulk load), i.e. whenever a raw page pointer handed
     out earlier may no longer be the backing store.  The bus hangs its
     TLB flush here so every structural mutation invalidates cached
     page pointers without the mutator knowing a TLB exists. *)
  mutable on_change : unit -> unit;
}

let create () = { pages = Hashtbl.create 64; on_change = (fun () -> ()) }

let set_change_hook m f = m.on_change <- f

let find_page m key = Hashtbl.find_opt m.pages key

let get_page m key =
  match Hashtbl.find_opt m.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.pages key p;
      p

let page_for m addr = get_page m (addr lsr page_bits)

let read8 m addr =
  let addr = addr land 0xFFFF_FFFF in
  match Hashtbl.find_opt m.pages (addr lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.unsafe_get p (addr land page_mask))

let write8 m addr v =
  let addr = addr land 0xFFFF_FFFF in
  let p = page_for m addr in
  Bytes.unsafe_set p (addr land page_mask) (Char.chr (v land 0xFF))

(* Halfword/word accesses are frequent and nearly always fall within one
   page; the fast path reads directly from the page buffer. *)

let read16 m addr =
  let addr = addr land 0xFFFF_FFFF in
  let off = addr land page_mask in
  if off <= page_size - 2 then
    match Hashtbl.find_opt m.pages (addr lsr page_bits) with
    | None -> 0
    | Some p -> Char.code (Bytes.unsafe_get p off)
                lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
  else read8 m addr lor (read8 m (addr + 1) lsl 8)

let write16 m addr v =
  let addr = addr land 0xFFFF_FFFF in
  let off = addr land page_mask in
  if off <= page_size - 2 then begin
    let p = page_for m addr in
    Bytes.unsafe_set p off (Char.chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.chr ((v lsr 8) land 0xFF))
  end
  else begin
    write8 m addr v;
    write8 m (addr + 1) (v lsr 8)
  end

let read32 m addr =
  let addr = addr land 0xFFFF_FFFF in
  let off = addr land page_mask in
  if off <= page_size - 4 then
    match Hashtbl.find_opt m.pages (addr lsr page_bits) with
    | None -> 0
    | Some p ->
        Char.code (Bytes.unsafe_get p off)
        lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
        lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
        lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
  else read16 m addr lor (read16 m (addr + 2) lsl 16)

let write32 m addr v =
  let addr = addr land 0xFFFF_FFFF in
  let off = addr land page_mask in
  if off <= page_size - 4 then begin
    let p = page_for m addr in
    Bytes.unsafe_set p off (Char.chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set p (off + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set p (off + 3) (Char.chr ((v lsr 24) land 0xFF))
  end
  else begin
    write16 m addr v;
    write16 m (addr + 2) (v lsr 16)
  end

let load_bytes m addr s =
  String.iteri (fun i c -> write8 m (addr + i) (Char.code c)) s;
  (* byte writes keep existing buffers, but a bulk load is a natural
     world-changed boundary (new image, new pages) — re-fill lazily *)
  m.on_change ()

let dump_bytes m addr len =
  String.init len (fun i -> Char.chr (read8 m (addr + i)))

let clear m =
  Hashtbl.reset m.pages;
  m.on_change ()

let copy m =
  let pages = Hashtbl.create (Hashtbl.length m.pages) in
  Hashtbl.iter (fun k p -> Hashtbl.replace pages k (Bytes.copy p)) m.pages;
  (* the copy is detached: nobody holds page pointers into it yet *)
  { pages; on_change = (fun () -> ()) }

type snapshot = (int, Bytes.t) Hashtbl.t

let snapshot m =
  let s = Hashtbl.create (max 16 (Hashtbl.length m.pages)) in
  Hashtbl.iter (fun k p -> Hashtbl.replace s k (Bytes.copy p)) m.pages;
  s

let restore m s =
  (* Drop pages born after the snapshot, then blit the saved contents
     into the surviving page buffers (reuse avoids reallocation when the
     same snapshot is restored many times, as fault campaigns do). *)
  let stale =
    Hashtbl.fold
      (fun k _ acc -> if Hashtbl.mem s k then acc else k :: acc)
      m.pages []
  in
  List.iter (Hashtbl.remove m.pages) stale;
  Hashtbl.iter
    (fun k p ->
      match Hashtbl.find_opt m.pages k with
      | Some dst -> Bytes.blit p 0 dst 0 page_size
      | None -> Hashtbl.replace m.pages k (Bytes.copy p))
    s;
  m.on_change ()

let digest m =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) m.pages [] in
  let keys = List.sort compare keys in
  let b = Buffer.create (24 * (List.length keys + 1)) in
  List.iter
    (fun k ->
      Buffer.add_string b (string_of_int k);
      Buffer.add_char b ':';
      Buffer.add_string b (Digest.bytes (Hashtbl.find m.pages k)))
    keys;
  Digest.string (Buffer.contents b)

let touched_pages m = Hashtbl.length m.pages

let iter_touched m f = Hashtbl.iter (fun k _ -> f (k lsl page_bits)) m.pages
