(** The RISC-V instruction AST.

    Instructions are grouped by encoding format rather than one
    constructor per mnemonic, so the executor, encoder, and decoders
    share per-format logic.  Covered ISA modules: RV32I, M, Zicsr,
    a single-precision F subset, and the ten-plus bit-manipulation
    instructions (BMI, Zbb-compatible encodings) from the ecosystem's
    PATMOS 2019 paper.  The C extension is handled by {!Compressed},
    which expands to this AST. *)

type reg = Reg.t

(** Register-register ALU operations (R-type). *)
type op_r =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU
  | ANDN | ORN | XNOR | ROL | ROR
  | MIN | MAX | MINU | MAXU
  | BSET | BCLR | BINV | BEXT

(** Register-immediate ALU operations (I-type). *)
type op_i = ADDI | SLTI | SLTIU | XORI | ORI | ANDI

(** Immediate shifts (I-type, specialized immediate field). *)
type op_shift = SLLI | SRLI | SRAI | RORI | BSETI | BCLRI | BINVI | BEXTI

type op_load = LB | LH | LW | LBU | LHU
type op_store = SB | SH | SW
type op_branch = BEQ | BNE | BLT | BGE | BLTU | BGEU

(** Single-source BMI operations (unary R-type with encoded rs2). *)
type op_unary = CLZ | CTZ | CPOP | SEXT_B | SEXT_H | ZEXT_H | REV8 | ORC_B

type op_csr = CSRRW | CSRRS | CSRRC | CSRRWI | CSRRSI | CSRRCI

(** F-extension register-register operations. *)
type op_fp = FADD | FSUB | FMUL | FDIV | FMIN | FMAX | FSGNJ | FSGNJN | FSGNJX

type op_fp_cmp = FEQ | FLT | FLE

(** A-extension read-modify-write operations. *)
type op_amo =
  | AMOSWAP | AMOADD | AMOXOR | AMOAND | AMOOR
  | AMOMIN | AMOMAX | AMOMINU | AMOMAXU

type t =
  | Lui of reg * int  (** [Lui (rd, imm20)]: rd <- imm20 << 12; [0 <= imm20 < 2{^20}] *)
  | Auipc of reg * int  (** [Auipc (rd, imm20)]: rd <- pc + (imm20 << 12) *)
  | Jal of reg * int  (** byte offset, signed, even, |off| < 2{^20} *)
  | Jalr of reg * reg * int  (** [Jalr (rd, rs1, imm12)] *)
  | Branch of op_branch * reg * reg * int  (** byte offset, signed, even *)
  | Load of op_load * reg * reg * int  (** [Load (op, rd, base, imm12)] *)
  | Store of op_store * reg * reg * int  (** [Store (op, src, base, imm12)] *)
  | Op_imm of op_i * reg * reg * int  (** [Op_imm (op, rd, rs1, imm12)] *)
  | Shift_imm of op_shift * reg * reg * int  (** shamt in [0, 31] *)
  | Op of op_r * reg * reg * reg  (** [Op (op, rd, rs1, rs2)] *)
  | Unary of op_unary * reg * reg  (** [Unary (op, rd, rs1)] *)
  | Fence
  | Fence_i
  | Ecall
  | Ebreak
  | Mret
  | Wfi
  | Csr of op_csr * reg * Csr.t * int
      (** [Csr (op, rd, csr, src)]: [src] is rs1 for register forms and
          the 5-bit zimm for immediate forms. *)
  | Flw of reg * reg * int  (** [Flw (frd, base, imm12)] *)
  | Fsw of reg * reg * int  (** [Fsw (fsrc, base, imm12)] *)
  | Fp_op of op_fp * reg * reg * reg  (** [Fp_op (op, frd, frs1, frs2)] *)
  | Fp_cmp of op_fp_cmp * reg * reg * reg  (** [Fp_cmp (op, rd, frs1, frs2)] *)
  | Fsqrt of reg * reg  (** [Fsqrt (frd, frs1)] *)
  | Fcvt_w_s of reg * reg * bool  (** [Fcvt_w_s (rd, frs1, unsigned)] *)
  | Fcvt_s_w of reg * reg * bool  (** [Fcvt_s_w (frd, rs1, unsigned)] *)
  | Fmv_x_w of reg * reg  (** [Fmv_x_w (rd, frs1)] *)
  | Fmv_w_x of reg * reg  (** [Fmv_w_x (frd, rs1)] *)
  | Lr of reg * reg  (** [Lr (rd, rs1)]: load-reserved word *)
  | Sc of reg * reg * reg  (** [Sc (rd, src, rs1)]: store-conditional *)
  | Amo of op_amo * reg * reg * reg  (** [Amo (op, rd, src, rs1)] *)

val equal : t -> t -> bool

val mnemonic : t -> string
(** Canonical assembler mnemonic, e.g. ["addi"], ["fcvt.w.s"]. *)

val pp : Format.formatter -> t -> unit
(** Disassembly-style rendering with ABI register names. *)

val to_string : t -> string

val is_branch : t -> bool
(** Conditional branches only. *)

val is_jump : t -> bool
(** [Jal] and [Jalr]. *)

val is_control_flow : t -> bool
(** Branches, jumps, [Ecall], [Ebreak], and [Mret] — anything that ends a
    basic block. *)

val is_memory_access : t -> bool

val sources : t -> reg list
(** GPR indices read by the instruction (excluding FPRs). *)

val destination : t -> reg option
(** GPR written, if any (excluding FPRs; [x0] still reported). *)

val fp_sources : t -> reg list
(** FPR indices read. *)

val fp_destination : t -> reg option
(** FPR written, if any. *)

val source_mask : t -> int
(** Register-read set as a bitmask: GPR [r] at bit [r], FPR [f] at bit
    [32 + f].  Agrees with {!sources} / {!fp_sources} (including [x0]),
    but allocation-free — built for the emulator's load-use hazard
    check. *)

val load_dest_mask : t -> int
(** The destination of a load in {!source_mask} encoding ([Load] sets a
    GPR bit, [Flw] an FPR bit), 0 for every other instruction.  A
    load-use hazard exists iff
    [load_dest_mask prev land source_mask cur <> 0]. *)
