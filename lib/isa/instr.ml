type reg = Reg.t

type op_r =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU
  | ANDN | ORN | XNOR | ROL | ROR
  | MIN | MAX | MINU | MAXU
  | BSET | BCLR | BINV | BEXT

type op_i = ADDI | SLTI | SLTIU | XORI | ORI | ANDI
type op_shift = SLLI | SRLI | SRAI | RORI | BSETI | BCLRI | BINVI | BEXTI
type op_load = LB | LH | LW | LBU | LHU
type op_store = SB | SH | SW
type op_branch = BEQ | BNE | BLT | BGE | BLTU | BGEU
type op_unary = CLZ | CTZ | CPOP | SEXT_B | SEXT_H | ZEXT_H | REV8 | ORC_B
type op_csr = CSRRW | CSRRS | CSRRC | CSRRWI | CSRRSI | CSRRCI
type op_fp = FADD | FSUB | FMUL | FDIV | FMIN | FMAX | FSGNJ | FSGNJN | FSGNJX
type op_fp_cmp = FEQ | FLT | FLE

type op_amo =
  | AMOSWAP | AMOADD | AMOXOR | AMOAND | AMOOR
  | AMOMIN | AMOMAX | AMOMINU | AMOMAXU

type t =
  | Lui of reg * int
  | Auipc of reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Branch of op_branch * reg * reg * int
  | Load of op_load * reg * reg * int
  | Store of op_store * reg * reg * int
  | Op_imm of op_i * reg * reg * int
  | Shift_imm of op_shift * reg * reg * int
  | Op of op_r * reg * reg * reg
  | Unary of op_unary * reg * reg
  | Fence
  | Fence_i
  | Ecall
  | Ebreak
  | Mret
  | Wfi
  | Csr of op_csr * reg * Csr.t * int
  | Flw of reg * reg * int
  | Fsw of reg * reg * int
  | Fp_op of op_fp * reg * reg * reg
  | Fp_cmp of op_fp_cmp * reg * reg * reg
  | Fsqrt of reg * reg
  | Fcvt_w_s of reg * reg * bool
  | Fcvt_s_w of reg * reg * bool
  | Fmv_x_w of reg * reg
  | Fmv_w_x of reg * reg
  | Lr of reg * reg
  | Sc of reg * reg * reg
  | Amo of op_amo * reg * reg * reg

let op_amo_name = function
  | AMOSWAP -> "amoswap.w" | AMOADD -> "amoadd.w" | AMOXOR -> "amoxor.w"
  | AMOAND -> "amoand.w" | AMOOR -> "amoor.w" | AMOMIN -> "amomin.w"
  | AMOMAX -> "amomax.w" | AMOMINU -> "amominu.w" | AMOMAXU -> "amomaxu.w"

let equal (a : t) (b : t) = a = b

let op_r_name = function
  | ADD -> "add" | SUB -> "sub" | SLL -> "sll" | SLT -> "slt"
  | SLTU -> "sltu" | XOR -> "xor" | SRL -> "srl" | SRA -> "sra"
  | OR -> "or" | AND -> "and"
  | MUL -> "mul" | MULH -> "mulh" | MULHSU -> "mulhsu" | MULHU -> "mulhu"
  | DIV -> "div" | DIVU -> "divu" | REM -> "rem" | REMU -> "remu"
  | ANDN -> "andn" | ORN -> "orn" | XNOR -> "xnor"
  | ROL -> "rol" | ROR -> "ror"
  | MIN -> "min" | MAX -> "max" | MINU -> "minu" | MAXU -> "maxu"
  | BSET -> "bset" | BCLR -> "bclr" | BINV -> "binv" | BEXT -> "bext"

let op_i_name = function
  | ADDI -> "addi" | SLTI -> "slti" | SLTIU -> "sltiu"
  | XORI -> "xori" | ORI -> "ori" | ANDI -> "andi"

let op_shift_name = function
  | SLLI -> "slli" | SRLI -> "srli" | SRAI -> "srai" | RORI -> "rori"
  | BSETI -> "bseti" | BCLRI -> "bclri" | BINVI -> "binvi" | BEXTI -> "bexti"

let op_load_name = function
  | LB -> "lb" | LH -> "lh" | LW -> "lw" | LBU -> "lbu" | LHU -> "lhu"

let op_store_name = function SB -> "sb" | SH -> "sh" | SW -> "sw"

let op_branch_name = function
  | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt"
  | BGE -> "bge" | BLTU -> "bltu" | BGEU -> "bgeu"

let op_unary_name = function
  | CLZ -> "clz" | CTZ -> "ctz" | CPOP -> "cpop"
  | SEXT_B -> "sext.b" | SEXT_H -> "sext.h" | ZEXT_H -> "zext.h"
  | REV8 -> "rev8" | ORC_B -> "orc.b"

let op_csr_name = function
  | CSRRW -> "csrrw" | CSRRS -> "csrrs" | CSRRC -> "csrrc"
  | CSRRWI -> "csrrwi" | CSRRSI -> "csrrsi" | CSRRCI -> "csrrci"

let op_fp_name = function
  | FADD -> "fadd.s" | FSUB -> "fsub.s" | FMUL -> "fmul.s"
  | FDIV -> "fdiv.s" | FMIN -> "fmin.s" | FMAX -> "fmax.s"
  | FSGNJ -> "fsgnj.s" | FSGNJN -> "fsgnjn.s" | FSGNJX -> "fsgnjx.s"

let op_fp_cmp_name = function FEQ -> "feq.s" | FLT -> "flt.s" | FLE -> "fle.s"

let mnemonic = function
  | Lui _ -> "lui"
  | Auipc _ -> "auipc"
  | Jal _ -> "jal"
  | Jalr _ -> "jalr"
  | Branch (op, _, _, _) -> op_branch_name op
  | Load (op, _, _, _) -> op_load_name op
  | Store (op, _, _, _) -> op_store_name op
  | Op_imm (op, _, _, _) -> op_i_name op
  | Shift_imm (op, _, _, _) -> op_shift_name op
  | Op (op, _, _, _) -> op_r_name op
  | Unary (op, _, _) -> op_unary_name op
  | Fence -> "fence"
  | Fence_i -> "fence.i"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Mret -> "mret"
  | Wfi -> "wfi"
  | Csr (op, _, _, _) -> op_csr_name op
  | Flw _ -> "flw"
  | Fsw _ -> "fsw"
  | Fp_op (op, _, _, _) -> op_fp_name op
  | Fp_cmp (op, _, _, _) -> op_fp_cmp_name op
  | Fsqrt _ -> "fsqrt.s"
  | Fcvt_w_s (_, _, false) -> "fcvt.w.s"
  | Fcvt_w_s (_, _, true) -> "fcvt.wu.s"
  | Fcvt_s_w (_, _, false) -> "fcvt.s.w"
  | Fcvt_s_w (_, _, true) -> "fcvt.s.wu"
  | Fmv_x_w _ -> "fmv.x.w"
  | Fmv_w_x _ -> "fmv.w.x"
  | Lr _ -> "lr.w"
  | Sc _ -> "sc.w"
  | Amo (op, _, _, _) -> op_amo_name op

let pp fmt i =
  let x = Reg.abi_name and f = Reg.f_name in
  let m = mnemonic i in
  match i with
  | Lui (rd, imm) | Auipc (rd, imm) ->
      Format.fprintf fmt "%s %s, 0x%x" m (x rd) imm
  | Jal (rd, off) -> Format.fprintf fmt "%s %s, %d" m (x rd) off
  | Jalr (rd, rs1, imm) ->
      Format.fprintf fmt "%s %s, %d(%s)" m (x rd) imm (x rs1)
  | Branch (_, rs1, rs2, off) ->
      Format.fprintf fmt "%s %s, %s, %d" m (x rs1) (x rs2) off
  | Load (_, rd, base, imm) ->
      Format.fprintf fmt "%s %s, %d(%s)" m (x rd) imm (x base)
  | Store (_, src, base, imm) ->
      Format.fprintf fmt "%s %s, %d(%s)" m (x src) imm (x base)
  | Op_imm (_, rd, rs1, imm) ->
      Format.fprintf fmt "%s %s, %s, %d" m (x rd) (x rs1) imm
  | Shift_imm (_, rd, rs1, sh) ->
      Format.fprintf fmt "%s %s, %s, %d" m (x rd) (x rs1) sh
  | Op (_, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %s, %s, %s" m (x rd) (x rs1) (x rs2)
  | Unary (_, rd, rs1) -> Format.fprintf fmt "%s %s, %s" m (x rd) (x rs1)
  | Fence | Fence_i | Ecall | Ebreak | Mret | Wfi ->
      Format.pp_print_string fmt m
  | Csr (op, rd, csr, src) -> (
      match op with
      | CSRRW | CSRRS | CSRRC ->
          Format.fprintf fmt "%s %s, %s, %s" m (x rd) (Csr.name csr) (x src)
      | CSRRWI | CSRRSI | CSRRCI ->
          Format.fprintf fmt "%s %s, %s, %d" m (x rd) (Csr.name csr) src)
  | Flw (frd, base, imm) ->
      Format.fprintf fmt "%s %s, %d(%s)" m (f frd) imm (x base)
  | Fsw (fsrc, base, imm) ->
      Format.fprintf fmt "%s %s, %d(%s)" m (f fsrc) imm (x base)
  | Fp_op (_, frd, frs1, frs2) ->
      Format.fprintf fmt "%s %s, %s, %s" m (f frd) (f frs1) (f frs2)
  | Fp_cmp (_, rd, frs1, frs2) ->
      Format.fprintf fmt "%s %s, %s, %s" m (x rd) (f frs1) (f frs2)
  | Fsqrt (frd, frs1) -> Format.fprintf fmt "%s %s, %s" m (f frd) (f frs1)
  | Fcvt_w_s (rd, frs1, _) ->
      Format.fprintf fmt "%s %s, %s" m (x rd) (f frs1)
  | Fcvt_s_w (frd, rs1, _) ->
      Format.fprintf fmt "%s %s, %s" m (f frd) (x rs1)
  | Fmv_x_w (rd, frs1) -> Format.fprintf fmt "%s %s, %s" m (x rd) (f frs1)
  | Fmv_w_x (frd, rs1) -> Format.fprintf fmt "%s %s, %s" m (f frd) (x rs1)
  | Lr (rd, rs1) -> Format.fprintf fmt "%s %s, (%s)" m (x rd) (x rs1)
  | Sc (rd, src, rs1) ->
      Format.fprintf fmt "%s %s, %s, (%s)" m (x rd) (x src) (x rs1)
  | Amo (_, rd, src, rs1) ->
      Format.fprintf fmt "%s %s, %s, (%s)" m (x rd) (x src) (x rs1)

let to_string i = Format.asprintf "%a" pp i

let is_branch = function Branch _ -> true | _ -> false
let is_jump = function Jal _ | Jalr _ -> true | _ -> false

let is_control_flow = function
  | Branch _ | Jal _ | Jalr _ | Ecall | Ebreak | Mret -> true
  | _ -> false

let is_memory_access = function
  | Load _ | Store _ | Flw _ | Fsw _ | Lr _ | Sc _ | Amo _ -> true
  | _ -> false

let sources = function
  | Lui _ | Auipc _ | Jal _ | Fence | Fence_i | Ecall | Ebreak | Mret | Wfi
    -> []
  | Jalr (_, rs1, _)
  | Load (_, _, rs1, _)
  | Op_imm (_, _, rs1, _)
  | Shift_imm (_, _, rs1, _)
  | Unary (_, _, rs1)
  | Flw (_, rs1, _)
  | Fsw (_, rs1, _)
  | Fcvt_s_w (_, rs1, _)
  | Fmv_w_x (_, rs1)
  | Lr (_, rs1) -> [ rs1 ]
  | Sc (_, src, rs1) | Amo (_, _, src, rs1) -> [ src; rs1 ]
  | Branch (_, rs1, rs2, _) | Store (_, rs2, rs1, _) | Op (_, _, rs1, rs2)
    -> [ rs1; rs2 ]
  | Csr (op, _, _, src) -> (
      match op with
      | CSRRW | CSRRS | CSRRC -> [ src ]
      | CSRRWI | CSRRSI | CSRRCI -> [])
  | Fp_op _ | Fp_cmp _ | Fsqrt _ | Fcvt_w_s _ | Fmv_x_w _ -> []

let destination = function
  | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) | Jalr (rd, _, _)
  | Load (_, rd, _, _)
  | Op_imm (_, rd, _, _)
  | Shift_imm (_, rd, _, _)
  | Op (_, rd, _, _)
  | Unary (_, rd, _)
  | Csr (_, rd, _, _)
  | Fp_cmp (_, rd, _, _)
  | Fcvt_w_s (rd, _, _)
  | Fmv_x_w (rd, _)
  | Lr (rd, _)
  | Sc (rd, _, _)
  | Amo (_, rd, _, _) -> Some rd
  | Branch _ | Store _ | Fence | Fence_i | Ecall | Ebreak | Mret | Wfi
  | Flw _ | Fsw _ | Fp_op _ | Fsqrt _ | Fcvt_s_w _ | Fmv_w_x _ -> None

let fp_sources = function
  | Fsw (fsrc, _, _) -> [ fsrc ]
  | Fp_op (_, _, frs1, frs2) | Fp_cmp (_, _, frs1, frs2) -> [ frs1; frs2 ]
  | Fsqrt (_, frs1) | Fcvt_w_s (_, frs1, _) | Fmv_x_w (_, frs1) -> [ frs1 ]
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Op_imm _ | Shift_imm _ | Op _ | Unary _ | Fence | Fence_i | Ecall
  | Ebreak | Mret | Wfi | Csr _ | Flw _ | Fcvt_s_w _ | Fmv_w_x _
  | Lr _ | Sc _ | Amo _ -> []

let fp_destination = function
  | Flw (frd, _, _)
  | Fp_op (_, frd, _, _)
  | Fsqrt (frd, _)
  | Fcvt_s_w (frd, _, _)
  | Fmv_w_x (frd, _) -> Some frd
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Op_imm _ | Shift_imm _ | Op _ | Unary _ | Fence | Fence_i | Ecall
  | Ebreak | Mret | Wfi | Csr _ | Fsw _ | Fp_cmp _ | Fcvt_w_s _
  | Fmv_x_w _ | Lr _ | Sc _ | Amo _ -> None

(* Source-register bitmasks for hazard detection: GPR sources occupy
   bits 0..31, FPR sources bits 32..63, so one [land] against the
   previous load's destination mask replaces two [List.mem] scans over
   freshly allocated [sources]/[fp_sources] lists on the hot path. *)

let gpr_bit r = 1 lsl r
let fpr_bit r = 1 lsl (32 + r)

let source_mask = function
  | Lui _ | Auipc _ | Jal _ | Fence | Fence_i | Ecall | Ebreak | Mret | Wfi
    -> 0
  | Jalr (_, rs1, _)
  | Load (_, _, rs1, _)
  | Op_imm (_, _, rs1, _)
  | Shift_imm (_, _, rs1, _)
  | Unary (_, _, rs1)
  | Fcvt_s_w (_, rs1, _)
  | Fmv_w_x (_, rs1)
  | Lr (_, rs1) -> gpr_bit rs1
  | Flw (_, rs1, _) -> gpr_bit rs1
  | Fsw (fsrc, rs1, _) -> gpr_bit rs1 lor fpr_bit fsrc
  | Sc (_, src, rs1) | Amo (_, _, src, rs1) -> gpr_bit src lor gpr_bit rs1
  | Branch (_, rs1, rs2, _) | Store (_, rs2, rs1, _) | Op (_, _, rs1, rs2)
    -> gpr_bit rs1 lor gpr_bit rs2
  | Csr (op, _, _, src) -> (
      match op with
      | CSRRW | CSRRS | CSRRC -> gpr_bit src
      | CSRRWI | CSRRSI | CSRRCI -> 0)
  | Fp_op (_, _, frs1, frs2) | Fp_cmp (_, _, frs1, frs2) ->
      fpr_bit frs1 lor fpr_bit frs2
  | Fsqrt (_, frs1) | Fcvt_w_s (_, frs1, _) | Fmv_x_w (_, frs1) ->
      fpr_bit frs1

let load_dest_mask = function
  | Load (_, rd, _, _) -> gpr_bit rd
  | Flw (frd, _, _) -> fpr_bit frd
  | _ -> 0
