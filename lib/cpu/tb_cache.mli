(** Translation-block cache — the QEMU TCG analogue.

    Fetch-and-decode is the dominant cost of a switch interpreter; this
    cache decodes a straight-line run of instructions (a translation
    block) once and replays it on subsequent visits.  Blocks end at
    control-flow instructions, at {!max_block_len}, or just before an
    undecodable word.

    Two accelerations sit on top of the decoded arrays:

    - {b Lowering}: the machine compiles a block's instructions into an
      array of closures ({!uop}) with dispatch, timing, and hazard
      metadata resolved at translate time (see [Lower]); the compiled
      form is cached on the entry.
    - {b Chaining}: each entry carries up to two direct links to
      successor entries, patched on first successor lookup ({!next}),
      so straight-line and loop code bypasses the hashtable.

    Stores into cached code invalidate at page granularity: only blocks
    overlapping the written word die, and every chain link pointing at
    a dead block is severed.  [fence.i] and {!flush} invalidate
    everything.  Ablated in experiments E9 and E13. *)

type word = S4e_bits.Bits.word

(** One lowered micro-op: the architectural step as a closure returning
    its cycle charge, with the hazard source/destination bitmasks and
    the block-control flags it needs hoisted next to it.  Built by
    [Lower.lower_entry]. *)
type uop = {
  u_pc : word;
  u_size : int;
  u_src_mask : int;
  u_load_dest_mask : int;
  u_wfi : bool;
  u_fence_i : bool;
  u_exec : unit -> int;
}

type attachment = ..
(** Open slot for a higher layer (the superblock trace engine) to hang
    per-entry data off the cache without a dependency cycle.  The
    dispatcher reads it with one tag match per block. *)

type attachment += No_attachment

type entry = {
  block_pc : word;
  instrs : (word * int * S4e_isa.Instr.t) array;
      (** (pc, size-in-bytes, instruction) triples *)
  total_size : int;  (** bytes covered *)
  mutable lowered : uop array option;
      (** lazily compiled µop form (hook-free fast path) *)
  mutable dead : bool;  (** invalidated; never executed or linked again *)
  mutable link_a : entry option;
  mutable link_a_pc : word;
  mutable link_b : entry option;
  mutable link_b_pc : word;
  mutable link_a_hits : int;  (** traversals of link a ({!next} chain hits) *)
  mutable link_b_hits : int;  (** traversals of link b *)
  mutable incoming : entry list;
  mutable exec_count : int;
      (** dispatches of this block; the superblock promotion driver's
          heat counter *)
  mutable attach : attachment;  (** reset to {!No_attachment} on kill *)
}

type t

val max_block_len : int

val create :
  decode32:(word -> S4e_isa.Instr.t option) ->
  decode16:(int -> S4e_isa.Instr.t option) option ->
  fetch32:(word -> word) ->
  fetch16:(word -> int) ->
  unit ->
  t
(** [decode16 = None] disables the compressed instruction set. *)

val lookup : t -> word -> entry
(** [lookup t pc] returns the cached block at [pc], translating it on a
    miss.  An entry with an empty [instrs] array means the very first
    word at [pc] does not decode (the machine raises an illegal
    instruction trap). *)

val next : t -> entry option -> word -> entry
(** [next t prev pc] is [lookup t pc] accelerated by block chaining:
    if [prev] (the block just executed) already links to [pc] the
    hashtable is bypassed; otherwise the link is patched after the
    lookup.  Passing [None] — or a [prev] invalidated mid-execution —
    degrades to a plain lookup. *)

val notify_store : t -> word -> unit
(** Invalidate the blocks overlapping the (at most 4-byte) store at
    [addr], severing chain links into them.  Blocks elsewhere stay
    cached. *)

val notify_range : t -> word -> int -> unit
(** [notify_range t addr len] — {!notify_store} for an arbitrary-length
    written range (DMA bursts): invalidates exactly the blocks
    overlapping [\[addr, addr+len)]. *)

val flush : t -> unit

val set_invalidate_hooks :
  t -> on_kill:(entry -> unit) -> on_flush:(unit -> unit) -> unit
(** Invalidation callbacks for attached trace state.  [on_kill] fires
    once per individually killed entry, before its links and
    [attach] field are cleared (so the attachment is still readable);
    [on_flush] fires once at the start of a full {!flush}. *)

val hot_edges : ?min_hits:int -> t -> (word * word * int) list
(** Live chain edges as [(src_pc, dst_pc, traversals)], hottest first
    (ties ordered by pc for determinism).  Edges colder than
    [min_hits] (default 1) are dropped. *)

type stats = {
  st_blocks : int;  (** blocks currently cached *)
  st_hits : int;  (** hashtable lookups answered from the cache *)
  st_misses : int;  (** lookups that translated a new block *)
  st_chain_hits : int;
      (** successor lookups answered by a direct link — these bypass
          the hashtable entirely and are {e not} included in
          [st_hits] *)
  st_invalidations : int;
      (** blocks individually killed by {!notify_store} (flushes not
          counted) *)
}

val stats : t -> stats
