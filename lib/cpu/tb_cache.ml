type word = int

(* A lowered micro-op: one decoded instruction compiled (by [Lower])
   into a closure with every per-instruction decision hoisted to
   translate time.  [u_exec] performs the architectural step and
   returns the cycle charge (branch closures pick the taken /
   not-taken cost themselves); hazard stalls are added by the machine
   from the precomputed masks. *)
type uop = {
  u_pc : word;
  u_size : int;
  u_src_mask : int;  (** {!S4e_isa.Instr.source_mask} *)
  u_load_dest_mask : int;  (** {!S4e_isa.Instr.load_dest_mask} *)
  u_wfi : bool;
  u_fence_i : bool;
  u_exec : unit -> int;
}

(* Open slot for a higher layer (the superblock trace engine) to hang
   per-entry data off the cache without this module depending on it.
   An extensible variant keeps the hot-path test a single tag match. *)
type attachment = ..
type attachment += No_attachment

type entry = {
  block_pc : word;
  instrs : (word * int * S4e_isa.Instr.t) array;
  total_size : int;
  mutable lowered : uop array option;
  mutable dead : bool;
  (* QEMU-style direct block chaining: up to two successor links,
     patched on first successor lookup.  [link_*_pc] is the successor's
     entry pc (-1 when empty); [incoming] records entries whose links
     may point here so invalidation can sever them.  [link_*_hits]
     count traversals of each link so trace promotion can follow real
     edge heat rather than the global chain-hit total. *)
  mutable link_a : entry option;
  mutable link_a_pc : word;
  mutable link_b : entry option;
  mutable link_b_pc : word;
  mutable link_a_hits : int;
  mutable link_b_hits : int;
  mutable incoming : entry list;
  mutable exec_count : int;  (* dispatches; drives trace promotion *)
  mutable attach : attachment;
}

type t = {
  table : (word, entry) Hashtbl.t;
  pages : (int, entry list ref) Hashtbl.t;
      (* page index (addr lsr page_shift) -> blocks overlapping it *)
  decode32 : word -> S4e_isa.Instr.t option;
  decode16 : (int -> S4e_isa.Instr.t option) option;
  fetch32 : word -> word;
  fetch16 : word -> int;
  mutable code_lo : word;  (* inclusive range covered by cached blocks *)
  mutable code_hi : word;  (* exclusive *)
  mutable hits : int;
  mutable misses : int;
  mutable chain_hits : int;
  mutable invalidations : int;
  (* invalidation callbacks for attached trace state: [on_kill] fires
     once per individually killed entry (before its links are cut, so
     the attachment is still readable), [on_flush] once per full
     flush. *)
  mutable on_kill : entry -> unit;
  mutable on_flush : unit -> unit;
}

let max_block_len = 64

(* Invalidation granularity.  256-byte pages keep the per-store lookup
   cheap while bounding collateral invalidation to a few blocks (a
   block spans at most [4 * max_block_len] bytes = 2 pages, plus one
   for misalignment). *)
let page_shift = 8

let create ~decode32 ~decode16 ~fetch32 ~fetch16 () =
  { table = Hashtbl.create 1024; pages = Hashtbl.create 256; decode32;
    decode16; fetch32; fetch16; code_lo = max_int; code_hi = 0; hits = 0;
    misses = 0; chain_hits = 0; invalidations = 0;
    on_kill = (fun _ -> ()); on_flush = (fun () -> ()) }

let set_invalidate_hooks t ~on_kill ~on_flush =
  t.on_kill <- on_kill;
  t.on_flush <- on_flush

(* Decode one instruction at [pc]: compressed halfwords expand via
   decode16; otherwise a full word via decode32. *)
let decode_at t pc =
  let half = t.fetch16 pc in
  if half land 0x3 <> 0x3 then
    match t.decode16 with
    | Some d16 -> (
        match d16 half with Some i -> Some (2, i) | None -> None)
    | None -> None
  else
    match t.decode32 (t.fetch32 pc) with
    | Some i -> Some (4, i)
    | None -> None

let translate t pc =
  let rec go acc cur count =
    if count >= max_block_len then List.rev acc
    else
      match decode_at t cur with
      | None -> List.rev acc
      | Some (size, instr) ->
          let acc = (cur, size, instr) :: acc in
          (* fence.i ends a block so freshly written code is re-decoded *)
          if S4e_isa.Instr.is_control_flow instr
             || instr = S4e_isa.Instr.Wfi
             || instr = S4e_isa.Instr.Fence_i
          then List.rev acc
          else go acc (cur + size) (count + 1)
  in
  let instrs = Array.of_list (go [] pc 0) in
  let total_size =
    Array.fold_left (fun acc (_, size, _) -> acc + size) 0 instrs
  in
  { block_pc = pc; instrs; total_size; lowered = None; dead = false;
    link_a = None; link_a_pc = -1; link_b = None; link_b_pc = -1;
    link_a_hits = 0; link_b_hits = 0; incoming = []; exec_count = 0;
    attach = No_attachment }

(* Every entry covers at least one word, so a store over an entry that
   failed to decode (empty [instrs]) still invalidates it and the new
   code gets retranslated. *)
let span e = max e.total_size 4

let register_pages t e =
  let lo = e.block_pc lsr page_shift
  and hi = (e.block_pc + span e - 1) lsr page_shift in
  for p = lo to hi do
    match Hashtbl.find_opt t.pages p with
    | Some l -> l := e :: !l
    | None -> Hashtbl.replace t.pages p (ref [ e ])
  done

let unregister_pages t e =
  let lo = e.block_pc lsr page_shift
  and hi = (e.block_pc + span e - 1) lsr page_shift in
  for p = lo to hi do
    match Hashtbl.find_opt t.pages p with
    | Some l -> l := List.filter (fun x -> not (x == e)) !l
    | None -> ()
  done

let sever_incoming e =
  List.iter
    (fun src ->
      (match src.link_a with
      | Some x when x == e ->
          src.link_a <- None;
          src.link_a_pc <- -1
      | _ -> ());
      match src.link_b with
      | Some x when x == e ->
          src.link_b <- None;
          src.link_b_pc <- -1
      | _ -> ())
    e.incoming;
  e.incoming <- []

(* Kill one block: drop it from the table and page index, cut its
   outgoing links, and sever every chain link pointing at it so the
   dispatch loop can never reach the stale code by chaining. *)
let kill t e =
  if not e.dead then begin
    e.dead <- true;
    t.invalidations <- t.invalidations + 1;
    t.on_kill e;
    e.attach <- No_attachment;
    (match Hashtbl.find_opt t.table e.block_pc with
    | Some cur when cur == e -> Hashtbl.remove t.table e.block_pc
    | Some _ | None -> ());
    unregister_pages t e;
    e.link_a <- None;
    e.link_a_pc <- -1;
    e.link_b <- None;
    e.link_b_pc <- -1;
    sever_incoming e
  end

let lookup t pc =
  match Hashtbl.find_opt t.table pc with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      let e = translate t pc in
      Hashtbl.replace t.table pc e;
      register_pages t e;
      if pc < t.code_lo then t.code_lo <- pc;
      if pc + span e > t.code_hi then t.code_hi <- pc + span e;
      e

(* Chained successor lookup: follow [prev]'s direct links before
   touching the hashtable; patch the link on a miss.  Links are only
   followed from (and patched on) live entries, so an invalidation
   during [prev]'s execution safely degrades to a table lookup. *)
let next t prev pc =
  match prev with
  | Some p when not p.dead ->
      if p.link_a_pc = pc then begin
        match p.link_a with
        | Some e ->
            t.chain_hits <- t.chain_hits + 1;
            p.link_a_hits <- p.link_a_hits + 1;
            e
        | None -> lookup t pc
      end
      else if p.link_b_pc = pc then begin
        match p.link_b with
        | Some e ->
            t.chain_hits <- t.chain_hits + 1;
            p.link_b_hits <- p.link_b_hits + 1;
            e
        | None -> lookup t pc
      end
      else begin
        let e = lookup t pc in
        (if not e.dead then
           if p.link_a = None then begin
             p.link_a <- Some e;
             p.link_a_pc <- pc;
             p.link_a_hits <- 0;
             e.incoming <- p :: e.incoming
           end
           else begin
             (* keep slot a (typically the loop back-edge seen first),
                recycle slot b *)
             p.link_b <- Some e;
             p.link_b_pc <- pc;
             p.link_b_hits <- 0;
             e.incoming <- p :: e.incoming
           end);
        e
      end
  | Some _ | None -> lookup t pc

let flush t =
  t.on_flush ();
  Hashtbl.iter
    (fun _ e ->
      e.dead <- true;
      e.attach <- No_attachment)
    t.table;
  Hashtbl.reset t.table;
  Hashtbl.reset t.pages;
  t.code_lo <- max_int;
  t.code_hi <- 0

(* Page-granular store invalidation: only blocks overlapping the
   written word die (a store writes at most 4 bytes).  The common case
   — a store outside the cached code range — is two compares. *)
let notify_store t addr =
  if addr >= t.code_lo - 3 && addr < t.code_hi then begin
    let lo = addr lsr page_shift and hi = (addr + 3) lsr page_shift in
    for p = lo to hi do
      match Hashtbl.find_opt t.pages p with
      | Some l ->
          List.iter
            (fun e ->
              if e.block_pc < addr + 4 && addr < e.block_pc + span e then
                kill t e)
            !l
      | None -> ()
    done
  end

(* Same as [notify_store] for an arbitrary-length written range (DMA
   bursts): one pass over the overlapped pages, not one call per word. *)
let notify_range t addr len =
  if len > 0 && addr + len > t.code_lo && addr < t.code_hi then begin
    let lo = addr lsr page_shift and hi = (addr + len - 1) lsr page_shift in
    for p = lo to hi do
      match Hashtbl.find_opt t.pages p with
      | Some l ->
          List.iter
            (fun e ->
              if e.block_pc < addr + len && addr < e.block_pc + span e then
                kill t e)
            !l
      | None -> ()
    done
  end

type stats = {
  st_blocks : int;
  st_hits : int;
  st_misses : int;
  st_chain_hits : int;
  st_invalidations : int;
}

let stats t =
  { st_blocks = Hashtbl.length t.table;
    st_hits = t.hits;
    st_misses = t.misses;
    st_chain_hits = t.chain_hits;
    st_invalidations = t.invalidations }

(* Live chain edges ranked by traversal count — promotion input and
   the [--cache-stats] edge listing. *)
let hot_edges ?(min_hits = 1) t =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ e ->
      (match e.link_a with
      | Some dst when e.link_a_hits >= min_hits ->
          acc := (e.block_pc, dst.block_pc, e.link_a_hits) :: !acc
      | _ -> ());
      match e.link_b with
      | Some dst when e.link_b_hits >= min_hits ->
          acc := (e.block_pc, dst.block_pc, e.link_b_hits) :: !acc
      | _ -> ())
    t.table;
  List.sort
    (fun (sa, da, ha) (sb, db, hb) ->
      match compare hb ha with
      | 0 -> compare (sa, da) (sb, db)
      | c -> c)
    !acc
