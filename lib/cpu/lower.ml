open S4e_isa
open S4e_isa.Instr
module Bits = S4e_bits.Bits
module Bus = S4e_mem.Bus

type word = int

(* The lowering context: everything a compiled µop may touch, bound
   once per machine.  [lx_flush_time] applies the cycles batched so far
   in the current block to [state.cycle] and the CLINT; µops that can
   observe time (CSR accesses, any bus access below [lx_dev_limit],
   i.e. into device space) call it first so batched ticking is
   indistinguishable from the generic per-instruction ticking. *)
type ctx = {
  lx_state : Arch_state.t;
  lx_bus : Bus.t;
  lx_timing : Timing_model.t;
  lx_flush_time : unit -> unit;
  lx_notify_store : word -> unit;
  lx_dev_limit : word;
}

(* Width/sign dispatch for loads and stores, hoisted to translate
   time.  Shared with the superblock trace compiler so both engines
   trap and truncate identically. *)
let load_fn bus op =
  match op with
  | LB -> fun addr -> Bits.sext ~width:8 (Bus.read8 bus addr)
  | LBU -> Bus.read8 bus
  | LH ->
      fun addr ->
        if addr land 1 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
        Bits.sext ~width:16 (Bus.read16 bus addr)
  | LHU ->
      fun addr ->
        if addr land 1 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
        Bus.read16 bus addr
  | LW ->
      fun addr ->
        if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
        Bus.read32 bus addr

let store_fn bus op =
  match op with
  | SB -> Bus.write8 bus
  | SH ->
      fun addr v ->
        if addr land 1 <> 0 then raise (Trap.Exn (Trap.Misaligned_store addr));
        Bus.write16 bus addr v
  | SW ->
      fun addr v ->
        if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_store addr));
        Bus.write32 bus addr v

let lower_instr ctx ~pc ~size instr =
  let st = ctx.lx_state in
  let bus = ctx.lx_bus in
  let flush_time = ctx.lx_flush_time in
  let notify_store = ctx.lx_notify_store in
  let dev_limit = ctx.lx_dev_limit in
  let get r = Arch_state.get_reg st r in
  let set r v = Arch_state.set_reg st r v in
  let getf r = Arch_state.get_freg st r in
  let setf r v = Arch_state.set_freg st r v in
  let next = Bits.mask32 (pc + size) in
  let cn, ct = Timing_model.costs ctx.lx_timing instr in
  (* [exec] must mirror [Exec.execute] arch-effect for arch-effect —
     the differential property tests in test_lowered.ml enforce the
     equivalence on random programs. *)
  let exec : unit -> int =
    match instr with
    | Lui (rd, imm20) ->
        let v = imm20 lsl 12 in
        fun () ->
          set rd v;
          st.pc <- next;
          cn
    | Auipc (rd, imm20) ->
        let v = Bits.add pc (imm20 lsl 12) in
        fun () ->
          set rd v;
          st.pc <- next;
          cn
    | Jal (rd, off) ->
        let target = Bits.add pc (Bits.of_signed off) in
        fun () ->
          set rd next;
          st.pc <- target;
          cn
    | Jalr (rd, rs1, imm) ->
        let b = Bits.of_signed imm in
        fun () ->
          let target = Bits.add (get rs1) b land lnot 1 in
          set rd next;
          st.pc <- target;
          cn
    | Branch (op, rs1, rs2, off) ->
        let cond = Exec.branch_fn op in
        let target = Bits.add pc (Bits.of_signed off) in
        fun () ->
          if cond (get rs1) (get rs2) then begin
            st.pc <- target;
            ct
          end
          else begin
            st.pc <- next;
            cn
          end
    | Load (op, rd, base, imm) ->
        let b = Bits.of_signed imm in
        let load = load_fn bus op in
        fun () ->
          let addr = Bits.add (get base) b in
          if addr < dev_limit then flush_time ();
          set rd (load addr);
          st.pc <- next;
          cn
    | Store (op, src, base, imm) ->
        let b = Bits.of_signed imm in
        let write = store_fn bus op in
        fun () ->
          let addr = Bits.add (get base) b in
          if addr < dev_limit then flush_time ();
          write addr (get src);
          notify_store addr;
          st.pc <- next;
          cn
    | Op_imm (op, rd, rs1, imm) ->
        let f = Exec.imm_fn op in
        let b = Bits.of_signed imm in
        fun () ->
          set rd (f (get rs1) b);
          st.pc <- next;
          cn
    | Shift_imm (op, rd, rs1, sh) ->
        let f = Exec.shift_fn op in
        fun () ->
          set rd (f (get rs1) sh);
          st.pc <- next;
          cn
    | Op (op, rd, rs1, rs2) ->
        let f = Exec.alu_fn op in
        fun () ->
          set rd (f (get rs1) (get rs2));
          st.pc <- next;
          cn
    | Unary (op, rd, rs1) ->
        let f = Exec.unary_fn op in
        fun () ->
          set rd (f (get rs1));
          st.pc <- next;
          cn
    | Fence | Fence_i | Wfi ->
        fun () ->
          st.pc <- next;
          cn
    | Ecall -> fun () -> raise (Trap.Exn Trap.Ecall_from_m)
    | Ebreak -> fun () -> raise (Trap.Exn Trap.Breakpoint)
    | Mret ->
        fun () ->
          Arch_state.set_mie_bit st (Arch_state.mpie_bit st);
          Arch_state.set_mpie_bit st true;
          st.pc <- st.mepc;
          cn
    | Csr (op, rd, csr, src) ->
        let ill = Trap.Exn (Trap.Illegal_instruction (Encode.encode instr)) in
        fun () ->
          flush_time ();
          let old =
            match Arch_state.csr_read st csr with
            | Some v -> v
            | None -> raise ill
          in
          let write v =
            match Arch_state.csr_write st csr v with
            | Some () -> ()
            | None -> raise ill
          in
          (match op with
          | CSRRW -> write (get src)
          | CSRRWI -> write src
          | CSRRS -> if src <> 0 then write (old lor get src)
          | CSRRSI -> if src <> 0 then write (old lor src)
          | CSRRC ->
              if src <> 0 then write (old land lnot (get src) land 0xFFFF_FFFF)
          | CSRRCI -> if src <> 0 then write (old land lnot src land 0xFFFF_FFFF));
          set rd old;
          st.pc <- next;
          cn
    | Flw (frd, base, imm) ->
        let b = Bits.of_signed imm in
        fun () ->
          let addr = Bits.add (get base) b in
          if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
          if addr < dev_limit then flush_time ();
          setf frd (Bus.read32 bus addr);
          st.pc <- next;
          cn
    | Fsw (fsrc, base, imm) ->
        let b = Bits.of_signed imm in
        fun () ->
          let addr = Bits.add (get base) b in
          if addr land 3 <> 0 then
            raise (Trap.Exn (Trap.Misaligned_store addr));
          if addr < dev_limit then flush_time ();
          Bus.write32 bus addr (getf fsrc);
          notify_store addr;
          st.pc <- next;
          cn
    | Fp_op (op, frd, frs1, frs2) ->
        fun () ->
          setf frd (Exec.fp_op st op (getf frs1) (getf frs2));
          st.pc <- next;
          cn
    | Fp_cmp (op, rd, frs1, frs2) ->
        fun () ->
          set rd (Exec.fp_cmp st op (getf frs1) (getf frs2));
          st.pc <- next;
          cn
    | Fsqrt (frd, frs1) ->
        fun () ->
          setf frd (Exec.fsqrt_bits st (getf frs1));
          st.pc <- next;
          cn
    | Fcvt_w_s (rd, frs1, unsigned) ->
        fun () ->
          set rd (Exec.fcvt_w_s st ~unsigned (getf frs1));
          st.pc <- next;
          cn
    | Fcvt_s_w (frd, rs1, unsigned) ->
        fun () ->
          setf frd (Exec.fcvt_s_w ~unsigned (get rs1));
          st.pc <- next;
          cn
    | Fmv_x_w (rd, frs1) ->
        fun () ->
          set rd (getf frs1);
          st.pc <- next;
          cn
    | Fmv_w_x (frd, rs1) ->
        fun () ->
          setf frd (get rs1);
          st.pc <- next;
          cn
    | Lr (rd, rs1) ->
        fun () ->
          let addr = get rs1 in
          if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
          if addr < dev_limit then flush_time ();
          let v = Bus.read32 bus addr in
          st.reservation <- Some addr;
          set rd v;
          st.pc <- next;
          cn
    | Sc (rd, src, rs1) ->
        fun () ->
          let addr = get rs1 in
          if addr land 3 <> 0 then
            raise (Trap.Exn (Trap.Misaligned_store addr));
          (match st.reservation with
          | Some r when r = addr ->
              if addr < dev_limit then flush_time ();
              Bus.write32 bus addr (get src);
              notify_store addr;
              set rd 0
          | Some _ | None -> set rd 1);
          st.reservation <- None;
          st.pc <- next;
          cn
    | Amo (op, rd, src, rs1) ->
        let f = Exec.amo_fn op in
        fun () ->
          let addr = get rs1 in
          if addr land 3 <> 0 then
            raise (Trap.Exn (Trap.Misaligned_store addr));
          if addr < dev_limit then flush_time ();
          let old = Bus.read32 bus addr in
          Bus.write32 bus addr (f old (get src));
          notify_store addr;
          set rd old;
          st.pc <- next;
          cn
  in
  { Tb_cache.u_pc = pc; u_size = size;
    u_src_mask = Instr.source_mask instr;
    u_load_dest_mask = Instr.load_dest_mask instr;
    u_wfi = (instr = Wfi); u_fence_i = (instr = Fence_i); u_exec = exec }

let lower_entry ctx (e : Tb_cache.entry) =
  Array.map
    (fun (pc, size, instr) -> lower_instr ctx ~pc ~size instr)
    e.Tb_cache.instrs
