(** Profile-guided superblock traces — cross-block µop optimization on
    top of the lowered engine.

    The chained block engine already skips fetch, decode, dispatch, and
    most timing work, but it still re-enters the dispatch loop at every
    block boundary: interrupt poll, chain lookup, per-µop closure calls,
    per-block cycle/retire bookkeeping.  This module recompiles {e hot
    chained paths} — sequences of blocks joined by frequently traversed
    chain links — into single guarded closures ("traces") that:

    - keep the program counter as a translate-time constant along the
      expected path (no [pc] writes until a side exit or completion);
    - fold [lui]/[auipc]+[addi] and [lui]/[auipc]+load/store pairs into
      constant stores / constant-address accesses;
    - fuse an ALU op with a consuming branch terminal, forwarding the
      computed value through an OCaml local;
    - batch cycle charges into static per-segment constants, synced
      only where time is observable (device-space accesses, block
      boundaries, exits); instret/fuel are credited with a single
      static constant per exit.

    {b Exactness.}  Every side exit (guard failure, deliverable
    interrupt, invalidation, trap) re-establishes the exact
    architectural state — pc, cycle, instret, mip — the per-block
    engine would have at the same point, so the state digest is
    identical whatever mix of engines executed.  Enforced by the
    differential tests in test_lowered.ml.

    {b Promotion.}  Driven by the dispatcher: every
    {!promote_period}-th execution of an unattached block, the driver
    follows the hotter of its two chain links (while hits ≥
    min_edge_hits) to build a path of 2..max_blocks blocks /
    ≤ max_instrs instructions of promotable (integer, non-CSR,
    non-atomic) instructions, and compiles it.  Revisiting a block
    extends the path through it again (bounded loop unrolling).

    {b Invalidation.}  Traces die with any constituent block: the cache
    invalidation hooks ({!Tb_cache.set_invalidate_hooks}) mark the
    trace dead and detach surviving members.  A store issued from
    {e inside} a running trace that kills the trace itself is caught at
    the next block boundary via the dead flag. *)

type word = int

(** Trace execution context, bound once per machine — the trace
    analogue of {!Lower.ctx}.  Callbacks keep this module independent
    of [Machine]; see the implementation for the exact contract each
    one must honour. *)
type ctx = {
  sx_state : Arch_state.t;
  sx_bus : S4e_mem.Bus.t;
  sx_timing : Timing_model.t;
  sx_pending : int ref;  (** the machine's batched-cycle counter *)
  sx_exit_dirty : bool ref;  (** exit-request latch (hook/CLI stop) *)
  sx_flush : unit -> unit;
      (** apply [sx_pending] to cycle + CLINT (cycles only; retires are
          credited separately with per-exit constants) *)
  sx_retire : int -> unit;  (** credit n retired instructions + fuel *)
  sx_exit_code : unit -> int option;  (** read the exit latch *)
  sx_raise_exited : int -> unit;  (** raise the machine's stop exn *)
  sx_trap : Trap.exception_cause -> word -> int -> unit;
      (** [sx_trap cause pc pred]: full trap entry for a trace µop at
          [pc] with [pred] already-retired predecessors — flush, credit,
          enter exception (raising on fatal), charge system cycles,
          credit the trapping instruction, re-check the exit latch.
          The trace side-exits after it returns. *)
  sx_irq : unit -> bool;
      (** recompute + store mip from live CLINT state and report
          whether a deliverable interrupt is pending — the dispatch
          loop's between-block check *)
  sx_notify_store : word -> unit;  (** translation-cache invalidation *)
  sx_get_llm : unit -> int;  (** machine's live load-use hazard mask *)
  sx_set_llm : int -> unit;
  sx_dev_limit : word;  (** bus addresses below this may observe time *)
}

type trace = {
  tr_head_pc : word;
  tr_blocks : int;  (** constituent blocks (revisits counted) *)
  tr_instrs : int;  (** guest instructions retired on full completion *)
  tr_dead : bool ref;
  tr_body : unit -> unit;
  tr_members : Tb_cache.entry list;  (** distinct constituent entries *)
}

type Tb_cache.attachment +=
  | Trace_head of trace  (** dispatching this block may run the trace *)
  | Trace_member of trace  (** interior block; blocks re-promotion *)

type t

val create :
  ?promote_period:int ->
  ?min_edge_hits:int ->
  ?max_blocks:int ->
  ?max_instrs:int ->
  ctx ->
  Tb_cache.t ->
  t
(** Installs the cache invalidation hooks.  [promote_period] (default
    64) must be a power of two; [min_edge_hits] defaults to 16,
    [max_blocks] to 16, [max_instrs] to 96. *)

val promote_period : t -> int

val maybe_promote : t -> Tb_cache.entry -> unit
(** Attempt promotion of an unattached block (no-op on attached ones).
    The dispatcher calls this every {!promote_period}-th execution of a
    block. *)

val exec : t -> trace -> unit
(** Run a trace body.  The caller must have checked [tr_dead], the
    fuel budget (≥ [tr_instrs]), and the exit latch. *)

type stats = {
  sb_live : int;  (** traces currently runnable *)
  sb_promotions : int;
  sb_invalidations : int;
  sb_execs : int;  (** trace dispatches (completions + bails) *)
  sb_completions : int;  (** runs that reached the final terminal *)
  sb_instrs : int;  (** guest instructions retired inside traces *)
  sb_bail_guard : int;  (** side exits: edge guard failed *)
  sb_bail_irq : int;  (** side exits: deliverable interrupt *)
  sb_bail_dead : int;  (** side exits: trace invalidated mid-run *)
  sb_bail_trap : int;  (** side exits: µop trapped *)
}

val stats : t -> stats
