type geometry = {
  g_line_bytes : int;
  g_sets : int;
  g_ways : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let geometry ?(ways = 2) ~line_bytes ~total_bytes () =
  if not (is_pow2 line_bytes) || line_bytes < 4 then
    invalid_arg "Cache_model.geometry: line size must be a power of two >= 4";
  if not (is_pow2 ways) then
    invalid_arg "Cache_model.geometry: associativity must be a power of two";
  let sets = total_bytes / (line_bytes * ways) in
  if sets = 0 || not (is_pow2 sets) then
    invalid_arg
      "Cache_model.geometry: total size must be a power-of-two multiple of \
       line size x ways";
  { g_line_bytes = line_bytes; g_sets = sets; g_ways = ways }

let size_bytes g = g.g_line_bytes * g.g_sets * g.g_ways

type stats = {
  st_accesses : int;
  st_hits : int;
  st_misses : int;
}

let hit_rate s =
  if s.st_accesses = 0 then 1.0
  else float_of_int s.st_hits /. float_of_int s.st_accesses

type t = {
  geo : geometry;
  tags : int array;  (* sets x ways; -1 = invalid *)
  lru : int array;  (* per (set, way): last-use stamp *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let create geo =
  { geo;
    tags = Array.make (geo.g_sets * geo.g_ways) (-1);
    lru = Array.make (geo.g_sets * geo.g_ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0 }

let access t addr =
  let line = addr / t.geo.g_line_bytes in
  let set = line land (t.geo.g_sets - 1) in
  (* the full line number serves as the tag (set match is implied) *)
  let tag = line in
  let base = set * t.geo.g_ways in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let rec find w =
    if w >= t.geo.g_ways then None
    else if t.tags.(base + w) = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.hits <- t.hits + 1;
      t.lru.(base + w) <- t.clock;
      true
  | None ->
      (* evict the least recently used way *)
      let victim = ref 0 in
      for w = 1 to t.geo.g_ways - 1 do
        if t.lru.(base + w) < t.lru.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- tag;
      t.lru.(base + !victim) <- t.clock;
      false

let stats t =
  { st_accesses = t.accesses; st_hits = t.hits;
    st_misses = t.accesses - t.hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

type attached = {
  ic : t;
  dc : t;
  insn_id : Hooks.id;
  mem_id : Hooks.id;
}

let default_geometry =
  { g_line_bytes = 32; g_sets = 64; g_ways = 2 }  (* 4 KiB *)

let attach ?(icache = default_geometry) ?(dcache = default_geometry)
    (m : Machine.t) =
  let ic = create icache and dc = create dcache in
  let insn_id =
    Hooks.on_insn m.Machine.hooks (fun pc _ -> ignore (access ic pc))
  in
  let mem_id =
    Hooks.on_mem m.Machine.hooks (fun ev ->
        ignore (access dc ev.Hooks.mem_addr))
  in
  { ic; dc; insn_id; mem_id }

let detach (m : Machine.t) a =
  Hooks.unregister m.Machine.hooks a.insn_id;
  Hooks.unregister m.Machine.hooks a.mem_id

let icache_stats a = stats a.ic
let dcache_stats a = stats a.dc

let register_metrics ?(prefix = "cache.") a reg =
  let g name f = S4e_obs.Metrics.gauge_int reg (prefix ^ name) f in
  let each tag c =
    g (tag ^ ".accesses") (fun () -> c.accesses);
    g (tag ^ ".hits") (fun () -> c.hits);
    g (tag ^ ".misses") (fun () -> c.accesses - c.hits)
  in
  each "icache" a.ic;
  each "dcache" a.dc
