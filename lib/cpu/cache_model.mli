(** Observational cache models — another hook-API client.

    QEMU ships a cache-modeling TCG plugin; the same idea here: set-
    associative LRU instruction and data caches fed by the insn/mem
    hooks, reporting hit rates without influencing timing.  (Folding
    cache effects into the timing model would require a static cache
    analysis on the WCET side to stay sound — aiT's core feature, and
    documented future work in DESIGN.md.)

    Geometry invariants are checked at creation: line size, set count,
    and associativity must be powers of two. *)

type geometry = {
  g_line_bytes : int;  (** power of two, >= 4 *)
  g_sets : int;  (** power of two *)
  g_ways : int;  (** power of two *)
}

val geometry : ?ways:int -> line_bytes:int -> total_bytes:int -> unit -> geometry
(** Derives the set count from [total_bytes / (line_bytes * ways)];
    [ways] defaults to 2.
    @raise Invalid_argument on non-power-of-two shapes. *)

val size_bytes : geometry -> int

type stats = {
  st_accesses : int;
  st_hits : int;
  st_misses : int;
}

val hit_rate : stats -> float
(** Hits per access; 1.0 for an unused cache. *)

type t

val create : geometry -> t
(** A standalone cache (usable without a machine, e.g. in tests). *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns whether
    it hit.  LRU replacement within the set. *)

val stats : t -> stats
val reset : t -> unit

(** {1 Machine attachment} *)

type attached

val attach :
  ?icache:geometry -> ?dcache:geometry -> Machine.t -> attached
(** Subscribes an instruction cache to the insn hook and a data cache
    to the mem hook.  Defaults: 4 KiB 2-way I-cache and D-cache with
    32-byte lines. *)

val detach : Machine.t -> attached -> unit

val icache_stats : attached -> stats
val dcache_stats : attached -> stats

val register_metrics : ?prefix:string -> attached -> S4e_obs.Metrics.t -> unit
(** Gauges [<prefix>icache.accesses/hits/misses] and the [dcache]
    triple (prefix default ["cache."]); read-on-demand, no hot-path
    cost beyond the hooks the attachment already owns. *)
