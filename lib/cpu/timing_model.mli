(** Per-instruction cycle cost model.

    The model is a simple in-order single-issue pipeline abstraction:
    each instruction class has a fixed cost, taken branches pay a flush
    penalty.  The same table drives the dynamic [cycle] counter and the
    static WCET analysis, so the static bound is comparable against
    dynamic observations (experiment E4): for every instruction,
    {!worst_cost} >= the cost charged at execution. *)

type t = {
  alu : int;  (** register/immediate ALU, including BMI *)
  load : int;
  store : int;
  mul : int;
  div : int;  (** also rem *)
  branch_taken : int;
  branch_not_taken : int;
  jump : int;  (** jal, jalr *)
  csr : int;
  fence : int;
  system : int;  (** ecall, ebreak, mret, wfi *)
  fp : int;  (** fp arith except div/sqrt *)
  fdiv : int;
  fsqrt : int;
  fmove : int;  (** moves, converts, compares, fp load/store extra *)
  load_use_hazard : int;
      (** stall cycles when an instruction consumes the destination of
          the immediately preceding load; 0 disables hazard modeling *)
}

val default : t
(** Five-stage in-order core: ALU 1, load 2, mul 3, div 34, taken
    branch 3, etc. *)

val rocket_like : t
(** Alternative calibration with a longer divider and cheaper jumps,
    for sensitivity experiments. *)

val cost : t -> S4e_isa.Instr.t -> taken:bool -> int
(** Cycles charged for one execution.  [taken] matters only for
    conditional branches. *)

val worst_cost : t -> S4e_isa.Instr.t -> int
(** An upper bound of [cost] over both branch outcomes.  Hazard stalls
    are accounted separately (see {!load_use_pairs} in [Block_time] and
    the machine's dynamic tracking). *)

val without_hazards : t -> t
(** The same model with [load_use_hazard = 0] (ablations). *)

val costs : t -> S4e_isa.Instr.t -> int * int
(** [(not_taken, taken)] cost pair, equal for non-branches — evaluated
    once at translation time by the block-lowering pipeline. *)
