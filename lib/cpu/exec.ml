open S4e_isa
open S4e_isa.Instr
module Bits = S4e_bits.Bits
module Bus = S4e_mem.Bus

type word = int

(* Floating point: FPRs hold IEEE-754 single bit patterns; operations
   convert to OCaml doubles, compute, and round back to single.  For
   +, -, *, / and sqrt this double-precision detour is exactly rounded
   (2p + 2 <= 53 for p = 24), so results are bit-accurate. *)

let f32_of_bits b = Int32.float_of_bits (Bits.to_int32 b)
let bits_of_f32 f = Bits.of_int32 (Int32.bits_of_float f)
let canonical_nan = 0x7FC0_0000
let is_nan_bits b = b land 0x7F80_0000 = 0x7F80_0000 && b land 0x007F_FFFF <> 0

(* fflags bits *)
let fflag_nv = 0x10
let fflag_dz = 0x08

let set_fflag (st : Arch_state.t) bit = st.fcsr <- st.fcsr lor bit

let alu_op op a b =
  match op with
  | ADD -> Bits.add a b
  | SUB -> Bits.sub a b
  | SLL -> Bits.sll a b
  | SLT -> if Bits.lt_signed a b then 1 else 0
  | SLTU -> if Bits.lt_unsigned a b then 1 else 0
  | XOR -> Bits.logxor a b
  | SRL -> Bits.srl a b
  | SRA -> Bits.sra a b
  | OR -> Bits.logor a b
  | AND -> Bits.logand a b
  | MUL -> Bits.mul a b
  | MULH -> Bits.mulh a b
  | MULHSU -> Bits.mulhsu a b
  | MULHU -> Bits.mulhu a b
  | DIV -> Bits.div a b
  | DIVU -> Bits.divu a b
  | REM -> Bits.rem a b
  | REMU -> Bits.remu a b
  | ANDN -> Bits.andn a b
  | ORN -> Bits.orn a b
  | XNOR -> Bits.xnor a b
  | ROL -> Bits.rol a b
  | ROR -> Bits.ror a b
  | MIN -> Bits.min_signed a b
  | MAX -> Bits.max_signed a b
  | MINU -> Bits.min_unsigned a b
  | MAXU -> Bits.max_unsigned a b
  | BSET -> Bits.bset a b
  | BCLR -> Bits.bclr a b
  | BINV -> Bits.binv a b
  | BEXT -> Bits.bext a b

let imm_op op a imm =
  let b = Bits.of_signed imm in
  match op with
  | ADDI -> Bits.add a b
  | SLTI -> if Bits.lt_signed a b then 1 else 0
  | SLTIU -> if Bits.lt_unsigned a b then 1 else 0
  | XORI -> Bits.logxor a b
  | ORI -> Bits.logor a b
  | ANDI -> Bits.logand a b

let shift_op op a sh =
  match op with
  | SLLI -> Bits.sll a sh
  | SRLI -> Bits.srl a sh
  | SRAI -> Bits.sra a sh
  | RORI -> Bits.ror a sh
  | BSETI -> Bits.bset a sh
  | BCLRI -> Bits.bclr a sh
  | BINVI -> Bits.binv a sh
  | BEXTI -> Bits.bext a sh

let unary_op op a =
  match op with
  | CLZ -> Bits.clz a
  | CTZ -> Bits.ctz a
  | CPOP -> Bits.popcount a
  | SEXT_B -> Bits.sext ~width:8 a
  | SEXT_H -> Bits.sext ~width:16 a
  | ZEXT_H -> Bits.zext ~width:16 a
  | REV8 -> Bits.rev8 a
  | ORC_B -> Bits.orc_b a

let branch_cond op a b =
  match op with
  | BEQ -> a = b
  | BNE -> a <> b
  | BLT -> Bits.lt_signed a b
  | BGE -> Bits.ge_signed a b
  | BLTU -> Bits.lt_unsigned a b
  | BGEU -> Bits.ge_unsigned a b

let fp_min_max st ~is_max a_bits b_bits =
  let a_nan = is_nan_bits a_bits and b_nan = is_nan_bits b_bits in
  if a_nan && b_nan then begin
    set_fflag st fflag_nv;
    canonical_nan
  end
  else if a_nan then begin set_fflag st fflag_nv; b_bits end
  else if b_nan then begin set_fflag st fflag_nv; a_bits end
  else
    let a = f32_of_bits a_bits and b = f32_of_bits b_bits in
    (* -0.0 orders below +0.0, which Float.compare delivers. *)
    let cmp = Float.compare a b in
    if (is_max && cmp >= 0) || ((not is_max) && cmp <= 0) then a_bits
    else b_bits

let fp_op st op a_bits b_bits =
  match op with
  | FSGNJ -> (a_bits land 0x7FFF_FFFF) lor (b_bits land 0x8000_0000)
  | FSGNJN ->
      (a_bits land 0x7FFF_FFFF) lor (lnot b_bits land 0x8000_0000)
  | FSGNJX -> a_bits lxor (b_bits land 0x8000_0000)
  | FMIN -> fp_min_max st ~is_max:false a_bits b_bits
  | FMAX -> fp_min_max st ~is_max:true a_bits b_bits
  | FADD | FSUB | FMUL | FDIV ->
      if is_nan_bits a_bits || is_nan_bits b_bits then begin
        set_fflag st fflag_nv;
        canonical_nan
      end
      else
        let a = f32_of_bits a_bits and b = f32_of_bits b_bits in
        let r =
          match op with
          | FADD -> a +. b
          | FSUB -> a -. b
          | FMUL -> a *. b
          | FDIV ->
              if b = 0.0 then set_fflag st fflag_dz;
              a /. b
          | _ -> assert false
        in
        if Float.is_nan r then canonical_nan else bits_of_f32 r

let fp_cmp st op a_bits b_bits =
  if is_nan_bits a_bits || is_nan_bits b_bits then begin
    (match op with FLT | FLE -> set_fflag st fflag_nv | FEQ -> ());
    0
  end
  else
    let a = f32_of_bits a_bits and b = f32_of_bits b_bits in
    let r =
      match op with FEQ -> a = b | FLT -> a < b | FLE -> a <= b
    in
    if r then 1 else 0

let fcvt_w_s st ~unsigned bits =
  if is_nan_bits bits then begin
    set_fflag st fflag_nv;
    if unsigned then 0xFFFF_FFFF else 0x7FFF_FFFF
  end
  else
    let f = f32_of_bits bits in
    (* Conversion truncates toward zero (RTZ, the usual fcvt rm). *)
    if unsigned then
      if f <= -1.0 then begin set_fflag st fflag_nv; 0 end
      else if f >= 4294967296.0 then begin
        set_fflag st fflag_nv;
        0xFFFF_FFFF
      end
      else Bits.mask32 (int_of_float f)
    else if f <= -2147483649.0 then begin
      set_fflag st fflag_nv;
      0x8000_0000
    end
    else if f >= 2147483648.0 then begin
      set_fflag st fflag_nv;
      0x7FFF_FFFF
    end
    else Bits.of_signed (int_of_float f)

let fcvt_s_w ~unsigned v =
  let f = if unsigned then float_of_int v else float_of_int (Bits.to_signed v) in
  bits_of_f32 f

let load_value bus op addr =
  match op with
  | LB -> Bits.sext ~width:8 (Bus.read8 bus addr)
  | LBU -> Bus.read8 bus addr
  | LH ->
      if addr land 1 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
      Bits.sext ~width:16 (Bus.read16 bus addr)
  | LHU ->
      if addr land 1 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
      Bus.read16 bus addr
  | LW ->
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
      Bus.read32 bus addr

let amo_op op old v =
  match op with
  | AMOSWAP -> v
  | AMOADD -> Bits.add old v
  | AMOXOR -> Bits.logxor old v
  | AMOAND -> Bits.logand old v
  | AMOOR -> Bits.logor old v
  | AMOMIN -> Bits.min_signed old v
  | AMOMAX -> Bits.max_signed old v
  | AMOMINU -> Bits.min_unsigned old v
  | AMOMAXU -> Bits.max_unsigned old v

let load_size = function LB | LBU -> 1 | LH | LHU -> 2 | LW -> 4
let store_size = function SB -> 1 | SH -> 2 | SW -> 4

let fsqrt_bits st a_bits =
  if is_nan_bits a_bits then begin
    set_fflag st fflag_nv;
    canonical_nan
  end
  else
    let a = f32_of_bits a_bits in
    if a < 0.0 then begin
      set_fflag st fflag_nv;
      canonical_nan
    end
    else bits_of_f32 (sqrt a)

(* Translation-time operator selection: each [*_fn] resolves the
   sub-opcode match once and returns the operation as a first-class
   function, so lowered translation blocks pay the dispatch at
   translate time instead of on every execution.  Each returned
   function computes exactly what the corresponding [*_op] computes. *)

let alu_fn = function
  | ADD -> Bits.add
  | SUB -> Bits.sub
  | SLL -> Bits.sll
  | SLT -> fun a b -> if Bits.lt_signed a b then 1 else 0
  | SLTU -> fun a b -> if Bits.lt_unsigned a b then 1 else 0
  | XOR -> Bits.logxor
  | SRL -> Bits.srl
  | SRA -> Bits.sra
  | OR -> Bits.logor
  | AND -> Bits.logand
  | MUL -> Bits.mul
  | MULH -> Bits.mulh
  | MULHSU -> Bits.mulhsu
  | MULHU -> Bits.mulhu
  | DIV -> Bits.div
  | DIVU -> Bits.divu
  | REM -> Bits.rem
  | REMU -> Bits.remu
  | ANDN -> Bits.andn
  | ORN -> Bits.orn
  | XNOR -> Bits.xnor
  | ROL -> Bits.rol
  | ROR -> Bits.ror
  | MIN -> Bits.min_signed
  | MAX -> Bits.max_signed
  | MINU -> Bits.min_unsigned
  | MAXU -> Bits.max_unsigned
  | BSET -> Bits.bset
  | BCLR -> Bits.bclr
  | BINV -> Bits.binv
  | BEXT -> Bits.bext

(* Takes the already sign-extended immediate ([Bits.of_signed imm]),
   which lowering precomputes. *)
let imm_fn = function
  | ADDI -> Bits.add
  | SLTI -> fun a b -> if Bits.lt_signed a b then 1 else 0
  | SLTIU -> fun a b -> if Bits.lt_unsigned a b then 1 else 0
  | XORI -> Bits.logxor
  | ORI -> Bits.logor
  | ANDI -> Bits.logand

let shift_fn = function
  | SLLI -> Bits.sll
  | SRLI -> Bits.srl
  | SRAI -> Bits.sra
  | RORI -> Bits.ror
  | BSETI -> Bits.bset
  | BCLRI -> Bits.bclr
  | BINVI -> Bits.binv
  | BEXTI -> Bits.bext

let unary_fn = function
  | CLZ -> Bits.clz
  | CTZ -> Bits.ctz
  | CPOP -> Bits.popcount
  | SEXT_B -> Bits.sext ~width:8
  | SEXT_H -> Bits.sext ~width:16
  | ZEXT_H -> Bits.zext ~width:16
  | REV8 -> Bits.rev8
  | ORC_B -> Bits.orc_b

let branch_fn = function
  | BEQ -> fun a b -> a = b
  | BNE -> fun a b -> a <> b
  | BLT -> Bits.lt_signed
  | BGE -> Bits.ge_signed
  | BLTU -> Bits.lt_unsigned
  | BGEU -> Bits.ge_unsigned

let amo_fn = function
  | AMOSWAP -> fun _ v -> v
  | AMOADD -> Bits.add
  | AMOXOR -> Bits.logxor
  | AMOAND -> Bits.logand
  | AMOOR -> Bits.logor
  | AMOMIN -> Bits.min_signed
  | AMOMAX -> Bits.max_signed
  | AMOMINU -> Bits.min_unsigned
  | AMOMAXU -> Bits.max_unsigned

let execute ?on_mem (st : Arch_state.t) bus ~size instr =
  let pc = st.pc in
  let next = Bits.mask32 (pc + size) in
  let get = Arch_state.get_reg st and set = Arch_state.set_reg st in
  let getf = Arch_state.get_freg st and setf = Arch_state.set_freg st in
  let notify_mem addr sz value is_store =
    match on_mem with
    | None -> ()
    | Some f ->
        f { Hooks.mem_pc = pc; mem_addr = addr; mem_size = sz;
            mem_value = value; mem_is_store = is_store }
  in
  let taken = ref false in
  (match instr with
  | Lui (rd, imm20) ->
      set rd (imm20 lsl 12);
      st.pc <- next
  | Auipc (rd, imm20) ->
      set rd (Bits.add pc (imm20 lsl 12));
      st.pc <- next
  | Jal (rd, off) ->
      set rd next;
      st.pc <- Bits.add pc (Bits.of_signed off)
  | Jalr (rd, rs1, imm) ->
      let target = Bits.add (get rs1) (Bits.of_signed imm) land lnot 1 in
      set rd next;
      st.pc <- target
  | Branch (op, rs1, rs2, off) ->
      if branch_cond op (get rs1) (get rs2) then begin
        taken := true;
        st.pc <- Bits.add pc (Bits.of_signed off)
      end
      else st.pc <- next
  | Load (op, rd, base, imm) ->
      let addr = Bits.add (get base) (Bits.of_signed imm) in
      let v = load_value bus op addr in
      notify_mem addr (load_size op) v false;
      set rd v;
      st.pc <- next
  | Store (op, src, base, imm) ->
      let addr = Bits.add (get base) (Bits.of_signed imm) in
      let v = get src in
      (match op with
      | SB -> Bus.write8 bus addr v
      | SH ->
          if addr land 1 <> 0 then
            raise (Trap.Exn (Trap.Misaligned_store addr));
          Bus.write16 bus addr v
      | SW ->
          if addr land 3 <> 0 then
            raise (Trap.Exn (Trap.Misaligned_store addr));
          Bus.write32 bus addr v);
      notify_mem addr (store_size op) v true;
      st.pc <- next
  | Op_imm (op, rd, rs1, imm) ->
      set rd (imm_op op (get rs1) imm);
      st.pc <- next
  | Shift_imm (op, rd, rs1, sh) ->
      set rd (shift_op op (get rs1) sh);
      st.pc <- next
  | Op (op, rd, rs1, rs2) ->
      set rd (alu_op op (get rs1) (get rs2));
      st.pc <- next
  | Unary (op, rd, rs1) ->
      set rd (unary_op op (get rs1));
      st.pc <- next
  | Fence | Fence_i | Wfi ->
      (* Memory ordering is trivially strong in this emulator; WFI's
         wait behaviour is implemented by the machine loop. *)
      st.pc <- next
  | Ecall -> raise (Trap.Exn Trap.Ecall_from_m)
  | Ebreak -> raise (Trap.Exn Trap.Breakpoint)
  | Mret ->
      Arch_state.set_mie_bit st (Arch_state.mpie_bit st);
      Arch_state.set_mpie_bit st true;
      st.pc <- st.mepc
  | Csr (op, rd, csr, src) ->
      let read () =
        match Arch_state.csr_read st csr with
        | Some v -> v
        | None -> raise (Trap.Exn (Trap.Illegal_instruction (Encode.encode instr)))
      in
      let write v =
        match Arch_state.csr_write st csr v with
        | Some () -> ()
        | None -> raise (Trap.Exn (Trap.Illegal_instruction (Encode.encode instr)))
      in
      let old = read () in
      (match op with
      | CSRRW -> write (get src)
      | CSRRWI -> write src
      | CSRRS -> if src <> 0 then write (old lor get src)
      | CSRRSI -> if src <> 0 then write (old lor src)
      | CSRRC -> if src <> 0 then write (old land lnot (get src) land 0xFFFF_FFFF)
      | CSRRCI -> if src <> 0 then write (old land lnot src land 0xFFFF_FFFF));
      set rd old;
      st.pc <- next
  | Flw (frd, base, imm) ->
      let addr = Bits.add (get base) (Bits.of_signed imm) in
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
      let v = Bus.read32 bus addr in
      notify_mem addr 4 v false;
      setf frd v;
      st.pc <- next
  | Fsw (fsrc, base, imm) ->
      let addr = Bits.add (get base) (Bits.of_signed imm) in
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_store addr));
      let v = getf fsrc in
      Bus.write32 bus addr v;
      notify_mem addr 4 v true;
      st.pc <- next
  | Fp_op (op, frd, frs1, frs2) ->
      setf frd (fp_op st op (getf frs1) (getf frs2));
      st.pc <- next
  | Fp_cmp (op, rd, frs1, frs2) ->
      set rd (fp_cmp st op (getf frs1) (getf frs2));
      st.pc <- next
  | Fsqrt (frd, frs1) ->
      setf frd (fsqrt_bits st (getf frs1));
      st.pc <- next
  | Fcvt_w_s (rd, frs1, unsigned) ->
      set rd (fcvt_w_s st ~unsigned (getf frs1));
      st.pc <- next
  | Fcvt_s_w (frd, rs1, unsigned) ->
      setf frd (fcvt_s_w ~unsigned (get rs1));
      st.pc <- next
  | Fmv_x_w (rd, frs1) ->
      set rd (getf frs1);
      st.pc <- next
  | Fmv_w_x (frd, rs1) ->
      setf frd (get rs1);
      st.pc <- next
  | Lr (rd, rs1) ->
      let addr = get rs1 in
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_load addr));
      let v = Bus.read32 bus addr in
      notify_mem addr 4 v false;
      st.reservation <- Some addr;
      set rd v;
      st.pc <- next
  | Sc (rd, src, rs1) ->
      let addr = get rs1 in
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_store addr));
      (match st.reservation with
      | Some r when r = addr ->
          let v = get src in
          Bus.write32 bus addr v;
          notify_mem addr 4 v true;
          set rd 0
      | Some _ | None -> set rd 1);
      st.reservation <- None;
      st.pc <- next
  | Amo (op, rd, src, rs1) ->
      let addr = get rs1 in
      if addr land 3 <> 0 then raise (Trap.Exn (Trap.Misaligned_store addr));
      let old = Bus.read32 bus addr in
      notify_mem addr 4 old false;
      let v = amo_op op old (get src) in
      Bus.write32 bus addr v;
      notify_mem addr 4 v true;
      set rd old;
      st.pc <- next);
  !taken
