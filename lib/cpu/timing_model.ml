type t = {
  alu : int;
  load : int;
  store : int;
  mul : int;
  div : int;
  branch_taken : int;
  branch_not_taken : int;
  jump : int;
  csr : int;
  fence : int;
  system : int;
  fp : int;
  fdiv : int;
  fsqrt : int;
  fmove : int;
  load_use_hazard : int;
}

let default =
  { alu = 1; load = 2; store = 1; mul = 3; div = 34; branch_taken = 3;
    branch_not_taken = 1; jump = 2; csr = 2; fence = 1; system = 3; fp = 4;
    fdiv = 16; fsqrt = 20; fmove = 1; load_use_hazard = 1 }

let rocket_like =
  { alu = 1; load = 3; store = 1; mul = 4; div = 64; branch_taken = 2;
    branch_not_taken = 1; jump = 1; csr = 1; fence = 1; system = 2; fp = 5;
    fdiv = 24; fsqrt = 28; fmove = 2; load_use_hazard = 2 }

let without_hazards m = { m with load_use_hazard = 0 }

let cost m instr ~taken =
  let open S4e_isa.Instr in
  match instr with
  | Lui _ | Auipc _ | Op_imm _ | Shift_imm _ | Unary _ -> m.alu
  | Op (op, _, _, _) -> (
      match op with
      | MUL | MULH | MULHSU | MULHU -> m.mul
      | DIV | DIVU | REM | REMU -> m.div
      | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
      | ANDN | ORN | XNOR | ROL | ROR | MIN | MAX | MINU | MAXU
      | BSET | BCLR | BINV | BEXT -> m.alu)
  | Load _ | Flw _ -> m.load
  | Store _ | Fsw _ -> m.store
  | Branch _ -> if taken then m.branch_taken else m.branch_not_taken
  | Jal _ | Jalr _ -> m.jump
  | Csr _ -> m.csr
  | Fence | Fence_i -> m.fence
  | Ecall | Ebreak | Mret | Wfi -> m.system
  | Fp_op (op, _, _, _) -> (
      match op with
      | FDIV -> m.fdiv
      | FADD | FSUB | FMUL | FMIN | FMAX -> m.fp
      | FSGNJ | FSGNJN | FSGNJX -> m.fmove)
  | Fsqrt _ -> m.fsqrt
  | Fp_cmp _ | Fcvt_w_s _ | Fcvt_s_w _ | Fmv_x_w _ | Fmv_w_x _ -> m.fmove
  | Lr _ -> m.load
  | Sc _ -> m.load + m.store
  | Amo _ -> m.load + m.store

let worst_cost m instr = cost m instr ~taken:true

(* Both branch outcomes at once, so block lowering can precompute the
   cycle charge per instruction instead of re-matching at run time. *)
let costs m instr = (cost m instr ~taken:false, cost m instr ~taken:true)
