type word = int

type mem_event = {
  mem_pc : word;
  mem_addr : word;
  mem_size : int;
  mem_value : word;
  mem_is_store : bool;
}

type id = int

type t = {
  mutable next_id : int;
  mutable insn : (id * (word -> S4e_isa.Instr.t -> unit)) list;
  mutable mem : (id * (mem_event -> unit)) list;
  mutable block : (id * (word -> int -> unit)) list;
  mutable trap : (id * (Trap.exception_cause -> word -> unit)) list;
}

let create () = { next_id = 0; insn = []; mem = []; block = []; trap = [] }

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let on_insn t f =
  let id = fresh t in
  t.insn <- t.insn @ [ (id, f) ];
  id

let on_mem t f =
  let id = fresh t in
  t.mem <- t.mem @ [ (id, f) ];
  id

let on_block t f =
  let id = fresh t in
  t.block <- t.block @ [ (id, f) ];
  id

let on_trap t f =
  let id = fresh t in
  t.trap <- t.trap @ [ (id, f) ];
  id

let unregister t id =
  let drop l = List.filter (fun (i, _) -> i <> id) l in
  t.insn <- drop t.insn;
  t.mem <- drop t.mem;
  t.block <- drop t.block;
  t.trap <- drop t.trap

let clear t =
  t.insn <- [];
  t.mem <- [];
  t.block <- [];
  t.trap <- []

let has_insn t = t.insn <> []
let has_mem t = t.mem <> []
let has_block t = t.block <> []

let is_empty t =
  t.insn == [] && t.mem == [] && t.block == [] && t.trap == []

let fire_insn t pc i = List.iter (fun (_, f) -> f pc i) t.insn
let fire_mem t e = List.iter (fun (_, f) -> f e) t.mem
let fire_block t pc n = List.iter (fun (_, f) -> f pc n) t.block
let fire_trap t c pc = List.iter (fun (_, f) -> f c pc) t.trap
