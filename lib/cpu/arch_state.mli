(** Architectural state of one RV32 hart (machine mode only).

    GPRs and FPRs are exposed through accessors that maintain the
    invariants ([x0] reads zero, all values canonical 32-bit words). *)

type word = S4e_bits.Bits.word

type t = {
  mutable hartid : int;
      (** Value of the [mhartid] CSR.  Structural (assigned at machine
          construction), untouched by {!reset} and {!restore}. *)
  mutable misa : word;
      (** Value of the [misa] CSR; the machine derives it from its ISA
          configuration so restricted-ISA machines advertise accurately.
          Structural, like [hartid]. *)
  regs : word array;  (** 32 GPRs; [regs.(0)] is kept at 0 *)
  fregs : word array;  (** 32 FPRs as IEEE-754 single bit patterns *)
  mutable pc : word;
  mutable mstatus : word;
  mutable mie : word;
  mutable mip : word;
  mutable mtvec : word;
  mutable mscratch : word;
  mutable mepc : word;
  mutable mcause : word;
  mutable mtval : word;
  mutable fcsr : word;
  mutable cycle : int;  (** 64-bit cycle counter in a native int *)
  mutable instret : int;
  mutable time_source : unit -> int;
      (** Reads platform time for the [time] CSR; the machine points
          this at the CLINT. *)
  mutable reservation : word option;
      (** LR/SC reservation address (A extension).  Cleared by [SC],
          reset, and trap/interrupt entry; another hart's store to the
          reserved word also breaks it (machine coherence hook). *)
}

val create : ?pc:word -> ?hartid:int -> unit -> t
val reset : t -> pc:word -> unit

val get_reg : t -> S4e_isa.Reg.t -> word

val set_reg : t -> S4e_isa.Reg.t -> word -> unit
(** Writes to [x0] are discarded. *)

val get_freg : t -> S4e_isa.Reg.t -> word
val set_freg : t -> S4e_isa.Reg.t -> word -> unit

(** {1 mstatus fields} *)

val mie_bit : t -> bool
val set_mie_bit : t -> bool -> unit
val mpie_bit : t -> bool
val set_mpie_bit : t -> bool -> unit

(** {1 CSR file}

    [csr_read]/[csr_write] return [None] for unimplemented addresses;
    the executor maps [None] to an illegal-instruction trap.
    [csr_write] to a read-only address also yields [None]. *)

val csr_read : t -> S4e_isa.Csr.t -> word option
val csr_write : t -> S4e_isa.Csr.t -> word -> unit option

val copy : t -> t
(** Deep copy (snapshot for fault campaigns and differential runs). *)

val restore : t -> t -> unit
(** [restore dst src] copies every architectural field of [src] into
    [dst] in place (including the LR/SC reservation, so forked campaign
    mutants resume with the same reservation the golden run held).
    [dst.time_source], [dst.hartid], and [dst.misa] are deliberately
    left untouched so a machine's CLINT wiring and hart identity
    survive the rewind. *)
