(** Translation-block lowering — compiles decoded instructions into
    µop closures.

    Where the generic interpreter re-dispatches on the {!S4e_isa.Instr.t}
    AST, re-matches the timing model, and re-derives hazard sources on
    every execution, [lower_entry] does all of it once per translation:

    - the executor dispatch (including sub-opcode selection, immediate
      sign-extension, and branch/jump target arithmetic) is resolved
      into a closure per instruction;
    - the {!Timing_model} cost is precomputed for both branch outcomes;
    - the load-use hazard source set is baked into an int bitmask
      ({!S4e_isa.Instr.source_mask});
    - hook dispatch is specialized away entirely — the machine only
      runs lowered blocks while {!Hooks.is_empty} holds, falling back
      to the generic path the moment a tracer / coverage / cache-model
      / fault-monitor client registers.

    Cycle charges are returned by each µop and batched by the machine;
    µops that can observe time (CSR accesses and device-space bus
    accesses) call [lx_flush_time] first, which keeps batched ticking
    observationally identical to per-instruction ticking.

    The lowered engine must stay byte-identical to {!Exec.execute} on
    every instruction — enforced by the differential property tests. *)

type word = int

type ctx = {
  lx_state : Arch_state.t;
  lx_bus : S4e_mem.Bus.t;
  lx_timing : Timing_model.t;
  lx_flush_time : unit -> unit;
      (** apply batched cycles to [cycle]/CLINT before time-observing ops *)
  lx_notify_store : word -> unit;
      (** translation-cache invalidation on stores *)
  lx_dev_limit : word;
      (** bus addresses below this may reach a device (and hence observe
          or mutate time): flush batched cycles first *)
}

val load_fn : S4e_mem.Bus.t -> S4e_isa.Instr.op_load -> word -> word
(** Width/sign-dispatched load with the architectural misalignment
    check baked in; shared with the superblock trace compiler. *)

val store_fn : S4e_mem.Bus.t -> S4e_isa.Instr.op_store -> word -> word -> unit
(** Width-dispatched store with the misalignment check baked in. *)

val lower_instr :
  ctx -> pc:word -> size:int -> S4e_isa.Instr.t -> Tb_cache.uop

val lower_entry : ctx -> Tb_cache.entry -> Tb_cache.uop array
