(** Single-instruction executor.

    [execute ?on_mem state bus ~size instr] performs one architectural
    step: reads operands, performs the operation (including bus
    accesses), writes results, and advances [state.pc] (by [size] bytes,
    or to the control-flow target).  Raises {!Trap.Exn} on synchronous
    exceptions, leaving [state.pc] at the faulting instruction so the
    machine can enter the trap.

    The return value reports whether a conditional branch was taken
    ([false] for every non-branch); the machine feeds it to the timing
    model.

    [on_mem] observes each data access; it is passed explicitly (rather
    than via {!Hooks}) so the executor stays container-free. *)

val execute :
  ?on_mem:(Hooks.mem_event -> unit) ->
  Arch_state.t ->
  S4e_mem.Bus.t ->
  size:int ->
  S4e_isa.Instr.t ->
  bool

(** {1 Lowering support}

    The block-lowering pipeline ({!Lower}) compiles decoded
    instructions into closures at translate time.  The helpers below
    expose the executor's per-format semantics so the lowered closures
    compute bit-identical results; the [*_fn] selectors resolve the
    sub-opcode dispatch once and return the operation as a first-class
    function. *)

type word = int

val alu_fn : S4e_isa.Instr.op_r -> word -> word -> word
val imm_fn : S4e_isa.Instr.op_i -> word -> word -> word
(** Second argument is the sign-extended immediate
    ([Bits.of_signed imm]). *)

val shift_fn : S4e_isa.Instr.op_shift -> word -> int -> word
val unary_fn : S4e_isa.Instr.op_unary -> word -> word
val branch_fn : S4e_isa.Instr.op_branch -> word -> word -> bool
val amo_fn : S4e_isa.Instr.op_amo -> word -> word -> word

val load_value : S4e_mem.Bus.t -> S4e_isa.Instr.op_load -> word -> word
(** Raises {!Trap.Exn} on misalignment. *)

val load_size : S4e_isa.Instr.op_load -> int
val store_size : S4e_isa.Instr.op_store -> int

val fp_op : Arch_state.t -> S4e_isa.Instr.op_fp -> word -> word -> word
val fp_cmp : Arch_state.t -> S4e_isa.Instr.op_fp_cmp -> word -> word -> word
val fsqrt_bits : Arch_state.t -> word -> word
val fcvt_w_s : Arch_state.t -> unsigned:bool -> word -> word
val fcvt_s_w : unsigned:bool -> word -> word
