open S4e_isa

type word = int

type t = {
  mutable hartid : int;
  mutable misa : word;
  regs : word array;
  fregs : word array;
  mutable pc : word;
  mutable mstatus : word;
  mutable mie : word;
  mutable mip : word;
  mutable mtvec : word;
  mutable mscratch : word;
  mutable mepc : word;
  mutable mcause : word;
  mutable mtval : word;
  mutable fcsr : word;
  mutable cycle : int;
  mutable instret : int;
  mutable time_source : unit -> int;
  mutable reservation : int option;
}

(* Reset value of mstatus: MPP = 11 (machine), everything else clear. *)
let mstatus_reset = 0x0000_1800

(* RV32IMAFC + B-as-X: base 32 (bits 31:30 = 01), letters A I M F C. *)
let misa_default =
  0x4000_0000 lor (1 lsl 8) lor (1 lsl 12) lor (1 lsl 5) lor (1 lsl 2)
  lor (1 lsl 0)

let create ?(pc = 0) ?(hartid = 0) () =
  let t =
    { hartid; misa = misa_default;
      regs = Array.make 32 0; fregs = Array.make 32 0; pc;
      mstatus = mstatus_reset; mie = 0; mip = 0; mtvec = 0; mscratch = 0;
      mepc = 0; mcause = 0; mtval = 0; fcsr = 0; cycle = 0; instret = 0;
      time_source = (fun () -> 0); reservation = None }
  in
  t.time_source <- (fun () -> t.cycle);
  t

let reset t ~pc =
  Array.fill t.regs 0 32 0;
  Array.fill t.fregs 0 32 0;
  t.pc <- pc;
  t.mstatus <- mstatus_reset;
  t.mie <- 0;
  t.mip <- 0;
  t.mtvec <- 0;
  t.mscratch <- 0;
  t.mepc <- 0;
  t.mcause <- 0;
  t.mtval <- 0;
  t.fcsr <- 0;
  t.cycle <- 0;
  t.instret <- 0;
  t.reservation <- None

let get_reg t r = if r = 0 then 0 else Array.unsafe_get t.regs r

let set_reg t r v =
  if r <> 0 then Array.unsafe_set t.regs r (v land 0xFFFF_FFFF)

let get_freg t r = Array.unsafe_get t.fregs r
let set_freg t r v = Array.unsafe_set t.fregs r (v land 0xFFFF_FFFF)

let mie_bit t = t.mstatus land 0x8 <> 0

let set_mie_bit t v =
  t.mstatus <- (if v then t.mstatus lor 0x8 else t.mstatus land lnot 0x8)

let mpie_bit t = t.mstatus land 0x80 <> 0

let set_mpie_bit t v =
  t.mstatus <- (if v then t.mstatus lor 0x80 else t.mstatus land lnot 0x80)

(* Only the bits we implement are writable in mstatus: MIE and MPIE.
   MPP reads as 11 and ignores writes (machine mode only). *)
let mstatus_write_mask = 0x88

let lo32 v = v land 0xFFFF_FFFF
let hi32 v = (v lsr 32) land 0x7FFF_FFFF

let csr_read t a =
  if a = Csr.fflags then Some (t.fcsr land 0x1F)
  else if a = Csr.frm then Some ((t.fcsr lsr 5) land 0x7)
  else if a = Csr.fcsr then Some (t.fcsr land 0xFF)
  else if a = Csr.mstatus then Some t.mstatus
  else if a = Csr.misa then Some t.misa
  else if a = Csr.mie then Some t.mie
  else if a = Csr.mip then Some t.mip
  else if a = Csr.mtvec then Some t.mtvec
  else if a = Csr.mscratch then Some t.mscratch
  else if a = Csr.mepc then Some t.mepc
  else if a = Csr.mcause then Some t.mcause
  else if a = Csr.mtval then Some t.mtval
  else if a = Csr.mhartid then Some t.hartid
  else if a = Csr.mvendorid || a = Csr.marchid || a = Csr.mimpid then Some 0
  else if a = Csr.mcycle || a = Csr.cycle then Some (lo32 t.cycle)
  else if a = Csr.cycleh then Some (hi32 t.cycle)
  else if a = Csr.minstret || a = Csr.instret then Some (lo32 t.instret)
  else if a = Csr.instreth then Some (hi32 t.instret)
  else if a = Csr.time then Some (lo32 (t.time_source ()))
  else if a = Csr.timeh then Some (hi32 (t.time_source ()))
  else None

let csr_write t a v =
  let v = lo32 v in
  if Csr.is_read_only a then None
  else if a = Csr.fflags then begin
    t.fcsr <- (t.fcsr land lnot 0x1F) lor (v land 0x1F);
    Some ()
  end
  else if a = Csr.frm then begin
    t.fcsr <- (t.fcsr land lnot 0xE0) lor ((v land 0x7) lsl 5);
    Some ()
  end
  else if a = Csr.fcsr then begin
    t.fcsr <- v land 0xFF;
    Some ()
  end
  else if a = Csr.mstatus then begin
    t.mstatus <-
      (t.mstatus land lnot mstatus_write_mask) lor (v land mstatus_write_mask);
    Some ()
  end
  else if a = Csr.misa then Some () (* writes ignored *)
  else if a = Csr.mie then begin
    (* MSIE, MTIE, MEIE *)
    t.mie <- v land 0x888;
    Some ()
  end
  else if a = Csr.mip then Some () (* pending bits are hardware-driven *)
  else if a = Csr.mtvec then begin
    (* Direct mode only: low two bits forced to zero. *)
    t.mtvec <- v land lnot 0x3;
    Some ()
  end
  else if a = Csr.mscratch then begin
    t.mscratch <- v;
    Some ()
  end
  else if a = Csr.mepc then begin
    t.mepc <- v land lnot 0x1;
    Some ()
  end
  else if a = Csr.mcause then begin
    t.mcause <- v;
    Some ()
  end
  else if a = Csr.mtval then begin
    t.mtval <- v;
    Some ()
  end
  else if a = Csr.mcycle then begin
    t.cycle <- (t.cycle land lnot 0xFFFF_FFFF) lor v;
    Some ()
  end
  else if a = Csr.minstret then begin
    t.instret <- (t.instret land lnot 0xFFFF_FFFF) lor v;
    Some ()
  end
  else None

let copy t =
  let c =
    { t with regs = Array.copy t.regs; fregs = Array.copy t.fregs }
  in
  c.time_source <- (fun () -> c.cycle);
  c

(* [hartid]/[misa] are structural (set once at machine construction),
   not architectural: a rewind must not re-number the hart it lands
   on, so like [time_source] they are left untouched. *)
let restore dst src =
  Array.blit src.regs 0 dst.regs 0 32;
  Array.blit src.fregs 0 dst.fregs 0 32;
  dst.pc <- src.pc;
  dst.mstatus <- src.mstatus;
  dst.mie <- src.mie;
  dst.mip <- src.mip;
  dst.mtvec <- src.mtvec;
  dst.mscratch <- src.mscratch;
  dst.mepc <- src.mepc;
  dst.mcause <- src.mcause;
  dst.mtval <- src.mtval;
  dst.fcsr <- src.fcsr;
  dst.cycle <- src.cycle;
  dst.instret <- src.instret;
  dst.reservation <- src.reservation
