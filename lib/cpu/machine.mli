(** The virtual prototype: one RV32 hart, bus, and platform devices.

    A machine bundles architectural state, the system bus with the
    default {!S4e_soc.Memory_map} devices (UART, CLINT, GPIO, syscon),
    the instrumentation {!Hooks}, a configurable decoder, the
    translation-block cache, and the timing model.  [run] executes until
    software exits through the syscon, a fatal trap occurs, fuel runs
    out, or the hart would sleep forever in WFI.

    Three execution engines share one observable semantics (identical
    {!state_digest} traces, enforced by differential tests):

    - {b lowered} (default): translation blocks compiled to µop closure
      arrays ([Lower]) with block chaining, batched cycle/CLINT ticking,
      and hook dispatch specialized away.  Selected per block while no
      hooks are installed.
    - {b generic TB}: the decoded-array interpreter; used whenever hooks
      are present or [lower_blocks] is off.
    - {b single-step} ([use_tb_cache:false]): decode-dispatch per
      instruction, with interrupt sampling gated to the same block
      boundaries the TB path produces, so it is cycle-identical to the
      cached engines. *)

type word = S4e_bits.Bits.word

type decoder_kind = Hand_decoder | Decodetree_decoder

type config = {
  isa : S4e_isa.Isa_module.t list;
  timing : Timing_model.t;
  use_tb_cache : bool;
  decoder : decoder_kind;
  lower_blocks : bool;
      (** compile hook-free blocks to µop closures (requires
          [use_tb_cache]) *)
  chain_blocks : bool;
      (** patch direct successor links between blocks ({!Tb_cache.next}) *)
  mem_tlb : bool;
      (** enable the bus's software TLB of direct page pointers
          ({!S4e_mem.Bus}); off forces every access through the full
          device-routing path.  Observable behavior is identical either
          way (enforced by differential tests) — the knob exists as an
          escape hatch and for benchmarking the fast path. *)
  superblocks : bool;
      (** promote hot chained paths into cross-block guarded traces
          ({!Superblock}); only effective on the lowered engine.
          Observable behavior is identical either way (enforced by
          differential tests). *)
  device_plane : bool;
      (** attach the event-driven device plane — the DMA engine and the
          vnet device at {!S4e_soc.Memory_map.dma_base}/[vnet_base],
          with the CLINT deadline routed through the
          {!S4e_soc.Event_wheel} and device interrupts delivered as
          [mip.MEIP] (through the {!S4e_soc.Plic} once the guest
          enables a source; OR-ed into hart 0's MEIP until then).  Off
          reverts to the four-device platform with direct timer polling
          (the E17 compute-guard baseline). *)
  harts : int;
      (** number of harts (default 1).  A one-hart machine executes on
          the exact pre-SMP path; more harts run under the
          deterministic round-robin scheduler of {!run}. *)
  hart_slice : int;
      (** round-robin fuel quantum per hart (default 1024).  Part of
          the machine's deterministic semantics: the same slice yields
          the same interleaving on every engine.  Data-race-free guests
          reach the same architectural state under any slice (enforced
          by the SMP differential tests). *)
}

val default_config : config
(** RV32IMFC + Zicsr + B, default timing, TB cache on, DecodeTree,
    lowering, chaining, the memory TLB, superblock traces on, and one
    hart. *)

type stop_reason =
  | Exited of int  (** software wrote the syscon EXIT register *)
  | Fatal_trap of Trap.exception_cause * word
      (** trap taken with no handler installed ([mtvec] = 0); the word
          is the faulting pc *)
  | Out_of_fuel
  | Wfi_halt  (** WFI with no interrupt source able to wake the hart *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

(** Address-range data probe.  Hits are observed on the recording path
    — where effective addresses are materialized — so watchpoints only
    fire while a {!Flight_recorder} is attached ({!set_watchpoints}).
    [wp_hi] is exclusive; an access [\[addr, addr+width)] hits when the
    ranges overlap and the direction matches. *)
type watchpoint = {
  wp_lo : word;
  wp_hi : word;
  wp_read : bool;
  wp_write : bool;
  mutable wp_hits : int;
}

(** One hart's private execution context.  Lowered µop closures capture
    the {!Arch_state.t} they were translated against, so translated
    code is hart-bound: each hart owns a TB cache, lowering context,
    and superblock engine over the shared bus. *)
type hart = {
  hx_id : int;
  hx_state : Arch_state.t;
  hx_tb : Tb_cache.t;
  mutable hx_lower : Lower.ctx;
  mutable hx_sb : Superblock.t option;
  mutable hx_llm : int;
      (** saved load-use hazard window while the hart is descheduled *)
  mutable hx_parked : bool;
      (** parked in WFI (pc already past it); the scheduler wakes the
          hart when an enabled interrupt becomes pending *)
}

type t = {
  mutable state : Arch_state.t;
      (** alias of the current hart's state ([harts.(cur)]); constant
          on a single-hart machine *)
  bus : S4e_mem.Bus.t;
  uart : S4e_soc.Uart.t;
  clint : S4e_soc.Clint.t;
  gpio : S4e_soc.Gpio.t;
  syscon : S4e_soc.Syscon.t;
  wheel : S4e_soc.Event_wheel.t;
      (** the device event scheduler; always constructed, only consulted
          at interrupt-sampling points when [config.device_plane] *)
  dma : S4e_soc.Dma.t;
  vnet : S4e_soc.Vnet.t;
  plic : S4e_soc.Plic.t;
      (** external-interrupt router; transparent (legacy hart-0 MEIP
          wiring) until the guest enables a source *)
  hooks : Hooks.t;
  config : config;
  decode32 : word -> S4e_isa.Instr.t option;
  mutable tb : Tb_cache.t;  (** alias of the current hart's TB cache *)
  mutable last_load_mask : int;
      (** load-use hazard window of the previous retired instruction as
          an {!S4e_isa.Instr.source_mask}-encoded destination bitmask
          (0 = none); persists across [run] calls so resumed executions
          charge the same stalls as uninterrupted ones *)
  pending_ticks : int ref;
      (** cycles batched by the lowered engine, not yet applied to
          [state.cycle] / the CLINT; always 0 outside [run] *)
  seg_idx : int ref;
      (** lowered engine: µop index within the running block segment *)
  seg_base : int ref;
      (** lowered engine: µop index up to which instret/fuel are
          credited; equals [seg_idx] outside [run] *)
  fuel_left : int ref;
      (** the running [run] call's remaining fuel (drained lazily by the
          lowered engine); meaningless outside [run] *)
  exit_dirty : bool ref;
      (** set by the syscon write notifier; [run] polls the device's
          exit code only when this is set *)
  mutable lower_ctx : Lower.ctx;
  mutable sb : Superblock.t option;
      (** the superblock trace engine; [None] when [config.superblocks]
          is off (or the lowered engine is unavailable) *)
  harts : hart array;
  mutable cur : int;  (** index of the hart the alias fields track *)
  mutable rr : int;
      (** round-robin scheduling pointer (next hart to consider);
          persists across [run] calls so staged-fuel runs interleave
          exactly like uninterrupted ones *)
  mutable profiler : S4e_obs.Profile.t option;
      (** per-block hot-spot attribution; prefer {!set_profiler} *)
  mutable recorder : S4e_obs.Flight_recorder.t option;
      (** retired-instruction flight recorder; prefer {!set_recorder} *)
  mutable watchpoints : watchpoint array;
      (** address-range probes checked on the recording path; prefer
          {!set_watchpoints} *)
  mutable watch_trace : S4e_obs.Trace_events.t option;
      (** optional trace sink for watchpoint-hit instants; prefer
          {!set_watch_trace} *)
}

val create : ?config:config -> unit -> t

val set_profiler : t -> S4e_obs.Profile.t option -> unit
(** Attaches (or detaches) a hot-spot profiler.  [run] then feeds it
    one {!S4e_obs.Profile.note} per dispatched translation block with
    the block's instret/cycle deltas.  Unlike hooks, a profiler keeps
    the lowered fast path: attribution reads the counters the engines
    already drain at block exits, so it does not perturb execution
    (state digests are identical with and without — enforced by
    differential tests).  Only TB dispatch is attributed; single-step
    runs ([use_tb_cache = false]) record nothing. *)

val profiler : t -> S4e_obs.Profile.t option

val set_recorder : t -> S4e_obs.Flight_recorder.t option -> unit
(** Attaches (or detaches) a flight recorder.  [run] then appends one
    {!S4e_obs.Flight_recorder.retire} record per retired instruction
    (pc, opcode word, register writeback, effective address / width /
    value for memory accesses) plus trap / interrupt / device-event
    markers.  Like the profiler, an unarmed run pays one pointer test
    per block dispatch; an armed run leaves the superblock path (the
    lowered recording sibling captures per instruction) but never
    perturbs execution — state digests, stop reasons, and cycle counts
    are identical armed vs. unarmed on every engine config (enforced by
    differential tests).  {!snapshot} captures the recorder's position
    and {!restore} rewinds to it, so sequence numbers stay continuous
    across campaign forks. *)

val recorder : t -> S4e_obs.Flight_recorder.t option

val set_watchpoints : t -> watchpoint list -> unit
(** Installs address-range read/write probes.  A hit bumps the
    watchpoint's [wp_hits], appends a [Watch] record to the attached
    recorder, and (with {!set_watch_trace}) emits a Chrome-trace
    instant (cat ["watch"]).  Watchpoints live on the recording path:
    they observe nothing unless a recorder is attached, and they never
    perturb digests. *)

val watchpoints : t -> watchpoint list

val set_watch_trace : t -> S4e_obs.Trace_events.t option -> unit

val trace_stats : t -> Superblock.stats option
(** Superblock trace engine counters; [None] when disabled. *)

val register_metrics : ?prefix:string -> t -> S4e_obs.Metrics.t -> unit
(** Registers gauges over the machine's existing counters —
    [<prefix>instret], [cycles], [tb.blocks], [tb.hits], [tb.misses],
    [tb.chain_hits], [tb.invalidations], [mem.tlb_hits],
    [mem.tlb_misses], [mem.tlb_flushes], [wheel.fired],
    [wheel.idle_skips], [wheel.live], [dma.bursts], [dma.bytes],
    [vnet.rx_delivered], [vnet.rx_dropped], [vnet.tx_sent], and (when
    superblocks are on) [sb.traces], [sb.promotions],
    [sb.invalidations], [sb.execs], [sb.completions], [sb.instrs]
    (prefix default ["machine."]).  Gauges are read-on-demand probes:
    the hot path is untouched. *)

val observe_devices :
  ?metrics:S4e_obs.Metrics.t -> ?trace:S4e_obs.Trace_events.t -> t -> unit
(** Wires telemetry observers into the device plane: a [dma.burst_bytes]
    histogram per completed DMA burst, a [vnet.rx_queue_depth] histogram
    per rx delivery/drop, and one Chrome-trace instant per device event
    (cat ["device"]).  Calling with neither argument detaches the
    observers.  Purely observational — digests are unchanged. *)

val set_uart_sink : t -> (string -> unit) option -> unit
(** Installs a batched host sink for UART output ({!S4e_soc.Uart.set_sink});
    [run] flushes it at every stop. *)

val reset : t -> pc:word -> unit
(** Architectural reset (registers, CSRs, CLINT, PLIC, syscon) of every
    hart; all harts restart at [pc] (SMP guests branch on [mhartid]).
    Memory, the TB caches, and hooks are preserved. *)

val run : t -> fuel:int -> stop_reason
(** Executes at most [fuel] instructions.  Interrupts are sampled at
    translation-block boundaries (as in QEMU) on every engine —
    including single-step mode, which reconstructs the boundaries.

    On a multi-hart machine, fuel is dealt to the harts round-robin in
    [config.hart_slice]-sized quanta; a hart that executes WFI with no
    enabled pending interrupt parks until one arrives (e.g. a
    cross-hart MSIP IPI), virtual time fast-forwards only when every
    hart is parked, and [Wfi_halt] means no hart can ever wake.  The
    interleaving is a pure function of (program, fuel, slice) —
    identical on every engine. *)

val switch_to : t -> int -> unit
(** Point the alias fields ([state], [tb], …) at the given hart.  Only
    legal between [run] calls; [run] schedules harts itself. *)

val hart_count : t -> int

val instret : t -> int
(** Sum over all harts (the hart's own counter on a 1-hart machine). *)

val cycles : t -> int

val uart_output : t -> string

val load_word : t -> word -> word -> unit
(** [load_word t addr w] pokes one word directly into RAM (bypassing
    devices and hooks) and invalidates affected translation blocks. *)

val load_string : t -> word -> string -> unit

(** {1 Snapshot / restore}

    A snapshot captures everything a resumed [run] depends on:
    architectural state, RAM (page copies), UART/CLINT/GPIO/syscon
    device state, and the microarchitectural hazard window.  Hooks and
    the TB cache are deliberately excluded: hooks belong to the
    instrumentation layer, and the TB cache is flushed on restore
    because restored memory may hold different code.

    The fault campaign uses this to fork faulty runs off a golden
    prefix instead of re-executing every mutant from reset. *)

type snapshot

val snapshot : t -> snapshot
(** O(touched pages + registers); the snapshot is fully detached from
    the machine and can be restored any number of times. *)

val restore : t -> snapshot -> unit
(** Rewinds the machine to the captured instant and flushes the TB
    cache.  [run] can then resume as if execution had never left the
    snapshot point. *)

val state_digest : ?include_time:bool -> ?include_instret:bool -> t -> string
(** Digest of the complete snapshot-visible state (registers, CSRs,
    cycle/instret, RAM, UART output, CLINT, GPIO) of every hart.  Two
    machines with equal digests behave identically from this point on
    (absent hook interference) — the fault campaign's early-convergence
    check.  A one-hart machine with an untouched PLIC hashes exactly
    the pre-SMP byte stream.

    [~include_time:false] omits the cycle counters and the CLINT mtime
    register.  Two machines with equal relaxed digests then execute the
    same instruction stream from this point on {e provided} neither run
    ever observes time (reads a cycle/time CSR, sleeps on WFI, takes a
    timer interrupt or loads from the CLINT window) — the caller is
    responsible for establishing that.  Defaults to [true].

    [~include_instret:false] additionally omits the retired-instruction
    counters — the comparison the SMP slice-invariance tests use, since
    spin-loop iteration counts legitimately vary with the scheduling
    quantum while the architectural outcome must not. *)
