open S4e_isa.Instr
module Bits = S4e_bits.Bits
module Bus = S4e_mem.Bus
module Timing = Timing_model

type word = int

(* Everything a compiled trace may touch, bound once per machine (the
   trace analogue of [Lower.ctx]).  The callbacks keep this module free
   of a dependency on [Machine]:

   - [sx_flush] applies the batched cycles in [sx_pending] to the cycle
     counter and the CLINT (cycles only — unlike the block engine's
     flush, retire crediting is separate because traces credit
     instret/fuel with per-exit constants);
   - [sx_retire n] credits n retired instructions (instret and fuel);
   - [sx_trap cause pc pred] performs full trap entry for a trace µop:
     flush, credit [pred] predecessor retires, enter the exception at
     [pc] (raising the machine's stop exception when fatal), charge
     system cycles, credit the trapping instruction, and re-check the
     exit latch.  After it returns the trace must side-exit.
   - [sx_irq] recomputes mip from the live CLINT state plus the
     batched-but-unapplied cycles, stores it (mip is digest-visible),
     and reports whether a deliverable interrupt is pending — the exact
     check the dispatch loop performs between blocks. *)
type ctx = {
  sx_state : Arch_state.t;
  sx_bus : Bus.t;
  sx_timing : Timing.t;
  sx_pending : int ref;
  sx_exit_dirty : bool ref;
  sx_flush : unit -> unit;
  sx_retire : int -> unit;
  sx_exit_code : unit -> int option;
  sx_raise_exited : int -> unit;
  sx_trap : Trap.exception_cause -> word -> int -> unit;
  sx_irq : unit -> bool;
  sx_notify_store : word -> unit;
  sx_get_llm : unit -> int;
  sx_set_llm : int -> unit;
  sx_dev_limit : word;
}

type trace = {
  tr_head_pc : word;
  tr_blocks : int;
  tr_instrs : int;  (* guest instructions retired on full completion *)
  tr_dead : bool ref;
  tr_body : unit -> unit;
  tr_members : Tb_cache.entry list;
}

type Tb_cache.attachment += Trace_head of trace | Trace_member of trace

type t = {
  sx : ctx;
  tb : Tb_cache.t;
  mutable traces : trace list;
  mutable promotions : int;
  mutable invalidations : int;
  mutable completions : int;
  mutable bails_guard : int;
  mutable bails_irq : int;
  mutable bails_dead : int;
  mutable bails_trap : int;
  mutable execs : int;
  mutable instrs_in_traces : int;
  promote_period : int;  (* power of two *)
  min_edge_hits : int;
  max_blocks : int;
  max_instrs : int;
}

(* ---------------- invalidation ---------------- *)

let invalidate t tr =
  if not !(tr.tr_dead) then begin
    tr.tr_dead := true;
    t.invalidations <- t.invalidations + 1;
    t.traces <- List.filter (fun x -> not (x == tr)) t.traces;
    (* detach surviving members so they can join future traces; the
       entry being killed has its attach field reset by [Tb_cache.kill]
       itself *)
    List.iter
      (fun (e : Tb_cache.entry) ->
        match e.Tb_cache.attach with
        | Trace_head x when x == tr -> e.Tb_cache.attach <- Tb_cache.No_attachment
        | Trace_member x when x == tr ->
            e.Tb_cache.attach <- Tb_cache.No_attachment
        | _ -> ())
      tr.tr_members
  end

let on_kill t (e : Tb_cache.entry) =
  match e.Tb_cache.attach with
  | Trace_head tr | Trace_member tr -> invalidate t tr
  | _ -> ()

let on_flush t =
  List.iter (fun tr -> tr.tr_dead := true) t.traces;
  t.invalidations <- t.invalidations + List.length t.traces;
  t.traces <- []

let create ?(promote_period = 64) ?(min_edge_hits = 16) ?(max_blocks = 16)
    ?(max_instrs = 96) sx tb =
  let t =
    { sx; tb; traces = []; promotions = 0; invalidations = 0;
      completions = 0; bails_guard = 0; bails_irq = 0; bails_dead = 0;
      bails_trap = 0; execs = 0; instrs_in_traces = 0; promote_period;
      min_edge_hits; max_blocks; max_instrs }
  in
  Tb_cache.set_invalidate_hooks tb ~on_kill:(on_kill t)
    ~on_flush:(fun () -> on_flush t);
  t

(* ---------------- promotion path selection ---------------- *)

(* Instruction classes a trace can carry.  Everything else (CSR, system,
   atomics, FP, wfi, fences) either observes time mid-block, ends the
   run, or is rare enough that promotion is not worth the compile
   complexity — blocks containing them simply stay on the per-block
   engine. *)
let promotable_instr = function
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Op_imm _ | Shift_imm _ | Op _ | Unary _ ->
      true
  | _ -> false

let promotable_block (e : Tb_cache.entry) =
  Array.length e.Tb_cache.instrs > 0
  && Array.for_all (fun (_, _, i) -> promotable_instr i) e.Tb_cache.instrs

(* How control leaves a constituent block for the next one. *)
type edge_k =
  | Uncond of word  (* jal or straight-line fallthrough: next block pc *)
  | Jalr_to of word  (* guard: computed target must equal this pc *)
  | Br_to of bool * word  (* expected taken?, other-direction target *)
  | Final  (* last block: terminal keeps full per-block semantics *)

(* The edge [cur -> dst] implied by [cur]'s terminal instruction, or
   None when the transition cannot be guarded (e.g. a branch whose two
   targets coincide, where the direction is unobservable from the pc). *)
let edge_to (cur : Tb_cache.entry) (dst_pc : word) =
  let n = Array.length cur.Tb_cache.instrs in
  let tpc, tsize, tin = cur.Tb_cache.instrs.(n - 1) in
  match tin with
  | Jal (_, off) ->
      if Bits.add tpc (Bits.of_signed off) = dst_pc then Some (Uncond dst_pc)
      else None
  | Jalr _ -> Some (Jalr_to dst_pc)
  | Branch (_, _, _, off) ->
      let taken = Bits.add tpc (Bits.of_signed off) in
      let fallthrough = Bits.mask32 (tpc + tsize) in
      if taken = fallthrough then None
      else if dst_pc = taken then Some (Br_to (true, fallthrough))
      else if dst_pc = fallthrough then Some (Br_to (false, taken))
      else None
  | _ ->
      (* block cut at max length / before an undecodable word *)
      if Bits.mask32 (tpc + tsize) = dst_pc then Some (Uncond dst_pc) else None

(* Follow the hotter of the two chain links, if hot enough. *)
let hot_successor t (e : Tb_cache.entry) =
  let a = e.Tb_cache.link_a and ah = e.Tb_cache.link_a_hits in
  let b = e.Tb_cache.link_b and bh = e.Tb_cache.link_b_hits in
  let pick l h =
    match l with
    | Some (d : Tb_cache.entry) when h >= t.min_edge_hits && not d.Tb_cache.dead
      ->
        Some d
    | _ -> None
  in
  if ah >= bh then match pick a ah with Some d -> Some d | None -> pick b bh
  else match pick b bh with Some d -> Some d | None -> pick a ah

(* ---------------- trace compilation ---------------- *)

(* One decoded guest instruction inside the trace, tagged with its role.
   [uterm = Some _] marks the last instruction of a constituent block. *)
type unit_u = {
  upc : word;
  usize : int;
  uin : S4e_isa.Instr.t;
  uterm : edge_k option;
}

let dest_of = function
  | Lui (rd, _) | Auipc (rd, _) -> rd
  | Op_imm (_, rd, _, _) | Shift_imm (_, rd, _, _) | Op (_, rd, _, _)
  | Unary (_, rd, _) ->
      rd
  | _ -> -1

(* Compile-time constant value of a lone lui/auipc, if any. *)
let const_of ~pc = function
  | Lui (_, imm20) -> Some (Bits.mask32 (imm20 lsl 12))
  | Auipc (_, imm20) -> Some (Bits.add pc (imm20 lsl 12))
  | _ -> None

(* ALU value producers usable as the first half of a fused pair: the
   computation as a closure, evaluated with fresh register reads. *)
let alu_value ~pc instr st =
  let get r = Arch_state.get_reg st r in
  match instr with
  | Lui (_, imm20) ->
      let v = Bits.mask32 (imm20 lsl 12) in
      Some (fun () -> v)
  | Auipc (_, imm20) ->
      let v = Bits.add pc (imm20 lsl 12) in
      Some (fun () -> v)
  | Op_imm (op, _, rs1, imm) ->
      let f = Exec.imm_fn op in
      let b = Bits.of_signed imm in
      Some (fun () -> f (get rs1) b)
  | Shift_imm (op, _, rs1, sh) ->
      let f = Exec.shift_fn op in
      Some (fun () -> f (get rs1) sh)
  | Op (op, _, rs1, rs2) ->
      let f = Exec.alu_fn op in
      Some (fun () -> f (get rs1) (get rs2))
  | Unary (op, _, rs1) ->
      let f = Exec.unary_fn op in
      Some (fun () -> f (get rs1))
  | _ -> None

let align_mask_load = function LB | LBU -> 0 | LH | LHU -> 1 | LW -> 3
let align_mask_store = function SB -> 0 | SH -> 1 | SW -> 3

let raw_load bus = function
  | LB -> fun addr -> Bits.sext ~width:8 (Bus.read8 bus addr)
  | LBU -> Bus.read8 bus
  | LH -> fun addr -> Bits.sext ~width:16 (Bus.read16 bus addr)
  | LHU -> Bus.read16 bus
  | LW -> Bus.read32 bus

let raw_store bus = function
  | SB -> Bus.write8 bus
  | SH -> Bus.write16 bus
  | SW -> Bus.write32 bus

let compile t (path : Tb_cache.entry array) =
  let sx = t.sx in
  let st = sx.sx_state in
  let bus = sx.sx_bus in
  let pending = sx.sx_pending in
  let dev_limit = sx.sx_dev_limit in
  let hazard = sx.sx_timing.Timing.load_use_hazard in
  let get r = Arch_state.get_reg st r in
  let set r v = Arch_state.set_reg st r v in
  let dead = ref false in
  let nb = Array.length path in
  (* -- flatten the block path into one instruction stream -- *)
  let units =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun bi (e : Tb_cache.entry) ->
              let n = Array.length e.Tb_cache.instrs in
              Array.mapi
                (fun ui (pc, size, instr) ->
                  let uterm =
                    if ui < n - 1 then None
                    else if bi = nb - 1 then Some Final
                    else edge_to e path.(bi + 1).Tb_cache.block_pc
                  in
                  { upc = pc; usize = size; uin = instr; uterm })
                e.Tb_cache.instrs)
            path))
  in
  let m = Array.length units in
  (* -- fusion pass: mark unit i as consuming unit i+1.  Constant
     folds only swallow straight-line seconds (a terminal needs its
     boundary checks); guard fusion swallows a non-final branch
     terminal, whose boundary the fused closure re-emits. -- *)
  let paired = Array.make m false in
  let consumed = Array.make m false in
  let straight u = match u.uterm with None -> true | Some _ -> false in
  let guardable u =
    match u.uterm with
    | Some (Uncond _ | Jalr_to _ | Br_to _) -> true
    | Some Final | None -> false
  in
  let i = ref 0 in
  while !i < m - 1 do
    let a = units.(!i) and b = units.(!i + 1) in
    let fuse =
      (not consumed.(!i))
      && straight a  (* the first of a pair is never a terminal *)
      &&
      match (const_of ~pc:a.upc a.uin, dest_of a.uin, b.uin) with
      (* lui/auipc rd, hi ; addi rd2, rd, lo  ->  constant store(s) *)
      | Some _, rd, Op_imm (ADDI, _, rs1, _)
        when rd > 0 && rs1 = rd && straight b ->
          true
      (* lui/auipc rd, hi ; load/store off(rd)  ->  constant address *)
      | Some v, rd, Load (op, _, base, imm)
        when rd > 0 && base = rd && straight b
             && Bits.add v (Bits.of_signed imm) land align_mask_load op = 0 ->
          true
      | Some v, rd, Store (op, _, base, imm)
        when rd > 0 && base = rd && straight b
             && Bits.add v (Bits.of_signed imm) land align_mask_store op = 0 ->
          true
      (* alu ; beq/bne/…  ->  compute+compare+guard in one µop *)
      | _, rd, Branch _ when rd >= 0 && guardable b -> (
          match alu_value ~pc:a.upc a.uin st with
          | Some _ -> true
          | None -> false)
      | _ -> false
    in
    if fuse then begin
      paired.(!i) <- true;
      consumed.(!i + 1) <- true;
      i := !i + 2
    end
    else incr i
  done;
  (* -- forward static accounting --
     [stall.(i)]: load-use stall charged when unit i (or the first half
     of pair i) issues, 0 for i = 0 where the window crosses the trace
     entry and is resolved dynamically against the machine's mask.
     [cost.(i)]: cycles of unit i on the trace ("expected") path.
     A "sync point" consumes the accumulated unsynced cycles into a
     static [pending] add so the batched clock is exact wherever it can
     be observed: before any load/store body (device reads of mtime),
     at every block boundary (interrupt sampling), and before the final
     terminal. *)
  let is_mem u = match u.uin with Load _ | Store _ -> true | _ -> false in
  let cost = Array.make m 0 in
  let stall = Array.make m 0 in
  for k = 0 to m - 1 do
    let u = units.(k) in
    let cn, ct = Timing.costs sx.sx_timing u.uin in
    cost.(k) <-
      (match u.uterm with
      | Some (Br_to (expected, _)) -> if expected then ct else cn
      | Some Final -> 0  (* charged dynamically by the final body *)
      | _ -> cn);
    if k > 0 && hazard > 0 && not consumed.(k) then begin
      (* find the previous retired unit (last of the previous item) *)
      let p = k - 1 in
      let prev = units.(p) in
      if
        S4e_isa.Instr.load_dest_mask prev.uin
        land S4e_isa.Instr.source_mask u.uin
        <> 0
      then stall.(k) <- hazard
    end
  done;
  (* retired-before, unsynced-cycles-before for each unit *)
  let r_before = Array.make (m + 1) 0 in
  let csync_before = Array.make (m + 1) 0 in
  let racc = ref 0 and cacc = ref 0 in
  for k = 0 to m - 1 do
    let u = units.(k) in
    let first_of_item = not consumed.(k) in
    (* a pair syncs like its second (memory) half; treat the item's
       sync point as occurring at the memory unit itself *)
    if (is_mem u || u.uterm = Some Final) && first_of_item && not paired.(k)
    then begin
      r_before.(k) <- !racc;
      csync_before.(k) <- !cacc;
      cacc := 0
    end
    else if consumed.(k) && is_mem u then begin
      (* memory second-half of a pair: sync before the pair's access,
         with the first half's cost already accumulated *)
      r_before.(k) <- !racc;
      csync_before.(k) <- !cacc;
      cacc := 0
    end
    else begin
      r_before.(k) <- !racc;
      csync_before.(k) <- !cacc
    end;
    racc := !racc + 1;
    cacc := !cacc + cost.(k) + stall.(k);
    (* a guarded boundary syncs everything accumulated so far
       (interrupt sampling needs the batched clock exact), so the next
       block starts a fresh accumulation *)
    (match u.uterm with
    | Some (Uncond _ | Jalr_to _ | Br_to _) -> cacc := 0
    | Some Final | None -> ())
  done;
  r_before.(m) <- !racc;
  csync_before.(m) <- !cacc;
  let total_instrs = m in
  (* -- closure construction, back to front -- *)
  let llm_of u = if hazard > 0 then S4e_isa.Instr.load_dest_mask u.uin else 0 in
  (* Side exit: sync [add] leftover cycles, apply the batch, credit
     [retire] guest instructions, restore the hazard window, land on
     [pc] (when [Some]), and record the partial execution. *)
  let exit_state ~add ~retire ~llm ~pc () =
    if add <> 0 then pending := !pending + add;
    sx.sx_flush ();
    sx.sx_retire retire;
    sx.sx_set_llm llm;
    (match pc with Some target -> st.pc <- target | None -> ());
    t.instrs_in_traces <- t.instrs_in_traces + retire
  in
  (* Boundary between constituent blocks: the batched clock is already
     exact here (terminal cost synced by the caller); check trace
     liveness, then sample interrupts exactly as the dispatch loop
     would (writing mip), bailing with architecturally complete state
     if one is deliverable. *)
  let boundary ~retire ~llm ~next_pc k_next =
    let bail_dead = exit_state ~add:0 ~retire ~llm ~pc:(Some next_pc) in
    let bail_irq = exit_state ~add:0 ~retire ~llm ~pc:(Some next_pc) in
    fun () ->
      if !dead then begin
        t.bails_dead <- t.bails_dead + 1;
        bail_dead ()
      end
      else if sx.sx_irq () then begin
        t.bails_irq <- t.bails_irq + 1;
        bail_irq ()
      end
      else k_next ()
  in
  let trap_exit ~pc ~pred cause =
    t.bails_trap <- t.bails_trap + 1;
    t.instrs_in_traces <- t.instrs_in_traces + pred + 1;
    sx.sx_trap cause pc pred
  in
  (* Store-side exit latch: after any store the syscon may have latched
     an exit code.  Mirrors the block engine's per-µop [check_exit];
     [add] is the store's own cycle charge, which the block engine
     batches before its exit check fires. *)
  let store_exit_check ~add ~retire ~llm ~next_pc k_next () =
    if !(sx.sx_exit_dirty) then begin
      match sx.sx_exit_code () with
      | Some code ->
          exit_state ~add ~retire ~llm ~pc:(Some next_pc) ();
          sx.sx_raise_exited code
      | None ->
          sx.sx_exit_dirty := false;
          k_next ()
    end
    else k_next ()
  in
  (* Compile one item (unit k, possibly consuming k+1) given the
     continuation for the next item.  [build] is memoized: a fused
     compare+branch builds the suffix both as its fallthrough
     continuation and via the pair dispatcher's eager argument, so an
     uncached build would go exponential in the number of fused guards
     (unrolled loop traces hit milliseconds of compile time). *)
  let memo : (unit -> unit) option array = Array.make (m + 1) None in
  let rec build k : unit -> unit =
    match memo.(k) with
    | Some f -> f
    | None ->
        let f = build_uncached k in
        memo.(k) <- Some f;
        f
  and build_uncached k : unit -> unit =
    if k >= m then begin
      (* full completion: everything is credited by the final terminal.
         The hazard window reopens from the final unit (a cut block can
         end in a load). *)
      let retire = total_instrs in
      let final_llm = llm_of units.(m - 1) in
      fun () ->
        sx.sx_flush ();
        sx.sx_retire retire;
        sx.sx_set_llm final_llm;
        t.completions <- t.completions + 1;
        t.instrs_in_traces <- t.instrs_in_traces + retire
    end
    else begin
      let u = units.(k) in
      let is_pair = paired.(k) in
      let k' = if is_pair then k + 2 else k + 1 in
      match u.uterm with
      | Some Final -> build_final k
      | Some edge when not is_pair -> build_terminal k u edge
      | _ ->
          if is_pair then build_pair k (build k')
          else build_straight k u (build k')
    end
  (* ---- straight-line single instructions ---- *)
  and build_straight k u next =
    let retire_here = r_before.(k) in
    match u.uin with
    | Lui (rd, imm20) ->
        let v = Bits.mask32 (imm20 lsl 12) in
        fun () ->
          set rd v;
          next ()
    | Auipc (rd, imm20) ->
        let v = Bits.add u.upc (imm20 lsl 12) in
        fun () ->
          set rd v;
          next ()
    | Op_imm (op, rd, rs1, imm) ->
        let f = Exec.imm_fn op in
        let b = Bits.of_signed imm in
        fun () ->
          set rd (f (get rs1) b);
          next ()
    | Shift_imm (op, rd, rs1, sh) ->
        let f = Exec.shift_fn op in
        fun () ->
          set rd (f (get rs1) sh);
          next ()
    | Op (op, rd, rs1, rs2) ->
        let f = Exec.alu_fn op in
        fun () ->
          set rd (f (get rs1) (get rs2));
          next ()
    | Unary (op, rd, rs1) ->
        let f = Exec.unary_fn op in
        fun () ->
          set rd (f (get rs1));
          next ()
    | Load (op, rd, base, imm) ->
        let b = Bits.of_signed imm in
        let amask = align_mask_load op in
        let read = raw_load bus op in
        let pre = csync_before.(k) in
        let trap = trap_exit ~pc:u.upc ~pred:retire_here in
        let smask = S4e_isa.Instr.source_mask u.uin in
        if k = 0 && hazard > 0 && smask <> 0 then
          (* the load-use window crossing the trace entry resolves
             against the machine's live mask; the stall joins the batch
             after the access (and never on the trap path), exactly as
             the block engine orders it *)
          fun () ->
            let stl = if sx.sx_get_llm () land smask <> 0 then hazard else 0 in
            let addr = Bits.add (get base) b in
            if addr < dev_limit then sx.sx_flush ();
            if amask <> 0 && addr land amask <> 0 then
              trap (Trap.Misaligned_load addr)
            else begin
              set rd (read addr);
              if stl <> 0 then pending := !pending + stl;
              next ()
            end
        else fun () ->
          if pre <> 0 then pending := !pending + pre;
          let addr = Bits.add (get base) b in
          if addr < dev_limit then sx.sx_flush ();
          if amask <> 0 && addr land amask <> 0 then
            trap (Trap.Misaligned_load addr)
          else begin
            set rd (read addr);
            next ()
          end
    | Store (op, src, base, imm) ->
        let b = Bits.of_signed imm in
        let amask = align_mask_store op in
        let write = raw_store bus op in
        let pre = csync_before.(k) in
        let trap = trap_exit ~pc:u.upc ~pred:retire_here in
        let next_pc = Bits.mask32 (u.upc + u.usize) in
        let checked =
          store_exit_check
            ~add:(cost.(k) + stall.(k))
            ~retire:(retire_here + 1) ~llm:0 ~next_pc next
        in
        let smask = S4e_isa.Instr.source_mask u.uin in
        if k = 0 && hazard > 0 && smask <> 0 then
          fun () ->
            let stl = if sx.sx_get_llm () land smask <> 0 then hazard else 0 in
            let addr = Bits.add (get base) b in
            if addr < dev_limit then sx.sx_flush ();
            if amask <> 0 && addr land amask <> 0 then
              trap (Trap.Misaligned_store addr)
            else begin
              write addr (get src);
              sx.sx_notify_store addr;
              if stl <> 0 then pending := !pending + stl;
              checked ()
            end
        else fun () ->
          if pre <> 0 then pending := !pending + pre;
          let addr = Bits.add (get base) b in
          if addr < dev_limit then sx.sx_flush ();
          if amask <> 0 && addr land amask <> 0 then
            trap (Trap.Misaligned_store addr)
          else begin
            write addr (get src);
            sx.sx_notify_store addr;
            checked ()
          end
    | _ -> assert false
  (* ---- fused pairs ---- *)
  and build_pair k next =
    let a = units.(k) and b = units.(k + 1) in
    let retire_here = r_before.(k) in
    let rd = dest_of a.uin in
    match (const_of ~pc:a.upc a.uin, b.uin) with
    | Some v1, Op_imm (ADDI, rd2, _, imm) ->
        (* li / la: both destinations become constant stores *)
        let v2 = Bits.add v1 (Bits.of_signed imm) in
        if rd2 = rd then fun () ->
          set rd2 v2;
          next ()
        else fun () ->
          set rd v1;
          set rd2 v2;
          next ()
    | Some v1, Load (op, rd2, _, imm) ->
        let addr = Bits.add v1 (Bits.of_signed imm) in
        let read = raw_load bus op in
        let pre = csync_before.(k + 1) in
        if addr < dev_limit then
          fun () ->
            if pre <> 0 then pending := !pending + pre;
            set rd v1;
            sx.sx_flush ();
            set rd2 (read addr);
            next ()
        else fun () ->
          if pre <> 0 then pending := !pending + pre;
          set rd v1;
          set rd2 (read addr);
          next ()
    | Some v1, Store (op, src, _, imm) ->
        let addr = Bits.add v1 (Bits.of_signed imm) in
        let write = raw_store bus op in
        let pre = csync_before.(k + 1) in
        let sval () = if src = rd then v1 else get src in
        let next_pc = Bits.mask32 (b.upc + b.usize) in
        let checked =
          store_exit_check ~add:cost.(k + 1) ~retire:(retire_here + 2) ~llm:0
            ~next_pc next
        in
        let flush_dev = addr < dev_limit in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          set rd v1;
          if flush_dev then sx.sx_flush ();
          write addr (sval ());
          sx.sx_notify_store addr;
          checked ()
    | _, Branch (op, brs1, brs2, _) -> (
        (* alu + conditional terminal: the computed value feeds the
           comparison through an OCaml local when the branch reads it *)
        let av =
          match alu_value ~pc:a.upc a.uin st with
          | Some f -> f
          | None -> assert false
        in
        let cond = Exec.branch_fn op in
        (* x0 never forwards the computed value: reads of it stay 0 *)
        let u1 = rd <> 0 && brs1 = rd and u2 = rd <> 0 && brs2 = rd in
        match b.uterm with
        | Some (Br_to (expected, other)) ->
            let k_cont = build_guard_cont (k + 1) b in
            let bail =
              guard_bail (k + 1) b ~other ~llm:0 ~retire:(r_before.(k) + 2)
            in
            fun () ->
              let v = av () in
              set rd v;
              if
                cond (if u1 then v else get brs1) (if u2 then v else get brs2)
                = expected
              then k_cont ()
              else bail ()
        | _ -> assert false)
    | _ -> assert false
  (* continue past a guarded terminal at unit j: sync the boundary
     cycles and run the boundary checks, then the next block *)
  and build_guard_cont j u =
    (* a memory-op terminal (cut block) already synced
       [csync_before.(j)] inside its own body; only its cost remains *)
    let bsync =
      if is_mem u then cost.(j) + stall.(j)
      else csync_before.(j) + cost.(j) + stall.(j)
    in
    let retire = r_before.(j) + 1 in
    let llm = llm_of u in
    let next_pc =
      match u.uterm with
      | Some (Uncond pc) -> pc
      | Some (Jalr_to pc) -> pc
      | Some (Br_to (expected, _other)) ->
          let tpc = u.upc and tsize = u.usize in
          let taken, ft =
            match u.uin with
            | Branch (_, _, _, off) ->
                (Bits.add tpc (Bits.of_signed off), Bits.mask32 (tpc + tsize))
            | _ -> assert false
          in
          if expected then taken else ft
      | _ -> assert false
    in
    let k_next = build (j + 1) in
    let bnd = boundary ~retire ~llm ~next_pc k_next in
    if bsync <> 0 then fun () ->
      pending := !pending + bsync;
      bnd ()
    else bnd
  (* bail when a guarded terminal goes the unexpected way: charge the
     other-direction cost instead of the expected one *)
  and guard_bail j u ~other ~llm ~retire =
    let cn, ct = Timing.costs sx.sx_timing u.uin in
    let bail_cost =
      match u.uterm with
      | Some (Br_to (expected, _)) -> if expected then cn else ct
      | _ -> cn
    in
    let add = csync_before.(j) + bail_cost + stall.(j) in
    let ex = exit_state ~add ~retire ~llm ~pc:(Some other) in
    fun () ->
      t.bails_guard <- t.bails_guard + 1;
      ex ()
  (* ---- guarded (non-final) terminals, unfused ---- *)
  and build_terminal k u edge =
    match (edge, u.uin) with
    | Uncond _, Jal (rd, _) ->
        let link = Bits.mask32 (u.upc + u.usize) in
        let cont = build_guard_cont k u in
        fun () ->
          set rd link;
          cont ()
    | Uncond _, _ ->
        (* straight-line fallthrough into the next block: the terminal
           behaves like any other unit, then the boundary runs *)
        let cont = build_guard_cont k u in
        build_straight k u cont
    | Jalr_to expected, Jalr (rd, rs1, imm) ->
        let b = Bits.of_signed imm in
        let link = Bits.mask32 (u.upc + u.usize) in
        let cont = build_guard_cont k u in
        let retire = r_before.(k) + 1 in
        let add = csync_before.(k) + cost.(k) + stall.(k) in
        let ex = exit_state ~add ~retire ~llm:0 ~pc:None in
        fun () ->
          let target = Bits.add (get rs1) b land lnot 1 in
          set rd link;
          if target = expected then cont ()
          else begin
            t.bails_guard <- t.bails_guard + 1;
            st.pc <- target;
            ex ()
          end
    | Br_to (expected, other), Branch (op, rs1, rs2, _) ->
        let cond = Exec.branch_fn op in
        let cont = build_guard_cont k u in
        let bail =
          guard_bail k u ~other ~llm:0 ~retire:(r_before.(k) + 1)
        in
        fun () ->
          if cond (get rs1) (get rs2) = expected then cont () else bail ()
    | _ -> assert false
  (* ---- the final block's terminal: full per-block semantics ---- *)
  and build_final k =
    let u = units.(k) in
    let pre = csync_before.(k) in
    let cn, ct = Timing.costs sx.sx_timing u.uin in
    let stall_k = stall.(k) in
    let retire_here = r_before.(k) in
    let done_ = build m in
    let charge c =
      pending := !pending + c + stall_k
    in
    match u.uin with
    | Jal (rd, off) ->
        let target = Bits.add u.upc (Bits.of_signed off) in
        let link = Bits.mask32 (u.upc + u.usize) in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          set rd link;
          st.pc <- target;
          charge cn;
          done_ ()
    | Jalr (rd, rs1, imm) ->
        let b = Bits.of_signed imm in
        let link = Bits.mask32 (u.upc + u.usize) in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          let target = Bits.add (get rs1) b land lnot 1 in
          set rd link;
          st.pc <- target;
          charge cn;
          done_ ()
    | Branch (op, rs1, rs2, off) ->
        let cond = Exec.branch_fn op in
        let taken = Bits.add u.upc (Bits.of_signed off) in
        let ft = Bits.mask32 (u.upc + u.usize) in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          if cond (get rs1) (get rs2) then begin
            st.pc <- taken;
            charge ct
          end
          else begin
            st.pc <- ft;
            charge cn
          end;
          done_ ()
    | Lui _ | Auipc _ | Op_imm _ | Shift_imm _ | Op _ | Unary _ ->
        let body = build_straight k u (fun () -> ()) in
        let next_pc = Bits.mask32 (u.upc + u.usize) in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          body ();
          st.pc <- next_pc;
          charge cn;
          done_ ()
    | Load (op, rd, base, imm) ->
        let b = Bits.of_signed imm in
        let amask = align_mask_load op in
        let read = raw_load bus op in
        let trap = trap_exit ~pc:u.upc ~pred:retire_here in
        let next_pc = Bits.mask32 (u.upc + u.usize) in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          let addr = Bits.add (get base) b in
          if addr < dev_limit then sx.sx_flush ();
          if amask <> 0 && addr land amask <> 0 then
            trap (Trap.Misaligned_load addr)
          else begin
            set rd (read addr);
            st.pc <- next_pc;
            charge cn;
            done_ ()
          end
    | Store (op, src, base, imm) ->
        let b = Bits.of_signed imm in
        let amask = align_mask_store op in
        let write = raw_store bus op in
        let trap = trap_exit ~pc:u.upc ~pred:retire_here in
        let next_pc = Bits.mask32 (u.upc + u.usize) in
        let checked =
          store_exit_check ~add:(cn + stall_k) ~retire:(retire_here + 1)
            ~llm:0 ~next_pc
            (fun () ->
              charge cn;
              done_ ())
        in
        fun () ->
          if pre <> 0 then pending := !pending + pre;
          let addr = Bits.add (get base) b in
          if addr < dev_limit then sx.sx_flush ();
          if amask <> 0 && addr land amask <> 0 then
            trap (Trap.Misaligned_store addr)
          else begin
            write addr (get src);
            sx.sx_notify_store addr;
            st.pc <- next_pc;
            checked ()
          end
    | _ -> assert false
  in
  let first = build 0 in
  (* Trace entry: resolve the load-use window that crosses the trace
     entry against the machine's live mask.  A leading memory op
     charges its stall inside its own body (after the access, like the
     block engine); anything else joins the batch up front — the first
     possible observation point is later, so the order is inert. *)
  let s0 = S4e_isa.Instr.source_mask units.(0).uin in
  let body =
    if hazard > 0 && s0 <> 0 && not (is_mem units.(0)) then fun () ->
      if sx.sx_get_llm () land s0 <> 0 then pending := !pending + hazard;
      first ()
    else first
  in
  (dead, body, total_instrs)

(* ---------------- promotion driver ---------------- *)

let unattached (e : Tb_cache.entry) =
  (* attachments hold closures — never compare them structurally *)
  match e.Tb_cache.attach with
  | Tb_cache.No_attachment -> true
  | _ -> false

let promote t (head : Tb_cache.entry) =
  let rec extend rev_path members instrs blocks cur =
    if blocks >= t.max_blocks then List.rev rev_path
    else
      match hot_successor t cur with
      | None -> List.rev rev_path
      | Some dst ->
          let n = Array.length dst.Tb_cache.instrs in
          let revisit = List.memq dst members in
          if
            n = 0
            || instrs + n > t.max_instrs
            || (not (promotable_block dst))
            || ((not revisit) && not (unattached dst))
            || edge_to cur dst.Tb_cache.block_pc = None
          then List.rev rev_path
          else
            extend (dst :: rev_path)
              (if revisit then members else dst :: members)
              (instrs + n) (blocks + 1) dst
  in
  let n0 = Array.length head.Tb_cache.instrs in
  if
    n0 > 0 && n0 <= t.max_instrs
    && promotable_block head
    && unattached head
  then begin
    let path = extend [ head ] [ head ] n0 1 head in
    if List.length path >= 2 then begin
      let parr = Array.of_list path in
      let dead, body, total = compile t parr in
      let members =
        List.fold_left
          (fun acc e -> if List.memq e acc then acc else e :: acc)
          [] path
      in
      let tr =
        { tr_head_pc = head.Tb_cache.block_pc;
          tr_blocks = Array.length parr; tr_instrs = total; tr_dead = dead;
          tr_body = body; tr_members = members }
      in
      head.Tb_cache.attach <- Trace_head tr;
      List.iter
        (fun (e : Tb_cache.entry) ->
          if not (e == head) then e.Tb_cache.attach <- Trace_member tr)
        members;
      t.traces <- tr :: t.traces;
      t.promotions <- t.promotions + 1
    end
  end

let promote_period t = t.promote_period

let maybe_promote t entry =
  match entry.Tb_cache.attach with
  | Tb_cache.No_attachment -> promote t entry
  | _ -> ()

(* ---------------- execution ---------------- *)

let exec t tr =
  t.execs <- t.execs + 1;
  tr.tr_body ()

(* ---------------- stats ---------------- *)

type stats = {
  sb_live : int;
  sb_promotions : int;
  sb_invalidations : int;
  sb_execs : int;
  sb_completions : int;
  sb_instrs : int;
  sb_bail_guard : int;
  sb_bail_irq : int;
  sb_bail_dead : int;
  sb_bail_trap : int;
}

let stats t =
  { sb_live = List.length t.traces;
    sb_promotions = t.promotions;
    sb_invalidations = t.invalidations;
    sb_execs = t.execs;
    sb_completions = t.completions;
    sb_instrs = t.instrs_in_traces;
    sb_bail_guard = t.bails_guard;
    sb_bail_irq = t.bails_irq;
    sb_bail_dead = t.bails_dead;
    sb_bail_trap = t.bails_trap }
