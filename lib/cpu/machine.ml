open S4e_isa
module Bus = S4e_mem.Bus
module Soc = S4e_soc

type word = int

type decoder_kind = Hand_decoder | Decodetree_decoder

type config = {
  isa : Isa_module.t list;
  timing : Timing_model.t;
  use_tb_cache : bool;
  decoder : decoder_kind;
  lower_blocks : bool;
  chain_blocks : bool;
  mem_tlb : bool;
  superblocks : bool;
      (* promote hot chained paths into cross-block traces; requires
         the lowered+chained engine to do anything *)
  device_plane : bool;
      (* attach the event-driven devices (DMA engine, vnet) and route
         the CLINT deadline through the event wheel; off reverts to the
         four-device platform with direct timer polling *)
  harts : int;
      (* number of harts; 1 keeps the exact pre-SMP execution path *)
  hart_slice : int;
      (* round-robin fuel quantum per hart (SMP only).  Part of the
         machine's deterministic semantics: the same slice yields the
         same interleaving on every engine. *)
}

let default_config =
  { isa = [ Isa_module.I; M; A; F; C; Zicsr; B ];
    timing = Timing_model.default; use_tb_cache = true;
    decoder = Decodetree_decoder; lower_blocks = true; chain_blocks = true;
    mem_tlb = true; superblocks = true; device_plane = true;
    harts = 1; hart_slice = 1024 }

type stop_reason =
  | Exited of int
  | Fatal_trap of Trap.exception_cause * word
  | Out_of_fuel
  | Wfi_halt

let pp_stop_reason fmt = function
  | Exited code -> Format.fprintf fmt "exited with code %d" code
  | Fatal_trap (cause, pc) ->
      Format.fprintf fmt "fatal trap at 0x%08x: %s" pc (Trap.describe cause)
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"
  | Wfi_halt -> Format.pp_print_string fmt "halted in wfi"

(* Address-range data probe, checked on the recording path (where
   effective addresses are materialized).  [wp_hi] is exclusive. *)
type watchpoint = {
  wp_lo : word;
  wp_hi : word;
  wp_read : bool;
  wp_write : bool;
  mutable wp_hits : int;
}

(* One hart's private execution context: architectural state plus the
   translation machinery bound to it.  Lowered µop closures capture
   their [Arch_state.t] at translate time, so translated code is
   hart-bound — each hart gets its own TB cache, lowering context, and
   superblock engine over the shared bus. *)
type hart = {
  hx_id : int;
  hx_state : Arch_state.t;
  hx_tb : Tb_cache.t;
  mutable hx_lower : Lower.ctx;
  mutable hx_sb : Superblock.t option;
  mutable hx_llm : int;
      (* saved load-use hazard window while the hart is descheduled *)
  mutable hx_parked : bool;
      (* parked in WFI (pc already past it); the scheduler wakes the
         hart when an enabled interrupt becomes pending *)
}

type t = {
  (* [state]/[tb]/[lower_ctx]/[sb]/[last_load_mask] alias the current
     hart's fields ([harts.(cur)]); [switch_to] keeps them in sync.  On
     a single-hart machine they are constant, as before the SMP work. *)
  mutable state : Arch_state.t;
  bus : Bus.t;
  uart : Soc.Uart.t;
  clint : Soc.Clint.t;
  gpio : Soc.Gpio.t;
  syscon : Soc.Syscon.t;
  wheel : Soc.Event_wheel.t;
  dma : Soc.Dma.t;
  vnet : Soc.Vnet.t;
  plic : Soc.Plic.t;
  hooks : Hooks.t;
  config : config;
  decode32 : word -> Instr.t option;
  mutable tb : Tb_cache.t;
  mutable last_load_mask : int;
  pending_ticks : int ref;
  seg_idx : int ref;
  seg_base : int ref;
  fuel_left : int ref;
  exit_dirty : bool ref;
  mutable lower_ctx : Lower.ctx;
  mutable sb : Superblock.t option;
      (* superblock trace engine; [None] when disabled by config *)
  harts : hart array;
  mutable cur : int;
      (* index of the hart the alias fields track *)
  mutable rr : int;
      (* round-robin scheduling pointer: next hart to consider.
         Persists across [run] calls so staged-fuel runs interleave
         exactly like uninterrupted ones. *)
  mutable profiler : S4e_obs.Profile.t option;
  mutable recorder : S4e_obs.Flight_recorder.t option;
  mutable watchpoints : watchpoint array;
  mutable watch_trace : S4e_obs.Trace_events.t option;
}

exception Stop of stop_reason

module Sset = Set.Make (String)

let full_isa = [ Isa_module.I; M; A; F; C; Zicsr; B ]

let make_decoder config =
  let is_full =
    List.for_all (fun m -> List.mem m config.isa) full_isa
  in
  let base =
    match config.decoder with
    | Hand_decoder -> Decode.decode
    | Decodetree_decoder ->
        if is_full then Decodetree.decode (Decodetree.rv32 ())
        else
          let allowed = Sset.of_list (Isa_module.universe config.isa) in
          let rows =
            List.filter
              (fun r -> Sset.mem r.Decodetree.name allowed)
              Decodetree.rv32_rows
          in
          Decodetree.decode (Decodetree.compile rows)
  in
  match config.decoder with
  | Decodetree_decoder -> base
  | Hand_decoder ->
      if is_full then base
      else
        let allowed = Sset.of_list (Isa_module.universe config.isa) in
        fun w ->
          match base w with
          | Some i when Sset.mem (Instr.mnemonic i) allowed -> Some i
          | Some _ | None -> None

(* Interrupt pending bits in mip. *)
let msip_bit = 1 lsl 3
let mtip_bit = 1 lsl 7
let meip_bit = 1 lsl 11

(* External-interrupt pending for one hart.  While the guest leaves the
   PLIC unconfigured the wheel's lines feed hart 0's MEIP directly (the
   pre-SMP wiring, preserving single-hart digests); once any source is
   enabled the PLIC owns the routing for every hart. *)
let meip_now t hid =
  t.config.device_plane
  &&
  if Soc.Plic.routed t.plic then Soc.Plic.meip t.plic hid
  else hid = 0 && Soc.Event_wheel.irq_pending t.wheel <> 0

(* Level-sampled mip for an arbitrary hart, valid at block boundaries
   (batched cycles drained). *)
let mip_bits t hid =
  let mip = ref 0 in
  if Soc.Clint.timer_pending ~hart:hid t.clint then mip := !mip lor mtip_bit;
  if Soc.Clint.software_pending ~hart:hid t.clint then
    mip := !mip lor msip_bit;
  if meip_now t hid then mip := !mip lor meip_bit;
  !mip

(* Level-sampled mip from the interrupt sources: the CLINT compares
   (recomputed eagerly — mtimecmp may move in either direction) and the
   wheel's aggregated device lines as MEIP. *)
let compute_mip t = t.state.mip <- mip_bits t t.cur

(* Interrupt sampling point (block boundaries, wfi): consult the
   wheel's single [next_deadline] word, run any due device events —
   after draining batched cycles, so devices observe exact time — then
   recompute mip.  An idle device plane costs one compare here, so the
   whole sample is one pass over the already-loaded CLINT fields
   (batched cycles are always drained before a boundary, making [now]
   the exact mtime). *)
let update_mip t =
  let clint = t.clint in
  let now = Soc.Clint.time clint + !(t.pending_ticks) in
  let mip = ref 0 in
  if t.config.device_plane then begin
    let w = t.wheel in
    if now >= Soc.Event_wheel.next_deadline w then begin
      t.lower_ctx.Lower.lx_flush_time ();
      Soc.Event_wheel.run_due w ~now;
      match t.recorder with
      | Some r ->
          S4e_obs.Flight_recorder.event r S4e_obs.Flight_recorder.Dev
            ~pc:t.state.pc ~info:(Soc.Event_wheel.irq_pending w)
      | None -> ()
    end
    else Soc.Event_wheel.note_idle_skip w;
    if meip_now t t.cur then mip := !mip lor meip_bit
  end;
  if now >= Soc.Clint.timecmp ~hart:t.cur clint then mip := !mip lor mtip_bit;
  if Soc.Clint.software_pending ~hart:t.cur clint then
    mip := !mip lor msip_bit;
  t.state.mip <- !mip

(* Trap entry.  Returns [Some stop] when the trap is fatal (no handler
   installed). *)
let enter_exception t cause pc =
  Hooks.fire_trap t.hooks cause pc;
  (match t.recorder with
  | Some r ->
      S4e_obs.Flight_recorder.event r S4e_obs.Flight_recorder.Trap ~pc
        ~info:(Trap.mcause_of_exception cause)
  | None -> ());
  if t.state.mtvec = 0 then Some (Fatal_trap (cause, pc))
  else begin
    t.state.mepc <- pc;
    t.state.mcause <- Trap.mcause_of_exception cause;
    t.state.mtval <- Trap.tval_of cause;
    Arch_state.set_mpie_bit t.state (Arch_state.mie_bit t.state);
    Arch_state.set_mie_bit t.state false;
    (* trap entry invalidates any LR reservation: the handler's stores
       must not let a later SC pair with a pre-trap LR *)
    t.state.reservation <- None;
    t.state.pc <- t.state.mtvec;
    None
  end

(* ISA letter bits for misa: accurate for restricted configurations
   (the B extension rides as nonstandard, like the pre-SMP constant). *)
let misa_of_isa isa =
  let bit m b = if List.mem m isa then 1 lsl b else 0 in
  0x4000_0000 lor (1 lsl 8) (* RV32I *)
  lor bit Isa_module.M 12 lor bit Isa_module.A 0 lor bit Isa_module.F 5
  lor bit Isa_module.C 2

let create ?(config = default_config) () =
  let nharts = max 1 config.harts in
  let bus = Bus.create () in
  let uart = Soc.Uart.create () in
  let clint = Soc.Clint.create ~harts:nharts () in
  let gpio = Soc.Gpio.create () in
  let syscon = Soc.Syscon.create () in
  let wheel = Soc.Event_wheel.create () in
  let plic = Soc.Plic.create ~harts:nharts () in
  Soc.Plic.set_line_source plic (fun () -> Soc.Event_wheel.irq_pending wheel);
  Bus.attach bus (Soc.Uart.device uart ~base:Soc.Memory_map.uart_base);
  Bus.attach bus (Soc.Clint.device clint ~base:Soc.Memory_map.clint_base);
  Bus.attach bus (Soc.Gpio.device gpio ~base:Soc.Memory_map.gpio_base);
  Bus.attach bus (Soc.Syscon.device syscon ~base:Soc.Memory_map.syscon_base);
  if not config.mem_tlb then Bus.set_tlb_enabled bus false;
  let misa = misa_of_isa config.isa in
  let decode32 = make_decoder config in
  let decode16 =
    if List.mem Isa_module.C config.isa then Some Compressed.decode16
    else None
  in
  let pending_ticks = ref 0 in
  (* Cross-hart store coherence, shared by every store notification
     path (µop closures, generic interpreter, superblocks, DMA): any
     hart's store invalidates translated code on every hart and breaks
     other harts' LR reservations on the written word.  The writing
     hart's own reservation is left to the architectural SC/trap rules,
     which also keeps single-hart behavior bit-identical. *)
  let harts_cell = ref [||] in
  let notify_store_from hid addr =
    let hs = !harts_cell in
    for j = 0 to Array.length hs - 1 do
      let h = Array.unsafe_get hs j in
      Tb_cache.notify_store h.hx_tb addr;
      if j <> hid then
        match h.hx_state.Arch_state.reservation with
        | Some r when r land lnot 3 = addr land lnot 3 ->
            h.hx_state.Arch_state.reservation <- None
        | _ -> ()
    done
  in
  (* DMA masters see virtual time with the lowered engine's batched
     cycles folded in, and invalidate translated code over the exact
     written ranges, so device activity is engine-invisible.  On SMP a
     device write also breaks every hart's reservation in the range (a
     single-hart machine keeps the pre-SMP semantics). *)
  let dev_now () = Soc.Clint.time clint + !pending_ticks in
  let dev_notify addr len =
    let hs = !harts_cell in
    for j = 0 to Array.length hs - 1 do
      let h = Array.unsafe_get hs j in
      Tb_cache.notify_range h.hx_tb addr len;
      if nharts > 1 then
        match h.hx_state.Arch_state.reservation with
        | Some r when r land lnot 3 >= addr land lnot 3 && r < addr + len ->
            h.hx_state.Arch_state.reservation <- None
        | _ -> ()
    done
  in
  let dma =
    Soc.Dma.create ~mem:(Bus.ram bus) ~wheel ~now:dev_now ~notify:dev_notify ()
  in
  let vnet =
    Soc.Vnet.create ~mem:(Bus.ram bus) ~wheel ~now:dev_now ~notify:dev_notify ()
  in
  if config.device_plane then begin
    Bus.attach bus (Soc.Dma.device dma ~base:Soc.Memory_map.dma_base);
    Bus.attach bus (Soc.Vnet.device vnet ~base:Soc.Memory_map.vnet_base);
    Bus.attach bus (Soc.Plic.device plic ~base:Soc.Memory_map.plic_base);
    (* CLINT as a wheel client: a no-op event advertises the MTIMECMP
       deadline so [next_deadline] is the platform's single
       next-interesting-time word (MTIP itself stays level-sampled in
       [compute_mip]).  Re-armed on every MTIMECMP change, including
       reset/restore. *)
    let clint_ev = ref (-1) in
    Soc.Clint.set_on_timecmp clint (fun cmp ->
        if !clint_ev >= 0 then Soc.Event_wheel.cancel wheel !clint_ev;
        clint_ev :=
          (if cmp = max_int then -1
           else Soc.Event_wheel.schedule wheel ~at:cmp (fun _ -> ())))
  end;
  (* Per-block retire accounting for the lowered engine: [seg_idx] is
     the µop index of the running block segment, [seg_base] the index
     up to which instret/fuel have been credited.  Draining both in the
     flush keeps [minstret] exact at every observation point while the
     hot loop carries no per-µop bookkeeping. *)
  let seg_idx = ref 0 in
  let seg_base = ref 0 in
  let fuel_left = ref 0 in
  let exit_dirty = ref false in
  Soc.Syscon.set_notify syscon (fun () -> exit_dirty := true);
  (* One execution context per hart: private Arch_state, TB cache, and
     lowering context (µop closures capture the state they were
     translated against).  The batching refs stay shared — only one
     hart runs at a time and they are drained at every boundary, where
     hart switches happen. *)
  let mk_hart i =
    let state = Arch_state.create ~pc:Soc.Memory_map.ram_base ~hartid:i () in
    state.Arch_state.misa <- misa;
    state.Arch_state.time_source <- (fun () -> Soc.Clint.time clint);
    let tb =
      Tb_cache.create ~decode32 ~decode16 ~fetch32:(Bus.fetch32 bus)
        ~fetch16:(Bus.fetch16 bus) ()
    in
    let notify_store =
      if nharts = 1 then fun addr -> Tb_cache.notify_store tb addr
      else notify_store_from i
    in
    let lower_ctx =
      { Lower.lx_state = state; lx_bus = bus; lx_timing = config.timing;
        lx_flush_time =
          (fun () ->
            let p = !pending_ticks in
            if p <> 0 then begin
              state.Arch_state.cycle <- state.Arch_state.cycle + p;
              Soc.Clint.tick clint p;
              pending_ticks := 0
            end;
            let d = !seg_idx - !seg_base in
            if d > 0 then begin
              state.Arch_state.instret <- state.Arch_state.instret + d;
              fuel_left := !fuel_left - d;
              seg_base := !seg_idx
            end);
        lx_notify_store = notify_store;
        lx_dev_limit = Soc.Memory_map.ram_base }
    in
    { hx_id = i; hx_state = state; hx_tb = tb; hx_lower = lower_ctx;
      hx_sb = None; hx_llm = 0; hx_parked = false }
  in
  let harts = Array.init nharts mk_hart in
  harts_cell := harts;
  let h0 = harts.(0) in
  let m =
    { state = h0.hx_state; bus; uart; clint; gpio; syscon; wheel; dma; vnet;
      plic; hooks = Hooks.create (); config; decode32; tb = h0.hx_tb;
      last_load_mask = 0; pending_ticks; seg_idx; seg_base; fuel_left;
      exit_dirty; lower_ctx = h0.hx_lower; sb = None; harts; cur = 0;
      rr = 0; profiler = None; recorder = None; watchpoints = [||];
      watch_trace = None }
  in
  (* The superblock engine only runs where the lowered+chained engine
     runs (chain-edge heat drives promotion), so don't even install the
     invalidation hooks elsewhere.  Each hart gets its own trace engine
     over its own TB cache; the closures below only execute while their
     hart is current, so the [m.last_load_mask] alias is always
     theirs. *)
  if config.superblocks && config.use_tb_cache && config.lower_blocks then begin
    let timing = config.timing in
    Array.iter
      (fun h ->
        let state = h.hx_state in
        let flush_cycles () =
          let p = !pending_ticks in
          if p <> 0 then begin
            state.Arch_state.cycle <- state.Arch_state.cycle + p;
            Soc.Clint.tick clint p;
            pending_ticks := 0
          end
        in
        let sx =
          { Superblock.sx_state = state; sx_bus = bus; sx_timing = timing;
            sx_pending = pending_ticks; sx_exit_dirty = exit_dirty;
            sx_flush = flush_cycles;
            sx_retire =
              (fun n ->
                state.Arch_state.instret <- state.Arch_state.instret + n;
                fuel_left := !fuel_left - n);
            sx_exit_code = (fun () -> Soc.Syscon.exit_code syscon);
            sx_raise_exited = (fun code -> raise (Stop (Exited code)));
            sx_trap =
              (fun cause pc pred ->
                (* mirror [exec_lowered]'s trap path: flush, credit the
                   already-executed predecessors, enter the exception
                   (fatal traps stop before the trapping instruction
                   retires), charge system cycles, retire it, re-check
                   the exit latch *)
                flush_cycles ();
                m.last_load_mask <- 0;
                state.Arch_state.instret <- state.Arch_state.instret + pred;
                fuel_left := !fuel_left - pred;
                (match enter_exception m cause pc with
                | Some stop -> raise (Stop stop)
                | None ->
                    state.Arch_state.cycle <-
                      state.Arch_state.cycle + timing.Timing_model.system;
                    Soc.Clint.tick clint timing.Timing_model.system);
                state.Arch_state.instret <- state.Arch_state.instret + 1;
                fuel_left := !fuel_left - 1;
                if !exit_dirty then begin
                  match Soc.Syscon.exit_code syscon with
                  | Some code -> raise (Stop (Exited code))
                  | None -> exit_dirty := false
                end);
            sx_irq =
              (fun () ->
                (* the dispatch loop's between-block [update_mip] +
                   deliverability test, with the batched-but-unapplied
                   cycles folded into the timer comparison so the
                   sampled mip matches a per-block flushing run
                   exactly.  When device events fire the trace bails
                   even without a deliverable interrupt: an event may
                   have invalidated a member of the very trace being
                   executed (DMA into code), and only a bail
                   re-establishes exact state and retranslates. *)
                let now = Soc.Clint.time clint + !pending_ticks in
                let fired =
                  config.device_plane
                  && now >= Soc.Event_wheel.next_deadline wheel
                  && begin
                       flush_cycles ();
                       Soc.Event_wheel.run_due wheel ~now;
                       true
                     end
                in
                if config.device_plane && not fired then
                  Soc.Event_wheel.note_idle_skip wheel;
                let mip = ref 0 in
                if now >= Soc.Clint.timecmp ~hart:h.hx_id clint then
                  mip := !mip lor mtip_bit;
                if Soc.Clint.software_pending ~hart:h.hx_id clint then
                  mip := !mip lor msip_bit;
                if meip_now m h.hx_id then mip := !mip lor meip_bit;
                state.Arch_state.mip <- !mip;
                fired
                || Arch_state.mie_bit state
                   && state.Arch_state.mie land !mip <> 0);
            sx_notify_store = h.hx_lower.Lower.lx_notify_store;
            sx_get_llm = (fun () -> m.last_load_mask);
            sx_set_llm = (fun v -> m.last_load_mask <- v);
            sx_dev_limit = Soc.Memory_map.ram_base }
        in
        h.hx_sb <- Some (Superblock.create sx h.hx_tb))
      harts;
    m.sb <- h0.hx_sb
  end;
  m

(* Point the alias fields at hart [i], saving the outgoing hart's
   hazard window.  Only legal at block boundaries with the batching
   refs drained (the scheduler's rotation points). *)
let switch_to t i =
  if i <> t.cur then begin
    t.harts.(t.cur).hx_llm <- t.last_load_mask;
    let h = t.harts.(i) in
    t.cur <- i;
    t.state <- h.hx_state;
    t.tb <- h.hx_tb;
    t.lower_ctx <- h.hx_lower;
    t.sb <- h.hx_sb;
    t.last_load_mask <- h.hx_llm
  end

let set_profiler t p = t.profiler <- p
let profiler t = t.profiler
let set_recorder t r = t.recorder <- r
let recorder t = t.recorder
let set_watchpoints t wps = t.watchpoints <- Array.of_list wps
let watchpoints t = Array.to_list t.watchpoints
let set_watch_trace t tr = t.watch_trace <- tr
let trace_stats t = Option.map Superblock.stats t.sb

let register_metrics ?(prefix = "machine.") t reg =
  let g name f = S4e_obs.Metrics.gauge_int reg (prefix ^ name) f in
  let sum f () = Array.fold_left (fun a h -> a + f h) 0 t.harts in
  g "instret" (sum (fun h -> h.hx_state.Arch_state.instret));
  g "cycles" (sum (fun h -> h.hx_state.Arch_state.cycle));
  g "tb.blocks" (fun () -> (Tb_cache.stats t.tb).Tb_cache.st_blocks);
  g "tb.hits" (fun () -> (Tb_cache.stats t.tb).Tb_cache.st_hits);
  g "tb.misses" (fun () -> (Tb_cache.stats t.tb).Tb_cache.st_misses);
  g "tb.chain_hits" (fun () -> (Tb_cache.stats t.tb).Tb_cache.st_chain_hits);
  g "tb.invalidations" (fun () ->
      (Tb_cache.stats t.tb).Tb_cache.st_invalidations);
  g "mem.tlb_hits" (fun () -> (Bus.tlb_stats t.bus).Bus.tlb_hits);
  g "mem.tlb_misses" (fun () -> (Bus.tlb_stats t.bus).Bus.tlb_misses);
  g "mem.tlb_flushes" (fun () -> (Bus.tlb_stats t.bus).Bus.tlb_flushes);
  g "wheel.fired" (fun () ->
      (Soc.Event_wheel.stats t.wheel).Soc.Event_wheel.ws_fired);
  g "wheel.idle_skips" (fun () ->
      (Soc.Event_wheel.stats t.wheel).Soc.Event_wheel.ws_idle_skips);
  g "wheel.live" (fun () ->
      (Soc.Event_wheel.stats t.wheel).Soc.Event_wheel.ws_live);
  g "dma.bursts" (fun () -> (Soc.Dma.stats t.dma).Soc.Dma.dma_bursts);
  g "dma.bytes" (fun () -> (Soc.Dma.stats t.dma).Soc.Dma.dma_bytes);
  g "vnet.rx_delivered" (fun () ->
      (Soc.Vnet.stats t.vnet).Soc.Vnet.vn_rx_delivered);
  g "vnet.rx_dropped" (fun () ->
      (Soc.Vnet.stats t.vnet).Soc.Vnet.vn_rx_dropped);
  g "vnet.tx_sent" (fun () -> (Soc.Vnet.stats t.vnet).Soc.Vnet.vn_tx_sent);
  match t.sb with
  | Some s ->
      g "sb.traces" (fun () -> (Superblock.stats s).Superblock.sb_live);
      g "sb.promotions" (fun () -> (Superblock.stats s).Superblock.sb_promotions);
      g "sb.invalidations" (fun () ->
          (Superblock.stats s).Superblock.sb_invalidations);
      g "sb.execs" (fun () -> (Superblock.stats s).Superblock.sb_execs);
      g "sb.completions" (fun () ->
          (Superblock.stats s).Superblock.sb_completions);
      g "sb.instrs" (fun () -> (Superblock.stats s).Superblock.sb_instrs)
  | None -> ()

(* Wire telemetry observers into the device plane: queue-depth and
   burst-size histograms plus per-event trace instants.  Single-slot
   closures on the devices — the hot path without observers pays one
   [None] test per completed event, and nothing per guest instruction. *)
let observe_devices ?metrics ?trace t =
  let dma_h, rx_h =
    match metrics with
    | Some reg ->
        ( Some
            (S4e_obs.Metrics.histogram reg "dma.burst_bytes"
               ~bounds:[| 64; 256; 1024; 4096; 16384 |]),
          Some
            (S4e_obs.Metrics.histogram reg "vnet.rx_queue_depth"
               ~bounds:[| 0; 1; 2; 4; 8; 16; 32; 64 |]) )
    | None -> (None, None)
  in
  let emit name bytes depth =
    match trace with
    | Some tr ->
        S4e_obs.Trace_events.instant tr
          ~args:
            [ ("bytes", string_of_int bytes); ("depth", string_of_int depth) ]
          ~name ~cat:"device" ~tid:0 ()
    | None -> ()
  in
  if metrics = None && trace = None then begin
    Soc.Dma.set_observer t.dma None;
    Soc.Vnet.set_observer t.vnet None
  end
  else begin
    Soc.Dma.set_observer t.dma
      (Some
         (fun ~bytes ~depth ->
           (match dma_h with
           | Some h -> S4e_obs.Metrics.observe h bytes
           | None -> ());
           emit "dma.burst" bytes depth));
    Soc.Vnet.set_observer t.vnet
      (Some
         (fun ~kind ~bytes ~depth ->
           (match rx_h with
           | Some h when kind <> "tx" -> S4e_obs.Metrics.observe h depth
           | _ -> ());
           emit ("vnet." ^ kind) bytes depth))
  end

let set_uart_sink t sink = Soc.Uart.set_sink t.uart sink

let reset t ~pc =
  (* every hart restarts at the entry point; SMP guests branch on
     mhartid (there is no boot hand-off protocol in this platform) *)
  Array.iter
    (fun h ->
      Arch_state.reset h.hx_state ~pc;
      h.hx_llm <- 0;
      h.hx_parked <- false)
    t.harts;
  switch_to t 0;
  t.rr <- 0;
  (* wheel first: device resets cancel into an already-empty wheel, and
     the CLINT reset re-arms its deadline client through its hook *)
  Soc.Event_wheel.clear t.wheel;
  Soc.Dma.reset t.dma;
  Soc.Vnet.reset t.vnet;
  Soc.Clint.reset t.clint;
  Soc.Plic.reset t.plic;
  Soc.Syscon.reset t.syscon;
  Soc.Uart.clear_output t.uart;
  t.last_load_mask <- 0;
  t.pending_ticks := 0;
  t.seg_idx := 0;
  t.seg_base := 0;
  t.exit_dirty := false

let enter_interrupt t irq =
  (match t.recorder with
  | Some r ->
      S4e_obs.Flight_recorder.event r S4e_obs.Flight_recorder.Irq
        ~pc:t.state.pc ~info:(Trap.mcause_of_interrupt irq)
  | None -> ());
  t.state.mepc <- t.state.pc;
  t.state.mcause <- Trap.mcause_of_interrupt irq;
  t.state.mtval <- 0;
  Arch_state.set_mpie_bit t.state (Arch_state.mie_bit t.state);
  Arch_state.set_mie_bit t.state false;
  (* interrupt entry invalidates any LR reservation, like a trap *)
  t.state.reservation <- None;
  t.state.pc <- t.state.mtvec

(* Priority order per the privileged spec: external, software, timer. *)
let pending_interrupt t =
  if not (Arch_state.mie_bit t.state) then None
  else
    let active = t.state.mie land t.state.mip in
    if active = 0 then None
    else if active land meip_bit <> 0 then Some Trap.External
    else if active land msip_bit <> 0 then Some Trap.Software
    else Some Trap.Timer

(* Deterministic cap on WFI event fast-forwarding: a device plane that
   keeps generating non-waking events (e.g. a traffic generator with
   interrupts masked) must not spin here forever. *)
let wfi_event_budget = 65536

(* WFI: wake if an interrupt can arrive; fast-forward virtual time to
   the next event-wheel deadline (which includes the CLINT MTIMECMP via
   its wheel client) until an enabled interrupt becomes pending.  With
   the device plane off this degrades to the classic timer skip.

   On an SMP machine time must NOT be fast-forwarded while other harts
   can still run — the hart parks instead (pc already past the wfi) and
   the scheduler wakes it when an enabled interrupt (e.g. a cross-hart
   MSIP IPI) becomes pending, fast-forwarding only once every hart is
   parked. *)
let wfi_resume t =
  if Array.length t.harts > 1 then begin
    update_mip t;
    t.state.mie land t.state.mip <> 0
  end
  else begin
  update_mip t;
  if t.state.mie land t.state.mip <> 0 then true
  else if not t.config.device_plane then
    if t.state.mie land mtip_bit <> 0 then begin
      let now = Soc.Clint.time t.clint in
      let cmp = Soc.Clint.timecmp t.clint in
      if cmp = max_int then false
      else begin
        if cmp > now then Soc.Clint.tick t.clint (cmp - now);
        update_mip t;
        true
      end
    end
    else false
  else begin
    let budget = ref wfi_event_budget in
    let woken = ref false and give_up = ref false in
    while (not !woken) && not !give_up do
      let next = Soc.Event_wheel.next_deadline t.wheel in
      if next = max_int || !budget <= 0 then give_up := true
      else begin
        decr budget;
        let now = Soc.Clint.time t.clint in
        if next > now then Soc.Clint.tick t.clint (next - now);
        Soc.Event_wheel.run_due t.wheel ~now:(Soc.Clint.time t.clint);
        compute_mip t;
        if t.state.mie land t.state.mip <> 0 then woken := true
      end
    done;
    !woken
  end
  end

let hart_count t = Array.length t.harts

(* Aggregates over all harts (the sum is the single hart's counter on
   a one-hart machine). *)
let instret t =
  Array.fold_left (fun a h -> a + h.hx_state.Arch_state.instret) 0 t.harts

let cycles t =
  Array.fold_left (fun a h -> a + h.hx_state.Arch_state.cycle) 0 t.harts

let uart_output t = Soc.Uart.output t.uart

let load_word t addr w =
  S4e_mem.Sparse_mem.write32 (Bus.ram t.bus) addr w;
  Array.iter (fun h -> Tb_cache.notify_store h.hx_tb addr) t.harts

let load_string t addr s =
  S4e_mem.Sparse_mem.load_bytes (Bus.ram t.bus) addr s;
  Array.iter (fun h -> Tb_cache.flush h.hx_tb) t.harts

let misaligned_pc t pc =
  if List.mem Isa_module.C t.config.isa then pc land 1 <> 0
  else pc land 3 <> 0

(* Execute at most [fuel] instructions on the CURRENT hart.  This is
   the whole pre-SMP [run] — a single-hart machine calls it directly
   with the full fuel, so that path is unchanged; the SMP scheduler
   below feeds it one slice at a time. *)
let run_slice t ~fuel =
  let state = t.state in
  let timing = t.config.timing in
  let compressed = List.mem Isa_module.C t.config.isa in
  let remaining = t.fuel_left in
  remaining := fuel;
  let exit_dirty = t.exit_dirty in
  let pending = t.pending_ticks in
  (* drains batched cycles AND the segment's uncredited instret/fuel *)
  let flush_time = t.lower_ctx.Lower.lx_flush_time in
  (* per-hart closure: invalidates every hart's translated code and
     breaks other harts' reservations (plain single-TB notify on a
     one-hart machine) *)
  let notify_store = t.lower_ctx.Lower.lx_notify_store in
  let on_mem ev =
    if ev.Hooks.mem_is_store then notify_store ev.Hooks.mem_addr;
    if Hooks.has_mem t.hooks then Hooks.fire_mem t.hooks ev
  in
  (* Load-use hazard tracking: the destination of the previous
     instruction when it was a load, as a {!Instr.source_mask}-encoded
     bitmask (0 = no hazard window).  Lives on the machine so a run
     split by snapshot/resume charges the same stalls as one
     uninterrupted run. *)
  let hazard = timing.Timing_model.load_use_hazard in
  (* Stop on a pending syscon exit code; the dirty flag is set by the
     device write itself, so the hot path never polls the device. *)
  let check_exit () =
    if !exit_dirty then begin
      match Soc.Syscon.exit_code t.syscon with
      | Some code -> raise (Stop (Exited code))
      | None -> exit_dirty := false
    end
  in
  (* Hoisted like the profiler: an unrecorded run pays one pointer test
     per block dispatch (and none at all on the superblock path). *)
  let rcd = t.recorder in
  (* Recorder scratch for the pre-execution capture of a memory access:
     [Exec] and the µop closures compute effective addresses
     internally, and a load can clobber its own base register, so the
     address is recomputed from pre-exec register state.  Plain refs —
     recording is single-threaded with execution. *)
  let rec_addr = ref (-1) and rec_width = ref 0 in
  let rec_value = ref 0 and rec_store = ref false in
  let pre_mem instr =
    let regs = state.Arch_state.regs in
    let ea base imm = S4e_bits.Bits.mask32 (regs.(base) + imm) in
    match instr with
    | Instr.Load (op, _, base, imm) ->
        rec_addr := ea base imm;
        rec_width := (match op with LB | LBU -> 1 | LH | LHU -> 2 | LW -> 4);
        rec_store := false;
        rec_value := 0
    | Instr.Store (op, src, base, imm) ->
        let w = match op with Instr.SB -> 1 | SH -> 2 | SW -> 4 in
        rec_addr := ea base imm;
        rec_width := w;
        rec_store := true;
        rec_value :=
          (if w = 4 then regs.(src) else regs.(src) land ((1 lsl (w * 8)) - 1))
    | Instr.Flw (_, base, imm) ->
        rec_addr := ea base imm;
        rec_width := 4;
        rec_store := false;
        rec_value := 0
    | Instr.Fsw (fsrc, base, imm) ->
        rec_addr := ea base imm;
        rec_width := 4;
        rec_store := true;
        rec_value := state.Arch_state.fregs.(fsrc)
    | Instr.Lr (_, rs1) ->
        rec_addr := regs.(rs1);
        rec_width := 4;
        rec_store := false;
        rec_value := 0
    | Instr.Sc (_, src, rs1) | Instr.Amo (_, _, src, rs1) ->
        rec_addr := regs.(rs1);
        rec_width := 4;
        rec_store := true;
        rec_value := regs.(src)
    | _ ->
        rec_addr := -1;
        rec_width := 0;
        rec_store := false;
        rec_value := 0
  in
  (* The recorded opcode word re-encodes the AST (compressed forms
     expand to their 32-bit equivalent); never allowed to throw on the
     recording path. *)
  let encode_word instr =
    match Encode.encode instr with w -> w | exception _ -> 0
  in
  let note_retire r pc instr =
    let op = encode_word instr in
    let rd, rd_val =
      match Instr.destination instr with
      | Some d -> (d, state.Arch_state.regs.(d))
      | None -> (
          match Instr.fp_destination instr with
          | Some f -> (32 + f, state.Arch_state.fregs.(f))
          | None -> (-1, 0))
    in
    let addr = !rec_addr and width = !rec_width and store = !rec_store in
    (* the datum of a load is its post-extension writeback *)
    let value = if addr >= 0 && (not store) && rd >= 0 then rd_val
                else !rec_value in
    S4e_obs.Flight_recorder.retire r ~pc ~op ~rd ~rd_val ~addr ~width ~value
      ~store;
    let wps = t.watchpoints in
    if addr >= 0 && Array.length wps > 0 then
      for k = 0 to Array.length wps - 1 do
        let w = Array.unsafe_get wps k in
        if
          addr < w.wp_hi
          && addr + width > w.wp_lo
          && (if store then w.wp_write else w.wp_read)
        then begin
          w.wp_hits <- w.wp_hits + 1;
          S4e_obs.Flight_recorder.watch_hit r ~pc ~op ~addr ~width ~value
            ~store;
          match t.watch_trace with
          | Some tr ->
              S4e_obs.Trace_events.instant tr
                ~args:
                  [ ("pc", Printf.sprintf "0x%08x" pc);
                    ("addr", Printf.sprintf "0x%08x" addr);
                    ("value", Printf.sprintf "0x%x" value);
                    ("dir", if store then "w" else "r") ]
                ~name:"watchpoint" ~cat:"watch" ~tid:0 ()
          | None -> ()
        end
      done
  in
  (* Execute one decoded instruction (generic interpreter); raises Stop
     on exit conditions. *)
  let exec_one ipc size instr =
    if Hooks.has_insn t.hooks then Hooks.fire_insn t.hooks ipc instr;
    (match instr with
    | Instr.Fence_i -> Tb_cache.flush t.tb
    | _ -> ());
    (try
       let stall =
         if hazard > 0
            && t.last_load_mask land Instr.source_mask instr <> 0
         then hazard
         else 0
       in
       (match rcd with Some _ -> pre_mem instr | None -> ());
       let taken = Exec.execute ~on_mem state t.bus ~size instr in
       if hazard > 0 then t.last_load_mask <- Instr.load_dest_mask instr;
       let c = Timing_model.cost timing instr ~taken + stall in
       state.cycle <- state.cycle + c;
       Soc.Clint.tick t.clint c;
       (match rcd with Some r -> note_retire r ipc instr | None -> ())
     with Trap.Exn cause -> (
       t.last_load_mask <- 0;
       match enter_exception t cause ipc with
       | Some stop -> raise (Stop stop)
       | None ->
           state.cycle <- state.cycle + timing.Timing_model.system;
           Soc.Clint.tick t.clint timing.Timing_model.system));
    state.instret <- state.instret + 1;
    decr remaining;
    check_exit ();
    match instr with
    | Instr.Wfi ->
        if not (wfi_resume t) then raise (Stop Wfi_halt)
    | _ -> ()
  in
  (* Execute a lowered (µop) block: no hook dispatch, no AST
     re-interpretation, cycle/CLINT updates batched until the block
     boundary (or until a µop that observes time flushes them).  The
     batch never crosses an interrupt-sampling point — blocks are where
     interrupts are sampled — so it can never defer a timer past the
     latency the generic path already has. *)
  let exec_lowered (entry : Tb_cache.entry) n =
    let uops =
      match entry.Tb_cache.lowered with
      | Some u -> u
      | None ->
          let u = Lower.lower_entry t.lower_ctx entry in
          entry.Tb_cache.lowered <- Some u;
          u
    in
    let i = t.seg_idx and base = t.seg_base in
    i := 0;
    base := 0;
    (* [lim] caps the block at the remaining fuel.  Invariant: the
       credited position plus remaining fuel ([!base + !remaining]) is
       constant across flushes and trap credits, so [lim] never needs
       recomputation. *)
    let lim = if n <= !remaining then n else !remaining in
    let quit = ref false in
    (* the exception frame is per resumed segment, not per µop — the
       inner loop is the trap-free hot path and carries no per-µop
       instret/fuel bookkeeping (credited by [flush_time]) *)
    try
      while (not !quit) && !i < lim do
        (try
           while !i < lim do
             let u = Array.unsafe_get uops !i in
             if u.Tb_cache.u_fence_i then Tb_cache.flush t.tb;
             let stall =
               if hazard > 0
                  && t.last_load_mask land u.Tb_cache.u_src_mask <> 0
               then hazard
               else 0
             in
             let c = u.Tb_cache.u_exec () + stall in
             if hazard > 0 then
               t.last_load_mask <- u.Tb_cache.u_load_dest_mask;
             pending := !pending + c;
             incr i;
             check_exit ();
             if u.Tb_cache.u_wfi then begin
               flush_time ();
               if not (wfi_resume t) then raise (Stop Wfi_halt)
             end
           done
         with Trap.Exn cause ->
           let u = Array.unsafe_get uops !i in
           flush_time ();
           t.last_load_mask <- 0;
           (match enter_exception t cause u.Tb_cache.u_pc with
           | Some stop -> raise (Stop stop)
           | None ->
               state.cycle <- state.cycle + timing.Timing_model.system;
               Soc.Clint.tick t.clint timing.Timing_model.system);
           (* the trapping µop retires (manually credited: the flush
              above only covered its predecessors) *)
           state.instret <- state.instret + 1;
           incr i;
           base := !i;
           decr remaining;
           check_exit ();
           (* the generic path only continues a block when the trap
              handler happens to be the next instruction *)
           if
             not
               (!i < lim
               && state.pc = (Array.unsafe_get uops !i).Tb_cache.u_pc)
           then quit := true)
      done;
      flush_time ()
    with e ->
      flush_time ();
      raise e
  in
  (* Recording sibling of [exec_lowered]: identical µop execution, trap
     handling, and batched accounting, plus one recorder append per
     retired µop.  [entry.instrs] is index-parallel to the lowered µop
     array, so the pre/post capture reads the decoded AST without
     touching memory.  Selected per block when a recorder is attached —
     the unarmed hot path above stays byte-identical. *)
  let exec_lowered_rec r (entry : Tb_cache.entry) n =
    let uops =
      match entry.Tb_cache.lowered with
      | Some u -> u
      | None ->
          let u = Lower.lower_entry t.lower_ctx entry in
          entry.Tb_cache.lowered <- Some u;
          u
    in
    let instrs = entry.Tb_cache.instrs in
    let i = t.seg_idx and base = t.seg_base in
    i := 0;
    base := 0;
    let lim = if n <= !remaining then n else !remaining in
    let quit = ref false in
    try
      while (not !quit) && !i < lim do
        (try
           while !i < lim do
             let u = Array.unsafe_get uops !i in
             if u.Tb_cache.u_fence_i then Tb_cache.flush t.tb;
             let stall =
               if hazard > 0
                  && t.last_load_mask land u.Tb_cache.u_src_mask <> 0
               then hazard
               else 0
             in
             let ipc, _, instr = Array.unsafe_get instrs !i in
             pre_mem instr;
             let c = u.Tb_cache.u_exec () + stall in
             if hazard > 0 then
               t.last_load_mask <- u.Tb_cache.u_load_dest_mask;
             pending := !pending + c;
             note_retire r ipc instr;
             incr i;
             check_exit ();
             if u.Tb_cache.u_wfi then begin
               flush_time ();
               if not (wfi_resume t) then raise (Stop Wfi_halt)
             end
           done
         with Trap.Exn cause ->
           let u = Array.unsafe_get uops !i in
           flush_time ();
           t.last_load_mask <- 0;
           (match enter_exception t cause u.Tb_cache.u_pc with
           | Some stop -> raise (Stop stop)
           | None ->
               state.cycle <- state.cycle + timing.Timing_model.system;
               Soc.Clint.tick t.clint timing.Timing_model.system);
           state.instret <- state.instret + 1;
           incr i;
           base := !i;
           decr remaining;
           check_exit ();
           if
             not
               (!i < lim
               && state.pc = (Array.unsafe_get uops !i).Tb_cache.u_pc)
           then quit := true)
      done;
      flush_time ()
    with e ->
      flush_time ();
      raise e
  in
  let decode_single pc =
    let half = Bus.fetch16 t.bus pc in
    if half land 0x3 <> 0x3 then
      if compressed then
        match Compressed.decode16 half with
        | Some i -> Some (2, i)
        | None -> None
      else None
    else
      match t.decode32 (Bus.fetch32 t.bus pc) with
      | Some i -> Some (4, i)
      | None -> None
  in
  (* Generic (decoded-array) block execution; stops early if a trap
     redirected the pc or fuel ran out. *)
  let exec_generic (entry : Tb_cache.entry) n =
    if Hooks.has_block t.hooks then
      Hooks.fire_block t.hooks entry.Tb_cache.block_pc n;
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < n do
      let ipc, size, instr = Array.unsafe_get entry.Tb_cache.instrs !i in
      if state.pc <> ipc then continue := false
      else begin
        exec_one ipc size instr;
        incr i;
        if !remaining <= 0 then continue := false
      end
    done
  in
  let use_tb = t.config.use_tb_cache in
  (* Hoisted per [run] call: hooks cannot appear mid-run when none are
     installed (no user code executes), and a hook that unregisters
     itself mid-run only makes this conservative (we stay on the
     generic path until the next [run]). *)
  let lowered_ok =
    use_tb && t.config.lower_blocks && Hooks.is_empty t.hooks
  in
  (* Hoisted likewise; an unprofiled run pays one pointer test per
     block dispatch and keeps the lowered fast path. *)
  let prof = t.profiler in
  let chained = t.config.chain_blocks in
  (* Superblock traces ride on the unprofiled, unrecorded lowered
     engine only: a profiler needs per-block attribution, a recorder
     per-instruction capture, and hooks (lowered_ok) per-instruction
     visibility.  All fall back transparently. *)
  let sb =
    match (t.sb, prof, rcd) with
    | Some s, None, None when lowered_ok -> Some s
    | _ -> None
  in
  (* Block execution for the non-superblock paths: the lowered engine
     (recording sibling when armed) or the generic interpreter. *)
  let exec_entry entry n =
    if lowered_ok then
      match rcd with
      | Some r -> exec_lowered_rec r entry n
      | None -> exec_lowered entry n
    else exec_generic entry n
  in
  let promote_mask =
    match sb with Some s -> Superblock.promote_period s - 1 | None -> 0
  in
  (* Single-step mode replays the TB path's block-boundary semantics:
     interrupts are sampled only where a translation block would start
     (after control flow / wfi / fence.i / a trap / max_block_len
     instructions / an undecodable word), so runs with
     [use_tb_cache:false] are cycle-identical to cached runs.  A fresh
     [run] call always starts at a boundary, exactly like the TB
     dispatch loop. *)
  let at_boundary = ref true in
  let block_len = ref 0 in
  let prev = ref None in
  (* Traps raised at dispatch (misaligned pc, undecodable word) consume
     fuel like any attempted instruction even though nothing retires: a
     corrupted mtvec pointing at untranslatable memory re-traps
     immediately, and without the charge that loop would never
     terminate.  Shared by every engine config, so fuel consumption
     stays engine-identical. *)
  let fetch_trap_or_stop cause pc =
    decr remaining;
    match enter_exception t cause pc with
    | Some stop -> raise (Stop stop)
    | None -> ()
  in
  try
    while !remaining > 0 do
      if use_tb || !at_boundary then begin
        update_mip t;
        (match pending_interrupt t with
        | Some irq ->
            enter_interrupt t irq;
            t.last_load_mask <- 0
        | None -> ());
        at_boundary := false;
        block_len := 0
      end;
      let pc = state.pc in
      if misaligned_pc t pc then begin
        at_boundary := true;
        fetch_trap_or_stop Trap.Misaligned_fetch pc
      end
      else if use_tb then begin
        let entry =
          if chained then Tb_cache.next t.tb !prev pc
          else Tb_cache.lookup t.tb pc
        in
        prev := Some entry;
        let n = Array.length entry.Tb_cache.instrs in
        if n = 0 then begin
          let word = Bus.fetch32 t.bus pc in
          fetch_trap_or_stop (Trap.Illegal_instruction word) pc
        end
        else begin
          match prof with
          | None -> (
              match sb with
              | Some s when lowered_ok -> (
                  let c = entry.Tb_cache.exec_count + 1 in
                  entry.Tb_cache.exec_count <- c;
                  match entry.Tb_cache.attach with
                  | Superblock.Trace_head tr
                    when (not !(tr.Superblock.tr_dead))
                         && tr.Superblock.tr_instrs <= !remaining
                         && not !exit_dirty ->
                      Superblock.exec s tr;
                      (* the trace left the chain path; don't patch a
                         bogus head -> exit-target link *)
                      prev := None
                  | Tb_cache.No_attachment ->
                      if c land promote_mask = 0 then
                        Superblock.maybe_promote s entry;
                      exec_lowered entry n
                  | _ -> exec_lowered entry n)
              | _ -> exec_entry entry n)
          | Some p ->
              (* Block-granular attribution.  The instret/cycle deltas
                 are exact at every exit from either engine: the lowered
                 path drains its batched counters ([flush_time]) on all
                 paths out of [exec_lowered], including exceptions. *)
              let i0 = state.instret and c0 = state.cycle in
              let note () =
                S4e_obs.Profile.note p ~pc ~bytes:entry.Tb_cache.total_size
                  ~instrs:(state.instret - i0) ~cycles:(state.cycle - c0)
              in
              (try exec_entry entry n
               with e ->
                 note ();
                 raise e);
              note ()
        end
      end
      else begin
        match decode_single pc with
        | None ->
            if !block_len > 0 then
              (* the TB path ends a block just before an undecodable
                 word and re-samples interrupts before trapping *)
              at_boundary := true
            else begin
              let word = Bus.fetch32 t.bus pc in
              at_boundary := true;
              fetch_trap_or_stop (Trap.Illegal_instruction word) pc
            end
        | Some (size, instr) ->
            if Hooks.has_block t.hooks then Hooks.fire_block t.hooks pc 1;
            exec_one pc size instr;
            incr block_len;
            if
              Instr.is_control_flow instr
              || instr = Instr.Wfi || instr = Instr.Fence_i
              || !block_len >= Tb_cache.max_block_len
              || state.pc <> S4e_bits.Bits.mask32 (pc + size)
            then at_boundary := true
      end
    done;
    Soc.Uart.flush_host t.uart;
    Out_of_fuel
  with Stop reason ->
    Soc.Uart.flush_host t.uart;
    reason

(* ---------------- SMP hart scheduler ---------------- *)

(* Is the hart schedulable?  A parked hart re-samples its interrupt
   lines (cheap pure reads — the batching refs are drained between
   slices) and wakes when an enabled interrupt is pending, exactly the
   WFI wake condition.  This is what lets a WFI-parked hart wake on a
   cross-hart MSIP IPI instead of halting. *)
let hart_runnable t h =
  (not h.hx_parked)
  ||
  let bits = mip_bits t h.hx_id in
  h.hx_state.Arch_state.mip <- bits;
  if h.hx_state.Arch_state.mie land bits <> 0 then begin
    h.hx_parked <- false;
    true
  end
  else false

(* Every hart is parked in WFI: fast-forward virtual time — to the
   next event-wheel deadline (device plane), or to the next strictly
   future MTIMECMP — until some hart's wake condition holds.  Bounded
   by the same deterministic budget as the single-hart WFI skip. *)
let advance_all_parked t =
  let budget = ref wfi_event_budget in
  let woken = ref false and give_up = ref false in
  let any_wakeable () =
    let w = ref false in
    Array.iter (fun h -> if hart_runnable t h then w := true) t.harts;
    !w
  in
  while (not !woken) && not !give_up do
    let now = Soc.Clint.time t.clint in
    let next =
      if t.config.device_plane then Soc.Event_wheel.next_deadline t.wheel
      else begin
        let acc = ref max_int in
        for hid = 0 to Array.length t.harts - 1 do
          let c = Soc.Clint.timecmp ~hart:hid t.clint in
          if c > now && c < !acc then acc := c
        done;
        !acc
      end
    in
    if next = max_int || !budget <= 0 then give_up := true
    else begin
      decr budget;
      if next > now then Soc.Clint.tick t.clint (next - now);
      if t.config.device_plane then
        Soc.Event_wheel.run_due t.wheel ~now:(Soc.Clint.time t.clint);
      if any_wakeable () then woken := true
    end
  done;
  !woken

(* Deterministic round-robin over the harts in fuel quanta of
   [config.hart_slice].  Fuel is the unit every engine accounts
   identically (enforced by the differential tests), so the
   interleaving — hence the observable semantics — is a pure function
   of (program, total fuel, slice), independent of the engine. *)
let smp_run t ~fuel =
  let n = Array.length t.harts in
  let slice = max 1 t.config.hart_slice in
  let total = ref fuel in
  let result = ref None in
  while !result = None && !total > 0 do
    let found = ref (-1) in
    let i = ref 0 in
    while !found < 0 && !i < n do
      let idx = (t.rr + !i) mod n in
      if hart_runnable t t.harts.(idx) then found := idx;
      incr i
    done;
    if !found < 0 then begin
      if not (advance_all_parked t) then result := Some Wfi_halt
    end
    else begin
      let idx = !found in
      switch_to t idx;
      let f = if slice < !total then slice else !total in
      (match run_slice t ~fuel:f with
      | Out_of_fuel -> ()
      | Wfi_halt -> t.harts.(idx).hx_parked <- true
      | (Exited _ | Fatal_trap _) as r -> result := Some r);
      let left = !(t.fuel_left) in
      let consumed = f - (if left > 0 then left else 0) in
      total := !total - (if consumed > 0 then consumed else 1);
      t.rr <- (idx + 1) mod n
    end
  done;
  match !result with Some r -> r | None -> Out_of_fuel

let run t ~fuel =
  if Array.length t.harts = 1 then run_slice t ~fuel else smp_run t ~fuel

(* ---------------- snapshot / restore ---------------- *)

type snapshot = {
  snap_states : Arch_state.t array; (* one per hart *)
  snap_llm : int array;
  snap_parked : bool array;
  snap_cur : int;
  snap_rr : int;
  snap_mem : S4e_mem.Sparse_mem.snapshot;
  snap_uart : Soc.Uart.snapshot;
  snap_clint : Soc.Clint.snapshot;
  snap_gpio : Soc.Gpio.snapshot;
  snap_syscon : Soc.Syscon.snapshot;
  snap_dma : Soc.Dma.snapshot;
  snap_vnet : Soc.Vnet.snapshot;
  snap_plic : Soc.Plic.snapshot;
  snap_rec : S4e_obs.Flight_recorder.mark option;
      (* recorder position at capture time; [restore] rewinds an
         attached recorder to it so sequence numbers stay continuous
         across campaign forks *)
}

let snapshot t =
  (* the alias holds the current hart's live hazard window *)
  t.harts.(t.cur).hx_llm <- t.last_load_mask;
  { snap_states = Array.map (fun h -> Arch_state.copy h.hx_state) t.harts;
    snap_llm = Array.map (fun h -> h.hx_llm) t.harts;
    snap_parked = Array.map (fun h -> h.hx_parked) t.harts;
    snap_cur = t.cur;
    snap_rr = t.rr;
    snap_mem = S4e_mem.Sparse_mem.snapshot (Bus.ram t.bus);
    snap_uart = Soc.Uart.snapshot t.uart;
    snap_clint = Soc.Clint.snapshot t.clint;
    snap_gpio = Soc.Gpio.snapshot t.gpio;
    snap_syscon = Soc.Syscon.snapshot t.syscon;
    snap_dma = Soc.Dma.snapshot t.dma;
    snap_vnet = Soc.Vnet.snapshot t.vnet;
    snap_plic = Soc.Plic.snapshot t.plic;
    snap_rec = Option.map S4e_obs.Flight_recorder.mark t.recorder }

let restore t s =
  Array.iteri
    (fun i h ->
      Arch_state.restore h.hx_state s.snap_states.(i);
      h.hx_llm <- s.snap_llm.(i);
      h.hx_parked <- s.snap_parked.(i))
    t.harts;
  switch_to t s.snap_cur;
  t.rr <- s.snap_rr;
  S4e_mem.Sparse_mem.restore (Bus.ram t.bus) s.snap_mem;
  Soc.Uart.restore t.uart s.snap_uart;
  (* the wheel holds closures, which a snapshot cannot capture: clear
     it, then let each client re-arm from its restored register state
     (the CLINT through its MTIMECMP hook, DMA/vnet in [restore]) *)
  Soc.Event_wheel.clear t.wheel;
  Soc.Clint.restore t.clint s.snap_clint;
  Soc.Gpio.restore t.gpio s.snap_gpio;
  Soc.Syscon.restore t.syscon s.snap_syscon;
  Soc.Dma.restore t.dma s.snap_dma;
  Soc.Vnet.restore t.vnet s.snap_vnet;
  Soc.Plic.restore t.plic s.snap_plic;
  t.last_load_mask <- s.snap_llm.(s.snap_cur);
  (match (t.recorder, s.snap_rec) with
  | Some r, Some m -> S4e_obs.Flight_recorder.rewind r m
  | _ -> ());
  t.pending_ticks := 0;
  t.seg_idx := 0;
  t.seg_base := 0;
  t.exit_dirty := Soc.Syscon.exit_code t.syscon <> None;
  (* Restored memory may hold different code than what was translated.
     The bus TLB is already flushed by this point: [Sparse_mem.restore]
     fires the change hook that [Bus.create] installed. *)
  Array.iter (fun h -> Tb_cache.flush h.hx_tb) t.harts

let state_digest ?(include_time = true) ?(include_instret = true) t =
  let b = Buffer.create 1024 in
  let add v =
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  (* Hart 0 first (then the others in index order, below): the byte
     stream for a one-hart machine with an untouched PLIC is exactly
     the pre-SMP serialization, keeping historical digests stable. *)
  let add_hart (st : Arch_state.t) =
    Array.iter add st.Arch_state.regs;
    Array.iter add st.Arch_state.fregs;
    add st.Arch_state.pc;
    add st.Arch_state.mstatus;
    add st.Arch_state.mie;
    add st.Arch_state.mip;
    add st.Arch_state.mtvec;
    add st.Arch_state.mscratch;
    add st.Arch_state.mepc;
    add st.Arch_state.mcause;
    add st.Arch_state.mtval;
    add st.Arch_state.fcsr;
    if include_time then add st.Arch_state.cycle;
    if include_instret then add st.Arch_state.instret;
    match st.Arch_state.reservation with None -> add (-1) | Some a -> add a
  in
  add_hart t.harts.(0).hx_state;
  if include_time then add (Soc.Clint.time t.clint);
  add (Soc.Clint.timecmp t.clint);
  add (if Soc.Clint.software_pending t.clint then 1 else 0);
  for i = 1 to Array.length t.harts - 1 do
    add_hart t.harts.(i).hx_state;
    add (Soc.Clint.timecmp ~hart:i t.clint);
    add (if Soc.Clint.software_pending ~hart:i t.clint then 1 else 0)
  done;
  if Soc.Plic.active t.plic then Buffer.add_string b (Soc.Plic.digest t.plic);
  add (Soc.Gpio.output t.gpio);
  Buffer.add_string b (Soc.Dma.digest ~include_time t.dma);
  Buffer.add_char b ';';
  Buffer.add_string b (Soc.Vnet.digest ~include_time t.vnet);
  Buffer.add_char b ';';
  Buffer.add_string b (Soc.Uart.output t.uart);
  Buffer.add_char b ';';
  Buffer.add_string b (S4e_mem.Sparse_mem.digest (Bus.ram t.bus));
  Digest.string (Buffer.contents b)
