(** Instrumentation hook API — the ecosystem's TCG-plugin-API analogue.

    Analyses (coverage, QTA co-simulation, fault monitors, IO security
    analysis) subscribe to execution events without touching the
    executor.  Hooks are deliberately version-independent: they observe
    the decoded {!S4e_isa.Instr.t} AST and architectural addresses, not
    internal emulator structures, mirroring how QEMU's stable plugin API
    decouples tools from TCG internals.

    Registration returns an id usable with {!unregister}; a hook set
    with no subscribers adds only a null check per event to the hot
    loop. *)

type word = S4e_bits.Bits.word

type mem_event = {
  mem_pc : word;  (** pc of the accessing instruction *)
  mem_addr : word;
  mem_size : int;
  mem_value : word;
  mem_is_store : bool;
}

type t

type id

val create : unit -> t

val on_insn : t -> (word -> S4e_isa.Instr.t -> unit) -> id
(** Called before each instruction executes, with its pc. *)

val on_mem : t -> (mem_event -> unit) -> id
(** Called after each data memory access (not instruction fetches). *)

val on_block : t -> (word -> int -> unit) -> id
(** Called on entry to a translation block with [(pc, instruction_count)].
    When the TB cache is disabled every instruction is its own block. *)

val on_trap : t -> (Trap.exception_cause -> word -> unit) -> id
(** Called when an exception is taken, with the faulting pc. *)

val unregister : t -> id -> unit

val clear : t -> unit

(** {1 Dispatch (used by the machine)} *)

val has_insn : t -> bool
val has_mem : t -> bool
val has_block : t -> bool

val is_empty : t -> bool
(** No subscribers of any kind.  The machine uses this to select the
    lowered (hook-free) translation-block path; any registration makes
    it fall back to the generic path, so new subscribers see every
    subsequent event. *)

val fire_insn : t -> word -> S4e_isa.Instr.t -> unit
val fire_mem : t -> mem_event -> unit
val fire_block : t -> word -> int -> unit
val fire_trap : t -> Trap.exception_cause -> word -> unit
