module Bits = S4e_bits.Bits
module Machine = S4e_cpu.Machine
module Hooks = S4e_cpu.Hooks

type armed = { hook : Hooks.id option }

let flip_code m addr bit =
  let ram = S4e_mem.Bus.ram m.Machine.bus in
  (* bit within the 32-bit word at the (aligned) address *)
  let base = addr land lnot 3 in
  let w = S4e_mem.Sparse_mem.read32 ram base in
  S4e_mem.Sparse_mem.write32 ram base (Bits.flip_bit bit w);
  S4e_cpu.Tb_cache.notify_store m.Machine.tb base;
  (* Writing through [Sparse_mem] mutates page buffers in place, so the
     bus TLB stays content-coherent — but an injector write is exactly
     the kind of behind-the-bus mutation the TLB contract does not
     cover, so flush rather than rely on that implementation detail. *)
  S4e_mem.Bus.tlb_flush m.Machine.bus

let flip_data m addr bit =
  let ram = S4e_mem.Bus.ram m.Machine.bus in
  let b = S4e_mem.Sparse_mem.read8 ram addr in
  S4e_mem.Sparse_mem.write8 ram addr (b lxor (1 lsl (bit land 7)));
  S4e_mem.Bus.tlb_flush m.Machine.bus

let flip_gpr st r bit =
  let v = S4e_cpu.Arch_state.get_reg st r in
  S4e_cpu.Arch_state.set_reg st r (Bits.flip_bit bit v)

let flip_fpr st r bit =
  let v = S4e_cpu.Arch_state.get_freg st r in
  S4e_cpu.Arch_state.set_freg st r (Bits.flip_bit bit v)

(* Reject malformed faults up front: register accessors use unchecked
   array indexing on the hot path, so an out-of-range register from a
   hand-written fault list must fail loudly here rather than corrupt
   the runtime.  The campaign engine catches this (and any other
   per-mutant exception) and classifies the mutant [Errored]. *)
let validate (f : Fault.t) =
  let bad what =
    invalid_arg
      (Printf.sprintf "Injector.arm: %s out of range in %s" what
         (Fault.describe f))
  in
  (match f.Fault.loc with
  | Fault.Gpr (r, b) | Fault.Fpr (r, b) ->
      if r < 0 || r > 31 then bad "register";
      if b < 0 || b > 31 then bad "bit"
  | Fault.Code (a, b) | Fault.Data (a, b) ->
      if a < 0 then bad "address";
      if b < 0 || b > 31 then bad "bit");
  match f.Fault.kind with
  | Fault.Transient n when n <= 0 -> bad "transient time"
  | _ -> ()

let arm (m : Machine.t) (f : Fault.t) =
  validate f;
  let st = m.Machine.state in
  match (f.Fault.loc, f.Fault.kind) with
  | Fault.Code (addr, bit), Fault.Permanent ->
      flip_code m addr bit;
      { hook = None }
  | Fault.Code (addr, bit), Fault.Transient n ->
      let count = ref 0 in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            incr count;
            if !count = n then flip_code m addr bit)
      in
      { hook = Some id }
  | Fault.Data (addr, bit), Fault.Permanent ->
      flip_data m addr bit;
      { hook = None }
  | Fault.Data (addr, bit), Fault.Transient n ->
      let count = ref 0 in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            incr count;
            if !count = n then flip_data m addr bit)
      in
      { hook = Some id }
  | Fault.Gpr (r, bit), Fault.Permanent ->
      let stuck = 1 - Bits.bit bit (S4e_cpu.Arch_state.get_reg st r) in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            S4e_cpu.Arch_state.set_reg st r
              (Bits.set_bit bit (stuck = 1) (S4e_cpu.Arch_state.get_reg st r)))
      in
      { hook = Some id }
  | Fault.Gpr (r, bit), Fault.Transient n ->
      let count = ref 0 in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            incr count;
            if !count = n then flip_gpr st r bit)
      in
      { hook = Some id }
  | Fault.Fpr (r, bit), Fault.Permanent ->
      let stuck = 1 - Bits.bit bit (S4e_cpu.Arch_state.get_freg st r) in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            S4e_cpu.Arch_state.set_freg st r
              (Bits.set_bit bit (stuck = 1) (S4e_cpu.Arch_state.get_freg st r)))
      in
      { hook = Some id }
  | Fault.Fpr (r, bit), Fault.Transient n ->
      let count = ref 0 in
      let id =
        Hooks.on_insn m.Machine.hooks (fun _ _ ->
            incr count;
            if !count = n then flip_fpr st r bit)
      in
      { hook = Some id }

let disarm (m : Machine.t) armed =
  match armed.hook with
  | Some id -> Hooks.unregister m.Machine.hooks id
  | None -> ()
