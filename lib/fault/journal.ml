module Obs = S4e_obs
module Program = S4e_asm.Program

type header = {
  j_seed : int;
  j_total : int;
  j_shard : int * int;
  j_program : string;
}

type record = {
  r_index : int;
  r_fault : Fault.t;
  r_outcome : Campaign.outcome;
}

let header_of ?(shard = (0, 1)) ~seed ~total program =
  { j_seed = seed;
    j_total = total;
    j_shard = shard;
    j_program = Digest.to_hex (Digest.string (Program.to_bytes program)) }

(* ---------------- the line format ---------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header_line h =
  let i, n = h.j_shard in
  Printf.sprintf
    "{\"s4e_journal\":1,\"seed\":%d,\"total\":%d,\"shard\":\"%d/%d\",\
     \"program\":\"%s\"}"
    h.j_seed h.j_total i n (escape h.j_program)

let record_line r =
  let base =
    Printf.sprintf "{\"i\":%d,\"fault\":\"%s\",\"outcome\":\"%s\"" r.r_index
      (escape (Fault.to_string r.r_fault))
      (Campaign.outcome_name r.r_outcome)
  in
  match r.r_outcome with
  | Campaign.Errored e -> Printf.sprintf "%s,\"error\":\"%s\"}" base (escape e)
  | _ -> base ^ "}"

(* Minimal field extraction over the fixed single-line objects this
   module emits — not a general JSON parser, and it need not be: a
   journal is only ever read back by this module. *)

let index_of s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go 0

let after_key line key =
  Option.map
    (fun i -> i + String.length key + 3)
    (index_of line (Printf.sprintf "\"%s\":" key))

let field_int line key =
  match after_key line key with
  | None -> None
  | Some i ->
      let n = String.length line in
      let j = ref i in
      if !j < n && line.[!j] = '-' then incr j;
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      if !j = i then None else int_of_string_opt (String.sub line i (!j - i))

let field_string line key =
  match after_key line key with
  | None -> None
  | Some i when i >= String.length line || line.[i] <> '"' -> None
  | Some i ->
      let n = String.length line in
      let b = Buffer.create 16 in
      let rec go j =
        if j >= n then None
        else
          match line.[j] with
          | '"' -> Some (Buffer.contents b)
          | '\\' when j + 1 < n -> (
              match line.[j + 1] with
              | 'n' -> Buffer.add_char b '\n'; go (j + 2)
              | 'r' -> Buffer.add_char b '\r'; go (j + 2)
              | 't' -> Buffer.add_char b '\t'; go (j + 2)
              | 'u' when j + 5 < n -> (
                  match
                    int_of_string_opt ("0x" ^ String.sub line (j + 2) 4)
                  with
                  | Some c ->
                      Buffer.add_char b (Char.chr (c land 0xff));
                      go (j + 6)
                  | None -> None)
              | c -> Buffer.add_char b c; go (j + 2))
          | c -> Buffer.add_char b c; go (j + 1)
      in
      go (i + 1)

let parse_header line =
  if field_int line "s4e_journal" <> Some 1 then
    Error "journal: not a campaign journal (missing version header)"
  else
    match
      ( field_int line "seed",
        field_int line "total",
        field_string line "shard",
        field_string line "program" )
    with
    | Some seed, Some total, Some shard, Some program -> (
        match String.split_on_char '/' shard with
        | [ i; n ] -> (
            match (int_of_string_opt i, int_of_string_opt n) with
            | Some i, Some n ->
                Ok
                  { j_seed = seed;
                    j_total = total;
                    j_shard = (i, n);
                    j_program = program }
            | _ -> Error ("journal: bad shard field: " ^ shard))
        | _ -> Error ("journal: bad shard field: " ^ shard))
    | _ -> Error "journal: malformed header line"

let parse_record line =
  match
    ( field_int line "i",
      field_string line "fault",
      field_string line "outcome" )
  with
  | Some i, Some f, Some oc -> (
      match Fault.of_string f with
      | Error e -> Error ("journal: " ^ e)
      | Ok fault ->
          let outcome =
            match oc with
            | "masked" -> Ok Campaign.Masked
            | "sdc" -> Ok Campaign.Sdc
            | "crashed" -> Ok Campaign.Crashed
            | "hung" -> Ok Campaign.Hung
            | "errored" ->
                Ok
                  (Campaign.Errored
                     (Option.value (field_string line "error") ~default:""))
            | _ -> Error ("journal: unknown outcome: " ^ oc)
          in
          Result.map
            (fun o -> { r_index = i; r_fault = fault; r_outcome = o })
            outcome)
  | _ -> Error ("journal: malformed record: " ^ line)

(* ---------------- reading ---------------- *)

let ( let* ) = Result.bind

(* [good_len] is the byte offset just past the last newline-terminated
   line: a crash between a write and its flush can leave a torn final
   fragment, which resume must drop (and overwrite) rather than choke
   on.  Any malformed {e terminated} line is real corruption and is a
   hard error. *)
let read_ex path =
  let* content =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  let good_len =
    match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
  in
  let lines =
    String.split_on_char '\n' (String.sub content 0 good_len)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error ("journal: no header in " ^ path)
  | hd :: rest ->
      let* header = parse_header hd in
      let* records =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* r = parse_record line in
            Ok (r :: acc))
          (Ok []) rest
      in
      (* a record may legitimately appear twice (a resume that re-ran a
         mutant whose record missed its fsync batch): last write wins *)
      let tbl = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace tbl r.r_index r) (List.rev records);
      let dedup =
        Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
        |> List.sort (fun a b -> compare a.r_index b.r_index)
      in
      Ok (header, dedup, good_len)

let read path =
  let* h, rs, _ = read_ex path in
  Ok (h, rs)

let expected_count h =
  let i, n = h.j_shard in
  if n <= 1 then h.j_total
  else
    (* indices in [0, total) congruent to i mod n *)
    let q = h.j_total / n and r = h.j_total mod n in
    q + (if i < r then 1 else 0)

let is_complete h records = List.length records >= expected_count h

(* ---------------- writing ---------------- *)

type writer = {
  w_oc : out_channel;
  w_mutex : Mutex.t;
  mutable w_pending : int;
  w_sink : Obs.Trace_events.t option;
}

(* Records are fsync'd in batches: one fsync per record would gate the
   campaign on disk latency, while batching bounds the replay cost of a
   crash to [flush_batch] mutants. *)
let flush_batch = 64

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ | Sys_error _ -> ()

(* caller holds [w_mutex] *)
let sync w =
  let doit () = fsync_oc w.w_oc in
  (match w.w_sink with
  | Some s -> Obs.Trace_events.span s ~name:"journal-flush" ~cat:"campaign" doit
  | None -> doit ());
  w.w_pending <- 0

let locked w f =
  Mutex.lock w.w_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.w_mutex) f

let write w r =
  locked w (fun () ->
      output_string w.w_oc (record_line r);
      output_char w.w_oc '\n';
      w.w_pending <- w.w_pending + 1;
      if w.w_pending >= flush_batch then sync w)

let flush w = locked w (fun () -> sync w)

let close w =
  locked w (fun () ->
      sync w;
      close_out_noerr w.w_oc)

let writer_of_oc ?sink oc =
  { w_oc = oc; w_mutex = Mutex.create (); w_pending = 0; w_sink = sink }

let create ?sink ~path header =
  try
    let oc = open_out_bin path in
    output_string oc (header_line header);
    output_char oc '\n';
    fsync_oc oc;
    Ok (writer_of_oc ?sink oc)
  with Sys_error e -> Error e

let header_eq a b =
  a.j_seed = b.j_seed && a.j_total = b.j_total && a.j_shard = b.j_shard
  && a.j_program = b.j_program

let append_to ?sink ~path header =
  let* h, records, good_len = read_ex path in
  if not (header_eq h header) then
    Error
      (Printf.sprintf
         "journal: %s was written by a different campaign (seed/total/shard/\
          program mismatch)"
         path)
  else
    try
      (* reopen truncated to the last good line so a torn tail from the
         interrupted run is overwritten, not appended after *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd good_len;
      ignore (Unix.lseek fd good_len Unix.SEEK_SET : int);
      Ok (writer_of_oc ?sink (Unix.out_channel_of_descr fd), records)
    with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ---------------- merging shards ---------------- *)

let outcome_key = function
  | Campaign.Errored _ -> "errored"
  | o -> Campaign.outcome_name o

let merge inputs =
  match inputs with
  | [] -> Error "merge: no journals given"
  | (h0, _) :: rest ->
      let compatible (h, _) =
        h.j_seed = h0.j_seed && h.j_total = h0.j_total
        && h.j_program = h0.j_program
      in
      if not (List.for_all compatible rest) then
        Error "merge: journals disagree on seed, total, or program"
      else
        let tbl : (int, record) Hashtbl.t = Hashtbl.create 256 in
        let conflict = ref None in
        List.iter
          (fun (_, records) ->
            List.iter
              (fun r ->
                match Hashtbl.find_opt tbl r.r_index with
                | None -> Hashtbl.replace tbl r.r_index r
                | Some prev
                  when Fault.compare prev.r_fault r.r_fault = 0
                       && outcome_key prev.r_outcome = outcome_key r.r_outcome
                  ->
                    ()
                | Some prev ->
                    if !conflict = None then
                      conflict :=
                        Some
                          (Printf.sprintf
                             "merge: mutant %d classified both %s and %s"
                             r.r_index
                             (Campaign.outcome_name prev.r_outcome)
                             (Campaign.outcome_name r.r_outcome)))
              records)
          inputs;
        (match !conflict with
        | Some msg -> Error msg
        | None ->
            let records =
              Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
              |> List.sort (fun a b -> compare a.r_index b.r_index)
            in
            Ok ({ h0 with j_shard = (0, 1) }, records))
