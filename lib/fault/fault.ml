type word = int

type location =
  | Gpr of S4e_isa.Reg.t * int
  | Fpr of S4e_isa.Reg.t * int
  | Code of word * int
  | Data of word * int

type kind = Permanent | Transient of int

type t = { loc : location; kind : kind }

let describe t =
  let loc =
    match t.loc with
    | Gpr (r, b) -> Printf.sprintf "GPR %s bit %d" (S4e_isa.Reg.abi_name r) b
    | Fpr (r, b) -> Printf.sprintf "FPR %s bit %d" (S4e_isa.Reg.f_name r) b
    | Code (a, b) -> Printf.sprintf "code 0x%08x bit %d" a b
    | Data (a, b) -> Printf.sprintf "data 0x%08x bit %d" a b
  in
  match t.kind with
  | Permanent -> loc ^ " (permanent)"
  | Transient n -> Printf.sprintf "%s (transient @ instr %d)" loc n

let pp fmt t = Format.pp_print_string fmt (describe t)

let compare = Stdlib.compare

(* Stable textual form used by campaign journals: colon-separated, one
   token per field, addresses in hex.  [of_string] must accept exactly
   what [to_string] emits — journals written by one build are resumed
   by another. *)
let to_string t =
  let loc =
    match t.loc with
    | Gpr (r, b) -> Printf.sprintf "gpr:%d:%d" r b
    | Fpr (r, b) -> Printf.sprintf "fpr:%d:%d" r b
    | Code (a, b) -> Printf.sprintf "code:0x%x:%d" a b
    | Data (a, b) -> Printf.sprintf "data:0x%x:%d" a b
  in
  match t.kind with
  | Permanent -> loc ^ ":perm"
  | Transient n -> Printf.sprintf "%s:trans:%d" loc n

let of_string s =
  let int v = int_of_string_opt v in
  let loc tag a b =
    match (int a, int b) with
    | Some a, Some b -> (
        match tag with
        | "gpr" -> Some (Gpr (a, b))
        | "fpr" -> Some (Fpr (a, b))
        | "code" -> Some (Code (a, b))
        | "data" -> Some (Data (a, b))
        | _ -> None)
    | _ -> None
  in
  let make l kind =
    match l with Some l -> Ok { loc = l; kind } | None -> Error ("bad fault: " ^ s)
  in
  match String.split_on_char ':' s with
  | [ tag; a; b; "perm" ] -> make (loc tag a b) Permanent
  | [ tag; a; b; "trans"; n ] -> (
      match int n with
      | Some n -> make (loc tag a b) (Transient n)
      | None -> Error ("bad fault: " ^ s))
  | _ -> Error ("bad fault: " ^ s)
