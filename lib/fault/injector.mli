(** Applying a fault to a live machine.

    Code and data flips touch memory directly (a flipped code bit is a
    binary mutation, XEMU-style); register faults are realized through
    the hook API — a transient flips the bit once after N retired
    instructions, a permanent holds the bit at its flipped ("stuck")
    value before every instruction.  Arm after loading the program and
    before running. *)

type armed

val arm : S4e_cpu.Machine.t -> Fault.t -> armed
(** @raise Invalid_argument on a malformed fault (register or bit out
    of range, negative address, non-positive transient time) — the
    register paths use unchecked indexing, so this is the only line of
    defense for hand-written fault lists. *)

val disarm : S4e_cpu.Machine.t -> armed -> unit
(** Removes hooks; memory flips are not undone (discard the machine). *)
