(** Mutant generation and mass fault simulation.

    The fault paper's flow: run the golden binary once, collect its
    coverage (which registers and instructions it actually exercises),
    generate fault lists restricted to those sites ("dedicated sets of
    fault injected hardware models, i.e., mutants"), simulate every
    mutant, and classify:

    - [Masked]: terminates normally with the golden signature;
    - [Sdc]: terminates normally with a different exit code or UART
      output (the paper's "normal termination though executed on a
      faulty hardware model" — silent data corruption);
    - [Crashed]: ends in a fatal trap;
    - [Hung]: exhausts its fuel or sleeps forever;
    - [Errored]: the {e simulator} raised while running the mutant
      (malformed fault, engine defect) — the exception text is kept so
      a campaign is never aborted by a single bad mutant. *)

type outcome = Masked | Sdc | Crashed | Hung | Errored of string

val outcome_name : outcome -> string

type signature = {
  sig_exit : int option;
  sig_uart : string;
  sig_instret : int;
}

type summary = {
  masked : int;
  sdc : int;
  crashed : int;
  hung : int;
  errors : int;
  total : int;
}

type target = [ `Gpr | `Fpr | `Code | `Data ]
type kind_choice = [ `Permanent | `Transient ]

val golden :
  ?config:S4e_cpu.Machine.config -> fuel:int -> S4e_asm.Program.t ->
  signature * S4e_coverage.Report.t
(** Reference run with coverage collection. *)

val generate :
  seed:int ->
  n:int ->
  targets:target list ->
  kinds:kind_choice list ->
  coverage:S4e_coverage.Report.t ->
  golden_instret:int ->
  Fault.t list
(** Coverage-guided fault list: register faults only in accessed
    registers, code faults only at executed pcs, data faults only in
    the touched address window; transient times uniform in
    [1, golden_instret].  Deterministic in [seed]. *)

val generate_blind :
  seed:int ->
  n:int ->
  targets:target list ->
  kinds:kind_choice list ->
  program:S4e_asm.Program.t ->
  golden_instret:int ->
  Fault.t list
(** Ablation baseline: sites drawn from the whole register file / code
    range regardless of what the program exercises. *)

val run_one :
  ?config:S4e_cpu.Machine.config -> fuel:int -> S4e_asm.Program.t ->
  golden:signature -> Fault.t -> outcome
(** Reference semantics: fresh machine, run from reset.  For transient
    faults the run is segmented at the injection instant, which pins
    the instant a code/data flip becomes architecturally visible to
    the next fetch (a flip into the currently-executing translation
    block takes effect at that boundary, not at the block's end) —
    the same contract the forked engine below realises, so the two
    must agree on every workload. *)

(** {1 The campaign engine}

    [run] executes a whole fault list through a tunable engine that is
    fast along three independent axes:

    - {b domain parallelism} ([eng_jobs] / [?jobs]): the fault list is
      split into a fixed number of chunks (a function of the list only,
      never of [jobs]) executed by a {!S4e_par.Par_pool}, each chunk on
      a private machine.  Results are reassembled in input order, so
      any [jobs] value produces bit-identical output.
    - {b snapshot forking} ([eng_fork]): within a chunk, transient
      faults are sorted by injection time; the golden prefix executes
      once per chunk and each mutant is forked off a
      {!S4e_cpu.Machine.snapshot} at [n - 1] retired instructions,
      simulating only the suffix.  The injector's counting hook is
      dropped as soon as the flip lands, so the suffix runs unhooked on
      the translation-block fast path.  Stuck-at faults capture their
      value at arm time and still run from reset.
    - {b early-divergence exit} ([eng_checkpoint]): a golden checkpoint
      trace (instret → state digest, every [eng_checkpoint]
      instructions) lets a faulty run stop as soon as its state digest
      matches the golden trace after the fault is inert — the remainder
      of the run is then provably identical to the golden run.  The
      faulty run executes in checkpoint-sized bursts and compares
      digests at the pauses, so the check costs nothing per
      instruction.  When the golden run never observes time (no
      cycle/time CSR reads, no WFI, no interrupt enables, no CLINT
      access) the comparison ignores the cycle and mtime counters:
      a reconverged run whose only residue is a skewed cycle counter —
      the common case after a perturbed branch — still exits early.
      [eng_escape] additionally classifies a run as [Crashed] when a
      checkpoint pause finds the pc outside the golden code range with
      trap handling uninstalled ([mtvec = 0]); this is a heuristic
      (such a run could in principle wander back) and is therefore off
      by default.

    Caveat: forking, burst pauses, and early exit change where
    interrupts are sampled (translation-block boundaries shift at
    snapshot/checkpoint seams), so they are exact only for programs
    whose outcome does not depend on asynchronous-interrupt timing —
    true of every workload in this repository, and trivially of any
    program that never enables interrupts.  Use {!rerun_engine} for the
    literal re-run-from-reset semantics of {!run_one}. *)

type engine = {
  eng_jobs : int;  (** worker domains; overridden by [?jobs] *)
  eng_fork : bool;  (** fork transients off golden snapshots *)
  eng_checkpoint : int;
      (** golden digest interval in retired instructions; [0] disables
          the trace and with it all early exits *)
  eng_escape : bool;
      (** heuristic early [Crashed] when pc escapes the golden code
          range with [mtvec = 0]; requires [eng_checkpoint > 0] *)
  eng_timeout_s : float;
      (** wall-clock budget per mutant, a second hang defense behind the
          fuel budget; a mutant over its deadline is classified like
          fuel exhaustion ([Hung]).  [0.0] (the default) disables it —
          note that a wall-clock cutoff makes borderline outcomes
          machine-dependent, so leave it off when bit-identical results
          across hosts matter. *)
}

val default_engine : engine
(** [jobs = 1], fork on, checkpoint every 1024 instructions, escape
    heuristic off, no wall-clock timeout. *)

val rerun_engine : engine
(** The naive baseline: every fault re-runs from reset with no trace —
    exactly {!run_one} per fault (modulo machine reuse). *)

val shard : index:int -> count:int -> (int * Fault.t) list -> (int * Fault.t) list
(** Stable round-robin partition of an indexed fault list: keeps the
    elements whose index [i] satisfies [i mod count = index].  A pure
    function of the indices, so [count] cooperating processes cover the
    list exactly once and the union of all shards is the whole list.
    @raise Invalid_argument unless [0 <= index < count]. *)

val run_indexed :
  ?config:S4e_cpu.Machine.config ->
  ?engine:engine ->
  ?jobs:int ->
  ?metrics:S4e_obs.Metrics.t ->
  ?trace:S4e_obs.Trace_events.t ->
  ?on_progress:(int -> int -> unit) ->
  ?on_result:(int -> Fault.t -> outcome -> unit) ->
  ?cancelled:(unit -> bool) ->
  fuel:int ->
  S4e_asm.Program.t ->
  golden:signature ->
  (int * Fault.t) list ->
  (int * Fault.t * outcome) list
(** Core entry point over an {e indexed} fault list — each fault keeps
    its stable position in the full campaign, so a {!shard} or the
    unclassified remainder of an interrupted run (journaled resume)
    classifies exactly the same mutants as the corresponding slice of a
    full run.  Returns only the mutants actually classified, in input
    order; mutants skipped by cancellation are absent, never defaulted.

    - [on_result i fault outcome] fires once per classified mutant,
      serialized under an internal lock (safe to write a journal from),
      before the corresponding [on_progress] tick.
    - [cancelled ()] is polled between mutants on every worker;
      once it returns [true], workers finish their current mutant and
      classify nothing further.  Cooperative, so a SIGINT handler only
      needs to set a flag. *)

val run :
  ?config:S4e_cpu.Machine.config ->
  ?engine:engine ->
  ?jobs:int ->
  ?metrics:S4e_obs.Metrics.t ->
  ?trace:S4e_obs.Trace_events.t ->
  ?on_progress:(int -> int -> unit) ->
  fuel:int ->
  S4e_asm.Program.t ->
  golden:signature ->
  Fault.t list ->
  (Fault.t * outcome) list
(** Simulates every fault and pairs it with its outcome, in input
    order ({!run_indexed} over [List.mapi]).  [?jobs] overrides
    [engine.eng_jobs].

    Telemetry (all optional, none changes outcomes):
    - [metrics] receives the counters [campaign.mutants],
      [campaign.hangs] (hang-budget kills), [campaign.early_exits],
      [campaign.snapshot_forks], [campaign.errors] (mutants classified
      [Errored]), [campaign.retries] (per-mutant second-chance reruns
      after an exception), [campaign.timeouts] (wall-clock deadline
      hits), the [campaign.mutant_insns] histogram (instructions
      simulated per mutant), and — when the pool runs — the [pool.*]
      worker gauges.
    - [trace] receives Chrome trace events: a [golden-trace] span, one
      [chunk] span per worker task (tid = the executing domain, so
      Perfetto shows one lane per domain), and one span per mutant
      named by its outcome.
    - [on_progress done total] fires once per classified mutant, from
      whichever domain classified it. *)

val summarize : (Fault.t * outcome) list -> summary

val pp_summary : Format.formatter -> summary -> unit

(** {1 Divergence triage}

    A campaign names {e what} went wrong (sdc / crashed / hung);
    triage names {e where}.  [triage] re-runs a sampled subset of the
    divergent mutants with a {!S4e_obs.Flight_recorder} armed on both a
    golden and a faulty machine, runs the pair in instret-lockstep
    bursts, and locates the first record where the two recordings
    disagree — the first architectural delta.  The burst containing the
    divergence is replayed from its pre-burst snapshots up to that
    record, so the reported register / memory / pending-interrupt diffs
    are taken {e at} the divergence instant, not at the end of the run.

    Triage is a diagnostic pass over an already-classified campaign: it
    re-simulates [2 × sample] runs with recording on, so it costs a few
    golden-run equivalents — cheap next to the campaign itself, but not
    free, hence the sampling. *)

type reg_diff = { rd_name : string; rd_golden : int; rd_mutant : int }
(** One architectural register (ABI name, [f0..f31], or CSR) whose
    value differs between the golden and the faulty machine. *)

type triage_record = {
  tg_index : int;  (** the mutant's stable campaign index *)
  tg_fault : Fault.t;
  tg_outcome : outcome;
  tg_diverged : bool;
      (** [false] when no architectural divergence was located within
          the fuel budget (e.g. a [Hung] mutant that executes the
          golden instruction stream forever) *)
  tg_instret : int;  (** mutant instret at the divergence instant *)
  tg_golden_pc : int;
  tg_mutant_pc : int;
  tg_insn : string;
      (** rendering of the first diverging record — disassembled
          instruction for a retire, marker description otherwise, or
          the differing stop reason when the streams never disagree *)
  tg_reg_diffs : reg_diff list;  (** capped at 12, GPRs first *)
  tg_mem_diff : bool;  (** RAM digests differ at the divergence *)
  tg_mip_golden : int;  (** pending-interrupt (mip) CSRs at divergence *)
  tg_mip_mutant : int;
  tg_tail : string list;
      (** the mutant recorder's last records (up to [tail]), rendered
          with the disassembler — the flight-recorder tail dump *)
}

val triage :
  ?config:S4e_cpu.Machine.config ->
  ?sample:int ->
  ?tail:int ->
  fuel:int ->
  S4e_asm.Program.t ->
  (int * Fault.t * outcome) list ->
  triage_record list
(** Triage of an indexed campaign result.  Candidates are the [Sdc],
    [Crashed], and [Hung] mutants; when there are more than [sample]
    (default 8), a deterministic stride over the candidate list picks
    [sample] of them spread across the campaign.  [tail] (default 16)
    bounds [tg_tail].  One record per sampled mutant, in campaign
    order.  Purely diagnostic: runs fresh machines, never touches the
    campaign's results. *)

val top_sites : triage_record list -> (int * int) list
(** Ranked "top faulty sites": divergence pcs with their counts,
    most frequent first (ties broken by ascending pc). *)

val triage_to_json : triage_record -> string
(** One JSON object on one line (JSONL), schema:
    [{"index":int, "fault":string, "outcome":string, "diverged":bool,
    "instret":int, "golden_pc":"0x…", "mutant_pc":"0x…", "insn":string,
    "reg_diffs":[{"reg":string,"golden":"0x…","mutant":"0x…"}],
    "mem_diff":bool, "mip_golden":int, "mip_mutant":int,
    "tail":[string]}]. *)

val pp_triage : Format.formatter -> triage_record -> unit
(** One-line human summary of a triage record. *)
