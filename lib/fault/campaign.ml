module Machine = S4e_cpu.Machine
module Arch_state = S4e_cpu.Arch_state
module Hooks = S4e_cpu.Hooks
module Program = S4e_asm.Program
module Report = S4e_coverage.Report
module Par_pool = S4e_par.Par_pool
module Obs = S4e_obs

type outcome = Masked | Sdc | Crashed | Hung | Errored of string

let outcome_name = function
  | Masked -> "masked"
  | Sdc -> "sdc"
  | Crashed -> "crashed"
  | Hung -> "hung"
  | Errored _ -> "errored"

type signature = {
  sig_exit : int option;
  sig_uart : string;
  sig_instret : int;
}

type summary = {
  masked : int;
  sdc : int;
  crashed : int;
  hung : int;
  errors : int;
  total : int;
}

type target = [ `Gpr | `Fpr | `Code | `Data ]
type kind_choice = [ `Permanent | `Transient ]

let run_machine ?config program =
  let m = Machine.create ?config () in
  Program.load_machine program m;
  m

let signature_of m stop =
  { sig_exit = (match stop with Machine.Exited c -> Some c | _ -> None);
    sig_uart = Machine.uart_output m;
    sig_instret = Machine.instret m }

let golden ?config ~fuel program =
  let m = run_machine ?config program in
  let collector = S4e_coverage.Collector.attach m () in
  let stop = Machine.run m ~fuel in
  let rep = S4e_coverage.Collector.report collector in
  S4e_coverage.Collector.detach m collector;
  (signature_of m stop, rep)

(* ---------------- fault-list generation ---------------- *)

(* Injection-site pools are always derived by sorted extraction so the
   pool an index picks is a function of the key set alone, never of
   hash-table internals. *)
let sorted_sites ?(keep = fun _ -> true) table =
  let arr =
    Array.of_list
      (Hashtbl.fold (fun k () acc -> if keep k then k :: acc else acc) table [])
  in
  Array.sort compare arr;
  arr

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let accessed_regs read written =
  let out = ref [] in
  for i = 31 downto 0 do
    if read.(i) || written.(i) then out := i :: !out
  done;
  Array.of_list !out

let gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n =
  let targets = Array.of_list targets in
  let kinds = Array.of_list kinds in
  let viable = function
    | `Gpr -> Array.length gpr_pool > 0
    | `Fpr -> Array.length fpr_pool > 0
    | `Code -> Array.length code_pool > 0
    | `Data -> Array.length data_pool > 0
  in
  let targets = Array.of_list (List.filter viable (Array.to_list targets)) in
  if Array.length targets = 0 then []
  else
    List.init n (fun _ ->
        let bit = Random.State.int rng 32 in
        let loc =
          match pick rng targets with
          | `Gpr -> Fault.Gpr (pick rng gpr_pool, bit)
          | `Fpr -> Fault.Fpr (pick rng fpr_pool, bit)
          | `Code -> Fault.Code (pick rng code_pool, bit)
          | `Data ->
              Fault.Data (pick rng data_pool, Random.State.int rng 8)
        in
        let kind =
          match pick rng kinds with
          | `Permanent -> Fault.Permanent
          | `Transient ->
              Fault.Transient (1 + Random.State.int rng (max 1 golden_instret))
        in
        { Fault.loc; kind })

let generate ~seed ~n ~targets ~kinds ~coverage ~golden_instret =
  let rng = Random.State.make [| seed |] in
  let rep = (coverage : Report.t) in
  let gpr_pool = accessed_regs rep.Report.gpr_read rep.Report.gpr_written in
  let fpr_pool = accessed_regs rep.Report.fpr_read rep.Report.fpr_written in
  let code_pool = sorted_sites rep.Report.executed_pcs in
  let data_pool =
    (* exact touched addresses, excluding device windows: a data fault
       only makes sense where the program actually keeps state *)
    sorted_sites rep.Report.touched_data
      ~keep:(fun k -> k >= S4e_soc.Memory_map.ram_base)
  in
  gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n

let generate_blind ~seed ~n ~targets ~kinds ~program ~golden_instret =
  let rng = Random.State.make [| seed |] in
  let gpr_pool = Array.init 32 Fun.id in
  let fpr_pool = Array.init 32 Fun.id in
  let code_pool =
    match Program.code_range program with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (max 0 ((hi - lo) / 4)) (fun i -> lo + (4 * i))
  in
  let data_pool =
    (* the whole RAM page around the data segment *)
    match program.Program.chunks with
    | [] -> [||]
    | chunks ->
        let datas = List.filter (fun c -> not c.Program.is_code) chunks in
        (match datas with
        | [] -> [||]
        | c :: _ ->
            Array.init
              (min 4096 (max 64 (String.length c.Program.bytes)))
              (fun i -> c.Program.addr + i))
  in
  gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n

(* ---------------- running ---------------- *)

let classify ~(golden : signature) m stop =
  match stop with
  | Machine.Exited c ->
      if Some c = golden.sig_exit && Machine.uart_output m = golden.sig_uart
      then Masked
      else Sdc
  | Machine.Fatal_trap _ -> Crashed
  | Machine.Out_of_fuel | Machine.Wfi_halt -> Hung

let run_one ?config ~fuel program ~golden fault =
  let m = run_machine ?config program in
  let run_armed fuel =
    let armed = Injector.arm m fault in
    let stop = Machine.run m ~fuel in
    Injector.disarm m armed;
    stop
  in
  let stop =
    match fault.Fault.kind with
    | Fault.Transient n when n < fuel -> (
        (* Segment the run at the injection instant.  A transient flip
           into memory becomes architecturally visible at the next
           translation-block boundary, and where that boundary falls
           depends on block geometry: a continuous run lets a flip into
           the currently-executing block go unseen until the block
           ends, while the campaign engine's forked suffixes always
           resume — and therefore re-decode — at exactly the injection
           point.  Splitting the run here pins the visibility boundary
           to the same instruction everywhere, which is what makes
           engine and rerun classifications comparable at all. *)
        match run_armed n with
        | Machine.Out_of_fuel -> Machine.run m ~fuel:(fuel - n)
        | stop -> stop)
    | _ -> run_armed fuel
  in
  classify ~golden m stop

(* ---------------- the campaign engine ---------------- *)

type engine = {
  eng_jobs : int;
  eng_fork : bool;
  eng_checkpoint : int;
  eng_escape : bool;
  eng_timeout_s : float;
}

let default_engine =
  { eng_jobs = 1; eng_fork = true; eng_checkpoint = 1024; eng_escape = false;
    eng_timeout_s = 0.0 }

let rerun_engine =
  { eng_jobs = 1; eng_fork = false; eng_checkpoint = 0; eng_escape = false;
    eng_timeout_s = 0.0 }

(* ---------------- sharding ---------------- *)

(* Stable round-robin partition of an indexed fault list: element [i]
   belongs to shard [i mod count].  A function of the indices alone, so
   [count] cooperating processes (or machines) cover the list exactly
   once and the union over shards is the whole list. *)
let shard ~index ~count ifaults =
  if count <= 0 || index < 0 || index >= count then
    invalid_arg
      (Printf.sprintf "Campaign.shard: bad shard %d/%d" index count);
  List.filter (fun (i, _) -> i mod count = index) ifaults

(* A cheap O(registers) fingerprint used to reject non-matching
   checkpoints before paying for the full memory digest.  Collisions
   are harmless: a fingerprint match only gates the exact
   [Machine.state_digest] comparison. *)
let cheap_fingerprint (m : Machine.t) =
  let st = m.Machine.state in
  let h = ref 0 in
  let mix v = h := ((!h * 31) + v) land max_int in
  Array.iter mix st.Arch_state.regs;
  Array.iter mix st.Arch_state.fregs;
  mix st.Arch_state.pc;
  mix st.Arch_state.mstatus;
  !h

(* A program is time-observable when its outcome can depend on the
   cycle counter or the CLINT timer: it reads a time CSR, sleeps on
   WFI, enables an interrupt source, or touches the CLINT window.  For
   everything else the cycle/mtime counters are write-only telemetry
   and can be excluded from the convergence check — which matters,
   because a single perturbed branch leaves the cycle counter skewed
   forever even after the architectural state reconverges. *)
let is_time_csr c =
  let open S4e_isa.Csr in
  c = cycle || c = time || c = mcycle || c = cycleh || c = timeh

let clint_lo = S4e_soc.Memory_map.clint_base
let clint_hi = S4e_soc.Memory_map.clint_base + 0x10000

(* The golden run's checkpoint trace: state digests at every [interval]
   retired instructions, the executed-pc range, and the golden run's
   own classification (what a run that never diverges must be).  Each
   checkpoint keeps the time-dependent counters next to the relaxed
   digest so the guard can apply either strictness. *)
type trace = {
  tr_interval : int;
  tr_digests : (int, int * string * int * int) Hashtbl.t;
      (** instret -> (cheap fingerprint, time-relaxed state digest,
          cycle, CLINT mtime) *)
  tr_code_lo : int;
  tr_code_hi : int;
  tr_strict : bool;
      (** the golden run observes time, so convergence must also match
          cycle and mtime *)
  tr_outcome : outcome;
}

let collect_trace ?config ~fuel ~interval ~golden program =
  let m = run_machine ?config program in
  let st = m.Machine.state in
  let digests = Hashtbl.create 64 in
  let lo = ref max_int in
  let hi = ref 0 in
  let timed = ref false in
  let mem_id =
    Hooks.on_mem m.Machine.hooks (fun ev ->
        let a = ev.Hooks.mem_addr in
        if a >= clint_lo && a < clint_hi then timed := true)
  in
  let id =
    Hooks.on_insn m.Machine.hooks (fun pc instr ->
        if pc < !lo then lo := pc;
        if pc + 4 > !hi then hi := pc + 4;
        (match instr with
        | S4e_isa.Instr.Wfi -> timed := true
        | S4e_isa.Instr.Csr (_, _, csr, _) when is_time_csr csr ->
            timed := true
        | _ -> ());
        if st.Arch_state.mie <> 0 then timed := true;
        let ir = Machine.instret m in
        if ir > 0 && ir mod interval = 0 && not (Hashtbl.mem digests ir) then
          Hashtbl.replace digests ir
            ( cheap_fingerprint m,
              Machine.state_digest ~include_time:false m,
              st.Arch_state.cycle,
              S4e_soc.Clint.time m.Machine.clint ))
  in
  let stop = Machine.run m ~fuel in
  Hooks.unregister m.Machine.hooks id;
  Hooks.unregister m.Machine.hooks mem_id;
  { tr_interval = interval;
    tr_digests = digests;
    tr_code_lo = (if !lo = max_int then 0 else !lo);
    tr_code_hi = !hi;
    tr_strict = !timed;
    tr_outcome = classify ~golden m stop }

(* Instret (absolute) after which the armed fault is fully applied and
   its hooks are inert, i.e. state equality with the golden trace
   implies an identical future.  Stuck-at register faults re-assert on
   every instruction, so they never qualify. *)
let inert_after f =
  match (f.Fault.kind, f.Fault.loc) with
  | Fault.Transient n, _ -> max 1 n
  | Fault.Permanent, (Fault.Code _ | Fault.Data _) -> 0
  | Fault.Permanent, (Fault.Gpr _ | Fault.Fpr _) -> max_int

(* Golden instructions guaranteed identical before the fault can act. *)
let golden_prefix f =
  match f.Fault.kind with
  | Fault.Transient n -> max 0 (n - 1)
  | Fault.Permanent -> 0

let shift_transient at f =
  match f.Fault.kind with
  | Fault.Transient n -> { f with Fault.kind = Fault.Transient (n - at) }
  | Fault.Permanent -> f

(* Optional campaign telemetry, threaded into every worker task.  The
   counters are {!Obs.Metrics} atomics, so per-mutant bumps from
   concurrent worker domains need no lock; the trace sink serializes
   internally.  [tel_progress] fires once per classified mutant. *)
type telemetry = {
  tel_sink : Obs.Trace_events.t option;
  tel_mutants : Obs.Metrics.counter option;
  tel_hangs : Obs.Metrics.counter option;
  tel_early : Obs.Metrics.counter option;
  tel_forks : Obs.Metrics.counter option;
  tel_errors : Obs.Metrics.counter option;
  tel_retries : Obs.Metrics.counter option;
  tel_timeouts : Obs.Metrics.counter option;
  tel_insns : Obs.Metrics.histogram option;
  tel_progress : (unit -> unit) option;
}

let bump = Option.iter Obs.Metrics.incr

(* One worker task: a private machine, a reset snapshot, and a golden
   cursor that advances monotonically through the chunk's injection
   points so the golden prefix executes once per chunk, not once per
   fault. *)
let run_task_body ?config ~engine ~fuel ~golden ~trace ~tel ~cancelled
    ~on_result program chunk =
  let m = run_machine ?config program in
  let st = m.Machine.state in
  (* [None] = not classified: a mutant skipped because the campaign was
     cancelled mid-chunk stays [None] and is simply absent from the
     results, never silently defaulted. *)
  let out = Array.map (fun (i, _) -> (i, None)) chunk in
  (* Wall-clock hang defense: an absolute deadline per mutant, checked
     at burst boundaries.  [None] (the default) disables it; outcomes
     then depend only on the instruction budget and stay deterministic. *)
  let deadline () =
    if engine.eng_timeout_s > 0.0 then
      Some (Unix.gettimeofday () +. engine.eng_timeout_s)
    else None
  in
  let deadline_hit = function
    | None -> false
    | Some d -> Unix.gettimeofday () >= d
  in
  (* [Machine.run] in bounded slices so the deadline is polled even on
     engines that never pause for checkpoints. *)
  let rec run_deadline m ~dl ~fuel =
    match dl with
    | None -> Machine.run m ~fuel
    | Some _ when deadline_hit dl ->
        bump tel.tel_timeouts;
        Machine.Out_of_fuel
    | Some _ ->
        let step = min fuel 65_536 in
        (match Machine.run m ~fuel:step with
        | Machine.Out_of_fuel when step < fuel ->
            run_deadline m ~dl ~fuel:(fuel - step)
        | stop -> stop)
  in
  (* Convergence test at a checkpoint boundary ([st.instret] a multiple
     of the trace interval).  The cheap fingerprint is checked every
     time, but the full digest (an MD5 over memory, ~20us) is
     throttled: a run whose registers reconverge while its memory stays
     corrupted — a flipped byte in never-rewritten data, say — would
     otherwise pay the full digest at every checkpoint until its budget
     runs out.  Each miss doubles the stride between full-digest probes
     (capped, so a late memory reconvergence is still caught within a
     few intervals). *)
  let probe tr ~next_full ~stride =
    let ir = st.Arch_state.instret in
    match Hashtbl.find_opt tr.tr_digests ir with
    | Some (ck, d, cyc, mtime)
      when ck = cheap_fingerprint m
           && ((not tr.tr_strict)
              || (cyc = st.Arch_state.cycle
                 && mtime = S4e_soc.Clint.time m.Machine.clint))
           && ir >= !next_full ->
        if String.equal d (Machine.state_digest ~include_time:false m) then
          true
        else begin
          next_full := ir + (!stride * tr.tr_interval);
          stride := min 16 (2 * !stride);
          false
        end
    | _ -> false
  in
  (* Run a faulty suffix in checkpoint-sized bursts, testing for
     reconvergence with the golden trace at every boundary past
     [inert_at].  The pauses piggyback on [Machine.run]'s fuel
     accounting, so the guard costs nothing per instruction and an
     unhooked run stays on the translation-block fast path. *)
  let run_guarded tr ~budget ~inert_at ~dl =
    let interval = tr.tr_interval in
    let next_full = ref 0 in
    let stride = ref 1 in
    let escaped () =
      engine.eng_escape
      && st.Arch_state.mtvec = 0
      && (st.Arch_state.pc < tr.tr_code_lo
         || st.Arch_state.pc >= tr.tr_code_hi)
    in
    let rec go budget =
      let ir = st.Arch_state.instret in
      if budget <= 0 then classify ~golden m Machine.Out_of_fuel
      else if deadline_hit dl then begin
        bump tel.tel_timeouts;
        classify ~golden m Machine.Out_of_fuel
      end
      else if
        ir >= inert_at
        && ir mod interval = 0
        && probe tr ~next_full ~stride
      then begin
        bump tel.tel_early;
        tr.tr_outcome
      end
      else if escaped () then Crashed
      else begin
        let next_ck =
          let c = ((ir / interval) + 1) * interval in
          if c >= inert_at then c
          else (inert_at + interval - 1) / interval * interval
        in
        let step = min budget (next_ck - ir) in
        match Machine.run m ~fuel:step with
        | Machine.Out_of_fuel -> go (budget - step)
        | stop -> classify ~golden m stop
      end
    in
    go budget
  in
  (* Record one classified mutant: result slot, counters, journal. *)
  let finish slot o =
    out.(slot) <- (fst out.(slot), Some o);
    bump tel.tel_mutants;
    if o = Hung then bump tel.tel_hangs;
    (match o with Errored _ -> bump tel.tel_errors | _ -> ());
    on_result (fst out.(slot)) o;
    Option.iter (fun f -> f ()) tel.tel_progress
  in
  (* Second-chance rerun on a private machine with the naive
     from-reset semantics: an exception out of the engine path (a
     malformed fault, a snapshot seam gone wrong) must not cost the
     mutant its classification if the plain path still works. *)
  let retry_naive fault =
    let dl = deadline () in
    let m2 = run_machine ?config program in
    let run_armed budget =
      let armed = Injector.arm m2 fault in
      Fun.protect
        ~finally:(fun () -> Injector.disarm m2 armed)
        (fun () -> run_deadline m2 ~dl ~fuel:budget)
    in
    let stop =
      match fault.Fault.kind with
      | Fault.Transient n when n < fuel -> (
          (* same injection-boundary segmentation as [run_one] *)
          match run_armed n with
          | Machine.Out_of_fuel -> run_deadline m2 ~dl ~fuel:(fuel - n)
          | stop -> stop)
      | _ -> run_armed fuel
    in
    classify ~golden m2 stop
  in
  let run_faulty ~slot ~budget ~inert_at ~orig fault =
    (* The convergence guard only applies to transients: stuck-at
       faults are never inert, and a permanent code/data flip persists
       in the digested memory image, so neither can ever reconverge. *)
    let dl = deadline () in
    let guarded budget =
      match (trace, fault.Fault.kind) with
      | Some tr, Fault.Transient _ -> run_guarded tr ~budget ~inert_at ~dl
      | _ -> classify ~golden m (run_deadline m ~dl ~fuel:budget)
    in
    let i0 = st.Arch_state.instret in
    let ts =
      match tel.tel_sink with
      | Some s -> Obs.Trace_events.now_us s
      | None -> 0.0
    in
    (* the machine's hooks must come back clean even when the run
       raises: a leaked injector hook would corrupt every later mutant
       in the chunk *)
    let with_armed f run =
      let armed = Injector.arm m f in
      Fun.protect ~finally:(fun () -> Injector.disarm m armed) run
    in
    let compute () =
      match fault.Fault.kind with
      | Fault.Transient n when n < budget ->
          (* Keep the injector's counting hook only until the flip
             lands, then drop it: the suffix — the bulk of the run —
             executes unhooked on the fast path.  Not fork-only: the
             split also pins the flip's visibility boundary to the
             injection instant (see [run_one]), so the rerun engine
             must segment here too or a flip into the currently-
             executing translation block would take effect at a
             different instruction than in the forked engine. *)
          let r = with_armed fault (fun () -> run_deadline m ~dl ~fuel:n) in
          (match r with
          | Machine.Out_of_fuel -> guarded (budget - n)
          | stop -> classify ~golden m stop)
      | _ -> with_armed fault (fun () -> guarded budget)
    in
    (* Per-mutant error isolation: a raising mutant is retried once on
       the naive path (with the original, unshifted fault), and only if
       that also raises is it classified [Errored] — either way the
       campaign keeps going and the mutant is counted. *)
    let o =
      match compute () with
      | o -> o
      | exception e ->
          bump tel.tel_retries;
          (match retry_naive orig with
          | o -> o
          | exception e2 ->
              ignore e;
              Errored (Printexc.to_string e2))
    in
    (match tel.tel_insns with
    | Some h -> Obs.Metrics.observe h (st.Arch_state.instret - i0)
    | None -> ());
    (match tel.tel_sink with
    | Some s ->
        Obs.Trace_events.complete s ~name:(outcome_name o) ~cat:"mutant"
          ~args:[ ("fault", Format.asprintf "%a" Fault.pp fault) ]
          ~tid:(Domain.self () :> int)
          ~ts_us:ts
          ~dur_us:(Obs.Trace_events.now_us s -. ts)
          ()
    | None -> ());
    finish slot o
  in
  let reset_snap = Machine.snapshot m in
  let immediate, deferred =
    let im = ref [] and de = ref [] in
    Array.iteri
      (fun slot (_, f) ->
        if engine.eng_fork && golden_prefix f > 0 then de := (slot, f) :: !de
        else im := (slot, f) :: !im)
      chunk;
    (List.rev !im, List.rev !de)
  in
  List.iter
    (fun (slot, f) ->
      if not (cancelled ()) then begin
        Machine.restore m reset_snap;
        run_faulty ~slot ~budget:fuel ~inert_at:(inert_after f) ~orig:f f
      end)
    immediate;
  (* Deferred transients, by injection time: fork each off a snapshot
     of the golden run at [n - 1] and simulate only the suffix. *)
  let deferred =
    List.sort
      (fun (s1, f1) (s2, f2) ->
        match compare (golden_prefix f1) (golden_prefix f2) with
        | 0 -> compare s1 s2
        | c -> c)
      deferred
  in
  let snap = ref reset_snap in
  let at = ref 0 in
  let golden_ended = ref None in
  List.iter
    (fun (slot, f) ->
      match !golden_ended with
      | _ when cancelled () -> ()
      | Some o -> finish slot o
      | None ->
          let pre = min (golden_prefix f) fuel in
          let advanced =
            if pre <= !at then true
            else begin
              Machine.restore m !snap;
              match Machine.run m ~fuel:(pre - !at) with
              | Machine.Out_of_fuel ->
                  at := pre;
                  snap := Machine.snapshot m;
                  true
              | stop ->
                  (* the golden run ends before this (and so before any
                     later) injection point: every remaining fault
                     replays the golden run verbatim *)
                  let o = classify ~golden m stop in
                  golden_ended := Some o;
                  finish slot o;
                  false
            end
          in
          if advanced then begin
            (* each deferred fault replays from the shared snapshot
               instead of re-executing the golden prefix *)
            bump tel.tel_forks;
            Machine.restore m !snap;
            run_faulty ~slot ~budget:(fuel - !at)
              ~inert_at:(inert_after f) ~orig:f
              (shift_transient !at f)
          end)
    deferred;
  out

let run_task ?config ~engine ~fuel ~golden ~trace ~tel ~cancelled ~on_result
    program chunk =
  let body () =
    run_task_body ?config ~engine ~fuel ~golden ~trace ~tel ~cancelled
      ~on_result program chunk
  in
  match tel.tel_sink with
  | None -> body ()
  | Some s ->
      let tid = (Domain.self () :> int) in
      Obs.Trace_events.thread_name s ~tid (Printf.sprintf "domain %d" tid);
      Obs.Trace_events.span s ~name:"chunk" ~cat:"campaign" ~tid
        ~args:[ ("faults", string_of_int (Array.length chunk)) ]
        body

(* Chunking is a function of the fault list only — never of [jobs] —
   so every degree of parallelism produces bit-identical results. *)
let task_chunks = 16

(* Core entry point over an {e indexed} fault list: every fault keeps
   its stable position in the full campaign, so a shard or a resumed
   remainder classifies exactly the same mutants (same indices, same
   chunk grouping is irrelevant — outcomes are per-mutant deterministic)
   as the corresponding slice of a full run.  Returns only the mutants
   actually classified: cancellation skips are absent, never
   defaulted. *)
let run_indexed ?config ?(engine = default_engine) ?jobs ?metrics ?trace:sink
    ?on_progress ?on_result ?cancelled ~fuel program ~golden ifaults =
  let jobs = max 1 (Option.value jobs ~default:engine.eng_jobs) in
  match ifaults with
  | [] -> []
  | _ ->
      let total = List.length ifaults in
      let cancelled = Option.value cancelled ~default:(fun () -> false) in
      let on_result =
        match on_result with
        | None -> fun _ _ _ -> ()
        | Some f ->
            (* journal writers &c. may be called from worker domains
               concurrently; serialize so callers need no lock *)
            let mu = Mutex.create () in
            fun i fl o ->
              Mutex.lock mu;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock mu)
                (fun () -> f i fl o)
      in
      let tel =
        let c name = Option.map (fun m -> Obs.Metrics.counter m name) metrics in
        { tel_sink = sink;
          tel_mutants = c "campaign.mutants";
          tel_hangs = c "campaign.hangs";
          tel_early = c "campaign.early_exits";
          tel_forks = c "campaign.snapshot_forks";
          tel_errors = c "campaign.errors";
          tel_retries = c "campaign.retries";
          tel_timeouts = c "campaign.timeouts";
          tel_insns =
            Option.map
              (fun m ->
                Obs.Metrics.histogram m "campaign.mutant_insns"
                  ~bounds:[| 100; 1_000; 10_000; 100_000; 1_000_000 |])
              metrics;
          tel_progress =
            Option.map
              (fun f ->
                let done_ = Atomic.make 0 in
                fun () -> f (Atomic.fetch_and_add done_ 1 + 1) total)
              on_progress }
      in
      let in_span name f =
        match sink with
        | Some s -> Obs.Trace_events.span s ~name ~cat:"campaign" f
        | None -> f ()
      in
      let trace =
        if engine.eng_checkpoint > 0 then
          Some
            (in_span "golden-trace" (fun () ->
                 collect_trace ?config ~fuel ~interval:engine.eng_checkpoint
                   ~golden program))
        else None
      in
      let arr = Array.of_list ifaults in
      let n = Array.length arr in
      let by_index = Hashtbl.create n in
      Array.iter (fun (i, f) -> Hashtbl.replace by_index i f) arr;
      let on_result i o = on_result i (Hashtbl.find by_index i) o in
      let n_chunks = min n task_chunks in
      let chunk_size = (n + n_chunks - 1) / n_chunks in
      let chunks =
        List.init n_chunks (fun c ->
            let lo = c * chunk_size in
            let hi = min n (lo + chunk_size) in
            Array.init (max 0 (hi - lo)) (fun k -> arr.(lo + k)))
        |> List.filter (fun c -> Array.length c > 0)
      in
      let task =
        run_task ?config ~engine ~fuel ~golden ~trace ~tel ~cancelled
          ~on_result program
      in
      let results =
        if jobs = 1 || List.length chunks = 1 then List.map task chunks
        else begin
          (* touch the shared decoder tables once before worker domains
             could race on their lazy initialization *)
          ignore (Machine.create ?config () : Machine.t);
          Par_pool.with_pool ~jobs (fun pool ->
              Option.iter (fun m -> Par_pool.register_metrics pool m) metrics;
              Par_pool.map_chunked ~chunk:1 pool task chunks)
        end
      in
      List.concat_map
        (fun chunk ->
          Array.to_list chunk
          |> List.filter_map (fun (i, o) ->
                 Option.map (fun o -> (i, Hashtbl.find by_index i, o)) o))
        results

let run ?config ?engine ?jobs ?metrics ?trace ?on_progress ~fuel program
    ~golden faults =
  run_indexed ?config ?engine ?jobs ?metrics ?trace ?on_progress ~fuel program
    ~golden
    (List.mapi (fun i f -> (i, f)) faults)
  |> List.map (fun (_, f, o) -> (f, o))

let summarize results =
  List.fold_left
    (fun acc (_, o) ->
      match o with
      | Masked -> { acc with masked = acc.masked + 1; total = acc.total + 1 }
      | Sdc -> { acc with sdc = acc.sdc + 1; total = acc.total + 1 }
      | Crashed -> { acc with crashed = acc.crashed + 1; total = acc.total + 1 }
      | Hung -> { acc with hung = acc.hung + 1; total = acc.total + 1 }
      | Errored _ -> { acc with errors = acc.errors + 1; total = acc.total + 1 })
    { masked = 0; sdc = 0; crashed = 0; hung = 0; errors = 0; total = 0 }
    results

let pp_summary fmt s =
  Format.fprintf fmt
    "total=%d masked=%d sdc=%d crashed=%d hung=%d errored=%d" s.total s.masked
    s.sdc s.crashed s.hung s.errors

(* ---------------- divergence triage ---------------- *)

type reg_diff = { rd_name : string; rd_golden : int; rd_mutant : int }

type triage_record = {
  tg_index : int;
  tg_fault : Fault.t;
  tg_outcome : outcome;
  tg_diverged : bool;
  tg_instret : int;
  tg_golden_pc : int;
  tg_mutant_pc : int;
  tg_insn : string;
  tg_reg_diffs : reg_diff list;
  tg_mem_diff : bool;
  tg_mip_golden : int;
  tg_mip_mutant : int;
  tg_tail : string list;
}

(* Lockstep burst length.  Bursts never cross a transient's injection
   instant, so the flip always lands exactly at a burst boundary — the
   same segmentation contract as [run_one]. *)
let triage_burst = 256

let render_record rc =
  let open Obs.Flight_recorder in
  let base = Format.asprintf "%a" pp_record rc in
  match rc.r_kind with
  | Retire | Watch -> base ^ "  " ^ S4e_asm.Disasm.disassemble_word rc.r_op
  | Trap | Irq | Dev -> base

let recorder_tail ?(limit = max_int) r =
  let recs = Obs.Flight_recorder.records r in
  let len = List.length recs in
  List.filteri (fun i _ -> i >= len - limit) recs |> List.map render_record

(* Architectural register/CSR diff between two machines, GPRs first.
   Capped — a wildly diverged mutant differs everywhere, and the first
   few registers already name the corruption. *)
let reg_diffs ?(limit = 12) (g : Machine.t) (m : Machine.t) =
  let gs = g.Machine.state and ms = m.Machine.state in
  let out = ref [] in
  let diff name a b =
    if a <> b then out := { rd_name = name; rd_golden = a; rd_mutant = b } :: !out
  in
  diff "mtval" gs.Arch_state.mtval ms.Arch_state.mtval;
  diff "mcause" gs.Arch_state.mcause ms.Arch_state.mcause;
  diff "mepc" gs.Arch_state.mepc ms.Arch_state.mepc;
  diff "mie" gs.Arch_state.mie ms.Arch_state.mie;
  diff "mstatus" gs.Arch_state.mstatus ms.Arch_state.mstatus;
  for i = 31 downto 0 do
    diff (Printf.sprintf "f%d" i) gs.Arch_state.fregs.(i)
      ms.Arch_state.fregs.(i)
  done;
  for i = 31 downto 0 do
    diff (S4e_isa.Reg.abi_name i) gs.Arch_state.regs.(i)
      ms.Arch_state.regs.(i)
  done;
  List.filteri (fun i _ -> i < limit) !out

let mem_differs g m =
  S4e_mem.Sparse_mem.digest (S4e_mem.Bus.ram g.Machine.bus)
  <> S4e_mem.Sparse_mem.digest (S4e_mem.Bus.ram m.Machine.bus)

(* Triage one divergent mutant: run a golden and a faulty machine in
   instret-lockstep bursts with flight recorders armed on both, and
   compare the recorded retire/marker streams after every burst.  The
   first differing record is the first architectural delta; the burst
   is then replayed from its pre-burst snapshots up to that record so
   the register/memory/mip diffs are taken at the divergence instant
   (the snapshots carry recorder marks, so the replayed tails line up).
   The one burst that cannot be replayed is a transient's flip burst —
   the injector's counting hook does not rewind with a snapshot — but
   there the only possible mismatch is the burst's final record, whose
   post-state is exactly the end-of-burst state already in hand. *)
let triage_one ?config ~tail ~fuel program (index, fault, outcome) =
  let capacity = max 1024 (2 * tail) in
  let g = run_machine ?config program in
  let m = run_machine ?config program in
  let rg = Obs.Flight_recorder.create ~capacity () in
  let rm = Obs.Flight_recorder.create ~capacity () in
  Machine.set_recorder g (Some rg);
  Machine.set_recorder m (Some rm);
  let inject_at =
    match fault.Fault.kind with
    | Fault.Transient n -> min n fuel
    | Fault.Permanent -> 0
  in
  let armed = ref (Some (Injector.arm m fault)) in
  let disarm () =
    match !armed with
    | Some a ->
        Injector.disarm m a;
        armed := None
    | None -> ()
  in
  Fun.protect ~finally:disarm (fun () ->
      let recs_since r q0 =
        List.filter
          (fun rc -> rc.Obs.Flight_recorder.r_seq >= q0)
          (Obs.Flight_recorder.records r)
      in
      let rec first_mismatch j gr mr =
        match (gr, mr) with
        | [], [] -> None
        | [], _ | _, [] -> Some j
        | a :: gr', b :: mr' ->
            if a = b then first_mismatch (j + 1) gr' mr' else Some j
      in
      let finish ?tail_lines ~diverged ~insn () =
        { tg_index = index;
          tg_fault = fault;
          tg_outcome = outcome;
          tg_diverged = diverged;
          tg_instret = Machine.instret m;
          tg_golden_pc = g.Machine.state.Arch_state.pc;
          tg_mutant_pc = m.Machine.state.Arch_state.pc;
          tg_insn = insn;
          tg_reg_diffs = reg_diffs g m;
          tg_mem_diff = mem_differs g m;
          tg_mip_golden = g.Machine.state.Arch_state.mip;
          tg_mip_mutant = m.Machine.state.Arch_state.mip;
          tg_tail =
            (match tail_lines with
            | Some l -> l
            | None -> recorder_tail ~limit:tail rm) }
      in
      let budget = ref fuel in
      let gstop = ref None and mstop = ref None in
      let result = ref None in
      while
        !result = None && !budget > 0 && !gstop = None && !mstop = None
      do
        let ir0 = Machine.instret m in
        let step =
          let s = min triage_burst !budget in
          if inject_at > ir0 && inject_at - ir0 < s then inject_at - ir0
          else s
        in
        let sg = Machine.snapshot g and sm = Machine.snapshot m in
        let q0g = Obs.Flight_recorder.seq rg in
        let q0m = Obs.Flight_recorder.seq rm in
        (match Machine.run g ~fuel:step with
        | Machine.Out_of_fuel -> ()
        | st -> gstop := Some st);
        (match Machine.run m ~fuel:step with
        | Machine.Out_of_fuel -> ()
        | st -> mstop := Some st);
        budget := !budget - step;
        (match fault.Fault.kind with
        | Fault.Transient _ when Machine.instret m >= inject_at -> disarm ()
        | _ -> ());
        let gr = recs_since rg q0g and mr = recs_since rm q0m in
        match first_mismatch 0 gr mr with
        | Some j ->
            let prefix = List.filteri (fun i _ -> i < j) gr in
            let retires_before =
              List.length
                (List.filter
                   (fun rc ->
                     rc.Obs.Flight_recorder.r_kind = Obs.Flight_recorder.Retire)
                   prefix)
            in
            let at_j =
              match (List.nth_opt mr j, List.nth_opt gr j) with
              | (Some rc, _ | None, Some rc) -> Some rc
              | None, None -> None
            in
            let is_retire =
              match at_j with
              | Some rc ->
                  rc.Obs.Flight_recorder.r_kind = Obs.Flight_recorder.Retire
              | None -> false
            in
            let insn =
              match at_j with
              | Some rc -> render_record rc
              | None -> ""
            in
            (* capture the mutant's tail up to the diverging record now
               — a replay below rewinds the recorder past it *)
            let div_seq = q0m + j in
            let tail_lines =
              List.filter
                (fun rc -> rc.Obs.Flight_recorder.r_seq <= div_seq)
                (Obs.Flight_recorder.records rm)
              |> List.map render_record
              |> fun l ->
              let len = List.length l in
              List.filteri (fun i _ -> i >= len - tail) l
            in
            let can_replay =
              match fault.Fault.kind with
              | Fault.Transient _ -> ir0 >= inject_at
              | Fault.Permanent -> true
            in
            if can_replay then begin
              Machine.restore g sg;
              Machine.restore m sm;
              let k = retires_before + if is_retire then 1 else 0 in
              if k > 0 then begin
                ignore (Machine.run g ~fuel:k : Machine.stop_reason);
                ignore (Machine.run m ~fuel:k : Machine.stop_reason)
              end
            end;
            result := Some (finish ~tail_lines ~diverged:true ~insn ())
        | None -> (
            match (!gstop, !mstop) with
            | None, None -> ()
            | Some a, Some b when a = b -> ()
            | _ ->
                (* identical streams but different stop conditions: the
                   divergence is the stop itself *)
                let insn =
                  match (!mstop, !gstop) with
                  | Some st, _ ->
                      Format.asprintf "mutant stop: %a" Machine.pp_stop_reason
                        st
                  | None, Some st ->
                      Format.asprintf "golden stop: %a" Machine.pp_stop_reason
                        st
                  | None, None -> ""
                in
                result := Some (finish ~diverged:true ~insn ()))
      done;
      match !result with
      | Some r -> r
      | None -> finish ~diverged:false ~insn:"" ())

let triage ?config ?(sample = 8) ?(tail = 16) ~fuel program results =
  let candidates =
    List.filter
      (fun (_, _, o) -> match o with Sdc | Crashed | Hung -> true | _ -> false)
      results
  in
  let n = List.length candidates in
  let picked =
    if n <= sample then candidates
    else begin
      (* deterministic stride sample spread across the whole campaign *)
      let arr = Array.of_list candidates in
      List.init sample (fun k -> arr.(k * n / sample))
    end
  in
  List.map (triage_one ?config ~tail ~fuel program) picked

let top_sites records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.tg_diverged then
        let k = t.tg_mutant_pc in
        Hashtbl.replace tbl k
          (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (p1, c1) (p2, c2) ->
         match compare c2 c1 with 0 -> compare p1 p2 | c -> c)

(* JSONL rendering, same hand-rolled discipline as {!Journal}: one
   object per line, escapes that cover everything the disassembler and
   [Fault.to_string] can produce. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let triage_to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"index\":%d,\"fault\":\"%s\",\"outcome\":\"%s\",\"diverged\":%b,\
        \"instret\":%d,\"golden_pc\":\"0x%08x\",\"mutant_pc\":\"0x%08x\",\
        \"insn\":\"%s\",\"reg_diffs\":["
       t.tg_index
       (json_escape (Fault.to_string t.tg_fault))
       (outcome_name t.tg_outcome) t.tg_diverged t.tg_instret t.tg_golden_pc
       t.tg_mutant_pc (json_escape t.tg_insn));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"reg\":\"%s\",\"golden\":\"0x%x\",\"mutant\":\"0x%x\"}"
           (json_escape d.rd_name) d.rd_golden d.rd_mutant))
    t.tg_reg_diffs;
  Buffer.add_string b
    (Printf.sprintf "],\"mem_diff\":%b,\"mip_golden\":%d,\"mip_mutant\":%d,\"tail\":["
       t.tg_mem_diff t.tg_mip_golden t.tg_mip_mutant);
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape line);
      Buffer.add_char b '"')
    t.tg_tail;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_triage fmt t =
  Format.fprintf fmt "#%d %s -> %s: %s at instret=%d pc=0x%08x (%s)"
    t.tg_index (Fault.describe t.tg_fault) (outcome_name t.tg_outcome)
    (if t.tg_diverged then "first divergence" else "no divergence located")
    t.tg_instret t.tg_mutant_pc t.tg_insn
