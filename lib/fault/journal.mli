(** Append-only campaign journals: one JSONL file per campaign run.

    The first line is a header binding the journal to its campaign
    (fault-list seed, mutant count, shard, and an MD5 of the program
    image); every following line records one classified mutant.  The
    writer appends records as the engine classifies them and fsyncs in
    small batches, so after a crash or SIGINT at most a batch of
    classifications needs re-running — {!append_to} reads the survivors
    back, drops a torn final line, and resumes appending in place.

    Journals written by shards of the same campaign ([--shard i/n])
    {!merge} into one record set, which must be conflict-free: the
    engine is deterministic per mutant, so two journals disagreeing on
    an outcome means they were not the same campaign.

    See [docs/CAMPAIGNS.md] for the on-disk format. *)

type header = {
  j_seed : int;  (** fault-list generation seed *)
  j_total : int;  (** mutants in the {e full} campaign, across shards *)
  j_shard : int * int;  (** [(index, count)]; [(0, 1)] = unsharded *)
  j_program : string;  (** MD5 (hex) of the serialized program image *)
}

type record = {
  r_index : int;  (** stable index in the full fault list *)
  r_fault : Fault.t;
  r_outcome : Campaign.outcome;
}

val header_of :
  ?shard:int * int -> seed:int -> total:int -> S4e_asm.Program.t -> header

val expected_count : header -> int
(** Mutants this journal's shard is responsible for. *)

val is_complete : header -> record list -> bool

(** {1 Line format}

    The JSONL level of the format, exposed so the fleet layer can move
    journal lines over the wire without depending on the engine: a
    worker streams [record_line]s as the campaign classifies mutants,
    and the orchestrator — which reads them as plain JSON — hands the
    already-merged lines of a reclaimed shard back to the next holder,
    which re-parses them here to resume. *)

val header_line : header -> string
(** One line, no trailing newline — exactly what {!create} writes. *)

val record_line : record -> string

val parse_header : string -> (header, string) result
(** Inverse of {!header_line}; rejects lines without the
    [s4e_journal] version field. *)

val parse_record : string -> (record, string) result

(** {1 Writing} *)

type writer

val create :
  ?sink:S4e_obs.Trace_events.t -> path:string -> header ->
  (writer, string) result
(** Truncates [path] and writes the header (synced immediately). *)

val append_to :
  ?sink:S4e_obs.Trace_events.t -> path:string -> header ->
  (writer * record list, string) result
(** Reopens an existing journal for resume: validates that its header
    matches [header] exactly, returns the records already present
    (deduplicated by index, sorted), and positions the writer after the
    last {e complete} line — a torn final line from the interrupted run
    is overwritten. *)

val write : writer -> record -> unit
(** Appends one record.  Thread-safe; fsyncs every 64 records (each
    flush wrapped in a [journal-flush] trace span when [sink] is
    given). *)

val flush : writer -> unit
(** Flush and fsync now — call from a signal-triggered shutdown path. *)

val close : writer -> unit

(** {1 Reading} *)

val read : string -> (header * record list, string) result
(** Records come back deduplicated by index (last write wins) and
    sorted.  A torn final line is dropped silently; a malformed
    {e terminated} line is corruption and an error. *)

val merge :
  (header * record list) list ->
  (header * record list, string) result
(** Combines shard journals of one campaign into a single unsharded
    record set.  Errors if the headers disagree on seed, total, or
    program, or if two journals classify the same mutant index
    differently (same-outcome overlap is tolerated). *)
