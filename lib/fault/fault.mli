(** Fault models: bit flips in architectural state and memory.

    The fault paper's model space: permanent and transient single-bit
    flips in the register file, in instruction memory (equivalent to
    binary mutation), and in data memory.  A (fault, program) pair is a
    {e mutant}; running all mutants and classifying their outcomes is a
    campaign ({!Campaign}). *)

type word = S4e_bits.Bits.word

type location =
  | Gpr of S4e_isa.Reg.t * int  (** (register, bit 0..31) *)
  | Fpr of S4e_isa.Reg.t * int
  | Code of word * int  (** (instruction address, bit) — binary mutation *)
  | Data of word * int  (** (data address, bit within the byte's word) *)

type kind =
  | Permanent  (** stuck-at: the bit is held at its flipped value *)
  | Transient of int  (** single flip after N retired instructions *)

type t = { loc : location; kind : kind }

val describe : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val to_string : t -> string
(** Stable machine-readable form, e.g. ["gpr:10:24:perm"] or
    ["code:0x80000000:3:trans:43"].  Used in campaign journal records. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)
