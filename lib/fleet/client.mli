(** Minimal JSON-over-HTTP client for the fleet API.

    Holds one keep-alive connection to the orchestrator and re-opens it
    once per request on failure, so a server restart or a dropped
    connection surfaces as at most one transparent retry.  Thread-safe:
    requests are serialized over the single connection. *)

type t

val create : Http.addr -> t
(** No I/O happens until the first {!request}. *)

val addr : t -> Http.addr

val request :
  t -> meth:string -> path:string -> ?body:Json.t -> unit ->
  (int * Json.t, string) result
(** [(status, parsed body)] — transport and JSON-parse failures are
    [Error].  Non-2xx statuses are returned, not raised: the fleet API
    encodes protocol outcomes (stale lease, conflict) in them. *)

val close : t -> unit
(** Drops the connection; a later {!request} reconnects. *)
