module Obs = S4e_obs

type runner =
  spec:Json.t ->
  shard:int * int ->
  resume:(string * string list) option ->
  emit:(string -> unit) ->
  cancelled:(unit -> bool) ->
  (unit, string) result

type outcome = {
  o_shards_ok : int;
  o_shards_failed : int;
  o_records : int;
}

type grant = {
  g_job : string;
  g_shard : int;
  g_shards : int;
  g_lease : string;
  g_ttl : float;
  g_spec : Json.t;
  g_resume : (string * string list) option;
}

let parse_grant v =
  match
    ( Json.mem_str "job" v,
      Json.mem_int "shard" v,
      Json.mem_int "shards" v,
      Json.mem_str "lease" v )
  with
  | Some job, Some shard, Some shards, Some lease ->
      let ttl =
        match Json.mem "ttl" v with
        | Some t -> Option.value (Json.num t) ~default:30.
        | None -> 30.
      in
      let resume =
        match Json.mem "resume" v with
        | Some (Json.Obj _ as r) -> (
            match (Json.mem_str "header" r, Json.mem_list "lines" r) with
            | Some header, Some lines ->
                Some (header, List.filter_map Json.str lines)
            | _ -> None)
        | _ -> None
      in
      Ok
        { g_job = job; g_shard = shard; g_shards = shards; g_lease = lease;
          g_ttl = ttl;
          g_spec = Option.value (Json.mem "spec" v) ~default:Json.Null;
          g_resume = resume }
  | _ -> Error "malformed lease grant"

let run ?(name = "worker") ?(poll_s = 0.5) ?(batch = 32) ?stop ?(drain = false)
    ?metrics ?(log = fun _ -> ()) ~client ~runner () =
  let stopped () = match stop with Some r -> !r | None -> false in
  let c name = Option.map (fun r -> Obs.Metrics.counter r name) metrics in
  Option.iter Obs.Metrics.register_process_gauges metrics;
  let c_ok = c "worker.shards.completed" in
  let c_failed = c "worker.shards.failed" in
  let c_sent = c "worker.records.sent" in
  let bump c = Option.iter Obs.Metrics.incr c in
  let bump_n c n = Option.iter (fun c -> Obs.Metrics.add c n) c in
  let ok = ref 0 and failed = ref 0 and records = ref 0 in
  (* First contact: an unreachable server is a setup error, not an idle
     fleet — later transport hiccups are retried by the pull loop. *)
  match Client.request client ~meth:"GET" ~path:"/healthz" () with
  | Error e -> Error ("orchestrator unreachable: " ^ e)
  | Ok _ ->
      let run_shard g =
        let lost = Atomic.make false in
        let buffer = ref [] and buffered = ref 0 in
        let post_lines lines =
          let body =
            Json.Obj
              [ ("lease", Json.String g.g_lease);
                ("worker", Json.String name);
                ("lines", Json.List (List.map (fun l -> Json.String l) lines))
              ]
          in
          match
            Client.request client ~meth:"POST" ~path:"/api/records" ~body ()
          with
          | Ok (200, reply) ->
              records := !records + List.length lines;
              bump_n c_sent (List.length lines);
              if Json.mem_bool "lease_ok" reply = Some false then
                Atomic.set lost true
          | Ok (_, _) | Error _ ->
              (* Conflict, job gone, or transport failure: the shard is
                 no longer ours to finish.  Streamed records are merged
                 idempotently, so abandoning here loses nothing. *)
              Atomic.set lost true
        in
        let flush () =
          if !buffer <> [] then begin
            post_lines (List.rev !buffer);
            buffer := [];
            buffered := 0
          end
        in
        let emit line =
          buffer := line :: !buffer;
          incr buffered;
          if !buffered >= batch then flush ()
        in
        (* Heartbeat: renew at ttl/3 so one missed beat still leaves
           slack before expiry.  The wait is chopped into short naps so
           a finished shard is joined in ~50 ms, not a full interval. *)
        let shard_done = Atomic.make false in
        let heartbeat =
          Thread.create
            (fun () ->
              let interval = Float.max 0.05 (g.g_ttl /. 3.) in
              let nap until =
                let rec go remaining =
                  if remaining > 0.
                     && not (Atomic.get shard_done || Atomic.get lost)
                  then begin
                    let step = Float.min 0.05 remaining in
                    Thread.delay step;
                    go (remaining -. step)
                  end
                in
                go until
              in
              while not (Atomic.get shard_done || Atomic.get lost) do
                nap interval;
                if not (Atomic.get shard_done || Atomic.get lost) then
                  match
                    Client.request client ~meth:"POST" ~path:"/api/renew"
                      ~body:(Json.Obj [ ("lease", Json.String g.g_lease) ])
                      ()
                  with
                  | Ok (200, reply)
                    when Json.mem_bool "ok" reply = Some true ->
                      ()
                  | Ok _ | Error _ -> Atomic.set lost true
              done)
            ()
        in
        let cancelled () = stopped () || Atomic.get lost in
        let result =
          try
            runner ~spec:g.g_spec ~shard:(g.g_shard, g.g_shards)
              ~resume:g.g_resume ~emit ~cancelled
          with e -> Error (Printexc.to_string e)
        in
        flush ();
        Atomic.set shard_done true;
        (try Thread.join heartbeat with _ -> ());
        let lease_body = Json.Obj [ ("lease", Json.String g.g_lease) ] in
        match (result, Atomic.get lost, stopped ()) with
        | Ok (), false, false -> (
            match
              Client.request client ~meth:"POST" ~path:"/api/complete"
                ~body:lease_body ()
            with
            | Ok (200, _) ->
                incr ok;
                bump c_ok;
                log
                  (Printf.sprintf "%s: job %s shard %d/%d complete" name
                     g.g_job g.g_shard g.g_shards)
            | Ok (_, reply) ->
                incr failed;
                bump c_failed;
                log
                  (Printf.sprintf "%s: job %s shard %d rejected: %s" name
                     g.g_job g.g_shard
                     (Option.value (Json.mem_str "error" reply)
                        ~default:"(no reason)"))
            | Error e ->
                incr failed;
                bump c_failed;
                log (Printf.sprintf "%s: complete failed: %s" name e))
        | (Error _ | Ok ()), _, _ ->
            (match result with
            | Error e ->
                log
                  (Printf.sprintf "%s: job %s shard %d failed: %s" name
                     g.g_job g.g_shard e)
            | Ok () ->
                log
                  (Printf.sprintf "%s: job %s shard %d abandoned" name
                     g.g_job g.g_shard));
            incr failed;
            bump c_failed;
            ignore
              (Client.request client ~meth:"POST" ~path:"/api/release"
                 ~body:lease_body ()
                : (int * Json.t, string) result)
      in
      let rec loop () =
        if stopped () then ()
        else
          match
            Client.request client ~meth:"POST" ~path:"/api/lease"
              ~body:(Json.Obj [ ("worker", Json.String name) ])
              ()
          with
          | Ok (200, reply) when Json.mem_bool "idle" reply = Some true ->
              let running =
                Option.value (Json.mem_int "running" reply) ~default:0
              in
              if drain && running = 0 then ()
              else begin
                Thread.delay poll_s;
                loop ()
              end
          | Ok (200, reply) -> (
              match parse_grant reply with
              | Ok g ->
                  log
                    (Printf.sprintf "%s: leased job %s shard %d/%d" name
                       g.g_job g.g_shard g.g_shards);
                  run_shard g;
                  loop ()
              | Error e ->
                  log (Printf.sprintf "%s: bad grant: %s" name e);
                  Thread.delay poll_s;
                  loop ())
          | Ok (status, _) ->
              log (Printf.sprintf "%s: lease request got HTTP %d" name status);
              Thread.delay poll_s;
              loop ()
          | Error e ->
              log (Printf.sprintf "%s: lease request failed: %s" name e);
              Thread.delay poll_s;
              loop ()
      in
      loop ();
      Ok { o_shards_ok = !ok; o_shards_failed = !failed; o_records = !records }
