(** Shard lease table: one job's shards, leased to workers with expiry.

    Every shard of a job is in one of three states — queued, leased, or
    done.  A worker acquires the lowest-numbered available shard and
    must keep the lease alive ({!renew} — the server also renews on
    every record batch it accepts); a lease that outlives its TTL is
    {e reclaimed}: the shard goes back to the queue and the next
    {!acquire} hands it to another worker under a fresh lease id.  The
    stale lease id is then rejected by {!renew}/{!complete}/{!release},
    which is how a worker that lost a shard to its own slowness (or a
    network partition) finds out.

    Lease ids are unique across the table's lifetime, so a reclaimed
    shard can never be completed by its previous holder.  Record
    {e merging} is not this module's job: a dead worker's
    already-streamed records stay valid (the campaign engine is
    deterministic per mutant), so the orchestrator accepts record lines
    regardless of lease state and only the {e liveness} bookkeeping
    lives here.

    Not thread-safe on its own — the orchestrator serializes access.
    Time is passed in by the caller ([now]), so tests and simulations
    can drive expiry deterministically. *)

type t

type holder = {
  h_lease : int;
  h_worker : string;
  h_since : float;  (** when this holder acquired the shard *)
  h_expires : float;
}

val create : count:int -> t
(** [count] shards, all queued. *)

val count : t -> int
val queued : t -> int
val leased : t -> int
val completed : t -> int
val reclaimed_total : t -> int
(** Total leases that expired and were reclaimed (monotonic). *)

val all_done : t -> bool

val acquire : t -> now:float -> ttl:float -> worker:string -> (int * int) option
(** [(shard, lease)] for the lowest available shard — expired leases
    are reclaimed first, so a dead worker's shard is handed out again
    here.  [None] when every shard is done or validly leased. *)

val renew : t -> now:float -> ttl:float -> lease:int -> bool
(** Extends the lease's expiry; [false] if the lease is stale (expired,
    reclaimed, completed, or never granted). *)

val shard_of : t -> now:float -> lease:int -> int option
(** The shard a still-valid lease holds. *)

val complete : t -> now:float -> lease:int -> (int, string) result
(** Marks the lease's shard done; the shard number on success. *)

val release : t -> lease:int -> bool
(** Voluntarily returns the shard to the queue (worker shutdown);
    [false] if the lease was already stale. *)

val holders : t -> (int * holder) list
(** [(shard, holder)] for every currently leased shard. *)

val oldest_age : t -> now:float -> float
(** Age in seconds of the oldest live lease; [0.] when none. *)
