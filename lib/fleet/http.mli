(** Minimal HTTP/1.1 framing over TCP or Unix-domain sockets.

    Just enough of the protocol for the fleet's JSON API: request and
    response lines, [Content-Length]-framed bodies, persistent
    connections (HTTP/1.1 keep-alive — the worker reuses one connection
    for its whole lease/records/complete cycle).  No chunked encoding,
    no TLS, no pipelining. *)

(** {1 Addresses} *)

type addr =
  | Tcp of string * int  (** host, port (port 0 = ephemeral on listen) *)
  | Unix_path of string  (** Unix-domain socket path *)

val addr_of_string : string -> (addr, string) result
(** ["unix:/path"] or ["PATH.sock"] (anything containing '/') selects a
    Unix socket; ["HOST:PORT"] or a bare ["PORT"] select TCP (bare
    ports bind/connect on 127.0.0.1). *)

val addr_to_string : addr -> string

val listen : addr -> (Unix.file_descr, string) result
(** Bind + listen (backlog 64, [SO_REUSEADDR]; an existing Unix socket
    path is unlinked first). *)

val bound_addr : Unix.file_descr -> addr -> addr
(** The address actually bound — resolves an ephemeral TCP port 0 to
    the kernel-assigned port. *)

val connect : addr -> (Unix.file_descr, string) result

(** {1 Messages} *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_headers : (string * string) list;  (** keys lowercased *)
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_headers : (string * string) list;  (** keys lowercased *)
  rs_body : string;
}

val header : string -> (string * string) list -> string option

val read_request : in_channel -> (request, [ `Eof | `Bad of string ]) result
(** [`Eof] means the peer closed the connection between requests (the
    normal end of a keep-alive session); [`Bad] is a framing error. *)

val write_request :
  out_channel -> meth:string -> path:string -> body:string -> unit

val read_response : in_channel -> (response, string) result

val write_response :
  out_channel -> ?content_type:string -> status:int -> string -> unit
(** Writes status line, [Content-Length], [Content-Type] (default
    [application/json]) and the body, then flushes.  The connection is
    left open (HTTP/1.1 keep-alive). *)
