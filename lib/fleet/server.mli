(** The campaign fleet orchestrator behind [s4e serve].

    Jobs — a JSON spec naming a program, a fault model, and a shard
    count — are submitted over a minimal HTTP/1.1 JSON API; workers
    pull shard {e leases} with expiry, stream classified-mutant journal
    lines back in batches, and complete their shards.  The server
    merges the streamed records live under the exact
    {!S4e_fault.Journal.merge} semantics: records are deduplicated by
    mutant index, and two shards disagreeing on a mutant's fault or
    outcome class fail the job (the engine is deterministic per mutant,
    so a disagreement means the workers did not run the same campaign).
    A worker that dies mid-shard costs only its unstreamed tail: the
    lease expires, the shard is re-leased, and the next holder receives
    the already-merged records of that shard to resume from.

    The server understands journal lines only as JSON — it depends on
    [unix]/[threads]/[s4e_obs] alone.  Workers produce the lines with
    {!S4e_fault.Journal} via the {!S4e_core.Flows.fault_campaign}
    streaming hook, and the merged journal files the server writes are
    read back by [s4e merge-journals] unchanged.

    {2 API}

    All bodies are JSON; lease ids are opaque strings.

    - [POST /api/jobs] — submit a spec (its [shards] field, default 1,
      sets the shard count); returns [{"job": id}].
    - [GET /api/jobs], [GET /api/jobs/ID] — status.
    - [POST /api/lease] [{"worker": name}] — returns a grant
      [{job, shard, shards, lease, ttl, spec, resume}] (where [resume]
      carries the shard's already-merged journal lines) or
      [{"idle": true, "running": n}].
    - [POST /api/renew] [{"lease": id}] — heartbeat; accepted record
      batches also renew.
    - [POST /api/records] [{"lease": id, "lines": [...]}] — stream
      journal lines (the header line is recognised and checked for
      compatibility; record lines are merged).  Records are accepted
      even from a stale lease — they are valid work — but the reply's
      [lease_ok: false] tells the worker to stop.
    - [POST /api/complete], [POST /api/release] [{"lease": id}].
    - [GET /metrics] — the attached metrics registry as JSON.
    - [GET /healthz]. *)

type t

val create :
  ?ttl:float ->
  ?journal_dir:string ->
  ?metrics:S4e_obs.Metrics.t ->
  ?clock:(unit -> float) ->
  ?log:(string -> unit) ->
  unit ->
  t
(** [ttl] (default 30 s) is the lease expiry.  With [journal_dir], each
    completed job's merged journal is written to [DIR/ID.jsonl] (and
    {!stop} flushes running jobs to [DIR/ID.partial.jsonl]).  [clock]
    (default [Unix.gettimeofday]) injects time for deterministic lease
    expiry in tests.  [log] receives one line per lifecycle event. *)

val handle : t -> Http.request -> Http.response
(** The transport-independent request handler — tests and simulations
    drive the whole orchestration state machine through this without a
    socket. *)

val start : t -> Http.addr -> (Http.addr, string) result
(** Binds, then serves {!handle} from a background accept thread
    (thread per connection, keep-alive).  Returns the bound address —
    with [Tcp (host, 0)] the kernel-assigned ephemeral port is
    resolved. *)

val stop : t -> unit
(** Stops accepting, flushes partial journals for running jobs, and
    wakes {!wait}.  Idempotent. *)

val wait : t -> unit
(** Blocks until {!stop}. *)

val jobs_running : t -> int
val jobs_total : t -> int
