(** The fleet worker pull loop behind [s4e worker].

    A worker repeatedly asks the orchestrator for a shard lease, runs
    the campaign shard through the caller-supplied [runner], and streams
    the journal lines the runner emits back in batches.  While a shard
    runs, a heartbeat thread renews the lease every [ttl/3]; if the
    server reports the lease stale (the shard was reclaimed after a
    stall or partition), the runner is cancelled cooperatively and the
    shard abandoned — its streamed records remain valid on the server.

    The [runner] receives the job spec verbatim, the shard coordinates,
    the resume payload from the lease grant (header line + journal
    lines already merged for this shard), an [emit] sink for fresh
    journal lines, and a [cancelled] poll it must check between
    mutants.  It is the binary's job to turn the spec into a
    {!S4e_core.Flows.fault_campaign} call — this module stays free of
    engine dependencies so it can be driven by fakes in tests. *)

type runner =
  spec:Json.t ->
  shard:int * int ->
  resume:(string * string list) option ->
  emit:(string -> unit) ->
  cancelled:(unit -> bool) ->
  (unit, string) result
(** [resume = Some (header_line, record_lines)] when the server has
    prior records for this shard. *)

type outcome = {
  o_shards_ok : int;  (** shards run to completion and acknowledged *)
  o_shards_failed : int;  (** runner errors and lost leases *)
  o_records : int;  (** journal lines streamed (headers included) *)
}

val run :
  ?name:string ->
  ?poll_s:float ->
  ?batch:int ->
  ?stop:bool ref ->
  ?drain:bool ->
  ?metrics:S4e_obs.Metrics.t ->
  ?log:(string -> unit) ->
  client:Client.t ->
  runner:runner ->
  unit ->
  (outcome, string) result
(** Pulls until [stop] is set — or, with [drain], until the server
    reports itself idle with no running jobs (the mode bench and CI
    smokes use to run a finite fleet).  [poll_s] (default 0.5) is the
    idle backoff; [batch] (default 32) is the lines-per-POST flush
    threshold.  [Error] only for submit-level protocol failures (the
    server unreachable on first contact); per-shard failures are
    counted in the outcome and the loop continues. *)
