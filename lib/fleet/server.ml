module Obs = S4e_obs

(* ---------------- journal-line interop ----------------

   The server moves journal lines produced by S4e_fault.Journal but
   depends only on unix/threads/s4e_obs, so it reads them as what they
   are: single-line JSON objects.  The header regenerated for resume
   grants reproduces Journal.header_line's exact format. *)

type jheader = { jh_seed : int; jh_total : int; jh_program : string }

type jrecord = {
  jr_index : int;
  jr_fault : string;  (* canonical Fault.to_string serialization *)
  jr_outcome : string;  (* outcome name; "errored" collapses messages *)
  jr_line : string;  (* the verbatim line, for journals and resume *)
}

type jline = Header of jheader | Record of jrecord

let classify_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok v -> (
      if Json.mem "s4e_journal" v <> None then
        match
          ( Json.mem_int "seed" v,
            Json.mem_int "total" v,
            Json.mem_str "program" v )
        with
        | Some seed, Some total, Some program ->
            Ok (Header { jh_seed = seed; jh_total = total; jh_program = program })
        | _ -> Error "malformed journal header line"
      else
        match
          ( Json.mem_int "i" v,
            Json.mem_str "fault" v,
            Json.mem_str "outcome" v )
        with
        | Some i, Some fault, Some outcome ->
            Ok
              (Record
                 { jr_index = i; jr_fault = fault; jr_outcome = outcome;
                   jr_line = line })
        | _ -> Error "malformed journal record line")

let header_line h ~shard:(i, n) =
  Printf.sprintf
    "{\"s4e_journal\":1,\"seed\":%d,\"total\":%d,\"shard\":\"%d/%d\",\
     \"program\":\"%s\"}"
    h.jh_seed h.jh_total i n (Json.escape h.jh_program)

(* indices in [0, total) congruent to shard (mod count) *)
let expected_in_shard ~total ~count shard =
  let q = total / count and r = total mod count in
  q + (if shard < r then 1 else 0)

(* ---------------- jobs ---------------- *)

type jstate = Running | Done | Failed of string

type worker_stat = {
  mutable w_records : int;
  mutable w_first : float;
  mutable w_last : float;
}

type job = {
  j_id : string;
  j_spec : Json.t;
  j_shards : int;
  j_lease : Lease.t;
  j_created : float;
  mutable j_state : jstate;
  mutable j_finished : float option;
  mutable j_header : jheader option;
  j_records : (int, jrecord) Hashtbl.t;
  mutable j_have : int array;  (* fresh records per shard *)
  mutable j_dups : int;
  mutable j_journal : string option;  (* merged journal path, once written *)
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  clock : unit -> float;
  ttl : float;
  journal_dir : string option;
  metrics : Obs.Metrics.t option;
  log : string -> unit;
  started : float;
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (* submission order, newest first *)
  mutable next_job : int;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  workers : (string, worker_stat) Hashtbl.t;
  mutable last_merge : float;
  (* counters (None when no registry is attached) *)
  c_requests : Obs.Metrics.counter option;
  c_leases : Obs.Metrics.counter option;
  c_records : Obs.Metrics.counter option;
  c_dups : Obs.Metrics.counter option;
  c_shards_done : Obs.Metrics.counter option;
  c_jobs_done : Obs.Metrics.counter option;
  c_jobs_failed : Obs.Metrics.counter option;
  h_batch : Obs.Metrics.histogram option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let jobs_in_order t =
  List.rev_map (fun id -> Hashtbl.find t.jobs id) t.order

let jobs_running t =
  locked t (fun () ->
      List.length
        (List.filter (fun j -> j.j_state = Running) (jobs_in_order t)))

let jobs_total t = locked t (fun () -> Hashtbl.length t.jobs)

let register_gauges t reg =
  let fold f init = locked t (fun () -> List.fold_left f init (jobs_in_order t)) in
  Obs.Metrics.gauge_int reg "fleet.jobs.total" (fun () ->
      locked t (fun () -> Hashtbl.length t.jobs));
  Obs.Metrics.gauge_int reg "fleet.jobs.running" (fun () ->
      fold (fun n j -> if j.j_state = Running then n + 1 else n) 0);
  Obs.Metrics.gauge_int reg "fleet.shards.queued" (fun () ->
      fold
        (fun n j ->
          if j.j_state = Running then n + Lease.queued j.j_lease else n)
        0);
  Obs.Metrics.gauge_int reg "fleet.shards.leased" (fun () ->
      fold (fun n j -> n + Lease.leased j.j_lease) 0);
  Obs.Metrics.gauge_int reg "fleet.leases.reclaimed" (fun () ->
      fold (fun n j -> n + Lease.reclaimed_total j.j_lease) 0);
  Obs.Metrics.gauge_float reg "fleet.leases.oldest_age_s" (fun () ->
      let now = t.clock () in
      fold (fun age j -> Float.max age (Lease.oldest_age j.j_lease ~now)) 0.)

let create ?(ttl = 30.0) ?journal_dir ?metrics ?(clock = Unix.gettimeofday)
    ?(log = fun _ -> ()) () =
  let c name = Option.map (fun r -> Obs.Metrics.counter r name) metrics in
  let t =
    { mutex = Mutex.create ();
      cond = Condition.create ();
      clock;
      ttl;
      journal_dir;
      metrics;
      log;
      started = clock ();
      jobs = Hashtbl.create 16;
      order = [];
      next_job = 1;
      stopped = false;
      accept_thread = None;
      workers = Hashtbl.create 16;
      last_merge = clock ();
      c_requests = c "fleet.http.requests";
      c_leases = c "fleet.leases.granted";
      c_records = c "fleet.records.received";
      c_dups = c "fleet.records.duplicates";
      c_shards_done = c "fleet.shards.completed";
      c_jobs_done = c "fleet.jobs.completed";
      c_jobs_failed = c "fleet.jobs.failed";
      h_batch =
        Option.map
          (fun r ->
            Obs.Metrics.histogram r "fleet.records.batch_size"
              ~bounds:[| 1; 8; 32; 64; 128; 512 |])
          metrics }
  in
  (match metrics with
  | Some reg ->
      register_gauges t reg;
      Obs.Metrics.gauge_float reg "fleet.merge.last_record_age_s" (fun () ->
          locked t (fun () -> t.clock () -. t.last_merge));
      Obs.Metrics.register_process_gauges reg
  | None -> ());
  t

let bump c = Option.iter Obs.Metrics.incr c
let bump_n c n = Option.iter (fun c -> Obs.Metrics.add c n) c

(* per-worker throughput gauges, registered on first sight *)
let worker_stat t name =
  match Hashtbl.find_opt t.workers name with
  | Some w -> w
  | None ->
      let now = t.clock () in
      let w = { w_records = 0; w_first = now; w_last = now } in
      Hashtbl.replace t.workers name w;
      (match t.metrics with
      | Some reg ->
          Obs.Metrics.gauge_int reg
            (Printf.sprintf "fleet.worker.%s.records" name)
            (fun () -> w.w_records);
          Obs.Metrics.gauge_float reg
            (Printf.sprintf "fleet.worker.%s.mutants_per_s" name)
            (fun () ->
              let dt = w.w_last -. w.w_first in
              if dt <= 0. then 0. else float_of_int w.w_records /. dt)
      | None -> ());
      w

(* ---------------- job bookkeeping (caller holds the lock) -------- *)

let job_summary j =
  let masked = ref 0 and sdc = ref 0 and crashed = ref 0 in
  let hung = ref 0 and errored = ref 0 in
  Hashtbl.iter
    (fun _ r ->
      match r.jr_outcome with
      | "masked" -> incr masked
      | "sdc" -> incr sdc
      | "crashed" -> incr crashed
      | "hung" -> incr hung
      | _ -> incr errored)
    j.j_records;
  Json.Obj
    [ ("masked", Json.Int !masked); ("sdc", Json.Int !sdc);
      ("crashed", Json.Int !crashed); ("hung", Json.Int !hung);
      ("errored", Json.Int !errored);
      ("total", Json.Int (Hashtbl.length j.j_records)) ]

let sorted_records j =
  Hashtbl.fold (fun _ r acc -> r :: acc) j.j_records []
  |> List.sort (fun a b -> compare a.jr_index b.jr_index)

let write_journal t j ~partial =
  match (t.journal_dir, j.j_header) with
  | Some dir, Some h when Hashtbl.length j.j_records > 0 || not partial ->
      let path =
        Filename.concat dir
          (j.j_id ^ if partial then ".partial.jsonl" else ".jsonl")
      in
      (try
         let oc = open_out_bin path in
         output_string oc (header_line h ~shard:(0, 1));
         output_char oc '\n';
         List.iter
           (fun r ->
             output_string oc r.jr_line;
             output_char oc '\n')
           (sorted_records j);
         close_out oc;
         if not partial then j.j_journal <- Some path;
         t.log (Printf.sprintf "job %s: journal %s" j.j_id path)
       with Sys_error e ->
         t.log (Printf.sprintf "job %s: journal write failed: %s" j.j_id e))
  | _ -> ()

let fail_job t j msg =
  if j.j_state = Running then begin
    j.j_state <- Failed msg;
    j.j_finished <- Some (t.clock ());
    bump t.c_jobs_failed;
    t.log (Printf.sprintf "job %s: FAILED: %s" j.j_id msg)
  end

let maybe_finish t j =
  if j.j_state = Running && Lease.all_done j.j_lease then
    match j.j_header with
    | Some h when Hashtbl.length j.j_records >= h.jh_total ->
        j.j_state <- Done;
        j.j_finished <- Some (t.clock ());
        bump t.c_jobs_done;
        t.log (Printf.sprintf "job %s: done (%d records)" j.j_id h.jh_total);
        write_journal t j ~partial:false
    | Some h ->
        fail_job t j
          (Printf.sprintf "all shards complete but only %d/%d records"
             (Hashtbl.length j.j_records) h.jh_total)
    | None -> fail_job t j "all shards complete but no journal header seen"

(* Merge one record under Journal.merge semantics: dedup identical
   classifications, fail the job on a disagreement. *)
let merge_record t j (r : jrecord) =
  match Hashtbl.find_opt j.j_records r.jr_index with
  | None ->
      Hashtbl.replace j.j_records r.jr_index r;
      if j.j_shards > 0 then begin
        let s = r.jr_index mod j.j_shards in
        j.j_have.(s) <- j.j_have.(s) + 1
      end;
      t.last_merge <- t.clock ();
      `Fresh
  | Some prev
    when prev.jr_fault = r.jr_fault && prev.jr_outcome = r.jr_outcome ->
      `Dup
  | Some prev ->
      fail_job t j
        (Printf.sprintf "merge: mutant %d classified both %s and %s"
           r.jr_index prev.jr_outcome r.jr_outcome);
      `Conflict

let merge_header t j (h : jheader) =
  match j.j_header with
  | None ->
      if h.jh_total <= 0 then begin
        fail_job t j "journal header with non-positive total";
        `Conflict
      end
      else begin
        j.j_header <- Some h;
        `Fresh
      end
  | Some h0
    when h0.jh_seed = h.jh_seed && h0.jh_total = h.jh_total
         && h0.jh_program = h.jh_program ->
      `Dup
  | Some _ ->
      fail_job t j "merge: journals disagree on seed, total, or program";
      `Conflict

(* ---------------- responses ---------------- *)

let respond ?(status = 200) v =
  { Http.rs_status = status;
    rs_headers = [ ("content-type", "application/json") ];
    rs_body = Json.to_string v ^ "\n" }

let error_response status msg =
  respond ~status (Json.Obj [ ("error", Json.String msg) ])

let job_status_json t j =
  let now = t.clock () in
  let state, err =
    match j.j_state with
    | Running -> ("running", None)
    | Done -> ("done", None)
    | Failed e -> ("failed", Some e)
  in
  Json.Obj
    ([ ("job", Json.String j.j_id);
       ("state", Json.String state) ]
    @ (match err with Some e -> [ ("error", Json.String e) ] | None -> [])
    @ [ ("shards",
         Json.Obj
           [ ("count", Json.Int (Lease.count j.j_lease));
             ("queued", Json.Int (Lease.queued j.j_lease));
             ("leased", Json.Int (Lease.leased j.j_lease));
             ("done", Json.Int (Lease.completed j.j_lease));
             ("reclaimed", Json.Int (Lease.reclaimed_total j.j_lease)) ]);
        ("records", Json.Int (Hashtbl.length j.j_records));
        ("duplicates", Json.Int j.j_dups);
        ("total",
         match j.j_header with
         | Some h -> Json.Int h.jh_total
         | None -> Json.Null);
        ("summary", job_summary j);
        ("age_s",
         Json.Float
           (match j.j_finished with
           | Some f -> f -. j.j_created
           | None -> now -. j.j_created));
        ("journal",
         match j.j_journal with
         | Some p -> Json.String p
         | None -> Json.Null);
        ("spec", j.j_spec) ])

(* ---------------- endpoint handlers ---------------- *)

let parse_body body =
  match Json.parse body with
  | Ok v -> Ok v
  | Error e -> Error (error_response 400 e)

let handle_submit t body =
  match parse_body body with
  | Error r -> r
  | Ok spec ->
      let shards = max 1 (Option.value (Json.mem_int "shards" spec) ~default:1) in
      locked t (fun () ->
          let id = Printf.sprintf "j%d" t.next_job in
          t.next_job <- t.next_job + 1;
          let job =
            { j_id = id;
              j_spec = spec;
              j_shards = shards;
              j_lease = Lease.create ~count:shards;
              j_created = t.clock ();
              j_state = Running;
              j_finished = None;
              j_header = None;
              j_records = Hashtbl.create 256;
              j_have = Array.make shards 0;
              j_dups = 0;
              j_journal = None }
          in
          Hashtbl.replace t.jobs id job;
          t.order <- id :: t.order;
          t.log (Printf.sprintf "job %s: submitted (%d shards)" id shards);
          respond
            (Json.Obj [ ("job", Json.String id); ("shards", Json.Int shards) ]))

(* Fair multi-tenant lease choice: among running jobs with an available
   shard, pick the one with the fewest live leases (ties to the oldest
   submission), so concurrent jobs make progress together instead of
   draining in submission order. *)
let handle_lease t body =
  match parse_body body with
  | Error r -> r
  | Ok v ->
      let worker = Option.value (Json.mem_str "worker" v) ~default:"anon" in
      locked t (fun () ->
          let now = t.clock () in
          ignore (worker_stat t worker : worker_stat);
          let candidates =
            List.filter
              (fun j ->
                j.j_state = Running
                && Lease.queued j.j_lease > 0
                   (* count expired-but-unreaped leases as available *)
                   || (j.j_state = Running
                      && List.exists
                           (fun (_, h) -> h.Lease.h_expires <= now)
                           (Lease.holders j.j_lease)))
              (jobs_in_order t)
          in
          let running =
            List.length
              (List.filter (fun j -> j.j_state = Running) (jobs_in_order t))
          in
          let pick =
            List.fold_left
              (fun best j ->
                match best with
                | None -> Some j
                | Some b ->
                    if Lease.leased j.j_lease < Lease.leased b.j_lease then
                      Some j
                    else best)
              None candidates
          in
          match pick with
          | None ->
              respond
                (Json.Obj
                   [ ("idle", Json.Bool true); ("running", Json.Int running) ])
          | Some j -> (
              match Lease.acquire j.j_lease ~now ~ttl:t.ttl ~worker with
              | None ->
                  respond
                    (Json.Obj
                       [ ("idle", Json.Bool true);
                         ("running", Json.Int running) ])
              | Some (shard, lease) ->
                  bump t.c_leases;
                  let lease_id = Printf.sprintf "%s:%d" j.j_id lease in
                  t.log
                    (Printf.sprintf "job %s: shard %d/%d leased to %s (%s)"
                       j.j_id shard j.j_shards worker lease_id);
                  let known =
                    sorted_records j
                    |> List.filter (fun r -> r.jr_index mod j.j_shards = shard)
                  in
                  let resume =
                    match (j.j_header, known) with
                    | Some h, _ :: _ ->
                        Json.Obj
                          [ ("header",
                             Json.String
                               (header_line h ~shard:(shard, j.j_shards)));
                            ("lines",
                             Json.List
                               (List.map
                                  (fun r -> Json.String r.jr_line)
                                  known)) ]
                    | _ -> Json.Null
                  in
                  respond
                    (Json.Obj
                       [ ("job", Json.String j.j_id);
                         ("shard", Json.Int shard);
                         ("shards", Json.Int j.j_shards);
                         ("lease", Json.String lease_id);
                         ("ttl", Json.Float t.ttl);
                         ("spec", j.j_spec);
                         ("resume", resume) ])))

let find_lease t v =
  match Json.mem_str "lease" v with
  | None -> Error (error_response 400 "missing lease")
  | Some id -> (
      match String.index_opt id ':' with
      | None -> Error (error_response 400 ("malformed lease id: " ^ id))
      | Some i -> (
          let job_id = String.sub id 0 i in
          let lease =
            int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
          in
          match (Hashtbl.find_opt t.jobs job_id, lease) with
          | Some j, Some l -> Ok (j, l)
          | None, _ -> Error (error_response 404 ("unknown job: " ^ job_id))
          | _, None -> Error (error_response 400 ("malformed lease id: " ^ id))))

let handle_renew t body =
  match parse_body body with
  | Error r -> r
  | Ok v ->
      locked t (fun () ->
          match find_lease t v with
          | Error r -> r
          | Ok (j, lease) ->
              let ok =
                j.j_state = Running
                && Lease.renew j.j_lease ~now:(t.clock ()) ~ttl:t.ttl ~lease
              in
              respond (Json.Obj [ ("ok", Json.Bool ok) ]))

let handle_records t body =
  match parse_body body with
  | Error r -> r
  | Ok v ->
      locked t (fun () ->
          match find_lease t v with
          | Error r -> r
          | Ok (j, lease) ->
              let lines =
                Option.value (Json.mem_list "lines" v) ~default:[]
                |> List.filter_map Json.str
              in
              Option.iter
                (fun h -> Obs.Metrics.observe h (List.length lines))
                t.h_batch;
              let now = t.clock () in
              let lease_ok =
                j.j_state = Running
                && Lease.renew j.j_lease ~now ~ttl:t.ttl ~lease
              in
              if j.j_state <> Running then
                (* done or failed: the records are no longer needed *)
                respond
                  (Json.Obj
                     [ ("accepted", Json.Int 0);
                       ("duplicates", Json.Int 0);
                       ("lease_ok", Json.Bool false) ])
              else begin
                let worker =
                  Option.value (Json.mem_str "worker" v) ~default:"anon"
                in
                let fresh = ref 0 and dups = ref 0 in
                let bad = ref None in
                List.iter
                  (fun line ->
                    if !bad = None && j.j_state = Running then
                      match classify_line line with
                      | Error e -> bad := Some e
                      | Ok (Header h) -> (
                          match merge_header t j h with
                          | `Fresh | `Dup -> ()
                          | `Conflict -> ())
                      | Ok (Record r) -> (
                          (match j.j_header with
                          | Some h
                            when r.jr_index < 0 || r.jr_index >= h.jh_total ->
                              bad :=
                                Some
                                  (Printf.sprintf
                                     "record index %d out of range" r.jr_index)
                          | _ -> ());
                          if !bad = None then
                            match merge_record t j r with
                            | `Fresh -> incr fresh
                            | `Dup -> incr dups; j.j_dups <- j.j_dups + 1
                            | `Conflict -> ()))
                  lines;
                bump_n t.c_records !fresh;
                bump_n t.c_dups !dups;
                let w = worker_stat t worker in
                w.w_records <- w.w_records + !fresh;
                w.w_last <- now;
                match (!bad, j.j_state) with
                | Some e, _ -> error_response 400 e
                | None, Failed e -> error_response 409 e
                | None, _ ->
                    respond
                      (Json.Obj
                         [ ("accepted", Json.Int !fresh);
                           ("duplicates", Json.Int !dups);
                           ("lease_ok", Json.Bool lease_ok) ])
              end)

let handle_complete t body =
  match parse_body body with
  | Error r -> r
  | Ok v ->
      locked t (fun () ->
          match find_lease t v with
          | Error r -> r
          | Ok (j, lease) ->
              if j.j_state <> Running then
                error_response 409
                  (match j.j_state with
                  | Failed e -> e
                  | _ -> "job already finished")
              else
                let now = t.clock () in
                (* the shard must actually be fully classified *)
                let shard = Lease.shard_of j.j_lease ~now ~lease in
                match (shard, j.j_header) with
                | None, _ ->
                    error_response 410 "lease expired (shard reassigned)"
                | Some _, None ->
                    error_response 409 "no journal header streamed yet"
                | Some s, Some h ->
                    let expected =
                      expected_in_shard ~total:h.jh_total ~count:j.j_shards s
                    in
                    if j.j_have.(s) < expected then
                      error_response 409
                        (Printf.sprintf
                           "shard %d incomplete: %d/%d records" s j.j_have.(s)
                           expected)
                    else (
                      match Lease.complete j.j_lease ~now ~lease with
                      | Error e -> error_response 410 e
                      | Ok _ ->
                          bump t.c_shards_done;
                          t.log
                            (Printf.sprintf "job %s: shard %d complete"
                               j.j_id s);
                          maybe_finish t j;
                          respond
                            (Json.Obj
                               [ ("ok", Json.Bool true);
                                 ("job_state",
                                  Json.String
                                    (match j.j_state with
                                    | Done -> "done"
                                    | Running -> "running"
                                    | Failed _ -> "failed")) ])))

let handle_release t body =
  match parse_body body with
  | Error r -> r
  | Ok v ->
      locked t (fun () ->
          match find_lease t v with
          | Error r -> r
          | Ok (j, lease) ->
              let ok = Lease.release j.j_lease ~lease in
              if ok then t.log (Printf.sprintf "job %s: lease released" j.j_id);
              respond (Json.Obj [ ("ok", Json.Bool ok) ]))

let handle t (rq : Http.request) =
  bump t.c_requests;
  match (rq.Http.rq_method, rq.Http.rq_path) with
  | "POST", "/api/jobs" -> handle_submit t rq.Http.rq_body
  | "GET", "/api/jobs" ->
      locked t (fun () ->
          respond
            (Json.Obj
               [ ("jobs",
                  Json.List (List.map (job_status_json t) (jobs_in_order t)))
               ]))
  | "GET", path
    when String.length path > String.length "/api/jobs/"
         && String.sub path 0 (String.length "/api/jobs/") = "/api/jobs/" -> (
      let id =
        String.sub path (String.length "/api/jobs/")
          (String.length path - String.length "/api/jobs/")
      in
      locked t (fun () ->
          match Hashtbl.find_opt t.jobs id with
          | Some j -> respond (job_status_json t j)
          | None -> error_response 404 ("unknown job: " ^ id)))
  | "POST", "/api/lease" -> handle_lease t rq.Http.rq_body
  | "POST", "/api/renew" -> handle_renew t rq.Http.rq_body
  | "POST", "/api/records" -> handle_records t rq.Http.rq_body
  | "POST", "/api/complete" -> handle_complete t rq.Http.rq_body
  | "POST", "/api/release" -> handle_release t rq.Http.rq_body
  | "GET", "/metrics" -> (
      match t.metrics with
      | Some reg ->
          { Http.rs_status = 200;
            rs_headers = [ ("content-type", "application/json") ];
            rs_body = Obs.Metrics.to_json reg }
      | None -> error_response 404 "no metrics registry attached")
  | "GET", "/healthz" ->
      respond
        (Json.Obj
           [ ("ok", Json.Bool true);
             ("uptime_s", Json.Float (t.clock () -. t.started)) ])
  | ("GET" | "POST"), _ -> error_response 404 ("no such endpoint: " ^ rq.Http.rq_path)
  | _ -> error_response 405 "method not allowed"

(* ---------------- transport ---------------- *)

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Http.read_request ic with
    | Error `Eof -> ()
    | Error (`Bad msg) ->
        (try Http.write_response oc ~status:400
               (Json.to_string (Json.Obj [ ("error", Json.String msg) ]))
         with Sys_error _ -> ())
    | Ok rq ->
        let rs =
          if locked t (fun () -> t.stopped) then
            error_response 503 "server shutting down"
          else
            try handle t rq
            with e -> error_response 400 (Printexc.to_string e)
        in
        (match
           try
             Http.write_response oc ~status:rs.Http.rs_status rs.Http.rs_body;
             true
           with Sys_error _ -> false
         with
        | true -> loop ()
        | false -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let accept_loop t fd =
  let rec loop () =
    let stop = locked t (fun () -> t.stopped) in
    if not stop then begin
      (match Unix.select [ fd ] [] [] 0.25 with
      | [ _ ], _, _ -> (
          match Unix.accept fd with
          | conn, _ ->
              ignore
                (Thread.create
                   (fun () -> try serve_connection t conn with _ -> ())
                   ()
                  : Thread.t)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let start t addr =
  match Http.listen addr with
  | Error e -> Error e
  | Ok fd ->
      let bound = Http.bound_addr fd addr in
      let th = Thread.create (fun () -> accept_loop t fd) () in
      locked t (fun () -> t.accept_thread <- Some th);
      t.log ("listening on " ^ Http.addr_to_string bound);
      Ok bound

let stop t =
  let flush_jobs =
    locked t (fun () ->
        if t.stopped then []
        else begin
          t.stopped <- true;
          Condition.broadcast t.cond;
          List.filter
            (fun j ->
              j.j_state = Running && Hashtbl.length j.j_records > 0)
            (jobs_in_order t)
        end)
  in
  List.iter (fun j -> locked t (fun () -> write_journal t j ~partial:true))
    flush_jobs;
  match locked t (fun () -> t.accept_thread) with
  | Some th -> (try Thread.join th with _ -> ())
  | None -> ()

let wait t =
  Mutex.lock t.mutex;
  while not t.stopped do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex;
  match locked t (fun () -> t.accept_thread) with
  | Some th -> (try Thread.join th with _ -> ())
  | None -> ()
