type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        Buffer.add_string b
          (if Float.is_finite f then float_repr f else "null")
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (Printf.sprintf "json: %s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> bad (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else bad ("bad literal (wanted " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
            advance ();
            if !pos >= n then bad "unterminated escape"
            else begin
              (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'; advance ()
              | '\\' -> Buffer.add_char b '\\'; advance ()
              | '/' -> Buffer.add_char b '/'; advance ()
              | 'n' -> Buffer.add_char b '\n'; advance ()
              | 'r' -> Buffer.add_char b '\r'; advance ()
              | 't' -> Buffer.add_char b '\t'; advance ()
              | 'b' -> Buffer.add_char b '\b'; advance ()
              | 'f' -> Buffer.add_char b '\012'; advance ()
              | 'u' ->
                  if !pos + 4 >= n then bad "truncated \\u escape";
                  (match
                     int_of_string_opt
                       ("0x" ^ String.sub s (!pos + 1) 4)
                   with
                  | Some c -> Buffer.add_char b (Char.chr (c land 0xff))
                  | None -> bad "bad \\u escape");
                  pos := !pos + 5
              | _ -> bad "unknown escape");
              go ()
            end
        | c when Char.code c < 0x20 -> bad "raw control character in string"
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then bad "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> bad "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> bad "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> bad (Printf.sprintf "unexpected character '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error "json: trailing garbage after value"
    else Ok v
  with
  | Bad msg -> Error msg
  | Failure _ -> Error "json: bad number"

(* ---------------- accessors ---------------- *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function String s -> Some s | _ -> None

let int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let num = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None

let bind o f = Option.bind o f
let mem_str key v = bind (mem key v) str
let mem_int key v = bind (mem key v) int
let mem_bool key v = bind (mem key v) bool
let mem_list key v = bind (mem key v) list
