type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  addr : Http.addr;
  mutex : Mutex.t;
  mutable conn : conn option;
}

let create addr = { addr; mutex = Mutex.create (); conn = None }
let addr t = t.addr

let close_conn c =
  (try close_out_noerr c.oc with _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
      match Http.connect t.addr with
      | Error e -> Error e
      | Ok fd ->
          let c =
            { fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd }
          in
          t.conn <- Some c;
          Ok c)

let drop t =
  match t.conn with
  | Some c ->
      t.conn <- None;
      close_conn c
  | None -> ()

let roundtrip t ~meth ~path ~body =
  match ensure_conn t with
  | Error e -> Error e
  | Ok c -> (
      match
        Http.write_request c.oc ~meth ~path ~body;
        Http.read_response c.ic
      with
      | Ok rs -> Ok rs
      | Error e ->
          drop t;
          Error e
      | exception Sys_error e ->
          drop t;
          Error e
      | exception End_of_file ->
          drop t;
          Error "connection closed")

let request t ~meth ~path ?body () =
  let body = match body with Some v -> Json.to_string v | None -> "" in
  locked t (fun () ->
      (* A keep-alive connection the server closed (restart, idle
         timeout) fails on the first write or read — retry once on a
         fresh connection before reporting the error. *)
      let attempt = roundtrip t ~meth ~path ~body in
      let attempt =
        match attempt with Error _ -> roundtrip t ~meth ~path ~body | ok -> ok
      in
      match attempt with
      | Error e -> Error e
      | Ok rs -> (
          if String.trim rs.Http.rs_body = "" then
            Ok (rs.Http.rs_status, Json.Null)
          else
            match Json.parse (String.trim rs.Http.rs_body) with
            | Ok v -> Ok (rs.Http.rs_status, v)
            | Error e -> Error ("response body: " ^ e)))

let close t = locked t (fun () -> drop t)
