type holder = {
  h_lease : int;
  h_worker : string;
  h_since : float;
  h_expires : float;
}

type slot = Queued | Leased of holder | Done

type t = {
  slots : slot array;
  mutable next_lease : int;
  mutable done_count : int;
  mutable reclaimed : int;
}

let create ~count =
  if count <= 0 then invalid_arg "Lease.create: count must be positive";
  { slots = Array.make count Queued; next_lease = 1; done_count = 0;
    reclaimed = 0 }

let count t = Array.length t.slots

let queued t =
  Array.fold_left
    (fun n s -> match s with Queued -> n + 1 | _ -> n)
    0 t.slots

let leased t =
  Array.fold_left
    (fun n s -> match s with Leased _ -> n + 1 | _ -> n)
    0 t.slots

let completed t = t.done_count
let reclaimed_total t = t.reclaimed
let all_done t = t.done_count = Array.length t.slots

(* Reclaim every expired lease: the shard goes back to the queue and
   the old lease id becomes stale. *)
let reap t ~now =
  Array.iteri
    (fun i s ->
      match s with
      | Leased h when h.h_expires <= now ->
          t.slots.(i) <- Queued;
          t.reclaimed <- t.reclaimed + 1
      | _ -> ())
    t.slots

let acquire t ~now ~ttl ~worker =
  reap t ~now;
  let rec find i =
    if i >= Array.length t.slots then None
    else
      match t.slots.(i) with
      | Queued ->
          let lease = t.next_lease in
          t.next_lease <- lease + 1;
          t.slots.(i) <-
            Leased
              { h_lease = lease; h_worker = worker; h_since = now;
                h_expires = now +. ttl };
          Some (i, lease)
      | _ -> find (i + 1)
  in
  find 0

let find_lease t ~lease =
  let found = ref None in
  Array.iteri
    (fun i s ->
      match s with
      | Leased h when h.h_lease = lease -> found := Some (i, h)
      | _ -> ())
    t.slots;
  !found

let renew t ~now ~ttl ~lease =
  match find_lease t ~lease with
  | Some (i, h) when h.h_expires > now ->
      t.slots.(i) <- Leased { h with h_expires = now +. ttl };
      true
  | Some (i, _) ->
      (* expired but not yet reaped: reclaim it now *)
      t.slots.(i) <- Queued;
      t.reclaimed <- t.reclaimed + 1;
      false
  | None -> false

let shard_of t ~now ~lease =
  match find_lease t ~lease with
  | Some (i, h) when h.h_expires > now -> Some i
  | _ -> None

let complete t ~now ~lease =
  match find_lease t ~lease with
  | Some (i, h) when h.h_expires > now ->
      t.slots.(i) <- Done;
      t.done_count <- t.done_count + 1;
      Ok i
  | Some _ -> Error "lease expired (shard reassigned)"
  | None -> Error "unknown or stale lease"

let release t ~lease =
  match find_lease t ~lease with
  | Some (i, _) ->
      t.slots.(i) <- Queued;
      true
  | None -> false

let holders t =
  let acc = ref [] in
  Array.iteri
    (fun i s -> match s with Leased h -> acc := (i, h) :: !acc | _ -> ())
    t.slots;
  List.rev !acc

let oldest_age t ~now =
  Array.fold_left
    (fun age s ->
      match s with
      | Leased h -> Float.max age (now -. h.h_since)
      | _ -> age)
    0. t.slots
