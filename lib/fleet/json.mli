(** A minimal JSON value type with a strict parser and printer.

    The fleet protocol is JSON over HTTP and the repository deliberately
    carries no third-party JSON dependency, so this module provides the
    small subset the protocol needs: full parse/print round-tripping of
    objects, arrays, strings (with escapes), integers, floats, booleans
    and null.  Unicode escapes are passed through byte-wise ([\uXXXX]
    decodes to the low byte), matching {!S4e_fault.Journal}'s escaping
    discipline — journal lines are themselves parseable by this
    module. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error). *)

val to_string : t -> string
(** Compact single-line rendering; integers print without a decimal
    point, so [parse (to_string v) = Ok v] for values built from the
    constructors above. *)

val escape : string -> string
(** The string-escaping used by {!to_string}, without the quotes. *)

(** {1 Accessors}

    All return [None] on a shape mismatch, so protocol handlers can
    validate with [Option] pipelines instead of exceptions. *)

val mem : string -> t -> t option
(** [mem key (Obj _)] — field lookup; [None] on non-objects. *)

val str : t -> string option
val int : t -> int option
(** Accepts [Int] and integral [Float]. *)

val num : t -> float option
(** Accepts [Int] and [Float]. *)

val bool : t -> bool option
val list : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option
