(* ---------------- addresses ---------------- *)

type addr = Tcp of string * int | Unix_path of string

let addr_of_string s =
  if s = "" then Error "address: empty"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.contains s '/' then Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error ("address: bad port in " ^ s))
    | None -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
        | _ ->
            Error
              ("address: expected HOST:PORT, PORT, or unix:PATH, got " ^ s))

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_path p -> "unix:" ^ p

let sockaddr_of = function
  | Unix_path p -> Ok (Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
      try Ok (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
      with Failure _ -> (
        match Unix.getaddrinfo host (string_of_int port)
                [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, p); _ } :: _ ->
            Ok (Unix.ADDR_INET (a, p))
        | _ -> Error ("address: cannot resolve " ^ host)))

let guard f =
  try Ok (f ()) with
  | Unix.Unix_error (e, _, arg) ->
      Error
        (Unix.error_message e ^ (if arg = "" then "" else " (" ^ arg ^ ")"))
  | Sys_error e -> Error e

let listen addr =
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok sa ->
      guard (fun () ->
          let domain = Unix.domain_of_sockaddr sa in
          let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt fd Unix.SO_REUSEADDR true;
             (match addr with
             | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
             | Tcp _ -> ());
             Unix.bind fd sa;
             Unix.listen fd 64
           with e -> Unix.close fd; raise e);
          fd)

let bound_addr fd addr =
  match (addr, Unix.getsockname fd) with
  | Tcp (h, _), Unix.ADDR_INET (_, p) -> Tcp (h, p)
  | a, _ -> a

let connect addr =
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok sa ->
      guard (fun () ->
          let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
          (try Unix.connect fd sa with e -> Unix.close fd; raise e);
          fd)

(* ---------------- messages ---------------- *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_headers : (string * string) list;
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_headers : (string * string) list;
  rs_body : string;
}

let header key headers = List.assoc_opt key headers

(* One CRLF- (or bare-LF-) terminated line, without the terminator. *)
let read_line_opt ic =
  match input_line ic with
  | line ->
      let n = String.length line in
      Some (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
            else line)
  | exception End_of_file -> None

let read_headers ic =
  let rec go acc =
    match read_line_opt ic with
    | None -> Error "unexpected eof in headers"
    | Some "" -> Ok (List.rev acc)
    | Some line -> (
        match String.index_opt line ':' with
        | None -> Error ("malformed header line: " ^ line)
        | Some i ->
            let key = String.lowercase_ascii (String.sub line 0 i) in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            go ((key, String.trim v) :: acc))
  in
  go []

let read_body ic headers =
  match header "content-length" headers with
  | None -> Ok ""
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some len when len >= 0 && len <= 256 * 1024 * 1024 -> (
          try Ok (really_input_string ic len)
          with End_of_file -> Error "truncated body")
      | _ -> Error ("bad content-length: " ^ v))

let read_request ic =
  match read_line_opt ic with
  | None -> Error `Eof
  | Some line -> (
      match String.split_on_char ' ' line with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match read_headers ic with
          | Error e -> Error (`Bad e)
          | Ok headers -> (
              match read_body ic headers with
              | Error e -> Error (`Bad e)
              | Ok body ->
                  Ok
                    { rq_method = String.uppercase_ascii meth;
                      rq_path = path;
                      rq_headers = headers;
                      rq_body = body }))
      | _ -> Error (`Bad ("malformed request line: " ^ line)))

let write_request oc ~meth ~path ~body =
  output_string oc
    (Printf.sprintf
       "%s %s HTTP/1.1\r\nHost: s4e\r\nContent-Type: application/json\r\n\
        Content-Length: %d\r\n\r\n"
       meth path (String.length body));
  output_string oc body;
  flush oc

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 410 -> "Gone"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let read_response ic =
  match read_line_opt ic with
  | None -> Error "eof before status line"
  | Some line -> (
      match String.split_on_char ' ' line with
      | version :: code :: _
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
        -> (
          match int_of_string_opt code with
          | None -> Error ("bad status code: " ^ line)
          | Some status -> (
              match read_headers ic with
              | Error e -> Error e
              | Ok headers -> (
                  match read_body ic headers with
                  | Error e -> Error e
                  | Ok body ->
                      Ok
                        { rs_status = status;
                          rs_headers = headers;
                          rs_body = body })))
      | _ -> Error ("malformed status line: " ^ line))

let write_response oc ?(content_type = "application/json") ~status body =
  output_string oc
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n"
       status (reason status) content_type (String.length body));
  output_string oc body;
  flush oc
