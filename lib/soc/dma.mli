(** Descriptor-ring DMA engine.

    A burst copy engine driven through a ring of 16-byte descriptors
    [{src; dst; len; flags}] in RAM.  Software programs the ring base
    and count, then rings the tail doorbell; the engine consumes
    descriptors in order and schedules one completion event per
    descriptor on the {!Event_wheel}, [setup + len/8 + DELAY] cycles
    out.  The copy happens at completion time via direct
    [Sparse_mem] page blits (bypassing the bus TLB, which stays
    coherent because the blit mutates the pages the TLB points at),
    and written ranges are reported through the notify callback so
    translation blocks are invalidated exactly as for CPU stores.

    Register file (32-bit, byte offsets):
    {v
      0x00 RING        descriptor ring base address
      0x04 COUNT       descriptors in ring
      0x08 TAIL        producer index (write = doorbell)
      0x0C HEAD        consumer index (RO)
      0x10 IRQ_STATUS  bit0 = completion (write 1 to clear)
      0x14 IRQ_ENABLE  bit0
      0x18 STATUS      bit0 = busy (RO)
      0x1C DELAY       extra cycles charged per descriptor
      0x20 BURSTS      descriptors completed (RO)
      0x24 BYTES       bytes copied (RO)
    v}

    Descriptor flags: bit0 = raise IRQ on completion; the engine ORs
    in bit31 (done) when the copy retires. *)

type t

val create :
  mem:S4e_mem.Sparse_mem.t ->
  wheel:Event_wheel.t ->
  now:(unit -> int) ->
  notify:(int -> int -> unit) ->
  unit ->
  t
(** [now] supplies the current MTIME cycle (used to timestamp
    doorbell-triggered completions); [notify addr len] reports a
    DMA-written range for translation-block invalidation. *)

val device : t -> base:int -> S4e_mem.Bus.device

val irq_line : int
(** Wheel interrupt line this engine asserts (0). *)

val cost : ?delay:int -> int -> int
(** [cost ?delay len] — cycles charged for one descriptor. *)

val max_burst_len : int
(** Per-descriptor length ceiling (1 MiB): larger descriptor lengths
    are clamped, bounding the host-side work of one completion event
    (a bit-flipped length word in a fault campaign must not trigger a
    gigabyte copy). *)

val desc_size : int

val flag_irq : int

val flag_done : int

(** {1 Shared burst-copy helpers}

    Page-at-a-time blits over direct [Sparse_mem] buffers, also used
    by {!Vnet}.  Absent source pages read as zeros without being
    materialised; destinations allocate like any store. *)

val blit_ram : S4e_mem.Sparse_mem.t -> src:int -> dst:int -> len:int -> unit

val blit_in :
  S4e_mem.Sparse_mem.t -> src:bytes -> src_off:int -> dst:int -> len:int -> unit

val fnv_fold : S4e_mem.Sparse_mem.t -> src:int -> len:int -> int -> int
(** FNV-1a fold of a RAM range into a 32-bit accumulator. *)

(** {1 Introspection} *)

type stats = { dma_bursts : int; dma_bytes : int }

val stats : t -> stats

val busy : t -> bool

val head : t -> int

val irq_status : t -> int

val set_observer : t -> (bytes:int -> depth:int -> unit) option -> unit
(** Called at each completed burst with its size and the remaining
    queue depth (telemetry hook; [None] disables). *)

(** {1 Reset / snapshot} *)

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Re-arms the in-flight completion event on the wheel; the caller
    must have cleared the wheel first. *)

val digest : include_time:bool -> t -> string
(** Register-file state for {!S4e_cpu.Machine.state_digest}; the
    in-flight completion deadline is included only when
    [include_time]. *)
