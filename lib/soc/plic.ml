(* Platform-level interrupt controller: routes the event wheel's
   aggregated device IRQ lines to per-hart MEIP with the standard
   priority / enable / threshold / claim / complete register file.

   Wheel line [l] appears as PLIC source [l + 1] (source 0 is reserved,
   as in the spec).  Level-triggered with a claim gateway: a claimed
   source stops asserting until the matching completion, even while its
   line stays high.

   Until a guest writes any PLIC register the controller is inactive
   ([routed] is false) and the machine falls back to the legacy wiring
   — wheel lines OR-ed straight into hart 0's MEIP — so single-hart
   digests are unchanged by the device's existence. *)

type t = {
  nharts : int;
  priority : int array; (* per source; source 0 pinned to 0 *)
  enable : int array; (* per hart: source bitmask *)
  threshold : int array; (* per hart *)
  mutable served : int; (* claimed-but-not-completed source bitmask *)
  mutable routed : bool; (* any enable bit set: PLIC owns MEIP routing *)
  mutable touched : bool; (* any register ever written since reset *)
  mutable line_source : unit -> int; (* pulls the wheel's level lines *)
}

let nsources = 32 (* sources 1..31 <- wheel lines 0..30 *)

let create ?(harts = 1) () =
  let harts = max 1 harts in
  { nharts = harts; priority = Array.make nsources 0;
    enable = Array.make harts 0; threshold = Array.make harts 0; served = 0;
    routed = false; touched = false; line_source = (fun () -> 0) }

let harts t = t.nharts
let set_line_source t f = t.line_source <- f
let routed t = t.routed
let active t = t.touched || t.served <> 0

(* Source pending bitmask: raised lines shifted onto source ids, minus
   claims in flight.  Source 0 never pends. *)
let pending t =
  (t.line_source () lsl 1) land lnot t.served land lnot 1
  land ((1 lsl nsources) - 1)

let update_routed t =
  t.routed <- Array.exists (fun e -> e <> 0) t.enable

(* Highest-priority pending+enabled source for a hart (lowest id wins
   ties, as in the spec); returns [(source, priority)] or [(0, 0)]. *)
let best t hart =
  let cand = pending t land t.enable.(hart) in
  let best_s = ref 0 and best_p = ref 0 in
  let m = ref cand in
  while !m <> 0 do
    let s = (!m land - !m) in
    let id =
      (* index of the isolated bit *)
      let rec idx b n = if b = 1 then n else idx (b lsr 1) (n + 1) in
      idx s 0
    in
    if t.priority.(id) > !best_p then begin
      best_p := t.priority.(id);
      best_s := id
    end;
    m := !m land lnot s
  done;
  (!best_s, !best_p)

let meip t hart =
  let _, p = best t hart in
  p > t.threshold.(hart)

let claim t hart =
  let s, p = best t hart in
  if s <> 0 && p > 0 then begin
    t.served <- t.served lor (1 lsl s);
    s
  end
  else 0

let complete t hart s =
  if s > 0 && s < nsources && t.enable.(hart) land (1 lsl s) <> 0 then
    t.served <- t.served land lnot (1 lsl s)

(* MMIO layout (byte offsets, following the SiFive PLIC):
   - [0x000000 + 4*s]      priority for source [s]
   - [0x001000]            pending bitmask, sources 31:0 (read-only)
   - [0x002000 + 0x80*h]   enable bitmask for hart [h], sources 31:0
   - [0x200000 + 0x1000*h] priority threshold for hart [h]
   - [0x200004 + 0x1000*h] claim (read) / complete (write) for hart [h] *)

let read t offset _size =
  if offset < 0x1000 then
    let s = offset lsr 2 in
    if offset land 3 = 0 && s < nsources then t.priority.(s) else 0
  else if offset = 0x1000 then pending t
  else if offset >= 0x2000 && offset < 0x2000 + (0x80 * t.nharts) then
    if (offset - 0x2000) land 0x7F = 0 then t.enable.((offset - 0x2000) lsr 7)
    else 0
  else if offset >= 0x200000 then begin
    let h = (offset - 0x200000) lsr 12 in
    if h >= t.nharts then 0
    else
      match (offset - 0x200000) land 0xFFF with
      | 0 -> t.threshold.(h)
      | 4 -> claim t h
      | _ -> 0
  end
  else 0

let write t offset _size v =
  let v = v land 0xFFFF_FFFF in
  if offset < 0x1000 then begin
    let s = offset lsr 2 in
    if offset land 3 = 0 && s > 0 && s < nsources then begin
      t.priority.(s) <- v land 7;
      t.touched <- true
    end
  end
  else if offset >= 0x2000 && offset < 0x2000 + (0x80 * t.nharts) then begin
    if (offset - 0x2000) land 0x7F = 0 then begin
      (* source 0 can never be enabled *)
      t.enable.((offset - 0x2000) lsr 7) <- v land lnot 1;
      t.touched <- true;
      update_routed t
    end
  end
  else if offset >= 0x200000 then begin
    let h = (offset - 0x200000) lsr 12 in
    if h < t.nharts then
      match (offset - 0x200000) land 0xFFF with
      | 0 ->
          t.threshold.(h) <- v land 7;
          t.touched <- true
      | 4 -> complete t h v
      | _ -> ()
  end

let device t ~base =
  { S4e_mem.Bus.dev_name = "plic"; dev_base = base; dev_len = 0x400000;
    dev_read = read t; dev_write = write t }

let reset t =
  Array.fill t.priority 0 nsources 0;
  Array.fill t.enable 0 t.nharts 0;
  Array.fill t.threshold 0 t.nharts 0;
  t.served <- 0;
  t.routed <- false;
  t.touched <- false

let digest t =
  let b = Buffer.create 64 in
  let add v =
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ','
  in
  Array.iter add t.priority;
  Array.iter add t.enable;
  Array.iter add t.threshold;
  add t.served;
  add (if t.touched then 1 else 0);
  Buffer.contents b

type snapshot = {
  snap_priority : int array;
  snap_enable : int array;
  snap_threshold : int array;
  snap_served : int;
  snap_touched : bool;
}

let snapshot t =
  { snap_priority = Array.copy t.priority; snap_enable = Array.copy t.enable;
    snap_threshold = Array.copy t.threshold; snap_served = t.served;
    snap_touched = t.touched }

let restore t s =
  Array.blit s.snap_priority 0 t.priority 0 nsources;
  Array.blit s.snap_enable 0 t.enable 0 t.nharts;
  Array.blit s.snap_threshold 0 t.threshold 0 t.nharts;
  t.served <- s.snap_served;
  t.touched <- s.snap_touched;
  update_routed t
