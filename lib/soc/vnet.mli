(** Virtio-style network device with a deterministic traffic generator.

    Rx and tx descriptor rings in RAM (16-byte descriptors
    [{buf; _; len; flags}], as for {!Dma}).  Software posts free rx
    buffers by advancing RX_TAIL; the built-in packet generator
    delivers synthetic payloads into them in bursts through the shared
    DMA blit path, dropping (and counting) packets when the ring is
    empty.  Software posts tx packets via the TX_TAIL doorbell; the
    device consumes them at DMA burst cost and folds every payload
    byte into the TX_CSUM FNV-1a register.  All activity is
    timestamped on the {!Event_wheel}; payload bytes are a pure
    function of (GEN_SEED, stream index), so runs are deterministic
    and digest-identical across execution engines.

    Register file (32-bit, byte offsets):
    {v
      0x00 CTRL          bit0 = enable (gates generator arming and tx)
      0x04 IRQ_STATUS    bit0 = rx, bit1 = tx (write 1 to clear)
      0x08 IRQ_ENABLE
      0x0C RX_BASE   0x10 RX_COUNT   0x14 RX_TAIL   0x18 RX_HEAD (RO)
      0x1C TX_BASE   0x20 TX_COUNT   0x24 TX_TAIL   0x28 TX_HEAD (RO)
      0x2C GEN_SEED  0x30 GEN_RATE   0x34 GEN_BURST 0x38 GEN_LEN
      0x3C GEN_COUNT     write N > 0 arms the generator for N packets
      0x40 RX_DELIVERED  0x44 RX_DROPPED  0x48 TX_SENT  0x4C TX_CSUM (RO)
      0x50 RXDATA        per-byte PIO tap of the stream (the slow path)
    v}

    The generator emits bursts of GEN_BURST packets every GEN_RATE
    cycles; the rx status word written back is [len lor flag_done]. *)

type t

val create :
  mem:S4e_mem.Sparse_mem.t ->
  wheel:Event_wheel.t ->
  now:(unit -> int) ->
  notify:(int -> int -> unit) ->
  unit ->
  t

val device : t -> base:int -> S4e_mem.Bus.device

val irq_line : int
(** Wheel interrupt line this device asserts (1). *)

val irq_rx : int
val irq_tx : int

val stream_byte : int -> int -> int
(** [stream_byte seed i] — byte [i] of the synthetic stream (pure).
    Packet [k]'s payload byte [j] is at index [(k lsl 16) lor j]; the
    RXDATA PIO port walks indices 0, 1, 2, ... *)

val max_pkt_len : int

(** {1 Introspection} *)

type stats = {
  vn_rx_delivered : int;
  vn_rx_dropped : int;
  vn_tx_sent : int;
  vn_tx_csum : int;
}

val stats : t -> stats

val gen_active : t -> bool
(** The generator still has packets to emit. *)

val set_observer :
  t -> (kind:string -> bytes:int -> depth:int -> unit) option -> unit
(** Telemetry hook fired per event: kind is ["rx"], ["rx-drop"] or
    ["tx"]; [depth] is the remaining ring occupancy after the event. *)

(** {1 Reset / snapshot} *)

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Re-arms pending generator/tx events on the wheel; the caller must
    have cleared the wheel first. *)

val digest : include_time:bool -> t -> string
(** Register-file state for {!S4e_cpu.Machine.state_digest}; pending
    deadlines are included only when [include_time]. *)
