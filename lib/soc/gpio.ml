type t = {
  mutable out_latch : int;
  mutable in_pins : int;
  on_output : (int -> unit) option;
}

let create ?on_output () = { out_latch = 0; in_pins = 0; on_output }

let read t offset _size =
  match offset with
  | 0x00 -> t.out_latch
  | 0x04 -> t.in_pins
  | _ -> 0

let write t offset _size v =
  if offset = 0x00 then begin
    let v = v land 0xFFFF_FFFF in
    if v <> t.out_latch then begin
      t.out_latch <- v;
      match t.on_output with Some f -> f v | None -> ()
    end
  end

let device t ~base =
  { S4e_mem.Bus.dev_name = "gpio"; dev_base = base; dev_len = 0x100;
    dev_read = read t; dev_write = write t }

let output t = t.out_latch
let set_input t v = t.in_pins <- v land 0xFFFF_FFFF
let input t = t.in_pins

type snapshot = { snap_out : int; snap_in : int }

let snapshot t = { snap_out = t.out_latch; snap_in = t.in_pins }

(* Restore rewinds the latch silently: the [on_output] callback is an
   observer of program behavior, not of simulator bookkeeping. *)
let restore t s =
  t.out_latch <- s.snap_out;
  t.in_pins <- s.snap_in
