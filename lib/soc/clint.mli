(** CLINT-style core-local interruptor: machine timer and software
    interrupt.

    Register map (byte offsets, as in the SiFive CLINT):
    - [0x0000] MSIP: software interrupt pending (bit 0).
    - [0x4000] MTIMECMP (low), [0x4004] MTIMECMP (high).
    - [0xBFF8] MTIME (low), [0xBFFC] MTIME (high).

    The machine advances MTIME via {!tick} (one tick per retired
    instruction by default, a common virtual-prototype simplification)
    and polls {!timer_pending} / {!software_pending} to drive the
    [mip.MTIP]/[mip.MSIP] bits. *)

type t

val create : unit -> t
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device

val tick : t -> int -> unit
(** [tick t n] advances MTIME by [n]. *)

val time : t -> int
(** Current MTIME (64-bit value in a native int). *)

val set_timecmp : t -> int -> unit

val set_on_timecmp : t -> (int -> unit) -> unit
(** Hook fired with the new MTIMECMP after every change (MMIO write,
    {!set_timecmp}, {!reset}, {!restore}); the machine uses it to keep
    the event wheel's timer deadline in sync.  Default: [ignore]. *)

val timecmp : t -> int
val timer_pending : t -> bool
val software_pending : t -> bool
val reset : t -> unit

type snapshot
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
