(** CLINT-style core-local interruptor: machine timer plus one
    MSIP/MTIMECMP pair per hart over a single shared MTIME.

    Register map (byte offsets, as in the SiFive CLINT):
    - [0x0000 + 4*h] MSIP for hart [h]: software interrupt pending
      (bit 0) — the cross-hart IPI doorbell.
    - [0x4000 + 8*h] MTIMECMP for hart [h] (low), [+4] (high).
    - [0xBFF8] MTIME (low), [0xBFFC] MTIME (high).

    Hart 0's registers are at the classic single-hart offsets, so a
    one-hart platform is bit-compatible with the pre-SMP device.

    The machine advances MTIME via {!tick} (one tick per retired cycle)
    and polls {!timer_pending} / {!software_pending} per hart to drive
    each hart's [mip.MTIP]/[mip.MSIP] bits. *)

type t

val create : ?harts:int -> unit -> t
(** [harts] defaults to 1 and is clamped to at least 1. *)

val harts : t -> int
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device

val tick : t -> int -> unit
(** [tick t n] advances MTIME by [n]. *)

val time : t -> int
(** Current MTIME (64-bit value in a native int). *)

val set_timecmp : ?hart:int -> t -> int -> unit

val set_on_timecmp : t -> (int -> unit) -> unit
(** Hook fired after every MTIMECMP change (MMIO write, {!set_timecmp},
    {!reset}, {!restore}) with the new {e minimum} MTIMECMP over all
    harts; the machine uses it to keep the event wheel's timer deadline
    in sync.  Default: [ignore]. *)

val next_timecmp : t -> int
(** Minimum MTIMECMP over all harts ([max_int] when none armed). *)

val timecmp : ?hart:int -> t -> int
val timer_pending : ?hart:int -> t -> bool
val software_pending : ?hart:int -> t -> bool

val set_msip : t -> hart:int -> bool -> unit
(** Host-side IPI doorbell (tests); guests use the MMIO register. *)

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
