type t = {
  mutable mtime : int;
  mutable mtimecmp : int;
  mutable msip : bool;
  (* fired on every MTIMECMP change with the new value, so the machine
     can keep its event wheel's timer deadline in sync *)
  mutable on_timecmp : int -> unit;
}

let create () =
  { mtime = 0; mtimecmp = max_int; msip = false; on_timecmp = ignore }

let set_on_timecmp t f = t.on_timecmp <- f

let lo32 v = v land 0xFFFF_FFFF
let hi32 v = (v lsr 32) land 0x7FFF_FFFF

let read t offset _size =
  match offset with
  | 0x0000 -> if t.msip then 1 else 0
  | 0x4000 -> lo32 t.mtimecmp
  | 0x4004 -> hi32 t.mtimecmp
  | 0xBFF8 -> lo32 t.mtime
  | 0xBFFC -> hi32 t.mtime
  | _ -> 0

let write t offset _size v =
  match offset with
  | 0x0000 -> t.msip <- v land 1 = 1
  | 0x4000 ->
      t.mtimecmp <- (t.mtimecmp land lnot 0xFFFF_FFFF) lor lo32 v;
      t.on_timecmp t.mtimecmp
  | 0x4004 ->
      t.mtimecmp <- lo32 t.mtimecmp lor (lo32 v lsl 32);
      t.on_timecmp t.mtimecmp
  | 0xBFF8 -> t.mtime <- (t.mtime land lnot 0xFFFF_FFFF) lor lo32 v
  | 0xBFFC -> t.mtime <- lo32 t.mtime lor (lo32 v lsl 32)
  | _ -> ()

let device t ~base =
  { S4e_mem.Bus.dev_name = "clint"; dev_base = base; dev_len = 0x10000;
    dev_read = read t; dev_write = write t }

let tick t n = t.mtime <- t.mtime + n
let time t = t.mtime
let set_timecmp t v =
  t.mtimecmp <- v;
  t.on_timecmp v
let timecmp t = t.mtimecmp
let timer_pending t = t.mtime >= t.mtimecmp
let software_pending t = t.msip

let reset t =
  t.mtime <- 0;
  t.mtimecmp <- max_int;
  t.msip <- false;
  t.on_timecmp t.mtimecmp

type snapshot = { snap_mtime : int; snap_mtimecmp : int; snap_msip : bool }

let snapshot t =
  { snap_mtime = t.mtime; snap_mtimecmp = t.mtimecmp; snap_msip = t.msip }

let restore t s =
  t.mtime <- s.snap_mtime;
  t.mtimecmp <- s.snap_mtimecmp;
  t.msip <- s.snap_msip;
  t.on_timecmp t.mtimecmp
