(* CLINT with one MSIP/MTIMECMP pair per hart over a single shared
   MTIME.  Hart 0's registers sit at the classic SiFive offsets, so a
   single-hart platform is bit-compatible with the previous
   implementation. *)

type t = {
  mutable mtime : int;
  mtimecmp : int array; (* per hart *)
  msip : bool array; (* per hart *)
  (* fired on every MTIMECMP change with the new minimum over all
     harts, so the machine can keep its event wheel's timer deadline in
     sync *)
  mutable on_timecmp : int -> unit;
}

let create ?(harts = 1) () =
  let harts = max 1 harts in
  { mtime = 0; mtimecmp = Array.make harts max_int;
    msip = Array.make harts false; on_timecmp = ignore }

let harts t = Array.length t.msip
let set_on_timecmp t f = t.on_timecmp <- f

let next_timecmp t = Array.fold_left min max_int t.mtimecmp

let lo32 v = v land 0xFFFF_FFFF
let hi32 v = (v lsr 32) land 0x7FFF_FFFF

let read t offset _size =
  if offset >= 0xBFF8 then
    if offset = 0xBFF8 then lo32 t.mtime
    else if offset = 0xBFFC then hi32 t.mtime
    else 0
  else if offset >= 0x4000 then begin
    let h = (offset - 0x4000) lsr 3 in
    if h >= harts t then 0
    else if offset land 7 = 0 then lo32 t.mtimecmp.(h)
    else if offset land 7 = 4 then hi32 t.mtimecmp.(h)
    else 0
  end
  else begin
    let h = offset lsr 2 in
    if h < harts t && offset land 3 = 0 then (if t.msip.(h) then 1 else 0)
    else 0
  end

let write t offset _size v =
  if offset >= 0xBFF8 then begin
    if offset = 0xBFF8 then t.mtime <- (t.mtime land lnot 0xFFFF_FFFF) lor lo32 v
    else if offset = 0xBFFC then t.mtime <- lo32 t.mtime lor (lo32 v lsl 32)
  end
  else if offset >= 0x4000 then begin
    let h = (offset - 0x4000) lsr 3 in
    if h < harts t then begin
      if offset land 7 = 0 then
        t.mtimecmp.(h) <- (t.mtimecmp.(h) land lnot 0xFFFF_FFFF) lor lo32 v
      else if offset land 7 = 4 then
        t.mtimecmp.(h) <- lo32 t.mtimecmp.(h) lor (lo32 v lsl 32);
      t.on_timecmp (next_timecmp t)
    end
  end
  else begin
    let h = offset lsr 2 in
    if h < harts t && offset land 3 = 0 then t.msip.(h) <- v land 1 = 1
  end

let device t ~base =
  { S4e_mem.Bus.dev_name = "clint"; dev_base = base; dev_len = 0x10000;
    dev_read = read t; dev_write = write t }

let tick t n = t.mtime <- t.mtime + n
let time t = t.mtime

let set_timecmp ?(hart = 0) t v =
  t.mtimecmp.(hart) <- v;
  t.on_timecmp (next_timecmp t)

let timecmp ?(hart = 0) t = t.mtimecmp.(hart)
let timer_pending ?(hart = 0) t = t.mtime >= t.mtimecmp.(hart)
let software_pending ?(hart = 0) t = t.msip.(hart)
let set_msip t ~hart v = t.msip.(hart) <- v

let reset t =
  t.mtime <- 0;
  Array.fill t.mtimecmp 0 (harts t) max_int;
  Array.fill t.msip 0 (harts t) false;
  t.on_timecmp max_int

type snapshot = {
  snap_mtime : int;
  snap_mtimecmp : int array;
  snap_msip : bool array;
}

let snapshot t =
  { snap_mtime = t.mtime; snap_mtimecmp = Array.copy t.mtimecmp;
    snap_msip = Array.copy t.msip }

let restore t s =
  t.mtime <- s.snap_mtime;
  Array.blit s.snap_mtimecmp 0 t.mtimecmp 0 (harts t);
  Array.blit s.snap_msip 0 t.msip 0 (harts t);
  t.on_timecmp (next_timecmp t)
