(** System controller ("test finisher"), modeled on QEMU virt's sifive
    test device: software terminates a simulation by storing an exit
    code to it.

    Register map (byte offsets):
    - [0x00] EXIT: writing [v] ends the run with status [v].

    The conventional protocol (used by our runtime and generated
    programs) is: write 0 for PASS, nonzero for FAIL. *)

type t

val create : unit -> t
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device

val exit_code : t -> int option
(** [Some code] once software has written the EXIT register. *)

val reset : t -> unit

type snapshot
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
