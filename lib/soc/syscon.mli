(** System controller ("test finisher"), modeled on QEMU virt's sifive
    test device: software terminates a simulation by storing an exit
    code to it.

    Register map (byte offsets):
    - [0x00] EXIT: writing [v] ends the run with status [v].

    The conventional protocol (used by our runtime and generated
    programs) is: write 0 for PASS, nonzero for FAIL. *)

type t

val create : unit -> t
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device

val exit_code : t -> int option
(** [Some code] once software has written the EXIT register. *)

val set_notify : t -> (unit -> unit) -> unit
(** Callback invoked on every EXIT store.  The machine uses it to set a
    dirty flag so the run loop stops polling {!exit_code} on the
    per-instruction path.  [restore] does not invoke it; callers that
    restore a snapshot must re-derive their flag from {!exit_code}. *)

val reset : t -> unit

type snapshot
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
