(** Platform-level interrupt controller (PLIC).

    Routes the {!Event_wheel}'s aggregated device IRQ lines to per-hart
    [mip.MEIP] through the standard priority / enable / threshold /
    claim / complete register file.  Wheel line [l] is PLIC source
    [l + 1] (source 0 is reserved).  Level-triggered with a claim
    gateway: a claimed source stops asserting until completion.

    Register map (byte offsets from [Memory_map.plic_base]):
    - [0x000000 + 4*s]: priority for source [s] (3 bits; 0 = masked)
    - [0x001000]: pending bitmask over sources 31:0 (read-only)
    - [0x002000 + 0x80*h]: enable bitmask for hart [h]
    - [0x200000 + 0x1000*h]: priority threshold for hart [h]
    - [0x200004 + 0x1000*h]: claim (read) / complete (write) for [h]

    Until the guest enables a source ({!routed} false), the machine
    keeps the legacy wiring — wheel lines OR-ed into hart 0's MEIP —
    so pre-SMP guests and their digests are unchanged. *)

type t

val create : ?harts:int -> unit -> t
val harts : t -> int
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device

val set_line_source : t -> (unit -> int) -> unit
(** Installs the pull closure for the level inputs (the machine points
    it at {!Event_wheel.irq_pending}).  Default: constant 0. *)

val routed : t -> bool
(** True while any enable bit is set: the PLIC owns MEIP routing. *)

val active : t -> bool
(** True once the guest has written any PLIC register (or a claim is in
    flight) — gates the digest contribution so untouched machines keep
    their pre-PLIC digests. *)

val meip : t -> int -> bool
(** [meip t hart]: does any pending+enabled source exceed the hart's
    threshold? *)

val claim : t -> int -> int
(** Claim the highest-priority pending+enabled source for a hart
    (0 = none); the source stops pending until {!complete}. *)

val complete : t -> int -> int -> unit

val reset : t -> unit
val digest : t -> string

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
