(** The default platform memory map, shared by the runtime, assembler
    examples, and documentation.

    Mirrors the common RISC-V virtual-platform layout (CLINT low, IO in
    the [0x1000_0000] window, RAM at [0x8000_0000]). *)

val ram_base : int
val clint_base : int
val plic_base : int
val uart_base : int
val syscon_base : int
val gpio_base : int
val dma_base : int
val vnet_base : int

val uart_data : int
(** Absolute address of the UART DATA register. *)

val uart_status : int
val syscon_exit : int
val gpio_out : int
val gpio_in : int
