(** Device event scheduler: a hierarchical timer wheel keyed on
    MTIME-cycle deadlines.

    Devices register timestamped callbacks; the machine consults a
    single {!next_deadline} word at its batched cycle-flush points and
    calls {!run_due} only when the current time has reached it, so an
    idle device plane costs one compare per block exit.  Events at the
    same deadline fire in schedule order (ids are monotonic), and
    deadlines always fire in ascending order, which keeps device
    behavior deterministic and identical across execution engines.

    The wheel also aggregates device interrupt lines into one pending
    bitmask ({!irq_pending}), which the machine maps to [mip.MEIP].

    Callbacks receive the consultation time (>= their deadline: events
    are observed at the machine's interrupt-sampling points, which is
    also when a per-block-flushing run would notice them).  A callback
    may schedule further events, including at deadlines at or before the
    current time — they fire within the same {!run_due} call. *)

type t

val create : unit -> t

val schedule : t -> at:int -> (int -> unit) -> int
(** [schedule t ~at fn] registers [fn] to fire at MTIME cycle [at]
    (clamped to "now" if already past) and returns an id for
    {!cancel}.  O(1) for deadlines within the 256-cycle near window,
    O(pending far events) beyond it. *)

val cancel : t -> int -> unit
(** Unregisters an event; ignores ids that already fired. *)

val next_deadline : t -> int
(** Earliest live deadline, or [max_int] when the wheel is idle — the
    one word the machine's flush points compare against. *)

val run_due : t -> now:int -> unit
(** Fires every event with deadline [<= now], in (deadline, id) order,
    including events scheduled by the callbacks themselves. *)

val note_idle_skip : t -> unit
(** Records a flush point that consulted {!next_deadline} and found
    nothing due (the fast-path outcome). *)

val pending : t -> int
(** Number of live (scheduled, unfired, uncancelled) events. *)

(** {1 Interrupt lines} *)

val set_irq : t -> int -> unit
(** Asserts device interrupt line [line] (a small bit index). *)

val clear_irq : t -> int -> unit

val irq_pending : t -> int
(** Bitmask of asserted lines; nonzero maps to [mip.MEIP]. *)

(** {1 Stats / reset} *)

type stats = {
  ws_fired : int;  (** events fired *)
  ws_idle_skips : int;  (** flush points with nothing due *)
  ws_scheduled : int;
  ws_cancelled : int;
  ws_live : int;
}

val stats : t -> stats

val clear : t -> unit
(** Drops all events and interrupt lines and rewinds the wheel (reset /
    snapshot-restore path; clients re-arm from their own state).
    Cumulative counters are preserved. *)
