(* Descriptor-ring DMA engine.

   Software builds a ring of 16-byte descriptors {src, dst, len, flags}
   in RAM, programs RING/COUNT, and rings the TAIL doorbell.  The engine
   consumes descriptors in order, one timestamped completion event per
   descriptor on the {!Event_wheel}: the copy itself happens at
   completion time, page-at-a-time over direct [Sparse_mem] buffers
   (bypassing the bus TLB — safe, because the blit mutates the very
   page buffers the TLB points at), and costs
   [setup + len/bytes_per_cycle + delay] cycles.  Translation blocks
   overlapping a written range are invalidated through the machine's
   notify callback, exactly like CPU stores.

   The DMA engine is a RAM bus master: descriptor and data addresses
   always refer to RAM (device windows are not reachable), and its
   traffic is not reported to the IO watcher — only its MMIO register
   file is.  Reads of untouched pages supply zeros without materialising
   the page, matching the bus's read semantics. *)

module Mem = S4e_mem.Sparse_mem

let irq_line = 0

(* register offsets *)
let reg_ring = 0x00
let reg_count = 0x04
let reg_tail = 0x08
let reg_head = 0x0C
let reg_irq_status = 0x10
let reg_irq_enable = 0x14
let reg_status = 0x18
let reg_delay = 0x1C
let reg_bursts = 0x20
let reg_bytes = 0x24

let desc_size = 16
let flag_irq = 1
let flag_done = 0x8000_0000

(* burst timing: fixed setup latency, then 8 bytes per cycle *)
let setup_cycles = 64
let bytes_per_cycle = 8

(* Hard per-descriptor ceiling, like a real engine's burst-size limit.
   This is load-bearing for fault campaigns: a single flipped bit in a
   descriptor's length word must not turn one completion event into a
   gigabyte host-side copy. *)
let max_burst_len = 1 lsl 20

let cost ?(delay = 0) len =
  setup_cycles + ((len + bytes_per_cycle - 1) / bytes_per_cycle) + delay

type t = {
  mem : Mem.t;
  wheel : Event_wheel.t;
  now : unit -> int;
  notify : int -> int -> unit;  (* [notify addr len]: TB invalidation *)
  mutable ring : int;
  mutable count : int;
  mutable tail : int;
  mutable head : int;
  mutable irq_status : int;
  mutable irq_enable : int;
  mutable delay : int;
  mutable busy : bool;
  mutable pending_at : int;  (* completion deadline when busy *)
  mutable ev : int;  (* wheel event id when busy *)
  mutable bursts : int;
  mutable bytes : int;
  mutable observer : (bytes:int -> depth:int -> unit) option;
}

let create ~mem ~wheel ~now ~notify () =
  { mem; wheel; now; notify;
    ring = 0; count = 0; tail = 0; head = 0;
    irq_status = 0; irq_enable = 0; delay = 0;
    busy = false; pending_at = max_int; ev = -1;
    bursts = 0; bytes = 0; observer = None }

let set_observer t o = t.observer <- o

(* ---------------- burst copy helpers (shared with Vnet) ---------------- *)

let mask32 a = a land 0xFFFF_FFFF

(* RAM -> RAM, page-at-a-time.  Absent source pages read as zeros; the
   destination allocates on first touch, as any store would.  Overlap
   within one page behaves like memmove; transfers overlapping across
   page boundaries are unspecified (as on real engines). *)
let blit_ram mem ~src ~dst ~len =
  let remaining = ref len and s = ref (mask32 src) and d = ref (mask32 dst) in
  while !remaining > 0 do
    let soff = !s land Mem.page_mask and doff = !d land Mem.page_mask in
    let n =
      min (min (Mem.page_size - soff) (Mem.page_size - doff)) !remaining
    in
    let dpage = Mem.get_page mem (!d lsr Mem.page_bits) in
    (match Mem.find_page mem (!s lsr Mem.page_bits) with
    | Some spage -> Bytes.blit spage soff dpage doff n
    | None -> Bytes.fill dpage doff n '\000');
    s := mask32 (!s + n);
    d := mask32 (!d + n);
    remaining := !remaining - n
  done

(* host buffer -> RAM (device-to-memory direction, used by Vnet rx) *)
let blit_in mem ~src ~src_off ~dst ~len =
  let remaining = ref len and o = ref src_off and d = ref (mask32 dst) in
  while !remaining > 0 do
    let doff = !d land Mem.page_mask in
    let n = min (Mem.page_size - doff) !remaining in
    let dpage = Mem.get_page mem (!d lsr Mem.page_bits) in
    Bytes.blit src !o dpage doff n;
    o := !o + n;
    d := mask32 (!d + n);
    remaining := !remaining - n
  done

(* Fold a RAM range byte-by-byte into an FNV-1a accumulator,
   page-at-a-time (memory-to-device direction, used by Vnet tx). *)
let fnv_fold mem ~src ~len acc0 =
  let acc = ref acc0 and s = ref (mask32 src) and remaining = ref len in
  while !remaining > 0 do
    let soff = !s land Mem.page_mask in
    let n = min (Mem.page_size - soff) !remaining in
    (match Mem.find_page mem (!s lsr Mem.page_bits) with
    | Some page ->
        for i = soff to soff + n - 1 do
          acc := mask32 ((!acc lxor Char.code (Bytes.get page i)) * 0x0100_0193)
        done
    | None ->
        for _ = 1 to n do
          acc := mask32 (!acc * 0x0100_0193)
        done);
    s := mask32 (!s + n);
    remaining := !remaining - n
  done;
  !acc

(* ---------------- engine ---------------- *)

let update_line t =
  if t.irq_status land t.irq_enable <> 0 then
    Event_wheel.set_irq t.wheel irq_line
  else Event_wheel.clear_irq t.wheel irq_line

let desc_addr t i = mask32 (t.ring + (i mod max 1 t.count) * desc_size)

let queue_depth t = t.tail - t.head

(* Arm the completion event for the head descriptor.  Only the length is
   read now (for the cost); the full descriptor is re-read at completion
   time, when the copy happens. *)
let rec arm t ~now =
  let da = desc_addr t t.head in
  let len = min (Mem.read32 t.mem (da + 8)) max_burst_len in
  t.busy <- true;
  t.pending_at <- now + cost ~delay:t.delay len;
  t.ev <- Event_wheel.schedule t.wheel ~at:t.pending_at (complete t)

and complete t fire_now =
  let da = desc_addr t t.head in
  let src = Mem.read32 t.mem da in
  let dst = Mem.read32 t.mem (da + 4) in
  let len = min (Mem.read32 t.mem (da + 8)) max_burst_len in
  let flags = Mem.read32 t.mem (da + 12) in
  if len > 0 then begin
    blit_ram t.mem ~src ~dst ~len;
    t.notify dst len
  end;
  Mem.write32 t.mem (da + 12) (flags lor flag_done);
  t.notify (da + 12) 4;
  t.head <- t.head + 1;
  t.bursts <- t.bursts + 1;
  t.bytes <- t.bytes + len;
  t.irq_status <- t.irq_status lor (flags land flag_irq);
  update_line t;
  (match t.observer with
  | Some f -> f ~bytes:len ~depth:(queue_depth t)
  | None -> ());
  if t.head <> t.tail then arm t ~now:fire_now
  else begin
    t.busy <- false;
    t.pending_at <- max_int;
    t.ev <- -1
  end

let read t offset _size =
  match offset with
  | o when o = reg_ring -> t.ring
  | o when o = reg_count -> t.count
  | o when o = reg_tail -> t.tail land 0xFFFF_FFFF
  | o when o = reg_head -> t.head land 0xFFFF_FFFF
  | o when o = reg_irq_status -> t.irq_status
  | o when o = reg_irq_enable -> t.irq_enable
  | o when o = reg_status -> if t.busy then 1 else 0
  | o when o = reg_delay -> t.delay
  | o when o = reg_bursts -> t.bursts land 0xFFFF_FFFF
  | o when o = reg_bytes -> t.bytes land 0xFFFF_FFFF
  | _ -> 0

let write t offset _size v =
  match offset with
  | o when o = reg_ring -> t.ring <- mask32 v
  | o when o = reg_count -> t.count <- v land 0xFFFF
  | o when o = reg_tail ->
      t.tail <- mask32 v;
      if (not t.busy) && t.count > 0 && t.head <> t.tail then
        arm t ~now:(t.now ())
  | o when o = reg_irq_status ->
      (* write-1-to-clear *)
      t.irq_status <- t.irq_status land lnot v;
      update_line t
  | o when o = reg_irq_enable ->
      t.irq_enable <- v land 1;
      update_line t
  | o when o = reg_delay -> t.delay <- v land 0xFF_FFFF
  | _ -> ()

let device t ~base =
  { S4e_mem.Bus.dev_name = "dma"; dev_base = base; dev_len = 0x100;
    dev_read = read t; dev_write = write t }

type stats = { dma_bursts : int; dma_bytes : int }

let stats t = { dma_bursts = t.bursts; dma_bytes = t.bytes }
let busy t = t.busy
let head t = t.head
let irq_status t = t.irq_status

let reset t =
  if t.ev >= 0 then Event_wheel.cancel t.wheel t.ev;
  t.ring <- 0;
  t.count <- 0;
  t.tail <- 0;
  t.head <- 0;
  t.irq_status <- 0;
  t.irq_enable <- 0;
  t.delay <- 0;
  t.busy <- false;
  t.pending_at <- max_int;
  t.ev <- -1;
  update_line t

(* Everything a resumed run depends on, including the in-flight
   transfer's absolute completion time.  [restore] re-arms the wheel
   (the caller clears it first — closures cannot be snapshotted). *)
type snapshot = {
  snap_ring : int;
  snap_count : int;
  snap_tail : int;
  snap_head : int;
  snap_irq_status : int;
  snap_irq_enable : int;
  snap_delay : int;
  snap_busy : bool;
  snap_pending_at : int;
  snap_bursts : int;
  snap_bytes : int;
}

let snapshot t =
  { snap_ring = t.ring; snap_count = t.count; snap_tail = t.tail;
    snap_head = t.head; snap_irq_status = t.irq_status;
    snap_irq_enable = t.irq_enable; snap_delay = t.delay;
    snap_busy = t.busy; snap_pending_at = t.pending_at;
    snap_bursts = t.bursts; snap_bytes = t.bytes }

let restore t s =
  t.ring <- s.snap_ring;
  t.count <- s.snap_count;
  t.tail <- s.snap_tail;
  t.head <- s.snap_head;
  t.irq_status <- s.snap_irq_status;
  t.irq_enable <- s.snap_irq_enable;
  t.delay <- s.snap_delay;
  t.busy <- s.snap_busy;
  t.pending_at <- s.snap_pending_at;
  t.bursts <- s.snap_bursts;
  t.bytes <- s.snap_bytes;
  t.ev <-
    (if s.snap_busy then
       Event_wheel.schedule t.wheel ~at:s.snap_pending_at (complete t)
     else -1);
  update_line t

(* Digest-visible state: everything software can observe through the
   register file plus, when time is included, the in-flight completion
   deadline (it determines when the next write lands). *)
let digest ~include_time t =
  Printf.sprintf "%d;%d;%d;%d;%d;%d;%d;%b;%d;%d;%s"
    t.ring t.count t.tail t.head t.irq_status t.irq_enable t.delay t.busy
    t.bursts t.bytes
    (if include_time then string_of_int t.pending_at else "_")
