(* Virtio-style network device with a deterministic traffic generator.

   Two descriptor rings in RAM (16-byte descriptors, same shape as
   {!Dma}'s: {buf, _, len, flags}).  Software posts free rx buffers by
   advancing RX_TAIL; the built-in generator delivers synthetic packets
   into them in bursts via the shared DMA blit helpers, dropping packets
   when the ring is empty (counted, as a real NIC would).  Software
   posts tx packets by advancing the TX_TAIL doorbell; the device
   consumes them at DMA burst cost, folding every payload byte into an
   FNV-1a checksum register so transmitted data is architecturally
   observable.  All activity is timestamped on the {!Event_wheel}; the
   generator's cadence (seed/rate/burst/len/count) and payload bytes are
   pure functions of the programmed registers, so runs are deterministic
   and digest-identical across execution engines.

   RXDATA (0x50) is a per-byte PIO tap of the same synthetic stream —
   each read pops one byte — kept as the slow-path baseline that E17
   measures DMA bursts against. *)

module Mem = S4e_mem.Sparse_mem

let irq_line = 1
let irq_rx = 1
let irq_tx = 2

(* register offsets *)
let reg_ctrl = 0x00
let reg_irq_status = 0x04
let reg_irq_enable = 0x08
let reg_rx_base = 0x0C
let reg_rx_count = 0x10
let reg_rx_tail = 0x14
let reg_rx_head = 0x18
let reg_tx_base = 0x1C
let reg_tx_count = 0x20
let reg_tx_tail = 0x24
let reg_tx_head = 0x28
let reg_gen_seed = 0x2C
let reg_gen_rate = 0x30
let reg_gen_burst = 0x34
let reg_gen_len = 0x38
let reg_gen_count = 0x3C
let reg_rx_delivered = 0x40
let reg_rx_dropped = 0x44
let reg_tx_sent = 0x48
let reg_tx_csum = 0x4C
let reg_rxdata = 0x50

let mask32 a = a land 0xFFFF_FFFF

(* Payload byte [i] of the synthetic stream for a given seed: a
   splitmix-style hash, pure in (seed, index), so no generator state
   needs snapshotting and any engine observing byte [i] sees the same
   value. *)
let stream_byte seed i =
  let z = mask32 (seed + mask32 (i * 0x9E37_79B9)) in
  let z = mask32 ((z lxor (z lsr 16)) * 0x85EB_CA6B) in
  let z = mask32 ((z lxor (z lsr 13)) * 0xC2B2_AE35) in
  (z lxor (z lsr 16)) land 0xFF

type t = {
  mem : Mem.t;
  wheel : Event_wheel.t;
  now : unit -> int;
  notify : int -> int -> unit;
  mutable ctrl : int;
  mutable irq_status : int;
  mutable irq_enable : int;
  mutable rx_base : int;
  mutable rx_count : int;
  mutable rx_tail : int;
  mutable rx_head : int;
  mutable tx_base : int;
  mutable tx_count : int;
  mutable tx_tail : int;
  mutable tx_head : int;
  mutable gen_seed : int;
  mutable gen_rate : int;
  mutable gen_burst : int;
  mutable gen_len : int;
  mutable gen_left : int;  (* packets still to emit *)
  mutable gen_next_at : int;  (* next generator deadline; max_int idle *)
  mutable gen_ev : int;
  mutable pkt_seq : int;  (* packets emitted so far (delivered + dropped) *)
  mutable tx_busy : bool;
  mutable tx_pending_at : int;
  mutable tx_ev : int;
  mutable rx_delivered : int;
  mutable rx_dropped : int;
  mutable tx_sent : int;
  mutable tx_csum : int;
  mutable pio_cursor : int;  (* RXDATA stream position *)
  scratch : Bytes.t;  (* staging buffer for one rx payload *)
  mutable observer : (kind:string -> bytes:int -> depth:int -> unit) option;
}

let max_pkt_len = 4096

let create ~mem ~wheel ~now ~notify () =
  { mem; wheel; now; notify;
    ctrl = 0; irq_status = 0; irq_enable = 0;
    rx_base = 0; rx_count = 0; rx_tail = 0; rx_head = 0;
    tx_base = 0; tx_count = 0; tx_tail = 0; tx_head = 0;
    gen_seed = 1; gen_rate = 1024; gen_burst = 1; gen_len = 64;
    gen_left = 0; gen_next_at = max_int; gen_ev = -1; pkt_seq = 0;
    tx_busy = false; tx_pending_at = max_int; tx_ev = -1;
    rx_delivered = 0; rx_dropped = 0; tx_sent = 0;
    tx_csum = 0x811C_9DC5; pio_cursor = 0;
    scratch = Bytes.create max_pkt_len; observer = None }

let set_observer t o = t.observer <- o

let update_line t =
  if t.irq_status land t.irq_enable <> 0 then
    Event_wheel.set_irq t.wheel irq_line
  else Event_wheel.clear_irq t.wheel irq_line

let observe t kind bytes depth =
  match t.observer with
  | Some f -> f ~kind ~bytes ~depth
  | None -> ()

let rx_slot t i = mask32 (t.rx_base + (i mod max 1 t.rx_count) * Dma.desc_size)
let tx_slot t i = mask32 (t.tx_base + (i mod max 1 t.tx_count) * Dma.desc_size)

(* ---------------- rx: generator -> ring ---------------- *)

(* Deliver one synthetic packet into the next free rx buffer, or drop it
   if software hasn't posted one.  Payload byte [j] of packet [k] is
   [stream_byte seed (k lsl 16 lor j)]. *)
let deliver t =
  let seq = t.pkt_seq in
  t.pkt_seq <- seq + 1;
  if t.rx_count = 0 || t.rx_head = t.rx_tail then begin
    t.rx_dropped <- t.rx_dropped + 1;
    observe t "rx-drop" 0 0
  end
  else begin
    let da = rx_slot t t.rx_head in
    let buf = Mem.read32 t.mem da in
    let blen = Mem.read32 t.mem (da + 8) in
    let plen = min (min t.gen_len blen) max_pkt_len in
    if plen > 0 then begin
      for j = 0 to plen - 1 do
        Bytes.unsafe_set t.scratch j
          (Char.unsafe_chr (stream_byte t.gen_seed ((seq lsl 16) lor j)))
      done;
      Dma.blit_in t.mem ~src:t.scratch ~src_off:0 ~dst:buf ~len:plen;
      t.notify buf plen
    end;
    Mem.write32 t.mem (da + 12) (plen lor Dma.flag_done);
    t.notify (da + 12) 4;
    t.rx_head <- t.rx_head + 1;
    t.rx_delivered <- t.rx_delivered + 1;
    t.irq_status <- t.irq_status lor irq_rx;
    observe t "rx" plen (t.rx_tail - t.rx_head)
  end

let rec gen_fire t _now =
  let burst = min (max 1 t.gen_burst) t.gen_left in
  for _ = 1 to burst do
    deliver t
  done;
  t.gen_left <- t.gen_left - burst;
  update_line t;
  if t.gen_left > 0 then begin
    (* cadence anchors on the deadline, not the fire time: no drift *)
    t.gen_next_at <- t.gen_next_at + max 1 t.gen_rate;
    t.gen_ev <- Event_wheel.schedule t.wheel ~at:t.gen_next_at (gen_fire t)
  end
  else begin
    t.gen_next_at <- max_int;
    t.gen_ev <- -1
  end

let gen_arm t count =
  if t.gen_ev >= 0 then Event_wheel.cancel t.wheel t.gen_ev;
  t.gen_left <- count;
  if count > 0 && t.ctrl land 1 <> 0 then begin
    t.gen_next_at <- t.now () + max 1 t.gen_rate;
    t.gen_ev <- Event_wheel.schedule t.wheel ~at:t.gen_next_at (gen_fire t)
  end
  else begin
    t.gen_left <- 0;
    t.gen_next_at <- max_int;
    t.gen_ev <- -1
  end

(* ---------------- tx: ring -> checksum ---------------- *)

let rec tx_arm t ~now =
  let da = tx_slot t t.tx_head in
  let len = min (Mem.read32 t.mem (da + 8)) max_pkt_len in
  t.tx_busy <- true;
  t.tx_pending_at <- now + Dma.cost len;
  t.tx_ev <- Event_wheel.schedule t.wheel ~at:t.tx_pending_at (tx_complete t)

and tx_complete t fire_now =
  let da = tx_slot t t.tx_head in
  let buf = Mem.read32 t.mem da in
  (* clamped like rx: a corrupted slot length must not fold gigabytes *)
  let len = min (Mem.read32 t.mem (da + 8)) max_pkt_len in
  let flags = Mem.read32 t.mem (da + 12) in
  if len > 0 then t.tx_csum <- Dma.fnv_fold t.mem ~src:buf ~len t.tx_csum;
  Mem.write32 t.mem (da + 12) (flags lor Dma.flag_done);
  t.notify (da + 12) 4;
  t.tx_head <- t.tx_head + 1;
  t.tx_sent <- t.tx_sent + 1;
  t.irq_status <- t.irq_status lor irq_tx;
  update_line t;
  observe t "tx" len (t.tx_tail - t.tx_head);
  if t.tx_head <> t.tx_tail then tx_arm t ~now:fire_now
  else begin
    t.tx_busy <- false;
    t.tx_pending_at <- max_int;
    t.tx_ev <- -1
  end

(* ---------------- register file ---------------- *)

let read t offset _size =
  match offset with
  | o when o = reg_ctrl -> t.ctrl
  | o when o = reg_irq_status -> t.irq_status
  | o when o = reg_irq_enable -> t.irq_enable
  | o when o = reg_rx_base -> t.rx_base
  | o when o = reg_rx_count -> t.rx_count
  | o when o = reg_rx_tail -> t.rx_tail land 0xFFFF_FFFF
  | o when o = reg_rx_head -> t.rx_head land 0xFFFF_FFFF
  | o when o = reg_tx_base -> t.tx_base
  | o when o = reg_tx_count -> t.tx_count
  | o when o = reg_tx_tail -> t.tx_tail land 0xFFFF_FFFF
  | o when o = reg_tx_head -> t.tx_head land 0xFFFF_FFFF
  | o when o = reg_gen_seed -> t.gen_seed
  | o when o = reg_gen_rate -> t.gen_rate
  | o when o = reg_gen_burst -> t.gen_burst
  | o when o = reg_gen_len -> t.gen_len
  | o when o = reg_gen_count -> t.gen_left
  | o when o = reg_rx_delivered -> t.rx_delivered land 0xFFFF_FFFF
  | o when o = reg_rx_dropped -> t.rx_dropped land 0xFFFF_FFFF
  | o when o = reg_tx_sent -> t.tx_sent land 0xFFFF_FFFF
  | o when o = reg_tx_csum -> t.tx_csum
  | o when o = reg_rxdata ->
      (* per-byte PIO tap of the synthetic stream (the E17 baseline) *)
      let b = stream_byte t.gen_seed t.pio_cursor in
      t.pio_cursor <- t.pio_cursor + 1;
      b
  | _ -> 0

let write t offset _size v =
  match offset with
  | o when o = reg_ctrl -> t.ctrl <- v land 1
  | o when o = reg_irq_status ->
      t.irq_status <- t.irq_status land lnot v;
      update_line t
  | o when o = reg_irq_enable ->
      t.irq_enable <- v land (irq_rx lor irq_tx);
      update_line t
  | o when o = reg_rx_base -> t.rx_base <- mask32 v
  | o when o = reg_rx_count -> t.rx_count <- v land 0xFFFF
  | o when o = reg_rx_tail -> t.rx_tail <- mask32 v
  | o when o = reg_tx_base -> t.tx_base <- mask32 v
  | o when o = reg_tx_count -> t.tx_count <- v land 0xFFFF
  | o when o = reg_tx_tail ->
      t.tx_tail <- mask32 v;
      if t.ctrl land 1 <> 0 && (not t.tx_busy) && t.tx_count > 0
         && t.tx_head <> t.tx_tail
      then tx_arm t ~now:(t.now ())
  | o when o = reg_gen_seed -> t.gen_seed <- mask32 v
  | o when o = reg_gen_rate -> t.gen_rate <- v land 0xFF_FFFF
  | o when o = reg_gen_burst -> t.gen_burst <- v land 0xFFFF
  | o when o = reg_gen_len -> t.gen_len <- min (v land 0xFFFF) max_pkt_len
  | o when o = reg_gen_count -> gen_arm t (mask32 v)
  | _ -> ()

let device t ~base =
  { S4e_mem.Bus.dev_name = "vnet"; dev_base = base; dev_len = 0x100;
    dev_read = read t; dev_write = write t }

type stats = {
  vn_rx_delivered : int;
  vn_rx_dropped : int;
  vn_tx_sent : int;
  vn_tx_csum : int;
}

let stats t =
  { vn_rx_delivered = t.rx_delivered;
    vn_rx_dropped = t.rx_dropped;
    vn_tx_sent = t.tx_sent;
    vn_tx_csum = t.tx_csum }

let gen_active t = t.gen_left > 0

let reset t =
  if t.gen_ev >= 0 then Event_wheel.cancel t.wheel t.gen_ev;
  if t.tx_ev >= 0 then Event_wheel.cancel t.wheel t.tx_ev;
  t.ctrl <- 0;
  t.irq_status <- 0;
  t.irq_enable <- 0;
  t.rx_base <- 0;
  t.rx_count <- 0;
  t.rx_tail <- 0;
  t.rx_head <- 0;
  t.tx_base <- 0;
  t.tx_count <- 0;
  t.tx_tail <- 0;
  t.tx_head <- 0;
  t.gen_seed <- 1;
  t.gen_rate <- 1024;
  t.gen_burst <- 1;
  t.gen_len <- 64;
  t.gen_left <- 0;
  t.gen_next_at <- max_int;
  t.gen_ev <- -1;
  t.pkt_seq <- 0;
  t.tx_busy <- false;
  t.tx_pending_at <- max_int;
  t.tx_ev <- -1;
  t.rx_delivered <- 0;
  t.rx_dropped <- 0;
  t.tx_sent <- 0;
  t.tx_csum <- 0x811C_9DC5;
  t.pio_cursor <- 0;
  update_line t

type snapshot = {
  snap_ctrl : int;
  snap_irq_status : int;
  snap_irq_enable : int;
  snap_rx_base : int;
  snap_rx_count : int;
  snap_rx_tail : int;
  snap_rx_head : int;
  snap_tx_base : int;
  snap_tx_count : int;
  snap_tx_tail : int;
  snap_tx_head : int;
  snap_gen_seed : int;
  snap_gen_rate : int;
  snap_gen_burst : int;
  snap_gen_len : int;
  snap_gen_left : int;
  snap_gen_next_at : int;
  snap_pkt_seq : int;
  snap_tx_busy : bool;
  snap_tx_pending_at : int;
  snap_rx_delivered : int;
  snap_rx_dropped : int;
  snap_tx_sent : int;
  snap_tx_csum : int;
  snap_pio_cursor : int;
}

let snapshot t =
  { snap_ctrl = t.ctrl; snap_irq_status = t.irq_status;
    snap_irq_enable = t.irq_enable; snap_rx_base = t.rx_base;
    snap_rx_count = t.rx_count; snap_rx_tail = t.rx_tail;
    snap_rx_head = t.rx_head; snap_tx_base = t.tx_base;
    snap_tx_count = t.tx_count; snap_tx_tail = t.tx_tail;
    snap_tx_head = t.tx_head; snap_gen_seed = t.gen_seed;
    snap_gen_rate = t.gen_rate; snap_gen_burst = t.gen_burst;
    snap_gen_len = t.gen_len; snap_gen_left = t.gen_left;
    snap_gen_next_at = t.gen_next_at; snap_pkt_seq = t.pkt_seq;
    snap_tx_busy = t.tx_busy; snap_tx_pending_at = t.tx_pending_at;
    snap_rx_delivered = t.rx_delivered; snap_rx_dropped = t.rx_dropped;
    snap_tx_sent = t.tx_sent; snap_tx_csum = t.tx_csum;
    snap_pio_cursor = t.pio_cursor }

let restore t s =
  t.ctrl <- s.snap_ctrl;
  t.irq_status <- s.snap_irq_status;
  t.irq_enable <- s.snap_irq_enable;
  t.rx_base <- s.snap_rx_base;
  t.rx_count <- s.snap_rx_count;
  t.rx_tail <- s.snap_rx_tail;
  t.rx_head <- s.snap_rx_head;
  t.tx_base <- s.snap_tx_base;
  t.tx_count <- s.snap_tx_count;
  t.tx_tail <- s.snap_tx_tail;
  t.tx_head <- s.snap_tx_head;
  t.gen_seed <- s.snap_gen_seed;
  t.gen_rate <- s.snap_gen_rate;
  t.gen_burst <- s.snap_gen_burst;
  t.gen_len <- s.snap_gen_len;
  t.gen_left <- s.snap_gen_left;
  t.gen_next_at <- s.snap_gen_next_at;
  t.pkt_seq <- s.snap_pkt_seq;
  t.tx_busy <- s.snap_tx_busy;
  t.tx_pending_at <- s.snap_tx_pending_at;
  t.rx_delivered <- s.snap_rx_delivered;
  t.rx_dropped <- s.snap_rx_dropped;
  t.tx_sent <- s.snap_tx_sent;
  t.tx_csum <- s.snap_tx_csum;
  t.pio_cursor <- s.snap_pio_cursor;
  t.gen_ev <-
    (if s.snap_gen_left > 0 && s.snap_gen_next_at < max_int then
       Event_wheel.schedule t.wheel ~at:s.snap_gen_next_at (gen_fire t)
     else -1);
  t.tx_ev <-
    (if s.snap_tx_busy then
       Event_wheel.schedule t.wheel ~at:s.snap_tx_pending_at (tx_complete t)
     else -1);
  update_line t

let digest ~include_time t =
  Printf.sprintf "%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%d;%b;%s;%s"
    t.ctrl t.irq_status t.irq_enable t.rx_base t.rx_count t.rx_tail t.rx_head
    t.tx_base t.tx_count t.tx_tail t.tx_head t.gen_seed t.gen_rate t.gen_burst
    t.gen_len t.gen_left t.pkt_seq t.rx_delivered t.rx_dropped t.tx_sent
    t.tx_csum t.tx_busy
    (if include_time then string_of_int t.gen_next_at else "_")
    (if include_time then string_of_int t.tx_pending_at else "_")
