(** A 32-bit GPIO block.

    Register map (byte offsets):
    - [0x00] OUT: output latch (read back what was written).
    - [0x04] IN: input pins, set from the host side via {!set_input}.

    An optional callback observes every change of the output latch;
    the lock-system example wires the door actuator to it. *)

type t

val create : ?on_output:(S4e_bits.Bits.word -> unit) -> unit -> t
val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device
val output : t -> S4e_bits.Bits.word
val set_input : t -> S4e_bits.Bits.word -> unit
val input : t -> S4e_bits.Bits.word

type snapshot
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Restoring does not fire the [on_output] callback. *)
