(* Hierarchical timer wheel for device events, keyed on MTIME-cycle
   deadlines.

   The near level is a 256-slot array of one-cycle buckets covering
   [base, base + 256); because slot index is [deadline land 255] and the
   window is exactly 256 cycles wide, every event in one slot shares one
   deadline.  Deadlines at or beyond the horizon wait in [far], a list
   kept ascending by (deadline, id), and are pulled into the near window
   as the base advances past fired deadlines.

   The whole structure hides behind one word: [next_deadline] caches the
   earliest live deadline (max_int when idle), so the machine's batched
   cycle-flush points pay a single compare when the device plane is
   quiet.  Events fire in deadline order, ties broken by schedule order
   (ids are monotonic), which keeps multi-device runs deterministic and
   engine-independent. *)

type event = { ev_id : int; ev_at : int; ev_fn : int -> unit }

let near_bits = 8
let near_size = 1 lsl near_bits
let near_mask = near_size - 1

type t = {
  mutable base : int;  (* every live deadline is >= base *)
  near : event list array;  (* slot (at land near_mask), unordered *)
  mutable far : event list;  (* ascending (ev_at, ev_id) *)
  mutable live : int;
  mutable next : int;  (* cached earliest live deadline; max_int if none *)
  mutable next_id : int;
  index : (int, int) Hashtbl.t;  (* live id -> deadline, for cancel *)
  mutable irq : int;  (* pending interrupt lines, one bit per line *)
  mutable fired : int;
  mutable idle_skips : int;
  mutable scheduled : int;
  mutable cancelled : int;
}

let create () =
  { base = 0;
    near = Array.make near_size [];
    far = [];
    live = 0;
    next = max_int;
    next_id = 0;
    index = Hashtbl.create 16;
    irq = 0;
    fired = 0;
    idle_skips = 0;
    scheduled = 0;
    cancelled = 0 }

let next_deadline t = t.next
let pending t = t.live

let rec insert_far ev = function
  | [] -> [ ev ]
  | e :: _ as l when (e.ev_at, e.ev_id) > (ev.ev_at, ev.ev_id) -> ev :: l
  | e :: tl -> e :: insert_far ev tl

let schedule t ~at fn =
  (* a deadline already in the past fires at the next consultation *)
  let at = if at < t.base then t.base else at in
  let id = t.next_id in
  t.next_id <- id + 1;
  let ev = { ev_id = id; ev_at = at; ev_fn = fn } in
  if at - t.base < near_size then begin
    let i = at land near_mask in
    t.near.(i) <- ev :: t.near.(i)
  end
  else t.far <- insert_far ev t.far;
  Hashtbl.replace t.index id at;
  t.live <- t.live + 1;
  t.scheduled <- t.scheduled + 1;
  if at < t.next then t.next <- at;
  id

(* Earliest deadline across both levels.  Only runs after firing or
   cancelling the cached minimum; the near scan is bounded by the window
   size and the far head is already minimal. *)
let recompute_next t =
  if t.live = 0 then t.next <- max_int
  else begin
    let n = ref max_int in
    let i = ref 0 in
    while !n = max_int && !i < near_size do
      (match t.near.((t.base + !i) land near_mask) with
      | [] -> ()
      | e :: _ -> n := e.ev_at);
      incr i
    done;
    (match t.far with
    | e :: _ when e.ev_at < !n -> n := e.ev_at
    | _ -> ());
    t.next <- !n
  end

let cancel t id =
  match Hashtbl.find_opt t.index id with
  | None -> ()  (* already fired or cancelled *)
  | Some at ->
      Hashtbl.remove t.index id;
      t.live <- t.live - 1;
      t.cancelled <- t.cancelled + 1;
      let drop l = List.filter (fun e -> e.ev_id <> id) l in
      if at - t.base < near_size then begin
        let i = at land near_mask in
        t.near.(i) <- drop t.near.(i)
      end
      else t.far <- drop t.far;
      if at = t.next then recompute_next t

(* Pull far events that now fit the near window. *)
let promote t =
  let horizon = t.base + near_size in
  let rec go = function
    | e :: tl when e.ev_at < horizon ->
        let i = e.ev_at land near_mask in
        t.near.(i) <- e :: t.near.(i);
        go tl
    | rest -> t.far <- rest
  in
  go t.far

let run_due t ~now =
  while t.live > 0 && t.next <= now do
    let at = t.next in
    let batch =
      if at - t.base < near_size then begin
        let i = at land near_mask in
        let evs = t.near.(i) in
        t.near.(i) <- [];
        List.sort (fun a b -> compare a.ev_id b.ev_id) evs
      end
      else begin
        let rec split acc = function
          | e :: tl when e.ev_at = at -> split (e :: acc) tl
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = split [] t.far in
        t.far <- rest;
        batch
      end
    in
    List.iter
      (fun e ->
        Hashtbl.remove t.index e.ev_id;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        e.ev_fn now)
      batch;
    if at >= t.base then begin
      t.base <- at + 1;
      promote t
    end;
    recompute_next t
  done;
  if t.base <= now then begin
    t.base <- now + 1;
    promote t
  end

let note_idle_skip t = t.idle_skips <- t.idle_skips + 1

(* ---------------- interrupt lines ---------------- *)

let set_irq t line = t.irq <- t.irq lor (1 lsl line)
let clear_irq t line = t.irq <- t.irq land lnot (1 lsl line)
let irq_pending t = t.irq

(* ---------------- stats / reset ---------------- *)

type stats = {
  ws_fired : int;
  ws_idle_skips : int;
  ws_scheduled : int;
  ws_cancelled : int;
  ws_live : int;
}

let stats t =
  { ws_fired = t.fired;
    ws_idle_skips = t.idle_skips;
    ws_scheduled = t.scheduled;
    ws_cancelled = t.cancelled;
    ws_live = t.live }

(* Drops every event and interrupt line (snapshot restore / reset path:
   callbacks cannot be captured, so each wheel client re-arms from its
   own restored state).  Counters survive — they are observability, not
   architecture. *)
let clear t =
  Array.fill t.near 0 near_size [];
  t.far <- [];
  t.live <- 0;
  t.next <- max_int;
  t.base <- 0;
  t.irq <- 0;
  Hashtbl.reset t.index
