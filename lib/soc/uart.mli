(** A minimal memory-mapped UART.

    Register map (byte offsets):
    - [0x00] DATA: writes transmit one byte; reads pop the receive queue
      (0 when empty).
    - [0x04] STATUS: bit 0 = receive data available, bit 1 = transmitter
      ready (always set).

    Transmitted bytes accumulate in an internal buffer ({!output}) and
    are optionally forwarded to a callback, which examples use to print
    live. *)

type t

val create : ?on_tx:(char -> unit) -> unit -> t

val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device
(** Bus device of length 0x100 at [base]. *)

val feed : t -> string -> unit
(** Appends bytes to the receive queue (host-to-target input). *)

val output : t -> string
(** Everything transmitted so far. *)

val clear_output : t -> unit

val set_sink : t -> (string -> unit) option -> unit
(** Installs a batched host-side output sink.  Transmitted bytes are
    buffered and handed to the sink in chunks — on newline, when 256
    bytes accumulate, or at {!flush_host} — so console-heavy guests
    don't pay one host call per byte.  Flushes any pending bytes to the
    outgoing sink first.  Independent of [on_tx], which stays
    per-byte. *)

val flush_host : t -> unit
(** Pushes any buffered bytes to the sink now (the machine calls this
    at run exit).  No-op without a sink. *)

val data_offset : int
val status_offset : int

type snapshot
(** Captured transmit buffer and receive queue. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Restoring does not replay the [on_tx] callback. *)
