(** A minimal memory-mapped UART.

    Register map (byte offsets):
    - [0x00] DATA: writes transmit one byte; reads pop the receive queue
      (0 when empty).
    - [0x04] STATUS: bit 0 = receive data available, bit 1 = transmitter
      ready (always set).

    Transmitted bytes accumulate in an internal buffer ({!output}) and
    are optionally forwarded to a callback, which examples use to print
    live. *)

type t

val create : ?on_tx:(char -> unit) -> unit -> t

val device : t -> base:S4e_bits.Bits.word -> S4e_mem.Bus.device
(** Bus device of length 0x100 at [base]. *)

val feed : t -> string -> unit
(** Appends bytes to the receive queue (host-to-target input). *)

val output : t -> string
(** Everything transmitted so far. *)

val clear_output : t -> unit

val data_offset : int
val status_offset : int

type snapshot
(** Captured transmit buffer and receive queue. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Restoring does not replay the [on_tx] callback. *)
