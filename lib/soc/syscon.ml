type t = { mutable code : int option; mutable notify : unit -> unit }

let create () = { code = None; notify = ignore }

let write t offset _size v =
  if offset = 0x00 then begin
    t.code <- Some v;
    t.notify ()
  end

let device t ~base =
  { S4e_mem.Bus.dev_name = "syscon"; dev_base = base; dev_len = 0x10;
    dev_read = (fun _ _ -> 0); dev_write = write t }

let exit_code t = t.code
let set_notify t f = t.notify <- f
let reset t = t.code <- None

type snapshot = int option

let snapshot t = t.code
let restore t s = t.code <- s
