type t = {
  tx : Buffer.t;
  rx : char Queue.t;
  on_tx : (char -> unit) option;
  (* host sink: transmitted bytes accumulate in [pending] and reach the
     sink in batches (newline or threshold), so console-heavy guests
     don't pay one host write per byte *)
  pending : Buffer.t;
  mutable sink : (string -> unit) option;
}

let data_offset = 0x00
let status_offset = 0x04
let flush_threshold = 256

let create ?on_tx () =
  { tx = Buffer.create 256; rx = Queue.create (); on_tx;
    pending = Buffer.create 256; sink = None }

let flush_host t =
  match t.sink with
  | Some f when Buffer.length t.pending > 0 ->
      f (Buffer.contents t.pending);
      Buffer.clear t.pending
  | _ -> Buffer.clear t.pending

let set_sink t sink =
  flush_host t;
  t.sink <- sink

let read t offset _size =
  if offset = data_offset then
    match Queue.take_opt t.rx with Some c -> Char.code c | None -> 0
  else if offset = status_offset then
    (if Queue.is_empty t.rx then 0 else 1) lor 0b10
  else 0

let write t offset _size v =
  if offset = data_offset then begin
    let c = Char.chr (v land 0xFF) in
    Buffer.add_char t.tx c;
    (match t.sink with
    | Some _ ->
        Buffer.add_char t.pending c;
        if c = '\n' || Buffer.length t.pending >= flush_threshold then
          flush_host t
    | None -> ());
    match t.on_tx with Some f -> f c | None -> ()
  end

let device t ~base =
  { S4e_mem.Bus.dev_name = "uart"; dev_base = base; dev_len = 0x100;
    dev_read = read t; dev_write = write t }

let feed t s = String.iter (fun c -> Queue.add c t.rx) s
let output t = Buffer.contents t.tx
let clear_output t = Buffer.clear t.tx

type snapshot = { snap_tx : string; snap_rx : string }

let snapshot t =
  { snap_tx = Buffer.contents t.tx;
    snap_rx = String.of_seq (Queue.to_seq t.rx) }

let restore t s =
  Buffer.clear t.tx;
  Buffer.add_string t.tx s.snap_tx;
  Queue.clear t.rx;
  String.iter (fun c -> Queue.add c t.rx) s.snap_rx;
  Buffer.clear t.pending
