type kind = Retire | Trap | Irq | Dev | Watch

let kind_name = function
  | Retire -> "retire"
  | Trap -> "trap"
  | Irq -> "irq"
  | Dev -> "dev"
  | Watch -> "watch"

type record = {
  mutable r_seq : int;
  mutable r_kind : kind;
  mutable r_pc : int;
  mutable r_op : int;
  mutable r_rd : int;
  mutable r_rd_val : int;
  mutable r_addr : int;
  mutable r_width : int;
  mutable r_value : int;
  mutable r_store : bool;
}

(* Valid records occupy the sequence window [lo, seq); slot s lives at
   index [s mod capacity].  The representation makes [rewind] a pair of
   integer stores: writes past a mark overwrite the *oldest* pre-mark
   slots, so rewinding just moves [seq] back and clamps [lo] up to the
   oldest slot that survived. *)
type t = {
  slots : record array;
  cap : int;
  mutable seq : int;
  mutable lo : int;
}

let fresh_record () =
  { r_seq = 0; r_kind = Retire; r_pc = 0; r_op = 0; r_rd = -1; r_rd_val = 0;
    r_addr = -1; r_width = 0; r_value = 0; r_store = false }

let create ?(capacity = 256) () =
  let cap = max 2 capacity in
  { slots = Array.init cap (fun _ -> fresh_record ()); cap; seq = 0; lo = 0 }

let capacity t = t.cap
let seq t = t.seq
let length t = t.seq - t.lo

let clear t =
  t.seq <- 0;
  t.lo <- 0

(* Claim the next slot and advance the window. *)
let next_slot t =
  let r = Array.unsafe_get t.slots (t.seq mod t.cap) in
  r.r_seq <- t.seq;
  t.seq <- t.seq + 1;
  if t.seq - t.lo > t.cap then t.lo <- t.seq - t.cap;
  r

let retire t ~pc ~op ~rd ~rd_val ~addr ~width ~value ~store =
  let r = next_slot t in
  r.r_kind <- Retire;
  r.r_pc <- pc;
  r.r_op <- op;
  r.r_rd <- rd;
  r.r_rd_val <- rd_val;
  r.r_addr <- addr;
  r.r_width <- width;
  r.r_value <- value;
  r.r_store <- store

let event t kind ~pc ~info =
  let r = next_slot t in
  r.r_kind <- kind;
  r.r_pc <- pc;
  r.r_op <- info;
  r.r_rd <- -1;
  r.r_rd_val <- 0;
  r.r_addr <- -1;
  r.r_width <- 0;
  r.r_value <- 0;
  r.r_store <- false

let watch_hit t ~pc ~op ~addr ~width ~value ~store =
  let r = next_slot t in
  r.r_kind <- Watch;
  r.r_pc <- pc;
  r.r_op <- op;
  r.r_rd <- -1;
  r.r_rd_val <- 0;
  r.r_addr <- addr;
  r.r_width <- width;
  r.r_value <- value;
  r.r_store <- store

type mark = { m_seq : int; m_lo : int }

let mark t = { m_seq = t.seq; m_lo = t.lo }

let rewind t m =
  (* Slots written since the mark overwrote the oldest pre-mark
     records; [t.seq - t.cap] is the oldest sequence number whose slot
     still holds its own record. *)
  let surviving_lo = max m.m_lo (t.seq - t.cap) in
  t.lo <- min m.m_seq surviving_lo;
  t.seq <- m.m_seq

let copy_record r =
  { r_seq = r.r_seq; r_kind = r.r_kind; r_pc = r.r_pc; r_op = r.r_op;
    r_rd = r.r_rd; r_rd_val = r.r_rd_val; r_addr = r.r_addr;
    r_width = r.r_width; r_value = r.r_value; r_store = r.r_store }

let records t =
  let out = ref [] in
  for s = t.seq - 1 downto t.lo do
    out := copy_record t.slots.(s mod t.cap) :: !out
  done;
  !out

let pp_record fmt r =
  Format.fprintf fmt "%8d %-6s pc=0x%08x" r.r_seq (kind_name r.r_kind) r.r_pc;
  (match r.r_kind with
  | Retire | Watch -> Format.fprintf fmt " op=0x%08x" r.r_op
  | Trap | Irq | Dev -> Format.fprintf fmt " info=0x%x" r.r_op);
  if r.r_rd >= 32 then Format.fprintf fmt " f%d=0x%08x" (r.r_rd - 32) r.r_rd_val
  else if r.r_rd >= 0 then Format.fprintf fmt " x%d=0x%08x" r.r_rd r.r_rd_val;
  if r.r_addr >= 0 then
    Format.fprintf fmt " %s[0x%08x]%d=0x%x"
      (if r.r_store then "st" else "ld")
      r.r_addr r.r_width r.r_value
