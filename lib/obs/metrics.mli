(** Metrics registry — the runtime's self-observation substrate.

    A registry holds named instruments of three shapes:

    - {b counters}: monotonically increasing event counts, backed by an
      [Atomic.t] so campaign workers on different domains can bump them
      without a lock.  Counter handles are cheap to keep in a closure:
      the hot path is one [Atomic.fetch_and_add].
    - {b gauges}: read-on-demand probes ([unit -> value]).  The probed
      code pays {e nothing} — a gauge wraps a counter the hot path
      already maintains (e.g. [Tb_cache] hit counts, [state.instret]),
      and the read happens only at {!snapshot} time.  This is how the
      emulator's per-block batched counters are exposed without adding
      work at the TB flush points.
    - {b histograms}: fixed upper-bound buckets with atomic counts, for
      cross-domain distributions (per-mutant retired instructions).

    Registration is idempotent by name: asking for an existing counter
    or histogram returns the same instrument, so independent layers can
    wire the same registry without coordination.  All registry
    operations are thread-safe. *)

type t

type value = Int of int | Float of float

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Registers (or retrieves) the counter named [name].
    @raise Invalid_argument if the name is bound to another shape. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> value) -> unit
(** Registers (or replaces) a probe.  The closure runs at {!snapshot}
    time; it must be cheap and must not raise. *)

val gauge_int : t -> string -> (unit -> int) -> unit
val gauge_float : t -> string -> (unit -> float) -> unit

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> bounds:int array -> histogram
(** Fixed buckets: [bounds] are inclusive upper bounds, ascending; an
    implicit overflow bucket catches the rest.
    @raise Invalid_argument on unsorted bounds or a shape conflict. *)

val observe : histogram -> int -> unit

(** {1 Process gauges} *)

val register_process_gauges : t -> unit
(** Registers the process-level self-observation gauges:

    - [process.uptime_s] — wall-clock seconds since this call;
    - [process.gc_heap_words], [process.gc_major_words],
      [process.gc_minor_collections], [process.gc_major_collections] —
      from [Gc.quick_stat];
    - [process.max_rss_kb] — peak resident set ([VmHWM] from
      [/proc/self/status]; [0] where procfs is unavailable).

    Idempotent per registry (re-registering resets the uptime
    epoch).  Long-running processes — [s4e serve], [s4e worker], fault
    campaigns with [--metrics] — call this so every metrics export
    carries the process's own health. *)

(** {1 Export} *)

val snapshot : t -> (string * value) list
(** Every instrument flattened to (name, value) pairs, sorted by name.
    A histogram [h] expands to [h.le_B] per bound, [h.le_inf],
    [h.count], and [h.sum]. *)

val schema_version : int
(** Version of the JSON export's shape; bumped on any change to key
    naming, histogram expansion, or value rendering. *)

val to_json : t -> string
(** The snapshot as one JSON object keyed by metric name, prefixed with
    an [s4e_metrics_schema] field carrying {!schema_version} so
    consumers can detect exports they were not written for. *)

val write_json : t -> string -> unit
(** [write_json t path] writes {!to_json} to [path]; ["-"] is stdout. *)
