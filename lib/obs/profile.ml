type block = {
  bl_pc : int;
  mutable bl_bytes : int;
  mutable bl_execs : int;
  mutable bl_instrs : int;
  mutable bl_cycles : int;
}

type t = { tbl : (int, block) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }

let note t ~pc ~bytes ~instrs ~cycles =
  match Hashtbl.find_opt t.tbl pc with
  | Some b ->
      b.bl_execs <- b.bl_execs + 1;
      b.bl_instrs <- b.bl_instrs + instrs;
      b.bl_cycles <- b.bl_cycles + cycles;
      if bytes > b.bl_bytes then b.bl_bytes <- bytes
  | None ->
      Hashtbl.replace t.tbl pc
        { bl_pc = pc; bl_bytes = bytes; bl_execs = 1; bl_instrs = instrs;
          bl_cycles = cycles }

let blocks t = Hashtbl.fold (fun _ b acc -> b :: acc) t.tbl []

let total_execs t = Hashtbl.fold (fun _ b a -> a + b.bl_execs) t.tbl 0
let total_instrs t = Hashtbl.fold (fun _ b a -> a + b.bl_instrs) t.tbl 0
let total_cycles t = Hashtbl.fold (fun _ b a -> a + b.bl_cycles) t.tbl 0

let ranked t =
  List.sort
    (fun a b ->
      match compare b.bl_cycles a.bl_cycles with
      | 0 -> compare a.bl_pc b.bl_pc
      | c -> c)
    (blocks t)

type symbolizer = int -> (string * int) option

let symbolizer_of_symbols syms =
  let arr = Array.of_list syms in
  (* sort by address; within one address the later definition wins *)
  Array.sort (fun (_, a) (_, b) -> compare a b) arr;
  let n = Array.length arr in
  fun pc ->
    (* greatest symbol address <= pc *)
    let rec search lo hi best =
      if lo > hi then best
      else
        let mid = (lo + hi) / 2 in
        let _, addr = arr.(mid) in
        if addr <= pc then search (mid + 1) hi (Some mid)
        else search lo (mid - 1) best
    in
    match search 0 (n - 1) None with
    | None -> None
    | Some i ->
        let name, addr = arr.(i) in
        Some (name, pc - addr)

(* A symbolizer may resolve to a symbol with an empty name (stripped or
   anonymous table entries); labels must never silently vanish, so fall
   back to the resolved base address in that case. *)
let sym_label symbolize pc =
  match symbolize pc with
  | Some (name, 0) when name <> "" -> name
  | Some (name, off) when name <> "" -> Printf.sprintf "%s+0x%x" name off
  | Some (_, off) when off <> 0 -> Printf.sprintf "0x%08x+0x%x" (pc - off) off
  | Some _ | None -> Printf.sprintf "0x%08x" pc

type fn_row = {
  f_name : string;
  f_blocks : int;
  f_instrs : int;
  f_cycles : int;
  f_share : float;
}

let functions ~symbolize t =
  let by_fn = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ b ->
      let name =
        match symbolize b.bl_pc with
        | Some (n, _) when n <> "" -> n
        | Some (_, off) -> Printf.sprintf "0x%08x" (b.bl_pc - off)
        | None -> Printf.sprintf "0x%08x" b.bl_pc
      in
      let blocks, instrs, cycles =
        Option.value (Hashtbl.find_opt by_fn name) ~default:(0, 0, 0)
      in
      Hashtbl.replace by_fn name
        (blocks + 1, instrs + b.bl_instrs, cycles + b.bl_cycles))
    t.tbl;
  let total = max 1 (total_cycles t) in
  Hashtbl.fold
    (fun name (blocks, instrs, cycles) acc ->
      { f_name = name; f_blocks = blocks; f_instrs = instrs;
        f_cycles = cycles;
        f_share = float_of_int cycles /. float_of_int total }
      :: acc)
    by_fn []
  |> List.sort (fun a b ->
         match compare b.f_cycles a.f_cycles with
         | 0 -> compare a.f_name b.f_name
         | c -> c)

let take n l = List.filteri (fun i _ -> i < n) l

let pp_report ?(top = 10) ?symbolize fmt t =
  let total = max 1 (total_cycles t) in
  let label pc =
    match symbolize with
    | Some s -> sym_label s pc
    | None -> Printf.sprintf "0x%08x" pc
  in
  Format.fprintf fmt "hot blocks (by cycles):@.";
  Format.fprintf fmt "  %-10s %-20s %10s %12s %12s %7s@." "pc" "symbol"
    "execs" "instrs" "cycles" "share";
  List.iter
    (fun b ->
      Format.fprintf fmt "  0x%08x %-20s %10d %12d %12d %6.1f%%@." b.bl_pc
        (label b.bl_pc) b.bl_execs b.bl_instrs b.bl_cycles
        (100.0 *. float_of_int b.bl_cycles /. float_of_int total))
    (take top (ranked t));
  match symbolize with
  | None -> ()
  | Some s ->
      Format.fprintf fmt "hot functions:@.";
      Format.fprintf fmt "  %-20s %8s %12s %12s %7s@." "symbol" "blocks"
        "instrs" "cycles" "share";
      List.iter
        (fun f ->
          Format.fprintf fmt "  %-20s %8d %12d %12d %6.1f%%@." f.f_name
            f.f_blocks f.f_instrs f.f_cycles (100.0 *. f.f_share))
        (take top (functions ~symbolize:s t))
