(** Hot-spot profiler aggregate: per-translation-block execution,
    retired-instruction, and cycle attribution.

    The machine feeds {!note} once per dispatched block with the
    instret/cycle deltas observed across the block's execution — exact
    on every engine because both the lowered and the generic path drain
    their batched counters at block exits.  The profiler itself is a
    plain hashtable and mutable fields: it belongs to exactly one
    machine, and a run without a profiler attached pays only one
    pointer test per block dispatch.

    Symbolization is a callback ([pc -> (symbol, offset) option]) so
    this library stays below the assembler/CFG layer; [Flows] builds it
    from the program's symbol table. *)

type block = {
  bl_pc : int;
  mutable bl_bytes : int;  (** bytes the block spans *)
  mutable bl_execs : int;  (** times dispatched *)
  mutable bl_instrs : int;  (** instructions retired inside it *)
  mutable bl_cycles : int;  (** cycles charged inside it *)
}

type t

val create : unit -> t

val note : t -> pc:int -> bytes:int -> instrs:int -> cycles:int -> unit
(** One block execution: [instrs]/[cycles] are the deltas across it. *)

val blocks : t -> block list
val total_execs : t -> int
val total_instrs : t -> int
val total_cycles : t -> int

val ranked : t -> block list
(** By cycles, descending (ties by pc, so the order is deterministic). *)

type symbolizer = int -> (string * int) option
(** [symbolize pc] = [Some (symbol, byte offset into it)]. *)

val symbolizer_of_symbols : (string * int) list -> symbolizer
(** Nearest-symbol-below-pc over a (name, address) table. *)

val sym_label : symbolizer -> int -> string
(** ["name"], ["name+0x1c"], or ["0x%08x"] when unknown.  A symbol that
    resolves with an empty name (stripped / anonymous entries) falls
    back to ["0x<base>+0x<off>"] instead of an empty label. *)

type fn_row = {
  f_name : string;
  f_blocks : int;
  f_instrs : int;
  f_cycles : int;
  f_share : float;  (** of total cycles *)
}

val functions : symbolize:symbolizer -> t -> fn_row list
(** Blocks aggregated by containing symbol, ranked by cycles. *)

val pp_report :
  ?top:int -> ?symbolize:symbolizer -> Format.formatter -> t -> unit
(** The ranked hot-block table (top [top], default 10) followed by the
    hot-function table when a symbolizer is given. *)
