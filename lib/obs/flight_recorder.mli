(** Flight recorder: a fixed-size ring of retired-instruction records.

    The last [capacity] architectural events of a run — retired
    instructions with their pc, opcode word, register writeback, and
    effective address / width / value for memory accesses, interleaved
    with trap, interrupt, device-event, and watchpoint markers.  The
    emulator feeds it from the dispatch loop behind the same
    one-pointer-test-when-unattached discipline as {!Profile}:
    recording only {e reads} architectural state, so an armed recorder
    never perturbs execution (state digests are identical armed vs.
    unarmed — enforced by differential tests).

    The module is ISA-agnostic: every field is a plain integer supplied
    by the caller (the machine encodes the opcode word, computes
    effective addresses, and numbers FPR destinations as [32 + f]).
    Ring slots are preallocated and mutated in place, so steady-state
    recording allocates nothing.

    Sequence numbers are monotonic over the whole recording, and
    {!mark} / {!rewind} make them snapshot/restore-aware: a campaign
    fork that restores a machine snapshot rewinds the recorder to the
    mark captured with it, so the sequence numbering of the resumed run
    continues the recording that led up to the snapshot instead of
    restarting or double-counting. *)

type kind =
  | Retire  (** an instruction retired *)
  | Trap  (** exception entered; [info] = mcause *)
  | Irq  (** interrupt taken; [info] = mcause (with the high bit) *)
  | Dev  (** device events fired at this boundary; [info] = IRQ mask *)
  | Watch  (** watchpoint hit; address fields describe the access *)

val kind_name : kind -> string

(** One ring slot.  Mutable and reused in place; {!records} returns
    copies.  Field conventions: [r_rd] is [-1] (none), [0..31] (GPR) or
    [32 + f] (FPR); [r_addr] is [-1] when the record has no memory
    access, otherwise the effective address with [r_width] bytes,
    [r_value] the datum (post-extension load value, or the stored
    bytes) and [r_store] its direction. *)
type record = {
  mutable r_seq : int;
  mutable r_kind : kind;
  mutable r_pc : int;
  mutable r_op : int;
      (** opcode word for [Retire]/[Watch]; the marker's [info]
          otherwise *)
  mutable r_rd : int;
  mutable r_rd_val : int;
  mutable r_addr : int;
  mutable r_width : int;
  mutable r_value : int;
  mutable r_store : bool;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] slots (default 256, clamped to at least 2),
    preallocated up front. *)

val capacity : t -> int

val seq : t -> int
(** Sequence number of the next record; equals the total number of
    records ever written (modulo {!rewind}). *)

val length : t -> int
(** Records currently retained (at most [capacity]). *)

val clear : t -> unit
(** Empties the ring and resets the sequence numbering to 0. *)

val retire :
  t ->
  pc:int -> op:int -> rd:int -> rd_val:int ->
  addr:int -> width:int -> value:int -> store:bool ->
  unit
(** Appends a [Retire] record.  Allocation-free. *)

val event : t -> kind -> pc:int -> info:int -> unit
(** Appends a marker record ([Trap] / [Irq] / [Dev]) with no register
    or memory fields. *)

val watch_hit :
  t -> pc:int -> op:int -> addr:int -> width:int -> value:int ->
  store:bool -> unit
(** Appends a [Watch] record describing the probed access. *)

(** {1 Snapshot / restore}

    A {!mark} captures the recorder's position; {!rewind} returns to
    it, discarding every record written after the mark.  Records from
    before the mark that the ring has since overwritten are gone — the
    rewound recording keeps the newest survivors — but the sequence
    numbering is restored exactly, so instruction indices stay
    comparable across campaign forks of the same machine. *)

type mark

val mark : t -> mark

val rewind : t -> mark -> unit
(** Only meaningful with a mark taken from the same recorder.

    A mark is cheap (two integers), never invalidated, and can be
    rewound to any number of times. *)

val records : t -> record list
(** Retained records, oldest first, as fresh copies (safe to hold
    across further recording). *)

val pp_record : Format.formatter -> record -> unit
(** One-line rendering: sequence number, kind, pc, and whichever of
    the writeback / memory fields are present.  The opcode word is
    printed raw — callers with a disassembler can render [r_op]
    themselves. *)
