type t = {
  mutex : Mutex.t;
  buf : Buffer.t;
  t0 : float;
  mutable count : int;
  mutable named : int list;  (* tids whose thread_name is already out *)
}

let create () =
  { mutex = Mutex.create (); buf = Buffer.create 4096;
    t0 = Unix.gettimeofday (); count = 0; named = [] }

let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json = function
  | [] -> "{}"
  | args ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
             args)
      ^ "}"

let emit t json =
  Mutex.lock t.mutex;
  if t.count > 0 then Buffer.add_string t.buf ",\n";
  Buffer.add_string t.buf json;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let us f = Printf.sprintf "%.1f" f

let complete t ?(args = []) ~name ~cat ~tid ~ts_us ~dur_us () =
  emit t
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\
        \"ts\":%s,\"dur\":%s,\"args\":%s}"
       (escape name) (escape cat) tid (us ts_us) (us (Float.max 0.0 dur_us))
       (args_json args))

let instant t ?(args = []) ~name ~cat ~tid () =
  emit t
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
        \"tid\":%d,\"ts\":%s,\"args\":%s}"
       (escape name) (escape cat) tid
       (us (now_us t))
       (args_json args))

let thread_name t ~tid name =
  let fresh =
    Mutex.lock t.mutex;
    let fresh = not (List.mem tid t.named) in
    if fresh then t.named <- tid :: t.named;
    Mutex.unlock t.mutex;
    fresh
  in
  if fresh then
    emit t
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
          \"args\":{\"name\":\"%s\"}}"
         tid (escape name))

let span t ?(args = []) ~name ~cat ?tid f =
  let tid =
    match tid with Some i -> i | None -> (Domain.self () :> int)
  in
  let ts = now_us t in
  Fun.protect
    ~finally:(fun () ->
      complete t ~args ~name ~cat ~tid ~ts_us:ts ~dur_us:(now_us t -. ts) ())
    f

let events t = t.count

let contents t =
  Mutex.lock t.mutex;
  let body = Buffer.contents t.buf in
  Mutex.unlock t.mutex;
  "[\n" ^ body ^ "\n]\n"

let write t path =
  let s = contents t in
  if path = "-" then print_string s
  else begin
    let oc = open_out path in
    output_string oc s;
    close_out oc
  end
