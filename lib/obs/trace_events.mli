(** Chrome [trace_event]-format sink (Perfetto / chrome://tracing).

    Events accumulate in a buffer and are written out as one JSON array
    — the subset of the trace-event spec the viewers need: complete
    spans (ph ["X"]), instants (ph ["i"]), and thread-name metadata
    (ph ["M"]).  Timestamps are microseconds since the sink was
    created; [tid] is the caller's choice — the campaign engine passes
    the OCaml domain id, so each worker domain renders as its own lane.

    All emission is mutex-serialized: domains may emit concurrently.
    Overhead is one buffer append per event, so events should mark
    chunk- or phase-sized work, not per-instruction work. *)

type t

val create : unit -> t

val now_us : t -> float
(** Microseconds since [create] — the sink's clock, for callers that
    time a region themselves and emit via {!complete}. *)

val thread_name : t -> tid:int -> string -> unit
(** Labels a lane; deduplicated, so callers may re-announce freely. *)

val complete :
  t ->
  ?args:(string * string) list ->
  name:string ->
  cat:string ->
  tid:int ->
  ts_us:float ->
  dur_us:float ->
  unit ->
  unit
(** A finished span: began at [ts_us] (on the sink's clock), lasted
    [dur_us]. *)

val instant :
  t -> ?args:(string * string) list -> name:string -> cat:string ->
  tid:int -> unit -> unit

val span :
  t -> ?args:(string * string) list -> name:string -> cat:string ->
  ?tid:int -> (unit -> 'a) -> 'a
(** [span t ~name ~cat f] times [f] and emits the complete event —
    also when [f] raises.  [tid] defaults to the calling domain's id. *)

val events : t -> int
(** Events emitted so far. *)

val contents : t -> string
(** The trace as a JSON array (loadable in Perfetto as-is). *)

val write : t -> string -> unit
(** [write t path] writes {!contents} to [path]; ["-"] is stdout. *)
