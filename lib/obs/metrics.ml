type value = Int of int | Float of float

type counter = { c_name : string; c_cell : int Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : int array;
  h_counts : int Atomic.t array;  (* length = bounds + 1 (overflow) *)
  h_sum : int Atomic.t;
}

type entry =
  | Counter of counter
  | Gauge of (unit -> value)
  | Histogram of histogram

type t = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let shape_error name =
  invalid_arg (Printf.sprintf "Metrics: %s already bound to another shape" name)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> c
      | Some _ -> shape_error name
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace t.tbl name (Counter c);
          c)

let incr c = ignore (Atomic.fetch_and_add c.c_cell 1)
let add c n = ignore (Atomic.fetch_and_add c.c_cell n)
let value c = Atomic.get c.c_cell

let gauge t name probe =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter _ | Histogram _) -> shape_error name
      | Some (Gauge _) | None -> Hashtbl.replace t.tbl name (Gauge probe))

let gauge_int t name f = gauge t name (fun () -> Int (f ()))
let gauge_float t name f = gauge t name (fun () -> Float (f ()))

let histogram t name ~bounds =
  let sorted = ref true in
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then sorted := false)
    bounds;
  if not !sorted then
    invalid_arg (Printf.sprintf "Metrics: %s: bounds must be ascending" name);
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) when h.h_bounds = bounds -> h
      | Some _ -> shape_error name
      | None ->
          let h =
            { h_name = name;
              h_bounds = Array.copy bounds;
              h_counts =
                Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0 }
          in
          Hashtbl.replace t.tbl name (Histogram h);
          h)

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.h_counts.(bucket 0) 1);
  ignore (Atomic.fetch_and_add h.h_sum v)

(* [VmHWM] (peak RSS, kB) from /proc/self/status; 0 where procfs is
   unavailable, so the gauge stays harmless off Linux. *)
let max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.sub line 6 (String.length line - 6) in
              let digits =
                String.to_seq rest
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with
              | Some kb -> kb
              | None -> 0
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let register_process_gauges t =
  let epoch = Unix.gettimeofday () in
  gauge_float t "process.uptime_s" (fun () -> Unix.gettimeofday () -. epoch);
  gauge_int t "process.gc_heap_words" (fun () ->
      (Gc.quick_stat ()).Gc.heap_words);
  gauge_float t "process.gc_major_words" (fun () ->
      (Gc.quick_stat ()).Gc.major_words);
  gauge_int t "process.gc_minor_collections" (fun () ->
      (Gc.quick_stat ()).Gc.minor_collections);
  gauge_int t "process.gc_major_collections" (fun () ->
      (Gc.quick_stat ()).Gc.major_collections);
  gauge_int t "process.max_rss_kb" max_rss_kb

let snapshot t =
  let entries =
    locked t (fun () -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl [])
  in
  let rows =
    List.concat_map
      (fun (name, e) ->
        match e with
        | Counter c -> [ (name, Int (value c)) ]
        | Gauge probe -> [ (name, probe ()) ]
        | Histogram h ->
            let buckets =
              Array.to_list
                (Array.mapi
                   (fun i cell ->
                     let label =
                       if i < Array.length h.h_bounds then
                         Printf.sprintf "%s.le_%d" name h.h_bounds.(i)
                       else name ^ ".le_inf"
                     in
                     (label, Int (Atomic.get cell)))
                   h.h_counts)
            in
            let count =
              Array.fold_left (fun a c -> a + Atomic.get c) 0 h.h_counts
            in
            buckets
            @ [ (name ^ ".count", Int count);
                (name ^ ".sum", Int (Atomic.get h.h_sum)) ])
      entries
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let string_of_value = function
  | Int v -> string_of_int v
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

(* Bumped whenever the export's shape changes (key naming, histogram
   expansion, value rendering), so downstream dashboards can detect a
   snapshot they were not written for. *)
let schema_version = 1

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  %S: %d" "s4e_metrics_schema" schema_version);
  List.iter
    (fun (name, v) ->
      Buffer.add_string b ",\n";
      Buffer.add_string b (Printf.sprintf "  %S: %s" name (string_of_value v)))
    (snapshot t);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json t path =
  let s = to_json t in
  if path = "-" then print_string s
  else begin
    let oc = open_out path in
    output_string oc s;
    close_out oc
  end
