(** The ecosystem's four analysis flows behind one API.

    Everything a downstream user needs for the common cases: run a
    program on the virtual prototype, measure suite coverage, run a
    fault campaign, and run the full QTA WCET flow (static analysis +
    annotated co-simulation + dynamic measurement). *)

type word = S4e_bits.Bits.word

(** {1 Plain execution} *)

type run_result = {
  rr_stop : S4e_cpu.Machine.stop_reason;
  rr_instret : int;
  rr_cycles : int;
  rr_uart : string;
  rr_dev : string option;
      (** device-plane summary line when the run was armed with
          [~device_traffic:true]; [None] otherwise *)
  rr_recorder : S4e_obs.Flight_recorder.t option;
      (** the flight recorder armed by [?record], holding the run's
          last records; [None] otherwise *)
}

val run :
  ?config:S4e_cpu.Machine.config -> ?mem_tlb:bool -> ?superblocks:bool ->
  ?harts:int -> ?hart_slice:int -> ?device_traffic:bool -> ?record:int ->
  ?fuel:int -> S4e_asm.Program.t -> run_result
(** Default fuel: 10 million instructions.  [mem_tlb], [superblocks],
    [harts], and [hart_slice] override the corresponding config knobs
    (see {!S4e_cpu.Machine.config}) without the caller having to build
    a config record.  [device_traffic] (default false) arms
    {!arm_device_rig} before running, and fills [rr_dev] with a
    deterministic device/digest summary afterwards.  [record] arms a
    {!S4e_obs.Flight_recorder} of that capacity (returned in
    [rr_recorder]) — recording never changes the run's outcome. *)

val arm_device_rig : ?seed:int -> S4e_cpu.Machine.t -> unit
(** Host-arms a deterministic device-plane exercise pattern on an
    already-loaded machine: 32 posted vnet rx buffers plus a 256-packet
    generator burst (rate 128, burst 4, 128-byte payloads), and 4
    delayed 1 KiB DMA descriptors copying the torture data window.
    The traffic then runs concurrently with guest execution, stressing
    DMA invalidation, MEIP sampling, and the event wheel, while staying
    digest-identical across engines. *)

(** {1 Coverage} *)

val coverage_of_suite :
  ?config:S4e_cpu.Machine.config ->
  ?fuel:int ->
  ?jobs:int ->
  (string * S4e_asm.Program.t) list ->
  S4e_coverage.Report.t
(** Runs every program of the suite on a fresh machine and combines the
    reports.  With [jobs > 1] the programs run on a
    {!S4e_par.Par_pool}; reports are still combined in suite order, so
    the result is independent of [jobs]. *)

val run_suite :
  ?config:S4e_cpu.Machine.config ->
  ?mem_tlb:bool ->
  ?superblocks:bool ->
  ?device_traffic:bool ->
  ?fuel:int ->
  ?jobs:int ->
  (string * S4e_asm.Program.t) list ->
  (string * run_result) list
(** [run] over a whole suite, optionally domain-parallel; results keep
    suite order.  [mem_tlb], [superblocks] and [device_traffic] as in
    {!run}. *)

(** {1 WCET (the QTA flow)} *)

type wcet_result = {
  wr_static : int;  (** static program WCET bound *)
  wr_path : int;  (** WCET of the executed path (co-simulation) *)
  wr_dynamic : int;  (** measured dynamic cycles *)
  wr_report : S4e_wcet.Analysis.report;
  wr_stop : S4e_cpu.Machine.stop_reason;
}

val wcet_flow :
  ?config:S4e_cpu.Machine.config ->
  ?model:S4e_cpu.Timing_model.t ->
  ?annotations:(string * int) list ->
  ?fuel:int ->
  S4e_asm.Program.t ->
  (wcet_result, S4e_wcet.Analysis.error) result
(** For every terminating run, [wr_dynamic <= wr_path <= wr_static].
    The machine's timing model is forced to [model] so the three
    numbers are comparable. *)

(** {1 Fault campaigns} *)

type hang_budget =
  | Hang_fuel  (** per-mutant budget = [ff_fuel] *)
  | Hang_auto
      (** 3x the golden run's instruction count, clamped to
          [\[10_000, ff_fuel\]] — a mutant that runs 3x longer than the
          healthy program is declared hung without burning the rest of
          [ff_fuel] *)
  | Hang_insns of int  (** explicit per-mutant budget *)

type fault_flow_config = {
  ff_seed : int;
  ff_mutants : int;
  ff_targets : S4e_fault.Campaign.target list;
  ff_kinds : S4e_fault.Campaign.kind_choice list;
  ff_fuel : int;  (** fuel for the golden run *)
  ff_hang_budget : hang_budget;
      (** per-mutant instruction budget — the hang-detection timeout.
          Mutants that exhaust it are classified [Hung], including a
          faulty run that would eventually terminate with more fuel;
          tightening the budget trades a sharper masked/crashed split
          on such slow mutants for not simulating every hung mutant to
          the full [ff_fuel].  [Hang_fuel] keeps the exhaustive
          behaviour. *)
  ff_blind : bool;  (** ablation: ignore coverage guidance *)
  ff_engine : S4e_fault.Campaign.engine;  (** execution strategy *)
}

val default_fault_config : fault_flow_config
(** seed 1, 100 mutants, GPR+code+data, both kinds, fuel 1M,
    [Hang_fuel], guided, {!S4e_fault.Campaign.default_engine}. *)

type fault_flow_result = {
  ff_summary : S4e_fault.Campaign.summary;
  ff_results : (S4e_fault.Fault.t * S4e_fault.Campaign.outcome) list;
      (** classified mutants only, in stable-index order: a cancelled
          run simply has fewer entries *)
  ff_indexed : (int * S4e_fault.Fault.t * S4e_fault.Campaign.outcome) list;
      (** the same results with their stable campaign indices — the
          input {!fault_triage} and {!S4e_fault.Campaign.triage}
          expect *)
  ff_golden : S4e_fault.Campaign.signature;
  ff_resumed : int;  (** mutants skipped because a resume journal
                         already classified them *)
  ff_complete : bool;
      (** every mutant in scope (the shard, or the whole list)
          classified — [false] after a cancellation *)
}

val fault_campaign :
  ?config:S4e_cpu.Machine.config ->
  ?jobs:int ->
  ?metrics:S4e_obs.Metrics.t ->
  ?trace:S4e_obs.Trace_events.t ->
  ?progress:bool ->
  ?journal:string ->
  ?resume:string ->
  ?shard:int * int ->
  ?on_journal_line:(string -> unit) ->
  ?cancelled:(unit -> bool) ->
  fault_flow_config ->
  S4e_asm.Program.t ->
  (fault_flow_result, string) result
(** {!fault_flow} plus crash tolerance:

    - [journal] records every classified mutant to a fresh JSONL
      journal ({!S4e_fault.Journal}) as the campaign runs.
    - [resume] reads a journal from an earlier (interrupted) run of the
      {e same} campaign — validated against the regenerated fault list,
      not trusted — skips everything it already classified, and appends
      the rest in place.  [ff_summary] afterwards is identical to an
      uninterrupted run's.  With both options and [journal <> resume],
      the known records are carried into the fresh [journal] file and
      only that file is written.
    - [shard (i, n)] restricts the run to
      {!S4e_fault.Campaign.shard}[ ~index:i ~count:n]; the journals of
      all [n] shards merge into the full campaign
      ([s4e merge-journals]).
    - [on_journal_line] streams the journal as it is produced: the
      header line once, then every {e freshly} classified mutant's
      record line (resumed records are not replayed — whoever supplied
      the resume journal has them).  Calls are serialized.  This is the
      fleet worker's feed: lines go to the orchestrator in batches
      while an on-disk [journal] (if any) is written as usual.
    - [cancelled] is polled between mutants; once true the campaign
      stops classifying, flushes the journal, and returns the partial
      (valid, resumable) result with [ff_complete = false].

    Errors are user errors (unreadable or mismatched journal, bad
    shard), never partial states: the journal on disk stays valid. *)

val fault_flow :
  ?config:S4e_cpu.Machine.config ->
  ?jobs:int ->
  ?metrics:S4e_obs.Metrics.t ->
  ?trace:S4e_obs.Trace_events.t ->
  ?progress:bool ->
  fault_flow_config ->
  S4e_asm.Program.t ->
  fault_flow_result
(** [jobs] overrides [cfg.ff_engine.eng_jobs]; outcomes are identical
    for every [jobs] value and unaffected by any telemetry option.
    [metrics]/[trace] are forwarded to {!S4e_fault.Campaign.run} (the
    flow adds [golden+coverage], [generate], and [campaign] spans
    around the campaign's own events).  [progress] (default off) prints
    a live [done/total  mutants/sec  eta] meter to stderr, updated at
    most four times a second. *)

val fault_triage :
  ?config:S4e_cpu.Machine.config ->
  ?sample:int ->
  ?tail:int ->
  fault_flow_config ->
  S4e_asm.Program.t ->
  fault_flow_result ->
  S4e_fault.Campaign.triage_record list
(** {!S4e_fault.Campaign.triage} over a flow result's divergent mutants
    ([ff_indexed]), re-using the campaign's own per-mutant hang budget
    as the lockstep fuel so Hung mutants are triaged over the instants
    the campaign actually simulated.  Pass the same [config] the
    campaign ran with. *)

(** {1 Hot-spot profiling} *)

type profile_result = {
  pf_stop : S4e_cpu.Machine.stop_reason;
  pf_machine : S4e_cpu.Machine.t;  (** for post-run inspection/disasm *)
  pf_profile : S4e_obs.Profile.t;
  pf_symbolize : S4e_obs.Profile.symbolizer;
      (** nearest-label-below-pc over the program's symbol table *)
}

val profile_flow :
  ?config:S4e_cpu.Machine.config ->
  ?fuel:int ->
  S4e_asm.Program.t ->
  profile_result
(** Runs the program with a {!S4e_obs.Profile} attached (the lowered
    fast path is preserved — profiling does not change execution) and
    returns the per-block attribution plus a symbolizer for reports. *)
