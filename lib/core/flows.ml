module Machine = S4e_cpu.Machine
module Program = S4e_asm.Program

type word = int

type run_result = {
  rr_stop : Machine.stop_reason;
  rr_instret : int;
  rr_cycles : int;
  rr_uart : string;
  rr_dev : string option;
  rr_recorder : S4e_obs.Flight_recorder.t option;
}

let default_fuel = 10_000_000

(* Device-plane exercise rig: a host-armed traffic pattern that runs
   CONCURRENTLY with whatever program is executing, so torture programs
   are stressed by DMA writes, vnet deliveries and MEIP assertions they
   never asked for.  Everything is deterministic (fixed seed/cadence,
   event-wheel ordering), so cross-engine digest comparisons stay
   exact.  The rig lives well above the torture data window. *)
let rig_base = S4e_soc.Memory_map.ram_base + 0x30_0000

let arm_device_rig ?(seed = 7) m =
  let bus = m.Machine.bus in
  let w32 = S4e_mem.Bus.write32 bus in
  let desc = S4e_soc.Dma.desc_size in
  (* rx ring: 32 descriptors, one 256-byte buffer each *)
  let rx_ring = rig_base and rx_bufs = rig_base + 0x1000 in
  for i = 0 to 31 do
    w32 (rx_ring + (i * desc)) (rx_bufs + (i * 256));
    w32 (rx_ring + (i * desc) + 8) 256;
    w32 (rx_ring + (i * desc) + 12) 0
  done;
  let vnet = S4e_soc.Memory_map.vnet_base in
  w32 (vnet + 0x00) 1 (* CTRL: enable *);
  w32 (vnet + 0x0C) rx_ring;
  w32 (vnet + 0x10) 32;
  w32 (vnet + 0x14) 32 (* all 32 buffers posted *);
  w32 (vnet + 0x2C) seed;
  w32 (vnet + 0x30) 128 (* rate *);
  w32 (vnet + 0x34) 4 (* burst *);
  w32 (vnet + 0x38) 128 (* payload length *);
  w32 (vnet + 0x3C) 256 (* arm: 256 packets *);
  (* DMA: 4 descriptors copying the torture data window into the rig
     area, spread out by DELAY so copies land mid-run and snapshot
     moving state — a cross-engine timing probe. *)
  let dma_ring = rig_base + 0x4000 and dma_dst = rig_base + 0x5000 in
  let data = S4e_soc.Memory_map.ram_base + 0x20000 in
  for i = 0 to 3 do
    w32 (dma_ring + (i * desc)) data;
    w32 (dma_ring + (i * desc) + 4) (dma_dst + (i * 0x400));
    w32 (dma_ring + (i * desc) + 8) 1024;
    w32 (dma_ring + (i * desc) + 12) 0
  done;
  let dma = S4e_soc.Memory_map.dma_base in
  w32 (dma + 0x00) dma_ring;
  w32 (dma + 0x04) 4;
  w32 (dma + 0x1C) 100 (* DELAY: spread completions across the run *);
  w32 (dma + 0x08) 4 (* doorbell *)

let device_summary m =
  let vn = S4e_soc.Vnet.stats m.Machine.vnet in
  let dm = S4e_soc.Dma.stats m.Machine.dma in
  let ws = S4e_soc.Event_wheel.stats m.Machine.wheel in
  Printf.sprintf "vnet rx=%d drop=%d dma=%dB wheel=%d digest=%s"
    vn.S4e_soc.Vnet.vn_rx_delivered vn.S4e_soc.Vnet.vn_rx_dropped
    dm.S4e_soc.Dma.dma_bytes ws.S4e_soc.Event_wheel.ws_fired
    (String.sub (Digest.to_hex (Machine.state_digest m)) 0 12)

(* [?mem_tlb] / [?superblocks] / [?harts] override single config knobs
   without the caller having to spell out a whole config record (the
   CLI's --no-mem-tlb / --no-superblocks / --harts flags). *)
let apply_knob knob set config =
  match knob with
  | None -> config
  | Some v ->
      let base = Option.value config ~default:Machine.default_config in
      Some (set base v)

let apply_knobs ?harts ?hart_slice mem_tlb superblocks config =
  apply_knob mem_tlb (fun c on -> { c with Machine.mem_tlb = on }) config
  |> apply_knob superblocks (fun c on -> { c with Machine.superblocks = on })
  |> apply_knob harts (fun c n -> { c with Machine.harts = n })
  |> apply_knob hart_slice (fun c n -> { c with Machine.hart_slice = n })

let run ?config ?mem_tlb ?superblocks ?harts ?hart_slice
    ?(device_traffic = false) ?record ?(fuel = default_fuel) p =
  let config = apply_knobs ?harts ?hart_slice mem_tlb superblocks config in
  let m = Machine.create ?config () in
  Program.load_machine p m;
  if device_traffic then arm_device_rig m;
  let recorder =
    match record with
    | None -> None
    | Some capacity ->
        let r = S4e_obs.Flight_recorder.create ~capacity () in
        Machine.set_recorder m (Some r);
        Some r
  in
  let stop = Machine.run m ~fuel in
  { rr_stop = stop;
    rr_instret = Machine.instret m;
    rr_cycles = Machine.cycles m;
    rr_uart = Machine.uart_output m;
    rr_dev = (if device_traffic then Some (device_summary m) else None);
    rr_recorder = recorder }

let coverage_of_program ?config ~fuel p =
  let m = Machine.create ?config () in
  let collector = S4e_coverage.Collector.attach m () in
  Program.load_machine p m;
  let (_ : Machine.stop_reason) = Machine.run m ~fuel in
  let rep = S4e_coverage.Collector.report collector in
  S4e_coverage.Collector.detach m collector;
  rep

let coverage_of_suite ?config ?(fuel = default_fuel) ?(jobs = 1) suite =
  let isa =
    match config with
    | Some c -> c.Machine.isa
    | None -> Machine.default_config.Machine.isa
  in
  let reports =
    if jobs <= 1 || List.length suite <= 1 then
      List.map (fun (_, p) -> coverage_of_program ?config ~fuel p) suite
    else begin
      (* force the shared decoder tables before domains race on them *)
      ignore (Machine.create ?config () : Machine.t);
      S4e_par.Par_pool.with_pool ~jobs (fun pool ->
          S4e_par.Par_pool.map_chunked ~chunk:1 pool
            (fun (_, p) -> coverage_of_program ?config ~fuel p)
            suite)
    end
  in
  (* [map_chunked] preserves input order, so the combine below folds the
     suite in the same order regardless of [jobs] *)
  List.fold_left S4e_coverage.Report.combine
    (S4e_coverage.Report.create ~isa)
    reports

let run_suite ?config ?mem_tlb ?superblocks ?device_traffic ?fuel
    ?(jobs = 1) suite =
  let config = apply_knobs mem_tlb superblocks config in
  if jobs <= 1 || List.length suite <= 1 then
    List.map (fun (name, p) -> (name, run ?config ?device_traffic ?fuel p))
      suite
  else begin
    ignore (Machine.create ?config () : Machine.t);
    S4e_par.Par_pool.with_pool ~jobs (fun pool ->
        S4e_par.Par_pool.map_chunked ~chunk:1 pool
          (fun (name, p) -> (name, run ?config ?device_traffic ?fuel p))
          suite)
  end

type wcet_result = {
  wr_static : int;
  wr_path : int;
  wr_dynamic : int;
  wr_report : S4e_wcet.Analysis.report;
  wr_stop : Machine.stop_reason;
}

let wcet_flow ?config ?(model = S4e_cpu.Timing_model.default)
    ?(annotations = []) ?(fuel = default_fuel) p =
  match S4e_wcet.Analysis.analyze ~model ~annotations p with
  | Error e -> Error e
  | Ok report -> (
      match S4e_wcet.Annotated_cfg.of_program ~model ~annotations p with
      | Error e -> Error e
      | Ok acfg ->
          let config =
            match config with
            | Some c -> { c with Machine.timing = model }
            | None -> { Machine.default_config with Machine.timing = model }
          in
          let m = Machine.create ~config () in
          let qta = S4e_wcet.Qta.attach m acfg in
          Program.load_machine p m;
          let stop = Machine.run m ~fuel in
          let qr = S4e_wcet.Qta.report qta in
          Ok
            { wr_static = report.S4e_wcet.Analysis.program_wcet;
              wr_path = qr.S4e_wcet.Qta.path_wcet;
              wr_dynamic = Machine.cycles m;
              wr_report = report;
              wr_stop = stop })

type hang_budget = Hang_fuel | Hang_auto | Hang_insns of int

type fault_flow_config = {
  ff_seed : int;
  ff_mutants : int;
  ff_targets : S4e_fault.Campaign.target list;
  ff_kinds : S4e_fault.Campaign.kind_choice list;
  ff_fuel : int;
  ff_hang_budget : hang_budget;
  ff_blind : bool;
  ff_engine : S4e_fault.Campaign.engine;
}

let default_fault_config =
  { ff_seed = 1; ff_mutants = 100; ff_targets = [ `Gpr; `Code; `Data ];
    ff_kinds = [ `Permanent; `Transient ]; ff_fuel = 1_000_000;
    ff_hang_budget = Hang_fuel; ff_blind = false;
    ff_engine = S4e_fault.Campaign.default_engine }

type fault_flow_result = {
  ff_summary : S4e_fault.Campaign.summary;
  ff_results : (S4e_fault.Fault.t * S4e_fault.Campaign.outcome) list;
  ff_indexed : (int * S4e_fault.Fault.t * S4e_fault.Campaign.outcome) list;
  ff_golden : S4e_fault.Campaign.signature;
  ff_resumed : int;
  ff_complete : bool;
}

(* A mutants/sec + ETA meter on stderr, rate-limited so per-mutant
   callbacks from fast campaigns don't turn into terminal spam.  The
   callback arrives from whichever domain classified the mutant, hence
   the mutex. *)
let progress_meter () =
  let mu = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let last = ref 0.0 in
  fun done_ total ->
    Mutex.lock mu;
    let now = Unix.gettimeofday () in
    if done_ = total || now -. !last >= 0.25 then begin
      last := now;
      let dt = now -. t0 in
      let rate = if dt > 0.0 then float_of_int done_ /. dt else 0.0 in
      let eta =
        if rate > 0.0 then float_of_int (total - done_) /. rate else 0.0
      in
      Printf.eprintf "\r%d/%d mutants  %.0f/s  eta %.1fs " done_ total rate
        eta;
      if done_ = total then prerr_newline ();
      flush stderr
    end;
    Mutex.unlock mu

let ( let* ) = Result.bind

module Campaign = S4e_fault.Campaign
module Journal = S4e_fault.Journal

let hang_budget_insns hb ~fuel ~golden_instret =
  match hb with
  | Hang_fuel -> fuel
  | Hang_insns b -> b
  | Hang_auto -> min fuel (max 10_000 (3 * golden_instret))

let fault_campaign ?config ?jobs ?metrics ?trace ?(progress = false) ?journal
    ?resume ?shard:shard_spec ?on_journal_line ?cancelled cfg p =
  Option.iter S4e_obs.Metrics.register_process_gauges metrics;
  let span name f =
    match trace with
    | Some s -> S4e_obs.Trace_events.span s ~name ~cat:"flow" f
    | None -> f ()
  in
  let golden, coverage =
    span "golden+coverage" (fun () -> Campaign.golden ?config ~fuel:cfg.ff_fuel p)
  in
  let golden_instret = golden.Campaign.sig_instret in
  let faults =
    span "generate" (fun () ->
        if cfg.ff_blind then
          Campaign.generate_blind ~seed:cfg.ff_seed ~n:cfg.ff_mutants
            ~targets:cfg.ff_targets ~kinds:cfg.ff_kinds ~program:p
            ~golden_instret
        else
          Campaign.generate ~seed:cfg.ff_seed ~n:cfg.ff_mutants
            ~targets:cfg.ff_targets ~kinds:cfg.ff_kinds ~coverage
            ~golden_instret)
  in
  let total = List.length faults in
  let by_index = Array.of_list faults in
  let ifaults = List.mapi (fun i f -> (i, f)) faults in
  let scoped =
    match shard_spec with
    | None -> ifaults
    | Some (index, count) -> Campaign.shard ~index ~count ifaults
  in
  let header =
    Journal.header_of
      ?shard:shard_spec
      ~seed:cfg.ff_seed ~total p
  in
  Option.iter (fun f -> f (Journal.header_line header)) on_journal_line;
  (* Records that survive in the resume journal must describe this
     exact campaign: same header, and every recorded fault must equal
     the regenerated fault at its index — anything else means the
     journal belongs to a different run and resuming would fabricate
     results. *)
  let* resumed_from =
    match resume with
    | None -> Ok None
    | Some path ->
        let* w, records = Journal.append_to ?sink:trace ~path header in
        let in_scope i =
          match shard_spec with
          | None -> true
          | Some (index, count) -> i mod count = index
        in
        let check =
          List.fold_left
            (fun acc r ->
              let* () = acc in
              let i = r.Journal.r_index in
              if i < 0 || i >= total || not (in_scope i) then
                Error
                  (Printf.sprintf "journal: record index %d out of scope" i)
              else if S4e_fault.Fault.compare r.Journal.r_fault by_index.(i) <> 0
              then
                Error
                  (Printf.sprintf
                     "journal: record %d does not match the regenerated fault \
                      list (journal for a different campaign?)"
                     i)
              else Ok ())
            (Ok ()) records
        in
        (match check with
        | Error e -> Journal.close w; Error e
        | Ok () -> Ok (Some (w, records)))
  in
  let prior = match resumed_from with None -> [] | Some (_, r) -> r in
  let classified = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace classified r.Journal.r_index ()) prior;
  let remaining =
    List.filter (fun (i, _) -> not (Hashtbl.mem classified i)) scoped
  in
  let resumed = List.length scoped - List.length remaining in
  if resumed > 0 then
    Option.iter
      (fun m ->
        S4e_obs.Metrics.add
          (S4e_obs.Metrics.counter m "campaign.resumed_skips")
          resumed)
      metrics;
  (* The journal being written: [--resume f] appends to [f] in place;
     an explicit [--journal g] with [g <> f] starts [g] fresh and
     carries the already-known records over, so [g] alone is enough for
     the next resume. *)
  let* writer =
    match (journal, resumed_from) with
    | None, None -> Ok None
    | Some j, Some (w, _) when Some j <> resume -> (
        Journal.close w;
        match Journal.create ?sink:trace ~path:j header with
        | Error e -> Error e
        | Ok w ->
            List.iter (Journal.write w) prior;
            Journal.flush w;
            Ok (Some w))
    | _, Some (w, _) -> Ok (Some w)
    | Some j, None ->
        let* w = Journal.create ?sink:trace ~path:j header in
        Ok (Some w)
  in
  let on_result =
    match (writer, on_journal_line) with
    | None, None -> None
    | _ ->
        (* Campaign.run_indexed serializes on_result, so the stream is
           ordered even with a parallel engine. *)
        Some
          (fun i fault outcome ->
            let r =
              { Journal.r_index = i; r_fault = fault; r_outcome = outcome }
            in
            Option.iter (fun w -> Journal.write w r) writer;
            Option.iter (fun f -> f (Journal.record_line r)) on_journal_line)
  in
  let budget =
    hang_budget_insns cfg.ff_hang_budget ~fuel:cfg.ff_fuel ~golden_instret
  in
  let on_progress = if progress then Some (progress_meter ()) else None in
  let fresh =
    span "campaign" (fun () ->
        Campaign.run_indexed ?config ~engine:cfg.ff_engine ?jobs ?metrics
          ?trace ?on_progress ?on_result ?cancelled ~fuel:budget p ~golden
          remaining)
  in
  Option.iter Journal.close writer;
  let all =
    List.map
      (fun r -> (r.Journal.r_index, r.Journal.r_fault, r.Journal.r_outcome))
      prior
    @ fresh
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let results = List.map (fun (_, f, o) -> (f, o)) all in
  Ok
    { ff_summary = Campaign.summarize results;
      ff_results = results;
      ff_indexed = all;
      ff_golden = golden;
      ff_resumed = resumed;
      ff_complete = List.length all = List.length scoped }

let fault_flow ?config ?jobs ?metrics ?trace ?progress cfg p =
  (* without journal/resume/shard options the campaign cannot fail *)
  match fault_campaign ?config ?jobs ?metrics ?trace ?progress cfg p with
  | Ok r -> r
  | Error e -> failwith e

let fault_triage ?config ?sample ?tail cfg p (r : fault_flow_result) =
  (* triage mutants with the same per-mutant budget the campaign used,
     so a Hung mutant's lockstep run covers the instants the campaign
     actually simulated *)
  let budget =
    hang_budget_insns cfg.ff_hang_budget ~fuel:cfg.ff_fuel
      ~golden_instret:r.ff_golden.Campaign.sig_instret
  in
  Campaign.triage ?config ?sample ?tail ~fuel:budget p r.ff_indexed

(* ---------------- profiling ---------------- *)

type profile_result = {
  pf_stop : Machine.stop_reason;
  pf_machine : Machine.t;
  pf_profile : S4e_obs.Profile.t;
  pf_symbolize : S4e_obs.Profile.symbolizer;
}

let profile_flow ?config ?(fuel = default_fuel) p =
  let m = Machine.create ?config () in
  let prof = S4e_obs.Profile.create () in
  Machine.set_profiler m (Some prof);
  Program.load_machine p m;
  let stop = Machine.run m ~fuel in
  { pf_stop = stop; pf_machine = m; pf_profile = prof;
    pf_symbolize = S4e_obs.Profile.symbolizer_of_symbols p.Program.symbols }
