(** Non-invasive IO access monitoring (MBMV 2019 security analysis).

    A policy whitelists, per device, the code regions allowed to touch
    it.  The guard watches the bus: any device access whose program
    counter falls outside the device's allowed regions is recorded as a
    violation — without instrumenting the target software.  The lock-
    system example uses this to catch an exploit path writing to the
    UART directly. *)

type word = S4e_bits.Bits.word

type restriction =
  | Restrict_all  (** reads and writes both need authorization *)
  | Restrict_writes  (** reads are free; writes need authorization *)

type policy = {
  p_device : string;  (** bus device name, e.g. ["uart"] *)
  p_allowed : (word * word) list;
      (** pc ranges [\[lo, hi)] permitted to access the device; an empty
          list forbids all restricted access *)
  p_restrict : restriction;
}

type violation = {
  v_pc : word;  (** pc of the offending instruction *)
  v_device : string;
  v_addr : word;
  v_is_write : bool;
  v_instret : int;  (** retired-instruction timestamp of the access *)
}

type t

val attach : S4e_cpu.Machine.t -> policy list -> t
(** Installs the bus watcher.  Devices without a policy are
    unrestricted.  Any previously installed IO watcher is saved and
    chained to (it keeps observing every access), so guards stack. *)

val detach : S4e_cpu.Machine.t -> t -> unit
(** Restores the watcher that was installed before {!attach}.  A no-op
    when the currently installed watcher isn't this guard's (i.e.
    something else was attached on top and is still live). *)

val violations : t -> violation list
(** In occurrence order. *)

val accesses : t -> int
(** Total device accesses observed. *)

val pp_violation : Format.formatter -> violation -> unit
