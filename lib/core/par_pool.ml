(* A small domain-backed worker pool (stdlib Domain + Mutex/Condition,
   no dependencies).

   The pool keeps [jobs - 1] worker domains parked on a condition
   variable; the submitting domain always participates in its own
   [map_chunked], so [jobs = 1] degenerates to a plain [List.map] with
   zero synchronization.  Work distribution is dynamic (an atomic
   chunk cursor), result placement is by index, so output order always
   equals input order regardless of scheduling.

   Telemetry: each worker slot (0 = the submitting domain, 1.. = the
   spawned domains) owns a private stats record — chunks executed,
   seconds spent parked on the condition variable.  Slots are written
   only by their owning domain; reads from another domain are
   monitoring-grade (unsynchronized but each field is a single word). *)

type job = int -> unit
(* a queued job receives the executing worker's slot index *)

type wstat = { mutable chunks : int; mutable idle_s : float }

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  wstats : wstat array;  (* length [jobs]; slot 0 = submitter *)
}

type worker_stats = { ws_chunks : int; ws_idle_s : float }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let rec worker_loop t slot =
  Mutex.lock t.mutex;
  (* The idle clock brackets every [Condition.wait] individually: a
     worker that parks again after a spurious wakeup (or after losing
     the race for the queued job) keeps accumulating idle time, where
     timing only the first park would under-report [pool.w*.idle_s]. *)
  let w = t.wstats.(slot) in
  while Queue.is_empty t.queue && t.live do
    let t0 = Unix.gettimeofday () in
    Condition.wait t.work t.mutex;
    w.idle_s <- w.idle_s +. (Unix.gettimeofday () -. t0)
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* queue empty and the pool is shutting down *)
      Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job slot;
      worker_loop t slot

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    { jobs; mutex = Mutex.create (); work = Condition.create ();
      queue = Queue.create (); live = true; workers = [||];
      wstats = Array.init jobs (fun _ -> { chunks = 0; idle_s = 0.0 }) }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1)
        (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let stats t =
  Array.map
    (fun w -> { ws_chunks = w.chunks; ws_idle_s = w.idle_s })
    t.wstats

let register_metrics ?(prefix = "pool.") t reg =
  let module M = S4e_obs.Metrics in
  M.gauge_int reg (prefix ^ "workers") (fun () -> t.jobs);
  M.gauge_int reg (prefix ^ "chunks") (fun () ->
      Array.fold_left (fun a w -> a + w.chunks) 0 t.wstats);
  M.gauge_float reg (prefix ^ "idle_s") (fun () ->
      Array.fold_left (fun a w -> a +. w.idle_s) 0.0 t.wstats);
  Array.iteri
    (fun i w ->
      M.gauge_int reg (Printf.sprintf "%sw%d.chunks" prefix i) (fun () ->
          w.chunks);
      M.gauge_float reg (Printf.sprintf "%sw%d.idle_s" prefix i) (fun () ->
          w.idle_s))
    t.wstats

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The shared chunked scheduler behind both map modes.  [apply i]
   processes element [i] entirely, including storing its result.  An
   exception escaping [apply] poisons the run: the first one is saved
   and the scheduler fails fast — in-flight chunks stop at their next
   element boundary, and chunks not yet started are skipped instead of
   executed.  Returns the poisoning exception, if any, once every chunk
   has been executed or skipped. *)
let run_chunked ?chunk t ~apply n =
  let chunk =
    max 1
      (match chunk with
      | Some c -> c
      | None -> (n + (4 * t.jobs) - 1) / (4 * t.jobs))
  in
  let n_chunks = (n + chunk - 1) / chunk in
  let next = Atomic.make 0 in
  let done_m = Mutex.create () in
  let done_c = Condition.create () in
  let finished = ref 0 in
  let failed = Atomic.make None in
  let finish_chunk () =
    Mutex.lock done_m;
    incr finished;
    if !finished = n_chunks then Condition.signal done_c;
    Mutex.unlock done_m
  in
  let run_chunk slot ci =
    t.wstats.(slot).chunks <- t.wstats.(slot).chunks + 1;
    (try
       let lo = ci * chunk in
       let hi = min n (lo + chunk) in
       let i = ref lo in
       while !i < hi && Atomic.get failed = None do
         apply !i;
         incr i
       done
     with e -> ignore (Atomic.compare_and_set failed None (Some e)));
    finish_chunk ()
  in
  (* Each puller drains the shared chunk cursor until exhausted; a
     puller queued behind a long-running job from an earlier call
     simply finds the cursor spent and returns.  Once a chunk has
     failed, the cursor is still drained (the completion count must
     reach [n_chunks]) but the remaining chunks are skipped, so a
     poisoned map stops early instead of burning through the rest of
     the input. *)
  let rec puller slot =
    let ci = Atomic.fetch_and_add next 1 in
    if ci < n_chunks then begin
      if Atomic.get failed = None then run_chunk slot ci
      else finish_chunk ();
      puller slot
    end
  in
  Mutex.lock t.mutex;
  for _ = 1 to min (t.jobs - 1) n_chunks do
    Queue.push puller t.queue
  done;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  puller 0;
  Mutex.lock done_m;
  while !finished < n_chunks do
    Condition.wait done_c done_m
  done;
  Mutex.unlock done_m;
  Atomic.get failed

let map_chunked ?chunk t f xs =
  match xs with
  | [] -> []
  | xs when t.jobs = 1 || t.workers = [||] ->
      t.wstats.(0).chunks <- t.wstats.(0).chunks + 1;
      List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let out = Array.make n None in
      (match
         run_chunked ?chunk t n ~apply:(fun i -> out.(i) <- Some (f arr.(i)))
       with
      | Some e -> raise e
      | None -> ());
      Array.to_list (Array.map Option.get out)

let map_chunked_result ?chunk t f xs =
  let guard x = match f x with v -> Ok v | exception e -> Error e in
  match xs with
  | [] -> []
  | xs when t.jobs = 1 || t.workers = [||] ->
      t.wstats.(0).chunks <- t.wstats.(0).chunks + 1;
      List.map guard xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let out = Array.make n None in
      (* [apply] never raises — every per-element exception is captured
         in its slot — so the scheduler's fail-fast path stays inert and
         all elements are attempted. *)
      (match
         run_chunked ?chunk t n ~apply:(fun i -> out.(i) <- Some (guard arr.(i)))
       with
      | Some e -> raise e
      | None -> ());
      Array.to_list (Array.map Option.get out)
