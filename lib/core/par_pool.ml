(* A small domain-backed worker pool (stdlib Domain + Mutex/Condition,
   no dependencies).

   The pool keeps [jobs - 1] worker domains parked on a condition
   variable; the submitting domain always participates in its own
   [map_chunked], so [jobs = 1] degenerates to a plain [List.map] with
   zero synchronization.  Work distribution is dynamic (an atomic
   chunk cursor), result placement is by index, so output order always
   equals input order regardless of scheduling. *)

type job = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.work t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* queue empty and the pool is shutting down *)
      Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job ();
      worker_loop t

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    { jobs; mutex = Mutex.create (); work = Condition.create ();
      queue = Queue.create (); live = true; workers = [||] }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_chunked ?chunk t f xs =
  match xs with
  | [] -> []
  | xs when t.jobs = 1 || t.workers = [||] -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let chunk =
        max 1
          (match chunk with
          | Some c -> c
          | None -> (n + (4 * t.jobs) - 1) / (4 * t.jobs))
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let out = Array.make n None in
      let next = Atomic.make 0 in
      let done_m = Mutex.create () in
      let done_c = Condition.create () in
      let finished = ref 0 in
      let failed = ref None in
      let run_chunk ci =
        (try
           let lo = ci * chunk in
           let hi = min n (lo + chunk) in
           for i = lo to hi - 1 do
             out.(i) <- Some (f arr.(i))
           done
         with e ->
           Mutex.lock done_m;
           if !failed = None then failed := Some e;
           Mutex.unlock done_m);
        Mutex.lock done_m;
        incr finished;
        if !finished = n_chunks then Condition.signal done_c;
        Mutex.unlock done_m
      in
      (* Each puller drains the shared chunk cursor until exhausted; a
         puller queued behind a long-running job from an earlier call
         simply finds the cursor spent and returns. *)
      let rec puller () =
        let ci = Atomic.fetch_and_add next 1 in
        if ci < n_chunks then begin
          run_chunk ci;
          puller ()
        end
      in
      Mutex.lock t.mutex;
      for _ = 1 to min (t.jobs - 1) n_chunks do
        Queue.push puller t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      puller ();
      Mutex.lock done_m;
      while !finished < n_chunks do
        Condition.wait done_c done_m
      done;
      Mutex.unlock done_m;
      (match !failed with Some e -> raise e | None -> ());
      Array.to_list (Array.map Option.get out)
