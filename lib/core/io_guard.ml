type word = int

type restriction = Restrict_all | Restrict_writes

type policy = {
  p_device : string;
  p_allowed : (word * word) list;
  p_restrict : restriction;
}

type violation = {
  v_pc : word;
  v_device : string;
  v_addr : word;
  v_is_write : bool;
  v_instret : int;
}

type t = {
  policies : (string * ((word * word) list * restriction)) list;
  mutable violation_list : violation list;  (* reverse order *)
  mutable access_count : int;
  (* the watcher this guard installed (for identity on detach) and the
     one it displaced (restored on detach, forwarded to while attached
     so stacked guards all keep observing) *)
  mutable self_watcher : (S4e_mem.Bus.io_access -> unit) option;
  mutable prev_watcher : (S4e_mem.Bus.io_access -> unit) option;
}

let attach (m : S4e_cpu.Machine.t) policies =
  let t =
    { policies =
        List.map (fun p -> (p.p_device, (p.p_allowed, p.p_restrict))) policies;
      violation_list = [];
      access_count = 0;
      self_watcher = None;
      prev_watcher = S4e_mem.Bus.io_watcher m.S4e_cpu.Machine.bus }
  in
  let watcher (a : S4e_mem.Bus.io_access) =
    t.access_count <- t.access_count + 1;
    match List.assoc_opt a.S4e_mem.Bus.io_device t.policies with
    | None -> ()
    | Some (allowed, restriction) ->
        let restricted =
          match restriction with
          | Restrict_all -> true
          | Restrict_writes -> a.S4e_mem.Bus.io_is_write
        in
        let pc = m.S4e_cpu.Machine.state.S4e_cpu.Arch_state.pc in
        let ok =
          (not restricted)
          || List.exists (fun (lo, hi) -> pc >= lo && pc < hi) allowed
        in
        if not ok then
          t.violation_list <-
            { v_pc = pc;
              v_device = a.S4e_mem.Bus.io_device;
              v_addr = a.S4e_mem.Bus.io_addr;
              v_is_write = a.S4e_mem.Bus.io_is_write;
              v_instret = S4e_cpu.Machine.instret m }
            :: t.violation_list
  in
  (* chain to the displaced watcher so a guard stacked on top of
     another (or on any foreign observer) doesn't silence it *)
  let watcher a =
    watcher a;
    match t.prev_watcher with Some f -> f a | None -> ()
  in
  t.self_watcher <- Some watcher;
  S4e_mem.Bus.set_io_watcher m.S4e_cpu.Machine.bus (Some watcher);
  t

let detach (m : S4e_cpu.Machine.t) t =
  (* Only unhook if our watcher is still the installed one: blindly
     clearing would destroy a watcher installed after this guard.  A
     guard that is no longer on top stays chained until the watcher
     above it is detached. *)
  match (S4e_mem.Bus.io_watcher m.S4e_cpu.Machine.bus, t.self_watcher) with
  | Some cur, Some self when cur == self ->
      S4e_mem.Bus.set_io_watcher m.S4e_cpu.Machine.bus t.prev_watcher
  | _ -> ()

let violations t = List.rev t.violation_list
let accesses t = t.access_count

let pp_violation fmt v =
  Format.fprintf fmt "unauthorized %s of %s at 0x%08x from pc 0x%08x (instr %d)"
    (if v.v_is_write then "write" else "read")
    v.v_device v.v_addr v.v_pc v.v_instret
