(** Domain-parallel worker pool for embarrassingly parallel workloads
    (fault campaigns, coverage suites, torture sweeps).

    Built on stdlib [Domain] + [Mutex]/[Condition] only.  A pool with
    [jobs = n] owns [n - 1] parked worker domains; the caller's domain
    is the n-th worker during {!map_chunked}.  Results are placed by
    index, so every map preserves input order and is deterministic
    whenever [f] is — parallelism never reorders or changes results.

    Tasks must not share mutable state: each machine/simulation must be
    confined to the task that created it. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?jobs:int -> unit -> t
(** Spawns the worker domains.  [jobs] defaults to {!default_jobs};
    values [<= 1] yield a pool that runs everything on the caller. *)

val jobs : t -> int

val map_chunked : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunked pool f xs] is [List.map f xs] computed by all workers.
    Elements are handed out in contiguous chunks of [chunk] (default:
    [length / (4 * jobs)], at least 1) through a dynamic cursor, so
    irregular per-element cost still balances.  The first exception
    raised by [f] is re-raised in the caller after all workers drain;
    the map fails fast — once any element has raised, in-flight chunks
    stop at their next element boundary and unstarted chunks are
    skipped rather than executed. *)

val map_chunked_result :
  ?chunk:int -> t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Error-isolating variant of {!map_chunked}: every element is
    attempted, and an element whose [f] raises yields [Error exn] in
    its slot instead of poisoning the whole map.  Order, chunking, and
    determinism match {!map_chunked}; the call itself never raises on
    account of [f]. *)

type worker_stats = {
  ws_chunks : int;  (** chunks this slot executed *)
  ws_idle_s : float;  (** seconds parked waiting for work *)
}

val stats : t -> worker_stats array
(** One entry per worker slot; slot 0 is the submitting domain (which
    never parks, so its idle time is 0).  Reading while a map is in
    flight yields monitoring-grade (possibly slightly stale) values. *)

val register_metrics : ?prefix:string -> t -> S4e_obs.Metrics.t -> unit
(** Gauges [<prefix>workers], [chunks], [idle_s], and per-slot
    [w<i>.chunks] / [w<i>.idle_s] (prefix default ["pool."]). *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val with_pool : ?jobs:int -> (t -> 'b) -> 'b
(** [with_pool f] creates a pool, runs [f], and always shuts down. *)
