(** Deterministic multi-hart torture workloads.

    Both programs finish with an architectural state that is a pure
    function of [(harts, rounds)]:

    - {!spinlock}: every hart increments a shared counter [rounds]
      times under an [amoswap.w] lock; hart 0 exits with status
      [counter - harts*rounds] (0 iff no update was lost).  Finished
      harts spin in a one-instruction self-loop whose state is a fixed
      point, so digests with [include_time:false] and
      [include_instret:false] are invariant under the scheduler's slice
      size; full digests agree across engines at any fixed slice.

    - {!ipi_ring}: one MSIP token circulates through all harts for
      [harts * rounds] hops; waiters park in WFI with only MSIE
      enabled.  Every hart's instruction stream is fully determined,
      so even the {e full} digest (time and instret included) is
      slice-invariant.

    Both also run correctly — and stay deterministic — at [harts = 1],
    anchoring single-hart no-regression checks. *)

val spinlock : harts:int -> rounds:int -> string * S4e_asm.Program.t
val ipi_ring : harts:int -> rounds:int -> string * S4e_asm.Program.t

val suite : harts:int -> rounds:int -> (string * S4e_asm.Program.t) list
(** [[spinlock; ipi_ring]]. *)

val fuel : harts:int -> rounds:int -> int
(** An instruction budget sufficient for either program at any slice
    size up to 4096. *)
