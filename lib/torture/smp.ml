(* SMP torture workloads: small hand-written multi-hart programs whose
   final architectural state is a pure function of (harts, rounds) —
   independent of the scheduler's slice size and of the execution
   engine — so they can serve as differential oracles for the SMP
   machine.

   Determinism is engineered, not accidental:

   - The spinlock program parks finished harts in a one-instruction
     self-loop whose architectural state is a fixed point: the last
     side-effecting instruction before the loop is an [amoadd.w] with
     [rd = x0], so a hart preempted between the AMO and the jump is
     byte-identical to one already spinning in it.  Registers are
     normalized first.  Spinning still burns cycles, so cross-slice
     comparisons must drop [cycle]/[instret]/[mtime]
     ([include_time:false] [include_instret:false]); cross-engine
     comparisons at a fixed slice can use the full digest.

   - The IPI ring holds exactly one token (an MSIP bit) at a time, and
     harts wait in WFI with only MSIE enabled and [mstatus.MIE] clear,
     so a waiting hart retires the [wfi] exactly once per wake and
     resumes without trapping.  Every hart's instruction stream — and
     therefore even [instret] and the shared [mtime] — is fully
     determined, making the final full digest slice-invariant too. *)

let asm name src =
  match S4e_asm.Assembler.assemble src with
  | Ok p -> (name, p)
  | Error e ->
      failwith
        (Format.asprintf "smp program %s: %a" name S4e_asm.Assembler.pp_error e)

(* Every hart increments a shared counter [rounds] times under an
   amoswap spinlock, then bumps a done-counter; hart 0 waits for all
   harts and exits with status [counter - harts*rounds] (0 iff the
   lock excluded every lost update). *)
let spinlock ~harts ~rounds =
  let name = Printf.sprintf "smp-spinlock-%dx%d" harts rounds in
  asm name
    (Printf.sprintf
       {|
_start:
  csrr t0, mhartid
  la   s0, lock
  la   s1, counter
  la   s2, done_ctr
  li   s3, %d
loop:
  li   t1, 1
acquire:
  amoswap.w t2, t1, (s0)
  bne  t2, x0, acquire
  lw   t3, 0(s1)
  addi t3, t3, 1
  sw   t3, 0(s1)
  sw   x0, 0(s0)
  addi s3, s3, -1
  bne  s3, x0, loop
  li   t1, 1
  bne  t0, x0, finish_other
  amoadd.w x0, t1, (s2)
wait_done:
  lw   t4, 0(s2)
  li   t5, %d
  bne  t4, t5, wait_done
  lw   a0, 0(s1)
  li   a1, %d
  sub  a0, a0, a1
  li   t1, 0x00100000
  sw   a0, 0(t1)
halt0:
  j halt0
finish_other:
  # Normalize before the done-increment: after the amoadd (rd = x0)
  # the state is a fixed point of the halt loop, so the digest cannot
  # depend on where the scheduler preempts this hart.
  li   t0, 0
  li   t2, 0
  li   t3, 0
  li   s0, 0
  li   s1, 0
  li   s3, 0
  amoadd.w x0, t1, (s2)
halt:
  j halt
  .data
lock:
  .word 0
counter:
  .word 0
done_ctr:
  .word 0
|}
       rounds harts (harts * rounds))

(* A single MSIP token circulates hart 0 -> 1 -> ... -> N-1 -> 0 for
   [harts * rounds] hops; waiters park in WFI.  The hart holding the
   final hop exits with status [hops - total] (0 on success).  Only
   MSIE is enabled and mstatus.MIE stays clear, so WFI wake-up resumes
   inline rather than trapping. *)
let ipi_ring ~harts ~rounds =
  let name = Printf.sprintf "smp-ipi-ring-%dx%d" harts rounds in
  asm name
    (Printf.sprintf
       {|
_start:
  csrr t0, mhartid
  li   s0, 0x02000000
  la   s1, hops
  li   s2, %d
  slli t1, t0, 2
  add  s3, s0, t1
  addi t2, t0, 1
  li   t3, %d
  blt  t2, t3, nowrap
  li   t2, 0
nowrap:
  slli t1, t2, 2
  add  s4, s0, t1
  li   t1, 8
  csrw mie, t1
  bne  t0, x0, wait
  li   t1, 1
  sw   t1, 0(s3)
wait:
  lw   t4, 0(s3)
  bne  t4, x0, got
  wfi
  j    wait
got:
  sw   x0, 0(s3)
  lw   t5, 0(s1)
  addi t5, t5, 1
  sw   t5, 0(s1)
  beq  t5, s2, finish
  li   t1, 1
  sw   t1, 0(s4)
  j    wait
finish:
  sub  a0, t5, s2
  li   t1, 0x00100000
  sw   a0, 0(t1)
halt:
  j halt
  .data
hops:
  .word 0
|}
       (harts * rounds) harts)

let suite ~harts ~rounds =
  [ spinlock ~harts ~rounds; ipi_ring ~harts ~rounds ]

let fuel ~harts ~rounds =
  (* Generous: the spinlock's contention and self-loop spinning scale
     with harts * rounds * slice; 4 harts x 64 rounds stays far below
     this bound even at slice 4096. *)
  200_000 + (harts * rounds * 20_000)
