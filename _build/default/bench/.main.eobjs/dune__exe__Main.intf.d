bench/main.mli:
