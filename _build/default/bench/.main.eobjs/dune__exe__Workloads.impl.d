bench/workloads.ml: Format Printf S4e_asm S4e_cpu
