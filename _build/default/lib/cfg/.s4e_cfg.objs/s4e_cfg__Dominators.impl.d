lib/cfg/dominators.ml: Array Cfg List
