lib/cfg/cfg.mli: Format S4e_asm S4e_bits S4e_isa S4e_mem
