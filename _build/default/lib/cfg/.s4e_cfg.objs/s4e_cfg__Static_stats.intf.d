lib/cfg/static_stats.mli: Format S4e_asm S4e_bits S4e_isa
