lib/cfg/callgraph.mli: Cfg S4e_bits S4e_isa
