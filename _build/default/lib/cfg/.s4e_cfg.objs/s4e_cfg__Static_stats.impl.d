lib/cfg/static_stats.ml: Array Compressed Decode Format Hashtbl Isa_module List Option Printf Reg S4e_asm S4e_isa S4e_mem String
