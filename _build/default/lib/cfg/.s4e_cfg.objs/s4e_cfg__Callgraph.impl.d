lib/cfg/callgraph.ml: Cfg Hashtbl List
