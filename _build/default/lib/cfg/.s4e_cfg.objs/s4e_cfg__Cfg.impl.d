lib/cfg/cfg.ml: Array Compressed Decode Format Hashtbl List Queue Reg S4e_asm S4e_isa S4e_mem String
