lib/cfg/loops.ml: Array Cfg Dominators Hashtbl Int List Set
