lib/cfg/loops.mli: Cfg Dominators Hashtbl
