(** Dominator analysis (iterative dataflow over reverse postorder).

    [idom.(entry) = entry]; unreachable blocks get [idom = -1]. *)

type t = {
  idom : int array;  (** immediate dominator per block id *)
  rpo : int array;  (** reachable blocks in reverse postorder *)
}

val compute : Cfg.t -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)

val reachable : t -> int -> bool
