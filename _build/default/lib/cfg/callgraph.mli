(** Interprocedural view: one {!Cfg.t} per function, linked by calls.

    Functions are discovered from the program entry by following call
    targets transitively.  Recursion (any cycle in the call graph) is
    reported, because the hierarchical WCET analysis requires a
    bottom-up function order. *)

type word = S4e_bits.Bits.word

type t = {
  entry : word;
  functions : (word * Cfg.t) list;  (** entry address -> function CFG *)
}

val build :
  decode:(word -> (int * S4e_isa.Instr.t) option) -> entry:word -> t

val find : t -> word -> Cfg.t option

val topological : t -> word list
(** Callee-first order.
    @raise Failure if the call graph is recursive. *)

val is_recursive : t -> bool
