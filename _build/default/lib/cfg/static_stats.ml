open S4e_isa
module Instr = S4e_isa.Instr
module Program = S4e_asm.Program

type word = int

type t = {
  total : int;
  bytes : int;
  compressed : int;
  by_mnemonic : (string * int) list;
  by_module : (Isa_module.t * int) list;
  gpr_reads : int array;
  gpr_writes : int array;
  max_branch_distance : int;
  max_jump_distance : int;
  imm_min : int;
  imm_max : int;
  loads : int;
  stores : int;
}

let module_of_mnemonic =
  let table = Hashtbl.create 128 in
  List.iter
    (fun m ->
      List.iter
        (fun name -> Hashtbl.replace table name m)
        (Isa_module.mnemonics m))
    Isa_module.all;
  fun name -> Hashtbl.find_opt table name

let imm12_of = function
  | Instr.Jalr (_, _, imm)
  | Instr.Load (_, _, _, imm)
  | Instr.Store (_, _, _, imm)
  | Instr.Op_imm (_, _, _, imm)
  | Instr.Flw (_, _, imm)
  | Instr.Fsw (_, _, imm) -> Some imm
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Branch _
  | Instr.Shift_imm _ | Instr.Op _ | Instr.Unary _ | Instr.Fence
  | Instr.Fence_i | Instr.Ecall | Instr.Ebreak | Instr.Mret | Instr.Wfi
  | Instr.Csr _ | Instr.Fp_op _ | Instr.Fp_cmp _ | Instr.Fsqrt _
  | Instr.Fcvt_w_s _ | Instr.Fcvt_s_w _ | Instr.Fmv_x_w _ | Instr.Fmv_w_x _
  | Instr.Lr _ | Instr.Sc _ | Instr.Amo _ -> None

let analyze p =
  let mem = S4e_mem.Sparse_mem.create () in
  Program.load p mem;
  let total = ref 0 and bytes = ref 0 and compressed = ref 0 in
  let counts = Hashtbl.create 64 in
  let gpr_reads = Array.make 32 0 and gpr_writes = Array.make 32 0 in
  let max_branch = ref 0 and max_jump = ref 0 in
  let imm_min = ref 0 and imm_max = ref 0 in
  let loads = ref 0 and stores = ref 0 in
  let record instr =
    incr total;
    let m = Instr.mnemonic instr in
    Hashtbl.replace counts m
      (1 + Option.value (Hashtbl.find_opt counts m) ~default:0);
    List.iter
      (fun r -> gpr_reads.(r) <- gpr_reads.(r) + 1)
      (Instr.sources instr);
    (match Instr.destination instr with
    | Some d -> gpr_writes.(d) <- gpr_writes.(d) + 1
    | None -> ());
    (match instr with
    | Instr.Branch (_, _, _, off) -> max_branch := max !max_branch (abs off)
    | Instr.Jal (_, off) -> max_jump := max !max_jump (abs off)
    | _ -> ());
    (match imm12_of instr with
    | Some imm ->
        if imm < !imm_min then imm_min := imm;
        if imm > !imm_max then imm_max := imm
    | None -> ());
    match instr with
    | Instr.Load _ | Instr.Flw _ | Instr.Lr _ -> incr loads
    | Instr.Store _ | Instr.Fsw _ | Instr.Sc _ -> incr stores
    | Instr.Amo _ ->
        incr loads;
        incr stores
    | _ -> ()
  in
  List.iter
    (fun (c : Program.chunk) ->
      if c.Program.is_code then begin
        bytes := !bytes + String.length c.Program.bytes;
        let stop = c.Program.addr + String.length c.Program.bytes in
        let rec walk pc =
          if pc + 2 <= stop then
            let half = S4e_mem.Sparse_mem.read16 mem pc in
            if half land 0x3 <> 0x3 then begin
              (match Compressed.decode16 half with
              | Some instr ->
                  incr compressed;
                  record instr
              | None -> ());
              walk (pc + 2)
            end
            else if pc + 4 <= stop then begin
              (match Decode.decode (S4e_mem.Sparse_mem.read32 mem pc) with
              | Some instr -> record instr
              | None -> ());
              walk (pc + 4)
            end
        in
        walk c.Program.addr
      end)
    p.Program.chunks;
  let by_mnemonic =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (a, x) (b, y) ->
           match compare y x with 0 -> compare a b | c -> c)
  in
  let by_module =
    List.filter_map
      (fun m ->
        let n =
          List.fold_left
            (fun acc (name, c) ->
              if module_of_mnemonic name = Some m then acc + c else acc)
            0 by_mnemonic
        in
        if n > 0 then Some (m, n) else None)
      Isa_module.all
  in
  { total = !total; bytes = !bytes; compressed = !compressed; by_mnemonic;
    by_module; gpr_reads; gpr_writes; max_branch_distance = !max_branch;
    max_jump_distance = !max_jump; imm_min = !imm_min; imm_max = !imm_max;
    loads = !loads; stores = !stores }

let required_modules t =
  (* Instr.mnemonic maps RVC expansions onto base mnemonics, so C is
     required iff compressed encodings were seen. *)
  List.map fst t.by_module
  @ if t.compressed > 0 then [ Isa_module.C ] else []

let unused_gprs t =
  let out = ref [] in
  for r = 31 downto 0 do
    if t.gpr_reads.(r) = 0 && t.gpr_writes.(r) = 0 then out := r :: !out
  done;
  !out

let pp fmt t =
  Format.fprintf fmt "%d instructions in %d bytes (%d compressed)@." t.total
    t.bytes t.compressed;
  Format.fprintf fmt "modules: %s@."
    (String.concat " "
       (List.map
          (fun (m, n) -> Printf.sprintf "%s:%d" (Isa_module.name m) n)
          t.by_module));
  Format.fprintf fmt "loads: %d, stores: %d@." t.loads t.stores;
  Format.fprintf fmt "max branch distance: %d, max jump distance: %d@."
    t.max_branch_distance t.max_jump_distance;
  Format.fprintf fmt "immediate range: [%d, %d]@." t.imm_min t.imm_max;
  Format.fprintf fmt "top instructions:";
  List.iteri
    (fun i (m, n) -> if i < 8 then Format.fprintf fmt " %s:%d" m n)
    t.by_mnemonic;
  Format.fprintf fmt "@.unused registers: %s@."
    (String.concat " " (List.map Reg.x_name (unused_gprs t)))
