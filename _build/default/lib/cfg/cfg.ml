open S4e_isa
module Instr = S4e_isa.Instr

type word = int

type terminator =
  | T_branch of { taken : word; fallthrough : word }
  | T_goto of word
  | T_call of { callee : word; return_to : word }
  | T_ret
  | T_indirect
  | T_halt

type block = {
  id : int;
  start_pc : word;
  instrs : (word * int * Instr.t) array;
  terminator : terminator;
}

type t = {
  entry : int;
  blocks : block array;
  succs : int list array;
  preds : int list array;
  callees : word list;
}

(* Classify a control-flow instruction at [pc] of byte size [size]. *)
let classify pc size instr =
  match instr with
  | Instr.Branch (_, _, _, off) ->
      Some (T_branch { taken = pc + off; fallthrough = pc + size })
  | Instr.Jal (rd, off) ->
      if rd = Reg.zero then Some (T_goto (pc + off))
      else Some (T_call { callee = pc + off; return_to = pc + size })
  | Instr.Jalr (rd, rs1, imm) ->
      if rd = Reg.zero && rs1 = Reg.ra && imm = 0 then Some T_ret
      else Some T_indirect
  | Instr.Ecall | Instr.Ebreak | Instr.Mret | Instr.Wfi -> Some T_halt
  | Instr.Lui _ | Instr.Auipc _ | Instr.Load _ | Instr.Store _
  | Instr.Op_imm _ | Instr.Shift_imm _ | Instr.Op _ | Instr.Unary _
  | Instr.Fence | Instr.Fence_i | Instr.Csr _ | Instr.Flw _ | Instr.Fsw _
  | Instr.Fp_op _ | Instr.Fp_cmp _ | Instr.Fsqrt _ | Instr.Fcvt_w_s _
  | Instr.Fcvt_s_w _ | Instr.Fmv_x_w _ | Instr.Fmv_w_x _
  | Instr.Lr _ | Instr.Sc _ | Instr.Amo _ -> None

(* Successor program points of a terminator, within the same function. *)
let terminator_succ_pcs = function
  | T_branch { taken; fallthrough } -> [ taken; fallthrough ]
  | T_goto target -> [ target ]
  | T_call { return_to; _ } -> [ return_to ]
  | T_ret | T_indirect | T_halt -> []

let build ~decode ~entry =
  (match decode entry with
  | None -> invalid_arg "Cfg.build: entry does not decode"
  | Some _ -> ());
  (* Phase A: explore from the entry, recording every leader (block
     start) and every control-flow instruction's terminator. *)
  let leaders = Hashtbl.create 64 in
  let visited_runs = Hashtbl.create 64 in
  let callees = ref [] in
  let add_callee c = if not (List.mem c !callees) then callees := c :: !callees in
  let worklist = Queue.create () in
  Hashtbl.replace leaders entry ();
  Queue.add entry worklist;
  while not (Queue.is_empty worklist) do
    let start = Queue.take worklist in
    if not (Hashtbl.mem visited_runs start) then begin
      Hashtbl.replace visited_runs start ();
      (* walk the straight-line run from [start] *)
      let rec walk pc =
        match decode pc with
        | None -> ()
        | Some (size, instr) -> (
            match classify pc size instr with
            | None -> walk (pc + size)
            | Some term ->
                (match term with
                | T_call { callee; _ } -> add_callee callee
                | T_branch _ | T_goto _ | T_ret | T_indirect | T_halt -> ());
                List.iter
                  (fun succ ->
                    if not (Hashtbl.mem leaders succ) then begin
                      Hashtbl.replace leaders succ ();
                      Queue.add succ worklist
                    end
                    else if not (Hashtbl.mem visited_runs succ) then
                      Queue.add succ worklist)
                  (terminator_succ_pcs term))
      in
      walk start
    end
  done;
  (* Phase B: materialize blocks from each leader, stopping at control
     flow or at the next leader. *)
  let leader_list =
    Hashtbl.fold (fun pc () acc -> pc :: acc) leaders [] |> List.sort compare
  in
  let block_of_leader start =
    let rec collect pc acc =
      match decode pc with
      | None -> (List.rev acc, T_halt)
      | Some (size, instr) -> (
          match classify pc size instr with
          | Some term -> (List.rev ((pc, size, instr) :: acc), term)
          | None ->
              let next = pc + size in
              if Hashtbl.mem leaders next then
                (List.rev ((pc, size, instr) :: acc), T_goto next)
              else collect next ((pc, size, instr) :: acc))
    in
    let instrs, terminator = collect start [] in
    (start, Array.of_list instrs, terminator)
  in
  let raw_blocks = List.map block_of_leader leader_list in
  let blocks =
    Array.of_list
      (List.mapi
         (fun id (start_pc, instrs, terminator) ->
           { id; start_pc; instrs; terminator })
         raw_blocks)
  in
  let index = Hashtbl.create (Array.length blocks) in
  Array.iter (fun b -> Hashtbl.replace index b.start_pc b.id) blocks;
  let n = Array.length blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
      let ss =
        List.filter_map
          (fun pc -> Hashtbl.find_opt index pc)
          (terminator_succ_pcs b.terminator)
      in
      succs.(b.id) <- ss;
      List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) ss)
    blocks;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  let entry_id =
    match Hashtbl.find_opt index entry with
    | Some id -> id
    | None -> invalid_arg "Cfg.build: entry block missing"
  in
  { entry = entry_id; blocks; succs; preds; callees = List.rev !callees }

let block_at t pc =
  let n = Array.length t.blocks in
  let rec go i =
    if i >= n then None
    else if t.blocks.(i).start_pc = pc then Some i
    else go (i + 1)
  in
  go 0

let decoder_of_mem mem ?(compressed = true) () pc =
  let half = S4e_mem.Sparse_mem.read16 mem pc in
  if half land 0x3 <> 0x3 then
    if compressed then
      match Compressed.decode16 half with
      | Some i -> Some (2, i)
      | None -> None
    else None
  else
    match Decode.decode (S4e_mem.Sparse_mem.read32 mem pc) with
    | Some i -> Some (4, i)
    | None -> None

let decoder_of_program p =
  let mem = S4e_mem.Sparse_mem.create () in
  S4e_asm.Program.load p mem;
  let range = S4e_asm.Program.code_range p in
  fun pc ->
    match range with
    | None -> None
    | Some (lo, hi) ->
        if pc < lo || pc >= hi then None else decoder_of_mem mem () pc

let block_count t = Array.length t.blocks
let edge_count t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let pp fmt t =
  Array.iter
    (fun b ->
      Format.fprintf fmt "block %d @@ 0x%08x (%d instrs) -> %s@."
        b.id b.start_pc (Array.length b.instrs)
        (String.concat ","
           (List.map string_of_int t.succs.(b.id))))
    t.blocks
