type word = int

type t = {
  entry : word;
  functions : (word * Cfg.t) list;
}

let build ~decode ~entry =
  let functions = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit addr =
    if not (Hashtbl.mem functions addr) then begin
      let cfg = Cfg.build ~decode ~entry:addr in
      Hashtbl.replace functions addr cfg;
      order := addr :: !order;
      List.iter visit cfg.Cfg.callees
    end
  in
  visit entry;
  { entry;
    functions =
      List.rev_map (fun a -> (a, Hashtbl.find functions a)) !order }

let find t addr = List.assoc_opt addr t.functions

let is_recursive t =
  (* cycle detection over call edges *)
  let color = Hashtbl.create 8 in
  let rec dfs addr =
    match Hashtbl.find_opt color addr with
    | Some `Gray -> true
    | Some `Black -> false
    | None -> (
        Hashtbl.replace color addr `Gray;
        let cyc =
          match find t addr with
          | None -> false
          | Some cfg -> List.exists dfs cfg.Cfg.callees
        in
        Hashtbl.replace color addr `Black;
        cyc)
  in
  dfs t.entry

let topological t =
  if is_recursive t then failwith "Callgraph.topological: recursive call graph";
  let visited = Hashtbl.create 8 in
  let out = ref [] in
  let rec dfs addr =
    if not (Hashtbl.mem visited addr) then begin
      Hashtbl.replace visited addr ();
      (match find t addr with
      | None -> ()
      | Some cfg -> List.iter dfs cfg.Cfg.callees);
      out := addr :: !out
    end
  in
  dfs t.entry;
  (* children pushed before parents, so !out is caller-first; reverse
     for callee-first. *)
  List.rev !out
