type t = { idom : int array; rpo : int array }

(* Cooper-Harvey-Kennedy iterative dominators. *)
let compute (g : Cfg.t) =
  let n = Array.length g.Cfg.blocks in
  let postorder = ref [] in
  let mark = Array.make n false in
  let rec dfs v =
    if not mark.(v) then begin
      mark.(v) <- true;
      List.iter dfs g.Cfg.succs.(v);
      postorder := v :: !postorder
    end
  in
  dfs g.Cfg.entry;
  let rpo = Array.of_list !postorder in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(g.Cfg.entry) <- g.Cfg.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do a := idom.(!a) done;
      while rpo_index.(!b) > rpo_index.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> g.Cfg.entry then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None g.Cfg.preds.(v)
          in
          match new_idom with
          | None -> ()
          | Some d ->
              if idom.(v) <> d then begin
                idom.(v) <- d;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo }

let reachable t v = t.idom.(v) <> -1

let dominates t a b =
  if not (reachable t b) then false
  else
    let rec go v = if v = a then true else if v = t.idom.(v) then false else go t.idom.(v) in
    go b
