(** Natural-loop detection.

    A back edge is an edge [n -> h] where [h] dominates [n]; its natural
    loop is [h] plus every block that reaches [n] without passing
    through [h].  Loops sharing a header are merged.  The nesting forest
    orders loops by body inclusion.

    {!reducible} holds iff every retreating edge is a back edge — the
    precondition for the hierarchical WCET analysis. *)

type loop = {
  header : int;
  body : int list;  (** sorted block ids, including the header *)
  back_edges : (int * int) list;  (** (latch, header) *)
  exits : (int * int) list;  (** (from-block in body, to-block outside) *)
  parent : int option;  (** index of the innermost enclosing loop *)
  depth : int;  (** 1 for outermost loops *)
}

type t = {
  loops : loop array;
  loop_of_header : (int, int) Hashtbl.t;  (** header block id -> loop index *)
}

val compute : Cfg.t -> Dominators.t -> t

val reducible : Cfg.t -> Dominators.t -> bool

val innermost : t -> int -> int option
(** Index of the innermost loop containing a block id. *)

val in_loop : t -> int -> int -> bool
(** [in_loop t loop_idx block]: is [block] in that loop's body? *)
