type loop = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
  exits : (int * int) list;
  parent : int option;
  depth : int;
}

type t = {
  loops : loop array;
  loop_of_header : (int, int) Hashtbl.t;
}

module Iset = Set.Make (Int)

let back_edges (g : Cfg.t) (dom : Dominators.t) =
  let edges = ref [] in
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun s ->
          if Dominators.reachable dom b.Cfg.id
             && Dominators.dominates dom s b.Cfg.id then
            edges := (b.Cfg.id, s) :: !edges)
        g.Cfg.succs.(b.Cfg.id))
    g.Cfg.blocks;
  List.rev !edges

(* Natural loop of back edge (latch, header): header + all blocks that
   reach latch against edge direction without passing header. *)
let natural_loop (g : Cfg.t) (latch, header) =
  let body = ref (Iset.singleton header) in
  (* Never walk the header's predecessors: the header bounds the body. *)
  let stack = ref (if latch = header then [] else [ latch ]) in
  body := Iset.add latch !body;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not (Iset.mem p !body) then begin
              body := Iset.add p !body;
              stack := p :: !stack
            end)
          g.Cfg.preds.(v)
  done;
  !body

let compute (g : Cfg.t) (dom : Dominators.t) =
  let bes = back_edges g dom in
  (* merge loops sharing a header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop g (latch, header) in
      match Hashtbl.find_opt by_header header with
      | None -> Hashtbl.replace by_header header (body, [ (latch, header) ])
      | Some (b, es) ->
          Hashtbl.replace by_header header
            (Iset.union b body, (latch, header) :: es))
    bes;
  let raw =
    Hashtbl.fold (fun header (body, es) acc -> (header, body, List.rev es) :: acc)
      by_header []
    (* Inner loops (smaller bodies) first, so parents appear after
       children when scanning for the innermost enclosing loop. *)
    |> List.sort (fun (_, a, _) (_, b, _) -> compare (Iset.cardinal a) (Iset.cardinal b))
  in
  let raw = Array.of_list raw in
  let n = Array.length raw in
  let parent_of i =
    let _, body_i, _ = raw.(i) in
    let rec find j =
      if j >= n then None
      else if j <> i then
        let _, body_j, _ = raw.(j) in
        if Iset.cardinal body_j > Iset.cardinal body_i && Iset.subset body_i body_j
        then Some j
        else find (j + 1)
      else find (j + 1)
    in
    find (i + 1)
  in
  let parents = Array.init n parent_of in
  let rec depth_of i =
    match parents.(i) with None -> 1 | Some p -> 1 + depth_of p
  in
  let exits_of body =
    Iset.fold
      (fun v acc ->
        List.fold_left
          (fun acc s -> if Iset.mem s body then acc else (v, s) :: acc)
          acc g.Cfg.succs.(v))
      body []
    |> List.rev
  in
  let loops =
    Array.init n (fun i ->
        let header, body, es = raw.(i) in
        { header; body = Iset.elements body; back_edges = es;
          exits = exits_of body; parent = parents.(i); depth = depth_of i })
  in
  let loop_of_header = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace loop_of_header l.header i) loops;
  { loops; loop_of_header }

(* Reducibility: DFS-retreating edges must all be back edges. *)
let reducible (g : Cfg.t) (dom : Dominators.t) =
  let n = Array.length g.Cfg.blocks in
  let color = Array.make n 0 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let ok = ref true in
  let rec dfs v =
    color.(v) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 0 then dfs s
        else if color.(s) = 1 && not (Dominators.dominates dom s v) then
          ok := false)
      g.Cfg.succs.(v);
    color.(v) <- 2
  in
  dfs g.Cfg.entry;
  !ok

let innermost t block =
  let best = ref None in
  Array.iteri
    (fun i l ->
      if List.mem block l.body then
        match !best with
        | None -> best := Some i
        | Some j -> if l.depth > t.loops.(j).depth then best := Some i)
    t.loops;
  !best

let in_loop t i block = List.mem block t.loops.(i).body
