(** Control-flow graph reconstruction from binaries.

    Rebuilds the intraprocedural CFG of one function directly from
    machine code, the way the QTA preprocessor rebuilds aiT's block
    graph: blocks are maximal single-entry straight-line runs; edges are
    branch outcomes, gotos, and fall-throughs.  Calls ([jal ra]) end a
    block but are *not* followed — the callee is a separate function
    (see {!Callgraph}); the call block's successor is the return site.

    Invariants (property-tested):
    - every instruction belongs to exactly one block;
    - every edge target is a block start;
    - the entry block dominates every reachable block. *)

type word = S4e_bits.Bits.word

type terminator =
  | T_branch of { taken : word; fallthrough : word }
  | T_goto of word
  | T_call of { callee : word; return_to : word }
  | T_ret
  | T_indirect  (** [jalr] to a computed target (not [ret]) *)
  | T_halt  (** [ecall]/[ebreak]/[mret]/[wfi], undecodable word, or
                fall-off-the-map *)

type block = {
  id : int;
  start_pc : word;
  instrs : (word * int * S4e_isa.Instr.t) array;
  terminator : terminator;
}

type t = {
  entry : int;  (** block id of the function entry *)
  blocks : block array;  (** indexed by id *)
  succs : int list array;
  preds : int list array;
  callees : word list;  (** distinct call targets, in first-call order *)
}

val block_at : t -> word -> int option
(** Block id whose [start_pc] is the given address. *)

val build :
  decode:(word -> (int * S4e_isa.Instr.t) option) -> entry:word -> t
(** [decode pc] returns [(size, instr)] or [None] past the code.
    @raise Invalid_argument if [entry] does not decode. *)

val decoder_of_mem :
  S4e_mem.Sparse_mem.t -> ?compressed:bool -> unit ->
  word -> (int * S4e_isa.Instr.t) option
(** A [decode] function reading a loaded image. *)

val decoder_of_program :
  S4e_asm.Program.t -> word -> (int * S4e_isa.Instr.t) option
(** Loads the program into a scratch memory and restricts decoding to
    its code range. *)

val block_count : t -> int
val edge_count : t -> int
val pp : Format.formatter -> t -> unit
