(** Static instruction-set analysis — the ANALISA companion tool
    (DATE 2017 University Booth).

    Where the coverage collector measures what a binary *does*, this
    module measures what it *contains*: instruction-type histograms per
    ISA module, static register read/write pressure, immediate-value
    and branch-distance distributions, and memory addressing shape.
    Useful for ISA-subset sizing ("which extensions does this binary
    actually need?") and as the static denominator next to dynamic
    coverage. *)

type word = S4e_bits.Bits.word

type t = {
  total : int;  (** decoded instructions *)
  bytes : int;  (** code bytes analyzed *)
  compressed : int;  (** 16-bit encodings *)
  by_mnemonic : (string * int) list;  (** descending by count *)
  by_module : (S4e_isa.Isa_module.t * int) list;
  gpr_reads : int array;  (** static read sites per register *)
  gpr_writes : int array;
  max_branch_distance : int;  (** |bytes|, conditional branches *)
  max_jump_distance : int;  (** |bytes|, jal *)
  imm_min : int;  (** most negative 12-bit immediate used *)
  imm_max : int;
  loads : int;
  stores : int;
}

val analyze : S4e_asm.Program.t -> t
(** Linear sweep over all code chunks (both encodings). *)

val required_modules : t -> S4e_isa.Isa_module.t list
(** Modules with at least one instruction in the binary — the minimal
    ISA configuration that can run it. *)

val unused_gprs : t -> int list
(** Registers with no static read or write site. *)

val pp : Format.formatter -> t -> unit
