module Instr = S4e_isa.Instr
module Timing_model = S4e_cpu.Timing_model

(* Worst-case load-use stalls of one block: exact for consecutive
   intra-block pairs (the stall happens iff the dependency exists), plus
   one conservative stall at the block's first instruction to cover a
   trailing load in whichever block ran before. *)
let hazard_cycles model (b : S4e_cfg.Cfg.block) =
  let h = model.Timing_model.load_use_hazard in
  if h = 0 then 0
  else
    let instrs = b.S4e_cfg.Cfg.instrs in
    let n = Array.length instrs in
    if n = 0 then 0
    else begin
      let total = ref 0 in
      (* cross-block entry stall *)
      let _, _, first = instrs.(0) in
      if Instr.sources first <> [] || Instr.fp_sources first <> [] then
        total := !total + h;
      for i = 0 to n - 2 do
        let _, _, producer = instrs.(i) in
        let _, _, consumer = instrs.(i + 1) in
        let stalls =
          match producer with
          | Instr.Load (_, rd, _, _) -> List.mem rd (Instr.sources consumer)
          | Instr.Flw (frd, _, _) -> List.mem frd (Instr.fp_sources consumer)
          | _ -> false
        in
        if stalls then total := !total + h
      done;
      !total
    end

let block_wcet model (b : S4e_cfg.Cfg.block) =
  Array.fold_left
    (fun acc (_, _, instr) -> acc + Timing_model.worst_cost model instr)
    0 b.S4e_cfg.Cfg.instrs
  + hazard_cycles model b

let all_blocks model (g : S4e_cfg.Cfg.t) =
  Array.map (block_wcet model) g.S4e_cfg.Cfg.blocks
