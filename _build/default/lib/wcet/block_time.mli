(** Per-block worst-case cycle counts.

    A block's WCET is the sum of {!S4e_cpu.Timing_model.worst_cost} over
    its instructions — the same table the emulator charges dynamically,
    so static >= dynamic holds instruction by instruction. *)

val block_wcet : S4e_cpu.Timing_model.t -> S4e_cfg.Cfg.block -> int

val all_blocks : S4e_cpu.Timing_model.t -> S4e_cfg.Cfg.t -> int array
(** Indexed by block id. *)
