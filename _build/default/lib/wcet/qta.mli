(** QTA co-simulation: replaying WCET annotations during emulation.

    The QEMU Timing Analyzer loads a binary together with its
    WCET-annotated CFG and simulates both: as the program executes, each
    entered block contributes its statically computed worst-case cycles,
    yielding the worst-case time of the *executed path*.  Three numbers
    then satisfy, for every run (property-tested):

    {v dynamic cycles <= path WCET <= static program WCET v}

    The left inequality holds because every block's WCET bounds its
    dynamic cost; the right because the static bound maximizes over all
    paths.

    Implementation: an instruction hook ({!S4e_cpu.Hooks.on_insn})
    watches for block-start pcs, which is robust to the emulator's own
    translation-block boundaries differing from CFG block boundaries. *)

type t

type report = {
  path_wcet : int;  (** accumulated worst-case cycles of the executed path *)
  blocks_entered : int;  (** block entries counted *)
  distinct_blocks : int;
  static_wcet : int;  (** the annotated CFG's program WCET *)
}

val attach : S4e_cpu.Machine.t -> Annotated_cfg.t -> t
val detach : S4e_cpu.Machine.t -> t -> unit
val reset : t -> unit
val report : t -> report
