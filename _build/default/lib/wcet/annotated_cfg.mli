(** The WCET-annotated CFG exchange format ("ait2qta" equivalent).

    In the published QTA flow, an aiT report is preprocessed into a
    timing-annotated control-flow graph which QEMU then loads next to
    the binary.  This module is that interchange artifact: a plain-text,
    line-oriented format carrying blocks with their WCETs, edges, loop
    bounds, and per-function WCETs.  {!to_string}/{!of_string} round
    trip (property-tested), so the artifact can be produced offline and
    shipped to the co-simulator. *)

type word = S4e_bits.Bits.word

type ablock = { ab_pc : word; ab_wcet : int; ab_instrs : int }

type aedge = {
  ae_from : word;
  ae_to : word;
  ae_kind : string;  (** "taken" | "fall" | "goto" | "return-to" *)
}

type afunc = {
  af_entry : word;
  af_name : string option;
  af_blocks : ablock list;
  af_edges : aedge list;
  af_loops : (word * int) list;  (** (header pc, bound) *)
  af_wcet : int;
}

type t = {
  entry : word;
  program_wcet : int;
  funcs : afunc list;
}

val of_program :
  ?model:S4e_cpu.Timing_model.t ->
  ?annotations:(string * int) list ->
  S4e_asm.Program.t ->
  (t, Analysis.error) result
(** Runs the full static analysis and packages it as the exchange
    artifact. *)

val to_string : t -> string
val of_string : string -> (t, string) result

val block_wcet_table : t -> (word, int) Hashtbl.t
(** block start pc -> block WCET over every function (for the
    co-simulator). *)
