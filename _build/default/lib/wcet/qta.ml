type t = {
  table : (int, int) Hashtbl.t;
  visited : (int, unit) Hashtbl.t;
  mutable path_wcet : int;
  mutable blocks_entered : int;
  static_wcet : int;
  mutable hook_id : S4e_cpu.Hooks.id option;
}

type report = {
  path_wcet : int;
  blocks_entered : int;
  distinct_blocks : int;
  static_wcet : int;
}

let attach (m : S4e_cpu.Machine.t) (acfg : Annotated_cfg.t) =
  let t =
    { table = Annotated_cfg.block_wcet_table acfg;
      visited = Hashtbl.create 64;
      path_wcet = 0;
      blocks_entered = 0;
      static_wcet = acfg.Annotated_cfg.program_wcet;
      hook_id = None }
  in
  let id =
    S4e_cpu.Hooks.on_insn m.S4e_cpu.Machine.hooks (fun pc _instr ->
        match Hashtbl.find_opt t.table pc with
        | Some wcet ->
            t.path_wcet <- t.path_wcet + wcet;
            t.blocks_entered <- t.blocks_entered + 1;
            if not (Hashtbl.mem t.visited pc) then Hashtbl.replace t.visited pc ()
        | None -> ())
  in
  t.hook_id <- Some id;
  t

let detach (m : S4e_cpu.Machine.t) t =
  match t.hook_id with
  | Some id ->
      S4e_cpu.Hooks.unregister m.S4e_cpu.Machine.hooks id;
      t.hook_id <- None
  | None -> ()

let reset (t : t) =
  t.path_wcet <- 0;
  t.blocks_entered <- 0;
  Hashtbl.reset t.visited

let report (t : t) =
  { path_wcet = t.path_wcet;
    blocks_entered = t.blocks_entered;
    distinct_blocks = Hashtbl.length t.visited;
    static_wcet = t.static_wcet }
