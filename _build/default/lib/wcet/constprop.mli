(** Intraprocedural constant propagation over GPRs.

    A path-insensitive forward dataflow used by the loop-bound
    inference to learn counter initial values and invariant bound
    registers.  The lattice per register is flat: unknown / constant.
    Calls clobber every register (conservative); loads and CSR reads
    produce unknown. *)

type state = int option array
(** index = register; [Some v] = register is provably [v] here. *)

val entry_states : S4e_cfg.Cfg.t -> state array
(** Per block id, register constants at block entry.  The function
    entry starts all-unknown except [x0 = 0]. *)

val transfer_block : state -> S4e_cfg.Cfg.block -> state
(** Applies all instructions of a block (functional: returns a copy). *)
