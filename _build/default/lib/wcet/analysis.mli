(** End-to-end static WCET analysis of a program image — the aiT-role
    component of the QTA flow.

    Pipeline: binary -> call graph -> per-function CFG, dominators,
    loops -> loop bounds (inference + annotations) -> hierarchical IPET,
    callee-first so call blocks charge their callee's WCET. *)

type word = S4e_bits.Bits.word

type loop_info = {
  li_header_pc : word;
  li_bound : int;
  li_source : Loop_bounds.source;
}

type func_report = {
  fr_entry : word;
  fr_name : string option;  (** symbol naming the entry, if any *)
  fr_blocks : int;
  fr_edges : int;
  fr_loops : loop_info list;
  fr_wcet : int;  (** cycles, callees included *)
}

type report = {
  program_wcet : int;
  functions : func_report list;  (** callee-first *)
  model : S4e_cpu.Timing_model.t;
}

type error =
  | E_unbounded_loop of word
  | E_irreducible of word  (** function entry *)
  | E_indirect_jump of word
  | E_recursion

val describe_error : error -> string

val analyze :
  ?model:S4e_cpu.Timing_model.t ->
  ?annotations:(string * int) list ->
  S4e_asm.Program.t ->
  (report, error) result
(** [annotations] are (label, bound) pairs: the label must be a program
    symbol at a loop-header address.  Bounds are maximum header
    executions per loop entry. *)

val pp_report : Format.formatter -> report -> unit
