open S4e_isa.Instr
module Bits = S4e_bits.Bits
module Cfg = S4e_cfg.Cfg
module Dominators = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops

type word = int
type source = Inferred | Annotated

type t = {
  bounds : (int * int * source) list;
  unbounded : int list;
}

let max_inferred_iterations = 1 lsl 20

module Iset = Set.Make (Int)

(* How often and how is register [r] written inside the loop body?
   Returns [`Never], [`Single_addi delta] when the only write is one
   [addi r, r, delta] (in a block that runs every iteration), or
   [`Other]. *)
let counter_update (g : Cfg.t) dom body latches r =
  let writes = ref [] in
  Iset.iter
    (fun bid ->
      let b = g.Cfg.blocks.(bid) in
      Array.iter
        (fun (_, _, instr) ->
          match destination instr with
          | Some rd when rd = r && rd <> 0 -> writes := (bid, instr) :: !writes
          | Some _ | None -> ())
        b.Cfg.instrs;
      (* calls clobber everything *)
      match b.Cfg.terminator with
      | Cfg.T_call _ -> writes := (bid, Ecall) :: !writes
      | _ -> ())
    body;
  match !writes with
  | [] -> `Never
  | [ (bid, Op_imm (ADDI, rd, rs1, delta)) ] when rd = r && rs1 = r ->
      (* the update must execute on every iteration: its block has to
         dominate every latch *)
      if List.for_all (fun l -> Dominators.dominates dom bid l) latches then
        `Single_addi delta
      else `Other
  | _ -> `Other

(* Initial value of [r] on loop entry: join of the out-states of the
   header's predecessors that lie outside the loop. *)
let entry_value (g : Cfg.t) entry_states body header r =
  let outside_preds =
    List.filter (fun p -> not (Iset.mem p body)) g.Cfg.preds.(header)
  in
  let values =
    List.map
      (fun p ->
        let out = Constprop.transfer_block entry_states.(p) g.Cfg.blocks.(p) in
        out.(r))
      outside_preds
  in
  match values with
  | [] -> None
  | v :: rest ->
      List.fold_left
        (fun acc v ->
          match (acc, v) with
          | Some a, Some b when a = b -> Some a
          | _ -> None)
        v rest

(* Is [r] invariant (never written) in the body, with a known constant
   value at loop entry? *)
let invariant_value g dom entry_states body latches header r =
  if r = 0 then Some 0
  else
    match counter_update g dom body latches r with
    | `Never -> entry_value g entry_states body header r
    | `Single_addi _ | `Other -> None

let eval_branch op a b =
  match op with
  | BEQ -> a = b
  | BNE -> a <> b
  | BLT -> Bits.lt_signed a b
  | BGE -> Bits.ge_signed a b
  | BLTU -> Bits.lt_unsigned a b
  | BGEU -> Bits.ge_unsigned a b

(* Smallest m >= 0 with exit condition true for counter value
   v0 + m*delta, or None within the cap. *)
let first_exit ~v0 ~delta ~exit_cond =
  let rec go m v =
    if m > max_inferred_iterations then None
    else if exit_cond v then Some m
    else go (m + 1) (Bits.add v (Bits.of_signed delta))
  in
  go 0 v0

(* Try to bound the loop via one exit branch. *)
let try_exit_branch (g : Cfg.t) dom entry_states (loop : Loops.loop) bid =
  let body = Iset.of_list loop.Loops.body in
  let latches = List.map fst loop.Loops.back_edges in
  let b = g.Cfg.blocks.(bid) in
  match b.Cfg.terminator with
  | Cfg.T_branch { taken; fallthrough } -> (
      let taken_id = Cfg.block_at g taken in
      let fall_id = Cfg.block_at g fallthrough in
      let outside id =
        match id with Some i -> not (Iset.mem i body) | None -> true
      in
      let exit_on_taken = outside taken_id in
      let exit_on_fall = outside fall_id in
      if exit_on_taken = exit_on_fall then None (* not a loop exit test *)
      else
        (* the branch is the last instruction of the block *)
        match b.Cfg.instrs.(Array.length b.Cfg.instrs - 1) with
        | _, _, Branch (op, r1, r2, _) ->
            let attempt counter bound ~counter_is_r1 =
              match counter_update g dom body latches counter with
              | `Single_addi delta when delta <> 0 -> (
                  match
                    ( entry_value g entry_states body loop.Loops.header counter,
                      invariant_value g dom entry_states body latches
                        loop.Loops.header bound )
                  with
                  | Some v0, Some vb ->
                      let exit_cond v =
                        let a, b = if counter_is_r1 then (v, vb) else (vb, v) in
                        let cond = eval_branch op a b in
                        if exit_on_taken then cond else not cond
                      in
                      (* +1 pads for update-before-test vs after. *)
                      Option.map
                        (fun m -> m + 1)
                        (first_exit ~v0 ~delta ~exit_cond)
                  | _, _ -> None)
              | `Never | `Single_addi _ | `Other -> None
            in
            (match attempt r1 r2 ~counter_is_r1:true with
            | Some n -> Some n
            | None -> attempt r2 r1 ~counter_is_r1:false)
        | _, _, _ -> None)
  | Cfg.T_goto _ | Cfg.T_call _ | Cfg.T_ret | Cfg.T_indirect | Cfg.T_halt ->
      None

let infer_loop g dom entry_states (loop : Loops.loop) =
  let candidates = List.map fst loop.Loops.exits |> List.sort_uniq compare in
  let bounds = List.filter_map (try_exit_branch g dom entry_states loop) candidates in
  match bounds with [] -> None | l -> Some (List.fold_left min max_int l)

let infer g dom (loops : Loops.t) ~annotations =
  let entry_states = Constprop.entry_states g in
  let bounds = ref [] and unbounded = ref [] in
  Array.iteri
    (fun i (loop : Loops.loop) ->
      let header_pc = g.Cfg.blocks.(loop.Loops.header).Cfg.start_pc in
      match annotations header_pc with
      | Some b -> bounds := (i, b, Annotated) :: !bounds
      | None -> (
          match infer_loop g dom entry_states loop with
          | Some b -> bounds := (i, b, Inferred) :: !bounds
          | None -> unbounded := i :: !unbounded))
    loops.Loops.loops;
  { bounds = List.rev !bounds; unbounded = List.rev !unbounded }

let bound_of t i =
  List.find_map (fun (j, b, _) -> if i = j then Some b else None) t.bounds
