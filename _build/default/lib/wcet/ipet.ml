module Cfg = S4e_cfg.Cfg
module Dominators = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops

type word = int

exception Unbounded_loop of word
exception Irreducible
exception Indirect_jump of word

type result = {
  wcet : int;
  effective_costs : int array;
  critical_block : int;
}

module Iset = Set.Make (Int)

(* Longest path over the back-edge-free DAG restricted to [nodes],
   starting at [start], with node weights [weight].  Returns the
   distance array (-1 = unreachable within the restriction). *)
let longest_paths g ~is_back_edge ~nodes ~start ~weight =
  let n = Array.length g.Cfg.blocks in
  let inside v = Iset.mem v nodes in
  (* topological order by DFS over DAG edges *)
  let mark = Array.make n 0 in
  let topo = ref [] in
  let rec dfs v =
    if mark.(v) = 0 then begin
      mark.(v) <- 1;
      List.iter
        (fun s -> if inside s && not (is_back_edge v s) then dfs s)
        g.Cfg.succs.(v);
      topo := v :: !topo
    end
  in
  dfs start;
  let dist = Array.make n (-1) in
  dist.(start) <- weight start;
  List.iter
    (fun v ->
      if dist.(v) >= 0 then
        List.iter
          (fun s ->
            if inside s && not (is_back_edge v s) then begin
              let cand = dist.(v) + weight s in
              if cand > dist.(s) then dist.(s) <- cand
            end)
          g.Cfg.succs.(v))
    !topo;
  dist

let function_wcet (g : Cfg.t) dom (loops : Loops.t) ~costs ~bounds =
  if not (Loops.reducible g dom) then raise Irreducible;
  (* reject reachable indirect jumps *)
  Array.iter
    (fun (b : Cfg.block) ->
      match b.Cfg.terminator with
      | Cfg.T_indirect when Dominators.reachable dom b.Cfg.id ->
          raise (Indirect_jump b.Cfg.start_pc)
      | _ -> ())
    g.Cfg.blocks;
  let all_back_edges =
    Array.to_list g.Cfg.blocks
    |> List.concat_map (fun (b : Cfg.block) ->
           List.filter_map
             (fun s ->
               if Dominators.reachable dom b.Cfg.id
                  && Dominators.dominates dom s b.Cfg.id
               then Some (b.Cfg.id, s)
               else None)
             g.Cfg.succs.(b.Cfg.id))
  in
  let back_set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace back_set e ()) all_back_edges;
  let is_back_edge a b = Hashtbl.mem back_set (a, b) in
  let n = Array.length g.Cfg.blocks in
  let effective = Array.copy costs in
  (* innermost-first: larger depth first *)
  let order =
    List.sort
      (fun i j ->
        compare loops.Loops.loops.(j).Loops.depth
          loops.Loops.loops.(i).Loops.depth)
      (List.init (Array.length loops.Loops.loops) Fun.id)
  in
  List.iter
    (fun li ->
      let loop = loops.Loops.loops.(li) in
      let bound =
        match Loop_bounds.bound_of bounds li with
        | Some b -> b
        | None ->
            raise
              (Unbounded_loop g.Cfg.blocks.(loop.Loops.header).Cfg.start_pc)
      in
      let body = Iset.of_list loop.Loops.body in
      let dist =
        longest_paths g ~is_back_edge ~nodes:body ~start:loop.Loops.header
          ~weight:(fun v -> effective.(v))
      in
      let iter_cost =
        List.fold_left
          (fun acc (latch, _) -> max acc dist.(latch))
          0 loop.Loops.back_edges
      in
      effective.(loop.Loops.header) <-
        effective.(loop.Loops.header) + (bound * iter_cost))
    order;
  let everything = Iset.of_list (List.init n Fun.id) in
  let dist =
    longest_paths g ~is_back_edge ~nodes:everything ~start:g.Cfg.entry
      ~weight:(fun v -> effective.(v))
  in
  let wcet = ref 0 and critical = ref g.Cfg.entry in
  Array.iteri
    (fun v d ->
      if d > !wcet then begin
        wcet := d;
        critical := v
      end)
    dist;
  { wcet = !wcet; effective_costs = effective; critical_block = !critical }
