module Cfg = S4e_cfg.Cfg
module Dominators = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops
module Callgraph = S4e_cfg.Callgraph
module Program = S4e_asm.Program

type word = int

type ablock = { ab_pc : word; ab_wcet : int; ab_instrs : int }
type aedge = { ae_from : word; ae_to : word; ae_kind : string }

type afunc = {
  af_entry : word;
  af_name : string option;
  af_blocks : ablock list;
  af_edges : aedge list;
  af_loops : (word * int) list;
  af_wcet : int;
}

type t = {
  entry : word;
  program_wcet : int;
  funcs : afunc list;
}

let edges_of_block (b : Cfg.block) =
  match b.Cfg.terminator with
  | Cfg.T_branch { taken; fallthrough } ->
      [ { ae_from = b.Cfg.start_pc; ae_to = taken; ae_kind = "taken" };
        { ae_from = b.Cfg.start_pc; ae_to = fallthrough; ae_kind = "fall" } ]
  | Cfg.T_goto target ->
      [ { ae_from = b.Cfg.start_pc; ae_to = target; ae_kind = "goto" } ]
  | Cfg.T_call { return_to; _ } ->
      [ { ae_from = b.Cfg.start_pc; ae_to = return_to; ae_kind = "return-to" } ]
  | Cfg.T_ret | Cfg.T_indirect | Cfg.T_halt -> []

let of_program ?(model = S4e_cpu.Timing_model.default) ?(annotations = []) p =
  match Analysis.analyze ~model ~annotations p with
  | Error e -> Error e
  | Ok report ->
      let decode = Cfg.decoder_of_program p in
      let cg = Callgraph.build ~decode ~entry:p.Program.entry in
      let funcs =
        List.map
          (fun (fr : Analysis.func_report) ->
            let g =
              match Callgraph.find cg fr.Analysis.fr_entry with
              | Some g -> g
              | None -> assert false
            in
            let blocks =
              Array.to_list g.Cfg.blocks
              |> List.map (fun (b : Cfg.block) ->
                     { ab_pc = b.Cfg.start_pc;
                       ab_wcet = Block_time.block_wcet model b;
                       ab_instrs = Array.length b.Cfg.instrs })
            in
            let edges =
              Array.to_list g.Cfg.blocks |> List.concat_map edges_of_block
            in
            { af_entry = fr.Analysis.fr_entry;
              af_name = fr.Analysis.fr_name;
              af_blocks = blocks;
              af_edges = edges;
              af_loops =
                List.map
                  (fun (l : Analysis.loop_info) ->
                    (l.Analysis.li_header_pc, l.Analysis.li_bound))
                  fr.Analysis.fr_loops;
              af_wcet = fr.Analysis.fr_wcet })
          report.Analysis.functions
      in
      Ok
        { entry = p.Program.entry;
          program_wcet = report.Analysis.program_wcet;
          funcs }

let to_string t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "qta-cfg v1\n";
  pf "entry 0x%08x\n" t.entry;
  pf "program-wcet %d\n" t.program_wcet;
  List.iter
    (fun f ->
      pf "function 0x%08x%s\n" f.af_entry
        (match f.af_name with Some n -> " " ^ n | None -> "");
      List.iter
        (fun b -> pf "  block 0x%08x %d %d\n" b.ab_pc b.ab_wcet b.ab_instrs)
        f.af_blocks;
      List.iter
        (fun e -> pf "  edge 0x%08x 0x%08x %s\n" e.ae_from e.ae_to e.ae_kind)
        f.af_edges;
      List.iter (fun (h, b) -> pf "  loop 0x%08x %d\n" h b) f.af_loops;
      pf "  wcet %d\n" f.af_wcet;
      pf "end\n")
    t.funcs;
  Buffer.contents buf

type parse_state = {
  mutable ps_entry : word option;
  mutable ps_wcet : int option;
  mutable ps_funcs : afunc list;
  mutable ps_cur : afunc option;
}

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Stdlib.Error m) fmt in
  let ps = { ps_entry = None; ps_wcet = None; ps_funcs = []; ps_cur = None } in
  let lines = String.split_on_char '\n' s in
  let parse_word w =
    match int_of_string_opt w with
    | Some v -> Ok v
    | None -> err "bad number %S" w
  in
  let rec go lineno = function
    | [] -> (
        match (ps.ps_entry, ps.ps_wcet, ps.ps_cur) with
        | Some entry, Some program_wcet, None ->
            Ok { entry; program_wcet; funcs = List.rev ps.ps_funcs }
        | None, _, _ -> err "missing entry line"
        | _, None, _ -> err "missing program-wcet line"
        | _, _, Some _ -> err "unterminated function")
    | line :: rest -> (
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun t -> t <> "")
        in
        let continue () = go (lineno + 1) rest in
        let ( let* ) r k = match r with Ok v -> k v | Stdlib.Error e -> Stdlib.Error e in
        match (tokens, ps.ps_cur) with
        | [], _ -> continue ()
        | [ "qta-cfg"; "v1" ], _ -> continue ()
        | [ "entry"; a ], None ->
            let* v = parse_word a in
            ps.ps_entry <- Some v;
            continue ()
        | [ "program-wcet"; a ], None ->
            let* v = parse_word a in
            ps.ps_wcet <- Some v;
            continue ()
        | "function" :: a :: name_opt, None ->
            let* v = parse_word a in
            ps.ps_cur <-
              Some
                { af_entry = v;
                  af_name = (match name_opt with [ n ] -> Some n | _ -> None);
                  af_blocks = []; af_edges = []; af_loops = []; af_wcet = 0 };
            continue ()
        | [ "block"; a; w; n ], Some f ->
            let* a = parse_word a in
            let* w = parse_word w in
            let* n = parse_word n in
            ps.ps_cur <-
              Some
                { f with
                  af_blocks = { ab_pc = a; ab_wcet = w; ab_instrs = n } :: f.af_blocks };
            continue ()
        | [ "edge"; a; b; k ], Some f ->
            let* a = parse_word a in
            let* b = parse_word b in
            ps.ps_cur <-
              Some
                { f with
                  af_edges = { ae_from = a; ae_to = b; ae_kind = k } :: f.af_edges };
            continue ()
        | [ "loop"; h; b ], Some f ->
            let* h = parse_word h in
            let* b = parse_word b in
            ps.ps_cur <- Some { f with af_loops = (h, b) :: f.af_loops };
            continue ()
        | [ "wcet"; w ], Some f ->
            let* w = parse_word w in
            ps.ps_cur <- Some { f with af_wcet = w };
            continue ()
        | [ "end" ], Some f ->
            ps.ps_funcs <-
              { f with
                af_blocks = List.rev f.af_blocks;
                af_edges = List.rev f.af_edges;
                af_loops = List.rev f.af_loops }
              :: ps.ps_funcs;
            ps.ps_cur <- None;
            continue ()
        | t :: _, _ -> err "line %d: unexpected token %S" lineno t)
  in
  go 1 lines

let block_wcet_table t =
  let table = Hashtbl.create 256 in
  List.iter
    (fun f ->
      List.iter (fun b -> Hashtbl.replace table b.ab_pc b.ab_wcet) f.af_blocks)
    t.funcs;
  table
