(** Hierarchical longest-path WCET (IPET on a DAG).

    The classic ILP-based implicit path enumeration is replaced by a
    structural analysis that is exact on reducible graphs with loop
    bounds (DESIGN.md decision 4): process loops innermost-first, charge
    each loop header [bound x (longest header-to-latch path within the
    body)] extra cycles, then take the longest path through the
    back-edge-free DAG.  Sound because every execution path decomposes
    into the DAG path plus complete loop iterations, each of which costs
    at most the charged maximum. *)

type word = S4e_bits.Bits.word

(** Header pc of a loop with no bound. *)
exception Unbounded_loop of word

exception Irreducible

(** Start pc of a reachable block ending in a computed jump. *)
exception Indirect_jump of word

type result = {
  wcet : int;
  effective_costs : int array;  (** per block id: cost + loop extras *)
  critical_block : int;  (** block id where the longest path ends *)
}

val function_wcet :
  S4e_cfg.Cfg.t ->
  S4e_cfg.Dominators.t ->
  S4e_cfg.Loops.t ->
  costs:int array ->
  bounds:Loop_bounds.t ->
  result
(** [costs] is per block id and must already include callee WCETs for
    call blocks. *)
