(** Loop-bound inference — the ecosystem's stand-in for aiT's value
    analysis.

    For counted loops of the common compiled shape (a counter updated by
    one [addi] per iteration, tested against a loop-invariant constant
    by the exit branch), the bound is derived exactly by simulating the
    counter against the branch condition; the result is then padded by
    one iteration to stay sound regardless of whether the update
    precedes or follows the test.  Anything else needs an annotation
    (keyed by the loop-header address, usually supplied via a label).

    A bound is the maximum number of times the loop header executes per
    entry to the loop. *)

type word = S4e_bits.Bits.word

type source = Inferred | Annotated

type t = {
  bounds : (int * int * source) list;
      (** (loop index, bound, provenance) for every bounded loop *)
  unbounded : int list;  (** loop indices with no bound *)
}

val infer :
  S4e_cfg.Cfg.t ->
  S4e_cfg.Dominators.t ->
  S4e_cfg.Loops.t ->
  annotations:(word -> int option) ->
  t
(** [annotations header_pc] supplies a user bound for the loop headed at
    that address; it wins over inference. *)

val bound_of : t -> int -> int option
(** Bound for a loop index. *)

val max_inferred_iterations : int
(** Simulation cap; loops running longer must be annotated. *)
