open S4e_isa.Instr
module Bits = S4e_bits.Bits
module Cfg = S4e_cfg.Cfg

type state = int option array

let unknown_all () =
  let s = Array.make 32 None in
  s.(0) <- Some 0;
  s

let get (s : state) r = if r = 0 then Some 0 else s.(r)

let set (s : state) r v = if r <> 0 then s.(r) <- v

let transfer_instr (s : state) instr =
  match instr with
  | Lui (rd, imm20) -> set s rd (Some (imm20 lsl 12))
  | Auipc (rd, _) -> set s rd None
  | Op_imm (op, rd, rs1, imm) ->
      set s rd
        (match get s rs1 with
        | Some a -> (
            match op with
            | ADDI -> Some (Bits.add a (Bits.of_signed imm))
            | SLTI -> Some (if Bits.lt_signed a (Bits.of_signed imm) then 1 else 0)
            | SLTIU ->
                Some (if Bits.lt_unsigned a (Bits.of_signed imm) then 1 else 0)
            | XORI -> Some (Bits.logxor a (Bits.of_signed imm))
            | ORI -> Some (Bits.logor a (Bits.of_signed imm))
            | ANDI -> Some (Bits.logand a (Bits.of_signed imm)))
        | None -> None)
  | Shift_imm (op, rd, rs1, sh) ->
      set s rd
        (match get s rs1 with
        | Some a ->
            Some
              (match op with
              | SLLI -> Bits.sll a sh
              | SRLI -> Bits.srl a sh
              | SRAI -> Bits.sra a sh
              | RORI -> Bits.ror a sh
              | BSETI -> Bits.bset a sh
              | BCLRI -> Bits.bclr a sh
              | BINVI -> Bits.binv a sh
              | BEXTI -> Bits.bext a sh)
        | None -> None)
  | Op (op, rd, rs1, rs2) ->
      set s rd
        (match (get s rs1, get s rs2) with
        | Some a, Some b -> (
            match op with
            | ADD -> Some (Bits.add a b)
            | SUB -> Some (Bits.sub a b)
            | SLL -> Some (Bits.sll a b)
            | SLT -> Some (if Bits.lt_signed a b then 1 else 0)
            | SLTU -> Some (if Bits.lt_unsigned a b then 1 else 0)
            | XOR -> Some (Bits.logxor a b)
            | SRL -> Some (Bits.srl a b)
            | SRA -> Some (Bits.sra a b)
            | OR -> Some (Bits.logor a b)
            | AND -> Some (Bits.logand a b)
            | MUL -> Some (Bits.mul a b)
            | MULH -> Some (Bits.mulh a b)
            | MULHSU -> Some (Bits.mulhsu a b)
            | MULHU -> Some (Bits.mulhu a b)
            | DIV -> Some (Bits.div a b)
            | DIVU -> Some (Bits.divu a b)
            | REM -> Some (Bits.rem a b)
            | REMU -> Some (Bits.remu a b)
            | ANDN -> Some (Bits.andn a b)
            | ORN -> Some (Bits.orn a b)
            | XNOR -> Some (Bits.xnor a b)
            | ROL -> Some (Bits.rol a b)
            | ROR -> Some (Bits.ror a b)
            | MIN -> Some (Bits.min_signed a b)
            | MAX -> Some (Bits.max_signed a b)
            | MINU -> Some (Bits.min_unsigned a b)
            | MAXU -> Some (Bits.max_unsigned a b)
            | BSET -> Some (Bits.bset a b)
            | BCLR -> Some (Bits.bclr a b)
            | BINV -> Some (Bits.binv a b)
            | BEXT -> Some (Bits.bext a b))
        | _, _ -> None)
  | Unary (op, rd, rs1) ->
      set s rd
        (match get s rs1 with
        | Some a ->
            Some
              (match op with
              | CLZ -> Bits.clz a
              | CTZ -> Bits.ctz a
              | CPOP -> Bits.popcount a
              | SEXT_B -> Bits.sext ~width:8 a
              | SEXT_H -> Bits.sext ~width:16 a
              | ZEXT_H -> Bits.zext ~width:16 a
              | REV8 -> Bits.rev8 a
              | ORC_B -> Bits.orc_b a)
        | None -> None)
  | Load (_, rd, _, _) | Csr (_, rd, _, _)
  | Lr (rd, _) | Sc (rd, _, _) | Amo (_, rd, _, _) -> set s rd None
  | Jal (rd, _) | Jalr (rd, _, _) -> set s rd None
  | Fp_cmp (_, rd, _, _) | Fcvt_w_s (rd, _, _) | Fmv_x_w (rd, _) ->
      set s rd None
  | Branch _ | Store _ | Fence | Fence_i | Ecall | Ebreak | Mret | Wfi
  | Flw _ | Fsw _ | Fp_op _ | Fsqrt _ | Fcvt_s_w _ | Fmv_w_x _ -> ()

let transfer_block (s : state) (b : Cfg.block) =
  let s = Array.copy s in
  Array.iter (fun (_, _, instr) -> transfer_instr s instr) b.Cfg.instrs;
  (* A call clobbers every register (no calling-convention assumptions). *)
  (match b.Cfg.terminator with
  | Cfg.T_call _ ->
      for r = 1 to 31 do
        s.(r) <- None
      done
  | Cfg.T_branch _ | Cfg.T_goto _ | Cfg.T_ret | Cfg.T_indirect | Cfg.T_halt ->
      ());
  s

let join a b =
  Array.init 32 (fun i ->
      match (a.(i), b.(i)) with
      | Some x, Some y when x = y -> Some x
      | _, _ -> None)

let entry_states (g : Cfg.t) =
  let n = Array.length g.Cfg.blocks in
  let states = Array.make n None in
  states.(g.Cfg.entry) <- Some (unknown_all ());
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Cfg.block) ->
        match states.(b.Cfg.id) with
        | None -> ()
        | Some s_in ->
            let s_out = transfer_block s_in b in
            List.iter
              (fun succ ->
                let merged =
                  match states.(succ) with
                  | None -> s_out
                  | Some old -> join old s_out
                in
                match states.(succ) with
                | Some old when old = merged -> ()
                | _ ->
                    states.(succ) <- Some merged;
                    changed := true)
              g.Cfg.succs.(b.Cfg.id))
      g.Cfg.blocks
  done;
  Array.map
    (function Some s -> s | None -> unknown_all ())
    states
