module Cfg = S4e_cfg.Cfg
module Dominators = S4e_cfg.Dominators
module Loops = S4e_cfg.Loops
module Callgraph = S4e_cfg.Callgraph
module Program = S4e_asm.Program

type word = int

type loop_info = {
  li_header_pc : word;
  li_bound : int;
  li_source : Loop_bounds.source;
}

type func_report = {
  fr_entry : word;
  fr_name : string option;
  fr_blocks : int;
  fr_edges : int;
  fr_loops : loop_info list;
  fr_wcet : int;
}

type report = {
  program_wcet : int;
  functions : func_report list;
  model : S4e_cpu.Timing_model.t;
}

type error =
  | E_unbounded_loop of word
  | E_irreducible of word
  | E_indirect_jump of word
  | E_recursion

let describe_error = function
  | E_unbounded_loop pc ->
      Printf.sprintf
        "loop at 0x%08x has no inferable bound; annotate its header label" pc
  | E_irreducible pc -> Printf.sprintf "function 0x%08x has irreducible control flow" pc
  | E_indirect_jump pc ->
      Printf.sprintf "block at 0x%08x ends in an indirect jump" pc
  | E_recursion -> "the call graph is recursive"

exception Err of error

let name_of_addr (p : Program.t) addr =
  List.find_map
    (fun (name, a) -> if a = addr && name <> "_start" then Some name else None)
    p.Program.symbols
  |> function
  | Some n -> Some n
  | None -> if Some addr = Program.symbol p "_start" then Some "_start" else None

let analyze ?(model = S4e_cpu.Timing_model.default) ?(annotations = []) p =
  try
    let decode = Cfg.decoder_of_program p in
    let ann_by_pc = Hashtbl.create 8 in
    List.iter
      (fun (label, bound) ->
        match Program.symbol p label with
        | Some pc -> Hashtbl.replace ann_by_pc pc bound
        | None -> ())
      annotations;
    let cg = Callgraph.build ~decode ~entry:p.Program.entry in
    if Callgraph.is_recursive cg then raise (Err E_recursion);
    let order = Callgraph.topological cg in
    let wcet_by_entry = Hashtbl.create 8 in
    let reports =
      List.map
        (fun fentry ->
          let g =
            match Callgraph.find cg fentry with
            | Some g -> g
            | None -> assert false
          in
          let dom = Dominators.compute g in
          if not (Loops.reducible g dom) then raise (Err (E_irreducible fentry));
          let loops = Loops.compute g dom in
          let bounds =
            Loop_bounds.infer g dom loops ~annotations:(Hashtbl.find_opt ann_by_pc)
          in
          let base_costs = Block_time.all_blocks model g in
          let costs =
            Array.mapi
              (fun i c ->
                match g.Cfg.blocks.(i).Cfg.terminator with
                | Cfg.T_call { callee; _ } -> (
                    match Hashtbl.find_opt wcet_by_entry callee with
                    | Some w -> c + w
                    | None -> raise (Err E_recursion))
                | _ -> c)
              base_costs
          in
          let result =
            try Ipet.function_wcet g dom loops ~costs ~bounds with
            | Ipet.Unbounded_loop pc -> raise (Err (E_unbounded_loop pc))
            | Ipet.Irreducible -> raise (Err (E_irreducible fentry))
            | Ipet.Indirect_jump pc -> raise (Err (E_indirect_jump pc))
          in
          Hashtbl.replace wcet_by_entry fentry result.Ipet.wcet;
          let loop_infos =
            List.map
              (fun (i, b, src) ->
                { li_header_pc =
                    g.Cfg.blocks.(loops.Loops.loops.(i).Loops.header)
                      .Cfg.start_pc;
                  li_bound = b;
                  li_source = src })
              bounds.Loop_bounds.bounds
          in
          { fr_entry = fentry;
            fr_name = name_of_addr p fentry;
            fr_blocks = Cfg.block_count g;
            fr_edges = Cfg.edge_count g;
            fr_loops = loop_infos;
            fr_wcet = result.Ipet.wcet })
        order
    in
    let program_wcet =
      match Hashtbl.find_opt wcet_by_entry p.Program.entry with
      | Some w -> w
      | None -> 0
    in
    Ok { program_wcet; functions = reports; model }
  with
  | Err e -> Error e
  | Failure _ -> Error E_recursion

let pp_report fmt r =
  Format.fprintf fmt "program WCET: %d cycles@." r.program_wcet;
  List.iter
    (fun f ->
      Format.fprintf fmt "  function %s @@ 0x%08x: wcet=%d blocks=%d edges=%d@."
        (Option.value f.fr_name ~default:"?")
        f.fr_entry f.fr_wcet f.fr_blocks f.fr_edges;
      List.iter
        (fun l ->
          Format.fprintf fmt "    loop @@ 0x%08x: bound=%d (%s)@."
            l.li_header_pc l.li_bound
            (match l.li_source with
            | Loop_bounds.Inferred -> "inferred"
            | Loop_bounds.Annotated -> "annotated"))
        f.fr_loops)
    r.functions
