lib/wcet/block_time.ml: Array List S4e_cfg S4e_cpu S4e_isa
