lib/wcet/analysis.mli: Format Loop_bounds S4e_asm S4e_bits S4e_cpu
