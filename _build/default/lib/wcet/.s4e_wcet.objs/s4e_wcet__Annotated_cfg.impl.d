lib/wcet/annotated_cfg.ml: Analysis Array Block_time Buffer Hashtbl List Printf S4e_asm S4e_cfg S4e_cpu Stdlib String
