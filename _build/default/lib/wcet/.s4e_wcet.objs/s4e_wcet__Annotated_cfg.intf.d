lib/wcet/annotated_cfg.mli: Analysis Hashtbl S4e_asm S4e_bits S4e_cpu
