lib/wcet/ipet.ml: Array Fun Hashtbl Int List Loop_bounds S4e_cfg Set
