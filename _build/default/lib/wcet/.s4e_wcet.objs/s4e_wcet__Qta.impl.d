lib/wcet/qta.ml: Annotated_cfg Hashtbl S4e_cpu
