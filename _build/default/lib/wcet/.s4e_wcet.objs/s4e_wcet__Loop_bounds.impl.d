lib/wcet/loop_bounds.ml: Array Constprop Int List Option S4e_bits S4e_cfg S4e_isa Set
