lib/wcet/ipet.mli: Loop_bounds S4e_bits S4e_cfg
