lib/wcet/block_time.mli: S4e_cfg S4e_cpu
