lib/wcet/constprop.mli: S4e_cfg
