lib/wcet/analysis.ml: Array Block_time Format Hashtbl Ipet List Loop_bounds Option Printf S4e_asm S4e_cfg S4e_cpu
