lib/wcet/loop_bounds.mli: S4e_bits S4e_cfg
