lib/wcet/constprop.ml: Array List S4e_bits S4e_cfg S4e_isa
