lib/wcet/qta.mli: Annotated_cfg S4e_cpu
