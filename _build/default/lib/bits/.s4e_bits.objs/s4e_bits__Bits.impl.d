lib/bits/bits.ml: Format Int32 Printf
