type word = int

let mask32 x = x land 0xFFFF_FFFF
let is_word x = x >= 0 && x <= 0xFFFF_FFFF

let to_signed w =
  if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let of_signed x = mask32 x
let of_int32 i = Int32.to_int i land 0xFFFF_FFFF
let to_int32 w = Int32.of_int (to_signed w)

let add a b = mask32 (a + b)
let sub a b = mask32 (a - b)
let mul a b = mask32 (a * b)

(* The full 64-bit product of two 32-bit values fits in OCaml's 63-bit
   native int only when at least one operand is interpreted unsigned and
   the other signed, or both signed; for unsigned x unsigned the product
   can reach 2^64, so we split operands into 16-bit halves. *)
let mulhu a b =
  let al = a land 0xFFFF and ah = a lsr 16 in
  let bl = b land 0xFFFF and bh = b lsr 16 in
  let ll = al * bl in
  let lh = al * bh in
  let hl = ah * bl in
  let hh = ah * bh in
  let cross = (ll lsr 16) + (lh land 0xFFFF) + (hl land 0xFFFF) in
  mask32 (hh + (lh lsr 16) + (hl lsr 16) + (cross lsr 16))

(* Signed variants are derived from the unsigned high word — the direct
   63-bit product would overflow for operands near the 32-bit extremes
   (e.g. (-2^31) * (-2^31) = 2^62 > max_int). *)
let mulh a b =
  let high = mulhu a b in
  let high = if a land 0x8000_0000 <> 0 then high - b else high in
  let high = if b land 0x8000_0000 <> 0 then high - a else high in
  mask32 high

let mulhsu a b =
  let high = mulhu a b in
  mask32 (if a land 0x8000_0000 <> 0 then high - b else high)

let div a b =
  let sa = to_signed a and sb = to_signed b in
  if sb = 0 then mask32 (-1)
  else if sa = -0x8000_0000 && sb = -1 then 0x8000_0000
  else
    (* OCaml division truncates toward zero, matching RISC-V. *)
    of_signed (sa / sb)

let divu a b = if b = 0 then 0xFFFF_FFFF else a / b

let rem a b =
  let sa = to_signed a and sb = to_signed b in
  if sb = 0 then a
  else if sa = -0x8000_0000 && sb = -1 then 0
  else of_signed (sa mod sb)

let remu a b = if b = 0 then a else a mod b

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = mask32 (lnot a)
let andn a b = a land lognot b
let orn a b = a lor lognot b
let xnor a b = lognot (a lxor b)

let sll a n = mask32 (a lsl (n land 31))
let srl a n = a lsr (n land 31)
let sra a n = mask32 (to_signed a asr (n land 31))

let rol a n =
  let n = n land 31 in
  if n = 0 then a else mask32 ((a lsl n) lor (a lsr (32 - n)))

let ror a n =
  let n = n land 31 in
  if n = 0 then a else mask32 ((a lsr n) lor (a lsl (32 - n)))

let lt_signed a b = to_signed a < to_signed b
let lt_unsigned a b = a < b
let ge_signed a b = not (lt_signed a b)
let ge_unsigned a b = a >= b
let min_signed a b = if lt_signed a b then a else b
let max_signed a b = if lt_signed a b then b else a
let min_unsigned a b = if a < b then a else b
let max_unsigned a b = if a < b then b else a

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let clz w =
  if w = 0 then 32
  else
    let rec go i = if w land (1 lsl i) <> 0 then 31 - i else go (i - 1) in
    go 31

let ctz w =
  if w = 0 then 32
  else
    let rec go i = if w land (1 lsl i) <> 0 then i else go (i + 1) in
    go 0

let get_byte i w = (w lsr (8 * i)) land 0xFF

let set_byte i b w =
  let sh = 8 * i in
  (w land lnot (0xFF lsl sh) lor ((b land 0xFF) lsl sh)) land 0xFFFF_FFFF

let rev8 w =
  (get_byte 0 w lsl 24) lor (get_byte 1 w lsl 16)
  lor (get_byte 2 w lsl 8) lor get_byte 3 w

let orc_b w =
  let byte i = if get_byte i w <> 0 then 0xFF else 0 in
  (byte 3 lsl 24) lor (byte 2 lsl 16) lor (byte 1 lsl 8) lor byte 0

let sext ~width x =
  assert (width >= 1 && width <= 32);
  let x = x land ((1 lsl width) - 1) in
  if x land (1 lsl (width - 1)) <> 0 then mask32 (x - (1 lsl width)) else x

let zext ~width x =
  assert (width >= 1 && width <= 32);
  if width = 32 then mask32 x else x land ((1 lsl width) - 1)

let bits ~hi ~lo w =
  assert (0 <= lo && lo <= hi && hi <= 31);
  (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let bit i w = (w lsr i) land 1

let set_bit i v w =
  if v then w lor (1 lsl i) else w land lnot (1 lsl i) land 0xFFFF_FFFF

let flip_bit i w = w lxor (1 lsl i)

let bset w i = w lor (1 lsl (i land 31))
let bclr w i = w land lnot (1 lsl (i land 31)) land 0xFFFF_FFFF
let binv w i = w lxor (1 lsl (i land 31))
let bext w i = (w lsr (i land 31)) land 1

let pp_hex fmt w = Format.fprintf fmt "0x%08x" w
let to_hex w = Printf.sprintf "0x%08x" w
