(** 32-bit word arithmetic on native OCaml integers.

    All values of type {!word} are native [int]s constrained to the range
    [0, 2{^32}).  Using native ints instead of [int32] keeps the hot
    interpreter loop free of boxing (DESIGN.md decision 1).  Every
    operation re-normalizes its result into the canonical unsigned
    range. *)

type word = int
(** An unsigned 32-bit value stored in a native [int].  Invariant:
    [0 <= w <= 0xFFFF_FFFF]. *)

val mask32 : int -> word
(** [mask32 x] truncates [x] to its low 32 bits. *)

val is_word : int -> bool
(** [is_word x] is [true] iff [x] is already in canonical range. *)

val to_signed : word -> int
(** [to_signed w] reinterprets [w] as a two's-complement 32-bit signed
    value, in the range [-2{^31}, 2{^31}). *)

val of_signed : int -> word
(** [of_signed x] is the canonical unsigned form of a signed value
    (inverse of {!to_signed} for in-range inputs). *)

val of_int32 : int32 -> word
val to_int32 : word -> int32

(** {1 Arithmetic} *)

val add : word -> word -> word
val sub : word -> word -> word
val mul : word -> word -> word

val mulh : word -> word -> word
(** High 32 bits of the signed x signed 64-bit product. *)

val mulhu : word -> word -> word
(** High 32 bits of the unsigned x unsigned 64-bit product. *)

val mulhsu : word -> word -> word
(** High 32 bits of the signed x unsigned 64-bit product. *)

val div : word -> word -> word
(** Signed division with RISC-V semantics: division by zero yields
    [-1]; overflow ([min_int / -1]) yields [min_int]. *)

val divu : word -> word -> word
(** Unsigned division; division by zero yields all-ones. *)

val rem : word -> word -> word
(** Signed remainder; remainder by zero yields the dividend. *)

val remu : word -> word -> word
(** Unsigned remainder; remainder by zero yields the dividend. *)

(** {1 Bitwise operations} *)

val logand : word -> word -> word
val logor : word -> word -> word
val logxor : word -> word -> word
val lognot : word -> word
val andn : word -> word -> word
val orn : word -> word -> word
val xnor : word -> word -> word

val sll : word -> int -> word
(** Logical left shift; only the low 5 bits of the amount are used. *)

val srl : word -> int -> word
(** Logical right shift; only the low 5 bits of the amount are used. *)

val sra : word -> int -> word
(** Arithmetic right shift; only the low 5 bits of the amount are used. *)

val rol : word -> int -> word
(** Rotate left by the low 5 bits of the amount. *)

val ror : word -> int -> word
(** Rotate right by the low 5 bits of the amount. *)

(** {1 Comparisons} *)

val lt_signed : word -> word -> bool
val lt_unsigned : word -> word -> bool
val ge_signed : word -> word -> bool
val ge_unsigned : word -> word -> bool
val min_signed : word -> word -> word
val max_signed : word -> word -> word
val min_unsigned : word -> word -> word
val max_unsigned : word -> word -> word

(** {1 Counting and permutation} *)

val popcount : word -> int
(** Number of set bits. *)

val clz : word -> int
(** Count of leading zero bits; [clz 0 = 32]. *)

val ctz : word -> int
(** Count of trailing zero bits; [ctz 0 = 32]. *)

val rev8 : word -> word
(** Reverse the order of the four bytes. *)

val orc_b : word -> word
(** Per byte: all-ones if the byte is nonzero, else zero (Zbb [orc.b]). *)

(** {1 Extension and fields} *)

val sext : width:int -> int -> word
(** [sext ~width x] sign-extends the low [width] bits of [x] to a
    32-bit word.  [1 <= width <= 32]. *)

val zext : width:int -> int -> word
(** [zext ~width x] zero-extends the low [width] bits of [x]. *)

val bits : hi:int -> lo:int -> word -> int
(** [bits ~hi ~lo w] extracts the inclusive bit field [w\[hi:lo\]],
    right-aligned.  Requires [0 <= lo <= hi <= 31]. *)

val bit : int -> word -> int
(** [bit i w] is bit [i] of [w], 0 or 1. *)

val set_bit : int -> bool -> word -> word
(** [set_bit i v w] is [w] with bit [i] forced to [v]. *)

val flip_bit : int -> word -> word
(** [flip_bit i w] toggles bit [i]. *)

(** {1 Single-bit operations (Zbs semantics: the index is masked to 5
    bits)} *)

val bset : word -> int -> word
val bclr : word -> int -> word
val binv : word -> int -> word
val bext : word -> int -> word
(** [bext w i] is bit [i land 31] of [w], as 0 or 1. *)

(** {1 Bytes <-> words (little endian)} *)

val get_byte : int -> word -> int
(** [get_byte i w] is byte [i] (0 = least significant). *)

val set_byte : int -> int -> word -> word
(** [set_byte i b w] replaces byte [i] with [b land 0xff]. *)

(** {1 Formatting} *)

val pp_hex : Format.formatter -> word -> unit
(** Prints as [0x%08x]. *)

val to_hex : word -> string
