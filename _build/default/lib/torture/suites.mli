(** Structured test suites for the coverage experiment (E1).

    Three suites play the roles of the paper's three inputs:

    - {!arch_suite}: the architectural-test analogue — walks every
      instruction type of the configured modules once with directed
      operands, but (like the real suite) funnels data through the
      argument registers only, leaving register-coverage gaps;
    - {!unit_suite}: the unit-test analogue — touches every GPR and
      FPR and the implemented CSRs, but only exercises a basic
      instruction subset;
    - random torture programs (from {!Torture.generate}) fill the
      remaining space but never execute the system instructions.

    Each suite is a list of named programs; coverage of their union is
    the experiment's "unified test suite". *)

val arch_suite : isa:S4e_isa.Isa_module.t list -> (string * S4e_asm.Program.t) list

val unit_suite : isa:S4e_isa.Isa_module.t list -> (string * S4e_asm.Program.t) list

val torture_suite :
  isa:S4e_isa.Isa_module.t list -> seeds:int list -> (string * S4e_asm.Program.t) list

val fuel : int
(** Sufficient fuel for any suite program. *)
