open S4e_isa
open S4e_isa.Instr
module Isa_module = S4e_isa.Isa_module
module Program = S4e_asm.Program

type config = {
  seed : int;
  segments : int;
  isa : Isa_module.t list;
  allow_loops : bool;
  allow_memory : bool;
  max_loop_iters : int;
  compress : bool;
}

let default_config =
  { seed = 1; segments = 20; isa = [ Isa_module.I; M; B ];
    allow_loops = true; allow_memory = true; max_loop_iters = 16;
    compress = false }

(* ---------------- item-level mini assembler ----------------

   Generated code is a list of items; branches reference label ids so
   byte offsets can be resolved after the (possibly compressed) layout
   is known.  Branch and jump items always stay 32-bit wide, so label
   addresses are independent of the offsets being patched in. *)

type item =
  | I of Instr.t
  | L of int  (* label definition *)
  | B of op_branch * Reg.t * Reg.t * int  (* conditional branch to label *)

let materialize ~base ~compress items =
  (* pass 1: sizes and label addresses *)
  let addr = ref base in
  let labels = Hashtbl.create 16 in
  let sized =
    List.map
      (fun item ->
        let here = !addr in
        let size =
          match item with
          | L id ->
              Hashtbl.replace labels id here;
              0
          | B _ -> 4
          | I i ->
              if compress then
                match Compressed.compress i with Some _ -> 2 | None -> 4
              else 4
        in
        addr := !addr + size;
        (here, item))
      items
  in
  (* pass 2: emit *)
  let buf = Buffer.create 1024 in
  let emit16 h =
    Buffer.add_char buf (Char.chr (h land 0xFF));
    Buffer.add_char buf (Char.chr ((h lsr 8) land 0xFF))
  in
  let emit32 w =
    emit16 (w land 0xFFFF);
    emit16 (w lsr 16)
  in
  List.iter
    (fun (here, item) ->
      match item with
      | L _ -> ()
      | B (op, r1, r2, label) ->
          let target = Hashtbl.find labels label in
          emit32 (Encode.encode (Branch (op, r1, r2, target - here)))
      | I i ->
          if compress then
            match Compressed.compress i with
            | Some h -> emit16 h
            | None -> emit32 (Encode.encode i)
          else emit32 (Encode.encode i))
    sized;
  { Program.chunks =
      [ { Program.addr = base; bytes = Buffer.contents buf; is_code = true } ];
    entry = base;
    symbols = [ ("_start", base) ] }

(* ---------------- generation ---------------- *)

(* Register roles: gp (x3) = data window base, tp (x4) = syscon address,
   x28/x29 = loop counter and bound.  Everything else in [pool] holds
   live data folded into the final checksum. *)
let pool =
  [| 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 18; 19; 20; 21; 22; 23; 24;
     25; 26; 27; 30; 31 |]

let data_base = S4e_soc.Memory_map.ram_base + 0x20000
let data_window = 1024

let li rd v =
  let v = v land 0xFFFF_FFFF in
  if v < 2048 || v >= 0xFFFF_F800 then
    [ I (Op_imm (ADDI, rd, Reg.zero, S4e_bits.Bits.to_signed v)) ]
  else
    let hi = (v + 0x800) lsr 12 land 0xFFFFF in
    let lo = S4e_bits.Bits.(to_signed (sext ~width:12 v)) in
    [ I (Lui (rd, hi)); I (Op_imm (ADDI, rd, rd, lo)) ]

let r_ops_for isa =
  let base = [ ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND ] in
  let m = [ MUL; MULH; MULHSU; MULHU; DIV; DIVU; REM; REMU ] in
  let b = [ ANDN; ORN; XNOR; ROL; ROR; MIN; MAX; MINU; MAXU ] in
  base
  @ (if List.mem Isa_module.M isa then m else [])
  @ if List.mem Isa_module.B isa then b else []

let i_ops_all = [ ADDI; SLTI; SLTIU; XORI; ORI; ANDI ]
let shift_ops_for isa =
  [ SLLI; SRLI; SRAI ] @ if List.mem Isa_module.B isa then [ RORI ] else []

let unary_ops_for isa =
  if List.mem Isa_module.B isa then
    [ CLZ; CTZ; CPOP; SEXT_B; SEXT_H; ZEXT_H; REV8; ORC_B ]
  else []

type gen = {
  rng : Random.State.t;
  cfg : config;
  mutable next_label : int;
  r_ops : op_r array;
  shift_ops : op_shift array;
  unary_ops : op_unary array;
}

let fresh_label g =
  let l = g.next_label in
  g.next_label <- l + 1;
  l

let pick g arr = arr.(Random.State.int g.rng (Array.length arr))
let reg g = pick g pool
let irange g lo hi = lo + Random.State.int g.rng (hi - lo + 1)

let random_alu g =
  match Random.State.int g.rng 4 with
  | 0 -> I (Op (pick g g.r_ops, reg g, reg g, reg g))
  | 1 ->
      I (Op_imm (List.nth i_ops_all (Random.State.int g.rng 6), reg g, reg g,
                 irange g (-2048) 2047))
  | 2 -> I (Shift_imm (pick g g.shift_ops, reg g, reg g, irange g 0 31))
  | _ ->
      if Array.length g.unary_ops > 0 then
        I (Unary (pick g g.unary_ops, reg g, reg g))
      else I (Op (pick g g.r_ops, reg g, reg g, reg g))

let alu_segment g = List.init (irange g 4 12) (fun _ -> random_alu g)

let memory_segment g =
  let off_w = irange g 0 ((data_window / 4) - 1) * 4 in
  let off_b = irange g 0 (data_window - 1) in
  let off_h = irange g 0 ((data_window / 2) - 1) * 2 in
  [ I (Store (SW, reg g, Reg.gp, off_w));
    I (Load (LW, reg g, Reg.gp, off_w));
    I (Store (SB, reg g, Reg.gp, off_b));
    I (Load (LBU, reg g, Reg.gp, off_b));
    I (Store (SH, reg g, Reg.gp, off_h));
    I (Load ((if Random.State.bool g.rng then LH else LHU), reg g, Reg.gp, off_h)) ]

let loop_segment g =
  let header = fresh_label g in
  let n = irange g 2 g.cfg.max_loop_iters in
  let body = List.init (irange g 2 6) (fun _ -> random_alu g) in
  li 28 0 @ li 29 n
  @ [ L header ]
  @ body
  @ [ I (Op_imm (ADDI, 28, 28, 1)); B (BLT, 28, 29, header) ]

let forward_branch_segment g =
  let skip = fresh_label g in
  let filler = List.init (irange g 1 5) (fun _ -> random_alu g) in
  let op = List.nth [ BEQ; BNE; BLT; BGE; BLTU; BGEU ] (Random.State.int g.rng 6) in
  [ B (op, reg g, reg g, skip) ] @ filler @ [ L skip ]

let fp_segment g =
  let f1 = Random.State.int g.rng 16 and f2 = Random.State.int g.rng 16 in
  let fd = Random.State.int g.rng 16 in
  let op = List.nth [ FADD; FSUB; FMUL; FMIN; FMAX; FSGNJ ] (Random.State.int g.rng 6) in
  [ I (Fmv_w_x (f1, reg g));
    I (Fmv_w_x (f2, reg g));
    I (Fp_op (op, fd, f1, f2));
    (* compare, then move bits back into the integer pool *)
    I (Fp_cmp (FLE, reg g, f1, f2));
    I (Fmv_x_w (reg g, fd)) ]

let amo_segment g =
  let off = irange g 0 ((data_window / 4) - 1) * 4 in
  (* x29 (outside the data pool) holds the 4-aligned target address, so
     no random destination can corrupt it mid-segment *)
  [ I (Op_imm (ADDI, 29, Reg.gp, off));
    I (Lr (reg g, 29));
    I (Sc (reg g, reg g, 29));
    I (Amo (AMOADD, reg g, reg g, 29));
    I (Amo (AMOXOR, reg g, reg g, 29));
    I (Amo ((if Random.State.bool g.rng then AMOMIN else AMOMAXU),
            reg g, reg g, 29)) ]

let csr_segment g =
  [ I (Csr (CSRRW, reg g, Csr.mscratch, reg g));
    I (Csr (CSRRS, reg g, Csr.mscratch, Reg.zero)) ]

let segment g =
  let choices =
    [ Some `Alu; Some `Alu;
      (if g.cfg.allow_memory then Some `Mem else None);
      (if g.cfg.allow_loops then Some `Loop else None);
      Some `Fwd;
      (if List.mem Isa_module.F g.cfg.isa then Some `Fp else None);
      (if List.mem Isa_module.A g.cfg.isa && g.cfg.allow_memory then Some `Amo
       else None);
      (if List.mem Isa_module.Zicsr g.cfg.isa then Some `Csr else None) ]
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  match pick g choices with
  | `Alu -> alu_segment g
  | `Mem -> memory_segment g
  | `Loop -> loop_segment g
  | `Fwd -> forward_branch_segment g
  | `Fp -> fp_segment g
  | `Amo -> amo_segment g
  | `Csr -> csr_segment g

let prologue g =
  let init_reg r = li r (Random.State.int g.rng 0x3FFFFFFF) in
  List.concat_map init_reg (Array.to_list pool)
  @ li Reg.gp data_base
  @ li Reg.tp S4e_soc.Memory_map.syscon_exit

let epilogue _g =
  (* fold the pool into a0 (x10), write the checksum to the syscon *)
  let fold =
    Array.to_list pool
    |> List.filter (fun r -> r <> 10)
    |> List.map (fun r -> I (Op (XOR, 10, 10, r)))
  in
  fold @ [ I (Store (SW, 10, Reg.tp, 0)); I Ebreak ]

let generate cfg =
  let g =
    { rng = Random.State.make [| cfg.seed |];
      cfg;
      next_label = 0;
      r_ops = Array.of_list (r_ops_for cfg.isa);
      shift_ops = Array.of_list (shift_ops_for cfg.isa);
      unary_ops = Array.of_list (unary_ops_for cfg.isa) }
  in
  let body = List.concat (List.init cfg.segments (fun _ -> segment g)) in
  let items = prologue g @ body @ epilogue g in
  materialize ~base:S4e_soc.Memory_map.ram_base ~compress:cfg.compress items

let fuel_bound cfg =
  let per_segment = (cfg.max_loop_iters + 2) * 10 in
  (200 + (cfg.segments * per_segment)) * 2
