module Isa_module = S4e_isa.Isa_module

let fuel = 200_000

let exit_ok = {|
  li t1, 0x00100000
  sw x0, 0(t1)
|}

let asm name src =
  match S4e_asm.Assembler.assemble src with
  | Ok p -> (name, p)
  | Error e ->
      failwith
        (Format.asprintf "suite program %s: %a" name S4e_asm.Assembler.pp_error
           e)

(* The I-module walk installs a trap handler so ecall/ebreak/mret all
   execute; wfi is deliberately not covered (it would halt the hart),
   which is this suite collection's analogue of the paper's residual
   1.3 % instruction-type gap. *)
let arch_i () =
  asm "arch-I"
    ({|
_start:
  la   t0, handler
  csrw mtvec, t0
  lui  a0, 0x12345
  auipc a1, 0
  jal  a2, j1
j1:
  la   a3, j2
  jalr a4, 0(a3)
j2:
  beq  x0, x0, b1
b1:
  bne  a0, x0, b2
b2:
  blt  x0, a0, b3
b3:
  bge  a0, x0, b4
b4:
  bltu x0, a0, b5
b5:
  bgeu a0, x0, b6
b6:
  la   a5, word
  lb   a0, 0(a5)
  lh   a1, 0(a5)
  lw   a2, 0(a5)
  lbu  a3, 1(a5)
  lhu  a4, 2(a5)
  sb   a0, 4(a5)
  sh   a1, 4(a5)
  sw   a2, 4(a5)
  addi a0, a1, 17
  slti a1, a2, 99
  sltiu a2, a3, 99
  xori a3, a4, 0x55
  ori  a4, a5, 0x0f
  andi a5, a0, 0x3c
  slli a0, a1, 3
  srli a1, a2, 2
  srai a2, a3, 1
  add  a0, a1, a2
  sub  a1, a2, a3
  sll  a2, a3, a4
  slt  a3, a4, a5
  sltu a4, a5, a0
  xor  a5, a0, a1
  srl  a0, a1, a2
  sra  a1, a2, a3
  or   a2, a3, a4
  and  a3, a4, a5
  fence
  fence.i
  ecall
  ebreak
|}
   ^ exit_ok
   ^ {|
handler:
  csrr t2, mepc
  addi t2, t2, 4
  csrw mepc, t2
  mret
  .data
word:
  .word 0xdeadbeef, 0
|})

let arch_m () =
  asm "arch-M"
    ({|
_start:
  li a0, 123456
  li a1, -789
  mul    a2, a0, a1
  mulh   a3, a0, a1
  mulhsu a4, a0, a1
  mulhu  a5, a0, a1
  div    a2, a0, a1
  divu   a3, a0, a1
  rem    a4, a0, a1
  remu   a5, a0, a1
|} ^ exit_ok)

let arch_b () =
  asm "arch-B"
    ({|
_start:
  li a0, 0x0ff0cafe
  li a1, 0x12345678
  andn a2, a0, a1
  orn  a3, a0, a1
  xnor a4, a0, a1
  rol  a5, a0, a1
  ror  a2, a1, a0
  rori a3, a0, 7
  min  a4, a0, a1
  max  a5, a0, a1
  minu a2, a0, a1
  maxu a3, a0, a1
  clz  a4, a0
  ctz  a5, a0
  cpop a2, a0
  sext.b a3, a0
  sext.h a4, a0
  zext.h a5, a0
  rev8 a2, a0
  orc.b a3, a0
  bset a4, a0, a1
  bclr a5, a0, a1
  binv a2, a0, a1
  bext a3, a0, a1
  bseti a4, a0, 11
  bclri a5, a0, 11
  binvi a2, a0, 11
  bexti a3, a0, 11
|} ^ exit_ok)

let arch_zicsr () =
  asm "arch-Zicsr"
    ({|
_start:
  li a0, 0x5a5a
  csrrw  a1, mscratch, a0
  csrrs  a2, mscratch, x0
  csrrc  a3, mscratch, a0
  csrrwi a4, mscratch, 21
  csrrsi a5, mscratch, 2
  csrrci a1, mscratch, 1
|} ^ exit_ok)

let arch_f () =
  asm "arch-F"
    ({|
_start:
  la   a0, fdata
  flw  fa0, 0(a0)
  flw  fa1, 4(a0)
  fadd.s  fa2, fa0, fa1
  fsub.s  fa3, fa0, fa1
  fmul.s  fa4, fa0, fa1
  fdiv.s  fa5, fa0, fa1
  fsqrt.s fa2, fa0
  fsgnj.s fa3, fa0, fa1
  fsgnjn.s fa4, fa0, fa1
  fsgnjx.s fa5, fa0, fa1
  fmin.s  fa2, fa0, fa1
  fmax.s  fa3, fa0, fa1
  feq.s   a1, fa0, fa1
  flt.s   a2, fa0, fa1
  fle.s   a3, fa0, fa1
  fcvt.w.s  a4, fa0
  fcvt.wu.s a5, fa0
  li a1, 42
  fcvt.s.w  fa4, a1
  fcvt.s.wu fa5, a1
  fmv.x.w   a2, fa0
  fmv.w.x   fa2, a2
  fsw  fa2, 8(a0)
|} ^ exit_ok
   ^ {|
  .data
fdata:
  .word 0x40490fdb, 0x3f800000, 0
|})

let arch_a () =
  asm "arch-A"
    ({|
_start:
  la   a0, cell
  li   a1, 25
  # lr/sc success path
  lr.w       a2, (a0)
  sc.w       a3, a1, (a0)
  # sc without a reservation must fail (writes 1)
  sc.w       a4, a1, (a0)
  amoswap.w  a2, a1, (a0)
  amoadd.w   a2, a1, (a0)
  amoxor.w   a2, a1, (a0)
  amoand.w   a2, a1, (a0)
  amoor.w    a2, a1, (a0)
  amomin.w   a2, a1, (a0)
  amomax.w   a2, a1, (a0)
  amominu.w  a2, a1, (a0)
  amomaxu.w  a2, a1, (a0)
|} ^ exit_ok
   ^ {|
  .data
cell:
  .word 7
|})

let arch_suite ~isa =
  List.filter_map
    (fun m ->
      match m with
      | Isa_module.I -> Some (arch_i ())
      | Isa_module.M -> Some (arch_m ())
      | Isa_module.B -> Some (arch_b ())
      | Isa_module.Zicsr -> Some (arch_zicsr ())
      | Isa_module.F -> Some (arch_f ())
      | Isa_module.A -> Some (arch_a ())
      | Isa_module.C -> None)
    isa

(* Unit suite: complete register files, basic instruction types only. *)

let unit_gpr_walk () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "_start:\n";
  for r = 1 to 31 do
    Buffer.add_string buf (Printf.sprintf "  li x%d, %d\n" r (r * 3))
  done;
  Buffer.add_string buf "  li a0, 0\n";
  for r = 1 to 31 do
    if r <> 10 then
      Buffer.add_string buf (Printf.sprintf "  add a0, a0, x%d\n" r)
  done;
  Buffer.add_string buf exit_ok;
  asm "unit-gpr-walk" (Buffer.contents buf)

let unit_fpr_walk () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "_start:\n  li a1, 0x3f800000\n";
  for r = 0 to 31 do
    Buffer.add_string buf (Printf.sprintf "  addi a1, a1, 1\n");
    Buffer.add_string buf (Printf.sprintf "  fmv.w.x f%d, a1\n" r)
  done;
  Buffer.add_string buf "  fmv.w.x f0, x0\n";
  for r = 1 to 31 do
    Buffer.add_string buf (Printf.sprintf "  fadd.s f0, f0, f%d\n" r)
  done;
  Buffer.add_string buf "  fmv.x.w a0, f0\n";
  Buffer.add_string buf exit_ok;
  asm "unit-fpr-walk" (Buffer.contents buf)

let unit_csr_walk () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "_start:\n";
  List.iter
    (fun csr ->
      Buffer.add_string buf
        (Printf.sprintf "  csrr a0, %s\n" (S4e_isa.Csr.name csr)))
    S4e_isa.Csr.implemented;
  Buffer.add_string buf "  li a1, 7\n  csrw mscratch, a1\n";
  Buffer.add_string buf exit_ok;
  asm "unit-csr-walk" (Buffer.contents buf)

let unit_suite ~isa =
  [ unit_gpr_walk () ]
  @ (if List.mem Isa_module.F isa then [ unit_fpr_walk () ] else [])
  @ if List.mem Isa_module.Zicsr isa then [ unit_csr_walk () ] else []

let torture_suite ~isa ~seeds =
  let gen_isa =
    List.filter
      (fun m ->
        match m with
        | Isa_module.I | Isa_module.M | Isa_module.B | Isa_module.F -> true
        | Isa_module.A | Isa_module.C | Isa_module.Zicsr -> false)
      isa
  in
  List.concat_map
    (fun seed ->
      let base =
        Torture.generate { Torture.default_config with seed; isa = gen_isa }
      in
      let compressed =
        if List.mem Isa_module.C isa then
          [ ( Printf.sprintf "torture-%d-rvc" seed,
              Torture.generate
                { Torture.default_config with
                  seed = seed + 1000; isa = gen_isa; compress = true } ) ]
        else []
      in
      (Printf.sprintf "torture-%d" seed, base) :: compressed)
    seeds
