lib/torture/torture.ml: Array Buffer Char Compressed Csr Encode Fun Hashtbl Instr List Random Reg S4e_asm S4e_bits S4e_isa S4e_soc
