lib/torture/suites.mli: S4e_asm S4e_isa
