lib/torture/torture.mli: S4e_asm S4e_isa
