lib/torture/suites.ml: Buffer Format List Printf S4e_asm S4e_isa Torture
