(** Random test-program generation — the RISC-V Torture equivalent.

    Generated programs are self-contained: they initialize registers
    with pseudo-random values, run a configurable number of segments
    (straight-line ALU runs, memory bursts into a private data window,
    bounded counted loops, forward branches), fold every live register
    into a checksum, and exit through the syscon with the checksum as
    status.  Termination is guaranteed by construction: loops are
    counted with inferable bounds (usable for the WCET soundness
    property test) and branches only jump forward.

    Deterministic in the seed. *)

type config = {
  seed : int;
  segments : int;  (** number of generated segments *)
  isa : S4e_isa.Isa_module.t list;  (** instruction selection *)
  allow_loops : bool;
  allow_memory : bool;
  max_loop_iters : int;  (** per generated counted loop *)
  compress : bool;  (** emit RVC forms where possible *)
}

val default_config : config
(** seed 1, 20 segments, RV32IM+B, loops and memory on, 16 iterations,
    no compression. *)

val generate : config -> S4e_asm.Program.t

val fuel_bound : config -> int
(** An instruction budget guaranteed to suffice for the generated
    program (used as run fuel). *)
