open Source

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Error of error

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error { line; message = s })) fmt

type section = Text | Data

(* ---------------- expression evaluation ---------------- *)

let rec eval_expr symbols e =
  match e with
  | Num n -> n
  | Sym s -> (
      match Hashtbl.find_opt symbols s with
      | Some v -> v
      | None -> raise (Builder.Build_error (Printf.sprintf "undefined symbol %S" s)))
  | Neg e -> -eval_expr symbols e
  | Add (a, b) -> eval_expr symbols a + eval_expr symbols b
  | Sub (a, b) -> eval_expr symbols a - eval_expr symbols b
  | Hi e -> Builder.hi20 (eval_expr symbols e)
  | Lo e -> Builder.lo12 (eval_expr symbols e)

(* ---------------- directive sizes ---------------- *)

let ascii_content line ops =
  match ops with
  | [ Ostr s ] -> s
  | _ -> fail line "expected one string operand"

let directive_size line name ops ~cursor =
  match name with
  | ".word" -> 4 * List.length ops
  | ".half" -> 2 * List.length ops
  | ".byte" -> List.length ops
  | ".ascii" -> String.length (ascii_content line ops)
  | ".asciz" | ".string" -> String.length (ascii_content line ops) + 1
  | ".space" | ".zero" -> (
      match ops with
      | [ Oimm (Num n) ] when n >= 0 -> n
      | _ -> fail line "%s expects a nonnegative literal count" name)
  | ".align" -> (
      match ops with
      | [ Oimm (Num n) ] when n >= 0 && n < 16 ->
          let a = 1 lsl n in
          let rem = cursor land (a - 1) in
          if rem = 0 then 0 else a - rem
      | _ -> fail line ".align expects a small literal power")
  | _ -> fail line "unknown directive %s" name

(* ---------------- the assembler ---------------- *)

type chunk_builder = {
  mutable chunk_addr : int;
  buf : Buffer.t;
  mutable done_chunks : Program.chunk list;
  is_code : bool;
}

let new_builder ~is_code addr =
  { chunk_addr = addr; buf = Buffer.create 256; done_chunks = []; is_code }

let builder_cursor cb = cb.chunk_addr + Buffer.length cb.buf

let builder_seal cb =
  if Buffer.length cb.buf > 0 then begin
    cb.done_chunks <-
      { Program.addr = cb.chunk_addr; bytes = Buffer.contents cb.buf;
        is_code = cb.is_code }
      :: cb.done_chunks;
    Buffer.clear cb.buf
  end

let builder_set_cursor cb addr =
  if addr <> builder_cursor cb then begin
    builder_seal cb;
    cb.chunk_addr <- addr
  end

let emit_le cb width v =
  for i = 0 to width - 1 do
    Buffer.add_char cb.buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let assemble ?(text_base = S4e_soc.Memory_map.ram_base)
    ?(data_base = S4e_soc.Memory_map.ram_base + 0x10000) src =
  try
    let stmts = try parse_string src with
      | Parse_error (line, message) -> raise (Error { line; message })
    in
    let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
    (* -------- pass 1: layout -------- *)
    let text_cursor = ref text_base and data_cursor = ref data_base in
    let section = ref Text in
    let cursor () = match !section with Text -> text_cursor | Data -> data_cursor in
    List.iter
      (fun (line, stmt) ->
        let cur = cursor () in
        match stmt with
        | Slabel name ->
            if Hashtbl.mem symbols name then
              fail line "duplicate label %S" name;
            Hashtbl.replace symbols name !cur
        | Sdirective (".text", []) -> section := Text
        | Sdirective (".data", []) -> section := Data
        | Sdirective (".globl", _) | Sdirective (".global", _) -> ()
        | Sdirective (".equ", [ Oimm (Sym name); Oimm e ])
        | Sdirective (".set", [ Oimm (Sym name); Oimm e ]) -> (
            try Hashtbl.replace symbols name (eval_expr symbols e)
            with Builder.Build_error m -> fail line "%s" m)
        | Sdirective (".equ", _) | Sdirective (".set", _) ->
            fail line ".equ expects a name and a value"
        | Sdirective (".org", [ Oimm e ]) -> (
            try cur := eval_expr symbols e
            with Builder.Build_error m -> fail line "%s" m)
        | Sdirective (".org", _) -> fail line ".org expects one expression"
        | Sdirective (name, ops) ->
            cur := !cur + directive_size line name ops ~cursor:!cur
        | Sinstr (m, ops) -> (
            try cur := !cur + Builder.size_of m ops
            with Builder.Build_error msg -> fail line "%s" msg))
      stmts;
    (* -------- pass 2: encode -------- *)
    let text_cb = new_builder ~is_code:true text_base in
    let data_cb = new_builder ~is_code:false data_base in
    let section = ref Text in
    let cb () = match !section with Text -> text_cb | Data -> data_cb in
    let eval e = eval_expr symbols e in
    List.iter
      (fun (line, stmt) ->
        let b = cb () in
        match stmt with
        | Slabel name ->
            (* Sanity: the pass-1 address must match the pass-2 cursor. *)
            let expected = Hashtbl.find symbols name in
            if expected <> builder_cursor b then
              fail line
                "internal layout divergence at %S (pass1 0x%x, pass2 0x%x)"
                name expected (builder_cursor b)
        | Sdirective (".text", []) -> section := Text
        | Sdirective (".data", []) -> section := Data
        | Sdirective (".globl", _) | Sdirective (".global", _)
        | Sdirective (".equ", _) | Sdirective (".set", _) -> ()
        | Sdirective (".org", [ Oimm e ]) ->
            builder_set_cursor b (eval e)
        | Sdirective (".org", _) -> assert false
        | Sdirective (".word", ops) ->
            List.iter
              (fun o ->
                match o with
                | Oimm e -> (
                    try emit_le b 4 (eval e)
                    with Builder.Build_error m -> fail line "%s" m)
                | _ -> fail line ".word expects expressions")
              ops
        | Sdirective (".half", ops) ->
            List.iter
              (fun o ->
                match o with
                | Oimm e -> (
                    try emit_le b 2 (eval e)
                    with Builder.Build_error m -> fail line "%s" m)
                | _ -> fail line ".half expects expressions")
              ops
        | Sdirective (".byte", ops) ->
            List.iter
              (fun o ->
                match o with
                | Oimm e -> (
                    try emit_le b 1 (eval e)
                    with Builder.Build_error m -> fail line "%s" m)
                | _ -> fail line ".byte expects expressions")
              ops
        | Sdirective (".ascii", ops) ->
            Buffer.add_string b.buf (ascii_content line ops)
        | Sdirective ((".asciz" | ".string"), ops) ->
            Buffer.add_string b.buf (ascii_content line ops);
            Buffer.add_char b.buf '\000'
        | Sdirective ((".space" | ".zero"), [ Oimm (Num n) ]) ->
            for _ = 1 to n do Buffer.add_char b.buf '\000' done
        | Sdirective ((".space" | ".zero"), _) -> assert false
        | Sdirective (".align", ops) ->
            let pad =
              directive_size line ".align" ops ~cursor:(builder_cursor b)
            in
            for _ = 1 to pad do Buffer.add_char b.buf '\000' done
        | Sdirective (name, _) -> fail line "unknown directive %s" name
        | Sinstr (m, ops) -> (
            let pc = builder_cursor b in
            let planned = try Builder.size_of m ops with
              | Builder.Build_error msg -> fail line "%s" msg
            in
            match Builder.build m ops ~pc ~eval with
            | instrs ->
                let emitted = 4 * List.length instrs in
                if emitted <> planned then
                  fail line "internal size divergence for %S" m;
                List.iter
                  (fun i -> emit_le b 4 (S4e_isa.Encode.encode i))
                  instrs
            | exception Builder.Build_error msg -> fail line "%s" msg))
      stmts;
    builder_seal text_cb;
    builder_seal data_cb;
    let chunks = List.rev text_cb.done_chunks @ List.rev data_cb.done_chunks in
    let entry =
      match Hashtbl.find_opt symbols "_start" with
      | Some a -> a
      | None -> text_base
    in
    let symbol_list =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols []
      |> List.sort compare
    in
    Ok { Program.chunks; entry; symbols = symbol_list }
  with Error e -> Result.Error e

let assemble_exn ?text_base ?data_base src =
  match assemble ?text_base ?data_base src with
  | Ok p -> p
  | Result.Error e ->
      failwith (Format.asprintf "assembly failed: %a" pp_error e)
