(** Loadable program images.

    The ecosystem's substitute for ELF objects: a list of byte chunks
    with load addresses, an entry point, and a symbol table.  Produced
    by the assembler and by the programmatic generators (torture,
    suites, BMI kernels); consumed by the loader, the CFG
    reconstructor, and the fault injector (which needs to know where
    code lives). *)

type word = S4e_bits.Bits.word

type chunk = {
  addr : word;
  bytes : string;
  is_code : bool;  (** true for text-section chunks *)
}

type t = {
  chunks : chunk list;
  entry : word;
  symbols : (string * word) list;
}

val empty : t

val symbol : t -> string -> word option

val code_range : t -> (word * word) option
(** [(lo, hi)] spanning all code chunks, [hi] exclusive. *)

val size : t -> int
(** Total bytes over all chunks. *)

val load : t -> S4e_mem.Sparse_mem.t -> unit

val load_machine : t -> S4e_cpu.Machine.t -> unit
(** Loads the image, flushes the TB cache, and resets the hart at the
    entry point. *)

val of_instrs : ?base:word -> ?compress:bool -> S4e_isa.Instr.t list -> t
(** Builds a single-chunk code image from an instruction list.  With
    [compress], every instruction that has an RVC form is emitted as 16
    bits — callers must not use pc-relative operands in that case, or
    must compute them against the compressed layout. *)

val instr_words : ?base:word -> S4e_isa.Instr.t list -> (word * int * S4e_isa.Instr.t) list
(** [(pc, size, instr)] layout of [of_instrs ~compress:false]. *)

(** {1 Binary image files}

    A minimal object format (the repo's ELF substitute) so CLI stages
    can hand images to each other: magic ["S4EP"], version, entry,
    chunk table, symbol table, all little-endian.  Round-trips exactly
    (property-tested). *)

val to_bytes : t -> string
val of_bytes : string -> (t, string) result

val save : t -> string -> unit
(** [save t path] writes the image file. *)

val load_file : string -> (t, string) result
