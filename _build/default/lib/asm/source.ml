type expr =
  | Num of int
  | Sym of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Hi of expr
  | Lo of expr

type operand =
  | Oreg of S4e_isa.Reg.t
  | Ofreg of S4e_isa.Reg.t
  | Oimm of expr
  | Omem of expr * S4e_isa.Reg.t
  | Ostr of string

type stmt =
  | Slabel of string
  | Sdirective of string * operand list
  | Sinstr of string * operand list

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let rec pp_expr fmt = function
  | Num n -> Format.fprintf fmt "%d" n
  | Sym s -> Format.pp_print_string fmt s
  | Neg e -> Format.fprintf fmt "-%a" pp_expr e
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | Hi e -> Format.fprintf fmt "%%hi(%a)" pp_expr e
  | Lo e -> Format.fprintf fmt "%%lo(%a)" pp_expr e

(* ---------------- character-level scanning helpers ---------------- *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let strip_comment s =
  let n = String.length s in
  let rec go i in_str =
    if i >= n then s
    else
      match s.[i] with
      | '"' -> go (i + 1) (not in_str)
      | '#' when not in_str -> String.sub s 0 i
      | '/' when (not in_str) && i + 1 < n && s.[i + 1] = '/' ->
          String.sub s 0 i
      | _ -> go (i + 1) in_str
  in
  go 0 false

(* Split a comma-separated operand list, respecting parentheses and
   string quotes. *)
let split_operands line s =
  let n = String.length s in
  let parts = ref [] in
  let start = ref 0 in
  let depth = ref 0 in
  let in_str = ref false in
  for i = 0 to n - 1 do
    match s.[i] with
    | '"' -> in_str := not !in_str
    | '(' when not !in_str -> incr depth
    | ')' when not !in_str ->
        decr depth;
        if !depth < 0 then fail line "unbalanced parentheses"
    | ',' when (not !in_str) && !depth = 0 ->
        parts := String.sub s !start (i - !start) :: !parts;
        start := i + 1
    | _ -> ()
  done;
  if !in_str then fail line "unterminated string";
  if !depth <> 0 then fail line "unbalanced parentheses";
  let last = String.sub s !start (n - !start) in
  List.rev_map String.trim (last :: !parts)

(* ---------------- expression parser ---------------- *)

type scanner = { src : string; mutable pos : int; line : int }

let peek sc = if sc.pos < String.length sc.src then Some sc.src.[sc.pos] else None

let advance sc = sc.pos <- sc.pos + 1

let skip_ws sc =
  while
    match peek sc with
    | Some (' ' | '\t') -> true
    | Some _ | None -> false
  do
    advance sc
  done

let scan_ident sc =
  let start = sc.pos in
  while match peek sc with Some c when is_ident_char c -> true | _ -> false do
    advance sc
  done;
  String.sub sc.src start (sc.pos - start)

let scan_number sc =
  let start = sc.pos in
  (match peek sc with Some '-' -> advance sc | _ -> ());
  while
    match peek sc with
    | Some c
      when (c >= '0' && c <= '9')
           || (c >= 'a' && c <= 'f')
           || (c >= 'A' && c <= 'F')
           || c = 'x' || c = 'X' || c = 'o' || c = 'b' -> true
    | _ -> false
  do
    advance sc
  done;
  let text = String.sub sc.src start (sc.pos - start) in
  match int_of_string_opt text with
  | Some v -> v
  | None -> fail sc.line "bad numeric literal %S" text

let rec parse_sum sc =
  let lhs = parse_term sc in
  let rec go lhs =
    skip_ws sc;
    match peek sc with
    | Some '+' ->
        advance sc;
        skip_ws sc;
        go (Add (lhs, parse_term sc))
    | Some '-' ->
        advance sc;
        skip_ws sc;
        go (Sub (lhs, parse_term sc))
    | Some _ | None -> lhs
  in
  go lhs

and parse_term sc =
  skip_ws sc;
  match peek sc with
  | Some '%' ->
      advance sc;
      let kind = scan_ident sc in
      skip_ws sc;
      (match peek sc with
      | Some '(' -> advance sc
      | _ -> fail sc.line "expected '(' after %%%s" kind);
      let inner = parse_sum sc in
      skip_ws sc;
      (match peek sc with
      | Some ')' -> advance sc
      | _ -> fail sc.line "expected ')'");
      (match kind with
      | "hi" -> Hi inner
      | "lo" -> Lo inner
      | _ -> fail sc.line "unknown relocation operator %%%s" kind)
  | Some '(' ->
      advance sc;
      let inner = parse_sum sc in
      skip_ws sc;
      (match peek sc with
      | Some ')' -> advance sc
      | _ -> fail sc.line "expected ')'");
      inner
  | Some '-' ->
      advance sc;
      Neg (parse_term sc)
  | Some '\'' ->
      advance sc;
      let c =
        match peek sc with
        | Some '\\' -> (
            advance sc;
            match peek sc with
            | Some 'n' -> '\n'
            | Some 't' -> '\t'
            | Some '0' -> '\000'
            | Some '\\' -> '\\'
            | Some '\'' -> '\''
            | Some c -> c
            | None -> fail sc.line "unterminated character literal")
        | Some c -> c
        | None -> fail sc.line "unterminated character literal"
      in
      advance sc;
      (match peek sc with
      | Some '\'' -> advance sc
      | _ -> fail sc.line "unterminated character literal");
      Num (Char.code c)
  | Some c when c >= '0' && c <= '9' -> Num (scan_number sc)
  | Some c when is_ident_start c -> Sym (scan_ident sc)
  | Some c -> fail sc.line "unexpected character %C in expression" c
  | None -> fail sc.line "unexpected end of expression"

let parse_expr line s =
  let sc = { src = s; pos = 0; line } in
  let e = parse_sum sc in
  skip_ws sc;
  if sc.pos <> String.length s then
    fail line "trailing characters in expression %S" s;
  e

(* ---------------- operand parsing ---------------- *)

let parse_string_literal line s =
  (* s includes the surrounding quotes *)
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail line "malformed string literal";
  let buf = Buffer.create (n - 2) in
  let rec go i =
    if i >= n - 1 then Buffer.contents buf
    else
      match s.[i] with
      | '\\' when i + 1 < n - 1 ->
          let c =
            match s.[i + 1] with
            | 'n' -> '\n'
            | 't' -> '\t'
            | '0' -> '\000'
            | 'r' -> '\r'
            | c -> c
          in
          Buffer.add_char buf c;
          go (i + 2)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 1

let parse_operand line s =
  let s = String.trim s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '"' then Ostr (parse_string_literal line s)
  else
    match S4e_isa.Reg.of_name s with
    | Some r -> Oreg r
    | None -> (
        match S4e_isa.Reg.f_of_name s with
        | Some r -> Ofreg r
        | None ->
            (* offset(base) ? *)
            let n = String.length s in
            if n > 0 && s.[n - 1] = ')' then
              match String.index_opt s '(' with
              | Some i when not (String.length s > 1 && s.[0] = '%') -> (
                  let off_text = String.trim (String.sub s 0 i) in
                  let reg_text = String.sub s (i + 1) (n - i - 2) in
                  match S4e_isa.Reg.of_name (String.trim reg_text) with
                  | Some base ->
                      let off =
                        if off_text = "" then Num 0
                        else parse_expr line off_text
                      in
                      Omem (off, base)
                  | None -> Oimm (parse_expr line s))
              | Some _ | None -> Oimm (parse_expr line s)
            else Oimm (parse_expr line s))

(* ---------------- line parsing ---------------- *)

let parse_line lineno text acc =
  let text = strip_comment text in
  let rec strip_labels text acc =
    let text = String.trim text in
    match String.index_opt text ':' with
    | Some i
      when i > 0
           && is_ident_start text.[0]
           && String.for_all is_ident_char (String.sub text 0 i) ->
        let label = String.sub text 0 i in
        let rest = String.sub text (i + 1) (String.length text - i - 1) in
        strip_labels rest ((lineno, Slabel label) :: acc)
    | Some _ | None -> (text, acc)
  in
  let text, acc = strip_labels text acc in
  if text = "" then acc
  else
    (* split mnemonic from operands at the first whitespace *)
    let ws_index =
      let n = String.length text in
      let rec go i =
        if i >= n then None
        else if text.[i] = ' ' || text.[i] = '\t' then Some i
        else go (i + 1)
      in
      go 0
    in
    let mnemonic, rest =
      match ws_index with
      | None -> (text, "")
      | Some i ->
          ( String.sub text 0 i,
            String.sub text (i + 1) (String.length text - i - 1) )
    in
    let mnemonic = String.lowercase_ascii (String.trim mnemonic) in
    let rest = String.trim rest in
    let operands =
      if rest = "" then [] else List.map (parse_operand lineno) (split_operands lineno rest)
    in
    if mnemonic.[0] = '.' then (lineno, Sdirective (mnemonic, operands)) :: acc
    else (lineno, Sinstr (mnemonic, operands)) :: acc

let parse_string src =
  let lines = String.split_on_char '\n' src in
  let _, acc =
    List.fold_left
      (fun (lineno, acc) text -> (lineno + 1, parse_line lineno text acc))
      (1, []) lines
  in
  List.rev acc
