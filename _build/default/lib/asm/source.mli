(** Assembly source representation and parsing.

    The surface syntax is the GNU-as RISC-V dialect restricted to what
    the ecosystem needs: labels, a directive set ([.text], [.data],
    [.org], [.align], [.word], [.half], [.byte], [.ascii], [.asciz],
    [.space], [.equ], [.globl]), instructions with register / immediate
    / [offset(base)] operands, [%hi]/[%lo] relocation operators, and
    [#]-or-[//] comments. *)

type expr =
  | Num of int
  | Sym of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Hi of expr  (** [%hi(e)]: upper 20 bits, rounding-compensated *)
  | Lo of expr  (** [%lo(e)]: signed low 12 bits *)

type operand =
  | Oreg of S4e_isa.Reg.t
  | Ofreg of S4e_isa.Reg.t
  | Oimm of expr
  | Omem of expr * S4e_isa.Reg.t  (** [offset(base)] *)
  | Ostr of string

type stmt =
  | Slabel of string
  | Sdirective of string * operand list
  | Sinstr of string * operand list

exception Parse_error of int * string
(** (line number, message). *)

val parse_string : string -> (int * stmt) list
(** Parses a whole source file into (line, statement) pairs.
    @raise Parse_error on malformed input. *)

val pp_expr : Format.formatter -> expr -> unit
