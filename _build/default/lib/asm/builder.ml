open S4e_isa
open S4e_isa.Instr
open Source

exception Build_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Build_error s)) fmt

(* ---------------- operand shape helpers ---------------- *)

let reg = function
  | Oreg r -> r
  | o ->
      fail "expected a register, got %s"
        (match o with
        | Ofreg _ -> "an FP register"
        | Oimm _ -> "an immediate"
        | Omem _ -> "a memory operand"
        | Ostr _ -> "a string"
        | Oreg _ -> assert false)

let freg = function
  | Ofreg r -> r
  | Oreg _ -> fail "expected an FP register, got an integer register"
  | _ -> fail "expected an FP register"

let imm = function
  | Oimm e -> e
  | Oreg r -> fail "expected an immediate, got register %s" (Reg.abi_name r)
  | _ -> fail "expected an immediate"

let mem = function
  | Omem (off, base) -> (off, base)
  | Oimm e -> (e, Reg.zero)  (* bare address: offset from x0 *)
  | _ -> fail "expected a memory operand offset(base)"

let check_signed ~bits what v =
  if v < -(1 lsl (bits - 1)) || v >= 1 lsl (bits - 1) then
    fail "%s %d does not fit in %d signed bits" what v bits;
  v

let check_branch_off v =
  if v land 1 <> 0 then fail "branch target is not 2-byte aligned";
  ignore (check_signed ~bits:13 "branch offset" v);
  v

let check_jal_off v =
  if v land 1 <> 0 then fail "jump target is not 2-byte aligned";
  ignore (check_signed ~bits:21 "jump offset" v);
  v

let check_shamt v =
  if v < 0 || v > 31 then fail "shift amount %d out of range" v;
  v

let check_u20 what v =
  if v < 0 || v >= 1 lsl 20 then fail "%s %d does not fit in 20 bits" what v;
  v

(* A CSR operand is a name ("mstatus") or a numeric expression. *)
let csr_of ~eval e =
  match e with
  | Sym s -> (
      match Csr.of_name s with
      | Some a -> a
      | None ->
          let v = eval e in
          if Csr.valid v then v else fail "bad CSR %s" s)
  | _ ->
      let v = eval e in
      if Csr.valid v then v else fail "bad CSR address 0x%x" v

(* ---------------- mnemonic tables ---------------- *)

let r_ops =
  [ ("add", ADD); ("sub", SUB); ("sll", SLL); ("slt", SLT); ("sltu", SLTU);
    ("xor", XOR); ("srl", SRL); ("sra", SRA); ("or", OR); ("and", AND);
    ("mul", MUL); ("mulh", MULH); ("mulhsu", MULHSU); ("mulhu", MULHU);
    ("div", DIV); ("divu", DIVU); ("rem", REM); ("remu", REMU);
    ("andn", ANDN); ("orn", ORN); ("xnor", XNOR); ("rol", ROL); ("ror", ROR);
    ("min", MIN); ("max", MAX); ("minu", MINU); ("maxu", MAXU);
    ("bset", BSET); ("bclr", BCLR); ("binv", BINV); ("bext", BEXT) ]

let i_ops =
  [ ("addi", ADDI); ("slti", SLTI); ("sltiu", SLTIU); ("xori", XORI);
    ("ori", ORI); ("andi", ANDI) ]

let shift_ops =
  [ ("slli", SLLI); ("srli", SRLI); ("srai", SRAI); ("rori", RORI);
    ("bseti", BSETI); ("bclri", BCLRI); ("binvi", BINVI); ("bexti", BEXTI) ]

let unary_ops =
  [ ("clz", CLZ); ("ctz", CTZ); ("cpop", CPOP); ("sext.b", SEXT_B);
    ("sext.h", SEXT_H); ("zext.h", ZEXT_H); ("rev8", REV8); ("orc.b", ORC_B) ]

let load_ops = [ ("lb", LB); ("lh", LH); ("lw", LW); ("lbu", LBU); ("lhu", LHU) ]
let store_ops = [ ("sb", SB); ("sh", SH); ("sw", SW) ]

let branch_ops =
  [ ("beq", BEQ); ("bne", BNE); ("blt", BLT); ("bge", BGE); ("bltu", BLTU);
    ("bgeu", BGEU) ]

let csr_ops =
  [ ("csrrw", CSRRW); ("csrrs", CSRRS); ("csrrc", CSRRC);
    ("csrrwi", CSRRWI); ("csrrsi", CSRRSI); ("csrrci", CSRRCI) ]

let fp_ops =
  [ ("fadd.s", FADD); ("fsub.s", FSUB); ("fmul.s", FMUL); ("fdiv.s", FDIV);
    ("fmin.s", FMIN); ("fmax.s", FMAX); ("fsgnj.s", FSGNJ);
    ("fsgnjn.s", FSGNJN); ("fsgnjx.s", FSGNJX) ]

let fp_cmp_ops = [ ("feq.s", FEQ); ("flt.s", FLT); ("fle.s", FLE) ]

let amo_ops =
  [ ("amoswap.w", AMOSWAP); ("amoadd.w", AMOADD); ("amoxor.w", AMOXOR);
    ("amoand.w", AMOAND); ("amoor.w", AMOOR); ("amomin.w", AMOMIN);
    ("amomax.w", AMOMAX); ("amominu.w", AMOMINU); ("amomaxu.w", AMOMAXU) ]

let nullary =
  [ ("fence", Fence); ("fence.i", Fence_i); ("ecall", Ecall);
    ("ebreak", Ebreak); ("mret", Mret); ("wfi", Wfi) ]

(* Pseudo branches that swap their operands: (pseudo, real). *)
let swapped_branches =
  [ ("bgt", BLT); ("ble", BGE); ("bgtu", BLTU); ("bleu", BGEU) ]

(* Pseudo branches against zero: (pseudo, real, zero_first). *)
let zero_branches =
  [ ("beqz", BEQ, false); ("bnez", BNE, false); ("bltz", BLT, false);
    ("bgez", BGE, false); ("blez", BGE, true); ("bgtz", BLT, true) ]

let fits12 v = v >= -2048 && v < 2048

(* Constant folding over symbol-free expressions; used to pick the li
   expansion without consulting the (pass-dependent) symbol table, so
   pass 1 and pass 2 always agree. *)
let rec try_eval_const = function
  | Num n -> Some n
  | Sym _ -> None
  | Neg e -> Option.map (fun v -> -v) (try_eval_const e)
  | Add (a, b) -> (
      match (try_eval_const a, try_eval_const b) with
      | Some x, Some y -> Some (x + y)
      | _, _ -> None)
  | Sub (a, b) -> (
      match (try_eval_const a, try_eval_const b) with
      | Some x, Some y -> Some (x - y)
      | _, _ -> None)
  | Hi _ | Lo _ -> None

let li_size e =
  match try_eval_const e with Some n when fits12 n -> 4 | Some _ | None -> 8

let hi20 v = ((v + 0x800) lsr 12) land 0xFFFFF
let lo12 v = S4e_bits.Bits.(to_signed (sext ~width:12 v))

(* ---------------- size computation (pass 1) ---------------- *)

let size_of mnemonic operands =
  let one = 4 and two = 8 in
  match (mnemonic, operands) with
  | "li", [ _; Oimm e ] -> li_size e
  | "la", [ _; _ ] -> two
  | _ ->
      if List.mem_assoc mnemonic r_ops || List.mem_assoc mnemonic i_ops
         || List.mem_assoc mnemonic amo_ops
         || List.mem mnemonic [ "lr.w"; "sc.w" ]
         || List.mem_assoc mnemonic shift_ops
         || List.mem_assoc mnemonic unary_ops
         || List.mem_assoc mnemonic load_ops
         || List.mem_assoc mnemonic store_ops
         || List.mem_assoc mnemonic branch_ops
         || List.mem_assoc mnemonic csr_ops
         || List.mem_assoc mnemonic fp_ops
         || List.mem_assoc mnemonic fp_cmp_ops
         || List.mem_assoc mnemonic nullary
         || List.mem_assoc mnemonic swapped_branches
         || List.exists (fun (p, _, _) -> p = mnemonic) zero_branches
         || List.mem mnemonic
              [ "lui"; "auipc"; "jal"; "jalr"; "flw"; "fsw"; "fsqrt.s";
                "fcvt.w.s"; "fcvt.wu.s"; "fcvt.s.w"; "fcvt.s.wu"; "fmv.x.w";
                "fmv.w.x"; "nop"; "mv"; "not"; "neg"; "seqz"; "snez"; "sltz";
                "sgtz"; "j"; "jr"; "ret"; "call"; "csrr"; "csrw"; "csrs";
                "csrc"; "fmv.s"; "fabs.s"; "fneg.s" ]
      then one
      else fail "unknown mnemonic %S" mnemonic

(* ---------------- building (pass 2) ---------------- *)

let build mnemonic operands ~pc ~eval =
  let ev e = eval e in
  let target_off e = ev e - pc in
  match (mnemonic, operands) with
  (* real R/I/shift/unary *)
  | m, [ rd; rs1; rs2 ] when List.mem_assoc m r_ops ->
      [ Op (List.assoc m r_ops, reg rd, reg rs1, reg rs2) ]
  | m, [ rd; rs1; i ] when List.mem_assoc m i_ops ->
      [ Op_imm (List.assoc m i_ops, reg rd, reg rs1,
                check_signed ~bits:12 "immediate" (ev (imm i))) ]
  | m, [ rd; rs1; i ] when List.mem_assoc m shift_ops ->
      [ Shift_imm (List.assoc m shift_ops, reg rd, reg rs1,
                   check_shamt (ev (imm i))) ]
  | m, [ rd; rs1 ] when List.mem_assoc m unary_ops ->
      [ Unary (List.assoc m unary_ops, reg rd, reg rs1) ]
  (* loads / stores *)
  | m, [ rd; addr ] when List.mem_assoc m load_ops ->
      let off, base = mem addr in
      [ Load (List.assoc m load_ops, reg rd, base,
              check_signed ~bits:12 "load offset" (ev off)) ]
  | m, [ src; addr ] when List.mem_assoc m store_ops ->
      let off, base = mem addr in
      [ Store (List.assoc m store_ops, reg src, base,
               check_signed ~bits:12 "store offset" (ev off)) ]
  (* branches *)
  | m, [ rs1; rs2; t ] when List.mem_assoc m branch_ops ->
      [ Branch (List.assoc m branch_ops, reg rs1, reg rs2,
                check_branch_off (target_off (imm t))) ]
  | m, [ rs1; rs2; t ] when List.mem_assoc m swapped_branches ->
      [ Branch (List.assoc m swapped_branches, reg rs2, reg rs1,
                check_branch_off (target_off (imm t))) ]
  | m, [ rs1; t ] when List.exists (fun (p, _, _) -> p = m) zero_branches ->
      let _, op, zero_first =
        List.find (fun (p, _, _) -> p = m) zero_branches
      in
      let off = check_branch_off (target_off (imm t)) in
      if zero_first then [ Branch (op, Reg.zero, reg rs1, off) ]
      else [ Branch (op, reg rs1, Reg.zero, off) ]
  (* jumps *)
  | "jal", [ t ] -> [ Jal (Reg.ra, check_jal_off (target_off (imm t))) ]
  | "jal", [ rd; t ] -> [ Jal (reg rd, check_jal_off (target_off (imm t))) ]
  | "j", [ t ] -> [ Jal (Reg.zero, check_jal_off (target_off (imm t))) ]
  | "call", [ t ] -> [ Jal (Reg.ra, check_jal_off (target_off (imm t))) ]
  | "jalr", [ rs1 ] -> [ Jalr (Reg.ra, reg rs1, 0) ]
  | "jalr", [ rd; Omem (off, base) ] ->
      [ Jalr (reg rd, base, check_signed ~bits:12 "jalr offset" (ev off)) ]
  | "jalr", [ rd; rs1; i ] ->
      [ Jalr (reg rd, reg rs1, check_signed ~bits:12 "jalr offset" (ev (imm i))) ]
  | "jr", [ rs1 ] -> [ Jalr (Reg.zero, reg rs1, 0) ]
  | "ret", [] -> [ Jalr (Reg.zero, Reg.ra, 0) ]
  (* upper immediates *)
  | "lui", [ rd; i ] -> [ Lui (reg rd, check_u20 "lui immediate" (ev (imm i))) ]
  | "auipc", [ rd; i ] ->
      [ Auipc (reg rd, check_u20 "auipc immediate" (ev (imm i))) ]
  (* system *)
  | m, [] when List.mem_assoc m nullary -> [ List.assoc m nullary ]
  | m, [ rd; c; s ] when List.mem_assoc m csr_ops ->
      let op = List.assoc m csr_ops in
      let addr = csr_of ~eval (imm c) in
      let src =
        match op with
        | CSRRW | CSRRS | CSRRC -> reg s
        | CSRRWI | CSRRSI | CSRRCI ->
            let v = ev (imm s) in
            if v < 0 || v > 31 then fail "CSR immediate %d out of range" v;
            v
      in
      [ Csr (op, reg rd, addr, src) ]
  | "csrr", [ rd; c ] -> [ Csr (CSRRS, reg rd, csr_of ~eval (imm c), Reg.zero) ]
  | "csrw", [ c; s ] -> [ Csr (CSRRW, Reg.zero, csr_of ~eval (imm c), reg s) ]
  | "csrs", [ c; s ] -> [ Csr (CSRRS, Reg.zero, csr_of ~eval (imm c), reg s) ]
  | "csrc", [ c; s ] -> [ Csr (CSRRC, Reg.zero, csr_of ~eval (imm c), reg s) ]
  (* atomics: the address operand is (reg) or offset-0 memory syntax *)
  | "lr.w", [ rd; addr ] ->
      let off, base = mem addr in
      if ev off <> 0 then fail "lr.w takes a plain (reg) address";
      [ Lr (reg rd, base) ]
  | "sc.w", [ rd; src; addr ] ->
      let off, base = mem addr in
      if ev off <> 0 then fail "sc.w takes a plain (reg) address";
      [ Sc (reg rd, reg src, base) ]
  | m, [ rd; src; addr ] when List.mem_assoc m amo_ops ->
      let off, base = mem addr in
      if ev off <> 0 then fail "%s takes a plain (reg) address" m;
      [ Amo (List.assoc m amo_ops, reg rd, reg src, base) ]
  (* floating point *)
  | "flw", [ rd; addr ] ->
      let off, base = mem addr in
      [ Flw (freg rd, base, check_signed ~bits:12 "load offset" (ev off)) ]
  | "fsw", [ src; addr ] ->
      let off, base = mem addr in
      [ Fsw (freg src, base, check_signed ~bits:12 "store offset" (ev off)) ]
  | m, [ rd; rs1; rs2 ] when List.mem_assoc m fp_ops ->
      [ Fp_op (List.assoc m fp_ops, freg rd, freg rs1, freg rs2) ]
  | m, [ rd; rs1; rs2 ] when List.mem_assoc m fp_cmp_ops ->
      [ Fp_cmp (List.assoc m fp_cmp_ops, reg rd, freg rs1, freg rs2) ]
  | "fsqrt.s", [ rd; rs1 ] -> [ Fsqrt (freg rd, freg rs1) ]
  | "fcvt.w.s", [ rd; rs1 ] -> [ Fcvt_w_s (reg rd, freg rs1, false) ]
  | "fcvt.wu.s", [ rd; rs1 ] -> [ Fcvt_w_s (reg rd, freg rs1, true) ]
  | "fcvt.s.w", [ rd; rs1 ] -> [ Fcvt_s_w (freg rd, reg rs1, false) ]
  | "fcvt.s.wu", [ rd; rs1 ] -> [ Fcvt_s_w (freg rd, reg rs1, true) ]
  | "fmv.x.w", [ rd; rs1 ] -> [ Fmv_x_w (reg rd, freg rs1) ]
  | "fmv.w.x", [ rd; rs1 ] -> [ Fmv_w_x (freg rd, reg rs1) ]
  | "fmv.s", [ rd; rs1 ] ->
      let s = freg rs1 in
      [ Fp_op (FSGNJ, freg rd, s, s) ]
  | "fabs.s", [ rd; rs1 ] ->
      let s = freg rs1 in
      [ Fp_op (FSGNJX, freg rd, s, s) ]
  | "fneg.s", [ rd; rs1 ] ->
      let s = freg rs1 in
      [ Fp_op (FSGNJN, freg rd, s, s) ]
  (* pseudo ALU *)
  | "nop", [] -> [ Op_imm (ADDI, Reg.zero, Reg.zero, 0) ]
  | "mv", [ rd; rs ] -> [ Op_imm (ADDI, reg rd, reg rs, 0) ]
  | "not", [ rd; rs ] -> [ Op_imm (XORI, reg rd, reg rs, -1) ]
  | "neg", [ rd; rs ] -> [ Op (SUB, reg rd, Reg.zero, reg rs) ]
  | "seqz", [ rd; rs ] -> [ Op_imm (SLTIU, reg rd, reg rs, 1) ]
  | "snez", [ rd; rs ] -> [ Op (SLTU, reg rd, Reg.zero, reg rs) ]
  | "sltz", [ rd; rs ] -> [ Op (SLT, reg rd, reg rs, Reg.zero) ]
  | "sgtz", [ rd; rs ] -> [ Op (SLT, reg rd, Reg.zero, reg rs) ]
  (* li / la *)
  | "li", [ rd; Oimm e ] ->
      let v = ev e land 0xFFFF_FFFF in
      if li_size e = 4 then [ Op_imm (ADDI, reg rd, Reg.zero, ev e) ]
      else
        let hi = hi20 v and lo = lo12 v in
        let rd = reg rd in
        [ Lui (rd, hi); Op_imm (ADDI, rd, rd, lo) ]
  | "la", [ rd; a ] ->
      let v = ev (imm a) land 0xFFFF_FFFF in
      let hi = hi20 v and lo = lo12 v in
      let rd = reg rd in
      [ Lui (rd, hi); Op_imm (ADDI, rd, rd, lo) ]
  | m, ops ->
      fail "bad operands for %S (%d operands)" m (List.length ops)

let known_mnemonics () =
  List.map fst r_ops @ List.map fst i_ops @ List.map fst shift_ops
  @ List.map fst unary_ops @ List.map fst load_ops @ List.map fst store_ops
  @ List.map fst branch_ops @ List.map fst csr_ops @ List.map fst fp_ops
  @ List.map fst fp_cmp_ops @ List.map fst nullary
  @ List.map fst swapped_branches
  @ List.map (fun (p, _, _) -> p) zero_branches
  @ [ "lui"; "auipc"; "jal"; "jalr"; "flw"; "fsw"; "fsqrt.s"; "fcvt.w.s";
      "fcvt.wu.s"; "fcvt.s.w"; "fcvt.s.wu"; "fmv.x.w"; "fmv.w.x"; "nop";
      "mv"; "not"; "neg"; "seqz"; "snez"; "sltz"; "sgtz"; "j"; "jr"; "ret";
      "call"; "csrr"; "csrw"; "csrs"; "csrc"; "fmv.s"; "fabs.s"; "fneg.s";
      "li"; "la" ]
