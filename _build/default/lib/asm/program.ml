type word = int

type chunk = { addr : word; bytes : string; is_code : bool }

type t = {
  chunks : chunk list;
  entry : word;
  symbols : (string * word) list;
}

let empty = { chunks = []; entry = 0; symbols = [] }

let symbol t name = List.assoc_opt name t.symbols

let code_range t =
  List.fold_left
    (fun acc c ->
      if not c.is_code then acc
      else
        let lo = c.addr and hi = c.addr + String.length c.bytes in
        match acc with
        | None -> Some (lo, hi)
        | Some (alo, ahi) -> Some (min alo lo, max ahi hi))
    None t.chunks

let size t =
  List.fold_left (fun acc c -> acc + String.length c.bytes) 0 t.chunks

let load t mem =
  List.iter (fun c -> S4e_mem.Sparse_mem.load_bytes mem c.addr c.bytes) t.chunks

let load_machine t machine =
  List.iter
    (fun c -> S4e_cpu.Machine.load_string machine c.addr c.bytes)
    t.chunks;
  S4e_cpu.Machine.reset machine ~pc:t.entry

let le32 w =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (w land 0xFF));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((w lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((w lsr 24) land 0xFF));
  Bytes.to_string b

let le16 w =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr (w land 0xFF));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xFF));
  Bytes.to_string b

let of_instrs ?(base = S4e_soc.Memory_map.ram_base) ?(compress = false) instrs =
  let buf = Buffer.create (4 * List.length instrs) in
  List.iter
    (fun i ->
      if compress then
        match S4e_isa.Compressed.compress i with
        | Some h -> Buffer.add_string buf (le16 h)
        | None -> Buffer.add_string buf (le32 (S4e_isa.Encode.encode i))
      else Buffer.add_string buf (le32 (S4e_isa.Encode.encode i)))
    instrs;
  { chunks = [ { addr = base; bytes = Buffer.contents buf; is_code = true } ];
    entry = base;
    symbols = [] }

let instr_words ?(base = S4e_soc.Memory_map.ram_base) instrs =
  let rec go pc = function
    | [] -> []
    | i :: rest -> (pc, 4, i) :: go (pc + 4) rest
  in
  go base instrs

(* ---------------- binary image format ---------------- *)

let magic = "S4EP"
let format_version = 1

let to_bytes t =
  let buf = Buffer.create 1024 in
  let u32 v =
    for i = 0 to 3 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
    done
  in
  Buffer.add_string buf magic;
  u32 format_version;
  u32 t.entry;
  u32 (List.length t.chunks);
  u32 (List.length t.symbols);
  List.iter
    (fun c ->
      u32 c.addr;
      u32 (String.length c.bytes);
      Buffer.add_char buf (if c.is_code then '\001' else '\000');
      Buffer.add_string buf c.bytes)
    t.chunks;
  List.iter
    (fun (name, addr) ->
      u32 (String.length name);
      Buffer.add_string buf name;
      u32 addr)
    t.symbols;
  Buffer.contents buf

exception Malformed of string

let of_bytes s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      raise (Malformed (Printf.sprintf "truncated %s" what))
  in
  let u32 what =
    need 4 what;
    let v =
      Char.code s.[!pos]
      lor (Char.code s.[!pos + 1] lsl 8)
      lor (Char.code s.[!pos + 2] lsl 16)
      lor (Char.code s.[!pos + 3] lsl 24)
    in
    pos := !pos + 4;
    v
  in
  let bytes n what =
    need n what;
    let b = String.sub s !pos n in
    pos := !pos + n;
    b
  in
  try
    if bytes 4 "magic" <> magic then raise (Malformed "bad magic");
    let version = u32 "version" in
    if version <> format_version then
      raise (Malformed (Printf.sprintf "unsupported version %d" version));
    let entry = u32 "entry" in
    let nchunks = u32 "chunk count" in
    let nsymbols = u32 "symbol count" in
    if nchunks > 0xFFFF || nsymbols > 0xFFFFF then
      raise (Malformed "implausible table size");
    let chunks =
      List.init nchunks (fun _ ->
          let addr = u32 "chunk addr" in
          let len = u32 "chunk length" in
          let flag = bytes 1 "chunk flag" in
          let data = bytes len "chunk data" in
          { addr; bytes = data; is_code = flag = "\001" })
    in
    let symbols =
      List.init nsymbols (fun _ ->
          let n = u32 "symbol length" in
          if n > 4096 then raise (Malformed "implausible symbol length");
          let name = bytes n "symbol name" in
          let addr = u32 "symbol addr" in
          (name, addr))
    in
    if !pos <> String.length s then raise (Malformed "trailing bytes");
    Ok { chunks; entry; symbols }
  with Malformed m -> Error m

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_bytes t);
  close_out oc

let load_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_bytes s
  | exception Sys_error m -> Error m
