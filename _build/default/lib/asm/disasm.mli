(** Disassembler for loaded images and raw words. *)

type line = {
  pc : int;
  raw : int;  (** encoded bits (16 or 32 wide) *)
  size : int;
  text : string;  (** rendering, or [".word 0x...."] when undecodable *)
}

val disassemble_word : int -> string
(** One 32-bit word, or [".word ..."] if it does not decode. *)

val disassemble_range :
  mem:S4e_mem.Sparse_mem.t -> ?compressed:bool -> start:int -> len:int ->
  unit -> line list
(** Walk [len] bytes from [start], decoding compressed halfwords when
    [compressed] (default true). *)

val disassemble_program : Program.t -> line list
(** All code chunks of a program. *)

val pp_line : Format.formatter -> line -> unit
