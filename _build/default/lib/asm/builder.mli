(** Instruction building: mnemonic + operands -> {!S4e_isa.Instr.t} list.

    Handles both real instructions and the standard pseudo-instruction
    set ([li], [la], [mv], [call], [ret], branch aliases, CSR aliases,
    FP sign-injection aliases, ...).  Pseudo expansion sizes are fixed
    per syntactic shape so that the assembler's pass 1 (layout) and
    pass 2 (encode) agree; the assembler asserts this. *)

exception Build_error of string

val size_of : string -> Source.operand list -> int
(** Encoded size in bytes (4 per expanded instruction).
    @raise Build_error for unknown mnemonics or operand shapes. *)

val build :
  string ->
  Source.operand list ->
  pc:int ->
  eval:(Source.expr -> int) ->
  S4e_isa.Instr.t list
(** Expand at address [pc], resolving expressions with [eval] ([eval]
    implements [%hi]/[%lo] and symbol lookup, and may itself raise
    {!Build_error}).
    @raise Build_error for range violations and shape errors. *)

val known_mnemonics : unit -> string list

val hi20 : int -> int
(** [%hi] semantics: upper 20 bits compensated for [%lo] sign extension. *)

val lo12 : int -> int
(** [%lo] semantics: low 12 bits as a signed value. *)
