lib/asm/program.ml: Buffer Bytes Char List Printf S4e_cpu S4e_isa S4e_mem S4e_soc String
