lib/asm/builder.mli: S4e_isa Source
