lib/asm/assembler.ml: Buffer Builder Char Format Hashtbl List Printf Program Result S4e_isa S4e_soc Source String
