lib/asm/program.mli: S4e_bits S4e_cpu S4e_isa S4e_mem
