lib/asm/source.mli: Format S4e_isa
