lib/asm/source.ml: Buffer Char Format List Printf S4e_isa String
