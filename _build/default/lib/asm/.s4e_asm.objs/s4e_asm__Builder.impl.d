lib/asm/builder.ml: Csr List Option Printf Reg S4e_bits S4e_isa Source
