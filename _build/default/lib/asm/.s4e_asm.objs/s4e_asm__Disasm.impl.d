lib/asm/disasm.ml: Format List Printf Program S4e_isa S4e_mem String
