lib/asm/disasm.mli: Format Program S4e_mem
