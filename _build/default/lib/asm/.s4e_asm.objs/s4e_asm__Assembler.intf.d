lib/asm/assembler.mli: Format Program
