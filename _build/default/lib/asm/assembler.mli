(** Two-pass assembler: source text -> {!Program.t}.

    Pass 1 lays out sections and binds labels; pass 2 resolves
    expressions and encodes.  The entry point is the [_start] symbol if
    defined, otherwise the beginning of the text section.

    Sections: [.text] starts at [text_base] (default: RAM base) and
    [.data] at [data_base] (default: RAM base + 64 KiB); [.org] moves
    the cursor within the current section. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val assemble :
  ?text_base:int -> ?data_base:int -> string -> (Program.t, error) result

val assemble_exn : ?text_base:int -> ?data_base:int -> string -> Program.t
(** @raise Failure with a formatted message on error. *)
