type line = { pc : int; raw : int; size : int; text : string }

let disassemble_word w =
  match S4e_isa.Decode.decode w with
  | Some i -> S4e_isa.Instr.to_string i
  | None -> Printf.sprintf ".word 0x%08x" w

let disassemble_range ~mem ?(compressed = true) ~start ~len () =
  let stop = start + len in
  let rec go pc acc =
    if pc >= stop then List.rev acc
    else
      let half = S4e_mem.Sparse_mem.read16 mem pc in
      if half land 0x3 <> 0x3 && compressed then
        let text =
          match S4e_isa.Compressed.decode16 half with
          | Some i -> "c." ^ S4e_isa.Instr.to_string i
          | None -> Printf.sprintf ".half 0x%04x" half
        in
        go (pc + 2) ({ pc; raw = half; size = 2; text } :: acc)
      else
        let w = S4e_mem.Sparse_mem.read32 mem pc in
        go (pc + 4) ({ pc; raw = w; size = 4; text = disassemble_word w } :: acc)
  in
  go start []

let disassemble_program p =
  let mem = S4e_mem.Sparse_mem.create () in
  Program.load p mem;
  List.concat_map
    (fun c ->
      if c.Program.is_code then
        disassemble_range ~mem ~start:c.Program.addr
          ~len:(String.length c.Program.bytes) ()
      else [])
    p.Program.chunks

let pp_line fmt l =
  if l.size = 2 then Format.fprintf fmt "%08x:     %04x  %s" l.pc l.raw l.text
  else Format.fprintf fmt "%08x: %08x  %s" l.pc l.raw l.text
