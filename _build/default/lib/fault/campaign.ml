module Machine = S4e_cpu.Machine
module Program = S4e_asm.Program
module Report = S4e_coverage.Report

type outcome = Masked | Sdc | Crashed | Hung

let outcome_name = function
  | Masked -> "masked"
  | Sdc -> "sdc"
  | Crashed -> "crashed"
  | Hung -> "hung"

type signature = {
  sig_exit : int option;
  sig_uart : string;
  sig_instret : int;
}

type summary = {
  masked : int;
  sdc : int;
  crashed : int;
  hung : int;
  total : int;
}

type target = [ `Gpr | `Fpr | `Code | `Data ]
type kind_choice = [ `Permanent | `Transient ]

let run_machine ?config program =
  let m = Machine.create ?config () in
  Program.load_machine program m;
  m

let signature_of m stop =
  { sig_exit = (match stop with Machine.Exited c -> Some c | _ -> None);
    sig_uart = Machine.uart_output m;
    sig_instret = Machine.instret m }

let golden ?config ~fuel program =
  let m = run_machine ?config program in
  let collector = S4e_coverage.Collector.attach m () in
  let stop = Machine.run m ~fuel in
  let rep = S4e_coverage.Collector.report collector in
  S4e_coverage.Collector.detach m collector;
  (signature_of m stop, rep)

(* ---------------- fault-list generation ---------------- *)

let keys_of table = Hashtbl.fold (fun k () acc -> k :: acc) table []

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let accessed_regs read written =
  let out = ref [] in
  for i = 31 downto 0 do
    if read.(i) || written.(i) then out := i :: !out
  done;
  Array.of_list !out

let gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n =
  let targets = Array.of_list targets in
  let kinds = Array.of_list kinds in
  let viable = function
    | `Gpr -> Array.length gpr_pool > 0
    | `Fpr -> Array.length fpr_pool > 0
    | `Code -> Array.length code_pool > 0
    | `Data -> Array.length data_pool > 0
  in
  let targets = Array.of_list (List.filter viable (Array.to_list targets)) in
  if Array.length targets = 0 then []
  else
    List.init n (fun _ ->
        let bit = Random.State.int rng 32 in
        let loc =
          match pick rng targets with
          | `Gpr -> Fault.Gpr (pick rng gpr_pool, bit)
          | `Fpr -> Fault.Fpr (pick rng fpr_pool, bit)
          | `Code -> Fault.Code (pick rng code_pool, bit)
          | `Data ->
              Fault.Data (pick rng data_pool, Random.State.int rng 8)
        in
        let kind =
          match pick rng kinds with
          | `Permanent -> Fault.Permanent
          | `Transient ->
              Fault.Transient (1 + Random.State.int rng (max 1 golden_instret))
        in
        { Fault.loc; kind })

let generate ~seed ~n ~targets ~kinds ~coverage ~golden_instret =
  let rng = Random.State.make [| seed |] in
  let rep = (coverage : Report.t) in
  let gpr_pool = accessed_regs rep.Report.gpr_read rep.Report.gpr_written in
  let fpr_pool = accessed_regs rep.Report.fpr_read rep.Report.fpr_written in
  let code_pool = Array.of_list (keys_of rep.Report.executed_pcs) in
  Array.sort compare code_pool;
  let data_pool =
    (* exact touched addresses, excluding device windows: a data fault
       only makes sense where the program actually keeps state *)
    let keys =
      Hashtbl.fold
        (fun k () acc ->
          if k >= S4e_soc.Memory_map.ram_base then k :: acc else acc)
        rep.Report.touched_data []
    in
    let arr = Array.of_list keys in
    Array.sort compare arr;
    arr
  in
  gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n

let generate_blind ~seed ~n ~targets ~kinds ~program ~golden_instret =
  let rng = Random.State.make [| seed |] in
  let gpr_pool = Array.init 32 Fun.id in
  let fpr_pool = Array.init 32 Fun.id in
  let code_pool =
    match Program.code_range program with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (max 0 ((hi - lo) / 4)) (fun i -> lo + (4 * i))
  in
  let data_pool =
    (* the whole RAM page around the data segment *)
    match program.Program.chunks with
    | [] -> [||]
    | chunks ->
        let datas = List.filter (fun c -> not c.Program.is_code) chunks in
        (match datas with
        | [] -> [||]
        | c :: _ ->
            Array.init
              (min 4096 (max 64 (String.length c.Program.bytes)))
              (fun i -> c.Program.addr + i))
  in
  gen_with rng ~targets ~kinds ~golden_instret ~gpr_pool ~fpr_pool ~code_pool
    ~data_pool n

(* ---------------- running ---------------- *)

let classify ~(golden : signature) m stop =
  match stop with
  | Machine.Exited c ->
      if Some c = golden.sig_exit && Machine.uart_output m = golden.sig_uart
      then Masked
      else Sdc
  | Machine.Fatal_trap _ -> Crashed
  | Machine.Out_of_fuel | Machine.Wfi_halt -> Hung

let run_one ?config ~fuel program ~golden fault =
  let m = run_machine ?config program in
  let armed = Injector.arm m fault in
  let stop = Machine.run m ~fuel in
  Injector.disarm m armed;
  classify ~golden m stop

let run ?config ~fuel program ~golden faults =
  List.map (fun f -> (f, run_one ?config ~fuel program ~golden f)) faults

let summarize results =
  List.fold_left
    (fun acc (_, o) ->
      match o with
      | Masked -> { acc with masked = acc.masked + 1; total = acc.total + 1 }
      | Sdc -> { acc with sdc = acc.sdc + 1; total = acc.total + 1 }
      | Crashed -> { acc with crashed = acc.crashed + 1; total = acc.total + 1 }
      | Hung -> { acc with hung = acc.hung + 1; total = acc.total + 1 })
    { masked = 0; sdc = 0; crashed = 0; hung = 0; total = 0 }
    results

let pp_summary fmt s =
  Format.fprintf fmt
    "total=%d masked=%d sdc=%d crashed=%d hung=%d" s.total s.masked s.sdc
    s.crashed s.hung
