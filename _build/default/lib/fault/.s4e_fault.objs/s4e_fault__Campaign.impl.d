lib/fault/campaign.ml: Array Fault Format Fun Hashtbl Injector List Random S4e_asm S4e_coverage S4e_cpu S4e_soc String
