lib/fault/fault.ml: Format Printf S4e_isa Stdlib
