lib/fault/fault.mli: Format S4e_bits S4e_isa
