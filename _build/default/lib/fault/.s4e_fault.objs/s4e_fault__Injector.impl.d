lib/fault/injector.ml: Fault S4e_bits S4e_cpu S4e_mem
