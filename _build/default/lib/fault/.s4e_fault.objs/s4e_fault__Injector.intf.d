lib/fault/injector.mli: Fault S4e_cpu
