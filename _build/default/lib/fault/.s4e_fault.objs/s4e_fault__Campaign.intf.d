lib/fault/campaign.mli: Fault Format S4e_asm S4e_coverage S4e_cpu
