type word = int

type location =
  | Gpr of S4e_isa.Reg.t * int
  | Fpr of S4e_isa.Reg.t * int
  | Code of word * int
  | Data of word * int

type kind = Permanent | Transient of int

type t = { loc : location; kind : kind }

let describe t =
  let loc =
    match t.loc with
    | Gpr (r, b) -> Printf.sprintf "GPR %s bit %d" (S4e_isa.Reg.abi_name r) b
    | Fpr (r, b) -> Printf.sprintf "FPR %s bit %d" (S4e_isa.Reg.f_name r) b
    | Code (a, b) -> Printf.sprintf "code 0x%08x bit %d" a b
    | Data (a, b) -> Printf.sprintf "data 0x%08x bit %d" a b
  in
  match t.kind with
  | Permanent -> loc ^ " (permanent)"
  | Transient n -> Printf.sprintf "%s (transient @ instr %d)" loc n

let pp fmt t = Format.pp_print_string fmt (describe t)

let compare = Stdlib.compare
