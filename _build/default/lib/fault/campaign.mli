(** Mutant generation and mass fault simulation.

    The fault paper's flow: run the golden binary once, collect its
    coverage (which registers and instructions it actually exercises),
    generate fault lists restricted to those sites ("dedicated sets of
    fault injected hardware models, i.e., mutants"), simulate every
    mutant, and classify:

    - [Masked]: terminates normally with the golden signature;
    - [Sdc]: terminates normally with a different exit code or UART
      output (the paper's "normal termination though executed on a
      faulty hardware model" — silent data corruption);
    - [Crashed]: ends in a fatal trap;
    - [Hung]: exhausts its fuel or sleeps forever. *)

type outcome = Masked | Sdc | Crashed | Hung

val outcome_name : outcome -> string

type signature = {
  sig_exit : int option;
  sig_uart : string;
  sig_instret : int;
}

type summary = {
  masked : int;
  sdc : int;
  crashed : int;
  hung : int;
  total : int;
}

type target = [ `Gpr | `Fpr | `Code | `Data ]
type kind_choice = [ `Permanent | `Transient ]

val golden :
  ?config:S4e_cpu.Machine.config -> fuel:int -> S4e_asm.Program.t ->
  signature * S4e_coverage.Report.t
(** Reference run with coverage collection. *)

val generate :
  seed:int ->
  n:int ->
  targets:target list ->
  kinds:kind_choice list ->
  coverage:S4e_coverage.Report.t ->
  golden_instret:int ->
  Fault.t list
(** Coverage-guided fault list: register faults only in accessed
    registers, code faults only at executed pcs, data faults only in
    the touched address window; transient times uniform in
    [1, golden_instret].  Deterministic in [seed]. *)

val generate_blind :
  seed:int ->
  n:int ->
  targets:target list ->
  kinds:kind_choice list ->
  program:S4e_asm.Program.t ->
  golden_instret:int ->
  Fault.t list
(** Ablation baseline: sites drawn from the whole register file / code
    range regardless of what the program exercises. *)

val run_one :
  ?config:S4e_cpu.Machine.config -> fuel:int -> S4e_asm.Program.t ->
  golden:signature -> Fault.t -> outcome

val run :
  ?config:S4e_cpu.Machine.config -> fuel:int -> S4e_asm.Program.t ->
  golden:signature -> Fault.t list -> (Fault.t * outcome) list

val summarize : (Fault.t * outcome) list -> summary

val pp_summary : Format.formatter -> summary -> unit
