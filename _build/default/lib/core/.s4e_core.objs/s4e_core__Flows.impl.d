lib/core/flows.ml: List S4e_asm S4e_coverage S4e_cpu S4e_fault S4e_wcet
