lib/core/io_guard.ml: Format List S4e_cpu S4e_mem
