lib/core/io_guard.mli: Format S4e_bits S4e_cpu
