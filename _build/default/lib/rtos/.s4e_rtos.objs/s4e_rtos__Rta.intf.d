lib/rtos/rta.mli: Format S4e_asm S4e_cpu
