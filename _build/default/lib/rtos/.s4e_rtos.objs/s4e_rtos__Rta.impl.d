lib/rtos/rta.ml: Format List Option Printf S4e_asm S4e_wcet
