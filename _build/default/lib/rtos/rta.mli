(** Fixed-priority response-time analysis (RTA).

    The ecosystem group's schedulability companions (He/Müller,
    Euromicro DSD 2012; Zabel/Müller's abstract RTOS analyses) close the
    loop the WCET flow opens: once QTA bounds each task's execution
    time, classical response-time analysis decides whether a periodic
    task set meets its deadlines under preemptive fixed-priority
    scheduling.

    The implementation is the standard Joseph–Pandya recurrence

    {v R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j v}

    iterated to a fixed point, with constrained deadlines
    ([D_i <= T_i]).  Priorities are either given or assigned
    rate-monotonically. *)

type task = {
  tk_name : string;
  tk_wcet : int;  (** C, in cycles — typically from {!S4e_wcet.Analysis} *)
  tk_period : int;  (** T, in cycles *)
  tk_deadline : int;  (** D, in cycles; [D <= T] *)
}

val task : ?deadline:int -> name:string -> wcet:int -> period:int -> unit -> task
(** [deadline] defaults to the period (implicit deadlines). *)

type verdict = {
  v_task : task;
  v_response : int option;
      (** worst-case response time; [None] when the recurrence exceeds
          the deadline (unschedulable task) *)
  v_priority : int;  (** 0 = highest *)
}

type analysis = {
  a_verdicts : verdict list;  (** in priority order *)
  a_schedulable : bool;
  a_utilization : float;
  a_ll_bound : float;
      (** Liu–Layland bound [n(2^{1/n} - 1)] for this task count *)
}

val analyze : ?rate_monotonic:bool -> task list -> analysis
(** With [rate_monotonic] (default true) tasks are prioritized by
    period (shorter period = higher priority); otherwise list order is
    priority order.
    @raise Invalid_argument on empty sets, non-positive parameters, or
    [D > T]. *)

val response_time : hp:task list -> task -> int option
(** Response time of one task against its higher-priority interferers,
    or [None] if it exceeds the deadline. *)

val utilization : task list -> float
val liu_layland_bound : int -> float

val of_program :
  ?model:S4e_cpu.Timing_model.t ->
  ?annotations:(string * int) list ->
  S4e_asm.Program.t ->
  tasks:(string * int) list ->
  (task list, string) result
(** [of_program p ~tasks] derives each task's WCET by statically
    analyzing the function at the named symbol; [tasks] pairs a symbol
    with its period (implicit deadline).  This is the QTA-to-RTA
    bridge: bounds come from the same analyzer the co-simulation
    validates. *)

val pp : Format.formatter -> analysis -> unit
