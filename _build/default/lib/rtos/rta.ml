type task = {
  tk_name : string;
  tk_wcet : int;
  tk_period : int;
  tk_deadline : int;
}

let task ?deadline ~name ~wcet ~period () =
  { tk_name = name; tk_wcet = wcet; tk_period = period;
    tk_deadline = Option.value deadline ~default:period }

type verdict = {
  v_task : task;
  v_response : int option;
  v_priority : int;
}

type analysis = {
  a_verdicts : verdict list;
  a_schedulable : bool;
  a_utilization : float;
  a_ll_bound : float;
}

let validate tasks =
  if tasks = [] then invalid_arg "Rta.analyze: empty task set";
  List.iter
    (fun t ->
      if t.tk_wcet <= 0 || t.tk_period <= 0 || t.tk_deadline <= 0 then
        invalid_arg (Printf.sprintf "Rta.analyze: %s has a non-positive parameter" t.tk_name);
      if t.tk_deadline > t.tk_period then
        invalid_arg
          (Printf.sprintf "Rta.analyze: %s has D > T (only constrained \
                           deadlines are supported)" t.tk_name))
    tasks

let ceil_div a b = (a + b - 1) / b

(* Joseph-Pandya fixed point.  The sequence is monotone and bounded by
   the deadline check, so it terminates. *)
let response_time ~hp t =
  let interference r =
    List.fold_left
      (fun acc j -> acc + (ceil_div r j.tk_period * j.tk_wcet))
      0 hp
  in
  let rec iterate r =
    if r > t.tk_deadline then None
    else
      let r' = t.tk_wcet + interference r in
      if r' = r then Some r else if r' > t.tk_deadline then None else iterate r'
  in
  iterate t.tk_wcet

let utilization tasks =
  List.fold_left
    (fun acc t -> acc +. (float_of_int t.tk_wcet /. float_of_int t.tk_period))
    0.0 tasks

let liu_layland_bound n =
  let n = float_of_int n in
  n *. ((2.0 ** (1.0 /. n)) -. 1.0)

let analyze ?(rate_monotonic = true) tasks =
  validate tasks;
  let ordered =
    if rate_monotonic then
      List.stable_sort (fun a b -> compare a.tk_period b.tk_period) tasks
    else tasks
  in
  let rec verdicts hp = function
    | [] -> []
    | t :: rest ->
        let v =
          { v_task = t; v_response = response_time ~hp t;
            v_priority = List.length hp }
        in
        v :: verdicts (hp @ [ t ]) rest
  in
  let vs = verdicts [] ordered in
  { a_verdicts = vs;
    a_schedulable = List.for_all (fun v -> v.v_response <> None) vs;
    a_utilization = utilization tasks;
    a_ll_bound = liu_layland_bound (List.length tasks) }

let of_program ?model ?annotations p ~tasks =
  let results =
    List.map
      (fun (symbol, period) ->
        match S4e_asm.Program.symbol p symbol with
        | None -> Error (Printf.sprintf "no symbol %S in the image" symbol)
        | Some entry -> (
            let view = { p with S4e_asm.Program.entry } in
            match S4e_wcet.Analysis.analyze ?model ?annotations view with
            | Error e ->
                Error
                  (Printf.sprintf "%s: %s" symbol
                     (S4e_wcet.Analysis.describe_error e))
            | Ok r ->
                Ok
                  (task ~name:symbol
                     ~wcet:r.S4e_wcet.Analysis.program_wcet ~period ())))
      tasks
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok t :: rest -> collect (t :: acc) rest
    | Error m :: _ -> Error m
  in
  collect [] results

let pp fmt a =
  Format.fprintf fmt
    "utilization %.3f (Liu-Layland bound for %d tasks: %.3f)@."
    a.a_utilization
    (List.length a.a_verdicts)
    a.a_ll_bound;
  List.iter
    (fun v ->
      match v.v_response with
      | Some r ->
          Format.fprintf fmt "  P%d %-16s C=%-6d T=%-6d D=%-6d R=%d@."
            v.v_priority v.v_task.tk_name v.v_task.tk_wcet v.v_task.tk_period
            v.v_task.tk_deadline r
      | None ->
          Format.fprintf fmt "  P%d %-16s C=%-6d T=%-6d D=%-6d MISSES its deadline@."
            v.v_priority v.v_task.tk_name v.v_task.tk_wcet v.v_task.tk_period
            v.v_task.tk_deadline)
    a.a_verdicts;
  Format.fprintf fmt "  task set %s@."
    (if a.a_schedulable then "SCHEDULABLE" else "NOT schedulable")
