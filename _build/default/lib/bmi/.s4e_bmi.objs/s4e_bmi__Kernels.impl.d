lib/bmi/kernels.ml: Format List Printf Random S4e_asm S4e_cpu String
