lib/bmi/kernels.mli: S4e_asm S4e_cpu
