type variant = Base | Bmi

type kernel = {
  k_name : string;
  k_descr : string;
  k_source : variant -> n:int -> seed:int -> string;
}

(* Common scaffold: walk an n-word array at [data], fold a checksum
   into a0, exit with it through the syscon.  [hoist] runs once before
   the loop (loop-invariant constants — granted to both variants so the
   comparison is fair to an optimizing compiler). *)
let scaffold ~n ~seed ~hoist ~body =
  let rng = Random.State.make [| seed |] in
  let rand32 () =
    (Random.State.bits rng lor (Random.State.bits rng lsl 15)) land 0xFFFF_FFFF
  in
  let words = List.init n (fun _ -> Printf.sprintf "0x%08x" (rand32 ())) in
  Printf.sprintf
    {|
_start:
  la   s0, data
  li   s1, %d
  li   s2, 0
  li   a0, 0
%s
kloop:
  lw   a1, 0(s0)
%s
  addi s0, s0, 4
  addi s2, s2, 1
  blt  s2, s1, kloop
  li   t1, 0x00100000
  sw   a0, 0(t1)
  ebreak
  .data
data:
  .word %s
|}
    n hoist body
    (String.concat ", " words)

let rothash =
  { k_name = "rothash";
    k_descr = "rotate-and-mix hash round (rol/ror vs shift-or)";
    k_source =
      (fun variant ~n ~seed ->
        let body =
          match variant with
          | Bmi ->
              {|
  rori a2, a1, 25
  xor  a0, a0, a2
  rori a4, a0, 13
  add  a0, a4, a2
|}
          | Base ->
              {|
  slli a2, a1, 7
  srli a4, a1, 25
  or   a2, a2, a4
  xor  a0, a0, a2
  srli a4, a0, 13
  slli a5, a0, 19
  or   a4, a4, a5
  add  a0, a4, a2
|}
        in
        scaffold ~n ~seed ~hoist:"" ~body) }

let popcount =
  { k_name = "popcount";
    k_descr = "population-count accumulation (cpop vs SWAR)";
    k_source =
      (fun variant ~n ~seed ->
        match variant with
        | Bmi ->
            scaffold ~n ~seed ~hoist:""
              ~body:{|
  cpop a2, a1
  add  a0, a0, a2
|}
        | Base ->
            scaffold ~n ~seed
              ~hoist:
                {|
  li   s3, 0x55555555
  li   s4, 0x33333333
  li   s5, 0x0f0f0f0f
  li   s6, 0x01010101
|}
              ~body:
                {|
  srli a2, a1, 1
  and  a2, a2, s3
  sub  a2, a1, a2
  srli a4, a2, 2
  and  a4, a4, s4
  and  a2, a2, s4
  add  a2, a2, a4
  srli a4, a2, 4
  add  a2, a2, a4
  and  a2, a2, s5
  mul  a2, a2, s6
  srli a2, a2, 24
  add  a0, a0, a2
|}) }

let normalize =
  { k_name = "normalize";
    k_descr = "leading-zero normalization (clz vs binary search)";
    k_source =
      (fun variant ~n ~seed ->
        match variant with
        | Bmi ->
            scaffold ~n ~seed ~hoist:""
              ~body:{|
  clz  a2, a1
  sll  a3, a1, a2
  xor  a0, a0, a3
|}
        | Base ->
            scaffold ~n ~seed ~hoist:""
              ~body:
                {|
  mv   a2, a1
  li   a3, 0
  bnez a2, clz_nz
  li   a3, 32
  j    clz_done
clz_nz:
  lui  a4, 0xffff0
  and  a4, a2, a4
  bnez a4, clz_16
  slli a2, a2, 16
  addi a3, a3, 16
clz_16:
  lui  a4, 0xff000
  and  a4, a2, a4
  bnez a4, clz_8
  slli a2, a2, 8
  addi a3, a3, 8
clz_8:
  lui  a4, 0xf0000
  and  a4, a2, a4
  bnez a4, clz_4
  slli a2, a2, 4
  addi a3, a3, 4
clz_4:
  lui  a4, 0xc0000
  and  a4, a2, a4
  bnez a4, clz_2
  slli a2, a2, 2
  addi a3, a3, 2
clz_2:
  lui  a4, 0x80000
  and  a4, a2, a4
  bnez a4, clz_done
  addi a3, a3, 1
clz_done:
  sll  a4, a1, a3
  xor  a0, a0, a4
|}) }

let masking =
  { k_name = "masking";
    k_descr = "stream masking with complemented operands (andn/orn/xnor)";
    k_source =
      (fun variant ~n ~seed ->
        let body =
          match variant with
          | Bmi ->
              {|
  andn a2, a1, a0
  orn  a4, a0, a2
  xnor a2, a4, a1
  add  a0, a0, a2
|}
          | Base ->
              {|
  xori a2, a0, -1
  and  a2, a1, a2
  xori a4, a2, -1
  or   a4, a0, a4
  xor  a2, a4, a1
  xori a2, a2, -1
  add  a0, a0, a2
|}
        in
        scaffold ~n ~seed ~hoist:"" ~body) }

let clamp =
  { k_name = "clamp";
    k_descr = "saturating clamp to a window (min/max vs branches)";
    k_source =
      (fun variant ~n ~seed ->
        let hoist = {|
  li   s3, 0x20000000
  li   s4, 0x00100000
|} in
        match variant with
        | Bmi ->
            scaffold ~n ~seed ~hoist
              ~body:
                {|
  min  a2, a1, s3
  max  a2, a2, s4
  add  a0, a0, a2
|}
        | Base ->
            scaffold ~n ~seed ~hoist
              ~body:
                {|
  mv   a2, a1
  ble  a2, s3, clamp_hi
  mv   a2, s3
clamp_hi:
  bge  a2, s4, clamp_lo
  mv   a2, s4
clamp_lo:
  add  a0, a0, a2
|}) }

let bytes =
  { k_name = "bytes";
    k_descr = "endianness swap (rev8 vs shift-mask)";
    k_source =
      (fun variant ~n ~seed ->
        match variant with
        | Bmi ->
            scaffold ~n ~seed ~hoist:""
              ~body:{|
  rev8 a2, a1
  xor  a0, a0, a2
|}
        | Base ->
            scaffold ~n ~seed
              ~hoist:{|
  li   s3, 0x0000ff00
  li   s4, 0x00ff0000
|}
              ~body:
                {|
  srli a2, a1, 24
  srli a4, a1, 8
  and  a4, a4, s3
  or   a2, a2, a4
  slli a4, a1, 8
  and  a4, a4, s4
  or   a2, a2, a4
  slli a4, a1, 24
  or   a2, a2, a4
  xor  a0, a0, a2
|}) }

let bitfield =
  { k_name = "bitfield";
    k_descr = "variable-index bit test/set/invert (Zbs vs shift sequences)";
    k_source =
      (fun variant ~n ~seed ->
        match variant with
        | Bmi ->
            scaffold ~n ~seed ~hoist:""
              ~body:
                {|
  andi a2, a1, 31
  bext a3, a0, a2
  bset a4, a1, a2
  binv a0, a0, a2
  add  a0, a0, a3
  xor  a0, a0, a4
|}
        | Base ->
            scaffold ~n ~seed ~hoist:{|
  li   s3, 1
|}
              ~body:
                {|
  andi a2, a1, 31
  srl  a3, a0, a2
  andi a3, a3, 1
  sll  a5, s3, a2
  or   a4, a1, a5
  sll  a5, s3, a2
  xor  a0, a0, a5
  add  a0, a0, a3
  xor  a0, a0, a4
|}) }

let all = [ rothash; popcount; normalize; masking; clamp; bytes; bitfield ]

let find name = List.find_opt (fun k -> k.k_name = name) all

let program k variant ~n ~seed =
  S4e_asm.Assembler.assemble_exn (k.k_source variant ~n ~seed)

type measurement = {
  m_cycles : int;
  m_instret : int;
  m_checksum : int;
}

let measure ?config k variant ~n ~seed =
  let p = program k variant ~n ~seed in
  let m = S4e_cpu.Machine.create ?config () in
  S4e_asm.Program.load_machine p m;
  match S4e_cpu.Machine.run m ~fuel:(1_000_000 + (n * 1000)) with
  | S4e_cpu.Machine.Exited code ->
      { m_cycles = S4e_cpu.Machine.cycles m;
        m_instret = S4e_cpu.Machine.instret m;
        m_checksum = code }
  | stop ->
      failwith
        (Format.asprintf "kernel %s/%s did not exit: %a" k.k_name
           (match variant with Base -> "base" | Bmi -> "bmi")
           S4e_cpu.Machine.pp_stop_reason stop)

let speedup ?config k ~n ~seed =
  let base = measure ?config k Base ~n ~seed in
  let bmi = measure ?config k Bmi ~n ~seed in
  if base.m_checksum <> bmi.m_checksum then
    failwith
      (Printf.sprintf "kernel %s: variants disagree (base 0x%x, bmi 0x%x)"
         k.k_name base.m_checksum bmi.m_checksum);
  float_of_int base.m_cycles /. float_of_int bmi.m_cycles
