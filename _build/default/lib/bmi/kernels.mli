(** Cryptographic / bit-twiddling kernels in two ISA dialects.

    The BMI paper's software evaluation: each kernel exists as a
    base-ISA (RV32IM) instruction sequence and as a BMI sequence using
    the ecosystem's bit-manipulation extensions.  Both variants compute
    the identical checksum over the same seeded input array
    (property-tested); the interesting output is the cycle ratio
    (experiment E6). *)

type variant = Base | Bmi

type kernel = {
  k_name : string;
  k_descr : string;
  k_source : variant -> n:int -> seed:int -> string;
      (** assembly source processing an [n]-word seeded array *)
}

val all : kernel list
(** rothash, popcount, normalize (clz), masking, clamp, bytes (rev8). *)

val find : string -> kernel option

val program : kernel -> variant -> n:int -> seed:int -> S4e_asm.Program.t

type measurement = {
  m_cycles : int;
  m_instret : int;
  m_checksum : int;  (** syscon exit value *)
}

val measure :
  ?config:S4e_cpu.Machine.config -> kernel -> variant -> n:int -> seed:int ->
  measurement
(** Assembles, runs, and reports.
    @raise Failure if the kernel does not terminate normally. *)

val speedup : ?config:S4e_cpu.Machine.config -> kernel -> n:int -> seed:int -> float
(** base cycles / BMI cycles (checks the checksums agree). *)
