(** Declarative decoder generator, modeled on QEMU's DecodeTree.

    An instruction set is described as a list of {!spec} rows — a
    mask/value pattern plus an operand-extraction function.  {!compile}
    turns the rows into a decision tree that switches on bit fields
    shared by all candidate rows, exactly as QEMU's decodetree generator
    emits nested [switch] statements.  The compiled tree decodes in a
    handful of table lookups instead of a linear scan.

    The RV32IMF+BMI table {!rv32_rows} is equivalent to the hand decoder
    {!Decode.decode}; the equivalence is property-tested and the
    relative speed benchmarked (experiment E7). *)

type word = S4e_bits.Bits.word

type spec = {
  name : string;  (** mnemonic, for reports and overlap diagnostics *)
  mask : word;  (** bits that must match *)
  value : word;  (** their required values; invariant [value land mask = value] *)
  operands : word -> Instr.t;  (** total on words matching the pattern *)
}

type t
(** A compiled decision tree. *)

val compile : spec list -> t
(** Compiles rows into a decision tree.  Raises [Invalid_argument] if a
    row violates the [value land mask = value] invariant or if two rows
    overlap (some word matches both). *)

val decode : t -> word -> Instr.t option
(** Decode one 32-bit word.  Words with low bits [<> 0b11] (compressed
    space) return [None]. *)

val rv32_rows : spec list
(** The full RV32I+M+Zicsr+F-subset+BMI row table. *)

val rv32 : unit -> t
(** Compiled decoder for {!rv32_rows} (memoized). *)

(** Shape statistics, for the E7 report. *)
type stats = { rows : int; switch_nodes : int; leaves : int; max_depth : int;
               max_leaf_width : int }

val stats : t -> stats

val check_overlap : spec list -> (string * string) option
(** [check_overlap rows] returns a pair of row names that can both match
    some word, or [None] if the table is unambiguous. *)
