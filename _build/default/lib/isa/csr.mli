(** Control and status register addresses.

    CSR addresses are 12-bit integers.  This module names the machine-mode
    and user-visible CSRs implemented by the emulator, and classifies
    addresses for access checking and coverage accounting. *)

type t = int
(** A CSR address.  Invariant: [0 <= a < 0x1000]. *)

(** {1 Floating-point} *)

val fflags : t
val frm : t
val fcsr : t

(** {1 Machine information} *)

val mvendorid : t
val marchid : t
val mimpid : t
val mhartid : t

(** {1 Machine trap setup / handling} *)

val mstatus : t
val misa : t
val mie : t
val mtvec : t
val mscratch : t
val mepc : t
val mcause : t
val mtval : t
val mip : t

(** {1 Counters} *)

val mcycle : t
val minstret : t
val cycle : t
val time : t
val instret : t
val cycleh : t
val timeh : t
val instreth : t

val valid : t -> bool
(** Address range check. *)

val is_read_only : t -> bool
(** Top two address bits = 11 means reads only (per the privileged spec
    address convention). *)

val name : t -> string
(** Symbolic name if known, otherwise ["csr0x%03x"]. *)

val of_name : string -> t option

val implemented : t list
(** All CSRs the emulator implements, in address order; this is the
    denominator of CSR coverage. *)
