(** ISA module (extension) sets.

    The Scale4Edge coverage metric is defined per ISA module: it asks
    which instruction types of the *configured* modules were executed.
    This module enumerates the mnemonics belonging to each extension so
    coverage denominators and fault-injection opcode universes follow
    the configuration. *)

type t = I | M | A | F | C | Zicsr | B
(** [B] is the ecosystem's bit-manipulation instruction set (PATMOS 2019),
    encoded Zbb-compatibly. *)

val all : t list

val name : t -> string
val of_name : string -> t option

val mnemonics : t -> string list
(** Instruction types (canonical mnemonics) belonging to one module.
    [C] mnemonics are the compressed forms' expansions and are empty
    here, because compressed instructions are counted via their
    expansion (as the virtual prototype executes them). *)

val universe : t list -> string list
(** Sorted, de-duplicated mnemonics of a configuration. *)

val isa_string : t list -> string
(** E.g. ["RV32IMF_Zicsr_B"]. *)
