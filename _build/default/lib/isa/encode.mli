(** Instruction encoder: AST to 32-bit machine words.

    The inverse of {!Decode.decode}; round-tripping is property-tested.
    Raises [Invalid_argument] (via assertions) when an operand is out of
    its encodable range, e.g. a branch offset that does not fit in 13
    signed bits. *)

val encode : Instr.t -> S4e_bits.Bits.word
