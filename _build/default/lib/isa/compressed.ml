open Instr

let bits ~hi ~lo h = (h lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let bit i h = (h lsr i) land 1
let sext ~width v = S4e_bits.Bits.(to_signed (sext ~width v))

(* 3-bit register fields address x8..x15. *)
let r3 v = 8 + v

(* Immediate descrambling, one function per compressed format. *)

let imm_ci h = sext ~width:6 ((bit 12 h lsl 5) lor bits ~hi:6 ~lo:2 h)

let uimm_addi4spn h =
  (bits ~hi:12 ~lo:11 h lsl 4)
  lor (bits ~hi:10 ~lo:7 h lsl 6)
  lor (bit 6 h lsl 2)
  lor (bit 5 h lsl 3)

let uimm_lwsw h =
  (bits ~hi:12 ~lo:10 h lsl 3) lor (bit 6 h lsl 2) lor (bit 5 h lsl 6)

let imm_addi16sp h =
  sext ~width:10
    ((bit 12 h lsl 9) lor (bit 6 h lsl 4) lor (bit 5 h lsl 6)
    lor (bits ~hi:4 ~lo:3 h lsl 7)
    lor (bit 2 h lsl 5))

let imm_cj h =
  sext ~width:12
    ((bit 12 h lsl 11) lor (bit 11 h lsl 4)
    lor (bits ~hi:10 ~lo:9 h lsl 8)
    lor (bit 8 h lsl 10) lor (bit 7 h lsl 6) lor (bit 6 h lsl 7)
    lor (bits ~hi:5 ~lo:3 h lsl 1)
    lor (bit 2 h lsl 5))

let imm_cb h =
  sext ~width:9
    ((bit 12 h lsl 8)
    lor (bits ~hi:11 ~lo:10 h lsl 3)
    lor (bits ~hi:6 ~lo:5 h lsl 6)
    lor (bits ~hi:4 ~lo:3 h lsl 1)
    lor (bit 2 h lsl 5))

let uimm_lwsp h =
  (bit 12 h lsl 5) lor (bits ~hi:6 ~lo:4 h lsl 2) lor (bits ~hi:3 ~lo:2 h lsl 6)

let uimm_swsp h =
  (bits ~hi:12 ~lo:9 h lsl 2) lor (bits ~hi:8 ~lo:7 h lsl 6)

let shamt_c h = (bit 12 h lsl 5) lor bits ~hi:6 ~lo:2 h

let decode_q0 h =
  match bits ~hi:15 ~lo:13 h with
  | 0b000 ->
      let u = uimm_addi4spn h in
      if u = 0 then None (* includes the all-zeros illegal encoding *)
      else Some (Op_imm (ADDI, r3 (bits ~hi:4 ~lo:2 h), Reg.sp, u))
  | 0b010 ->
      Some (Load (LW, r3 (bits ~hi:4 ~lo:2 h), r3 (bits ~hi:9 ~lo:7 h),
                  uimm_lwsw h))
  | 0b110 ->
      Some (Store (SW, r3 (bits ~hi:4 ~lo:2 h), r3 (bits ~hi:9 ~lo:7 h),
                   uimm_lwsw h))
  | _ -> None

let decode_q1_alu h =
  let rd = r3 (bits ~hi:9 ~lo:7 h) in
  match bits ~hi:11 ~lo:10 h with
  | 0b00 ->
      let sh = shamt_c h in
      if sh >= 32 then None else Some (Shift_imm (SRLI, rd, rd, sh))
  | 0b01 ->
      let sh = shamt_c h in
      if sh >= 32 then None else Some (Shift_imm (SRAI, rd, rd, sh))
  | 0b10 -> Some (Op_imm (ANDI, rd, rd, imm_ci h))
  | _ ->
      if bit 12 h <> 0 then None
      else
        let rs2 = r3 (bits ~hi:4 ~lo:2 h) in
        let op =
          match bits ~hi:6 ~lo:5 h with
          | 0b00 -> SUB
          | 0b01 -> XOR
          | 0b10 -> OR
          | _ -> AND
        in
        Some (Op (op, rd, rd, rs2))

let decode_q1 h =
  match bits ~hi:15 ~lo:13 h with
  | 0b000 ->
      (* c.nop (rd = 0) and c.addi share an expansion. *)
      let rd = bits ~hi:11 ~lo:7 h in
      Some (Op_imm (ADDI, rd, rd, imm_ci h))
  | 0b001 -> Some (Jal (Reg.ra, imm_cj h))
  | 0b010 -> Some (Op_imm (ADDI, bits ~hi:11 ~lo:7 h, Reg.zero, imm_ci h))
  | 0b011 ->
      let rd = bits ~hi:11 ~lo:7 h in
      if rd = 2 then
        let imm = imm_addi16sp h in
        if imm = 0 then None else Some (Op_imm (ADDI, Reg.sp, Reg.sp, imm))
      else
        let imm = imm_ci h in
        if imm = 0 then None else Some (Lui (rd, imm land 0xFFFFF))
  | 0b100 -> decode_q1_alu h
  | 0b101 -> Some (Jal (Reg.zero, imm_cj h))
  | 0b110 -> Some (Branch (BEQ, r3 (bits ~hi:9 ~lo:7 h), Reg.zero, imm_cb h))
  | _ -> Some (Branch (BNE, r3 (bits ~hi:9 ~lo:7 h), Reg.zero, imm_cb h))

let decode_q2 h =
  let rd = bits ~hi:11 ~lo:7 h in
  let rs2 = bits ~hi:6 ~lo:2 h in
  match bits ~hi:15 ~lo:13 h with
  | 0b000 ->
      let sh = shamt_c h in
      if sh >= 32 then None else Some (Shift_imm (SLLI, rd, rd, sh))
  | 0b010 ->
      if rd = 0 then None else Some (Load (LW, rd, Reg.sp, uimm_lwsp h))
  | 0b100 ->
      if bit 12 h = 0 then
        if rs2 = 0 then
          if rd = 0 then None else Some (Jalr (Reg.zero, rd, 0))
        else Some (Op (ADD, rd, Reg.zero, rs2))
      else if rs2 = 0 then
        if rd = 0 then Some Ebreak else Some (Jalr (Reg.ra, rd, 0))
      else Some (Op (ADD, rd, rd, rs2))
  | 0b110 -> Some (Store (SW, rs2, Reg.sp, uimm_swsp h))
  | _ -> None

let decode16 h =
  let h = h land 0xFFFF in
  match h land 0x3 with
  | 0b00 -> decode_q0 h
  | 0b01 -> decode_q1 h
  | 0b10 -> decode_q2 h
  | _ -> None

(* Compression.  Build the halfword from fields; each case mirrors a
   decode case above, and only fires when every operand fits. *)

let fits_signed ~width v = v >= -(1 lsl (width - 1)) && v < 1 lsl (width - 1)
let is_r3 r = r >= 8 && r <= 15

let enc_ci ~funct3 ~rd ~imm ~quad =
  (funct3 lsl 13)
  lor (((imm lsr 5) land 1) lsl 12)
  lor (rd lsl 7)
  lor ((imm land 0x1F) lsl 2)
  lor quad

let enc_cj ~funct3 off =
  let b i = (off lsr i) land 1 in
  (funct3 lsl 13)
  lor (b 11 lsl 12) lor (b 4 lsl 11)
  lor (((off lsr 8) land 3) lsl 9)
  lor (b 10 lsl 8) lor (b 6 lsl 7) lor (b 7 lsl 6)
  lor (((off lsr 1) land 7) lsl 3)
  lor (b 5 lsl 2) lor 0b01

let enc_cb ~funct3 ~rs1 off =
  let b i = (off lsr i) land 1 in
  (funct3 lsl 13)
  lor (b 8 lsl 12)
  lor (((off lsr 3) land 3) lsl 10)
  lor ((rs1 - 8) lsl 7)
  lor (((off lsr 6) land 3) lsl 5)
  lor (((off lsr 1) land 3) lsl 3)
  lor (b 5 lsl 2) lor 0b01

let compress i =
  match i with
  | Op_imm (ADDI, rd, rs1, imm)
    when rd = rs1 && rd <> 0 && fits_signed ~width:6 imm && imm <> 0 ->
      Some (enc_ci ~funct3:0 ~rd ~imm ~quad:0b01)
  | Op_imm (ADDI, rd, 0, imm) when rd <> 0 && fits_signed ~width:6 imm ->
      Some (enc_ci ~funct3:0b010 ~rd ~imm ~quad:0b01)
  | Op_imm (ANDI, rd, rs1, imm)
    when rd = rs1 && is_r3 rd && fits_signed ~width:6 imm ->
      (enc_ci ~funct3:0b100 ~rd:(rd - 8) ~imm ~quad:0b01)
      lor (0b10 lsl 10)
      |> Option.some
  | Op (op, rd, rs1, rs2)
    when rd = rs1 && is_r3 rd && is_r3 rs2
         && (op = SUB || op = XOR || op = OR || op = AND) ->
      let sel =
        match op with SUB -> 0 | XOR -> 1 | OR -> 2 | AND -> 3 | _ -> 0
      in
      Some
        ((0b100 lsl 13) lor (0b011 lsl 10) lor ((rd - 8) lsl 7)
        lor (sel lsl 5)
        lor ((rs2 - 8) lsl 2)
        lor 0b01)
  | Op (ADD, rd, 0, rs2) when rd <> 0 && rs2 <> 0 ->
      Some ((0b100 lsl 13) lor (rd lsl 7) lor (rs2 lsl 2) lor 0b10)
  | Op (ADD, rd, rs1, rs2) when rd = rs1 && rd <> 0 && rs2 <> 0 ->
      Some ((0b100 lsl 13) lor (1 lsl 12) lor (rd lsl 7) lor (rs2 lsl 2) lor 0b10)
  | Shift_imm (SLLI, rd, rs1, sh) when rd = rs1 && rd <> 0 && sh < 32 ->
      Some (enc_ci ~funct3:0 ~rd ~imm:sh ~quad:0b10)
  | Shift_imm (SRLI, rd, rs1, sh) when rd = rs1 && is_r3 rd && sh < 32 ->
      Some (enc_ci ~funct3:0b100 ~rd:(rd - 8) ~imm:sh ~quad:0b01)
  | Shift_imm (SRAI, rd, rs1, sh) when rd = rs1 && is_r3 rd && sh < 32 ->
      Some
        ((enc_ci ~funct3:0b100 ~rd:(rd - 8) ~imm:sh ~quad:0b01)
        lor (0b01 lsl 10))
  | Jal (0, off) when fits_signed ~width:12 off && off land 1 = 0 ->
      Some (enc_cj ~funct3:0b101 off)
  | Jal (1, off) when fits_signed ~width:12 off && off land 1 = 0 ->
      Some (enc_cj ~funct3:0b001 off)
  | Jalr (0, rs1, 0) when rs1 <> 0 ->
      Some ((0b100 lsl 13) lor (rs1 lsl 7) lor 0b10)
  | Jalr (1, rs1, 0) when rs1 <> 0 ->
      Some ((0b100 lsl 13) lor (1 lsl 12) lor (rs1 lsl 7) lor 0b10)
  | Branch (BEQ, rs1, 0, off)
    when is_r3 rs1 && fits_signed ~width:9 off && off land 1 = 0 ->
      Some (enc_cb ~funct3:0b110 ~rs1 off)
  | Branch (BNE, rs1, 0, off)
    when is_r3 rs1 && fits_signed ~width:9 off && off land 1 = 0 ->
      Some (enc_cb ~funct3:0b111 ~rs1 off)
  | Load (LW, rd, rs1, imm)
    when is_r3 rd && is_r3 rs1 && imm >= 0 && imm < 128 && imm land 3 = 0 ->
      Some
        ((0b010 lsl 13)
        lor (((imm lsr 3) land 7) lsl 10)
        lor ((rs1 - 8) lsl 7)
        lor (((imm lsr 2) land 1) lsl 6)
        lor (((imm lsr 6) land 1) lsl 5)
        lor ((rd - 8) lsl 2))
  | Store (SW, src, rs1, imm)
    when is_r3 src && is_r3 rs1 && imm >= 0 && imm < 128 && imm land 3 = 0 ->
      Some
        ((0b110 lsl 13)
        lor (((imm lsr 3) land 7) lsl 10)
        lor ((rs1 - 8) lsl 7)
        lor (((imm lsr 2) land 1) lsl 6)
        lor (((imm lsr 6) land 1) lsl 5)
        lor ((src - 8) lsl 2))
  | Load (LW, rd, 2, imm)
    when rd <> 0 && imm >= 0 && imm < 256 && imm land 3 = 0 ->
      Some
        ((0b010 lsl 13)
        lor (((imm lsr 5) land 1) lsl 12)
        lor (rd lsl 7)
        lor (((imm lsr 2) land 7) lsl 4)
        lor (((imm lsr 6) land 3) lsl 2)
        lor 0b10)
  | Store (SW, src, 2, imm)
    when imm >= 0 && imm < 256 && imm land 3 = 0 ->
      Some
        ((0b110 lsl 13)
        lor (((imm lsr 2) land 0xF) lsl 9)
        lor (((imm lsr 6) land 3) lsl 7)
        lor (src lsl 2)
        lor 0b10)
  | Ebreak -> Some ((0b100 lsl 13) lor (1 lsl 12) lor 0b10)
  | Lui (rd, imm20)
    when rd <> 0 && rd <> 2
         && (let s = S4e_bits.Bits.(to_signed (sext ~width:20 imm20)) in
             fits_signed ~width:6 s && s <> 0) ->
      let s = S4e_bits.Bits.(to_signed (sext ~width:20 imm20)) in
      Some (enc_ci ~funct3:0b011 ~rd ~imm:s ~quad:0b01)
  | _ -> None
