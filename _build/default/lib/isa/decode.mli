(** Hand-written instruction decoder (the reference decoder).

    [decode w] returns [None] for any word that is not a valid encoding
    of an implemented instruction; the emulator turns [None] into an
    illegal-instruction trap.  Words whose low two bits are not [11]
    belong to the compressed (16-bit) encoding space and also decode to
    [None] here — see {!Compressed}.

    Equivalence with the generated {!Decodetree} decoder is
    property-tested and benchmarked (experiment E7). *)

val decode : S4e_bits.Bits.word -> Instr.t option
