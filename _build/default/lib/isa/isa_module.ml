type t = I | M | A | F | C | Zicsr | B

let all = [ I; M; A; F; C; Zicsr; B ]

let name = function
  | I -> "I"
  | M -> "M"
  | A -> "A"
  | F -> "F"
  | C -> "C"
  | Zicsr -> "Zicsr"
  | B -> "B"

let of_name = function
  | "I" -> Some I
  | "M" -> Some M
  | "A" -> Some A
  | "F" -> Some F
  | "C" -> Some C
  | "Zicsr" -> Some Zicsr
  | "B" -> Some B
  | _ -> None

let mnemonics = function
  | I ->
      [ "lui"; "auipc"; "jal"; "jalr"; "beq"; "bne"; "blt"; "bge"; "bltu";
        "bgeu"; "lb"; "lh"; "lw"; "lbu"; "lhu"; "sb"; "sh"; "sw"; "addi";
        "slti"; "sltiu"; "xori"; "ori"; "andi"; "slli"; "srli"; "srai";
        "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or";
        "and"; "fence"; "fence.i"; "ecall"; "ebreak"; "mret"; "wfi" ]
  | M -> [ "mul"; "mulh"; "mulhsu"; "mulhu"; "div"; "divu"; "rem"; "remu" ]
  | A ->
      [ "lr.w"; "sc.w"; "amoswap.w"; "amoadd.w"; "amoxor.w"; "amoand.w";
        "amoor.w"; "amomin.w"; "amomax.w"; "amominu.w"; "amomaxu.w" ]
  | F ->
      [ "flw"; "fsw"; "fadd.s"; "fsub.s"; "fmul.s"; "fdiv.s"; "fsqrt.s";
        "fsgnj.s"; "fsgnjn.s"; "fsgnjx.s"; "fmin.s"; "fmax.s"; "feq.s";
        "flt.s"; "fle.s"; "fcvt.w.s"; "fcvt.wu.s"; "fcvt.s.w"; "fcvt.s.wu";
        "fmv.x.w"; "fmv.w.x" ]
  | C -> []
  | Zicsr -> [ "csrrw"; "csrrs"; "csrrc"; "csrrwi"; "csrrsi"; "csrrci" ]
  | B ->
      [ "andn"; "orn"; "xnor"; "clz"; "ctz"; "cpop"; "rol"; "ror"; "rori";
        "min"; "max"; "minu"; "maxu"; "sext.b"; "sext.h"; "zext.h"; "rev8";
        "orc.b"; "bset"; "bclr"; "binv"; "bext"; "bseti"; "bclri"; "binvi";
        "bexti" ]

let universe modules =
  List.sort_uniq String.compare (List.concat_map mnemonics modules)

let isa_string modules =
  let base, exts =
    List.partition
      (fun m -> match m with I | M | A | F | C -> true | Zicsr | B -> false)
      modules
  in
  let base_str = String.concat "" (List.map name base) in
  let ext_str = String.concat "_" (List.map name exts) in
  "RV32" ^ base_str ^ (if ext_str = "" then "" else "_" ^ ext_str)
