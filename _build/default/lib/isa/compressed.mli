(** RVC (compressed, 16-bit) instruction support.

    Compressed instructions are expanded to the base {!Instr.t} AST at
    decode time, as in QEMU; the emulator only needs the expansion plus
    the encoded size to advance the PC.  [compress] is the partial
    inverse used by the assembler when the C extension is enabled: it
    re-encodes an instruction as 16 bits when a compressed form exists.

    Round trip: [decode16 h = Some i] implies the expansion [i] executes
    identically to the 32-bit form, and [compress i = Some h'] implies
    [decode16 h' = Some i]. *)

val decode16 : int -> Instr.t option
(** [decode16 h] expands the 16-bit halfword [h] (low 16 bits used).
    Returns [None] for reserved or illegal encodings, including the
    defined-illegal all-zeros halfword.  The halfword must satisfy
    [h land 3 <> 3] to be a compressed encoding; words failing that are
    rejected. *)

val compress : Instr.t -> int option
(** [compress i] is a 16-bit encoding of [i] if one exists.  Guarantees
    [decode16 (compress i) = Some i] (property-tested). *)
