open Instr

type word = int

type spec = {
  name : string;
  mask : word;
  value : word;
  operands : word -> Instr.t;
}

type node =
  | Leaf of spec array
  | Switch of {
      bit_mask : word;  (* the field bits this node switches on *)
      positions : int array;  (* their positions, ascending *)
      table : node array;  (* indexed by the extracted field value *)
    }

type t = node

(* Extract the bits selected by [positions] (ascending) into a dense
   integer: position.(0) becomes bit 0 of the result. *)
let extract positions w =
  let r = ref 0 in
  for i = Array.length positions - 1 downto 0 do
    r := (!r lsl 1) lor ((w lsr positions.(i)) land 1)
  done;
  !r

let positions_of_mask m =
  let rec go i acc = if i > 31 then List.rev acc
    else go (i + 1) (if (m lsr i) land 1 = 1 then i :: acc else acc)
  in
  Array.of_list (go 0 [])

let check_overlap rows =
  let overlaps a b =
    let common = a.mask land b.mask in
    a.value land common = b.value land common
  in
  let rec go = function
    | [] -> None
    | r :: rest -> (
        match List.find_opt (overlaps r) rest with
        | Some other -> Some (r.name, other.name)
        | None -> go rest)
  in
  go rows

(* Maximum field width switched on by one node; wider common masks are
   split across nested nodes to bound table sizes at 256 entries. *)
let max_switch_bits = 8

let compile rows =
  List.iter
    (fun r ->
      if r.value land r.mask <> r.value then
        invalid_arg
          (Printf.sprintf "Decodetree.compile: row %s has value bits outside \
                           its mask" r.name))
    rows;
  (match check_overlap rows with
  | Some (a, b) ->
      invalid_arg
        (Printf.sprintf "Decodetree.compile: rows %s and %s overlap" a b)
  | None -> ());
  (* [remaining] maps each row to the mask bits not yet consumed by
     enclosing switch nodes. *)
  let rec build (pairs : (spec * word) list) =
    match pairs with
    | [] -> Leaf [||]
    | _ when List.length pairs <= 2 ->
        Leaf (Array.of_list (List.map fst pairs))
    | _ ->
        let common =
          List.fold_left (fun acc (_, rem) -> acc land rem) 0xFFFF_FFFF pairs
        in
        if common = 0 then Leaf (Array.of_list (List.map fst pairs))
        else
          let all_positions = positions_of_mask common in
          let take = min max_switch_bits (Array.length all_positions) in
          let positions = Array.sub all_positions 0 take in
          let bit_mask =
            Array.fold_left (fun acc p -> acc lor (1 lsl p)) 0 positions
          in
          let buckets = Hashtbl.create 16 in
          List.iter
            (fun (row, rem) ->
              let key = extract positions row.value in
              let prev =
                Option.value (Hashtbl.find_opt buckets key) ~default:[]
              in
              Hashtbl.replace buckets key
                ((row, rem land lnot bit_mask) :: prev))
            pairs;
          let table = Array.make (1 lsl take) (Leaf [||]) in
          Hashtbl.iter
            (fun key sub -> table.(key) <- build (List.rev sub))
            buckets;
          Switch { bit_mask; positions; table }
  in
  build (List.map (fun r -> (r, r.mask)) rows)

let decode tree w =
  if w land 0x3 <> 0x3 then None
  else
    let rec go = function
      | Leaf rows ->
          let n = Array.length rows in
          let rec scan i =
            if i >= n then None
            else
              let r = Array.unsafe_get rows i in
              if w land r.mask = r.value then Some (r.operands w)
              else scan (i + 1)
          in
          scan 0
      | Switch { positions; table; _ } -> go table.(extract positions w)
    in
    go tree

type stats = { rows : int; switch_nodes : int; leaves : int; max_depth : int;
               max_leaf_width : int }

let stats tree =
  let switch_nodes = ref 0 and leaves = ref 0 in
  let max_depth = ref 0 and max_leaf_width = ref 0 and rows = ref 0 in
  let rec go depth = function
    | Leaf rs ->
        incr leaves;
        rows := !rows + Array.length rs;
        if depth > !max_depth then max_depth := depth;
        if Array.length rs > !max_leaf_width then
          max_leaf_width := Array.length rs
    | Switch { table; _ } ->
        incr switch_nodes;
        Array.iter (go (depth + 1)) table
  in
  go 0 tree;
  { rows = !rows; switch_nodes = !switch_nodes; leaves = !leaves;
    max_depth = !max_depth; max_leaf_width = !max_leaf_width }

(* ------------------------------------------------------------------ *)
(* The RV32 row table.  Masks follow the encoding formats:
   - opcode only                       0x0000007F
   - opcode + funct3                   0x0000707F
   - opcode + funct3 + funct7          0xFE00707F
   - opcode + funct3 + imm12/funct12   0xFFF0707F
   - exact word                        0xFFFFFFFF *)

let m_op = 0x0000_007F
let m_f3 = 0x0000_707F
let m_f7 = 0xFE00_707F
let m_i12 = 0xFFF0_707F
let m_exact = 0xFFFF_FFFF

let v ~opcode ?(funct3 = 0) ?(funct7 = 0) ?(rs2 = 0) () =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (funct3 lsl 12) lor opcode

let row name mask value operands = { name; mask; value; operands }

let r_ops f w = f (Fields.rd w) (Fields.rs1 w) (Fields.rs2 w)

let rv32_rows =
  let op_rows =
    List.map
      (fun (name, f3, f7, op) ->
        row name m_f7
          (v ~opcode:0x33 ~funct3:f3 ~funct7:f7 ())
          (r_ops (fun rd rs1 rs2 -> Op (op, rd, rs1, rs2))))
      [ ("add", 0, 0x00, ADD); ("sub", 0, 0x20, SUB); ("sll", 1, 0x00, SLL);
        ("slt", 2, 0x00, SLT); ("sltu", 3, 0x00, SLTU); ("xor", 4, 0x00, XOR);
        ("srl", 5, 0x00, SRL); ("sra", 5, 0x20, SRA); ("or", 6, 0x00, OR);
        ("and", 7, 0x00, AND); ("mul", 0, 0x01, MUL); ("mulh", 1, 0x01, MULH);
        ("mulhsu", 2, 0x01, MULHSU); ("mulhu", 3, 0x01, MULHU);
        ("div", 4, 0x01, DIV); ("divu", 5, 0x01, DIVU); ("rem", 6, 0x01, REM);
        ("remu", 7, 0x01, REMU); ("andn", 7, 0x20, ANDN);
        ("orn", 6, 0x20, ORN); ("xnor", 4, 0x20, XNOR); ("rol", 1, 0x30, ROL);
        ("ror", 5, 0x30, ROR); ("min", 4, 0x05, MIN); ("minu", 5, 0x05, MINU);
        ("max", 6, 0x05, MAX); ("maxu", 7, 0x05, MAXU);
        ("bset", 1, 0x14, BSET); ("bclr", 1, 0x24, BCLR);
        ("binv", 1, 0x34, BINV); ("bext", 5, 0x24, BEXT) ]
  in
  let op_imm_rows =
    List.map
      (fun (name, f3, op) ->
        row name m_f3
          (v ~opcode:0x13 ~funct3:f3 ())
          (fun w -> Op_imm (op, Fields.rd w, Fields.rs1 w, Fields.i_imm w)))
      [ ("addi", 0, ADDI); ("slti", 2, SLTI); ("sltiu", 3, SLTIU);
        ("xori", 4, XORI); ("ori", 6, ORI); ("andi", 7, ANDI) ]
  in
  let shift_rows =
    List.map
      (fun (name, f3, f7, op) ->
        row name m_f7
          (v ~opcode:0x13 ~funct3:f3 ~funct7:f7 ())
          (fun w -> Shift_imm (op, Fields.rd w, Fields.rs1 w, Fields.shamt w)))
      [ ("slli", 1, 0x00, SLLI); ("srli", 5, 0x00, SRLI);
        ("srai", 5, 0x20, SRAI); ("rori", 5, 0x30, RORI);
        ("bseti", 1, 0x14, BSETI); ("bclri", 1, 0x24, BCLRI);
        ("binvi", 1, 0x34, BINVI); ("bexti", 5, 0x24, BEXTI) ]
  in
  let unary_rows =
    List.map
      (fun (name, f3, f7, rs2, op) ->
        row name m_i12
          (v ~opcode:0x13 ~funct3:f3 ~funct7:f7 ~rs2 ())
          (fun w -> Unary (op, Fields.rd w, Fields.rs1 w)))
      [ ("clz", 1, 0x30, 0, CLZ); ("ctz", 1, 0x30, 1, CTZ);
        ("cpop", 1, 0x30, 2, CPOP); ("sext.b", 1, 0x30, 4, SEXT_B);
        ("sext.h", 1, 0x30, 5, SEXT_H); ("rev8", 5, 0x34, 0x18, REV8);
        ("orc.b", 5, 0x14, 0x07, ORC_B) ]
  in
  let load_rows =
    List.map
      (fun (name, f3, op) ->
        row name m_f3
          (v ~opcode:0x03 ~funct3:f3 ())
          (fun w -> Load (op, Fields.rd w, Fields.rs1 w, Fields.i_imm w)))
      [ ("lb", 0, LB); ("lh", 1, LH); ("lw", 2, LW); ("lbu", 4, LBU);
        ("lhu", 5, LHU) ]
  in
  let store_rows =
    List.map
      (fun (name, f3, op) ->
        row name m_f3
          (v ~opcode:0x23 ~funct3:f3 ())
          (fun w -> Store (op, Fields.rs2 w, Fields.rs1 w, Fields.s_imm w)))
      [ ("sb", 0, SB); ("sh", 1, SH); ("sw", 2, SW) ]
  in
  let branch_rows =
    List.map
      (fun (name, f3, op) ->
        row name m_f3
          (v ~opcode:0x63 ~funct3:f3 ())
          (fun w -> Branch (op, Fields.rs1 w, Fields.rs2 w, Fields.b_imm w)))
      [ ("beq", 0, BEQ); ("bne", 1, BNE); ("blt", 4, BLT); ("bge", 5, BGE);
        ("bltu", 6, BLTU); ("bgeu", 7, BGEU) ]
  in
  let csr_rows =
    List.map
      (fun (name, f3, op) ->
        row name m_f3
          (v ~opcode:0x73 ~funct3:f3 ())
          (fun w -> Csr (op, Fields.rd w, Fields.csr w, Fields.rs1 w)))
      [ ("csrrw", 1, CSRRW); ("csrrs", 2, CSRRS); ("csrrc", 3, CSRRC);
        ("csrrwi", 5, CSRRWI); ("csrrsi", 6, CSRRSI); ("csrrci", 7, CSRRCI) ]
  in
  let fp_arith_rows =
    (* funct3 is the rounding mode and is ignored by our FP model, so
       the mask excludes it, as the hand decoder does. *)
    List.map
      (fun (name, f7, op) ->
        row name 0xFE00_007F
          (v ~opcode:0x53 ~funct7:f7 ())
          (r_ops (fun rd rs1 rs2 -> Fp_op (op, rd, rs1, rs2))))
      [ ("fadd.s", 0x00, FADD); ("fsub.s", 0x04, FSUB);
        ("fmul.s", 0x08, FMUL); ("fdiv.s", 0x0C, FDIV) ]
  in
  let fp_f3_rows =
    List.map
      (fun (name, f3, f7, build) -> row name m_f7 (v ~opcode:0x53 ~funct3:f3 ~funct7:f7 ()) build)
      [ ("fsgnj.s", 0, 0x10, r_ops (fun rd rs1 rs2 -> Fp_op (FSGNJ, rd, rs1, rs2)));
        ("fsgnjn.s", 1, 0x10, r_ops (fun rd rs1 rs2 -> Fp_op (FSGNJN, rd, rs1, rs2)));
        ("fsgnjx.s", 2, 0x10, r_ops (fun rd rs1 rs2 -> Fp_op (FSGNJX, rd, rs1, rs2)));
        ("fmin.s", 0, 0x14, r_ops (fun rd rs1 rs2 -> Fp_op (FMIN, rd, rs1, rs2)));
        ("fmax.s", 1, 0x14, r_ops (fun rd rs1 rs2 -> Fp_op (FMAX, rd, rs1, rs2)));
        ("feq.s", 2, 0x50, r_ops (fun rd rs1 rs2 -> Fp_cmp (FEQ, rd, rs1, rs2)));
        ("flt.s", 1, 0x50, r_ops (fun rd rs1 rs2 -> Fp_cmp (FLT, rd, rs1, rs2)));
        ("fle.s", 0, 0x50, r_ops (fun rd rs1 rs2 -> Fp_cmp (FLE, rd, rs1, rs2))) ]
  in
  let amo_rows =
    (* funct5 (bits 31:27) discriminates; aq/rl (bits 26:25) are free *)
    let m_amo = 0xF800_707F in
    row "lr.w" 0xF9F0_707F
      (v ~opcode:0x2F ~funct3:2 ~funct7:(0x02 lsl 2) ())
      (fun w -> Lr (Fields.rd w, Fields.rs1 w))
    :: row "sc.w" m_amo
         (v ~opcode:0x2F ~funct3:2 ~funct7:(0x03 lsl 2) ())
         (fun w -> Sc (Fields.rd w, Fields.rs2 w, Fields.rs1 w))
    :: List.map
         (fun (name, funct5, op) ->
           row name m_amo
             (v ~opcode:0x2F ~funct3:2 ~funct7:(funct5 lsl 2) ())
             (r_ops (fun rd rs1 rs2 -> Amo (op, rd, rs2, rs1))))
         [ ("amoadd.w", 0x00, AMOADD); ("amoswap.w", 0x01, AMOSWAP);
           ("amoxor.w", 0x04, AMOXOR); ("amoor.w", 0x08, AMOOR);
           ("amoand.w", 0x0C, AMOAND); ("amomin.w", 0x10, AMOMIN);
           ("amomax.w", 0x14, AMOMAX); ("amominu.w", 0x18, AMOMINU);
           ("amomaxu.w", 0x1C, AMOMAXU) ]
  in
  let fp_unary_rows =
    List.map
      (fun (name, f7, rs2, build) ->
        row name m_i12 (v ~opcode:0x53 ~funct7:f7 ~rs2 ()) build)
      [ ("fsqrt.s", 0x2C, 0, fun w -> Fsqrt (Fields.rd w, Fields.rs1 w));
        ("fcvt.w.s", 0x60, 0, fun w -> Fcvt_w_s (Fields.rd w, Fields.rs1 w, false));
        ("fcvt.wu.s", 0x60, 1, fun w -> Fcvt_w_s (Fields.rd w, Fields.rs1 w, true));
        ("fcvt.s.w", 0x68, 0, fun w -> Fcvt_s_w (Fields.rd w, Fields.rs1 w, false));
        ("fcvt.s.wu", 0x68, 1, fun w -> Fcvt_s_w (Fields.rd w, Fields.rs1 w, true));
        ("fmv.x.w", 0x70, 0, fun w -> Fmv_x_w (Fields.rd w, Fields.rs1 w));
        ("fmv.w.x", 0x78, 0, fun w -> Fmv_w_x (Fields.rd w, Fields.rs1 w)) ]
  in
  [ row "lui" m_op 0x37 (fun w -> Lui (Fields.rd w, Fields.u_imm w));
    row "auipc" m_op 0x17 (fun w -> Auipc (Fields.rd w, Fields.u_imm w));
    row "jal" m_op 0x6F (fun w -> Jal (Fields.rd w, Fields.j_imm w));
    row "jalr" m_f3
      (v ~opcode:0x67 ())
      (fun w -> Jalr (Fields.rd w, Fields.rs1 w, Fields.i_imm w));
    row "fence" m_f3 (v ~opcode:0x0F ()) (fun _ -> Fence);
    row "fence.i" m_f3 (v ~opcode:0x0F ~funct3:1 ()) (fun _ -> Fence_i);
    row "ecall" m_exact 0x0000_0073 (fun _ -> Ecall);
    row "ebreak" m_exact 0x0010_0073 (fun _ -> Ebreak);
    row "mret" m_exact 0x3020_0073 (fun _ -> Mret);
    row "wfi" m_exact 0x1050_0073 (fun _ -> Wfi);
    row "zext.h" m_i12
      (v ~opcode:0x33 ~funct3:4 ~funct7:0x04 ())
      (fun w -> Unary (ZEXT_H, Fields.rd w, Fields.rs1 w));
    row "flw" m_f3
      (v ~opcode:0x07 ~funct3:2 ())
      (fun w -> Flw (Fields.rd w, Fields.rs1 w, Fields.i_imm w));
    row "fsw" m_f3
      (v ~opcode:0x27 ~funct3:2 ())
      (fun w -> Fsw (Fields.rs2 w, Fields.rs1 w, Fields.s_imm w)) ]
  @ op_rows @ op_imm_rows @ shift_rows @ unary_rows @ load_rows @ store_rows
  @ branch_rows @ csr_rows @ fp_arith_rows @ fp_f3_rows @ fp_unary_rows
  @ amo_rows

let compiled = lazy (compile rv32_rows)
let rv32 () = Lazy.force compiled
