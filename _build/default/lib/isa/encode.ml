open Instr

let op_lui = 0x37
let op_auipc = 0x17
let op_jal = 0x6F
let op_jalr = 0x67
let op_branch = 0x63
let op_load = 0x03
let op_store = 0x23
let op_op_imm = 0x13
let op_op = 0x33
let op_misc_mem = 0x0F
let op_system = 0x73
let op_load_fp = 0x07
let op_store_fp = 0x27
let op_op_fp = 0x53
let op_amo = 0x2F

let op_r_funct = function
  | ADD -> (0, 0x00) | SUB -> (0, 0x20) | SLL -> (1, 0x00) | SLT -> (2, 0x00)
  | SLTU -> (3, 0x00) | XOR -> (4, 0x00) | SRL -> (5, 0x00) | SRA -> (5, 0x20)
  | OR -> (6, 0x00) | AND -> (7, 0x00)
  | MUL -> (0, 0x01) | MULH -> (1, 0x01) | MULHSU -> (2, 0x01)
  | MULHU -> (3, 0x01) | DIV -> (4, 0x01) | DIVU -> (5, 0x01)
  | REM -> (6, 0x01) | REMU -> (7, 0x01)
  | ANDN -> (7, 0x20) | ORN -> (6, 0x20) | XNOR -> (4, 0x20)
  | ROL -> (1, 0x30) | ROR -> (5, 0x30)
  | MIN -> (4, 0x05) | MINU -> (5, 0x05) | MAX -> (6, 0x05) | MAXU -> (7, 0x05)
  | BSET -> (1, 0x14) | BCLR -> (1, 0x24) | BINV -> (1, 0x34)
  | BEXT -> (5, 0x24)

let op_i_funct3 = function
  | ADDI -> 0 | SLTI -> 2 | SLTIU -> 3 | XORI -> 4 | ORI -> 6 | ANDI -> 7

let op_load_funct3 = function LB -> 0 | LH -> 1 | LW -> 2 | LBU -> 4 | LHU -> 5
let op_store_funct3 = function SB -> 0 | SH -> 1 | SW -> 2

let op_branch_funct3 = function
  | BEQ -> 0 | BNE -> 1 | BLT -> 4 | BGE -> 5 | BLTU -> 6 | BGEU -> 7

let op_csr_funct3 = function
  | CSRRW -> 1 | CSRRS -> 2 | CSRRC -> 3
  | CSRRWI -> 5 | CSRRSI -> 6 | CSRRCI -> 7

let op_fp_funct = function
  | FADD -> (0, 0x00) | FSUB -> (0, 0x04) | FMUL -> (0, 0x08)
  | FDIV -> (0, 0x0C)
  | FSGNJ -> (0, 0x10) | FSGNJN -> (1, 0x10) | FSGNJX -> (2, 0x10)
  | FMIN -> (0, 0x14) | FMAX -> (1, 0x14)

let op_fp_cmp_funct3 = function FEQ -> 2 | FLT -> 1 | FLE -> 0

(* funct5 in instruction bits 31:27; aq/rl (bits 26:25) encode as 0 *)
let op_amo_funct5 = function
  | AMOADD -> 0x00 | AMOSWAP -> 0x01 | AMOXOR -> 0x04 | AMOOR -> 0x08
  | AMOAND -> 0x0C | AMOMIN -> 0x10 | AMOMAX -> 0x14 | AMOMINU -> 0x18
  | AMOMAXU -> 0x1C

(* Zbb single-source ops encode the operation selector in the rs2
   field under OP-IMM funct3=001 (clz family) or funct3=101 (rev8,
   orc.b); zext.h lives under the OP opcode. *)
let encode_unary op rd rs1 =
  let i_imm imm f3 =
    Fields.r_type ~opcode:op_op_imm ~funct3:f3 ~funct7:(imm lsr 5)
      ~rd ~rs1 ~rs2:(imm land 0x1F)
  in
  match op with
  | CLZ -> i_imm 0x600 1
  | CTZ -> i_imm 0x601 1
  | CPOP -> i_imm 0x602 1
  | SEXT_B -> i_imm 0x604 1
  | SEXT_H -> i_imm 0x605 1
  | REV8 -> i_imm 0x698 5
  | ORC_B -> i_imm 0x287 5
  | ZEXT_H -> Fields.r_type ~opcode:op_op ~funct3:4 ~funct7:0x04 ~rd ~rs1 ~rs2:0

let encode = function
  | Lui (rd, imm20) -> Fields.u_type ~opcode:op_lui ~rd ~imm20
  | Auipc (rd, imm20) -> Fields.u_type ~opcode:op_auipc ~rd ~imm20
  | Jal (rd, off) -> Fields.j_type ~opcode:op_jal ~rd ~imm:off
  | Jalr (rd, rs1, imm) ->
      Fields.i_type ~opcode:op_jalr ~funct3:0 ~rd ~rs1 ~imm
  | Branch (op, rs1, rs2, off) ->
      Fields.b_type ~opcode:op_branch ~funct3:(op_branch_funct3 op) ~rs1 ~rs2
        ~imm:off
  | Load (op, rd, base, imm) ->
      Fields.i_type ~opcode:op_load ~funct3:(op_load_funct3 op) ~rd ~rs1:base
        ~imm
  | Store (op, src, base, imm) ->
      Fields.s_type ~opcode:op_store ~funct3:(op_store_funct3 op) ~rs1:base
        ~rs2:src ~imm
  | Op_imm (op, rd, rs1, imm) ->
      Fields.i_type ~opcode:op_op_imm ~funct3:(op_i_funct3 op) ~rd ~rs1 ~imm
  | Shift_imm (op, rd, rs1, sh) ->
      assert (sh >= 0 && sh < 32);
      let funct3, funct7 =
        match op with
        | SLLI -> (1, 0x00)
        | SRLI -> (5, 0x00)
        | SRAI -> (5, 0x20)
        | RORI -> (5, 0x30)
        | BSETI -> (1, 0x14)
        | BCLRI -> (1, 0x24)
        | BINVI -> (1, 0x34)
        | BEXTI -> (5, 0x24)
      in
      Fields.r_type ~opcode:op_op_imm ~funct3 ~funct7 ~rd ~rs1 ~rs2:sh
  | Op (op, rd, rs1, rs2) ->
      let funct3, funct7 = op_r_funct op in
      Fields.r_type ~opcode:op_op ~funct3 ~funct7 ~rd ~rs1 ~rs2
  | Unary (op, rd, rs1) -> encode_unary op rd rs1
  | Fence ->
      (* fence iorw, iorw *)
      Fields.i_type ~opcode:op_misc_mem ~funct3:0 ~rd:0 ~rs1:0 ~imm:0x0FF
  | Fence_i -> Fields.i_type ~opcode:op_misc_mem ~funct3:1 ~rd:0 ~rs1:0 ~imm:0
  | Ecall -> Fields.i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:0
  | Ebreak -> Fields.i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:1
  | Mret -> Fields.i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:0x302
  | Wfi -> Fields.i_type ~opcode:op_system ~funct3:0 ~rd:0 ~rs1:0 ~imm:0x105
  | Csr (op, rd, csr, src) ->
      assert (Csr.valid csr && src >= 0 && src < 32);
      Fields.r_type ~opcode:op_system ~funct3:(op_csr_funct3 op)
        ~funct7:(csr lsr 5) ~rd ~rs1:src ~rs2:(csr land 0x1F)
  | Flw (frd, base, imm) ->
      Fields.i_type ~opcode:op_load_fp ~funct3:2 ~rd:frd ~rs1:base ~imm
  | Fsw (fsrc, base, imm) ->
      Fields.s_type ~opcode:op_store_fp ~funct3:2 ~rs1:base ~rs2:fsrc ~imm
  | Fp_op (op, frd, frs1, frs2) ->
      let funct3, funct7 = op_fp_funct op in
      Fields.r_type ~opcode:op_op_fp ~funct3 ~funct7 ~rd:frd ~rs1:frs1
        ~rs2:frs2
  | Fp_cmp (op, rd, frs1, frs2) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:(op_fp_cmp_funct3 op) ~funct7:0x50
        ~rd ~rs1:frs1 ~rs2:frs2
  | Fsqrt (frd, frs1) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:0 ~funct7:0x2C ~rd:frd ~rs1:frs1
        ~rs2:0
  | Fcvt_w_s (rd, frs1, unsigned) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:0 ~funct7:0x60 ~rd ~rs1:frs1
        ~rs2:(if unsigned then 1 else 0)
  | Fcvt_s_w (frd, rs1, unsigned) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:0 ~funct7:0x68 ~rd:frd ~rs1
        ~rs2:(if unsigned then 1 else 0)
  | Fmv_x_w (rd, frs1) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:0 ~funct7:0x70 ~rd ~rs1:frs1
        ~rs2:0
  | Fmv_w_x (frd, rs1) ->
      Fields.r_type ~opcode:op_op_fp ~funct3:0 ~funct7:0x78 ~rd:frd ~rs1 ~rs2:0
  | Lr (rd, rs1) ->
      Fields.r_type ~opcode:op_amo ~funct3:2 ~funct7:(0x02 lsl 2) ~rd ~rs1 ~rs2:0
  | Sc (rd, src, rs1) ->
      Fields.r_type ~opcode:op_amo ~funct3:2 ~funct7:(0x03 lsl 2) ~rd ~rs1 ~rs2:src
  | Amo (op, rd, src, rs1) ->
      Fields.r_type ~opcode:op_amo ~funct3:2 ~funct7:(op_amo_funct5 op lsl 2)
        ~rd ~rs1 ~rs2:src
