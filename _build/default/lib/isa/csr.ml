type t = int

let fflags = 0x001
let frm = 0x002
let fcsr = 0x003
let mvendorid = 0xF11
let marchid = 0xF12
let mimpid = 0xF13
let mhartid = 0xF14
let mstatus = 0x300
let misa = 0x301
let mie = 0x304
let mtvec = 0x305
let mscratch = 0x340
let mepc = 0x341
let mcause = 0x342
let mtval = 0x343
let mip = 0x344
let mcycle = 0xB00
let minstret = 0xB02
let cycle = 0xC00
let time = 0xC01
let instret = 0xC02
let cycleh = 0xC80
let timeh = 0xC81
let instreth = 0xC82

let valid a = a >= 0 && a < 0x1000
let is_read_only a = a lsr 10 = 0b11

let table =
  [ (fflags, "fflags"); (frm, "frm"); (fcsr, "fcsr");
    (mvendorid, "mvendorid"); (marchid, "marchid"); (mimpid, "mimpid");
    (mhartid, "mhartid"); (mstatus, "mstatus"); (misa, "misa");
    (mie, "mie"); (mtvec, "mtvec"); (mscratch, "mscratch");
    (mepc, "mepc"); (mcause, "mcause"); (mtval, "mtval"); (mip, "mip");
    (mcycle, "mcycle"); (minstret, "minstret");
    (cycle, "cycle"); (time, "time"); (instret, "instret");
    (cycleh, "cycleh"); (timeh, "timeh"); (instreth, "instreth") ]

let name a =
  match List.assoc_opt a table with
  | Some n -> n
  | None -> Printf.sprintf "csr0x%03x" a

let of_name s =
  let rec go = function
    | [] -> None
    | (a, n) :: rest -> if String.equal n s then Some a else go rest
  in
  go table

let implemented = List.sort compare (List.map fst table)
