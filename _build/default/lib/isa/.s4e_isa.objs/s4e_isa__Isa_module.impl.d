lib/isa/isa_module.ml: List String
