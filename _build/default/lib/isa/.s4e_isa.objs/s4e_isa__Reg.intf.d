lib/isa/reg.mli:
