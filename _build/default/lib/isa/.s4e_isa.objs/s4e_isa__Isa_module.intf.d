lib/isa/isa_module.mli:
