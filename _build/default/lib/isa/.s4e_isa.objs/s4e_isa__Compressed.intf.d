lib/isa/compressed.mli: Instr
