lib/isa/decodetree.ml: Array Fields Hashtbl Instr Lazy List Option Printf
