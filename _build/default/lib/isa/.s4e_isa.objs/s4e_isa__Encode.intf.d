lib/isa/encode.mli: Instr S4e_bits
