lib/isa/decodetree.mli: Instr S4e_bits
