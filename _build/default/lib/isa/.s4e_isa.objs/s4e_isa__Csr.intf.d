lib/isa/csr.mli:
