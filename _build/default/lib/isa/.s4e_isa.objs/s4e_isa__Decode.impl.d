lib/isa/decode.ml: Fields Instr Option
