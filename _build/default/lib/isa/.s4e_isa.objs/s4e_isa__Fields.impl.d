lib/isa/fields.ml: S4e_bits
