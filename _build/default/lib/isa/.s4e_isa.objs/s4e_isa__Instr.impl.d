lib/isa/instr.ml: Csr Format Reg
