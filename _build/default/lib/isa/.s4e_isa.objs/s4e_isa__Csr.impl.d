lib/isa/csr.ml: List Printf String
