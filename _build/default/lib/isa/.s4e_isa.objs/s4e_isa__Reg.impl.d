lib/isa/reg.ml: Array String
