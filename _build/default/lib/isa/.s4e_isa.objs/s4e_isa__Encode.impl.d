lib/isa/encode.ml: Csr Fields Instr
