lib/isa/compressed.ml: Instr Option Reg S4e_bits
