lib/isa/decode.mli: Instr S4e_bits
