(* Bit-field extraction and insertion for the RV32 instruction formats.
   Shared by the encoder, the hand decoder, and the DecodeTree builders so
   that immediate scrambling logic exists in exactly one place. *)

let rd w = S4e_bits.Bits.bits ~hi:11 ~lo:7 w
let rs1 w = S4e_bits.Bits.bits ~hi:19 ~lo:15 w
let rs2 w = S4e_bits.Bits.bits ~hi:24 ~lo:20 w
let funct3 w = S4e_bits.Bits.bits ~hi:14 ~lo:12 w
let funct7 w = S4e_bits.Bits.bits ~hi:31 ~lo:25 w
let opcode w = w land 0x7F

(* Immediates are returned as signed native ints. *)

let i_imm w = S4e_bits.Bits.(to_signed (sext ~width:12 (bits ~hi:31 ~lo:20 w)))

let s_imm w =
  let open S4e_bits.Bits in
  let v = (bits ~hi:31 ~lo:25 w lsl 5) lor bits ~hi:11 ~lo:7 w in
  to_signed (sext ~width:12 v)

let b_imm w =
  let open S4e_bits.Bits in
  let v =
    (bit 31 w lsl 12) lor (bit 7 w lsl 11)
    lor (bits ~hi:30 ~lo:25 w lsl 5)
    lor (bits ~hi:11 ~lo:8 w lsl 1)
  in
  to_signed (sext ~width:13 v)

let u_imm w = S4e_bits.Bits.bits ~hi:31 ~lo:12 w

let j_imm w =
  let open S4e_bits.Bits in
  let v =
    (bit 31 w lsl 20)
    lor (bits ~hi:19 ~lo:12 w lsl 12)
    lor (bit 20 w lsl 11)
    lor (bits ~hi:30 ~lo:21 w lsl 1)
  in
  to_signed (sext ~width:21 v)

let csr w = S4e_bits.Bits.bits ~hi:31 ~lo:20 w
let shamt w = S4e_bits.Bits.bits ~hi:24 ~lo:20 w

(* Insertion: all build a full 32-bit word from parts.  Immediate
   arguments are signed ints; range is the caller's responsibility
   (checked with assertions). *)

let in_range ~bitsz v =
  v >= -(1 lsl (bitsz - 1)) && v < 1 lsl (bitsz - 1)

let r_type ~opcode ~funct3 ~funct7 ~rd ~rs1 ~rs2 =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~opcode ~funct3 ~rd ~rs1 ~imm =
  assert (in_range ~bitsz:12 imm);
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let s_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  assert (in_range ~bitsz:12 imm);
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opcode

let b_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  assert (in_range ~bitsz:13 imm && imm land 1 = 0);
  let imm = imm land 0x1FFF in
  (((imm lsr 12) land 1) lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)
  lor opcode

let u_type ~opcode ~rd ~imm20 =
  assert (imm20 >= 0 && imm20 < 1 lsl 20);
  (imm20 lsl 12) lor (rd lsl 7) lor opcode

let j_type ~opcode ~rd ~imm =
  assert (in_range ~bitsz:21 imm && imm land 1 = 0);
  let imm = imm land 0x1F_FFFF in
  (((imm lsr 20) land 1) lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor opcode
