open Instr

(* Decoding is a straightforward dispatch on opcode, then funct3/funct7.
   Reserved field values (e.g. nonzero funct7 on ADDI's opcode space
   where a shift is not intended) yield None so that fault-injected
   words trap instead of silently executing. *)

let decode_op w =
  let rd = Fields.rd w and rs1 = Fields.rs1 w and rs2 = Fields.rs2 w in
  let op =
    match (Fields.funct3 w, Fields.funct7 w) with
    | 0, 0x00 -> Some ADD
    | 0, 0x20 -> Some SUB
    | 1, 0x00 -> Some SLL
    | 2, 0x00 -> Some SLT
    | 3, 0x00 -> Some SLTU
    | 4, 0x00 -> Some XOR
    | 5, 0x00 -> Some SRL
    | 5, 0x20 -> Some SRA
    | 6, 0x00 -> Some OR
    | 7, 0x00 -> Some AND
    | 0, 0x01 -> Some MUL
    | 1, 0x01 -> Some MULH
    | 2, 0x01 -> Some MULHSU
    | 3, 0x01 -> Some MULHU
    | 4, 0x01 -> Some DIV
    | 5, 0x01 -> Some DIVU
    | 6, 0x01 -> Some REM
    | 7, 0x01 -> Some REMU
    | 7, 0x20 -> Some ANDN
    | 6, 0x20 -> Some ORN
    | 4, 0x20 -> Some XNOR
    | 1, 0x30 -> Some ROL
    | 5, 0x30 -> Some ROR
    | 4, 0x05 -> Some MIN
    | 5, 0x05 -> Some MINU
    | 6, 0x05 -> Some MAX
    | 7, 0x05 -> Some MAXU
    | 1, 0x14 -> Some BSET
    | 1, 0x24 -> Some BCLR
    | 1, 0x34 -> Some BINV
    | 5, 0x24 -> Some BEXT
    | _, _ -> None
  in
  match op with
  | Some op -> Some (Op (op, rd, rs1, rs2))
  | None ->
      if Fields.funct3 w = 4 && Fields.funct7 w = 0x04 && rs2 = 0 then
        Some (Unary (ZEXT_H, rd, rs1))
      else None

let decode_op_imm w =
  let rd = Fields.rd w and rs1 = Fields.rs1 w in
  let imm = Fields.i_imm w in
  let shamt = Fields.shamt w and funct7 = Fields.funct7 w in
  match Fields.funct3 w with
  | 0 -> Some (Op_imm (ADDI, rd, rs1, imm))
  | 2 -> Some (Op_imm (SLTI, rd, rs1, imm))
  | 3 -> Some (Op_imm (SLTIU, rd, rs1, imm))
  | 4 -> Some (Op_imm (XORI, rd, rs1, imm))
  | 6 -> Some (Op_imm (ORI, rd, rs1, imm))
  | 7 -> Some (Op_imm (ANDI, rd, rs1, imm))
  | 1 -> (
      match funct7 with
      | 0x00 -> Some (Shift_imm (SLLI, rd, rs1, shamt))
      | 0x14 -> Some (Shift_imm (BSETI, rd, rs1, shamt))
      | 0x24 -> Some (Shift_imm (BCLRI, rd, rs1, shamt))
      | 0x34 -> Some (Shift_imm (BINVI, rd, rs1, shamt))
      | 0x30 -> (
          match shamt with
          | 0 -> Some (Unary (CLZ, rd, rs1))
          | 1 -> Some (Unary (CTZ, rd, rs1))
          | 2 -> Some (Unary (CPOP, rd, rs1))
          | 4 -> Some (Unary (SEXT_B, rd, rs1))
          | 5 -> Some (Unary (SEXT_H, rd, rs1))
          | _ -> None)
      | _ -> None)
  | 5 -> (
      match funct7 with
      | 0x00 -> Some (Shift_imm (SRLI, rd, rs1, shamt))
      | 0x20 -> Some (Shift_imm (SRAI, rd, rs1, shamt))
      | 0x30 -> Some (Shift_imm (RORI, rd, rs1, shamt))
      | 0x24 -> Some (Shift_imm (BEXTI, rd, rs1, shamt))
      | 0x34 when shamt = 0x18 -> Some (Unary (REV8, rd, rs1))
      | 0x14 when shamt = 0x07 -> Some (Unary (ORC_B, rd, rs1))
      | _ -> None)
  | _ -> None

let decode_load w =
  let rd = Fields.rd w and rs1 = Fields.rs1 w and imm = Fields.i_imm w in
  let op =
    match Fields.funct3 w with
    | 0 -> Some LB
    | 1 -> Some LH
    | 2 -> Some LW
    | 4 -> Some LBU
    | 5 -> Some LHU
    | _ -> None
  in
  Option.map (fun op -> Load (op, rd, rs1, imm)) op

let decode_store w =
  let rs1 = Fields.rs1 w and rs2 = Fields.rs2 w and imm = Fields.s_imm w in
  let op =
    match Fields.funct3 w with
    | 0 -> Some SB
    | 1 -> Some SH
    | 2 -> Some SW
    | _ -> None
  in
  Option.map (fun op -> Store (op, rs2, rs1, imm)) op

let decode_branch w =
  let rs1 = Fields.rs1 w and rs2 = Fields.rs2 w and imm = Fields.b_imm w in
  let op =
    match Fields.funct3 w with
    | 0 -> Some BEQ
    | 1 -> Some BNE
    | 4 -> Some BLT
    | 5 -> Some BGE
    | 6 -> Some BLTU
    | 7 -> Some BGEU
    | _ -> None
  in
  Option.map (fun op -> Branch (op, rs1, rs2, imm)) op

let decode_system w =
  let rd = Fields.rd w and rs1 = Fields.rs1 w in
  match Fields.funct3 w with
  | 0 -> (
      if rd <> 0 || rs1 <> 0 then None
      else
        match Fields.csr w with
        | 0x000 -> Some Ecall
        | 0x001 -> Some Ebreak
        | 0x302 -> Some Mret
        | 0x105 -> Some Wfi
        | _ -> None)
  | 1 -> Some (Csr (CSRRW, rd, Fields.csr w, rs1))
  | 2 -> Some (Csr (CSRRS, rd, Fields.csr w, rs1))
  | 3 -> Some (Csr (CSRRC, rd, Fields.csr w, rs1))
  | 5 -> Some (Csr (CSRRWI, rd, Fields.csr w, rs1))
  | 6 -> Some (Csr (CSRRSI, rd, Fields.csr w, rs1))
  | 7 -> Some (Csr (CSRRCI, rd, Fields.csr w, rs1))
  | _ -> None

let decode_misc_mem w =
  match Fields.funct3 w with
  | 0 -> Some Fence
  | 1 -> Some Fence_i
  | _ -> None

let decode_op_fp w =
  let rd = Fields.rd w and rs1 = Fields.rs1 w and rs2 = Fields.rs2 w in
  let f3 = Fields.funct3 w in
  match Fields.funct7 w with
  | 0x00 -> Some (Fp_op (FADD, rd, rs1, rs2))
  | 0x04 -> Some (Fp_op (FSUB, rd, rs1, rs2))
  | 0x08 -> Some (Fp_op (FMUL, rd, rs1, rs2))
  | 0x0C -> Some (Fp_op (FDIV, rd, rs1, rs2))
  | 0x10 -> (
      match f3 with
      | 0 -> Some (Fp_op (FSGNJ, rd, rs1, rs2))
      | 1 -> Some (Fp_op (FSGNJN, rd, rs1, rs2))
      | 2 -> Some (Fp_op (FSGNJX, rd, rs1, rs2))
      | _ -> None)
  | 0x14 -> (
      match f3 with
      | 0 -> Some (Fp_op (FMIN, rd, rs1, rs2))
      | 1 -> Some (Fp_op (FMAX, rd, rs1, rs2))
      | _ -> None)
  | 0x50 -> (
      match f3 with
      | 2 -> Some (Fp_cmp (FEQ, rd, rs1, rs2))
      | 1 -> Some (Fp_cmp (FLT, rd, rs1, rs2))
      | 0 -> Some (Fp_cmp (FLE, rd, rs1, rs2))
      | _ -> None)
  | 0x2C -> if rs2 = 0 && f3 = 0 then Some (Fsqrt (rd, rs1)) else None
  | 0x60 -> (
      match (rs2, f3) with
      | 0, 0 -> Some (Fcvt_w_s (rd, rs1, false))
      | 1, 0 -> Some (Fcvt_w_s (rd, rs1, true))
      | _ -> None)
  | 0x68 -> (
      match (rs2, f3) with
      | 0, 0 -> Some (Fcvt_s_w (rd, rs1, false))
      | 1, 0 -> Some (Fcvt_s_w (rd, rs1, true))
      | _ -> None)
  | 0x70 -> if rs2 = 0 && f3 = 0 then Some (Fmv_x_w (rd, rs1)) else None
  | 0x78 -> if rs2 = 0 && f3 = 0 then Some (Fmv_w_x (rd, rs1)) else None
  | _ -> None

(* A-extension: funct5 discriminates; aq/rl bits are accepted as any. *)
let decode_amo w =
  if Fields.funct3 w <> 2 then None
  else
    let rd = Fields.rd w and rs1 = Fields.rs1 w and rs2 = Fields.rs2 w in
    match Fields.funct7 w lsr 2 with
    | 0x02 -> if rs2 = 0 then Some (Lr (rd, rs1)) else None
    | 0x03 -> Some (Sc (rd, rs2, rs1))
    | 0x00 -> Some (Amo (AMOADD, rd, rs2, rs1))
    | 0x01 -> Some (Amo (AMOSWAP, rd, rs2, rs1))
    | 0x04 -> Some (Amo (AMOXOR, rd, rs2, rs1))
    | 0x08 -> Some (Amo (AMOOR, rd, rs2, rs1))
    | 0x0C -> Some (Amo (AMOAND, rd, rs2, rs1))
    | 0x10 -> Some (Amo (AMOMIN, rd, rs2, rs1))
    | 0x14 -> Some (Amo (AMOMAX, rd, rs2, rs1))
    | 0x18 -> Some (Amo (AMOMINU, rd, rs2, rs1))
    | 0x1C -> Some (Amo (AMOMAXU, rd, rs2, rs1))
    | _ -> None

let decode w =
  if w land 0x3 <> 0x3 then None
  else
    match Fields.opcode w with
    | 0x37 -> Some (Lui (Fields.rd w, Fields.u_imm w))
    | 0x17 -> Some (Auipc (Fields.rd w, Fields.u_imm w))
    | 0x6F -> Some (Jal (Fields.rd w, Fields.j_imm w))
    | 0x67 ->
        if Fields.funct3 w = 0 then
          Some (Jalr (Fields.rd w, Fields.rs1 w, Fields.i_imm w))
        else None
    | 0x63 -> decode_branch w
    | 0x03 -> decode_load w
    | 0x23 -> decode_store w
    | 0x13 -> decode_op_imm w
    | 0x33 -> decode_op w
    | 0x0F -> decode_misc_mem w
    | 0x73 -> decode_system w
    | 0x07 -> if Fields.funct3 w = 2 then
                Some (Flw (Fields.rd w, Fields.rs1 w, Fields.i_imm w))
              else None
    | 0x27 -> if Fields.funct3 w = 2 then
                Some (Fsw (Fields.rs2 w, Fields.rs1 w, Fields.s_imm w))
              else None
    | 0x53 -> decode_op_fp w
    | 0x2F -> decode_amo w
    | _ -> None
