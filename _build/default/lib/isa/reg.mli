(** General-purpose and floating-point register names.

    Registers are represented as plain integers in [0, 31] for speed in
    the interpreter loop; this module provides the ABI naming used by
    the assembler, disassembler, and coverage reports. *)

type t = int
(** A register index.  Invariant: [0 <= r <= 31]. *)

val count : int
(** Number of registers in each file (32). *)

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val fp : t

val t0 : t
val t1 : t
val t2 : t

val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t

val s0 : t
val s1 : t
val s2 : t
val s3 : t

val valid : t -> bool
(** [valid r] is [true] iff [0 <= r <= 31]. *)

val abi_name : t -> string
(** ABI name of a GPR, e.g. [abi_name 2 = "sp"]. *)

val x_name : t -> string
(** Architectural name, e.g. [x_name 2 = "x2"]. *)

val f_name : t -> string
(** FPR ABI name, e.g. [f_name 10 = "fa0"]. *)

val of_name : string -> t option
(** Parses either architectural ([x0]..[x31]) or ABI GPR names. *)

val f_of_name : string -> t option
(** Parses either architectural ([f0]..[f31]) or ABI FPR names. *)
