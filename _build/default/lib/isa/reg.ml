type t = int

let count = 32
let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let fp = 8
let t0 = 5
let t1 = 6
let t2 = 7
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s0 = 8
let s1 = 9
let s2 = 18
let s3 = 19

let valid r = r >= 0 && r <= 31

let abi_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2";
     "s0"; "s1"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5";
     "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let f_abi_names =
  [| "ft0"; "ft1"; "ft2"; "ft3"; "ft4"; "ft5"; "ft6"; "ft7";
     "fs0"; "fs1"; "fa0"; "fa1"; "fa2"; "fa3"; "fa4"; "fa5";
     "fa6"; "fa7"; "fs2"; "fs3"; "fs4"; "fs5"; "fs6"; "fs7";
     "fs8"; "fs9"; "fs10"; "fs11"; "ft8"; "ft9"; "ft10"; "ft11" |]

let abi_name r =
  assert (valid r);
  abi_names.(r)

let x_name r =
  assert (valid r);
  "x" ^ string_of_int r

let f_name r =
  assert (valid r);
  f_abi_names.(r)

let find_in_array names s =
  let rec go i =
    if i >= Array.length names then None
    else if String.equal names.(i) s then Some i
    else go (i + 1)
  in
  go 0

let parse_indexed prefix s =
  let n = String.length prefix in
  if String.length s > n && String.length s <= n + 2
     && String.sub s 0 n = prefix then
    match int_of_string_opt (String.sub s n (String.length s - n)) with
    | Some i when valid i -> Some i
    | Some _ | None -> None
  else None

let of_name s =
  match parse_indexed "x" s with
  | Some r -> Some r
  | None -> (
      match s with
      | "fp" -> Some fp
      | _ -> find_in_array abi_names s)

let f_of_name s =
  match parse_indexed "f" s with
  | Some r -> Some r
  | None -> find_in_array f_abi_names s
