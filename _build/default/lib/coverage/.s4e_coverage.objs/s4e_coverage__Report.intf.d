lib/coverage/report.mli: Format Hashtbl S4e_isa
