lib/coverage/collector.ml: Array Hashtbl Instr List Option Report S4e_cpu S4e_isa
