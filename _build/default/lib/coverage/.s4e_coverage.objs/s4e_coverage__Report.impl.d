lib/coverage/report.ml: Array Format Hashtbl List Option S4e_isa String
