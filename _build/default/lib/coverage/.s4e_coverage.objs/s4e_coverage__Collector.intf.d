lib/coverage/collector.mli: Report S4e_cpu S4e_isa
