(** Coverage collection as a plugin over the hook API.

    Non-invasive, like the published tool: the binary under analysis is
    unmodified; the collector subscribes to instruction and memory
    events and fills a {!Report.t}. *)

type t

val attach :
  S4e_cpu.Machine.t -> ?isa:S4e_isa.Isa_module.t list -> unit -> t
(** [isa] defaults to the machine's configured modules. *)

val detach : S4e_cpu.Machine.t -> t -> unit

val report : t -> Report.t
(** The live report (shared, not a copy). *)
