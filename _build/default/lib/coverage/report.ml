module Isa_module = S4e_isa.Isa_module

type t = {
  isa : Isa_module.t list;
  executed : (string, int) Hashtbl.t;
  gpr_read : bool array;
  gpr_written : bool array;
  fpr_read : bool array;
  fpr_written : bool array;
  csr_accessed : (int, unit) Hashtbl.t;
  executed_pcs : (int, unit) Hashtbl.t;
  touched_data : (int, unit) Hashtbl.t;
  mutable mem_lo : int;
  mutable mem_hi : int;
  mutable mem_accesses : int;
}

let create ~isa =
  { isa;
    executed = Hashtbl.create 128;
    gpr_read = Array.make 32 false;
    gpr_written = Array.make 32 false;
    fpr_read = Array.make 32 false;
    fpr_written = Array.make 32 false;
    csr_accessed = Hashtbl.create 16;
    executed_pcs = Hashtbl.create 1024;
    touched_data = Hashtbl.create 1024;
    mem_lo = max_int;
    mem_hi = 0;
    mem_accesses = 0 }

let union_isa a b =
  List.sort_uniq compare (a @ b)

let combine a b =
  let t = create ~isa:(union_isa a.isa b.isa) in
  let merge_counts src =
    Hashtbl.iter
      (fun k v ->
        let prev = Option.value (Hashtbl.find_opt t.executed k) ~default:0 in
        Hashtbl.replace t.executed k (prev + v))
      src.executed
  in
  merge_counts a;
  merge_counts b;
  let merge_bools dst xa xb =
    Array.iteri (fun i v -> dst.(i) <- v || xb.(i)) xa
  in
  merge_bools t.gpr_read a.gpr_read b.gpr_read;
  merge_bools t.gpr_written a.gpr_written b.gpr_written;
  merge_bools t.fpr_read a.fpr_read b.fpr_read;
  merge_bools t.fpr_written a.fpr_written b.fpr_written;
  List.iter
    (fun src ->
      Hashtbl.iter (fun k () -> Hashtbl.replace t.csr_accessed k ()) src.csr_accessed;
      Hashtbl.iter (fun k () -> Hashtbl.replace t.executed_pcs k ()) src.executed_pcs;
      Hashtbl.iter (fun k () -> Hashtbl.replace t.touched_data k ()) src.touched_data)
    [ a; b ];
  t.mem_lo <- min a.mem_lo b.mem_lo;
  t.mem_hi <- max a.mem_hi b.mem_hi;
  t.mem_accesses <- a.mem_accesses + b.mem_accesses;
  t

let touched_data_cap = 1 lsl 16

let universe t = Isa_module.universe t.isa

let frac num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let instruction_coverage t =
  let u = universe t in
  let hit = List.length (List.filter (Hashtbl.mem t.executed) u) in
  frac hit (List.length u)

let accessed read written =
  let n = ref 0 in
  for i = 0 to 31 do
    if read.(i) || written.(i) then incr n
  done;
  !n

let gpr_coverage t = frac (accessed t.gpr_read t.gpr_written) 32

let fpr_coverage t =
  if List.mem Isa_module.F t.isa then
    frac (accessed t.fpr_read t.fpr_written) 32
  else 1.0

let csr_coverage t =
  if List.mem Isa_module.Zicsr t.isa then
    let implemented = S4e_isa.Csr.implemented in
    let hit =
      List.length (List.filter (Hashtbl.mem t.csr_accessed) implemented)
    in
    frac hit (List.length implemented)
  else 1.0

let missed_instructions t =
  List.filter (fun m -> not (Hashtbl.mem t.executed m)) (universe t)

let missed_regs read written =
  let out = ref [] in
  for i = 31 downto 0 do
    if not (read.(i) || written.(i)) then out := i :: !out
  done;
  !out

let missed_gprs t = missed_regs t.gpr_read t.gpr_written
let missed_fprs t = missed_regs t.fpr_read t.fpr_written

let executed_count t = Hashtbl.fold (fun _ v acc -> acc + v) t.executed 0

let pct f = 100.0 *. f

let pp fmt t =
  Format.fprintf fmt "ISA: %s@." (Isa_module.isa_string t.isa);
  Format.fprintf fmt "instruction types: %.1f%% (%d/%d)@."
    (pct (instruction_coverage t))
    (List.length (universe t) - List.length (missed_instructions t))
    (List.length (universe t));
  Format.fprintf fmt "GPR: %.1f%%  FPR: %.1f%%  CSR: %.1f%%@."
    (pct (gpr_coverage t)) (pct (fpr_coverage t)) (pct (csr_coverage t));
  (match missed_instructions t with
  | [] -> ()
  | missed ->
      Format.fprintf fmt "missed instructions: %s@." (String.concat " " missed));
  if t.mem_accesses > 0 then
    Format.fprintf fmt "data memory: [0x%08x, 0x%08x), %d accesses@."
      t.mem_lo t.mem_hi t.mem_accesses
