open S4e_isa

type t = {
  rep : Report.t;
  insn_id : S4e_cpu.Hooks.id;
  mem_id : S4e_cpu.Hooks.id;
}

let record_instr rep pc instr =
  let r = (rep : Report.t) in
  Hashtbl.replace r.Report.executed_pcs pc ();
  let m = Instr.mnemonic instr in
  let prev = Option.value (Hashtbl.find_opt r.Report.executed m) ~default:0 in
  Hashtbl.replace r.Report.executed m (prev + 1);
  List.iter (fun s -> r.Report.gpr_read.(s) <- true) (Instr.sources instr);
  (match Instr.destination instr with
  | Some d -> r.Report.gpr_written.(d) <- true
  | None -> ());
  List.iter (fun s -> r.Report.fpr_read.(s) <- true) (Instr.fp_sources instr);
  (match Instr.fp_destination instr with
  | Some d -> r.Report.fpr_written.(d) <- true
  | None -> ());
  match instr with
  | Instr.Csr (_, _, csr, _) -> Hashtbl.replace r.Report.csr_accessed csr ()
  | _ -> ()

let record_mem rep (ev : S4e_cpu.Hooks.mem_event) =
  let r = (rep : Report.t) in
  r.Report.mem_accesses <- r.Report.mem_accesses + 1;
  if Hashtbl.length r.Report.touched_data < Report.touched_data_cap then
    for i = 0 to ev.S4e_cpu.Hooks.mem_size - 1 do
      Hashtbl.replace r.Report.touched_data (ev.S4e_cpu.Hooks.mem_addr + i) ()
    done;
  if ev.S4e_cpu.Hooks.mem_addr < r.Report.mem_lo then
    r.Report.mem_lo <- ev.S4e_cpu.Hooks.mem_addr;
  let hi = ev.S4e_cpu.Hooks.mem_addr + ev.S4e_cpu.Hooks.mem_size in
  if hi > r.Report.mem_hi then r.Report.mem_hi <- hi

let attach (m : S4e_cpu.Machine.t) ?isa () =
  let isa =
    match isa with
    | Some l -> l
    | None -> m.S4e_cpu.Machine.config.S4e_cpu.Machine.isa
  in
  let rep = Report.create ~isa in
  let insn_id =
    S4e_cpu.Hooks.on_insn m.S4e_cpu.Machine.hooks (fun pc i ->
        record_instr rep pc i)
  in
  let mem_id =
    S4e_cpu.Hooks.on_mem m.S4e_cpu.Machine.hooks (fun ev -> record_mem rep ev)
  in
  { rep; insn_id; mem_id }

let detach (m : S4e_cpu.Machine.t) t =
  S4e_cpu.Hooks.unregister m.S4e_cpu.Machine.hooks t.insn_id;
  S4e_cpu.Hooks.unregister m.S4e_cpu.Machine.hooks t.mem_id

let report t = t.rep
