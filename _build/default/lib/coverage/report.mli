(** Coverage reports: the ecosystem's instruction-type and register
    coverage metric (MBMV 2021).

    A report records, for a configured ISA, which instruction types
    (canonical mnemonics) were executed, which GPRs/FPRs were read or
    written, which CSRs were accessed, and the extent of touched data
    memory.  Reports from different test suites {!combine} into a
    unified-suite report — the paper's headline experiment. *)

type t = {
  isa : S4e_isa.Isa_module.t list;
  executed : (string, int) Hashtbl.t;  (** mnemonic -> execution count *)
  gpr_read : bool array;
  gpr_written : bool array;
  fpr_read : bool array;
  fpr_written : bool array;
  csr_accessed : (int, unit) Hashtbl.t;
  executed_pcs : (int, unit) Hashtbl.t;
  touched_data : (int, unit) Hashtbl.t;
      (** byte addresses of data accesses (fault-injection sites);
          capped at {!touched_data_cap} entries *)
  mutable mem_lo : int;  (** lowest data address touched; [max_int] if none *)
  mutable mem_hi : int;  (** highest data address touched, exclusive *)
  mutable mem_accesses : int;
}

val touched_data_cap : int

val create : isa:S4e_isa.Isa_module.t list -> t

val combine : t -> t -> t
(** Union of two reports (the unified test suite).  The ISA
    configuration is the union of both. *)

(** {1 Metrics (each in [0, 1])} *)

val instruction_coverage : t -> float
(** Executed fraction of the configured modules' mnemonic universe. *)

val gpr_coverage : t -> float
(** Fraction of the 32 GPRs accessed (read or written).  [x0] counts as
    accessed when read or used as a discard destination. *)

val fpr_coverage : t -> float
val csr_coverage : t -> float
(** Over {!S4e_isa.Csr.implemented}. *)

val missed_instructions : t -> string list
(** Universe mnemonics never executed, sorted. *)

val missed_gprs : t -> int list
val missed_fprs : t -> int list

val executed_count : t -> int
(** Total dynamic instructions recorded. *)

val pp : Format.formatter -> t -> unit
