(** Execution tracer — a debugging client of the hook API.

    Keeps a ring buffer of the most recently executed instructions and
    running control-flow statistics.  Branch outcomes are inferred by
    watching consecutive pcs, so the tracer needs no executor support.
    The CLI uses it to print the tail of a run after a fatal trap. *)

type word = S4e_bits.Bits.word

type entry = { e_pc : word; e_instr : S4e_isa.Instr.t }

type stats = {
  st_instructions : int;
  st_branches : int;
  st_taken : int;  (** conditional branches observed taken *)
  st_calls : int;  (** [jal]/[jalr] with a link register *)
  st_returns : int;
}

type t

val attach : Hooks.t -> depth:int -> t
(** [depth] is the ring-buffer capacity (the trace tail length). *)

val detach : Hooks.t -> t -> unit

val tail : t -> entry list
(** Oldest first, at most [depth] entries. *)

val stats : t -> stats

val pp_tail : Format.formatter -> t -> unit
