lib/cpu/arch_state.mli: S4e_bits S4e_isa
