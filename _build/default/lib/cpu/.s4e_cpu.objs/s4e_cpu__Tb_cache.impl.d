lib/cpu/tb_cache.ml: Array Hashtbl List S4e_isa
