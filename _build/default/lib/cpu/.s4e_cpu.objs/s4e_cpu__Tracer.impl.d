lib/cpu/tracer.ml: Array Format Hooks Instr List Reg S4e_bits S4e_isa
