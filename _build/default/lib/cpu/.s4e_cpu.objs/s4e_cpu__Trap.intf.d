lib/cpu/trap.mli: S4e_bits
