lib/cpu/machine.ml: Arch_state Array Compressed Decode Decodetree Exec Format Hooks Instr Isa_module List S4e_isa S4e_mem S4e_soc Set String Tb_cache Timing_model Trap
