lib/cpu/cache_model.mli: Machine
