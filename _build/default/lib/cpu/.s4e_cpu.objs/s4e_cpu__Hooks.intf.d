lib/cpu/hooks.mli: S4e_bits S4e_isa Trap
