lib/cpu/cache_model.ml: Array Hooks Machine
