lib/cpu/exec.ml: Arch_state Encode Float Hooks Int32 S4e_bits S4e_isa S4e_mem Trap
