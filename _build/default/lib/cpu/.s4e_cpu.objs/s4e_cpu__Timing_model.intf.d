lib/cpu/timing_model.mli: S4e_isa
