lib/cpu/machine.mli: Arch_state Format Hooks S4e_bits S4e_isa S4e_mem S4e_soc Tb_cache Timing_model Trap
