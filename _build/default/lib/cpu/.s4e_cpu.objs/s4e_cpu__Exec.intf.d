lib/cpu/exec.mli: Arch_state Hooks S4e_isa S4e_mem
