lib/cpu/arch_state.ml: Array Csr S4e_isa
