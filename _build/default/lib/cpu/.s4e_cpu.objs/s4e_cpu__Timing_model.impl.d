lib/cpu/timing_model.ml: S4e_isa
