lib/cpu/tracer.mli: Format Hooks S4e_bits S4e_isa
