lib/cpu/hooks.ml: List S4e_isa Trap
