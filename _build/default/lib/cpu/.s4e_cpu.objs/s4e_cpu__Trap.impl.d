lib/cpu/trap.ml: Printf S4e_bits
