lib/cpu/tb_cache.mli: S4e_bits S4e_isa
