(** The virtual prototype: one RV32 hart, bus, and platform devices.

    A machine bundles architectural state, the system bus with the
    default {!S4e_soc.Memory_map} devices (UART, CLINT, GPIO, syscon),
    the instrumentation {!Hooks}, a configurable decoder, the
    translation-block cache, and the timing model.  [run] executes until
    software exits through the syscon, a fatal trap occurs, fuel runs
    out, or the hart would sleep forever in WFI. *)

type word = S4e_bits.Bits.word

type decoder_kind = Hand_decoder | Decodetree_decoder

type config = {
  isa : S4e_isa.Isa_module.t list;
  timing : Timing_model.t;
  use_tb_cache : bool;
  decoder : decoder_kind;
}

val default_config : config
(** RV32IMFC + Zicsr + B, default timing, TB cache on, DecodeTree. *)

type stop_reason =
  | Exited of int  (** software wrote the syscon EXIT register *)
  | Fatal_trap of Trap.exception_cause * word
      (** trap taken with no handler installed ([mtvec] = 0); the word
          is the faulting pc *)
  | Out_of_fuel
  | Wfi_halt  (** WFI with no interrupt source able to wake the hart *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

type t = {
  state : Arch_state.t;
  bus : S4e_mem.Bus.t;
  uart : S4e_soc.Uart.t;
  clint : S4e_soc.Clint.t;
  gpio : S4e_soc.Gpio.t;
  syscon : S4e_soc.Syscon.t;
  hooks : Hooks.t;
  config : config;
  decode32 : word -> S4e_isa.Instr.t option;
  tb : Tb_cache.t;
}

val create : ?config:config -> unit -> t

val reset : t -> pc:word -> unit
(** Architectural reset (registers, CSRs, CLINT, syscon); memory, the
    TB cache, and hooks are preserved. *)

val run : t -> fuel:int -> stop_reason
(** Executes at most [fuel] instructions.  Interrupts are sampled at
    translation-block boundaries (as in QEMU). *)

val instret : t -> int
val cycles : t -> int

val uart_output : t -> string

val load_word : t -> word -> word -> unit
(** [load_word t addr w] pokes one word directly into RAM (bypassing
    devices and hooks) and invalidates affected translation blocks. *)

val load_string : t -> word -> string -> unit
