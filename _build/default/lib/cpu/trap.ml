type exception_cause =
  | Misaligned_fetch
  | Illegal_instruction of S4e_bits.Bits.word
  | Breakpoint
  | Misaligned_load of S4e_bits.Bits.word
  | Misaligned_store of S4e_bits.Bits.word
  | Ecall_from_m

type interrupt = Software | Timer | External

exception Exn of exception_cause

let exception_code = function
  | Misaligned_fetch -> 0
  | Illegal_instruction _ -> 2
  | Breakpoint -> 3
  | Misaligned_load _ -> 4
  | Misaligned_store _ -> 6
  | Ecall_from_m -> 11

let interrupt_code = function Software -> 3 | Timer -> 7 | External -> 11

let mcause_of_exception c = exception_code c
let mcause_of_interrupt i = 0x8000_0000 lor interrupt_code i

let tval_of = function
  | Illegal_instruction w -> w
  | Misaligned_load a | Misaligned_store a -> a
  | Misaligned_fetch | Breakpoint | Ecall_from_m -> 0

let describe = function
  | Misaligned_fetch -> "instruction address misaligned"
  | Illegal_instruction w ->
      Printf.sprintf "illegal instruction 0x%08x" w
  | Breakpoint -> "breakpoint"
  | Misaligned_load a -> Printf.sprintf "misaligned load at 0x%08x" a
  | Misaligned_store a -> Printf.sprintf "misaligned store at 0x%08x" a
  | Ecall_from_m -> "environment call from M-mode"
