(** Translation-block cache — the QEMU TCG analogue.

    Fetch-and-decode is the dominant cost of a switch interpreter; this
    cache decodes a straight-line run of instructions (a translation
    block) once and replays the decoded array on subsequent visits.
    Blocks end at control-flow instructions, at {!max_block_len}, or
    just before an undecodable word.

    Stores into the address range covered by cached blocks invalidate
    the whole cache (coarse but correct); [fence.i] does the same.
    Ablated in experiment E9. *)

type word = S4e_bits.Bits.word

type entry = {
  block_pc : word;
  instrs : (word * int * S4e_isa.Instr.t) array;
      (** (pc, size-in-bytes, instruction) triples *)
  total_size : int;  (** bytes covered *)
}

type t

val max_block_len : int

val create :
  decode32:(word -> S4e_isa.Instr.t option) ->
  decode16:(int -> S4e_isa.Instr.t option) option ->
  fetch32:(word -> word) ->
  fetch16:(word -> int) ->
  unit ->
  t
(** [decode16 = None] disables the compressed instruction set. *)

val lookup : t -> word -> entry
(** [lookup t pc] returns the cached block at [pc], translating it on a
    miss.  An entry with an empty [instrs] array means the very first
    word at [pc] does not decode (the machine raises an illegal
    instruction trap). *)

val notify_store : t -> word -> unit
(** Invalidate if [addr] may fall inside cached code. *)

val flush : t -> unit

val stats : t -> int * int * int
(** (cached blocks, hits, misses). *)
