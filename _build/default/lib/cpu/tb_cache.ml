type word = int

type entry = {
  block_pc : word;
  instrs : (word * int * S4e_isa.Instr.t) array;
  total_size : int;
}

type t = {
  table : (word, entry) Hashtbl.t;
  decode32 : word -> S4e_isa.Instr.t option;
  decode16 : (int -> S4e_isa.Instr.t option) option;
  fetch32 : word -> word;
  fetch16 : word -> int;
  mutable code_lo : word;  (* inclusive range covered by cached blocks *)
  mutable code_hi : word;  (* exclusive *)
  mutable hits : int;
  mutable misses : int;
}

let max_block_len = 64

let create ~decode32 ~decode16 ~fetch32 ~fetch16 () =
  { table = Hashtbl.create 1024; decode32; decode16; fetch32; fetch16;
    code_lo = max_int; code_hi = 0; hits = 0; misses = 0 }

(* Decode one instruction at [pc]: compressed halfwords expand via
   decode16; otherwise a full word via decode32. *)
let decode_at t pc =
  let half = t.fetch16 pc in
  if half land 0x3 <> 0x3 then
    match t.decode16 with
    | Some d16 -> (
        match d16 half with Some i -> Some (2, i) | None -> None)
    | None -> None
  else
    match t.decode32 (t.fetch32 pc) with
    | Some i -> Some (4, i)
    | None -> None

let translate t pc =
  let rec go acc cur count =
    if count >= max_block_len then List.rev acc
    else
      match decode_at t cur with
      | None -> List.rev acc
      | Some (size, instr) ->
          let acc = (cur, size, instr) :: acc in
          (* fence.i ends a block so freshly written code is re-decoded *)
          if S4e_isa.Instr.is_control_flow instr
             || instr = S4e_isa.Instr.Wfi
             || instr = S4e_isa.Instr.Fence_i
          then List.rev acc
          else go acc (cur + size) (count + 1)
  in
  let instrs = Array.of_list (go [] pc 0) in
  let total_size =
    Array.fold_left (fun acc (_, size, _) -> acc + size) 0 instrs
  in
  { block_pc = pc; instrs; total_size }

let lookup t pc =
  match Hashtbl.find_opt t.table pc with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      let e = translate t pc in
      Hashtbl.replace t.table pc e;
      if e.total_size > 0 then begin
        if pc < t.code_lo then t.code_lo <- pc;
        if pc + e.total_size > t.code_hi then t.code_hi <- pc + e.total_size
      end;
      e

let flush t =
  Hashtbl.reset t.table;
  t.code_lo <- max_int;
  t.code_hi <- 0

let notify_store t addr =
  if addr >= t.code_lo - 3 && addr < t.code_hi then flush t

let stats t = (Hashtbl.length t.table, t.hits, t.misses)
