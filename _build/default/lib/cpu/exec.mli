(** Single-instruction executor.

    [execute ?on_mem state bus ~size instr] performs one architectural
    step: reads operands, performs the operation (including bus
    accesses), writes results, and advances [state.pc] (by [size] bytes,
    or to the control-flow target).  Raises {!Trap.Exn} on synchronous
    exceptions, leaving [state.pc] at the faulting instruction so the
    machine can enter the trap.

    The return value reports whether a conditional branch was taken
    ([false] for every non-branch); the machine feeds it to the timing
    model.

    [on_mem] observes each data access; it is passed explicitly (rather
    than via {!Hooks}) so the executor stays container-free. *)

val execute :
  ?on_mem:(Hooks.mem_event -> unit) ->
  Arch_state.t ->
  S4e_mem.Bus.t ->
  size:int ->
  S4e_isa.Instr.t ->
  bool
