open S4e_isa

type word = int

type entry = { e_pc : word; e_instr : Instr.t }

type stats = {
  st_instructions : int;
  st_branches : int;
  st_taken : int;
  st_calls : int;
  st_returns : int;
}

type t = {
  ring : entry option array;
  mutable head : int;  (* next slot *)
  mutable count : int;
  mutable instructions : int;
  mutable branches : int;
  mutable taken : int;
  mutable calls : int;
  mutable returns : int;
  mutable pending_branch : word option;
      (* taken-target of the last branch, resolved by the next pc *)
  mutable hook : Hooks.id option;
}

let record t pc instr =
  t.instructions <- t.instructions + 1;
  (* resolve the previous branch's outcome *)
  (match t.pending_branch with
  | Some target ->
      if pc = target then t.taken <- t.taken + 1;
      t.pending_branch <- None
  | None -> ());
  (match instr with
  | Instr.Branch (_, _, _, off) ->
      t.branches <- t.branches + 1;
      t.pending_branch <- Some (S4e_bits.Bits.add pc (S4e_bits.Bits.of_signed off))
  | Instr.Jal (rd, _) when rd <> 0 -> t.calls <- t.calls + 1
  | Instr.Jalr (rd, rs1, 0) when rd = 0 && rs1 = Reg.ra ->
      t.returns <- t.returns + 1
  | Instr.Jalr (rd, _, _) when rd <> 0 -> t.calls <- t.calls + 1
  | _ -> ());
  t.ring.(t.head) <- Some { e_pc = pc; e_instr = instr };
  t.head <- (t.head + 1) mod Array.length t.ring;
  if t.count < Array.length t.ring then t.count <- t.count + 1

let attach hooks ~depth =
  let t =
    { ring = Array.make (max 1 depth) None; head = 0; count = 0;
      instructions = 0; branches = 0; taken = 0; calls = 0; returns = 0;
      pending_branch = None; hook = None }
  in
  t.hook <- Some (Hooks.on_insn hooks (record t));
  t

let detach hooks t =
  match t.hook with
  | Some id ->
      Hooks.unregister hooks id;
      t.hook <- None
  | None -> ()

let tail t =
  let n = Array.length t.ring in
  let start = (t.head - t.count + n) mod n in
  List.init t.count (fun i ->
      match t.ring.((start + i) mod n) with
      | Some e -> e
      | None -> assert false)

let stats t =
  { st_instructions = t.instructions;
    st_branches = t.branches;
    st_taken = t.taken;
    st_calls = t.calls;
    st_returns = t.returns }

let pp_tail fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "  %08x: %s@." e.e_pc (Instr.to_string e.e_instr))
    (tail t)
