(** Synchronous exceptions and interrupts (machine mode).

    Cause encodings follow the RISC-V privileged specification; the
    interrupt bit of [mcause] is handled by {!mcause_code}. *)

type exception_cause =
  | Misaligned_fetch
  | Illegal_instruction of S4e_bits.Bits.word  (** the offending word *)
  | Breakpoint
  | Misaligned_load of S4e_bits.Bits.word  (** the offending address *)
  | Misaligned_store of S4e_bits.Bits.word
  | Ecall_from_m

type interrupt = Software | Timer | External

exception Exn of exception_cause
(** Raised by the executor; the machine converts it into a trap entry. *)

val exception_code : exception_cause -> int
(** The [mcause] code (interrupt bit clear). *)

val interrupt_code : interrupt -> int
(** The [mcause] code (without the interrupt bit). *)

val mcause_of_exception : exception_cause -> S4e_bits.Bits.word
val mcause_of_interrupt : interrupt -> S4e_bits.Bits.word

val tval_of : exception_cause -> S4e_bits.Bits.word
(** Value for [mtval]: faulting address or instruction bits, 0 when the
    specification leaves it unspecified. *)

val describe : exception_cause -> string
