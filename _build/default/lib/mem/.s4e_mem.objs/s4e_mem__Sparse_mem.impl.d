lib/mem/sparse_mem.ml: Bytes Char Hashtbl String
