lib/mem/bus.mli: S4e_bits Sparse_mem
