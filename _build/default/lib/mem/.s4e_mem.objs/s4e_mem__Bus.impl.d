lib/mem/bus.ml: Array Printf Sparse_mem
