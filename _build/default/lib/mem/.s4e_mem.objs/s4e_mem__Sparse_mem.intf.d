lib/mem/sparse_mem.mli: S4e_bits
