lib/soc/memory_map.ml: Uart
