lib/soc/memory_map.mli:
