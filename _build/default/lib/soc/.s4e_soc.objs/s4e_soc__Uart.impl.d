lib/soc/uart.ml: Buffer Char Queue S4e_mem String
