lib/soc/gpio.ml: S4e_mem
