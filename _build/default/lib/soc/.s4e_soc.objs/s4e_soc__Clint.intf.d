lib/soc/clint.mli: S4e_bits S4e_mem
