lib/soc/syscon.mli: S4e_bits S4e_mem
