lib/soc/gpio.mli: S4e_bits S4e_mem
