lib/soc/clint.ml: S4e_mem
