lib/soc/syscon.ml: S4e_mem
