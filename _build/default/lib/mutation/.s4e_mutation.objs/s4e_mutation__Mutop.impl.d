lib/mutation/mutop.ml: List S4e_isa
