lib/mutation/mutant.ml: List Mutop Printf S4e_asm S4e_cpu S4e_isa S4e_mem String
