lib/mutation/score.mli: Format Mutant Mutop S4e_asm S4e_cpu
