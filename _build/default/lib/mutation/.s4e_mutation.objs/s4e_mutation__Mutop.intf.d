lib/mutation/mutop.mli: S4e_isa
