lib/mutation/mutant.mli: Mutop S4e_asm S4e_bits S4e_cpu S4e_isa
