lib/mutation/score.ml: Format List Mutant Mutop S4e_asm S4e_cpu S4e_soc
