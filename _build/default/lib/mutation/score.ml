module Machine = S4e_cpu.Machine
module Program = S4e_asm.Program

type test = {
  t_name : string;
  t_uart_input : string;
  t_fuel : int;
}

let test ?(fuel = 1_000_000) ~name input =
  { t_name = name; t_uart_input = input; t_fuel = fuel }

type verdict = Killed of string | Survived

type result = { r_mutant : Mutant.t; r_verdict : verdict }

type score = {
  s_total : int;
  s_killed : int;
  s_survived : int;
  s_score : float;
  s_per_operator : (Mutop.t * int * int) list;
}

type observation = {
  o_stop : [ `Exited of int | `Fatal | `Hung ];
  o_uart : string;
}

let observe ?config p ~mutant t =
  let m = Machine.create ?config () in
  Program.load_machine p m;
  (match mutant with Some mu -> Mutant.apply mu m | None -> ());
  S4e_soc.Uart.feed m.Machine.uart t.t_uart_input;
  let stop = Machine.run m ~fuel:t.t_fuel in
  { o_stop =
      (match stop with
      | Machine.Exited c -> `Exited c
      | Machine.Fatal_trap _ -> `Fatal
      | Machine.Out_of_fuel | Machine.Wfi_halt -> `Hung);
    o_uart = Machine.uart_output m }

let run ?config p ~tests ~mutants =
  let oracles =
    List.map (fun t -> (t.t_name, observe ?config p ~mutant:None t)) tests
  in
  List.map
    (fun mu ->
      let rec try_tests = function
        | [] -> Survived
        | t :: rest ->
            let golden = List.assoc t.t_name oracles in
            let got = observe ?config p ~mutant:(Some mu) t in
            if got <> golden then Killed t.t_name else try_tests rest
      in
      { r_mutant = mu; r_verdict = try_tests tests })
    mutants

let summarize results =
  let total = List.length results in
  let killed =
    List.length (List.filter (fun r -> r.r_verdict <> Survived) results)
  in
  let per_operator =
    List.map
      (fun op ->
        let of_op =
          List.filter (fun r -> r.r_mutant.Mutant.m_operator = op) results
        in
        let k =
          List.length (List.filter (fun r -> r.r_verdict <> Survived) of_op)
        in
        (op, k, List.length of_op))
      Mutop.all
  in
  { s_total = total;
    s_killed = killed;
    s_survived = total - killed;
    s_score = (if total = 0 then 1.0 else float_of_int killed /. float_of_int total);
    s_per_operator = per_operator }

let survivors results =
  List.filter_map
    (fun r ->
      match r.r_verdict with Survived -> Some r.r_mutant | Killed _ -> None)
    results

let pp_score fmt s =
  Format.fprintf fmt "mutation score %.1f%% (%d/%d killed)" (100.0 *. s.s_score)
    s.s_killed s.s_total;
  List.iter
    (fun (op, k, t) ->
      if t > 0 then Format.fprintf fmt "@.  %s: %d/%d" (Mutop.name op) k t)
    s.s_per_operator
