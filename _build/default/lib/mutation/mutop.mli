(** Mutation operators over decoded instructions.

    The XEMU companion paper (EMSOFT 2012) mutates embedded software at
    the binary level — "high level mutations correlate to bit flips of
    software binaries" — to measure how well a test suite exercises the
    code.  These are the classic operator classes, expressed on the
    instruction AST and re-encoded into the image:

    - AOR: arithmetic operator replacement within an encoding class;
    - ROR: relational (branch condition) operator replacement;
    - COR: constant perturbation (off-by-one, zeroing);
    - SOR: source-register replacement;
    - SDL: statement deletion (replace with [nop]).

    Every produced mutation is a *different* instruction of the same
    byte width, so patching the image never disturbs neighbours. *)

type t = Aor | Ror | Cor | Sor | Sdl

val all : t list
val name : t -> string
val describe : t -> string

val mutations : t -> S4e_isa.Instr.t -> S4e_isa.Instr.t list
(** All mutants of one instruction under one operator (possibly empty;
    never contains the original). *)
