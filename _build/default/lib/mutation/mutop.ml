open S4e_isa.Instr

type t = Aor | Ror | Cor | Sor | Sdl

let all = [ Aor; Ror; Cor; Sor; Sdl ]

let name = function
  | Aor -> "AOR"
  | Ror -> "ROR"
  | Cor -> "COR"
  | Sor -> "SOR"
  | Sdl -> "SDL"

let describe = function
  | Aor -> "arithmetic operator replacement"
  | Ror -> "relational (branch) operator replacement"
  | Cor -> "constant perturbation"
  | Sor -> "source register replacement"
  | Sdl -> "statement deletion"

(* Replacement partners chosen so a mutation stays in the same
   semantic family (the classic strong-mutation sets). *)
let aor_partners = function
  | ADD -> [ SUB; XOR ]
  | SUB -> [ ADD; XOR ]
  | AND -> [ OR; XOR ]
  | OR -> [ AND; XOR ]
  | XOR -> [ AND; OR ]
  | SLL -> [ SRL ]
  | SRL -> [ SLL; SRA ]
  | SRA -> [ SRL ]
  | MUL -> [ ADD ]
  | DIV -> [ MUL; REM ]
  | REM -> [ DIV ]
  | DIVU -> [ REMU ]
  | REMU -> [ DIVU ]
  | SLT -> [ SLTU ]
  | SLTU -> [ SLT ]
  | MIN -> [ MAX ]
  | MAX -> [ MIN ]
  | MINU -> [ MAXU ]
  | MAXU -> [ MINU ]
  | ANDN -> [ ORN ]
  | ORN -> [ ANDN ]
  | XNOR -> [ XOR ]
  | ROL -> [ ROR ]
  | ROR -> [ ROL ]
  | MULH | MULHSU | MULHU -> [ MUL ]
  | BSET -> [ BCLR; BINV ]
  | BCLR -> [ BSET; BINV ]
  | BINV -> [ BSET; BCLR ]
  | BEXT -> [ BINV ]

let aor_imm_partners = function
  | ADDI -> [ XORI; ORI ]
  | ANDI -> [ ORI; XORI ]
  | ORI -> [ ANDI; XORI ]
  | XORI -> [ ANDI; ORI ]
  | SLTI -> [ SLTIU ]
  | SLTIU -> [ SLTI ]

let ror_partners = function
  | BEQ -> [ BNE ]
  | BNE -> [ BEQ ]
  | BLT -> [ BGE; BLTU ]
  | BGE -> [ BLT; BGEU ]
  | BLTU -> [ BGEU; BLT ]
  | BGEU -> [ BLTU; BGE ]

let shift_partners = function
  | SLLI -> [ SRLI ]
  | SRLI -> [ SLLI; SRAI ]
  | SRAI -> [ SRLI ]
  | RORI -> [ SRLI ]
  | BSETI -> [ BCLRI; BINVI ]
  | BCLRI -> [ BSETI; BINVI ]
  | BINVI -> [ BSETI; BCLRI ]
  | BEXTI -> [ BINVI ]

(* Constant perturbations that keep the immediate encodable. *)
let perturb_imm12 imm =
  List.filter
    (fun v -> v <> imm && v >= -2048 && v < 2048)
    [ imm + 1; imm - 1; 0 ]

let perturb_shamt sh = List.filter (fun v -> v <> sh && v >= 0 && v < 32) [ sh + 1; sh - 1; 0 ]

(* Source-register substitution: swap in a nearby register, never x0
   (reading x0 instead is covered by the zeroing COR mutants). *)
let replace_reg r = if r >= 31 then r - 1 else r + 1

let mutations op instr =
  match (op, instr) with
  | Aor, Op (o, rd, rs1, rs2) ->
      List.map (fun o' -> Op (o', rd, rs1, rs2)) (aor_partners o)
  | Aor, Op_imm (o, rd, rs1, imm) ->
      List.map (fun o' -> Op_imm (o', rd, rs1, imm)) (aor_imm_partners o)
  | Aor, Shift_imm (o, rd, rs1, sh) ->
      List.map (fun o' -> Shift_imm (o', rd, rs1, sh)) (shift_partners o)
  | Aor, _ -> []
  | Ror, Branch (o, rs1, rs2, off) ->
      List.map (fun o' -> Branch (o', rs1, rs2, off)) (ror_partners o)
  | Ror, _ -> []
  | Cor, Op_imm (o, rd, rs1, imm) ->
      List.map (fun imm' -> Op_imm (o, rd, rs1, imm')) (perturb_imm12 imm)
  | Cor, Shift_imm (o, rd, rs1, sh) ->
      List.map (fun sh' -> Shift_imm (o, rd, rs1, sh')) (perturb_shamt sh)
  | Cor, Load (o, rd, base, imm) ->
      List.map (fun imm' -> Load (o, rd, base, imm')) (perturb_imm12 imm)
  | Cor, Store (o, src, base, imm) ->
      List.map (fun imm' -> Store (o, src, base, imm')) (perturb_imm12 imm)
  | Cor, Lui (rd, imm20) ->
      List.filter_map
        (fun v ->
          if v <> imm20 && v >= 0 && v < 1 lsl 20 then Some (Lui (rd, v))
          else None)
        [ imm20 + 1; imm20 - 1 ]
  | Cor, _ -> []
  | Sor, Op (o, rd, rs1, rs2) ->
      [ Op (o, rd, replace_reg rs1, rs2); Op (o, rd, rs1, replace_reg rs2) ]
  | Sor, Op_imm (o, rd, rs1, imm) when rs1 <> 0 ->
      [ Op_imm (o, rd, replace_reg rs1, imm) ]
  | Sor, Branch (o, rs1, rs2, off) when rs1 <> 0 ->
      [ Branch (o, replace_reg rs1, rs2, off) ]
  | Sor, Store (o, src, base, imm) when src <> 0 ->
      [ Store (o, replace_reg src, base, imm) ]
  | Sor, _ -> []
  | Sdl, i -> (
      (* deleting control flow or system instructions is replaced by
         the weaker "skip computation" mutation only for plain data
         operations, so mutants cannot jump out of the image *)
      match i with
      | Op _ | Op_imm _ | Shift_imm _ | Unary _ | Lui _ | Load _ | Store _ ->
          let nop = Op_imm (ADDI, 0, 0, 0) in
          if equal i nop then [] else [ nop ]
      | Auipc _ | Jal _ | Jalr _ | Branch _ | Fence | Fence_i | Ecall
      | Ebreak | Mret | Wfi | Csr _ | Flw _ | Fsw _ | Fp_op _ | Fp_cmp _
      | Fsqrt _ | Fcvt_w_s _ | Fcvt_s_w _ | Fmv_x_w _ | Fmv_w_x _
      | Lr _ | Sc _ | Amo _ -> [])

let mutations op instr =
  List.filter (fun m -> not (equal m instr)) (mutations op instr)
