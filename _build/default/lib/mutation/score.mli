(** Mutation analysis: measuring test quality by mutant killing.

    A test is a named stimulus for the program under analysis — a UART
    input string plus a fuel budget; its oracle is the golden run's
    signature (exit status + UART output) under the same stimulus.  A
    mutant is {e killed} by a test whose observed behaviour differs
    from the oracle, and {e survives} if every test agrees with its
    oracle.  The mutation score (killed / total) is the companion
    papers' verification-quality metric; surviving mutants point at
    stimuli worth adding (or at equivalent mutants). *)

type test = {
  t_name : string;
  t_uart_input : string;
  t_fuel : int;
}

val test : ?fuel:int -> name:string -> string -> test
(** [test ~name input] with default fuel 1,000,000. *)

type verdict =
  | Killed of string  (** name of the first killing test *)
  | Survived

type result = { r_mutant : Mutant.t; r_verdict : verdict }

type score = {
  s_total : int;
  s_killed : int;
  s_survived : int;
  s_score : float;  (** killed / total, 1.0 when there are no mutants *)
  s_per_operator : (Mutop.t * int * int) list;  (** (op, killed, total) *)
}

val run :
  ?config:S4e_cpu.Machine.config ->
  S4e_asm.Program.t ->
  tests:test list ->
  mutants:Mutant.t list ->
  result list
(** Executes every (mutant x test) pair, short-circuiting per mutant at
    the first kill.  Deterministic. *)

val summarize : result list -> score

val survivors : result list -> Mutant.t list

val pp_score : Format.formatter -> score -> unit
