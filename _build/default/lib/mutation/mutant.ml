module Program = S4e_asm.Program

type word = int

type t = {
  m_id : int;
  m_pc : word;
  m_operator : Mutop.t;
  m_original : S4e_isa.Instr.t;
  m_mutated : S4e_isa.Instr.t;
}

let describe m =
  Printf.sprintf "#%d @ 0x%08x [%s] %s -> %s" m.m_id m.m_pc
    (Mutop.name m.m_operator)
    (S4e_isa.Instr.to_string m.m_original)
    (S4e_isa.Instr.to_string m.m_mutated)

let generate ?(operators = Mutop.all) ?(covered = fun _ -> true) p =
  let mem = S4e_mem.Sparse_mem.create () in
  Program.load p mem;
  let next_id = ref 0 in
  let mutants = ref [] in
  List.iter
    (fun (c : Program.chunk) ->
      if c.Program.is_code then begin
        let stop = c.Program.addr + String.length c.Program.bytes in
        let rec walk pc =
          if pc + 2 <= stop then
            let half = S4e_mem.Sparse_mem.read16 mem pc in
            if half land 0x3 <> 0x3 then walk (pc + 2)  (* skip RVC *)
            else if pc + 4 <= stop then begin
              (match S4e_isa.Decode.decode (S4e_mem.Sparse_mem.read32 mem pc) with
              | Some instr when covered pc ->
                  List.iter
                    (fun op ->
                      List.iter
                        (fun mutated ->
                          let m =
                            { m_id = !next_id; m_pc = pc; m_operator = op;
                              m_original = instr; m_mutated = mutated }
                          in
                          incr next_id;
                          mutants := m :: !mutants)
                        (Mutop.mutations op instr))
                    operators
              | Some _ | None -> ());
              walk (pc + 4)
            end
        in
        walk c.Program.addr
      end)
    p.Program.chunks;
  List.rev !mutants

let apply m (machine : S4e_cpu.Machine.t) =
  S4e_cpu.Machine.load_word machine m.m_pc (S4e_isa.Encode.encode m.m_mutated)
