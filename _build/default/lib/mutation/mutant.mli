(** Mutant enumeration and image patching.

    A mutant is one mutation applied at one code address.  Enumeration
    walks the 32-bit instructions of a program's code chunks (16-bit
    RVC instructions are skipped — a widened replacement would clobber
    the neighbour); XEMU-style, the site list can be restricted to
    instructions a reference execution actually covers, which removes
    trivially-equivalent mutants in dead code. *)

type word = S4e_bits.Bits.word

type t = {
  m_id : int;
  m_pc : word;
  m_operator : Mutop.t;
  m_original : S4e_isa.Instr.t;
  m_mutated : S4e_isa.Instr.t;
}

val describe : t -> string

val generate :
  ?operators:Mutop.t list ->
  ?covered:(word -> bool) ->
  S4e_asm.Program.t ->
  t list
(** All mutants of the program, in address order.  [operators] defaults
    to {!Mutop.all}; [covered] (default: everything) filters sites by
    pc — pass the golden run's
    [Hashtbl.mem report.executed_pcs] for coverage-guided
    enumeration. *)

val apply : t -> S4e_cpu.Machine.t -> unit
(** Patches the mutated encoding into the machine's RAM (call after
    loading the program). *)
