(* BMI kernel tests: functional equivalence of the two dialects, the
   expected speedup direction, and WCET-analyzability. *)

module Kernels = S4e_bmi.Kernels

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:10 gen f)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

let test_all_kernels_present () =
  Alcotest.(check int) "seven kernels" 7 (List.length Kernels.all);
  Alcotest.(check bool) "find works" true (Kernels.find "popcount" <> None);
  Alcotest.(check bool) "find rejects" true (Kernels.find "nope" = None)

let test_variants_agree_directed () =
  List.iter
    (fun k ->
      let base = Kernels.measure k Kernels.Base ~n:64 ~seed:7 in
      let bmi = Kernels.measure k Kernels.Bmi ~n:64 ~seed:7 in
      Alcotest.(check int)
        (k.Kernels.k_name ^ " same checksum")
        base.Kernels.m_checksum bmi.Kernels.m_checksum;
      Alcotest.(check bool)
        (k.Kernels.k_name ^ " bmi uses fewer instructions")
        true
        (bmi.Kernels.m_instret < base.Kernels.m_instret))
    Kernels.all

let test_speedups_positive () =
  List.iter
    (fun k ->
      let s = Kernels.speedup k ~n:128 ~seed:11 in
      Alcotest.(check bool) (k.Kernels.k_name ^ " speedup > 1") true (s > 1.0))
    Kernels.all

let test_popcount_value () =
  (* cross-validate the kernel against a host-side computation *)
  let n = 32 and seed = 3 in
  let rng = Random.State.make [| seed |] in
  let rand32 () =
    (Random.State.bits rng lor (Random.State.bits rng lsl 15)) land 0xFFFF_FFFF
  in
  let expected =
    List.fold_left ( + ) 0
      (List.init n (fun _ -> S4e_bits.Bits.popcount (rand32 ())))
  in
  let k = Option.get (Kernels.find "popcount") in
  let m = Kernels.measure k Kernels.Bmi ~n ~seed in
  Alcotest.(check int) "kernel matches host popcount" expected
    m.Kernels.m_checksum

let test_bytes_value () =
  let n = 16 and seed = 9 in
  let rng = Random.State.make [| seed |] in
  let rand32 () =
    (Random.State.bits rng lor (Random.State.bits rng lsl 15)) land 0xFFFF_FFFF
  in
  let expected =
    List.fold_left
      (fun acc v -> S4e_bits.Bits.logxor acc (S4e_bits.Bits.rev8 v))
      0
      (List.init n (fun _ -> rand32 ()))
  in
  let k = Option.get (Kernels.find "bytes") in
  let m = Kernels.measure k Kernels.Bmi ~n ~seed in
  Alcotest.(check int) "kernel matches host rev8 fold" expected
    m.Kernels.m_checksum

let test_kernels_wcet_analyzable () =
  List.iter
    (fun k ->
      List.iter
        (fun variant ->
          let p = Kernels.program k variant ~n:32 ~seed:5 in
          match S4e_wcet.Analysis.analyze p with
          | Ok r ->
              Alcotest.(check bool)
                (k.Kernels.k_name ^ " has positive wcet")
                true
                (r.S4e_wcet.Analysis.program_wcet > 0)
          | Error e ->
              Alcotest.failf "%s/%s not analyzable: %s" k.Kernels.k_name
                (match variant with Kernels.Base -> "base" | Kernels.Bmi -> "bmi")
                (S4e_wcet.Analysis.describe_error e))
        [ Kernels.Base; Kernels.Bmi ])
    Kernels.all

let test_wcet_bounds_dynamic_for_kernels () =
  List.iter
    (fun k ->
      let p = Kernels.program k Kernels.Base ~n:32 ~seed:5 in
      match S4e_core.Flows.wcet_flow p with
      | Ok r ->
          Alcotest.(check bool)
            (k.Kernels.k_name ^ " dynamic <= static")
            true
            (r.S4e_core.Flows.wr_dynamic <= r.S4e_core.Flows.wr_static)
      | Error e ->
          Alcotest.failf "%s: %s" k.Kernels.k_name
            (S4e_wcet.Analysis.describe_error e))
    Kernels.all

let props =
  [ prop "variants agree for any seed"
      (QCheck.pair seed_gen (QCheck.make QCheck.Gen.(int_range 1 100)))
      (fun (seed, n) ->
        List.for_all
          (fun k ->
            let b = Kernels.measure k Kernels.Base ~n ~seed in
            let m = Kernels.measure k Kernels.Bmi ~n ~seed in
            b.Kernels.m_checksum = m.Kernels.m_checksum)
          Kernels.all);
    prop "cycles scale with input size" seed_gen (fun seed ->
        List.for_all
          (fun k ->
            let small = Kernels.measure k Kernels.Bmi ~n:16 ~seed in
            let large = Kernels.measure k Kernels.Bmi ~n:64 ~seed in
            large.Kernels.m_cycles > small.Kernels.m_cycles)
          Kernels.all) ]

let () =
  Alcotest.run "bmi"
    [ ( "kernels",
        [ Alcotest.test_case "registry" `Quick test_all_kernels_present;
          Alcotest.test_case "variants agree" `Quick test_variants_agree_directed;
          Alcotest.test_case "speedups" `Quick test_speedups_positive;
          Alcotest.test_case "popcount value" `Quick test_popcount_value;
          Alcotest.test_case "bytes value" `Quick test_bytes_value;
          Alcotest.test_case "wcet analyzable" `Quick
            test_kernels_wcet_analyzable;
          Alcotest.test_case "wcet bounds dynamic" `Quick
            test_wcet_bounds_dynamic_for_kernels ] );
      ("properties", props) ]
