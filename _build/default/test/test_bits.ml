(* Unit and property tests for the 32-bit word layer.  Everything else
   in the emulator leans on these semantics, so they get both directed
   corner cases and algebraic property checks. *)

module Bits = S4e_bits.Bits

let check = Alcotest.(check int)
let word32 = QCheck.map (fun i -> i land 0xFFFF_FFFF) QCheck.int

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 gen f)

(* ---------------- directed cases ---------------- *)

let test_mask_and_sign () =
  check "mask32 wraps" 0 (Bits.mask32 0x1_0000_0000);
  check "mask32 id" 0xFFFF_FFFF (Bits.mask32 0xFFFF_FFFF);
  check "to_signed max" 0x7FFF_FFFF (Bits.to_signed 0x7FFF_FFFF);
  check "to_signed min" (-0x8000_0000) (Bits.to_signed 0x8000_0000);
  check "to_signed -1" (-1) (Bits.to_signed 0xFFFF_FFFF);
  check "of_signed -1" 0xFFFF_FFFF (Bits.of_signed (-1));
  Alcotest.(check bool) "is_word hi" false (Bits.is_word 0x1_0000_0000);
  Alcotest.(check bool) "is_word neg" false (Bits.is_word (-1))

let test_arith_corners () =
  check "add wrap" 0 (Bits.add 0xFFFF_FFFF 1);
  check "sub wrap" 0xFFFF_FFFF (Bits.sub 0 1);
  check "mul wrap" 1 (Bits.mul 0xFFFF_FFFF 0xFFFF_FFFF);
  (* RISC-V division corner cases *)
  check "div by zero" 0xFFFF_FFFF (Bits.div 5 0);
  check "divu by zero" 0xFFFF_FFFF (Bits.divu 5 0);
  check "rem by zero" 5 (Bits.rem 5 0);
  check "remu by zero" 5 (Bits.remu 5 0);
  check "div overflow" 0x8000_0000 (Bits.div 0x8000_0000 0xFFFF_FFFF);
  check "rem overflow" 0 (Bits.rem 0x8000_0000 0xFFFF_FFFF);
  check "div trunc" (Bits.of_signed (-2)) (Bits.div (Bits.of_signed (-7)) 3);
  check "rem sign" (Bits.of_signed (-1)) (Bits.rem (Bits.of_signed (-7)) 3)

let test_mulh_corners () =
  check "mulh max*max" 0x3FFF_FFFF (Bits.mulh 0x7FFF_FFFF 0x7FFF_FFFF);
  check "mulhu max" 0xFFFF_FFFE (Bits.mulhu 0xFFFF_FFFF 0xFFFF_FFFF);
  check "mulh min*min" 0x4000_0000 (Bits.mulh 0x8000_0000 0x8000_0000);
  check "mulhsu -1*max" 0xFFFF_FFFF (Bits.mulhsu 0xFFFF_FFFF 0xFFFF_FFFF);
  check "mulh 0" 0 (Bits.mulh 0 0xFFFF_FFFF)

let test_shifts () =
  check "sll by 0" 5 (Bits.sll 5 0);
  check "sll masks amount" 10 (Bits.sll 5 33);
  check "srl sign-free" 0x7FFF_FFFF (Bits.srl 0xFFFF_FFFE 1);
  check "sra keeps sign" 0xFFFF_FFFF (Bits.sra 0x8000_0000 31);
  check "rol 1" 1 (Bits.rol 0x8000_0000 1);
  check "ror 1" 0x8000_0000 (Bits.ror 1 1)

let test_counting () =
  check "popcount 0" 0 (Bits.popcount 0);
  check "popcount ff" 8 (Bits.popcount 0xFF);
  check "popcount all" 32 (Bits.popcount 0xFFFF_FFFF);
  check "clz 0" 32 (Bits.clz 0);
  check "clz 1" 31 (Bits.clz 1);
  check "clz msb" 0 (Bits.clz 0x8000_0000);
  check "ctz 0" 32 (Bits.ctz 0);
  check "ctz msb" 31 (Bits.ctz 0x8000_0000);
  check "ctz 1" 0 (Bits.ctz 1)

let test_bytes () =
  check "rev8" 0x78563412 (Bits.rev8 0x12345678);
  check "orc_b" 0xFF0000FF (Bits.orc_b 0x12000034);
  check "get_byte" 0x34 (Bits.get_byte 2 0x12345678);
  check "set_byte" 0x12AA5678 (Bits.set_byte 2 0xAA 0x12345678)

let test_fields () =
  check "bits mid" 0x345 (Bits.bits ~hi:23 ~lo:12 0x12345678);
  check "bit" 1 (Bits.bit 31 0x8000_0000);
  check "set_bit on" 0x10 (Bits.set_bit 4 true 0);
  check "set_bit off" 0 (Bits.set_bit 4 false 0x10);
  check "flip twice" 42 (Bits.flip_bit 7 (Bits.flip_bit 7 42));
  check "sext 8 pos" 0x7F (Bits.sext ~width:8 0x7F);
  check "sext 8 neg" 0xFFFF_FF80 (Bits.sext ~width:8 0x80);
  check "zext 16" 0xFFFF (Bits.zext ~width:16 0xFFFF_FFFF)

(* ---------------- properties ---------------- *)

let props =
  [ prop "add produces canonical words" (QCheck.pair word32 word32)
      (fun (a, b) -> Bits.is_word (Bits.add a b));
    prop "sub inverse of add" (QCheck.pair word32 word32) (fun (a, b) ->
        Bits.sub (Bits.add a b) b = a);
    prop "to_signed/of_signed roundtrip" word32 (fun w ->
        Bits.of_signed (Bits.to_signed w) = w);
    prop "int32 roundtrip" word32 (fun w ->
        Bits.of_int32 (Bits.to_int32 w) = w);
    prop "mulhu/mulh against Int64" (QCheck.pair word32 word32)
      (fun (a, b) ->
        let p64 = Int64.mul (Int64.of_int a) (Int64.of_int b) in
        let expect = Int64.to_int (Int64.shift_right_logical p64 32) in
        Bits.mulhu a b = expect);
    prop "mulh against exact product" (QCheck.pair word32 word32)
      (fun (a, b) ->
        (* (min, min) is the one pair whose 63-bit product overflows the
           host int; it is covered by a directed test instead *)
        QCheck.assume (not (a = 0x8000_0000 && b = 0x8000_0000));
        let p = Bits.to_signed a * Bits.to_signed b in
        Bits.mulh a b = Bits.mask32 (p asr 32));
    prop "div*b + rem = a (signed, b<>0)" (QCheck.pair word32 word32)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q = Bits.to_signed (Bits.div a b) in
        let r = Bits.to_signed (Bits.rem a b) in
        Bits.mask32 ((q * Bits.to_signed b) + r) = a);
    prop "divu*b + remu = a (b<>0)" (QCheck.pair word32 word32)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        Bits.mask32 ((Bits.divu a b * b) + Bits.remu a b) = a);
    prop "rol/ror inverse" (QCheck.pair word32 QCheck.small_nat)
      (fun (w, n) -> Bits.ror (Bits.rol w n) n = w);
    prop "rol = ror of complement amount" (QCheck.pair word32 QCheck.small_nat)
      (fun (w, n) ->
        let n = n land 31 in
        QCheck.assume (n <> 0);
        Bits.rol w n = Bits.ror w (32 - n));
    prop "popcount of complement" word32 (fun w ->
        Bits.popcount w + Bits.popcount (Bits.lognot w) = 32);
    prop "clz+ctz <= 32 for nonzero" word32 (fun w ->
        QCheck.assume (w <> 0);
        Bits.clz w + Bits.ctz w <= 31);
    prop "clz via shifting" word32 (fun w ->
        QCheck.assume (w <> 0);
        Bits.sll w (Bits.clz w) land 0x8000_0000 <> 0);
    prop "rev8 involutive" word32 (fun w -> Bits.rev8 (Bits.rev8 w) = w);
    prop "andn definition" (QCheck.pair word32 word32) (fun (a, b) ->
        Bits.andn a b = Bits.logand a (Bits.lognot b));
    prop "orn definition" (QCheck.pair word32 word32) (fun (a, b) ->
        Bits.orn a b = Bits.logor a (Bits.lognot b));
    prop "xnor definition" (QCheck.pair word32 word32) (fun (a, b) ->
        Bits.xnor a b = Bits.lognot (Bits.logxor a b));
    prop "min/max partition" (QCheck.pair word32 word32) (fun (a, b) ->
        let lo = Bits.min_signed a b and hi = Bits.max_signed a b in
        (lo = a && hi = b) || (lo = b && hi = a));
    prop "sra floors like arithmetic shift" (QCheck.pair word32 QCheck.small_nat)
      (fun (w, n) ->
        let n = n land 31 in
        Bits.to_signed (Bits.sra w n) = Bits.to_signed w asr n);
    prop "sext idempotent at same width" (QCheck.pair word32 QCheck.small_nat)
      (fun (w, n) ->
        let width = 1 + (n mod 32) in
        let once = Bits.sext ~width w in
        Bits.sext ~width once = once) ]

let () =
  Alcotest.run "bits"
    [ ( "unit",
        [ Alcotest.test_case "mask and sign" `Quick test_mask_and_sign;
          Alcotest.test_case "arithmetic corners" `Quick test_arith_corners;
          Alcotest.test_case "mulh corners" `Quick test_mulh_corners;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "counting" `Quick test_counting;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "fields" `Quick test_fields ] );
      ("properties", props) ]
