(* Device model tests: UART, CLINT, GPIO, syscon, memory map. *)

module Uart = S4e_soc.Uart
module Clint = S4e_soc.Clint
module Gpio = S4e_soc.Gpio
module Syscon = S4e_soc.Syscon
module Map = S4e_soc.Memory_map
module Bus = S4e_mem.Bus

let test_uart_tx () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  String.iter (fun c -> d.Bus.dev_write Uart.data_offset 1 (Char.code c)) "hi!";
  Alcotest.(check string) "output" "hi!" (Uart.output u);
  Uart.clear_output u;
  Alcotest.(check string) "cleared" "" (Uart.output u)

let test_uart_tx_callback () =
  let seen = Buffer.create 8 in
  let u = Uart.create ~on_tx:(Buffer.add_char seen) () in
  let d = Uart.device u ~base:0 in
  d.Bus.dev_write Uart.data_offset 1 (Char.code 'x');
  Alcotest.(check string) "live forwarding" "x" (Buffer.contents seen)

let test_uart_rx () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0 in
  Alcotest.(check int) "status empty" 0b10 (d.Bus.dev_read Uart.status_offset 1);
  Alcotest.(check int) "read empty" 0 (d.Bus.dev_read Uart.data_offset 1);
  Uart.feed u "ab";
  Alcotest.(check int) "status ready" 0b11 (d.Bus.dev_read Uart.status_offset 1);
  Alcotest.(check int) "first byte" (Char.code 'a')
    (d.Bus.dev_read Uart.data_offset 1);
  Alcotest.(check int) "second byte" (Char.code 'b')
    (d.Bus.dev_read Uart.data_offset 1);
  Alcotest.(check int) "drained" 0b10 (d.Bus.dev_read Uart.status_offset 1)

let test_clint_timer () =
  let c = Clint.create () in
  Alcotest.(check bool) "not pending at reset" false (Clint.timer_pending c);
  Clint.set_timecmp c 100;
  Clint.tick c 99;
  Alcotest.(check bool) "not yet" false (Clint.timer_pending c);
  Clint.tick c 1;
  Alcotest.(check bool) "pending at cmp" true (Clint.timer_pending c);
  Alcotest.(check int) "time" 100 (Clint.time c)

let test_clint_registers () =
  let c = Clint.create () in
  let d = Clint.device c ~base:0 in
  d.Bus.dev_write 0x4000 4 0x1234;
  d.Bus.dev_write 0x4004 4 0x1;
  Alcotest.(check int) "timecmp assembled" 0x1_0000_1234 (Clint.timecmp c);
  Alcotest.(check int) "timecmp lo" 0x1234 (d.Bus.dev_read 0x4000 4);
  Alcotest.(check int) "timecmp hi" 0x1 (d.Bus.dev_read 0x4004 4);
  Clint.tick c 0xABCD;
  Alcotest.(check int) "mtime lo" 0xABCD (d.Bus.dev_read 0xBFF8 4);
  d.Bus.dev_write 0x0000 4 1;
  Alcotest.(check bool) "msip" true (Clint.software_pending c);
  Alcotest.(check int) "msip reads back" 1 (d.Bus.dev_read 0x0000 4);
  Clint.reset c;
  Alcotest.(check bool) "reset clears" false (Clint.software_pending c);
  Alcotest.(check int) "reset time" 0 (Clint.time c)

let test_gpio () =
  let changes = ref [] in
  let g = Gpio.create ~on_output:(fun v -> changes := v :: !changes) () in
  let d = Gpio.device g ~base:0 in
  d.Bus.dev_write 0 4 0xF0;
  d.Bus.dev_write 0 4 0xF0;  (* unchanged: no callback *)
  d.Bus.dev_write 0 4 0x0F;
  Alcotest.(check (list int)) "output changes" [ 0x0F; 0xF0 ] !changes;
  Alcotest.(check int) "latch reads back" 0x0F (d.Bus.dev_read 0 4);
  Gpio.set_input g 0xAA;
  Alcotest.(check int) "input pins" 0xAA (d.Bus.dev_read 4 4);
  Alcotest.(check int) "accessors" 0x0F (Gpio.output g)

let test_syscon () =
  let s = Syscon.create () in
  let d = Syscon.device s ~base:0 in
  Alcotest.(check (option int)) "no exit yet" None (Syscon.exit_code s);
  d.Bus.dev_write 0 4 42;
  Alcotest.(check (option int)) "exit recorded" (Some 42) (Syscon.exit_code s);
  Syscon.reset s;
  Alcotest.(check (option int)) "reset" None (Syscon.exit_code s)

let test_memory_map_disjoint () =
  (* attaching all default devices must not overlap *)
  let bus = Bus.create () in
  Bus.attach bus (Uart.device (Uart.create ()) ~base:Map.uart_base);
  Bus.attach bus (Clint.device (Clint.create ()) ~base:Map.clint_base);
  Bus.attach bus (Gpio.device (Gpio.create ()) ~base:Map.gpio_base);
  Bus.attach bus (Syscon.device (Syscon.create ()) ~base:Map.syscon_base);
  Alcotest.(check int) "four devices" 4 (List.length (Bus.device_ranges bus));
  (* RAM base must not be claimed by any device *)
  List.iter
    (fun (_, base, len) ->
      Alcotest.(check bool) "below RAM" true (base + len <= Map.ram_base))
    (Bus.device_ranges bus)

let () =
  Alcotest.run "soc"
    [ ( "devices",
        [ Alcotest.test_case "uart tx" `Quick test_uart_tx;
          Alcotest.test_case "uart tx callback" `Quick test_uart_tx_callback;
          Alcotest.test_case "uart rx" `Quick test_uart_rx;
          Alcotest.test_case "clint timer" `Quick test_clint_timer;
          Alcotest.test_case "clint registers" `Quick test_clint_registers;
          Alcotest.test_case "gpio" `Quick test_gpio;
          Alcotest.test_case "syscon" `Quick test_syscon;
          Alcotest.test_case "memory map disjoint" `Quick
            test_memory_map_disjoint ] ) ]
